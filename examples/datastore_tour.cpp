// Tour of the generic data interface (paper Sec. 4.2): the same byte-stream
// records redirected "effortlessly to a file, an archive, or a database —
// all with a single configuration switch"; plus the behaviours each backend
// is chosen for: armored checkpoints on the filesystem, append-only crash
// safety and inode reduction in tar archives, and fast rename-based tagging
// in the in-memory database.
//
// Run: ./datastore_tour

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "datastore/store_factory.hpp"
#include "datastore/tar_store.hpp"
#include "datastore/taridx.hpp"
#include "util/checkpoint.hpp"
#include "util/clock.hpp"
#include "util/npy.hpp"
#include "util/rng.hpp"

using namespace mummi;

int main() {
  const auto root = std::filesystem::temp_directory_path() /
                    ("mummi_tour_" + std::to_string(::getpid()));
  std::filesystem::create_directories(root);

  // The record: a patch-like numpy array, serialized once.
  util::Rng rng(5);
  std::vector<float> density(14 * 37 * 37);
  for (auto& v : density) v = static_cast<float>(rng.uniform());
  const auto record =
      util::npy_encode(util::NpyArray::from_f32({14, 37, 37}, density));
  std::printf("record: a (14,37,37) float32 .npy, %zu bytes\n\n",
              record.size());

  // --- one configuration switch, three backends -----------------------------
  for (const char* backend : {"filesystem", "taridx", "redis"}) {
    util::Config cfg;
    cfg.set("datastore.backend", backend);
    cfg.set("datastore.root", (root / backend).string());
    cfg.set("datastore.servers", "4");
    auto store = ds::make_store(cfg);
    store->put("patches", "patch-001", record);
    const auto array = store->get_npy("patches", "patch-001");
    std::printf("backend %-12s: stored and decoded shape (%zu,%zu,%zu)\n",
                store->backend().c_str(), array.shape[0], array.shape[1],
                array.shape[2]);
    store->flush();
  }

  // --- why filesystem: armored checkpoints -----------------------------------
  std::printf("\nfilesystem: armored checkpoint survives a torn write\n");
  util::CheckpointFile ckpt((root / "wm.ckpt").string());
  ckpt.save(util::to_bytes("campaign state v1"));
  ckpt.save(util::to_bytes("campaign state v2"));
  util::write_file((root / "wm.ckpt").string(), util::to_bytes("garbage"));
  std::printf("  primary corrupted -> restored: \"%s\"\n",
              util::to_string(*ckpt.load()).c_str());

  // --- why taridx: inode reduction + crash recovery --------------------------
  std::printf("\ntaridx: 1000 records -> 2 inodes, index rebuilds from the "
              "tar\n");
  const auto tar_path = (root / "frames.tar").string();
  {
    ds::TarIdx tar(tar_path);
    util::Bytes small(850);  // frame-id records
    for (int i = 0; i < 1000; ++i)
      tar.append("frame-" + std::to_string(i), small);
    tar.flush();
  }
  util::remove_file(tar_path + ".idx");  // lose the sidecar
  {
    ds::TarIdx recovered(tar_path);
    std::printf("  sidecar deleted -> rebuilt index holds %zu members\n",
                recovered.count());
    std::printf("  archive remains a standard tar readable by any decoder\n");
  }

  // --- why redis: high-rate feedback tagging ---------------------------------
  std::printf("\nredis: feedback tagging at memory speed\n");
  util::Config cfg;
  cfg.set("datastore.backend", "redis");
  auto red = ds::make_store(cfg);
  for (int i = 0; i < 20000; ++i)
    red->put("rdf-pending", "f" + std::to_string(i), util::Bytes(128));
  util::Stopwatch watch;
  for (const auto& key : red->keys("rdf-pending", "*"))
    red->move("rdf-pending", key, "rdf-done");
  std::printf("  tagged 20,000 frames out of the pending namespace in %.3f "
              "s\n", watch.elapsed());
  std::printf("  pending now: %zu, done: %zu\n",
              red->keys("rdf-pending", "*").size(),
              red->keys("rdf-done", "*").size());

  std::filesystem::remove_all(root);
  std::printf("\ntour complete.\n");
  return 0;
}
