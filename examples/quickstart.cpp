// Quickstart: the smallest useful MuMMI loop.
//
// Couples two scales on a laptop-sized problem: a continuum membrane model
// spawns patches; ML selection promotes the most novel patch to a real CG
// particle simulation; the CG analysis feeds RDFs back into the continuum
// model. This is the paper's macro<->micro loop (Sec. 4) end to end in ~100
// lines.
//
// Run: ./quickstart

#include <cstdio>

#include "continuum/gridsim2d.hpp"
#include "coupling/analysis.hpp"
#include "coupling/createsim.hpp"
#include "coupling/encoders.hpp"
#include "coupling/patch.hpp"
#include "datastore/red_store.hpp"
#include "feedback/cg2cont.hpp"
#include "mdengine/integrator.hpp"
#include "mdengine/simulation.hpp"
#include "ml/fps_sampler.hpp"

using namespace mummi;

int main() {
  util::Rng rng(42);

  // 1. The macro scale: a DDFT lipid membrane with protein particles.
  cont::ContinuumConfig ccfg;
  ccfg.grid = 32;
  ccfg.extent = 64.0;  // nm
  ccfg.inner_species = 3;
  ccfg.outer_species = 2;
  ccfg.n_proteins = 5;
  cont::GridSim2D continuum(ccfg);
  std::printf("continuum: %d species on a %dx%d grid, %zu proteins\n",
              continuum.n_species(), ccfg.grid, ccfg.grid,
              continuum.proteins().size());

  // 2. Advance the macro model and cut patches around each protein.
  continuum.step(20);
  coupling::PatchCreator patch_creator(13, 10.0);
  std::uint64_t next_patch_id = 1;
  const auto patches = patch_creator.create(continuum.snapshot(), next_patch_id);
  std::printf("patch creator: %zu patches at t = %.2f us\n", patches.size(),
              continuum.time_us());

  // 3. ML selection: encode each patch into 9-D, pick the most novel.
  coupling::PatchEncoder encoder(continuum.n_species(), /*seed=*/7);
  ml::FpsSampler selector(encoder.out_dim(), 35000);
  std::vector<ml::HDPoint> candidates;
  for (const auto& p : patches) candidates.push_back({p.id, encoder.encode(p)});
  selector.add_candidates(candidates);
  const auto picked = selector.select(1);
  const coupling::Patch& patch = patches[picked[0].id - 1];
  std::printf("selector: picked patch %llu (center state %d) out of %zu\n",
              static_cast<unsigned long long>(patch.id),
              static_cast<int>(patch.center_state()), candidates.size());

  // 4. createsim: instantiate the patch as a CG particle system and relax it.
  coupling::CgBuildConfig bcfg;
  bcfg.lipids_per_nm2 = 0.3;
  const auto cg = coupling::CreateSim(bcfg).build(patch, rng);
  std::printf("createsim: %zu beads (%zu protein), box %.0f x %.0f x %.0f nm\n",
              cg.system.size(), cg.protein_beads.size(),
              cg.system.box.length.x, cg.system.box.length.y,
              cg.system.box.length.z);

  // 5. The micro scale: run CG MD with in-situ analysis publishing RDFs.
  auto store = std::make_shared<ds::RedStore>(4);  // in-memory "Redis"
  coupling::CgAnalysis analysis(cg, /*sim_id=*/1);
  md::SimulationConfig scfg;
  scfg.dt = 0.01;  // ps
  scfg.frame_interval = 25;
  md::Simulation sim(cg.system, coupling::make_cg_forcefield(patch.n_species),
                     std::make_unique<md::Langevin>(310.0, 2.0, rng.split()),
                     scfg);
  sim.on_frame([&](const md::System& sys, long step, md::real pe) {
    const auto info = analysis.analyze(sys, step);
    std::printf("  frame %4ld: T = %5.1f K, PE = %9.1f kJ/mol, tilt %.0f deg\n",
                step, sys.temperature(), pe, info.tilt);
  });
  sim.run(150);

  // 6. Feedback: aggregate the RDFs and update the running continuum model.
  fb::FeedbackRecord record;
  record.state = patch.center_state();
  record.rdfs = analysis.take_rdfs();
  store->put("rdf-pending", "sim-1", record.serialize());

  fb::CgToContinuumFeedback feedback(store, &continuum);
  const auto stats = feedback.iterate();
  std::printf("feedback: %zu record(s) aggregated; coupling[state %d][0] = "
              "%+.3f\n",
              stats.frames, static_cast<int>(record.state),
              continuum.protein_lipid_coupling(record.state, 0));

  continuum.step(5);  // the macro model continues with refined parameters
  std::printf("done: continuum advanced to %.2f us with feedback applied\n",
              continuum.time_us());
  return 0;
}
