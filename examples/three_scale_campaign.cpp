// The three-scale RAS-RAF-membrane application (paper Sec. 4.1), wired end
// to end with real physics at toy size, under the real coordination stack:
// fluxlite scheduler + Maestro + WorkflowManager + trackers + both feedback
// loops, with job payloads executing the actual createsim / MD / backmapping
// code through a ThreadExecutor.
//
// Run: ./three_scale_campaign

#include <cstdio>
#include <map>
#include <mutex>

#include "continuum/gridsim2d.hpp"
#include "util/log.hpp"
#include "coupling/analysis.hpp"
#include "coupling/backmap.hpp"
#include "coupling/createsim.hpp"
#include "coupling/encoders.hpp"
#include "coupling/patch.hpp"
#include "datastore/red_store.hpp"
#include "feedback/aa2cg.hpp"
#include "feedback/cg2cont.hpp"
#include "mdengine/integrator.hpp"
#include "mdengine/simulation.hpp"
#include "wm/workflow_manager.hpp"

using namespace mummi;

namespace {

/// Application state shared by job payloads (guarded: payloads run on pool
/// threads).
struct AppState {
  std::mutex mutex;
  util::Rng rng{2026};
  std::map<std::uint64_t, coupling::Patch> patches;
  std::map<std::uint64_t, coupling::CgSystemInfo> cg_ready;
  std::map<std::uint64_t, coupling::CgFrameInfo> new_frames;  // to ingest
  std::map<std::uint64_t, coupling::CgFrameInfo> frame_catalog;  // persistent
  std::map<std::uint64_t, coupling::AaSystemInfo> aa_ready;
  std::shared_ptr<ds::RedStore> store = std::make_shared<ds::RedStore>(4);
  std::uint64_t next_frame_id = 1;
  int cg_sims_done = 0;
  int aa_sims_done = 0;
};

}  // namespace

int main() {
  util::Log::set_level(util::LogLevel::kWarn);
  AppState app;

  // --- the macro scale ------------------------------------------------------
  cont::ContinuumConfig ccfg;
  ccfg.grid = 28;
  ccfg.extent = 56.0;
  ccfg.inner_species = 3;
  ccfg.outer_species = 2;
  ccfg.n_proteins = 6;
  cont::GridSim2D continuum(ccfg);

  // --- coordination: scheduler, maestro, trackers, selectors, WM ------------
  util::WallClock clock;
  sched::Scheduler scheduler(sched::ClusterSpec::laptop(),
                             sched::MatchPolicy::kFirstMatch, clock);
  wm::DirectBackend maestro(scheduler);

  wm::TrackerSet trackers;
  const auto tracker_cfg = util::Config::parse(
      "[job.cg_setup]\ncores = 2\n"
      "[job.cg_sim]\ncores = 1\ngpus = 1\n"
      "[job.aa_setup]\ncores = 2\n"
      "[job.aa_sim]\ncores = 1\ngpus = 1\n");
  for (const auto* type : {"cg_setup", "cg_sim", "aa_setup", "aa_sim"})
    trackers.add(std::make_unique<wm::JobTracker>(
        wm::JobTracker::config_from(tracker_cfg, type)));

  wm::PatchSelector patch_selector(9, 5, 35000);
  wm::FrameSelector frame_selector(0.8, 11);

  wm::WmConfig wm_cfg;
  wm_cfg.gpu_frac_cg = 0.5;  // laptop: 2 GPUs -> 1 CG + 1 AA
  wm_cfg.cg_ready_target = 1;
  wm_cfg.aa_ready_target = 1;
  wm::WorkflowManager wm(wm_cfg, maestro, trackers, patch_selector,
                         frame_selector);

  // --- feedback managers -----------------------------------------------------
  fb::CgToContinuumFeedback cg_feedback(app.store, &continuum);
  fb::Aa2CgConfig aa_fb_cfg;
  aa_fb_cfg.pool_size = 2;
  fb::AaToCgFeedback aa_feedback(app.store, aa_fb_cfg);
  wm.add_feedback(&cg_feedback);
  wm.add_feedback(&aa_feedback);

  // --- application payloads (run on worker threads) --------------------------
  coupling::PatchEncoder encoder(continuum.n_species(), 7);
  sched::PayloadRegistry payloads;
  payloads.register_type("cg_setup", [&](const sched::Job& job) {
    std::lock_guard lock(app.mutex);
    auto it = app.patches.find(job.spec.payload);
    if (it == app.patches.end()) return false;
    coupling::CgBuildConfig cfg;
    cfg.lipids_per_nm2 = 0.25;
    cfg.minimize_steps = 40;
    cfg.relax_steps = 15;
    app.cg_ready.emplace(job.spec.payload,
                         coupling::CreateSim(cfg).build(it->second, app.rng));
    return true;
  });
  payloads.register_type("cg_sim", [&](const sched::Job& job) {
    coupling::CgSystemInfo info;
    cont::ProteinState state;
    {
      std::lock_guard lock(app.mutex);
      auto it = app.cg_ready.find(job.spec.payload);
      if (it == app.cg_ready.end()) return false;
      info = std::move(it->second);
      app.cg_ready.erase(it);
      state = app.patches.at(job.spec.payload).center_state();
    }
    coupling::CgAnalysis analysis(info, job.spec.payload);
    md::SimulationConfig scfg;
    scfg.dt = 0.01;
    scfg.frame_interval = 20;
    md::Simulation sim(
        info.system,
        coupling::make_cg_forcefield(
            static_cast<int>(info.heads_by_species.size())),
        std::make_unique<md::Langevin>(310.0, 2.0, util::Rng(job.spec.payload)),
        scfg);
    std::vector<coupling::CgFrameInfo> frames;
    sim.on_frame([&](const md::System& sys, long step, md::real) {
      frames.push_back(analysis.analyze(sys, step));
    });
    sim.run(100);
    {
      std::lock_guard lock(app.mutex);
      // Publish RDFs for feedback and frame candidates for the selector.
      fb::FeedbackRecord record;
      record.state = state;
      record.rdfs = analysis.take_rdfs();
      app.store->put("rdf-pending",
                     "sim-" + std::to_string(job.spec.payload),
                     record.serialize());
      info.system = sim.system();
      for (const auto& f : frames) {
        app.new_frames.emplace(app.next_frame_id, f);
        app.frame_catalog.emplace(app.next_frame_id, f);
        ++app.next_frame_id;
      }
      app.cg_ready.emplace(job.spec.payload, std::move(info));  // for backmap
      ++app.cg_sims_done;
    }
    return true;
  });
  payloads.register_type("aa_setup", [&](const sched::Job& job) {
    std::lock_guard lock(app.mutex);
    auto frame = app.frame_catalog.find(job.spec.payload);
    if (frame == app.frame_catalog.end()) return false;
    auto cg = app.cg_ready.find(frame->second.sim_id);
    if (cg == app.cg_ready.end()) return false;
    coupling::AaBuildConfig cfg;
    cfg.minimize_steps = 30;
    cfg.restrained_steps = 15;
    app.aa_ready.emplace(job.spec.payload,
                         coupling::Backmapper(cfg).build(cg->second, app.rng));
    return true;
  });
  payloads.register_type("aa_sim", [&](const sched::Job& job) {
    coupling::AaSystemInfo info;
    {
      std::lock_guard lock(app.mutex);
      auto it = app.aa_ready.find(job.spec.payload);
      if (it == app.aa_ready.end()) return false;
      info = std::move(it->second);
      app.aa_ready.erase(it);
    }
    coupling::AaAnalysis analysis(info.backbone, job.spec.payload);
    md::SimulationConfig scfg;
    scfg.dt = 0.002;
    scfg.frame_interval = 15;
    md::Simulation sim(info.system, coupling::make_aa_forcefield(),
                       std::make_unique<md::Langevin>(
                           310.0, 5.0, util::Rng(job.spec.payload * 31)),
                       scfg);
    sim.on_frame([&](const md::System& sys, long step, md::real) {
      std::lock_guard lock(app.mutex);
      app.store->put_text(
          "ss-pending",
          "f" + std::to_string(job.spec.payload) + "-" + std::to_string(step),
          analysis.analyze(sys));
    });
    sim.run(45);
    std::lock_guard lock(app.mutex);
    ++app.aa_sims_done;
    return true;
  });

  util::ThreadPool pool(2);
  sched::ThreadExecutor executor(pool, std::move(payloads));
  std::mutex sched_mutex;
  scheduler.on_start([&](const sched::Job& job) {
    const sched::JobId id = job.id;
    executor.launch(job, [&, id](bool ok) {
      std::lock_guard lock(sched_mutex);
      scheduler.complete(id, ok);
    });
  });

  // --- the coordination loop --------------------------------------------------
  std::printf("three-scale campaign: continuum + CG + AA on a laptop spec\n");
  coupling::PatchCreator patch_creator(13, 10.0);
  std::uint64_t next_patch_id = 1;
  for (int cycle = 0; cycle < 6; ++cycle) {
    // Task 1: advance the continuum, cut patches, encode, ingest.
    continuum.step(10);
    const auto patches = patch_creator.create(continuum.snapshot(), next_patch_id);
    std::vector<ml::HDPoint> encoded;
    {
      std::lock_guard lock(app.mutex);
      for (const auto& p : patches) {
        encoded.push_back({p.id, encoder.encode(p)});
        app.patches.emplace(p.id, p);
      }
    }
    wm.ingest_patches(static_cast<int>(cycle % 5), encoded);

    // Task 2 ingestion for AA: encoded CG frames discovered so far.
    {
      std::lock_guard lock(app.mutex);
      std::vector<ml::HDPoint> frame_pts;
      for (const auto& [id, f] : app.new_frames)
        frame_pts.push_back({id, f.descriptor()});
      if (!frame_pts.empty()) wm.ingest_frames(frame_pts);
      app.new_frames.clear();  // handed to the selector
    }

    // Task 3: keep the machine loaded; let payloads run.
    {
      std::lock_guard lock(sched_mutex);
      wm.maintain(20);
    }
    pool.wait_idle();
    {
      std::lock_guard lock(sched_mutex);
      wm.maintain(20);
    }
    pool.wait_idle();

    // Task 4: feedback.
    const auto stats = wm.run_feedback();
    std::printf(
        "cycle %d: t=%5.2f us | patches %zu | cg done %d | aa done %d | "
        "feedback frames %zu + %zu\n",
        cycle, continuum.time_us(), app.patches.size(), app.cg_sims_done,
        app.aa_sims_done, stats[0].frames, stats[1].frames);
  }

  std::printf("\nconsensus secondary structure from AA->CG feedback: %s\n",
              aa_feedback.params().consensus.empty()
                  ? "(no AA frames yet)"
                  : aa_feedback.params().consensus.c_str());
  std::printf("continuum coupling (state 0, species 0): %+.3f\n",
              continuum.protein_lipid_coupling(cont::ProteinState::kRasA, 0));
  std::printf("campaign complete.\n");
  return 0;
}
