// The paper's "Next Leap" (Sec. 6 outlook), implemented: "a persistent
// workflow that can coordinate variable sized allocations as resources
// become available on different clusters."
//
// One WorkflowManager state (selectors + ready buffers + restart counts)
// persists across:
//   - allocations of different sizes on the same machine (Table 1's
//     100 -> 1000-node restarts),
//   - an *elastic* allocation that grows mid-run,
//   - a migration to a different cluster (Summit-shaped -> Sierra-shaped),
// with the armored checkpoint file carrying the state between them.
//
// Run: ./persistent_workflow

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "util/checkpoint.hpp"
#include "util/rng.hpp"
#include "wm/workflow_manager.hpp"

using namespace mummi;

namespace {

wm::TrackerSet make_trackers() {
  wm::TrackerSet trackers;
  auto add = [&](const std::string& type, int cores, int gpus) {
    wm::JobTypeConfig cfg;
    cfg.type = type;
    cfg.request.slot = sched::Slot{cores, gpus};
    trackers.add(std::make_unique<wm::JobTracker>(cfg));
  };
  add("cg_setup", 20, 0);
  add("cg_sim", 3, 1);
  add("aa_setup", 18, 0);
  add("aa_sim", 3, 1);
  return trackers;
}

std::vector<ml::HDPoint> synth_patches(util::Rng& rng, ml::PointId& next,
                                       int n) {
  std::vector<ml::HDPoint> out;
  for (int i = 0; i < n; ++i) {
    ml::HDPoint p;
    p.id = next++;
    p.coords.resize(9);
    for (auto& c : p.coords) c = static_cast<float>(rng.normal());
    out.push_back(std::move(p));
  }
  return out;
}

/// Runs one allocation: restores WM state, keeps the machine loaded for a
/// few maintain cycles (completing work synchronously), checkpoints.
void run_allocation(const char* label, sched::ClusterSpec spec,
                    util::CheckpointFile& ckpt, util::Rng& rng,
                    ml::PointId& next_id, bool grow_mid_run = false) {
  util::ManualClock clock;
  sched::Scheduler scheduler(spec, sched::MatchPolicy::kFirstMatch, clock);
  wm::DirectBackend maestro(scheduler);
  auto trackers = make_trackers();
  wm::PatchSelector patch_selector(9, 5, 35000);
  wm::FrameSelector frame_selector(0.8, 21);
  wm::WmConfig cfg;
  wm::WorkflowManager wm(cfg, maestro, trackers, patch_selector,
                         frame_selector);
  if (auto state = ckpt.load()) wm.restore(*state);

  // Jobs complete instantly in this demo; trackers route setups -> sims.
  int sims_completed = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    wm.ingest_patches(cycle % 5, synth_patches(rng, next_id, 40));
    wm.maintain(200);
    clock.advance(600);
    // Everything running completes this cycle.
    for (const auto id : scheduler.active_jobs())
      if (scheduler.state(id) == sched::JobState::kRunning) {
        if (scheduler.job(id).spec.type == "cg_sim" ||
            scheduler.job(id).spec.type == "aa_sim")
          ++sims_completed;
        scheduler.complete(id, true);
      }
    if (grow_mid_run && cycle == 1) {
      scheduler.graph().expand(spec.nodes);  // the allocation doubles
      std::printf("  [%s] elastic growth: now %d nodes\n", label,
                  scheduler.graph().n_nodes());
    }
  }
  // Final fill so the buffers carry meaningful state.
  wm.maintain(200);
  for (const auto id : scheduler.active_jobs()) scheduler.cancel(id);

  ckpt.save(wm.serialize());
  std::printf("[%s] %d-node %s: %d sims completed | selector: %zu candidates, "
              "%zu selected | ready buffers: %zu CG + %zu AA\n",
              label, scheduler.graph().n_nodes(),
              spec.gpus_per_node == 6 ? "Summit-shaped" : "Sierra-shaped",
              sims_completed, patch_selector.candidate_count(),
              patch_selector.selected_count(), wm.cg_ready(), wm.aa_ready());
}

}  // namespace

int main() {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("mummi_persist_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  util::CheckpointFile ckpt((dir / "workflow.ckpt").string());
  util::Rng rng(31);
  ml::PointId next_id = 1;

  std::printf("=== persistent workflow across allocations and clusters ===\n\n");
  // Allocation 1: small Summit slice.
  run_allocation("alloc-1", sched::ClusterSpec::summit(4), ckpt, rng, next_id);
  // Allocation 2: bigger slice, elastic growth mid-run.
  run_allocation("alloc-2", sched::ClusterSpec::summit(8), ckpt, rng, next_id,
                 /*grow_mid_run=*/true);
  // Allocation 3: a *different cluster* (Sierra shape, 4 GPUs/node) resumes
  // the same workflow state.
  run_allocation("alloc-3", sched::ClusterSpec::sierra(6), ckpt, rng, next_id);

  std::printf("\nthe workflow state (ML selectors, prepared buffers, restart "
              "ledger) outlived\nthree allocations on two machine shapes — "
              "\"decoupling compute from the system\nstate and dynamism of "
              "the workflow\" (Sec. 6).\n");
  std::filesystem::remove_all(dir);
  return 0;
}
