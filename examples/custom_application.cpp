// Generalizability demo (paper Sec. 4.5): swapping the application
// components while reusing the coordination layer unchanged.
//
// The paper's framework "has enabled us to utilize MuMMI for another
// application: namely, understanding biological interactions of
// neuroreceptors." This example builds such a hypothetical two-scale
// neuroreceptor study:
//   - a *different* encoder (plain pooled-moments PCA-style reduction into
//     4-D instead of the 9-D metric-learning DNN),
//   - a *different* selection strategy (binned sampler instead of FPS),
//   - *different* job types wired purely through configuration files,
//   - a custom JobTracker subclass with an application-specific
//     failure policy,
//   - the same Scheduler/Maestro/WorkflowManager/datastore underneath.
//
// Run: ./custom_application

#include <cstdio>

#include "datastore/store_factory.hpp"
#include "ml/binned_sampler.hpp"
#include "sched/executor.hpp"
#include "util/rng.hpp"
#include "wm/workflow_manager.hpp"

using namespace mummi;

namespace {

/// Application component 1: a simple dimensionality reduction in place of
/// the metric-learning DNN — "a simpler dimensionality reduction (e.g.,
/// principal component analysis)" per Task 2.
std::vector<float> encode_receptor_state(util::Rng& rng) {
  // Stand-in for (gating charge, pore radius, ligand distance, tilt).
  return {static_cast<float>(rng.normal(0.5, 0.2)),
          static_cast<float>(rng.normal(1.2, 0.3)),
          static_cast<float>(rng.exponential(1.0)),
          static_cast<float>(rng.uniform(0.0, 90.0))};
}

/// Application component 2: a tracker that gives flaky docking jobs many
/// retries but never retries production runs (custom policy by inheritance).
class DockingTracker final : public wm::JobTracker {
 public:
  using JobTracker::JobTracker;
  [[nodiscard]] bool should_resubmit(const sched::Job& job) const override {
    return job.state == sched::JobState::kFailed && job.restarts < 5;
  }
};

}  // namespace

int main() {
  util::Rng rng(7);

  std::printf("=== custom application: neuroreceptor two-scale study ===\n\n");

  // Coordination config lives in plain INI — the application only edits
  // configuration, not framework code.
  const auto config = util::Config::parse(
      "[datastore]\n"
      "backend = taridx\n"          // single switch: archive instead of files
      "root = /tmp/mummi_custom_app\n"
      "[job.dock_setup]\n"          // replaces cg_setup
      "cores = 4\n"
      "max_restarts = 5\n"
      "[job.receptor_md]\n"         // replaces cg_sim
      "cores = 2\n"
      "gpus = 1\n");

  auto store = ds::make_store(config);
  std::printf("datastore backend: %s\n", store->backend().c_str());

  // The same scheduler stack as the RAS-RAF app.
  util::WallClock clock;
  sched::Scheduler scheduler(sched::ClusterSpec::laptop(),
                             sched::MatchPolicy::kFirstMatch, clock);
  wm::DirectBackend maestro(scheduler);

  wm::TrackerSet trackers;
  trackers.add(std::make_unique<DockingTracker>(
      wm::JobTracker::config_from(config, "dock_setup")));
  trackers.add(std::make_unique<wm::JobTracker>(
      wm::JobTracker::config_from(config, "receptor_md")));

  // Selection: a 4-D binned sampler replaces the FPS queues; the
  // PatchSelector slot is unused (the WmConfig simply leaves those job
  // types empty).
  ml::BinnedSampler selector({{0.25f, 0.5f, 0.75f},
                              {0.8f, 1.2f, 1.6f},
                              {0.5f, 1.5f},
                              {30.0f, 60.0f}},
                             /*importance=*/0.7, /*seed=*/3);

  // Generate candidate receptor conformations from the (hypothetical)
  // coarse scale, select the most novel, and push them through the job
  // pipeline manually — the WM loop for a two-type application is small
  // enough to inline, which is exactly the paper's "templates provided by
  // the MuMMI workflow" usage model.
  std::vector<ml::HDPoint> candidates;
  for (std::uint64_t id = 1; id <= 500; ++id)
    candidates.push_back({id, encode_receptor_state(rng)});
  selector.add_candidates(candidates);
  std::printf("selector: %zu candidates across %zu bins\n",
              selector.candidate_count(), selector.n_bins());

  // Payloads: docking setup writes an input record; receptor MD consumes it.
  sched::PayloadRegistry payloads;
  payloads.register_type("dock_setup", [&](const sched::Job& job) {
    // Flaky external docking tool: fails 40% of the time; the custom
    // tracker's 5 retries absorb it.
    static thread_local util::Rng flaky(99);
    if (flaky.uniform() < 0.4) return false;
    store->put_text("docked", "conf-" + std::to_string(job.spec.payload),
                    "docked-pose");
    return true;
  });
  payloads.register_type("receptor_md", [&](const sched::Job& job) {
    const auto key = "conf-" + std::to_string(job.spec.payload);
    if (!store->exists("docked", key)) return false;
    store->move("docked", key, "simulated");  // tagging, same as feedback
    return true;
  });
  sched::InlineExecutor executor(std::move(payloads));
  scheduler.on_start([&](const sched::Job& job) {
    const sched::JobId id = job.id;
    executor.launch(job, [&, id](bool ok) { scheduler.complete(id, ok); });
  });

  // Resubmission policy comes from the trackers (restart counts tracked per
  // logical work item).
  int resubmitted = 0;
  std::map<std::uint64_t, int> restarts;
  scheduler.on_finish([&](const sched::Job& job) {
    if (job.state != sched::JobState::kFailed) return;
    sched::Job logical = job;
    logical.restarts = restarts[job.spec.payload];
    if (trackers.tracker(job.spec.type).should_resubmit(logical)) {
      ++restarts[job.spec.payload];
      maestro.submit(job.spec);
      ++resubmitted;
    }
  });

  // Drive: select 20 conformations, dock them, simulate them.
  int docked = 0, simulated = 0;
  for (const auto& pick : selector.select(20)) {
    maestro.submit(trackers.tracker("dock_setup").make_spec(pick.id));
    maestro.poll();
  }
  docked = static_cast<int>(store->keys("docked", "*").size());
  for (const auto& key : store->keys("docked", "*")) {
    const auto id = std::stoull(key.substr(5));
    maestro.submit(trackers.tracker("receptor_md").make_spec(id));
    maestro.poll();
  }
  simulated = static_cast<int>(store->keys("simulated", "*").size());
  store->flush();

  std::printf("docking: 20 selected, %d docked (%d resubmissions absorbed "
              "by the custom tracker)\n",
              docked, resubmitted);
  std::printf("receptor MD: %d simulated; records tagged into 'simulated'\n",
              simulated);
  std::printf("selected-bin histogram is balanced across conformational "
              "space (importance sampling):\n  non-empty bins selected "
              "from: ");
  int bins_used = 0;
  for (auto c : selector.selected_histogram())
    if (c > 0) ++bins_used;
  std::printf("%d\n", bins_used);
  std::printf("\nsame coordination stack, different science: zero framework "
              "changes.\n");
  return 0;
}
