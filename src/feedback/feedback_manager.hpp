// Feedback managers (paper Task 4).
//
// "Generically, a feedback iteration collects data from all running
// simulations, processes it, and reports the analysis. A new abstract API,
// the Feedback Manager, was developed to allow controlling the specific
// details." Processed records are *moved out of the pending namespace* so
// iteration cost scales with ongoing simulations, not with history.
#pragma once

#include <cstddef>
#include <string>

namespace mummi::fb {

/// Timing/count breakdown of one feedback iteration. `*_virtual` components
/// come from calibrated cost models (network, external-process launches) and
/// are what campaign benches report; wall time is measured separately by the
/// caller when needed.
struct IterationStats {
  std::size_t frames = 0;          // records processed this iteration
  double collect_virtual = 0;      // identify + fetch new data
  double process_virtual = 0;      // per-frame computation
  double tag_virtual = 0;          // move out of the pending namespace
  [[nodiscard]] double total_virtual() const {
    return collect_virtual + process_virtual + tag_virtual;
  }
};

/// Virtual per-record costs of the I/O a feedback iteration performs,
/// calibrated per backend. These produce the paper's backend comparison:
/// the throttled-GPFS path gave ~2 h iterations, the Redis path <10 min.
struct FeedbackCosts {
  double identify_per_key = 1e-4;   // list/scan cost per pending record
  double read_per_record = 5e-4;    // fetch one record
  double tag_per_record = 1e-4;     // move out of the namespace
  double process_per_frame = 1e-4;  // aggregate one record's arrays

  // Batched (pipelined) rates: one round trip amortizes the per-op network
  // latency across the whole batch, leaving only the per-record marginal.
  double batch_round_trip = 2e-3;        // fixed cost per batched call
  double read_batch_per_record = 2.5e-5; // fetch one record inside a batch
  double tag_batch_per_record = 2e-5;    // move one record inside a batch

  /// In-memory database rates (Fig. 7 scale). Batch fields keep their
  /// defaults: Redis pipelining is what makes batching pay off.
  static FeedbackCosts redis() { return {1e-4, 5e-4, 1e-4, 1e-4}; }
  /// Contended parallel filesystem with throttled I/O (the pre-Redis path:
  /// directory locking, OS-level blocking, explicit rate limits). There is
  /// no pipelining on a filesystem: batched rates equal per-record rates.
  static FeedbackCosts gpfs_throttled() {
    FeedbackCosts c{4e-3, 2e-2, 1e-2, 1e-4};
    c.batch_round_trip = 0.0;
    c.read_batch_per_record = c.read_per_record;
    c.tag_batch_per_record = c.tag_per_record;
    return c;
  }
};

class FeedbackManager {
 public:
  virtual ~FeedbackManager() = default;

  /// Runs one full iteration: collect -> process -> report -> tag.
  virtual IterationStats iterate() = 0;

  /// Identifier for logs and profiles.
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace mummi::fb
