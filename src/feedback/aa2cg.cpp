#include "feedback/aa2cg.hpp"

#include "util/error.hpp"

namespace mummi::fb {

AaToCgFeedback::AaToCgFeedback(ds::DataStorePtr store, Aa2CgConfig config)
    : store_(std::move(store)), config_(std::move(config)) {
  MUMMI_CHECK(store_ != nullptr);
  MUMMI_CHECK_MSG(config_.pool_size > 0, "pool size must be positive");
}

IterationStats AaToCgFeedback::iterate() {
  IterationStats stats;

  // Phase 1 — collect: identify and fetch new pattern records. The batched
  // path fetches the whole pending set in one pipelined round trip.
  const auto keys = store_->keys(config_.pending_ns, "*");
  stats.collect_virtual +=
      config_.costs.identify_per_key * static_cast<double>(keys.size());
  std::vector<std::string> patterns;
  patterns.reserve(keys.size());
  if (config_.batched) {
    if (!keys.empty()) {
      auto blobs = store_->get_many(config_.pending_ns, keys);
      stats.collect_virtual +=
          config_.costs.batch_round_trip +
          config_.costs.read_batch_per_record * static_cast<double>(keys.size());
      for (const auto& blob : blobs) patterns.push_back(util::to_string(blob));
    }
  } else {
    for (const auto& key : keys) {
      patterns.push_back(store_->get_text(config_.pending_ns, key));
      stats.collect_virtual += config_.costs.read_per_record;
    }
  }

  // Phase 2 — process: the per-frame external-call cost, amortized over the
  // worker pool.
  stats.frames = keys.size();
  if (!keys.empty()) {
    stats.process_virtual +=
        config_.phase_overhead +
        config_.per_frame_seconds * static_cast<double>(keys.size()) /
            static_cast<double>(config_.pool_size);
  }

  // Phase 3 — report: vote within length classes (RAS vs RAS-RAF frames)
  // and refine the CG protein parameters from the best-populated class.
  if (!patterns.empty()) {
    for (auto& p : patterns) {
      auto& bucket = vote_buffer_[p.size()];
      bucket.push_back(std::move(p));
      // Bound the memory of the vote: keep a sliding window per class.
      constexpr std::size_t kWindow = 20000;
      if (bucket.size() > kWindow)
        bucket.erase(bucket.begin(),
                     bucket.end() - static_cast<long>(kWindow));
    }
    const std::vector<std::string>* best = nullptr;
    for (const auto& [len, bucket] : vote_buffer_)
      if (len > 0 && (!best || bucket.size() > best->size())) best = &bucket;
    if (best) params_.consensus = md::consensus_pattern(*best);
    total_frames_ += keys.size();
  }

  // Phase 4 — tag.
  if (config_.batched) {
    if (!keys.empty()) {
      store_->move_many(config_.pending_ns, keys, config_.done_ns);
      stats.tag_virtual +=
          config_.costs.batch_round_trip +
          config_.costs.tag_batch_per_record * static_cast<double>(keys.size());
    }
  } else {
    for (const auto& key : keys) {
      store_->move(config_.pending_ns, key, config_.done_ns);
      stats.tag_virtual += config_.costs.tag_per_record;
    }
  }
  return stats;
}

}  // namespace mummi::fb
