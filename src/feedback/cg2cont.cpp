#include "feedback/cg2cont.hpp"

#include "util/error.hpp"

namespace mummi::fb {

util::Bytes FeedbackRecord::serialize() const {
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(state));
  w.bytes(rdfs.serialize());
  return std::move(w).take();
}

FeedbackRecord FeedbackRecord::deserialize(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  FeedbackRecord rec;
  rec.state = static_cast<cont::ProteinState>(r.u32());
  rec.rdfs = coupling::RdfSet::deserialize(r.bytes());
  return rec;
}

CgToContinuumFeedback::CgToContinuumFeedback(ds::DataStorePtr store,
                                             cont::GridSim2D* target,
                                             Cg2ContConfig config)
    : store_(std::move(store)), target_(target), config_(std::move(config)) {
  MUMMI_CHECK(store_ != nullptr);
}

double CgToContinuumFeedback::weight_from_rdf(
    const md::RdfAccumulator& rdf) const {
  if (rdf.frames() == 0) return 0.0;
  const auto g = rdf.g();
  const auto centers = rdf.centers();
  double enrich = 0;
  int nbins = 0;
  for (std::size_t b = 0; b < g.size(); ++b) {
    if (centers[b] > config_.contact_radius) break;
    enrich += g[b];
    ++nbins;
  }
  if (nbins == 0) return 0.0;
  enrich = enrich / nbins - 1.0;  // >0: lipids enriched near the protein
  // Enrichment means attraction: a negative coupling weight lowers the
  // lipid chemical potential near the protein footprint.
  return -config_.weight_scale * enrich;
}

IterationStats CgToContinuumFeedback::iterate() {
  IterationStats stats;

  // Collect: identify new records, then fetch them — one pipelined round
  // trip on the batched path, a per-record loop otherwise.
  const auto keys = store_->keys(config_.pending_ns, "*");
  stats.collect_virtual +=
      config_.costs.identify_per_key * static_cast<double>(keys.size());
  std::vector<util::Bytes> blobs;
  if (config_.batched && !keys.empty()) {
    blobs = store_->get_many(config_.pending_ns, keys);
    stats.collect_virtual +=
        config_.costs.batch_round_trip +
        config_.costs.read_batch_per_record * static_cast<double>(keys.size());
  }

  // Aggregate per protein state.
  std::vector<coupling::RdfSet> agg(cont::kNumProteinStates);
  std::vector<bool> seen(cont::kNumProteinStates, false);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    FeedbackRecord record;
    if (config_.batched) {
      record = FeedbackRecord::deserialize(blobs[i]);
    } else {
      record =
          FeedbackRecord::deserialize(store_->get(config_.pending_ns, keys[i]));
      stats.collect_virtual += config_.costs.read_per_record;
    }
    const auto s = static_cast<std::size_t>(record.state);
    if (!seen[s]) {
      agg[s] = record.rdfs;
      seen[s] = true;
    } else {
      agg[s].merge(record.rdfs);
    }
    stats.process_virtual += config_.costs.process_per_frame;
    ++stats.frames;
  }

  // Report: derive weights and push them into the running continuum model.
  if (stats.frames > 0) {
    for (int st = 0; st < cont::kNumProteinStates; ++st) {
      if (!seen[static_cast<std::size_t>(st)]) continue;
      const auto& rdfs = agg[static_cast<std::size_t>(st)];
      if (n_species_ == 0) {
        n_species_ = static_cast<int>(rdfs.per_species.size());
        weights_.assign(
            static_cast<std::size_t>(cont::kNumProteinStates) * n_species_,
            0.0);
      }
      for (int sp = 0; sp < n_species_; ++sp) {
        const double w =
            weight_from_rdf(rdfs.per_species[static_cast<std::size_t>(sp)]);
        auto& slot =
            weights_[static_cast<std::size_t>(st) * n_species_ + sp];
        slot = (1.0 - config_.smoothing) * slot + config_.smoothing * w;
        if (target_)
          target_->set_protein_lipid_coupling(
              static_cast<cont::ProteinState>(st), sp, slot);
      }
    }
  }

  // Tag: move processed records out of the pending namespace so the next
  // iteration's cost scales only with new data.
  if (config_.batched) {
    if (!keys.empty()) {
      store_->move_many(config_.pending_ns, keys, config_.done_ns);
      stats.tag_virtual +=
          config_.costs.batch_round_trip +
          config_.costs.tag_batch_per_record * static_cast<double>(keys.size());
    }
  } else {
    for (const auto& key : keys) {
      store_->move(config_.pending_ns, key, config_.done_ns);
      stats.tag_virtual += config_.costs.tag_per_record;
    }
  }
  return stats;
}

}  // namespace mummi::fb
