// CG-to-continuum feedback.
//
// Paper Sec. 4.1 item 7: "aggregates the protein-lipid radial distribution
// functions (RDFs) computed through the online analysis of CG simulations and
// propagates the aggregated result to the ongoing continuum simulation, which
// reads and updates these parameters on the fly."
//
// Data path: CG analyses publish FeedbackRecord blobs (protein state + RDF
// set) into the `pending` namespace of a DataStore. Each iteration lists the
// namespace, fetches and aggregates the records per protein state, converts
// contact enrichment into protein-lipid coupling weights, applies them to the
// continuum model, and tags the records by moving them to `done`.
#pragma once

#include <memory>
#include <vector>

#include "continuum/gridsim2d.hpp"
#include "coupling/analysis.hpp"
#include "datastore/data_store.hpp"
#include "feedback/feedback_manager.hpp"

namespace mummi::fb {

/// What one CG analysis publishes per feedback interval.
struct FeedbackRecord {
  cont::ProteinState state = cont::ProteinState::kRasA;
  coupling::RdfSet rdfs;

  [[nodiscard]] util::Bytes serialize() const;
  static FeedbackRecord deserialize(const util::Bytes& bytes);
};

struct Cg2ContConfig {
  std::string pending_ns = "rdf-pending";
  std::string done_ns = "rdf-done";
  double contact_radius = 0.8;   // nm: bins below this count as contact
  double weight_scale = 0.5;     // enrichment -> coupling magnitude
  double smoothing = 0.3;        // EMA factor applied to the running model
  /// Collect and tag through the batched store API (one pipelined round trip
  /// per phase) instead of a per-record loop.
  bool batched = true;
  FeedbackCosts costs = FeedbackCosts::redis();
};

class CgToContinuumFeedback final : public FeedbackManager {
 public:
  /// `target` may be null (aggregation-only mode for benches); when set, the
  /// derived weights are applied to the running continuum model.
  CgToContinuumFeedback(ds::DataStorePtr store, cont::GridSim2D* target,
                        Cg2ContConfig config = {});

  IterationStats iterate() override;
  [[nodiscard]] std::string name() const override { return "cg2cont"; }

  /// Latest per-(state, species) weights (empty before the first iteration
  /// that saw data). Indexed [state * n_species + species].
  [[nodiscard]] const std::vector<double>& last_weights() const {
    return weights_;
  }
  [[nodiscard]] int n_species() const { return n_species_; }

  /// Converts an aggregated per-species RDF into a coupling weight:
  /// contact enrichment above the ideal-gas baseline becomes attraction.
  [[nodiscard]] double weight_from_rdf(const md::RdfAccumulator& rdf) const;

 private:
  ds::DataStorePtr store_;
  cont::GridSim2D* target_;
  Cg2ContConfig config_;
  std::vector<double> weights_;
  int n_species_ = 0;
};

}  // namespace mummi::fb
