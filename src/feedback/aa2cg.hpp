// AA-to-CG feedback.
//
// Paper Sec. 4.1 item 7 / Sec. 5.2: secondary structures computed from AA
// frames determine the most common pattern; CG protein force-field parameters
// are progressively refined toward it. Each frame costs ~2 s through external
// subprocess calls, so "the feedback process was split into different phases
// for performance optimization, and suitable process pools and localized
// temporary files were used" to keep >97% of iterations within ~10 minutes.
//
// Here: AA analyses publish per-frame pattern strings into `pending`; an
// iteration fetches them in a collect phase, processes them with a worker
// pool (the per-frame external-call cost is virtual, divided by pool size),
// votes a consensus, maps it onto CG parameter refinements and tags the
// frames.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "datastore/data_store.hpp"
#include "feedback/feedback_manager.hpp"
#include "mdengine/secondary_structure.hpp"

namespace mummi::fb {

/// CG protein parameters the feedback refines: per-residue angle stiffness
/// and rest angle derived from the consensus secondary structure. createsim
/// consults this for every new CG system.
struct CgProteinParams {
  std::string consensus;        // pattern, empty until first feedback
  double helix_ktheta = 40.0;   // stiffness applied to helix stretches
  double sheet_ktheta = 25.0;
  double coil_ktheta = 10.0;

  /// Angle stiffness for residue i under the current consensus.
  [[nodiscard]] double ktheta_for(std::size_t i) const {
    if (i >= consensus.size()) return coil_ktheta;
    switch (consensus[i]) {
      case 'H': return helix_ktheta;
      case 'E': return sheet_ktheta;
      default: return coil_ktheta;
    }
  }
};

struct Aa2CgConfig {
  std::string pending_ns = "ss-pending";
  std::string done_ns = "ss-done";
  /// Virtual seconds per frame for the external secondary-structure calls
  /// ("processing each frame needs two system calls ... taking ~2 s").
  double per_frame_seconds = 2.0;
  /// Worker-pool width dividing the per-frame cost. Default calibrated to
  /// Fig. 8: ~1600 frames land at the ~10-minute target.
  int pool_size = 6;
  /// Fixed phase overhead per iteration (pool spin-up, temp files).
  double phase_overhead = 60.0;
  /// Collect and tag through the batched store API (one pipelined round trip
  /// per phase) instead of a per-record loop.
  bool batched = true;
  FeedbackCosts costs = FeedbackCosts::redis();
};

class AaToCgFeedback final : public FeedbackManager {
 public:
  AaToCgFeedback(ds::DataStorePtr store, Aa2CgConfig config = {});

  IterationStats iterate() override;
  [[nodiscard]] std::string name() const override { return "aa2cg"; }

  /// Refined parameters after the latest iteration that saw data.
  [[nodiscard]] const CgProteinParams& params() const { return params_; }
  [[nodiscard]] std::size_t total_frames() const { return total_frames_; }

 private:
  ds::DataStorePtr store_;
  Aa2CgConfig config_;
  CgProteinParams params_;
  /// Votes bucketed by chain length (RAS-only and RAS-RAF frames coexist);
  /// the consensus comes from the best-populated length class.
  std::map<std::size_t, std::vector<std::string>> vote_buffer_;
  std::size_t total_frames_ = 0;
};

}  // namespace mummi::fb
