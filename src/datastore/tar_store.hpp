// DataStore backend over taridx archives: one archive per namespace.
//
// "One of the simplest ways of reducing the inode count is to collect files
// into archives" (paper Sec. 4.2). Each namespace maps to <root>/<ns>.tar +
// <root>/<ns>.tar.idx — two inodes regardless of member count.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "datastore/data_store.hpp"
#include "datastore/taridx.hpp"

namespace mummi::ds {

class TarStore final : public DataStore {
 public:
  explicit TarStore(std::string root);

  void put(const std::string& ns, const std::string& key,
           const util::Bytes& value) override;
  [[nodiscard]] util::Bytes get(const std::string& ns,
                                const std::string& key) const override;
  [[nodiscard]] bool exists(const std::string& ns,
                            const std::string& key) const override;
  [[nodiscard]] std::vector<std::string> keys(
      const std::string& ns, const std::string& pattern) const override;
  bool erase(const std::string& ns, const std::string& key) override;
  void move(const std::string& src_ns, const std::string& key,
            const std::string& dst_ns) override;
  // Batched forms resolve each namespace's archive once per batch instead of
  // once per record (archive lookup takes the store-wide mutex).
  [[nodiscard]] std::vector<util::Bytes> get_many(
      const std::string& ns,
      const std::vector<std::string>& keys) const override;
  void put_many(const std::string& ns,
                const std::vector<std::pair<std::string, util::Bytes>>&
                    records) override;
  void move_many(const std::string& src_ns,
                 const std::vector<std::string>& keys,
                 const std::string& dst_ns) override;
  void flush() override;
  [[nodiscard]] std::string backend() const override { return "taridx"; }

  /// Number of inodes used (2 per touched namespace: tar + idx).
  [[nodiscard]] std::size_t inode_count() const;

 private:
  TarIdx& archive(const std::string& ns) const;

  std::string root_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::string, std::unique_ptr<TarIdx>> archives_;
};

}  // namespace mummi::ds
