#include "datastore/fs_store.hpp"

#include <filesystem>

#include "util/checkpoint.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace fs = std::filesystem;

namespace mummi::ds {

namespace {
void validate(const std::string& ns, const std::string& key) {
  MUMMI_CHECK_MSG(!ns.empty() && ns.find('/') == std::string::npos,
                  "invalid namespace: " + ns);
  MUMMI_CHECK_MSG(!key.empty() && key.find('/') == std::string::npos,
                  "invalid key: " + key);
}
}  // namespace

FsStore::FsStore(std::string root, double op_latency)
    : root_(std::move(root)), op_latency_(op_latency) {
  util::make_dirs(root_);
}

std::string FsStore::path_of(const std::string& ns,
                             const std::string& key) const {
  return root_ + "/" + ns + "/" + key;
}

void FsStore::account() const {
  std::lock_guard lock(mutex_);
  latency_total_ += op_latency_;
}

double FsStore::latency_accounted() const {
  std::lock_guard lock(mutex_);
  return latency_total_;
}

void FsStore::put(const std::string& ns, const std::string& key,
                  const util::Bytes& value) {
  validate(ns, key);
  util::make_dirs(root_ + "/" + ns);
  util::write_file(path_of(ns, key), value);
  account();
}

util::Bytes FsStore::get(const std::string& ns, const std::string& key) const {
  validate(ns, key);
  auto data = util::read_file(path_of(ns, key));
  account();
  if (!data) throw util::StoreError("missing record: " + ns + "/" + key);
  return *data;
}

bool FsStore::exists(const std::string& ns, const std::string& key) const {
  validate(ns, key);
  return fs::exists(path_of(ns, key));
}

std::vector<std::string> FsStore::keys(const std::string& ns,
                                       const std::string& pattern) const {
  std::vector<std::string> out;
  const std::string dir = root_ + "/" + ns;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (util::glob_match(pattern, name)) out.push_back(name);
  }
  account();
  return out;
}

bool FsStore::erase(const std::string& ns, const std::string& key) {
  validate(ns, key);
  account();
  return util::remove_file(path_of(ns, key));
}

void FsStore::move(const std::string& src_ns, const std::string& key,
                   const std::string& dst_ns) {
  validate(src_ns, key);
  validate(dst_ns, key);
  util::make_dirs(root_ + "/" + dst_ns);
  std::error_code ec;
  fs::rename(path_of(src_ns, key), path_of(dst_ns, key), ec);
  account();
  if (ec)
    throw util::StoreError("move failed: " + src_ns + "/" + key + " -> " +
                           dst_ns + ": " + ec.message());
}

std::size_t FsStore::inode_count() const {
  std::size_t n = 0;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       it != fs::recursive_directory_iterator(); ++it)
    if (it->is_regular_file()) ++n;
  return n;
}

}  // namespace mummi::ds
