#include "datastore/fs_store.hpp"

#include <cstring>
#include <filesystem>

#include "obs/metrics.hpp"
#include "util/checkpoint.hpp"
#include "util/crashpoint.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace fs = std::filesystem;

namespace mummi::ds {

namespace {
constexpr const char* kTmpSuffix = ".tmp";

bool is_tmp_name(const std::string& name) {
  const std::size_t n = std::strlen(kTmpSuffix);
  return name.size() > n && name.compare(name.size() - n, n, kTmpSuffix) == 0;
}

void validate(const std::string& ns, const std::string& key) {
  MUMMI_CHECK_MSG(!ns.empty() && ns.find('/') == std::string::npos,
                  "invalid namespace: " + ns);
  MUMMI_CHECK_MSG(!key.empty() && key.find('/') == std::string::npos,
                  "invalid key: " + key);
  // The ".tmp" sibling of a key is the atomic-put staging file; a key with
  // that suffix would collide with another key's staging path.
  MUMMI_CHECK_MSG(!is_tmp_name(key), "reserved key suffix .tmp: " + key);
}
}  // namespace

FsStore::FsStore(std::string root, double op_latency, util::IoRetryPolicy retry)
    : root_(std::move(root)),
      op_latency_(op_latency),
      retry_(std::move(retry)),
      jitter_rng_(retry_.jitter_seed ^ util::fnv1a(root_)) {
  util::make_dirs(root_);
}

void FsStore::inject_failures(int count) {
  std::lock_guard lock(mutex_);
  pending_failures_ += count;
}

int FsStore::injected_remaining() const {
  std::lock_guard lock(mutex_);
  return pending_failures_;
}

std::uint64_t FsStore::io_retries() const {
  std::lock_guard lock(mutex_);
  return io_retries_;
}

void FsStore::armored(const char* what,
                      const std::function<void()>& io) const {
  static obs::Counter& ops = obs::counter("fs.ops");
  static obs::Counter& retries = obs::counter("fs.retries");
  static obs::Counter& injected_failures = obs::counter("fs.injected_failures");
  static obs::Counter& failures = obs::counter("fs.failures");
  ops.inc();
  const util::SleepFn sleep =
      retry_.sleep ? retry_.sleep : util::wall_sleeper();
  std::string last_error = "unavailable";
  for (int attempt = 0; attempt < retry_.backoff.max_attempts; ++attempt) {
    bool injected = false;
    {
      std::lock_guard lock(mutex_);
      if (attempt > 0) ++io_retries_;
      if (pending_failures_ > 0) {
        --pending_failures_;
        injected = true;
      }
    }
    if (attempt > 0) retries.inc();
    if (injected) {
      injected_failures.inc();
      last_error = "injected I/O failure";
    } else {
      try {
        io();
        return;
      } catch (const util::UnavailableError& err) {
        last_error = err.what();
      }
    }
    if (attempt + 1 < retry_.backoff.max_attempts) {
      double delay = 0.0;
      {
        std::lock_guard lock(mutex_);
        delay = retry_.backoff.delay_s(attempt, jitter_rng_);
      }
      sleep(delay);
    }
  }
  failures.inc();
  throw util::UnavailableError(std::string("fs store ") + what +
                               " failed after retries: " + last_error);
}

std::string FsStore::path_of(const std::string& ns,
                             const std::string& key) const {
  return root_ + "/" + ns + "/" + key;
}

void FsStore::account() const {
  std::lock_guard lock(mutex_);
  latency_total_ += op_latency_;
}

double FsStore::latency_accounted() const {
  std::lock_guard lock(mutex_);
  return latency_total_;
}

void FsStore::atomic_put(const std::string& path,
                         const util::Bytes& value) const {
  static obs::Counter& torn_prevented =
      obs::counter("fs.torn_writes_prevented");
  const std::string tmp = path + kTmpSuffix;
  std::error_code ec;
  // A leftover sibling temp is the footprint of a crash inside an earlier
  // put: the write that, done in place, would have torn the record.
  if (fs::exists(tmp, ec)) torn_prevented.inc();
  util::crash_point("fs.put.pre_tmp");
  util::write_file(tmp, value, retry_);
  util::crash_point("fs.put.post_tmp");
  fs::rename(tmp, path, ec);
  if (ec)
    throw util::UnavailableError("atomic put rename failed: " + path + ": " +
                                 ec.message());
  util::crash_point("fs.put.post_rename");
}

void FsStore::put(const std::string& ns, const std::string& key,
                  const util::Bytes& value) {
  validate(ns, key);
  util::make_dirs(root_ + "/" + ns);
  // Crash-atomic: stage the value in a sibling ".tmp" and rename into place,
  // so a reader (or a restart) sees either the old record or the new one,
  // never a torn prefix — the in-place trunc write this replaces left a
  // partial value that a later get() returned as valid.
  armored("put", [&] { atomic_put(path_of(ns, key), value); });
  account();
}

util::Bytes FsStore::get(const std::string& ns, const std::string& key) const {
  validate(ns, key);
  std::optional<util::Bytes> data;
  armored("get", [&] { data = util::read_file(path_of(ns, key)); });
  account();
  // A missing record is a definitive answer, not a transient fault — it is
  // never retried.
  if (!data) throw util::StoreError("missing record: " + ns + "/" + key);
  return *data;
}

bool FsStore::exists(const std::string& ns, const std::string& key) const {
  validate(ns, key);
  return fs::exists(path_of(ns, key));
}

std::vector<std::string> FsStore::keys(const std::string& ns,
                                       const std::string& pattern) const {
  std::vector<std::string> out;
  const std::string dir = root_ + "/" + ns;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    // Staging files from in-flight (or crashed) atomic puts are not records.
    if (is_tmp_name(name)) continue;
    if (util::glob_match(pattern, name)) out.push_back(name);
  }
  account();
  return out;
}

bool FsStore::erase(const std::string& ns, const std::string& key) {
  validate(ns, key);
  account();
  util::crash_point("fs.del.pre");
  return util::remove_file(path_of(ns, key));
}

void FsStore::move(const std::string& src_ns, const std::string& key,
                   const std::string& dst_ns) {
  validate(src_ns, key);
  validate(dst_ns, key);
  util::make_dirs(root_ + "/" + dst_ns);
  util::crash_point("fs.move.pre");
  armored("move", [&] {
    std::error_code ec;
    fs::rename(path_of(src_ns, key), path_of(dst_ns, key), ec);
    if (ec)
      throw util::StoreError("move failed: " + src_ns + "/" + key + " -> " +
                             dst_ns + ": " + ec.message());
  });
  util::crash_point("fs.move.post");
  account();
}

std::vector<util::Bytes> FsStore::get_many(
    const std::string& ns, const std::vector<std::string>& keys) const {
  std::vector<util::Bytes> out;
  out.reserve(keys.size());
  for (const auto& key : keys) {
    validate(ns, key);
    std::optional<util::Bytes> data;
    armored("get", [&] { data = util::read_file(path_of(ns, key)); });
    if (!data) throw util::StoreError("missing record: " + ns + "/" + key);
    out.push_back(std::move(*data));
  }
  if (!keys.empty()) account();
  return out;
}

void FsStore::put_many(
    const std::string& ns,
    const std::vector<std::pair<std::string, util::Bytes>>& records) {
  if (records.empty()) return;
  util::make_dirs(root_ + "/" + ns);
  for (const auto& [key, value] : records) {
    validate(ns, key);
    armored("put", [&] { atomic_put(path_of(ns, key), value); });
  }
  account();
}

void FsStore::move_many(const std::string& src_ns,
                        const std::vector<std::string>& keys,
                        const std::string& dst_ns) {
  if (keys.empty()) return;
  util::make_dirs(root_ + "/" + dst_ns);
  // Each rename is atomic but the batch is not: a mid-batch failure (or
  // crash) leaves a prefix of the keys moved. The error enumerates exactly
  // which, so callers can reconcile instead of guessing.
  std::vector<std::string> moved;
  moved.reserve(keys.size());
  for (const auto& key : keys) {
    validate(src_ns, key);
    validate(dst_ns, key);
    util::crash_point("fs.move_many.mid");
    try {
      armored("move", [&] {
        std::error_code ec;
        fs::rename(path_of(src_ns, key), path_of(dst_ns, key), ec);
        if (ec)
          throw util::StoreError("move failed: " + src_ns + "/" + key + " -> " +
                                 dst_ns + ": " + ec.message());
      });
    } catch (const util::Error& err) {
      std::string already;
      for (const auto& m : moved) {
        if (!already.empty()) already += ",";
        already += m;
      }
      if (already.empty()) already = "none";
      throw util::StoreError(
          "move_many " + src_ns + " -> " + dst_ns + " failed at key '" + key +
          "' (" + std::to_string(moved.size()) + "/" +
          std::to_string(keys.size()) + " already moved: " + already +
          "): " + err.what());
    }
    moved.push_back(key);
  }
  account();
}

std::size_t FsStore::inode_count() const {
  std::size_t n = 0;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       it != fs::recursive_directory_iterator(); ++it)
    if (it->is_regular_file() && !is_tmp_name(it->path().filename().string()))
      ++n;
  return n;
}

}  // namespace mummi::ds
