#include "datastore/taridx.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/checkpoint.hpp"
#include "util/crashpoint.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace fs = std::filesystem;

namespace mummi::ds {

namespace {
constexpr std::size_t kBlock = 512;

struct UstarHeader {
  char name[100];
  char mode[8];
  char uid[8];
  char gid[8];
  char size[12];
  char mtime[12];
  char chksum[8];
  char typeflag;
  char linkname[100];
  char magic[6];
  char version[2];
  char uname[32];
  char gname[32];
  char devmajor[8];
  char devminor[8];
  char prefix[155];
  char pad[12];
};
static_assert(sizeof(UstarHeader) == kBlock, "ustar header must be 512 bytes");

void write_octal(char* field, std::size_t width, std::uint64_t value) {
  // Width includes the trailing NUL, per ustar convention.
  std::snprintf(field, width, "%0*llo", static_cast<int>(width - 1),
                static_cast<unsigned long long>(value));
}

UstarHeader make_header(const std::string& key, std::uint64_t size) {
  UstarHeader h;
  std::memset(&h, 0, sizeof h);
  MUMMI_CHECK_MSG(key.size() < sizeof h.name, "tar member name too long");
  std::memcpy(h.name, key.data(), key.size());
  write_octal(h.mode, sizeof h.mode, 0644);
  write_octal(h.uid, sizeof h.uid, 0);
  write_octal(h.gid, sizeof h.gid, 0);
  write_octal(h.size, sizeof h.size, size);
  write_octal(h.mtime, sizeof h.mtime, 0);
  h.typeflag = '0';  // regular file
  std::memcpy(h.magic, "ustar", 6);
  std::memcpy(h.version, "00", 2);
  std::memcpy(h.uname, "mummi", 5);
  std::memcpy(h.gname, "mummi", 5);
  // Checksum: header bytes with chksum field treated as spaces.
  std::memset(h.chksum, ' ', sizeof h.chksum);
  unsigned sum = 0;
  const auto* bytes = reinterpret_cast<const unsigned char*>(&h);
  for (std::size_t i = 0; i < sizeof h; ++i) sum += bytes[i];
  std::snprintf(h.chksum, sizeof h.chksum, "%06o", sum);
  h.chksum[7] = ' ';
  return h;
}

std::uint64_t parse_octal(const char* field, std::size_t width) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < width && field[i]; ++i) {
    if (field[i] == ' ') continue;
    if (field[i] < '0' || field[i] > '7')
      throw util::FormatError("bad octal field in tar header");
    v = v * 8 + static_cast<std::uint64_t>(field[i] - '0');
  }
  return v;
}

std::uint64_t padded(std::uint64_t n) { return (n + kBlock - 1) / kBlock * kBlock; }
}  // namespace

TarIdx::TarIdx(std::string path) : path_(std::move(path)) {
  if (!fs::exists(path_)) {
    std::ofstream create(path_, std::ios::binary);
    if (!create) throw util::IoError("cannot create archive: " + path_);
  }
  load_or_rebuild_index();
}

TarIdx::~TarIdx() {
  try {
    flush();
  } catch (const std::exception& e) {
    util::log_error("taridx flush failed in destructor: ", e.what());
  }
}

std::vector<std::tuple<std::string, std::uint64_t, std::uint64_t>>
TarIdx::scan(const std::string& tar_path) {
  std::vector<std::tuple<std::string, std::uint64_t, std::uint64_t>> out;
  std::ifstream in(tar_path, std::ios::binary);
  if (!in) throw util::IoError("cannot open archive: " + tar_path);
  std::error_code ec;
  const std::uint64_t file_size = fs::file_size(tar_path, ec);
  if (ec) throw util::IoError("cannot stat archive: " + tar_path);
  UstarHeader h;
  std::uint64_t offset = 0;
  while (in.read(reinterpret_cast<char*>(&h), kBlock)) {
    // Two all-zero blocks (or one, from a torn trailer) end the archive.
    bool all_zero = true;
    const auto* bytes = reinterpret_cast<const unsigned char*>(&h);
    for (std::size_t i = 0; i < kBlock; ++i)
      if (bytes[i] != 0) {
        all_zero = false;
        break;
      }
    if (all_zero) break;
    if (std::memcmp(h.magic, "ustar", 5) != 0) {
      // Garbage at the very start means this is genuinely not a tar; garbage
      // mid-file is the torn tail of a crashed append — everything before it
      // is intact, so recover it and stop.
      if (offset == 0)
        throw util::FormatError("not a ustar archive: " + tar_path);
      util::log_warn("taridx scan: torn member header at offset ", offset,
                     ", truncating recovery: ", tar_path);
      break;
    }
    const std::uint64_t size = parse_octal(h.size, sizeof h.size);
    std::string name(h.name, strnlen(h.name, sizeof h.name));
    if (offset + kBlock + padded(size) > file_size) {
      // Header landed but the member data did not: drop the torn member.
      util::log_warn("taridx scan: truncated member '", name, "' at offset ",
                     offset, ", dropping: ", tar_path);
      break;
    }
    out.emplace_back(std::move(name), offset + kBlock, size);
    offset += kBlock + padded(size);
    in.seekg(static_cast<std::streamoff>(offset));
  }
  return out;
}

void TarIdx::load_or_rebuild_index() {
  std::lock_guard lock(mutex_);
  index_.clear();
  // Try the sidecar first.
  const std::string idx_path = path_ + ".idx";
  bool sidecar_ok = false;
  if (auto raw = util::read_file(idx_path)) {
    try {
      util::ByteReader r(*raw);
      const auto n = r.u64();
      const auto end = r.u64();
      std::map<std::string, Entry> idx;
      for (std::uint64_t i = 0; i < n; ++i) {
        std::string key = r.str();
        Entry e{r.u64(), r.u64()};
        idx[std::move(key)] = e;
      }
      // Validate coverage: the recorded end must not exceed the file size.
      const auto file_size = static_cast<std::uint64_t>(fs::file_size(path_));
      if (end <= file_size) {
        index_ = std::move(idx);
        end_offset_ = end;
        sidecar_ok = true;
      }
    } catch (const util::FormatError&) {
      util::log_warn("taridx sidecar corrupt, rebuilding: ", idx_path);
    }
  }
  if (!sidecar_ok) {
    // Recovery path: rebuild by scanning. Later duplicates overwrite earlier
    // ones, matching the paper's crash-recovery semantics.
    end_offset_ = 0;
    for (const auto& [key, offset, size] : scan(path_)) {
      index_[key] = Entry{offset, size};
      end_offset_ = offset - kBlock + kBlock + padded(size);
    }
    dirty_ = true;
  }
}

void TarIdx::append(const std::string& key, const util::Bytes& value) {
  std::lock_guard lock(mutex_);
  MUMMI_CHECK_MSG(!key.empty(), "empty tar key");
  const UstarHeader h = make_header(key, value.size());
  util::crash_point("tar.append.pre");
  std::fstream out(path_, std::ios::binary | std::ios::in | std::ios::out);
  if (!out) throw util::IoError("cannot open archive for append: " + path_);
  out.seekp(static_cast<std::streamoff>(end_offset_));
  out.write(reinterpret_cast<const char*>(&h), kBlock);
  // Torn window: header down, data not. The ofstream destructor flushes the
  // buffered header, so a crash here leaves a truncated member that the next
  // scan() drops — the record is simply not acknowledged.
  util::crash_point("tar.append.mid");
  out.write(reinterpret_cast<const char*>(value.data()),
            static_cast<std::streamsize>(value.size()));
  const std::uint64_t pad = padded(value.size()) - value.size();
  if (pad > 0) {
    static const char zeros[kBlock] = {};
    out.write(zeros, static_cast<std::streamsize>(pad));
  }
  out.flush();
  if (!out) throw util::IoError("append failed: " + path_);
  util::crash_point("tar.append.post");
  index_[key] = Entry{end_offset_ + kBlock, value.size()};
  end_offset_ += kBlock + padded(value.size());
  dirty_ = true;
}

std::optional<util::Bytes> TarIdx::read(const std::string& key) const {
  Entry entry;
  {
    std::lock_guard lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    entry = it->second;
  }
  std::ifstream in(path_, std::ios::binary);
  if (!in) throw util::IoError("cannot open archive: " + path_);
  in.seekg(static_cast<std::streamoff>(entry.offset));
  util::Bytes data(entry.size);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(entry.size));
  if (!in) throw util::IoError("member read failed: " + key);
  return data;
}

bool TarIdx::contains(const std::string& key) const {
  std::lock_guard lock(mutex_);
  return index_.count(key) > 0;
}

std::vector<std::string> TarIdx::keys() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& [k, _] : index_) out.push_back(k);
  return out;
}

bool TarIdx::erase_key(const std::string& key) {
  std::lock_guard lock(mutex_);
  const bool erased = index_.erase(key) > 0;
  if (erased) dirty_ = true;
  return erased;
}

void TarIdx::persist_index_locked() {
  util::ByteWriter w;
  w.u64(index_.size());
  w.u64(end_offset_);
  for (const auto& [key, e] : index_) {
    w.str(key);
    w.u64(e.offset);
    w.u64(e.size);
  }
  util::write_file(path_ + ".idx", w.data());
}

void TarIdx::flush() {
  std::lock_guard lock(mutex_);
  if (!dirty_) return;
  // End-of-archive trailer: two zero blocks after the last member. Appends
  // overwrite it, so the tar stays valid for external tools at all times.
  std::fstream out(path_, std::ios::binary | std::ios::in | std::ios::out);
  if (!out) throw util::IoError("cannot open archive for trailer: " + path_);
  out.seekp(static_cast<std::streamoff>(end_offset_));
  static const char zeros[2 * kBlock] = {};
  out.write(zeros, sizeof zeros);
  out.flush();
  if (!out) throw util::IoError("trailer write failed: " + path_);
  // Crash here: trailer on disk, sidecar stale. The stale sidecar still
  // validates (its end never exceeds the file size), so the archive reopens
  // with pre-append state — old-state semantics, never a torn index.
  util::crash_point("tar.flush.post_trailer");
  persist_index_locked();
  dirty_ = false;
}

std::size_t TarIdx::count() const {
  std::lock_guard lock(mutex_);
  return index_.size();
}

std::uint64_t TarIdx::data_bytes() const {
  std::lock_guard lock(mutex_);
  return end_offset_;
}

}  // namespace mummi::ds
