// Abstract data interface (paper Sec. 4.2).
//
// "Rather than speculating on all possible scenarios and creating tailored
// implementations, we have developed an abstract notion of a data interface
// to support different specific backends. Currently, we use three backends:
// filesystem, taridx, and redis."
//
// Data lives in (namespace, key) -> byte-stream records. Namespaces are the
// unit of listing and of the feedback "tagging" strategy: processed records
// are *moved out of the relevant namespace* so feedback cost scales with the
// number of ongoing simulations, not with history (paper Task 4).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/bytes.hpp"
#include "util/npy.hpp"

namespace mummi::ds {

class DataStore {
 public:
  virtual ~DataStore() = default;

  /// Stores a record, overwriting any existing value for the key.
  virtual void put(const std::string& ns, const std::string& key,
                   const util::Bytes& value) = 0;

  /// Reads a record. Throws util::StoreError when absent.
  [[nodiscard]] virtual util::Bytes get(const std::string& ns,
                                        const std::string& key) const = 0;

  [[nodiscard]] virtual bool exists(const std::string& ns,
                                    const std::string& key) const = 0;

  /// Lists keys in a namespace matching a glob pattern ('*'/'?'), in
  /// unspecified order.
  [[nodiscard]] virtual std::vector<std::string> keys(
      const std::string& ns, const std::string& pattern = "*") const = 0;

  /// Removes a record; returns whether it existed. Append-only backends
  /// remove the key from their index (the data itself is unreachable but
  /// retained, as pytaridx does).
  virtual bool erase(const std::string& ns, const std::string& key) = 0;

  /// Moves a record to another namespace — the feedback tagging primitive
  /// ("moving files to tar archives or renaming keys in the database").
  /// Throws util::StoreError when the source is absent.
  virtual void move(const std::string& src_ns, const std::string& key,
                    const std::string& dst_ns) = 0;

  // --- batched operations --------------------------------------------------
  // The feedback collect+tag hot path. Defaults loop over the scalar ops, so
  // every backend works unchanged; backends with a cheaper bulk form
  // (pipelined KV batches, amortized archive/lock handling) override them.

  /// Fetches several records from one namespace, in input order. Throws
  /// util::StoreError when any key is absent (same contract as get).
  [[nodiscard]] virtual std::vector<util::Bytes> get_many(
      const std::string& ns, const std::vector<std::string>& keys) const;

  /// Stores several records into one namespace.
  virtual void put_many(
      const std::string& ns,
      const std::vector<std::pair<std::string, util::Bytes>>& records);

  /// Moves several records to another namespace — batched tagging. Throws
  /// util::StoreError when any source is absent.
  virtual void move_many(const std::string& src_ns,
                         const std::vector<std::string>& keys,
                         const std::string& dst_ns);

  /// Number of records in a namespace. Default lists the namespace;
  /// index-backed stores answer without touching any record.
  [[nodiscard]] virtual std::size_t count(const std::string& ns) const;

  /// Persists any buffered state (indices, trailers). No-op by default.
  virtual void flush() {}

  /// Backend identifier ("filesystem", "taridx", "redis").
  [[nodiscard]] virtual std::string backend() const = 0;

  // --- conveniences shared by all backends -------------------------------

  void put_text(const std::string& ns, const std::string& key,
                const std::string& text);
  [[nodiscard]] std::string get_text(const std::string& ns,
                                     const std::string& key) const;

  /// Stores an array as real .npy bytes ("save a Numpy archive into a byte
  /// stream that can be redirected effortlessly to a file, an archive, or a
  /// database — all with a single configuration switch").
  void put_npy(const std::string& ns, const std::string& key,
               const util::NpyArray& array);
  [[nodiscard]] util::NpyArray get_npy(const std::string& ns,
                                       const std::string& key) const;
};

using DataStorePtr = std::shared_ptr<DataStore>;

}  // namespace mummi::ds
