// DataStore backend over the in-memory KV cluster.
//
// Records map to cluster keys "<namespace>:<key>", mirroring Redis key
// conventions. move() is a RENAME — the O(1) tagging operation the fast
// feedback loop relies on.
#pragma once

#include <memory>

#include "datastore/data_store.hpp"
#include "datastore/kv_cluster.hpp"

namespace mummi::ds {

class RedStore final : public DataStore {
 public:
  /// Shares an externally owned cluster (several components talk to the same
  /// cluster in a campaign, as on Summit with the 20-node Redis allocation).
  explicit RedStore(std::shared_ptr<KvCluster> cluster);

  /// Convenience: owns a fresh cluster of `n_servers`.
  explicit RedStore(std::size_t n_servers, KvCostModel cost = {});

  void put(const std::string& ns, const std::string& key,
           const util::Bytes& value) override;
  [[nodiscard]] util::Bytes get(const std::string& ns,
                                const std::string& key) const override;
  [[nodiscard]] bool exists(const std::string& ns,
                            const std::string& key) const override;
  [[nodiscard]] std::vector<std::string> keys(
      const std::string& ns, const std::string& pattern) const override;
  bool erase(const std::string& ns, const std::string& key) override;
  void move(const std::string& src_ns, const std::string& key,
            const std::string& dst_ns) override;
  // Batched forms map onto cluster pipelines (MGET / MSET / MRENAME): one
  // round trip per shard touched instead of one per record. count() answers
  // from the shard namespace indices without scanning a single key.
  [[nodiscard]] std::vector<util::Bytes> get_many(
      const std::string& ns,
      const std::vector<std::string>& keys) const override;
  void put_many(const std::string& ns,
                const std::vector<std::pair<std::string, util::Bytes>>&
                    records) override;
  void move_many(const std::string& src_ns,
                 const std::vector<std::string>& keys,
                 const std::string& dst_ns) override;
  [[nodiscard]] std::size_t count(const std::string& ns) const override;
  [[nodiscard]] std::string backend() const override { return "redis"; }

  [[nodiscard]] KvCluster& cluster() { return *cluster_; }
  [[nodiscard]] const KvCluster& cluster() const { return *cluster_; }

 private:
  static std::string full_key(const std::string& ns, const std::string& key);

  std::shared_ptr<KvCluster> cluster_;
};

}  // namespace mummi::ds
