// Filesystem backend: one directory per namespace, one file per key.
//
// "The simplest data interface accesses the filesystem directly ... most
// suitable for small files, e.g., those that store the state of the
// simulation" (paper Sec. 4.2). Reads and writes go through armored I/O with
// retries; an optional per-operation latency (seconds) models a contended
// parallel filesystem for backend-comparison benches.
#pragma once

#include <mutex>
#include <string>

#include "datastore/data_store.hpp"

namespace mummi::ds {

class FsStore final : public DataStore {
 public:
  /// Records live under `root/<namespace>/<key>`. Keys are sanitized:
  /// '/' is rejected to keep namespaces flat. `op_latency` seconds of
  /// simulated contention is *accounted* (see latency_accounted()), never
  /// slept, so benches can model GPFS throttling without wasting wall time.
  explicit FsStore(std::string root, double op_latency = 0.0);

  void put(const std::string& ns, const std::string& key,
           const util::Bytes& value) override;
  [[nodiscard]] util::Bytes get(const std::string& ns,
                                const std::string& key) const override;
  [[nodiscard]] bool exists(const std::string& ns,
                            const std::string& key) const override;
  [[nodiscard]] std::vector<std::string> keys(
      const std::string& ns, const std::string& pattern) const override;
  bool erase(const std::string& ns, const std::string& key) override;
  void move(const std::string& src_ns, const std::string& key,
            const std::string& dst_ns) override;
  [[nodiscard]] std::string backend() const override { return "filesystem"; }

  /// Total simulated contention latency accumulated so far (seconds).
  [[nodiscard]] double latency_accounted() const;

  /// Number of inodes (files) currently held — the metric tar archiving
  /// reduces 9000x in the paper.
  [[nodiscard]] std::size_t inode_count() const;

  [[nodiscard]] const std::string& root() const { return root_; }

 private:
  [[nodiscard]] std::string path_of(const std::string& ns,
                                    const std::string& key) const;
  void account() const;

  std::string root_;
  double op_latency_;
  mutable std::mutex mutex_;
  mutable double latency_total_ = 0.0;
};

}  // namespace mummi::ds
