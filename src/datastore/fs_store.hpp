// Filesystem backend: one directory per namespace, one file per key.
//
// "The simplest data interface accesses the filesystem directly ... most
// suitable for small files, e.g., those that store the state of the
// simulation" (paper Sec. 4.2). Reads and writes go through armored I/O with
// retries; an optional per-operation latency (seconds) models a contended
// parallel filesystem for backend-comparison benches.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "datastore/data_store.hpp"
#include "util/checkpoint.hpp"
#include "util/rng.hpp"

namespace mummi::ds {

class FsStore final : public DataStore {
 public:
  /// Records live under `root/<namespace>/<key>`. Keys are sanitized:
  /// '/' is rejected to keep namespaces flat, and the ".tmp" suffix is
  /// reserved for the crash-atomic put staging file. `op_latency` seconds of
  /// simulated contention is *accounted* (see latency_accounted()), never
  /// slept, so benches can model GPFS throttling without wasting wall time.
  /// `retry` governs the armored I/O paths (put/get/move): capped
  /// exponential backoff with deterministic jitter between attempts.
  explicit FsStore(std::string root, double op_latency = 0.0,
                   util::IoRetryPolicy retry = {});

  void put(const std::string& ns, const std::string& key,
           const util::Bytes& value) override;
  [[nodiscard]] util::Bytes get(const std::string& ns,
                                const std::string& key) const override;
  [[nodiscard]] bool exists(const std::string& ns,
                            const std::string& key) const override;
  [[nodiscard]] std::vector<std::string> keys(
      const std::string& ns, const std::string& pattern) const override;
  bool erase(const std::string& ns, const std::string& key) override;
  void move(const std::string& src_ns, const std::string& key,
            const std::string& dst_ns) override;
  // Batched forms keep per-file armored I/O (each file can still fail and
  // retry independently) but pay directory setup and the simulated
  // contention latency once per batch instead of once per record.
  [[nodiscard]] std::vector<util::Bytes> get_many(
      const std::string& ns,
      const std::vector<std::string>& keys) const override;
  void put_many(const std::string& ns,
                const std::vector<std::pair<std::string, util::Bytes>>&
                    records) override;
  void move_many(const std::string& src_ns,
                 const std::vector<std::string>& keys,
                 const std::string& dst_ns) override;
  [[nodiscard]] std::string backend() const override { return "filesystem"; }

  /// Total simulated contention latency accumulated so far (seconds).
  [[nodiscard]] double latency_accounted() const;

  /// Number of inodes (files) currently held — the metric tar archiving
  /// reduces 9000x in the paper.
  [[nodiscard]] std::size_t inode_count() const;

  [[nodiscard]] const std::string& root() const { return root_; }

  // --- fault injection (paper Sec. 4.4: "retrials if reading/writing
  // fails") ----------------------------------------------------------------
  /// The next `count` armored I/O attempts fail with util::UnavailableError
  /// before touching the filesystem; the retry loop absorbs them (or throws
  /// once the backoff policy is exhausted).
  void inject_failures(int count);
  [[nodiscard]] int injected_remaining() const;
  /// Armored I/O attempts beyond the first, summed over all operations.
  [[nodiscard]] std::uint64_t io_retries() const;

 private:
  [[nodiscard]] std::string path_of(const std::string& ns,
                                    const std::string& key) const;
  /// Crash-atomic single-record write: stage in `path + ".tmp"`, rename into
  /// place. A crash leaves either the old record or the new one, plus at
  /// worst a stale .tmp that the next put detects (fs.torn_writes_prevented)
  /// and overwrites.
  void atomic_put(const std::string& path, const util::Bytes& value) const;
  void account() const;
  /// Runs `io` under the retry policy. Injected failures consume one pending
  /// count per attempt; exhaustion throws util::UnavailableError.
  void armored(const char* what, const std::function<void()>& io) const;

  std::string root_;
  double op_latency_;
  util::IoRetryPolicy retry_;
  mutable std::mutex mutex_;
  mutable double latency_total_ = 0.0;
  mutable int pending_failures_ = 0;
  mutable std::uint64_t io_retries_ = 0;
  mutable util::Rng jitter_rng_;
};

}  // namespace mummi::ds
