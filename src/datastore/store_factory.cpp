#include "datastore/store_factory.hpp"

#include "datastore/fs_store.hpp"
#include "datastore/red_store.hpp"
#include "datastore/tar_store.hpp"
#include "util/error.hpp"

namespace mummi::ds {

DataStorePtr make_store(const util::Config& config) {
  const std::string backend = config.get_string("datastore.backend");
  if (backend == "filesystem") {
    return std::make_shared<FsStore>(
        config.get_string("datastore.root"),
        config.get_double("datastore.latency", 0.0));
  }
  if (backend == "taridx") {
    return std::make_shared<TarStore>(config.get_string("datastore.root"));
  }
  if (backend == "redis") {
    const auto servers =
        static_cast<std::size_t>(config.get_int("datastore.servers", 20));
    return std::make_shared<RedStore>(servers);
  }
  throw util::ConfigError("unknown datastore backend: " + backend);
}

}  // namespace mummi::ds
