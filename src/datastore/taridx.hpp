// taridx: indexed, append-only tar archives (the pytaridx substitute).
//
// Paper Sec. 4.2/5.2: pytaridx collects millions of small files into standard
// tar archives with a complementary index file for random access — 1.03B
// files went into 114,552 archives (a 9000x inode reduction) at ~575 files/s
// read throughput. Properties reproduced here:
//   - archives are standard ustar tar files, readable by any tar tool;
//   - writes are append-only, so a crash can never corrupt earlier members;
//   - an index sidecar (<path>.idx) maps key -> (offset, size) for random
//     access;
//   - if the index is missing or stale, it is rebuilt by scanning the tar;
//   - duplicate keys (e.g., a retried write after a failure) resolve to the
//     last appended copy — "the same key gets reinserted and is taken to be
//     the correct value".
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace mummi::ds {

class TarIdx {
 public:
  /// Opens (creating if absent) the archive at `path` with its `<path>.idx`
  /// sidecar. If the sidecar is missing or does not cover the whole archive,
  /// the index is rebuilt by scanning the tar.
  explicit TarIdx(std::string path);
  ~TarIdx();

  TarIdx(const TarIdx&) = delete;
  TarIdx& operator=(const TarIdx&) = delete;

  /// Appends a member. An existing key is shadowed by the new copy.
  void append(const std::string& key, const util::Bytes& value);

  /// Random-access read of the newest copy of a member.
  [[nodiscard]] std::optional<util::Bytes> read(const std::string& key) const;

  [[nodiscard]] bool contains(const std::string& key) const;

  /// Keys currently in the index, sorted.
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Removes a key from the *index only*; the member bytes remain in the
  /// archive (append-only media cannot reclaim them).
  bool erase_key(const std::string& key);

  /// Writes the tar end-of-archive trailer and persists the index sidecar.
  /// Called automatically from the destructor.
  void flush();

  /// Number of indexed members.
  [[nodiscard]] std::size_t count() const;

  /// Archive size in bytes (members + headers, excluding trailer).
  [[nodiscard]] std::uint64_t data_bytes() const;

  [[nodiscard]] const std::string& path() const { return path_; }

  /// Scans a tar file and returns (key, offset-of-data, size) for every
  /// member — the recovery path and also how foreign tars are ingested.
  static std::vector<std::tuple<std::string, std::uint64_t, std::uint64_t>>
  scan(const std::string& tar_path);

 private:
  struct Entry {
    std::uint64_t offset;  // offset of member *data* (past the header)
    std::uint64_t size;
  };

  void load_or_rebuild_index();
  void persist_index_locked();

  std::string path_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> index_;
  std::uint64_t end_offset_ = 0;  // where the next header goes
  bool dirty_ = false;
};

}  // namespace mummi::ds
