// Armored client for the KV cluster: retry/backoff + per-shard circuit
// breaker.
//
// Paper Sec. 4.4: the feedback loop must survive "Redis server deaths" and
// transient network faults. A bare KvCluster call throws UnavailableError the
// moment a shard is down; ResilientKvClient wraps every operation in bounded
// exponential backoff with deterministic jitter (transient blips are absorbed
// in-call) and a per-shard circuit breaker (a dead shard is not hammered:
// after `failure_threshold` consecutive failures the breaker opens and calls
// fail fast until `cooldown_s` of clock time passes, then a half-open trial
// probes the shard).
//
// Waiting is pluggable like everywhere else in mummi-cpp: live runs sleep,
// the campaign accounts virtual seconds, tests record. The breaker reads an
// injected util::Clock so the whole machinery is exact under virtual time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "datastore/kv_cluster.hpp"
#include "util/backoff.hpp"
#include "util/clock.hpp"

namespace mummi::ds {

struct CircuitBreakerConfig {
  int failure_threshold = 3;  // consecutive failures until the breaker opens
  double cooldown_s = 30.0;   // open duration before a half-open trial
};

struct ResilientKvStats {
  std::uint64_t attempts = 0;        // individual cluster calls tried
  std::uint64_t retries = 0;         // attempts beyond the first, per op
  std::uint64_t failures = 0;        // operations that exhausted retries
  std::uint64_t breaker_opens = 0;   // closed/half-open -> open transitions
  std::uint64_t short_circuits = 0;  // ops refused while a breaker was open
  double backoff_s = 0.0;            // total backoff waited (virtual or real)
};

class ResilientKvClient {
 public:
  ResilientKvClient(KvCluster& kv, const util::Clock& clock,
                    util::BackoffPolicy backoff = {},
                    CircuitBreakerConfig breaker = {},
                    std::uint64_t jitter_seed = 0xfa17);

  /// Overrides the backoff wait (default: accounted into stats().backoff_s
  /// without sleeping, the right choice under virtual time).
  void set_sleeper(util::SleepFn sleep) { sleep_ = std::move(sleep); }

  // Mirrors the KvCluster surface. On unavailability each call retries under
  // the backoff policy; once retries exhaust (or the shard's breaker is
  // open) util::UnavailableError propagates to the caller.
  void set(const std::string& key, util::Bytes value);
  [[nodiscard]] std::optional<util::Bytes> get(const std::string& key);
  [[nodiscard]] bool exists(const std::string& key);
  bool del(const std::string& key);
  bool rename(const std::string& from, const std::string& to);
  [[nodiscard]] std::vector<std::string> keys(const std::string& pattern);

  // Batched forms with batch-aware retry: each carries a per-sub-op done
  // mask across attempts, so a mid-batch transient retries only the shard
  // groups that had not committed — completed sub-ops are never re-applied
  // (an mdel/mrename replay would misreport them as missing, and every
  // replayed sub-op would double-charge virtual time). Guarded by the
  // cluster-wide breaker, like keys(): a batch spans shards.
  [[nodiscard]] std::vector<std::optional<util::Bytes>> get_many(
      const std::vector<std::string>& keys);
  void set_many(const std::vector<std::pair<std::string, util::Bytes>>& kvs);
  /// Returns the number of keys that existed and were deleted.
  std::size_t del_many(const std::vector<std::string>& keys);
  /// Returns the number of pairs whose source existed and was renamed.
  std::size_t rename_many(
      const std::vector<std::pair<std::string, std::string>>& pairs);

  enum class BreakerState { kClosed, kOpen, kHalfOpen };
  [[nodiscard]] BreakerState breaker_state(std::size_t shard) const;
  [[nodiscard]] const ResilientKvStats& stats() const { return stats_; }
  [[nodiscard]] KvCluster& cluster() { return kv_; }

 private:
  struct Breaker {
    int consecutive_failures = 0;
    bool open = false;
    double open_until = 0.0;
  };

  /// Runs `op` with retry/backoff against the breaker guarding `shard`.
  /// `shard` < 0 guards the whole cluster (keys() scans every shard).
  template <typename Op>
  auto guarded(long shard, Op&& op) -> decltype(op());

  [[nodiscard]] Breaker& breaker_for(long shard);
  bool admit(Breaker& b);          // false = short-circuit (breaker open)
  void note_success(Breaker& b);
  void note_failure(Breaker& b);

  KvCluster& kv_;
  const util::Clock& clock_;
  util::BackoffPolicy backoff_;
  CircuitBreakerConfig breaker_cfg_;
  util::Rng jitter_rng_;
  util::SleepFn sleep_;
  std::vector<Breaker> breakers_;  // one per shard + one cluster-wide (last)
  ResilientKvStats stats_;
};

}  // namespace mummi::ds
