// In-memory sharded key-value cluster (the Redis substitute).
//
// Paper Sec. 4.2: "MuMMI's redis interface sets up a cluster of Redis servers
// that are allocated randomly to all compute nodes ... we leverage Redis as a
// short-term and highly responsive in-memory cache to reduce the amount of
// time per feedback loop."
//
// KvCluster implements the query surface the feedback loop uses — SET / GET /
// KEYS(pattern) / DEL / RENAME plus the pipelined batch forms MGET / MSET /
// MDEL / MRENAME — over N shards guarded by shared mutexes (shared for
// reads, exclusive for mutations). Each shard keeps a secondary
// namespace index ("<ns>:" key prefix -> key set) so namespace-confined
// listing and counting are O(keys-in-namespace), not O(total keys) — the
// property the paper's tagging strategy exists to provide ("feedback cost
// scales with the number of ongoing simulations, not with history").
//
// A cost model *accounts* (never sleeps) virtual network time per operation
// so benches can report Summit-calibrated latencies (Fig. 7) while running at
// memory speed. Batched operations charge Redis-pipelining semantics: one
// round trip per shard touched plus a small per-key marginal, which is where
// the measured collect+tag speedup comes from.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/bytes.hpp"

namespace mummi::obs {
class Counter;
}  // namespace mummi::obs

namespace mummi::ds {

/// Virtual-time cost of cluster operations, calibrated to the paper's
/// measured rates (~10k key-retrievals+deletions/s, ~2k value-reads/s on a
/// 20-node cluster at 4000-node scale).
struct KvCostModel {
  double per_query = 1.0e-4;        // seconds per round trip (del/set)
  double per_read = 5.0e-4;         // seconds per value retrieval
  double per_byte = 2.0e-9;         // payload transfer
  double per_scanned_key = 2.0e-8;  // KEYS pattern scan per stored key
  double per_returned_key = 1.0e-4;  // KEYS result transfer per matched key
  /// Marginal per sub-operation inside a pipelined batch: the per-key server
  /// work once the round trip is amortized over the whole shard group.
  double batch_per_key = 2.0e-5;
};

class KvCluster {
 public:
  /// A cluster of `n_servers` shards. Keys map to shards by hash, mirroring
  /// Redis hash slots.
  explicit KvCluster(std::size_t n_servers, KvCostModel cost = {});

  /// Operations on a down shard throw util::UnavailableError. Availability
  /// is checked under the same shard lock as the data access (no
  /// check-then-act window). Cross-shard renames hold both shard locks (in
  /// index order) and verify both are reachable *before* mutating, so a down
  /// destination never loses the source record.
  void set(const std::string& key, util::Bytes value);
  [[nodiscard]] std::optional<util::Bytes> get(const std::string& key) const;
  [[nodiscard]] bool exists(const std::string& key) const;
  bool del(const std::string& key);
  /// Renames a key (the feedback "tagging" primitive). Returns false when
  /// the source key is absent. Cross-shard renames are delete+set and charge
  /// two round trips (one per shard).
  bool rename(const std::string& from, const std::string& to);

  /// All keys matching a glob pattern, across every shard, in sorted order.
  /// Patterns with a literal "<ns>:" prefix ("rdf-pending:*") are routed
  /// through the namespace index and never scan other namespaces' keys.
  /// Throws util::UnavailableError if any shard is down (a partial scan
  /// would be silent data loss for the feedback loop).
  [[nodiscard]] std::vector<std::string> keys(const std::string& pattern) const;

  /// Namespace-confined listing: full keys "<ns>:<tail>" whose tail matches
  /// `pattern` (`ns` empty selects keys containing no ':'). O(keys in `ns`),
  /// independent of every other namespace. Sorted order.
  [[nodiscard]] std::vector<std::string> keys(const std::string& ns,
                                              const std::string& pattern) const;

  /// Number of keys in a namespace, from the index alone — no key is
  /// scanned or transferred.
  [[nodiscard]] std::size_t count(const std::string& ns) const;

  // --- pipelined batch operations ------------------------------------------
  // Redis-pipelining semantics: sub-ops are grouped per shard, each touched
  // shard's lock is taken once, and the cost model charges one round trip per
  // shard touched plus `batch_per_key` per sub-op. Results land at the same
  // index as the input key. The `done` forms let a retrying client resume a
  // partially applied batch: entries whose `done[i]` is nonzero are skipped,
  // and each sub-op sets its flag the moment its shard group commits — a
  // mid-batch UnavailableError therefore never double-applies completed
  // sub-ops. Batches with duplicate keys (or rename pairs sharing keys)
  // resolve same-shard conflicts in input order and cross-shard conflicts in
  // shard order.

  [[nodiscard]] std::vector<std::optional<util::Bytes>> mget(
      const std::vector<std::string>& keys) const;
  void mget(const std::vector<std::string>& keys,
            std::vector<std::optional<util::Bytes>>& out,
            std::vector<char>& done) const;

  void mset(const std::vector<std::pair<std::string, util::Bytes>>& kvs);
  void mset(const std::vector<std::pair<std::string, util::Bytes>>& kvs,
            std::vector<char>& done);

  /// Returns the number of keys that existed and were deleted.
  std::size_t mdel(const std::vector<std::string>& keys);
  void mdel(const std::vector<std::string>& keys, std::vector<char>& deleted,
            std::vector<char>& done);

  /// Batched tagging: renames each (from, to) pair. Returns the number of
  /// pairs whose source existed. Cross-shard pairs lock source and
  /// destination shards together (index order) so a down destination aborts
  /// the group before any of its records move.
  std::size_t mrename(
      const std::vector<std::pair<std::string, std::string>>& pairs);
  void mrename(const std::vector<std::pair<std::string, std::string>>& pairs,
               std::vector<char>& renamed, std::vector<char>& done);

  // --- fault injection (paper Sec. 4.4: "Redis server deaths") -------------
  /// Takes shard `i` down; `wipe` additionally loses its in-memory data
  /// (a server death without persistence, vs. a reachable-but-partitioned
  /// shard that keeps it).
  void fail_server(std::size_t i, bool wipe = false);
  /// Brings shard `i` back into service.
  void recover_server(std::size_t i);
  [[nodiscard]] bool server_up(std::size_t i) const;
  [[nodiscard]] std::size_t servers_down() const;
  /// The next `count` operations touching shard `i` fail transiently with
  /// util::UnavailableError (flaky network), then service resumes — the
  /// deterministic way to exercise bounded-backoff retry paths. A batch
  /// operation consumes one per shard visit (it is one round trip).
  void inject_transient_errors(std::size_t i, int count);

  [[nodiscard]] std::size_t n_servers() const { return shards_.size(); }
  [[nodiscard]] std::size_t server_of(const std::string& key) const;
  [[nodiscard]] std::size_t total_keys() const;
  [[nodiscard]] std::uint64_t total_bytes() const;

  /// Accumulated virtual network seconds, split by operation class — the
  /// quantities Fig. 7 plots.
  [[nodiscard]] double sim_seconds_keys() const { return t_keys_.load(); }
  [[nodiscard]] double sim_seconds_reads() const { return t_reads_.load(); }
  [[nodiscard]] double sim_seconds_deletes() const { return t_dels_.load(); }
  [[nodiscard]] double sim_seconds_writes() const { return t_writes_.load(); }
  /// Sum of the four per-class ledgers — what benches report as "KV time".
  [[nodiscard]] double total_sim_seconds() const;
  void reset_sim_time();

 private:
  struct Shard {
    /// Lock discipline: shared for get/exists/keys/count/mget, exclusive for
    /// every mutation and for fail/recover. `transient_errors` is atomic so
    /// a shared-lock read can consume an injected error without upgrading.
    mutable std::shared_mutex mutex;
    std::unordered_map<std::string, util::Bytes> data;
    /// Secondary index: namespace -> keys. The namespace of a key is the
    /// prefix before its first ':' ("" for keys without one). Kept exactly
    /// in sync with `data` under the exclusive lock; empty sets are erased
    /// so count()/keys(ns) never iterate dead namespaces.
    std::unordered_map<std::string, std::unordered_set<std::string>> by_ns;
    bool up = true;
    // Remaining injected op failures; mutable so a const read path holding
    // only the shared lock can consume one.
    mutable std::atomic<int> transient_errors{0};
  };

  static void add_time(std::atomic<double>& counter, double dt);
  static std::string_view ns_of(std::string_view key);
  static void index_add(Shard& shard, const std::string& key);
  static void index_remove(Shard& shard, const std::string& key);
  /// Availability check folded into the data op: caller holds `shard`'s lock
  /// (shared or exclusive). Throws UnavailableError if the shard is down or
  /// consumes one injected transient error.
  void check_shard_locked(const Shard& shard, std::size_t i) const;
  /// Shared scan implementation for keys(pattern) and keys(ns, pattern).
  [[nodiscard]] std::vector<std::string> scan(const std::string* ns,
                                              const std::string& pattern) const;
  /// Same-slot move of `from`'s record to `to` across (possibly identical)
  /// shards; caller holds both exclusive locks. Returns false when absent.
  static bool move_locked(Shard& src, Shard& dst, const std::string& from,
                          const std::string& to);

  std::vector<std::unique_ptr<Shard>> shards_;
  KvCostModel cost_;
  /// Per-shard op counters ("kv.shard.<i>.ops"), cached at construction so
  /// the hot KV paths never build a metric name. Registry handles are
  /// process-stable, and clusters of equal size share them. A batch visit
  /// counts once per shard touched (it models one pipelined round trip).
  std::vector<obs::Counter*> shard_ops_;
  mutable std::atomic<double> t_keys_{0.0};
  mutable std::atomic<double> t_reads_{0.0};
  mutable std::atomic<double> t_dels_{0.0};
  mutable std::atomic<double> t_writes_{0.0};
};

}  // namespace mummi::ds
