// In-memory sharded key-value cluster (the Redis substitute).
//
// Paper Sec. 4.2: "MuMMI's redis interface sets up a cluster of Redis servers
// that are allocated randomly to all compute nodes ... we leverage Redis as a
// short-term and highly responsive in-memory cache to reduce the amount of
// time per feedback loop."
//
// KvCluster implements the query surface the feedback loop uses — SET / GET /
// KEYS(pattern) / DEL / RENAME — over N mutex-guarded hash shards. A cost
// model *accounts* (never sleeps) virtual network time per operation so
// benches can report Summit-calibrated latencies (Fig. 7) while running at
// memory speed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/bytes.hpp"

namespace mummi::obs {
class Counter;
}  // namespace mummi::obs

namespace mummi::ds {

/// Virtual-time cost of cluster operations, calibrated to the paper's
/// measured rates (~10k key-retrievals+deletions/s, ~2k value-reads/s on a
/// 20-node cluster at 4000-node scale).
struct KvCostModel {
  double per_query = 1.0e-4;        // seconds per round trip (del/set)
  double per_read = 5.0e-4;         // seconds per value retrieval
  double per_byte = 2.0e-9;         // payload transfer
  double per_scanned_key = 2.0e-8;  // KEYS pattern scan per stored key
  double per_returned_key = 1.0e-4;  // KEYS result transfer per matched key
};

class KvCluster {
 public:
  /// A cluster of `n_servers` shards. Keys map to shards by hash, mirroring
  /// Redis hash slots.
  explicit KvCluster(std::size_t n_servers, KvCostModel cost = {});

  /// Operations on a down shard throw util::UnavailableError. Cross-shard
  /// renames verify both shards are reachable *before* mutating, so a down
  /// destination never loses the source record.
  void set(const std::string& key, util::Bytes value);
  [[nodiscard]] std::optional<util::Bytes> get(const std::string& key) const;
  [[nodiscard]] bool exists(const std::string& key) const;
  bool del(const std::string& key);
  /// Renames a key (the feedback "tagging" primitive). Returns false when
  /// the source key is absent. Cross-shard renames are delete+set.
  bool rename(const std::string& from, const std::string& to);

  /// All keys matching a glob pattern, across every shard. Throws
  /// util::UnavailableError if any shard is down (a partial scan would be
  /// silent data loss for the feedback loop).
  [[nodiscard]] std::vector<std::string> keys(const std::string& pattern) const;

  // --- fault injection (paper Sec. 4.4: "Redis server deaths") -------------
  /// Takes shard `i` down; `wipe` additionally loses its in-memory data
  /// (a server death without persistence, vs. a reachable-but-partitioned
  /// shard that keeps it).
  void fail_server(std::size_t i, bool wipe = false);
  /// Brings shard `i` back into service.
  void recover_server(std::size_t i);
  [[nodiscard]] bool server_up(std::size_t i) const;
  [[nodiscard]] std::size_t servers_down() const;
  /// The next `count` operations touching shard `i` fail transiently with
  /// util::UnavailableError (flaky network), then service resumes — the
  /// deterministic way to exercise bounded-backoff retry paths.
  void inject_transient_errors(std::size_t i, int count);

  [[nodiscard]] std::size_t n_servers() const { return shards_.size(); }
  [[nodiscard]] std::size_t server_of(const std::string& key) const;
  [[nodiscard]] std::size_t total_keys() const;
  [[nodiscard]] std::uint64_t total_bytes() const;

  /// Accumulated virtual network seconds, split by operation class — the
  /// quantities Fig. 7 plots.
  [[nodiscard]] double sim_seconds_keys() const { return t_keys_.load(); }
  [[nodiscard]] double sim_seconds_reads() const { return t_reads_.load(); }
  [[nodiscard]] double sim_seconds_deletes() const { return t_dels_.load(); }
  [[nodiscard]] double sim_seconds_writes() const { return t_writes_.load(); }
  void reset_sim_time();

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, util::Bytes> data;
    bool up = true;
    int transient_errors = 0;  // remaining injected op failures
  };

  static void add_time(std::atomic<double>& counter, double dt);
  /// Throws UnavailableError if the shard is down or consumes one injected
  /// transient error. Callers hold no lock; this takes the shard's briefly.
  void check_available(std::size_t i) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  KvCostModel cost_;
  /// Per-shard op counters ("kv.shard.<i>.ops"), cached at construction so
  /// the hot KV paths never build a metric name. Registry handles are
  /// process-stable, and clusters of equal size share them.
  std::vector<obs::Counter*> shard_ops_;
  mutable std::atomic<double> t_keys_{0.0};
  mutable std::atomic<double> t_reads_{0.0};
  mutable std::atomic<double> t_dels_{0.0};
  mutable std::atomic<double> t_writes_{0.0};
};

}  // namespace mummi::ds
