#include "datastore/tar_store.hpp"

#include "util/checkpoint.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace mummi::ds {

TarStore::TarStore(std::string root) : root_(std::move(root)) {
  util::make_dirs(root_);
}

TarIdx& TarStore::archive(const std::string& ns) const {
  MUMMI_CHECK_MSG(!ns.empty() && ns.find('/') == std::string::npos,
                  "invalid namespace: " + ns);
  std::lock_guard lock(mutex_);
  auto it = archives_.find(ns);
  if (it == archives_.end()) {
    auto tar = std::make_unique<TarIdx>(root_ + "/" + ns + ".tar");
    it = archives_.emplace(ns, std::move(tar)).first;
  }
  return *it->second;
}

void TarStore::put(const std::string& ns, const std::string& key,
                   const util::Bytes& value) {
  archive(ns).append(key, value);
}

util::Bytes TarStore::get(const std::string& ns, const std::string& key) const {
  auto data = archive(ns).read(key);
  if (!data) throw util::StoreError("missing record: " + ns + "/" + key);
  return *data;
}

bool TarStore::exists(const std::string& ns, const std::string& key) const {
  return archive(ns).contains(key);
}

std::vector<std::string> TarStore::keys(const std::string& ns,
                                        const std::string& pattern) const {
  std::vector<std::string> out;
  for (auto& key : archive(ns).keys())
    if (util::glob_match(pattern, key)) out.push_back(std::move(key));
  return out;
}

bool TarStore::erase(const std::string& ns, const std::string& key) {
  // Index-only removal: "one may explicitly manipulate the associated index
  // files to 'remove' a key [but] the data itself cannot be updated".
  return archive(ns).erase_key(key);
}

void TarStore::move(const std::string& src_ns, const std::string& key,
                    const std::string& dst_ns) {
  auto data = archive(src_ns).read(key);
  if (!data) throw util::StoreError("missing record: " + src_ns + "/" + key);
  archive(dst_ns).append(key, *data);
  archive(src_ns).erase_key(key);
}

std::vector<util::Bytes> TarStore::get_many(
    const std::string& ns, const std::vector<std::string>& keys) const {
  TarIdx& tar = archive(ns);
  std::vector<util::Bytes> out;
  out.reserve(keys.size());
  for (const auto& key : keys) {
    auto data = tar.read(key);
    if (!data) throw util::StoreError("missing record: " + ns + "/" + key);
    out.push_back(std::move(*data));
  }
  return out;
}

void TarStore::put_many(
    const std::string& ns,
    const std::vector<std::pair<std::string, util::Bytes>>& records) {
  TarIdx& tar = archive(ns);
  for (const auto& [key, value] : records) tar.append(key, value);
}

void TarStore::move_many(const std::string& src_ns,
                         const std::vector<std::string>& keys,
                         const std::string& dst_ns) {
  if (keys.empty()) return;
  TarIdx& src = archive(src_ns);
  TarIdx& dst = archive(dst_ns);
  for (const auto& key : keys) {
    auto data = src.read(key);
    if (!data) throw util::StoreError("missing record: " + src_ns + "/" + key);
    dst.append(key, *data);
    src.erase_key(key);
  }
}

void TarStore::flush() {
  std::lock_guard lock(mutex_);
  for (auto& [_, tar] : archives_) tar->flush();
}

std::size_t TarStore::inode_count() const {
  std::lock_guard lock(mutex_);
  return archives_.size() * 2;
}

}  // namespace mummi::ds
