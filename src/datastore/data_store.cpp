#include "datastore/data_store.hpp"

namespace mummi::ds {

void DataStore::put_text(const std::string& ns, const std::string& key,
                         const std::string& text) {
  put(ns, key, util::to_bytes(text));
}

std::string DataStore::get_text(const std::string& ns,
                                const std::string& key) const {
  return util::to_string(get(ns, key));
}

void DataStore::put_npy(const std::string& ns, const std::string& key,
                        const util::NpyArray& array) {
  put(ns, key, util::npy_encode(array));
}

util::NpyArray DataStore::get_npy(const std::string& ns,
                                  const std::string& key) const {
  return util::npy_decode(get(ns, key));
}

}  // namespace mummi::ds
