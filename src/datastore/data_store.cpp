#include "datastore/data_store.hpp"

namespace mummi::ds {

std::vector<util::Bytes> DataStore::get_many(
    const std::string& ns, const std::vector<std::string>& keys) const {
  std::vector<util::Bytes> out;
  out.reserve(keys.size());
  for (const auto& key : keys) out.push_back(get(ns, key));
  return out;
}

void DataStore::put_many(
    const std::string& ns,
    const std::vector<std::pair<std::string, util::Bytes>>& records) {
  for (const auto& [key, value] : records) put(ns, key, value);
}

void DataStore::move_many(const std::string& src_ns,
                          const std::vector<std::string>& keys,
                          const std::string& dst_ns) {
  for (const auto& key : keys) move(src_ns, key, dst_ns);
}

std::size_t DataStore::count(const std::string& ns) const {
  return keys(ns, "*").size();
}

void DataStore::put_text(const std::string& ns, const std::string& key,
                         const std::string& text) {
  put(ns, key, util::to_bytes(text));
}

std::string DataStore::get_text(const std::string& ns,
                                const std::string& key) const {
  return util::to_string(get(ns, key));
}

void DataStore::put_npy(const std::string& ns, const std::string& key,
                        const util::NpyArray& array) {
  put(ns, key, util::npy_encode(array));
}

util::NpyArray DataStore::get_npy(const std::string& ns,
                                  const std::string& key) const {
  return util::npy_decode(get(ns, key));
}

}  // namespace mummi::ds
