#include "datastore/resilient_kv.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log.hpp"

namespace mummi::ds {

ResilientKvClient::ResilientKvClient(KvCluster& kv, const util::Clock& clock,
                                     util::BackoffPolicy backoff,
                                     CircuitBreakerConfig breaker,
                                     std::uint64_t jitter_seed)
    : kv_(kv),
      clock_(clock),
      backoff_(backoff),
      breaker_cfg_(breaker),
      jitter_rng_(jitter_seed),
      breakers_(kv.n_servers() + 1) {
  sleep_ = util::accounting_sleeper(&stats_.backoff_s);
}

ResilientKvClient::Breaker& ResilientKvClient::breaker_for(long shard) {
  if (shard < 0 || shard >= static_cast<long>(kv_.n_servers()))
    return breakers_.back();  // cluster-wide breaker (keys() scans)
  return breakers_[static_cast<std::size_t>(shard)];
}

bool ResilientKvClient::admit(Breaker& b) {
  if (!b.open) return true;
  if (clock_.now() >= b.open_until) return true;  // half-open: one trial
  ++stats_.short_circuits;
  return false;
}

void ResilientKvClient::note_success(Breaker& b) {
  b.consecutive_failures = 0;
  b.open = false;
}

void ResilientKvClient::note_failure(Breaker& b) {
  ++b.consecutive_failures;
  if (b.open || b.consecutive_failures >= breaker_cfg_.failure_threshold) {
    // A failed half-open trial re-opens; threshold crossings open.
    ++stats_.breaker_opens;
    b.open = true;
    b.open_until = clock_.now() + breaker_cfg_.cooldown_s;
  }
}

template <typename Op>
auto ResilientKvClient::guarded(long shard, Op&& op) -> decltype(op()) {
  // The breaker admits whole operations, not individual attempts: in-call
  // retries absorb transient blips without tripping it, while operations
  // that exhaust their retries count toward the failure threshold.
  Breaker& b = breaker_for(shard);
  if (!admit(b)) {
    ++stats_.failures;
    throw util::UnavailableError("kv circuit breaker open for shard " +
                                 std::to_string(shard));
  }
  std::string last_error = "unavailable";
  for (int attempt = 0; attempt < backoff_.max_attempts; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    ++stats_.attempts;
    try {
      auto result = op();
      note_success(b);
      return result;
    } catch (const util::UnavailableError& err) {
      last_error = err.what();
    }
    if (attempt + 1 < backoff_.max_attempts) {
      const double delay = backoff_.delay_s(attempt, jitter_rng_);
      if (sleep_) sleep_(delay);
    }
  }
  note_failure(b);
  ++stats_.failures;
  throw util::UnavailableError(last_error);
}

void ResilientKvClient::set(const std::string& key, util::Bytes value) {
  guarded(static_cast<long>(kv_.server_of(key)), [&] {
    kv_.set(key, value);  // copy: a retried move would resend empty bytes
    return true;
  });
}

std::optional<util::Bytes> ResilientKvClient::get(const std::string& key) {
  return guarded(static_cast<long>(kv_.server_of(key)),
                 [&] { return kv_.get(key); });
}

bool ResilientKvClient::exists(const std::string& key) {
  return guarded(static_cast<long>(kv_.server_of(key)),
                 [&] { return kv_.exists(key); });
}

bool ResilientKvClient::del(const std::string& key) {
  return guarded(static_cast<long>(kv_.server_of(key)),
                 [&] { return kv_.del(key); });
}

bool ResilientKvClient::rename(const std::string& from, const std::string& to) {
  // Guard on the destination shard: it is the one a cross-shard rename can
  // find down after the source check passes.
  return guarded(static_cast<long>(kv_.server_of(to)),
                 [&] { return kv_.rename(from, to); });
}

std::vector<std::string> ResilientKvClient::keys(const std::string& pattern) {
  return guarded(-1, [&] { return kv_.keys(pattern); });
}

std::vector<std::optional<util::Bytes>> ResilientKvClient::get_many(
    const std::vector<std::string>& keys) {
  // `out`/`done` outlive the attempts: a retried call resumes with the
  // already-fetched entries in place and only re-queries unfinished shards.
  std::vector<std::optional<util::Bytes>> out(keys.size());
  std::vector<char> done(keys.size(), 0);
  guarded(-1, [&] {
    kv_.mget(keys, out, done);
    return true;
  });
  return out;
}

void ResilientKvClient::set_many(
    const std::vector<std::pair<std::string, util::Bytes>>& kvs) {
  std::vector<char> done(kvs.size(), 0);
  guarded(-1, [&] {
    kv_.mset(kvs, done);
    return true;
  });
}

std::size_t ResilientKvClient::del_many(const std::vector<std::string>& keys) {
  std::vector<char> deleted(keys.size(), 0);
  std::vector<char> done(keys.size(), 0);
  guarded(-1, [&] {
    kv_.mdel(keys, deleted, done);
    return true;
  });
  return static_cast<std::size_t>(
      std::count(deleted.begin(), deleted.end(), 1));
}

std::size_t ResilientKvClient::rename_many(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::vector<char> renamed(pairs.size(), 0);
  std::vector<char> done(pairs.size(), 0);
  guarded(-1, [&] {
    kv_.mrename(pairs, renamed, done);
    return true;
  });
  return static_cast<std::size_t>(
      std::count(renamed.begin(), renamed.end(), 1));
}

ResilientKvClient::BreakerState ResilientKvClient::breaker_state(
    std::size_t shard) const {
  const Breaker& b = breakers_[shard];
  if (!b.open) return BreakerState::kClosed;
  return clock_.now() >= b.open_until ? BreakerState::kHalfOpen
                                      : BreakerState::kOpen;
}

}  // namespace mummi::ds
