// Config-driven backend selection — the paper's "single configuration
// switch" that redirects a byte stream to a file, an archive, or a database.
//
// Recognized keys (section "datastore"):
//   datastore.backend   = filesystem | taridx | redis   (required)
//   datastore.root      = <dir>          (filesystem/taridx; required)
//   datastore.latency   = <seconds>      (filesystem; default 0)
//   datastore.servers   = <n>            (redis; default 20, as on Summit)
#pragma once

#include "datastore/data_store.hpp"
#include "util/config.hpp"

namespace mummi::ds {

/// Builds a DataStore from configuration. Throws util::ConfigError for an
/// unknown backend or missing required keys.
[[nodiscard]] DataStorePtr make_store(const util::Config& config);

}  // namespace mummi::ds
