#include "datastore/kv_cluster.hpp"

#include <algorithm>
#include <mutex>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"

namespace mummi::ds {

namespace {
// Virtual per-op cost distributions (Fig. 7's query-mix rates). Bounds cover
// the calibrated cost model with headroom for large payload transfers.
obs::HistogramMetric& cost_hist(const char* name) {
  return obs::histogram(name, 0.0, 2.0e-3, 40);
}

// Batch instrumentation: one count per batch op plus the size distribution,
// so traces show the pipelining taking effect (few ops, large batches).
void note_batch(const char* op_counter, std::size_t batch_size) {
  static obs::Counter& batches = obs::counter("kv.ops.batch");
  batches.inc();
  obs::counter(op_counter).inc();
  obs::histogram("kv.batch.size", 0.0, 70000.0, 70)
      .observe(static_cast<double>(batch_size));
}

// Minimum shard-group count before a scan/mget fans out over the global
// pool; below this the submit overhead outweighs the parallel walk.
constexpr std::size_t kParallelGroups = 2;
}  // namespace

KvCluster::KvCluster(std::size_t n_servers, KvCostModel cost) : cost_(cost) {
  MUMMI_CHECK_MSG(n_servers > 0, "cluster needs at least one server");
  shards_.reserve(n_servers);
  shard_ops_.reserve(n_servers);
  for (std::size_t i = 0; i < n_servers; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shard_ops_.push_back(&obs::counter("kv.shard." + std::to_string(i) +
                                       ".ops"));
  }
}

void KvCluster::add_time(std::atomic<double>& counter, double dt) {
  double cur = counter.load(std::memory_order_relaxed);
  while (!counter.compare_exchange_weak(cur, cur + dt,
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
  }
}

double KvCluster::total_sim_seconds() const {
  return sim_seconds_keys() + sim_seconds_reads() + sim_seconds_deletes() +
         sim_seconds_writes();
}

std::size_t KvCluster::server_of(const std::string& key) const {
  return util::fnv1a(key) % shards_.size();
}

std::string_view KvCluster::ns_of(std::string_view key) {
  const std::size_t colon = key.find(':');
  return colon == std::string_view::npos ? std::string_view{}
                                         : key.substr(0, colon);
}

void KvCluster::index_add(Shard& shard, const std::string& key) {
  shard.by_ns[std::string(ns_of(key))].insert(key);
}

void KvCluster::index_remove(Shard& shard, const std::string& key) {
  auto it = shard.by_ns.find(std::string(ns_of(key)));
  if (it == shard.by_ns.end()) return;
  it->second.erase(key);
  if (it->second.empty()) shard.by_ns.erase(it);
}

void KvCluster::check_shard_locked(const Shard& shard, std::size_t i) const {
  if (!shard.up)
    throw util::UnavailableError("kv shard " + std::to_string(i) + " is down");
  int pending = shard.transient_errors.load(std::memory_order_relaxed);
  while (pending > 0) {
    if (shard.transient_errors.compare_exchange_weak(
            pending, pending - 1, std::memory_order_relaxed,
            std::memory_order_relaxed)) {
      obs::counter("kv.transient_errors").inc();
      throw util::UnavailableError("kv shard " + std::to_string(i) +
                                   " transient I/O error");
    }
  }
}

void KvCluster::fail_server(std::size_t i, bool wipe) {
  MUMMI_CHECK_MSG(i < shards_.size(), "shard index out of range");
  obs::counter("kv.shard_down").inc();
  Shard& shard = *shards_[i];
  std::unique_lock lock(shard.mutex);
  shard.up = false;
  if (wipe) {
    shard.data.clear();
    shard.by_ns.clear();
  }
}

void KvCluster::recover_server(std::size_t i) {
  MUMMI_CHECK_MSG(i < shards_.size(), "shard index out of range");
  obs::counter("kv.shard_recovered").inc();
  Shard& shard = *shards_[i];
  std::unique_lock lock(shard.mutex);
  shard.up = true;
}

bool KvCluster::server_up(std::size_t i) const {
  MUMMI_CHECK_MSG(i < shards_.size(), "shard index out of range");
  Shard& shard = *shards_[i];
  std::shared_lock lock(shard.mutex);
  return shard.up;
}

std::size_t KvCluster::servers_down() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    if (!shard->up) ++n;
  }
  return n;
}

void KvCluster::inject_transient_errors(std::size_t i, int count) {
  MUMMI_CHECK_MSG(i < shards_.size(), "shard index out of range");
  shards_[i]->transient_errors.fetch_add(count, std::memory_order_relaxed);
}

void KvCluster::set(const std::string& key, util::Bytes value) {
  const std::size_t s = server_of(key);
  const double dt =
      cost_.per_query + cost_.per_byte * static_cast<double>(value.size());
  Shard& shard = *shards_[s];
  std::unique_lock lock(shard.mutex);
  check_shard_locked(shard, s);
  add_time(t_writes_, dt);
  static obs::Counter& ops = obs::counter("kv.ops.set");
  ops.inc();
  shard_ops_[s]->inc();
  cost_hist("kv.cost.write_s").observe(dt);
  auto [it, inserted] = shard.data.insert_or_assign(key, std::move(value));
  if (inserted) index_add(shard, it->first);
}

std::optional<util::Bytes> KvCluster::get(const std::string& key) const {
  const std::size_t s = server_of(key);
  const Shard& shard = *shards_[s];
  std::shared_lock lock(shard.mutex);
  check_shard_locked(shard, s);
  static obs::Counter& ops = obs::counter("kv.ops.get");
  ops.inc();
  shard_ops_[s]->inc();
  auto it = shard.data.find(key);
  if (it == shard.data.end()) {
    add_time(t_reads_, cost_.per_query);
    cost_hist("kv.cost.read_s").observe(cost_.per_query);
    return std::nullopt;
  }
  const double dt =
      cost_.per_read + cost_.per_byte * static_cast<double>(it->second.size());
  add_time(t_reads_, dt);
  cost_hist("kv.cost.read_s").observe(dt);
  return it->second;
}

bool KvCluster::exists(const std::string& key) const {
  const std::size_t s = server_of(key);
  const Shard& shard = *shards_[s];
  std::shared_lock lock(shard.mutex);
  check_shard_locked(shard, s);
  return shard.data.count(key) > 0;
}

bool KvCluster::del(const std::string& key) {
  const std::size_t s = server_of(key);
  Shard& shard = *shards_[s];
  std::unique_lock lock(shard.mutex);
  check_shard_locked(shard, s);
  add_time(t_dels_, cost_.per_query);
  static obs::Counter& ops = obs::counter("kv.ops.del");
  ops.inc();
  shard_ops_[s]->inc();
  cost_hist("kv.cost.del_s").observe(cost_.per_query);
  const bool erased = shard.data.erase(key) > 0;
  if (erased) index_remove(shard, key);
  return erased;
}

bool KvCluster::move_locked(Shard& src, Shard& dst, const std::string& from,
                            const std::string& to) {
  auto it = src.data.find(from);
  if (it == src.data.end()) return false;
  util::Bytes value = std::move(it->second);
  src.data.erase(it);
  index_remove(src, from);
  auto [dit, inserted] = dst.data.insert_or_assign(to, std::move(value));
  if (inserted) index_add(dst, dit->first);
  return true;
}

bool KvCluster::rename(const std::string& from, const std::string& to) {
  // Same-shard renames move in place under one exclusive lock; cross-shard
  // renames hold both locks (index order) so availability of *both* shards
  // is verified before anything mutates — erasing the source and then
  // finding the destination down would lose the record.
  const std::size_t s_from = server_of(from);
  const std::size_t s_to = server_of(to);
  static obs::Counter& ops = obs::counter("kv.ops.rename");
  if (s_from == s_to) {
    Shard& shard = *shards_[s_from];
    std::unique_lock lock(shard.mutex);
    check_shard_locked(shard, s_from);
    add_time(t_dels_, cost_.per_query);
    ops.inc();
    shard_ops_[s_from]->inc();
    return move_locked(shard, shard, from, to);
  }
  Shard& lo = *shards_[std::min(s_from, s_to)];
  Shard& hi = *shards_[std::max(s_from, s_to)];
  std::unique_lock lock_lo(lo.mutex);
  std::unique_lock lock_hi(hi.mutex);
  check_shard_locked(*shards_[s_from], s_from);
  check_shard_locked(*shards_[s_to], s_to);
  // A cross-shard rename is two round trips: DEL on the source shard plus
  // SET on the destination.
  add_time(t_dels_, cost_.per_query);
  add_time(t_writes_, cost_.per_query);
  ops.inc();
  shard_ops_[s_from]->inc();
  shard_ops_[s_to]->inc();
  return move_locked(*shards_[s_from], *shards_[s_to], from, to);
}

std::vector<std::string> KvCluster::scan(const std::string* ns,
                                         const std::string& pattern) const {
  const std::size_t n_shards = shards_.size();
  const std::size_t prefix_len = (ns != nullptr && !ns->empty())
                                     ? ns->size() + 1  // "<ns>:"
                                     : 0;
  std::vector<std::vector<std::string>> slots(n_shards);
  std::vector<char> scanned_shard(n_shards, 0);
  std::vector<std::string> errors(n_shards);
  std::vector<char> failed(n_shards, 0);
  std::atomic<std::size_t> scanned{0};

  auto visit = [&](std::size_t i) {
    const Shard& shard = *shards_[i];
    try {
      std::shared_lock lock(shard.mutex);
      check_shard_locked(shard, i);
      if (ns == nullptr) {
        // Full scan: every stored key is inspected against the pattern.
        scanned.fetch_add(shard.data.size(), std::memory_order_relaxed);
        scanned_shard[i] = 1;
        for (const auto& [k, _] : shard.data)
          if (util::glob_match(pattern, k)) slots[i].push_back(k);
      } else {
        // Namespace-confined scan: only this namespace's keys are touched,
        // so cost is independent of every other namespace's population.
        auto it = shard.by_ns.find(*ns);
        if (it == shard.by_ns.end()) return;
        scanned.fetch_add(it->second.size(), std::memory_order_relaxed);
        scanned_shard[i] = 1;
        for (const auto& k : it->second) {
          const std::string_view tail =
              std::string_view(k).substr(prefix_len);
          if (util::glob_match(pattern, tail)) slots[i].push_back(k);
        }
      }
    } catch (const util::UnavailableError& err) {
      failed[i] = 1;
      errors[i] = err.what();
    }
  };

  if (n_shards >= kParallelGroups) {
    // Fan out over the process pool; tasks capture errors instead of
    // throwing so every task completes before any rethrow (futures must not
    // outlive the locals they reference). Slot order keeps results
    // deterministic regardless of execution order.
    util::global_pool().parallel_for_blocks(
        n_shards, 1, [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) visit(i);
        });
  } else {
    for (std::size_t i = 0; i < n_shards; ++i) visit(i);
  }
  for (std::size_t i = 0; i < n_shards; ++i)
    if (failed[i]) throw util::UnavailableError(errors[i]);

  std::vector<std::string> out;
  std::size_t total = 0;
  for (const auto& slot : slots) total += slot.size();
  out.reserve(total);
  for (auto& slot : slots)
    for (auto& k : slot) out.push_back(std::move(k));
  std::sort(out.begin(), out.end());

  const double dt =
      cost_.per_query * static_cast<double>(n_shards) +
      cost_.per_scanned_key *
          static_cast<double>(scanned.load(std::memory_order_relaxed)) +
      cost_.per_returned_key * static_cast<double>(out.size());
  add_time(t_keys_, dt);
  static obs::Counter& ops = obs::counter("kv.ops.keys");
  ops.inc();
  // Attribute the scan only to shards that actually walked keys for it.
  for (std::size_t i = 0; i < n_shards; ++i)
    if (scanned_shard[i]) shard_ops_[i]->inc();
  obs::histogram("kv.cost.keys_s", 0.0, 30.0, 60).observe(dt);
  return out;
}

std::vector<std::string> KvCluster::keys(const std::string& pattern) const {
  // Route patterns with a literal "<ns>:" prefix through the namespace
  // index; everything else pays the full scan.
  const std::string_view prefix = util::glob_literal_prefix(pattern);
  const std::size_t colon = prefix.find(':');
  if (colon != std::string_view::npos) {
    const std::string ns(prefix.substr(0, colon));
    return scan(&ns, pattern.substr(colon + 1));
  }
  return scan(nullptr, pattern);
}

std::vector<std::string> KvCluster::keys(const std::string& ns,
                                         const std::string& pattern) const {
  return scan(&ns, pattern);
}

std::size_t KvCluster::count(const std::string& ns) const {
  // Index-only metadata query: one round trip per shard, no keys scanned or
  // transferred — the cost is independent of every namespace's population.
  std::size_t n = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    std::shared_lock lock(shard.mutex);
    check_shard_locked(shard, i);
    auto it = shard.by_ns.find(ns);
    if (it == shard.by_ns.end()) continue;
    n += it->second.size();
    shard_ops_[i]->inc();
  }
  add_time(t_keys_,
           cost_.per_query * static_cast<double>(shards_.size()));
  static obs::Counter& ops = obs::counter("kv.ops.count");
  ops.inc();
  return n;
}

namespace {
/// Pending (not-done) input indices grouped by shard, plus the list of
/// touched shards in index order.
struct ShardGroups {
  std::vector<std::vector<std::uint32_t>> by_shard;
  std::vector<std::size_t> touched;
  std::size_t pending = 0;
};

template <typename KeyOf>
ShardGroups group_pending(std::size_t n, const std::vector<char>& done,
                          std::size_t n_shards, const KeyOf& shard_of) {
  ShardGroups g;
  g.by_shard.resize(n_shards);
  for (std::size_t i = 0; i < n; ++i) {
    if (done[i]) continue;
    g.by_shard[shard_of(i)].push_back(static_cast<std::uint32_t>(i));
    ++g.pending;
  }
  for (std::size_t s = 0; s < n_shards; ++s)
    if (!g.by_shard[s].empty()) g.touched.push_back(s);
  return g;
}
}  // namespace

std::vector<std::optional<util::Bytes>> KvCluster::mget(
    const std::vector<std::string>& keys) const {
  std::vector<std::optional<util::Bytes>> out(keys.size());
  std::vector<char> done(keys.size(), 0);
  mget(keys, out, done);
  return out;
}

void KvCluster::mget(const std::vector<std::string>& keys,
                     std::vector<std::optional<util::Bytes>>& out,
                     std::vector<char>& done) const {
  MUMMI_CHECK_MSG(out.size() == keys.size() && done.size() == keys.size(),
                  "mget result/done vectors must match the key count");
  const auto groups = group_pending(
      keys.size(), done, shards_.size(),
      [&](std::size_t i) { return server_of(keys[i]); });
  if (groups.pending == 0) return;
  note_batch("kv.ops.mget", groups.pending);

  std::vector<std::string> errors(groups.touched.size());
  std::vector<char> failed(groups.touched.size(), 0);
  auto visit = [&](std::size_t gi) {
    const std::size_t s = groups.touched[gi];
    const Shard& shard = *shards_[s];
    try {
      std::shared_lock lock(shard.mutex);
      check_shard_locked(shard, s);
      double dt = cost_.per_query;  // one pipelined round trip per shard
      for (const std::uint32_t idx : groups.by_shard[s]) {
        auto it = shard.data.find(keys[idx]);
        if (it == shard.data.end()) {
          out[idx] = std::nullopt;
        } else {
          out[idx] = it->second;
          dt += cost_.per_byte * static_cast<double>(it->second.size());
        }
        dt += cost_.batch_per_key;
        done[idx] = 1;
      }
      shard_ops_[s]->inc();
      add_time(t_reads_, dt);
    } catch (const util::UnavailableError& err) {
      failed[gi] = 1;
      errors[gi] = err.what();
    }
  };
  if (groups.touched.size() >= kParallelGroups) {
    util::global_pool().parallel_for_blocks(
        groups.touched.size(), 1, [&](std::size_t begin, std::size_t end) {
          for (std::size_t gi = begin; gi < end; ++gi) visit(gi);
        });
  } else {
    visit(0);
  }
  for (std::size_t gi = 0; gi < groups.touched.size(); ++gi)
    if (failed[gi]) throw util::UnavailableError(errors[gi]);
}

void KvCluster::mset(
    const std::vector<std::pair<std::string, util::Bytes>>& kvs) {
  std::vector<char> done(kvs.size(), 0);
  mset(kvs, done);
}

void KvCluster::mset(const std::vector<std::pair<std::string, util::Bytes>>& kvs,
                     std::vector<char>& done) {
  MUMMI_CHECK_MSG(done.size() == kvs.size(),
                  "mset done vector must match the record count");
  const auto groups = group_pending(
      kvs.size(), done, shards_.size(),
      [&](std::size_t i) { return server_of(kvs[i].first); });
  if (groups.pending == 0) return;
  note_batch("kv.ops.mset", groups.pending);

  for (const std::size_t s : groups.touched) {
    Shard& shard = *shards_[s];
    std::unique_lock lock(shard.mutex);
    check_shard_locked(shard, s);
    double dt = cost_.per_query;
    for (const std::uint32_t idx : groups.by_shard[s]) {
      const auto& [key, value] = kvs[idx];
      dt += cost_.batch_per_key +
            cost_.per_byte * static_cast<double>(value.size());
      auto [it, inserted] = shard.data.insert_or_assign(key, value);
      if (inserted) index_add(shard, it->first);
      done[idx] = 1;
    }
    shard_ops_[s]->inc();
    add_time(t_writes_, dt);
  }
}

std::size_t KvCluster::mdel(const std::vector<std::string>& keys) {
  std::vector<char> deleted(keys.size(), 0);
  std::vector<char> done(keys.size(), 0);
  mdel(keys, deleted, done);
  return static_cast<std::size_t>(
      std::count(deleted.begin(), deleted.end(), 1));
}

void KvCluster::mdel(const std::vector<std::string>& keys,
                     std::vector<char>& deleted, std::vector<char>& done) {
  MUMMI_CHECK_MSG(deleted.size() == keys.size() && done.size() == keys.size(),
                  "mdel result/done vectors must match the key count");
  const auto groups = group_pending(
      keys.size(), done, shards_.size(),
      [&](std::size_t i) { return server_of(keys[i]); });
  if (groups.pending == 0) return;
  note_batch("kv.ops.mdel", groups.pending);

  for (const std::size_t s : groups.touched) {
    Shard& shard = *shards_[s];
    std::unique_lock lock(shard.mutex);
    check_shard_locked(shard, s);
    double dt = cost_.per_query;
    for (const std::uint32_t idx : groups.by_shard[s]) {
      dt += cost_.batch_per_key;
      if (shard.data.erase(keys[idx]) > 0) {
        index_remove(shard, keys[idx]);
        deleted[idx] = 1;
      }
      done[idx] = 1;
    }
    shard_ops_[s]->inc();
    add_time(t_dels_, dt);
  }
}

std::size_t KvCluster::mrename(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::vector<char> renamed(pairs.size(), 0);
  std::vector<char> done(pairs.size(), 0);
  mrename(pairs, renamed, done);
  return static_cast<std::size_t>(
      std::count(renamed.begin(), renamed.end(), 1));
}

void KvCluster::mrename(
    const std::vector<std::pair<std::string, std::string>>& pairs,
    std::vector<char>& renamed, std::vector<char>& done) {
  MUMMI_CHECK_MSG(renamed.size() == pairs.size() && done.size() == pairs.size(),
                  "mrename result/done vectors must match the pair count");
  const auto groups = group_pending(
      pairs.size(), done, shards_.size(),
      [&](std::size_t i) { return server_of(pairs[i].first); });
  if (groups.pending == 0) return;
  note_batch("kv.ops.mrename", groups.pending);

  // Source-shard groups apply serially in shard order. Each group locks its
  // source shard plus every destination shard it touches, all exclusively
  // and in ascending index order (the cluster-wide lock order), then checks
  // availability of the whole set before moving anything — a down
  // destination aborts the group with its records still on the source.
  for (const std::size_t s : groups.touched) {
    std::vector<std::size_t> involved{s};
    std::size_t cross_pairs = 0;
    for (const std::uint32_t idx : groups.by_shard[s]) {
      const std::size_t d = server_of(pairs[idx].second);
      if (d != s) {
        involved.push_back(d);
        ++cross_pairs;
      }
    }
    std::sort(involved.begin(), involved.end());
    involved.erase(std::unique(involved.begin(), involved.end()),
                   involved.end());

    std::vector<std::unique_lock<std::shared_mutex>> locks;
    locks.reserve(involved.size());
    for (const std::size_t i : involved)
      locks.emplace_back(shards_[i]->mutex);
    for (const std::size_t i : involved)
      check_shard_locked(*shards_[i], i);

    for (const std::uint32_t idx : groups.by_shard[s]) {
      const auto& [from, to] = pairs[idx];
      if (move_locked(*shards_[s], *shards_[server_of(to)], from, to))
        renamed[idx] = 1;
      done[idx] = 1;
    }
    // One DEL round trip on the source shard plus one SET round trip per
    // distinct destination shard; cross-shard pairs pay the marginal twice.
    add_time(t_dels_, cost_.per_query +
                          cost_.batch_per_key *
                              static_cast<double>(groups.by_shard[s].size()));
    add_time(t_writes_,
             cost_.per_query * static_cast<double>(involved.size() - 1) +
                 cost_.batch_per_key * static_cast<double>(cross_pairs));
    for (const std::size_t i : involved) shard_ops_[i]->inc();
  }
}

std::size_t KvCluster::total_keys() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    n += shard->data.size();
  }
  return n;
}

std::uint64_t KvCluster::total_bytes() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    for (const auto& [_, v] : shard->data) n += v.size();
  }
  return n;
}

void KvCluster::reset_sim_time() {
  t_keys_.store(0.0);
  t_reads_.store(0.0);
  t_dels_.store(0.0);
  t_writes_.store(0.0);
}

}  // namespace mummi::ds
