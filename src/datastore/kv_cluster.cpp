#include "datastore/kv_cluster.hpp"

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace mummi::ds {

namespace {
// Virtual per-op cost distributions (Fig. 7's query-mix rates). Bounds cover
// the calibrated cost model with headroom for large payload transfers.
obs::HistogramMetric& cost_hist(const char* name) {
  return obs::histogram(name, 0.0, 2.0e-3, 40);
}
}  // namespace

KvCluster::KvCluster(std::size_t n_servers, KvCostModel cost) : cost_(cost) {
  MUMMI_CHECK_MSG(n_servers > 0, "cluster needs at least one server");
  shards_.reserve(n_servers);
  shard_ops_.reserve(n_servers);
  for (std::size_t i = 0; i < n_servers; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shard_ops_.push_back(&obs::counter("kv.shard." + std::to_string(i) +
                                       ".ops"));
  }
}

void KvCluster::add_time(std::atomic<double>& counter, double dt) {
  double cur = counter.load(std::memory_order_relaxed);
  while (!counter.compare_exchange_weak(cur, cur + dt)) {
  }
}

std::size_t KvCluster::server_of(const std::string& key) const {
  return util::fnv1a(key) % shards_.size();
}

void KvCluster::check_available(std::size_t i) const {
  Shard& shard = *shards_[i];
  std::lock_guard lock(shard.mutex);
  if (!shard.up)
    throw util::UnavailableError("kv shard " + std::to_string(i) + " is down");
  if (shard.transient_errors > 0) {
    --shard.transient_errors;
    obs::counter("kv.transient_errors").inc();
    throw util::UnavailableError("kv shard " + std::to_string(i) +
                                 " transient I/O error");
  }
}

void KvCluster::fail_server(std::size_t i, bool wipe) {
  MUMMI_CHECK_MSG(i < shards_.size(), "shard index out of range");
  obs::counter("kv.shard_down").inc();
  Shard& shard = *shards_[i];
  std::lock_guard lock(shard.mutex);
  shard.up = false;
  if (wipe) shard.data.clear();
}

void KvCluster::recover_server(std::size_t i) {
  MUMMI_CHECK_MSG(i < shards_.size(), "shard index out of range");
  obs::counter("kv.shard_recovered").inc();
  Shard& shard = *shards_[i];
  std::lock_guard lock(shard.mutex);
  shard.up = true;
}

bool KvCluster::server_up(std::size_t i) const {
  MUMMI_CHECK_MSG(i < shards_.size(), "shard index out of range");
  Shard& shard = *shards_[i];
  std::lock_guard lock(shard.mutex);
  return shard.up;
}

std::size_t KvCluster::servers_down() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    if (!shard->up) ++n;
  }
  return n;
}

void KvCluster::inject_transient_errors(std::size_t i, int count) {
  MUMMI_CHECK_MSG(i < shards_.size(), "shard index out of range");
  Shard& shard = *shards_[i];
  std::lock_guard lock(shard.mutex);
  shard.transient_errors += count;
}

void KvCluster::set(const std::string& key, util::Bytes value) {
  const std::size_t s = server_of(key);
  check_available(s);
  const double dt =
      cost_.per_query + cost_.per_byte * static_cast<double>(value.size());
  add_time(t_writes_, dt);
  static obs::Counter& ops = obs::counter("kv.ops.set");
  ops.inc();
  shard_ops_[s]->inc();
  cost_hist("kv.cost.write_s").observe(dt);
  Shard& shard = *shards_[s];
  std::lock_guard lock(shard.mutex);
  shard.data[key] = std::move(value);
}

std::optional<util::Bytes> KvCluster::get(const std::string& key) const {
  const std::size_t s = server_of(key);
  check_available(s);
  static obs::Counter& ops = obs::counter("kv.ops.get");
  ops.inc();
  shard_ops_[s]->inc();
  const Shard& shard = *shards_[s];
  std::lock_guard lock(shard.mutex);
  auto it = shard.data.find(key);
  if (it == shard.data.end()) {
    add_time(t_reads_, cost_.per_query);
    cost_hist("kv.cost.read_s").observe(cost_.per_query);
    return std::nullopt;
  }
  const double dt =
      cost_.per_read + cost_.per_byte * static_cast<double>(it->second.size());
  add_time(t_reads_, dt);
  cost_hist("kv.cost.read_s").observe(dt);
  return it->second;
}

bool KvCluster::exists(const std::string& key) const {
  const std::size_t s = server_of(key);
  check_available(s);
  const Shard& shard = *shards_[s];
  std::lock_guard lock(shard.mutex);
  return shard.data.count(key) > 0;
}

bool KvCluster::del(const std::string& key) {
  const std::size_t s = server_of(key);
  check_available(s);
  add_time(t_dels_, cost_.per_query);
  static obs::Counter& ops = obs::counter("kv.ops.del");
  ops.inc();
  shard_ops_[s]->inc();
  cost_hist("kv.cost.del_s").observe(cost_.per_query);
  Shard& shard = *shards_[s];
  std::lock_guard lock(shard.mutex);
  return shard.data.erase(key) > 0;
}

bool KvCluster::rename(const std::string& from, const std::string& to) {
  // Same-shard renames move in place; cross-shard falls back to delete+set.
  // Both shards must be reachable before anything mutates: erasing the
  // source and then failing the destination write would lose the record.
  const std::size_t s_from = server_of(from);
  const std::size_t s_to = server_of(to);
  check_available(s_from);
  if (s_to != s_from) check_available(s_to);
  add_time(t_dels_, cost_.per_query);
  if (s_from == s_to) {
    Shard& shard = *shards_[s_from];
    std::lock_guard lock(shard.mutex);
    auto it = shard.data.find(from);
    if (it == shard.data.end()) return false;
    util::Bytes value = std::move(it->second);
    shard.data.erase(it);
    shard.data[to] = std::move(value);
    return true;
  }
  util::Bytes value;
  {
    Shard& shard = *shards_[s_from];
    std::lock_guard lock(shard.mutex);
    auto it = shard.data.find(from);
    if (it == shard.data.end()) return false;
    value = std::move(it->second);
    shard.data.erase(it);
  }
  Shard& dst = *shards_[s_to];
  std::lock_guard lock(dst.mutex);
  dst.data[to] = std::move(value);
  return true;
}

std::vector<std::string> KvCluster::keys(const std::string& pattern) const {
  for (std::size_t i = 0; i < shards_.size(); ++i) check_available(i);
  std::vector<std::string> out;
  std::size_t scanned = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    scanned += shard->data.size();
    for (const auto& [k, _] : shard->data)
      if (util::glob_match(pattern, k)) out.push_back(k);
  }
  const double dt =
      cost_.per_query * static_cast<double>(shards_.size()) +
      cost_.per_scanned_key * static_cast<double>(scanned) +
      cost_.per_returned_key * static_cast<double>(out.size());
  add_time(t_keys_, dt);
  static obs::Counter& ops = obs::counter("kv.ops.keys");
  ops.inc();
  for (auto* shard_counter : shard_ops_) shard_counter->inc();
  obs::histogram("kv.cost.keys_s", 0.0, 30.0, 60).observe(dt);
  return out;
}

std::size_t KvCluster::total_keys() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    n += shard->data.size();
  }
  return n;
}

std::uint64_t KvCluster::total_bytes() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    for (const auto& [_, v] : shard->data) n += v.size();
  }
  return n;
}

void KvCluster::reset_sim_time() {
  t_keys_.store(0.0);
  t_reads_.store(0.0);
  t_dels_.store(0.0);
  t_writes_.store(0.0);
}

}  // namespace mummi::ds
