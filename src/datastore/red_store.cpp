#include "datastore/red_store.hpp"

#include "util/error.hpp"

namespace mummi::ds {

RedStore::RedStore(std::shared_ptr<KvCluster> cluster)
    : cluster_(std::move(cluster)) {
  MUMMI_CHECK(cluster_ != nullptr);
}

RedStore::RedStore(std::size_t n_servers, KvCostModel cost)
    : cluster_(std::make_shared<KvCluster>(n_servers, cost)) {}

std::string RedStore::full_key(const std::string& ns, const std::string& key) {
  MUMMI_CHECK_MSG(!ns.empty() && ns.find(':') == std::string::npos,
                  "invalid namespace: " + ns);
  MUMMI_CHECK_MSG(!key.empty(), "empty key");
  return ns + ":" + key;
}

void RedStore::put(const std::string& ns, const std::string& key,
                   const util::Bytes& value) {
  cluster_->set(full_key(ns, key), value);
}

util::Bytes RedStore::get(const std::string& ns, const std::string& key) const {
  auto v = cluster_->get(full_key(ns, key));
  if (!v) throw util::StoreError("missing record: " + ns + "/" + key);
  return *v;
}

bool RedStore::exists(const std::string& ns, const std::string& key) const {
  return cluster_->exists(full_key(ns, key));
}

std::vector<std::string> RedStore::keys(const std::string& ns,
                                        const std::string& pattern) const {
  MUMMI_CHECK_MSG(!ns.empty() && ns.find(':') == std::string::npos,
                  "invalid namespace: " + ns);
  const std::string prefix = ns + ":";
  std::vector<std::string> out;
  // Namespace-confined listing: O(keys in ns), never scans other namespaces.
  for (auto& full : cluster_->keys(ns, pattern))
    out.push_back(full.substr(prefix.size()));
  return out;
}

std::vector<util::Bytes> RedStore::get_many(
    const std::string& ns, const std::vector<std::string>& keys) const {
  std::vector<std::string> full;
  full.reserve(keys.size());
  for (const auto& key : keys) full.push_back(full_key(ns, key));
  auto values = cluster_->mget(full);
  std::vector<util::Bytes> out;
  out.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!values[i])
      throw util::StoreError("missing record: " + ns + "/" + keys[i]);
    out.push_back(std::move(*values[i]));
  }
  return out;
}

void RedStore::put_many(
    const std::string& ns,
    const std::vector<std::pair<std::string, util::Bytes>>& records) {
  std::vector<std::pair<std::string, util::Bytes>> kvs;
  kvs.reserve(records.size());
  for (const auto& [key, value] : records)
    kvs.emplace_back(full_key(ns, key), value);
  cluster_->mset(kvs);
}

void RedStore::move_many(const std::string& src_ns,
                         const std::vector<std::string>& keys,
                         const std::string& dst_ns) {
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(keys.size());
  for (const auto& key : keys)
    pairs.emplace_back(full_key(src_ns, key), full_key(dst_ns, key));
  std::vector<char> renamed(pairs.size(), 0);
  std::vector<char> done(pairs.size(), 0);
  cluster_->mrename(pairs, renamed, done);
  for (std::size_t i = 0; i < keys.size(); ++i)
    if (!renamed[i])
      throw util::StoreError("missing record: " + src_ns + "/" + keys[i]);
}

std::size_t RedStore::count(const std::string& ns) const {
  return cluster_->count(ns);
}

bool RedStore::erase(const std::string& ns, const std::string& key) {
  return cluster_->del(full_key(ns, key));
}

void RedStore::move(const std::string& src_ns, const std::string& key,
                    const std::string& dst_ns) {
  if (!cluster_->rename(full_key(src_ns, key), full_key(dst_ns, key)))
    throw util::StoreError("missing record: " + src_ns + "/" + key);
}

}  // namespace mummi::ds
