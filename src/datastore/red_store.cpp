#include "datastore/red_store.hpp"

#include "util/error.hpp"

namespace mummi::ds {

RedStore::RedStore(std::shared_ptr<KvCluster> cluster)
    : cluster_(std::move(cluster)) {
  MUMMI_CHECK(cluster_ != nullptr);
}

RedStore::RedStore(std::size_t n_servers, KvCostModel cost)
    : cluster_(std::make_shared<KvCluster>(n_servers, cost)) {}

std::string RedStore::full_key(const std::string& ns, const std::string& key) {
  MUMMI_CHECK_MSG(!ns.empty() && ns.find(':') == std::string::npos,
                  "invalid namespace: " + ns);
  MUMMI_CHECK_MSG(!key.empty(), "empty key");
  return ns + ":" + key;
}

void RedStore::put(const std::string& ns, const std::string& key,
                   const util::Bytes& value) {
  cluster_->set(full_key(ns, key), value);
}

util::Bytes RedStore::get(const std::string& ns, const std::string& key) const {
  auto v = cluster_->get(full_key(ns, key));
  if (!v) throw util::StoreError("missing record: " + ns + "/" + key);
  return *v;
}

bool RedStore::exists(const std::string& ns, const std::string& key) const {
  return cluster_->exists(full_key(ns, key));
}

std::vector<std::string> RedStore::keys(const std::string& ns,
                                        const std::string& pattern) const {
  const std::string prefix = ns + ":";
  std::vector<std::string> out;
  for (auto& full : cluster_->keys(prefix + pattern))
    out.push_back(full.substr(prefix.size()));
  return out;
}

bool RedStore::erase(const std::string& ns, const std::string& key) {
  return cluster_->del(full_key(ns, key));
}

void RedStore::move(const std::string& src_ns, const std::string& key,
                    const std::string& dst_ns) {
  if (!cluster_->rename(full_key(src_ns, key), full_key(dst_ns, key)))
    throw util::StoreError("missing record: " + src_ns + "/" + key);
}

}  // namespace mummi::ds
