#include "coupling/backmap.hpp"

#include <cmath>

#include "mdengine/integrator.hpp"
#include "mdengine/simulation.hpp"
#include "util/error.hpp"

namespace mummi::coupling {

std::shared_ptr<md::TypeMatrixForceField> make_aa_forcefield() {
  auto ff = std::make_shared<md::TypeMatrixForceField>(2, 0.9);
  ff->set_dielectric(1.0);
  ff->set_pair(0, 0, {0.65, 0.30});
  ff->set_pair(0, 1, {0.55, 0.31});
  ff->set_pair(1, 1, {0.80, 0.32});
  return ff;
}

Backmapper::Backmapper(AaBuildConfig config) : config_(config) {}

AaSystemInfo Backmapper::build(const CgSystemInfo& cg, util::Rng& rng) const {
  AaSystemInfo info;
  info.n_types = 2;
  md::System& aa = info.system;
  aa.box = cg.system.box;

  // Tetrahedral-ish template directions for the intra-bead atoms.
  static const md::Vec3 kTemplate[] = {
      {0, 0, 0}, {1, 1, 1}, {1, -1, -1}, {-1, 1, -1}, {-1, -1, 1},
      {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  const int apb = config_.atoms_per_bead;
  MUMMI_CHECK_MSG(apb >= 1 && apb <= 8, "atoms_per_bead out of range");

  std::vector<bool> is_protein_bead(cg.system.size(), false);
  for (int b : cg.protein_beads) is_protein_bead[static_cast<std::size_t>(b)] = true;

  // Expand each CG bead; remember each bead's first atom for bonded wiring.
  std::vector<int> first_atom(cg.system.size());
  const md::real atom_mass = 18.0;
  for (std::size_t b = 0; b < cg.system.size(); ++b) {
    const int type = is_protein_bead[b] ? 1 : 0;
    first_atom[b] = static_cast<int>(aa.size());
    for (int a = 0; a < apb; ++a) {
      md::Vec3 offset = kTemplate[a];
      const md::real norm = offset.norm();
      if (norm > 0) offset *= config_.spread / norm;
      offset.x += 0.02 * rng.normal();
      offset.y += 0.02 * rng.normal();
      offset.z += 0.02 * rng.normal();
      const int idx = aa.add_particle(
          aa.box.wrap(cg.system.pos[b] + offset), type, atom_mass,
          cg.system.charge[b] / apb, cg.system.molecule[b]);
      // Chain atoms within the bead to its first atom.
      if (a > 0)
        aa.bonds.push_back({first_atom[b], idx, config_.spread, 8000.0});
    }
  }
  // Inherit CG bonds between bead anchor atoms.
  for (const auto& bond : cg.system.bonds)
    aa.bonds.push_back({first_atom[static_cast<std::size_t>(bond.i)],
                        first_atom[static_cast<std::size_t>(bond.j)],
                        bond.r0, bond.k});
  for (const auto& angle : cg.system.angles)
    aa.angles.push_back({first_atom[static_cast<std::size_t>(angle.i)],
                         first_atom[static_cast<std::size_t>(angle.j)],
                         first_atom[static_cast<std::size_t>(angle.k)],
                         angle.theta0, angle.ktheta});

  info.backbone.reserve(cg.protein_beads.size());
  for (int b : cg.protein_beads)
    info.backbone.push_back(first_atom[static_cast<std::size_t>(b)]);

  // Cycles of minimization and position-restrained MD.
  auto ff = make_aa_forcefield();
  md::SimulationConfig sim_cfg;
  sim_cfg.dt = config_.dt;
  sim_cfg.pool = config_.pool;  // threads minimization + restrained MD
  md::Simulation relax(std::move(aa), ff,
                       std::make_unique<md::Langevin>(config_.temperature,
                                                      2.0, rng.split()),
                       sim_cfg);
  md::Restraints restraints;
  restraints.k = config_.restraint_k;
  for (std::size_t b = 0; b < cg.system.size(); ++b) {
    restraints.indices.push_back(first_atom[b]);
    restraints.references.push_back(cg.system.pos[b]);
  }
  relax.set_restraints(std::move(restraints));
  relax.minimize_energy(config_.minimize_steps);
  relax.run(config_.restrained_steps);
  relax.clear_restraints();
  relax.minimize_energy(config_.minimize_steps / 2);
  info.system = relax.system();
  return info;
}

}  // namespace mummi::coupling
