// Backmapping: CG snapshot -> all-atom system.
//
// Paper Sec. 4.1 item 4: backmapping "retrieves a selected snapshot from the
// ddcMD trajectory, converts the CG to the AA model using a modified version
// of the backward tool, performs cycles of energy minimization and
// position-restrained MD using GROMACS, and finally converts the data
// format" for AMBER.
//
// Here: each CG bead expands to a geometric template of atoms with random
// jitter (backward's role), followed by minimization and position-restrained
// Langevin relaxation cycles.
#pragma once

#include <memory>

#include "coupling/createsim.hpp"

namespace mummi::coupling {

struct AaBuildConfig {
  int atoms_per_bead = 4;     // Martini 4:1 mapping, inverted
  double spread = 0.12;       // template radius, nm
  int minimize_steps = 120;
  int restrained_steps = 80;  // position-restrained MD
  double restraint_k = 500.0;
  double temperature = 310.0;  // K
  double dt = 0.002;           // ps (AA timestep)
  util::ThreadPool* pool = nullptr;  // MD engine pool (null: MUMMI_POOL_SIZE)
};

/// Built AA system plus the protein backbone trace (one atom per former
/// protein bead) used by secondary-structure analysis.
struct AaSystemInfo {
  md::System system;
  std::vector<int> backbone;
  int n_types = 0;
};

/// AA-like force field: smaller beads (sigma 0.30 nm), shallower wells,
/// 0.9 nm cutoff. Two types: heavy-atom (0) and protein-atom (1).
[[nodiscard]] std::shared_ptr<md::TypeMatrixForceField> make_aa_forcefield();

class Backmapper {
 public:
  explicit Backmapper(AaBuildConfig config = {});

  /// Expands a CG system to AA and relaxes it. Deterministic given `rng`.
  [[nodiscard]] AaSystemInfo build(const CgSystemInfo& cg, util::Rng& rng) const;

  [[nodiscard]] const AaBuildConfig& config() const { return config_; }

 private:
  AaBuildConfig config_;
};

}  // namespace mummi::coupling
