#include "coupling/encoders.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mummi::coupling {

namespace {
constexpr int kPoolGrid = 3;  // 3x3 macro-pooling of the patch
}

PatchEncoder::PatchEncoder(int n_species, std::uint64_t seed, int out_dim)
    : n_species_(n_species),
      mlp_({n_species * kPoolGrid * kPoolGrid + cont::kNumProteinStates, 32,
            16, out_dim},
           seed) {}

std::vector<float> PatchEncoder::features(const Patch& patch) const {
  MUMMI_CHECK_MSG(patch.n_species == n_species_,
                  "patch species count mismatch");
  std::vector<float> f(static_cast<std::size_t>(n_species_) * kPoolGrid *
                           kPoolGrid + cont::kNumProteinStates,
                       0.0f);
  // Mean-pool each species over a kPoolGrid x kPoolGrid macro grid.
  const int cell = patch.grid / kPoolGrid;
  std::size_t cursor = 0;
  for (int s = 0; s < n_species_; ++s)
    for (int bi = 0; bi < kPoolGrid; ++bi)
      for (int bj = 0; bj < kPoolGrid; ++bj) {
        float sum = 0;
        int count = 0;
        for (int i = bi * cell; i < (bi + 1) * cell; ++i)
          for (int j = bj * cell; j < (bj + 1) * cell; ++j) {
            sum += patch.density_at(s, i, j);
            ++count;
          }
        f[cursor++] = count > 0 ? sum / static_cast<float>(count) : 0.0f;
      }
  // Protein-state composition.
  for (const auto& p : patch.proteins)
    f[cursor + static_cast<std::size_t>(p.state)] += 1.0f;
  return f;
}

std::vector<float> PatchEncoder::encode(const Patch& patch) const {
  return mlp_.forward(features(patch));
}

void PatchEncoder::encode_into(const Patch& patch, ml::PointId id,
                               ml::PointStore& out) const {
  out.add(id, mlp_.forward(features(patch)));
}

util::Bytes CgFrameInfo::serialize() const {
  util::ByteWriter w;
  w.u64(sim_id);
  w.i64(step);
  w.f32(tilt);
  w.f32(rotation);
  w.f32(separation);
  // Pad to the paper's ~850 B identifying-information record size so data
  // volumes in campaign accounting match.
  static constexpr std::size_t kRecordSize = 850;
  while (w.size() < kRecordSize) w.u8(0);
  return std::move(w).take();
}

CgFrameInfo CgFrameInfo::deserialize(const util::Bytes& bytes) {
  util::ByteReader r(bytes);  // throws FormatError on truncated streams
  CgFrameInfo info;
  info.sim_id = r.u64();
  info.step = r.i64();
  info.tilt = r.f32();
  info.rotation = r.f32();
  info.separation = r.f32();
  // The on-disk record is descriptor + zero padding to ~850 B; a non-finite
  // descriptor can only come from corruption, never from compute_frame_info.
  if (!std::isfinite(info.tilt) || !std::isfinite(info.rotation) ||
      !std::isfinite(info.separation))
    throw util::FormatError("CgFrameInfo descriptor not finite");
  return info;
}

CgFrameInfo compute_frame_info(const md::System& system,
                               const std::vector<int>& protein_beads,
                               int ras_beads, std::uint64_t sim_id,
                               long step) {
  MUMMI_CHECK_MSG(ras_beads >= 2 &&
                      static_cast<std::size_t>(ras_beads) <= protein_beads.size(),
                  "invalid protein bead partition");
  CgFrameInfo info;
  info.sim_id = sim_id;
  info.step = step;

  // RAS principal axis: first -> last RAS bead.
  const md::Vec3 ras_axis = system.box.min_image(
      system.pos[protein_beads[static_cast<std::size_t>(ras_beads) - 1]],
      system.pos[protein_beads[0]]);
  const md::real axis_norm = std::max(ras_axis.norm(), md::real(1e-9));
  // Tilt: angle of the RAS axis against the membrane normal (z), degrees.
  info.tilt = static_cast<float>(
      std::acos(std::abs(ras_axis.z) / axis_norm) * 180.0 / M_PI);
  // Rotation: azimuth of the axis in the membrane plane, degrees [0, 360).
  double rot = std::atan2(ras_axis.y, ras_axis.x) * 180.0 / M_PI;
  if (rot < 0) rot += 360.0;
  info.rotation = static_cast<float>(rot);

  // Separation: RAS centroid to RAF centroid (0 when no RAF beads).
  if (static_cast<std::size_t>(ras_beads) < protein_beads.size()) {
    md::Vec3 ras_c{}, raf_c{};
    for (int b = 0; b < ras_beads; ++b) ras_c += system.pos[protein_beads[b]];
    ras_c *= 1.0 / ras_beads;
    const auto n_raf = protein_beads.size() - static_cast<std::size_t>(ras_beads);
    for (std::size_t b = static_cast<std::size_t>(ras_beads);
         b < protein_beads.size(); ++b)
      raf_c += system.pos[protein_beads[b]];
    raf_c *= 1.0 / static_cast<md::real>(n_raf);
    info.separation =
        static_cast<float>(system.box.min_image(ras_c, raf_c).norm());
  }
  return info;
}

}  // namespace mummi::coupling
