// In-situ analysis components for CG and AA simulations.
//
// Paper Sec. 4.1 items 3 and 5: a Python-based analysis runs next to every
// simulation, inspecting each new snapshot within the frame cadence. The CG
// analysis produces protein-lipid RDFs (feedback payload) and candidate-frame
// identifying info (selection payload); the AA analysis produces per-frame
// secondary-structure patterns.
#pragma once

#include "coupling/backmap.hpp"
#include "coupling/createsim.hpp"
#include "coupling/encoders.hpp"
#include "mdengine/rdf.hpp"
#include "mdengine/secondary_structure.hpp"

namespace mummi::coupling {

/// Per-lipid-species protein RDFs — the CG-to-continuum feedback payload
/// ("vectorized additions of small Numpy arrays").
struct RdfSet {
  std::vector<md::RdfAccumulator> per_species;

  /// Element-wise merge; binning must match.
  void merge(const RdfSet& other);

  [[nodiscard]] util::Bytes serialize() const;
  static RdfSet deserialize(const util::Bytes& bytes);
};

class CgAnalysis {
 public:
  /// Copies the selections it needs from `info` (head indices, protein
  /// beads); `sim_id` tags emitted frame records.
  CgAnalysis(const CgSystemInfo& info, std::uint64_t sim_id,
             md::real rdf_rmax = 2.5, std::size_t rdf_bins = 24);

  /// Analyzes one frame: accumulates the protein-lipid RDFs and returns the
  /// candidate-frame identifying info.
  CgFrameInfo analyze(const md::System& system, long step);

  /// Hands over the RDFs accumulated since the last take (and resets) —
  /// what gets pushed to the feedback store every few frames.
  [[nodiscard]] RdfSet take_rdfs();

  [[nodiscard]] std::size_t frames_analyzed() const { return frames_; }

 private:
  std::uint64_t sim_id_;
  std::vector<std::vector<int>> heads_by_species_;
  std::vector<int> protein_beads_;
  int ras_beads_;
  md::real rdf_rmax_;
  std::size_t rdf_bins_;
  RdfSet accum_;
  std::size_t frames_ = 0;
};

class AaAnalysis {
 public:
  AaAnalysis(std::vector<int> backbone, std::uint64_t sim_id)
      : backbone_(std::move(backbone)), sim_id_(sim_id) {}

  /// Secondary-structure pattern for one frame ("HHEEC...").
  [[nodiscard]] std::string analyze(const md::System& system) const {
    return md::to_pattern(md::classify_backbone(system, backbone_));
  }

  [[nodiscard]] std::uint64_t sim_id() const { return sim_id_; }

 private:
  std::vector<int> backbone_;
  std::uint64_t sim_id_;
};

}  // namespace mummi::coupling
