#include "coupling/createsim.hpp"

#include <cmath>

#include "mdengine/integrator.hpp"
#include "mdengine/simulation.hpp"
#include "util/error.hpp"

namespace mummi::coupling {

std::shared_ptr<md::TypeMatrixForceField> make_cg_forcefield(int n_species) {
  CgTypeLayout layout{n_species};
  auto ff = std::make_shared<md::TypeMatrixForceField>(layout.n_types(), 1.2);
  ff->set_dielectric(15.0);  // Martini screening
  const md::real sigma = 0.47;
  // Head-head: like attracts like a bit more than unlike.
  for (int a = 0; a < n_species; ++a)
    for (int b = a; b < n_species; ++b) {
      const md::real eps = a == b ? 4.0 : 3.2 + 0.1 * ((a + b) % 4);
      ff->set_pair(layout.head(a), layout.head(b), {eps, sigma});
    }
  // Tails drive hydrophobic cohesion.
  ff->set_pair(layout.tail(), layout.tail(), {4.5, sigma});
  for (int a = 0; a < n_species; ++a)
    ff->set_pair(layout.head(a), layout.tail(), {2.6, sigma});
  // Protein beads.
  ff->set_pair(layout.protein(), layout.protein(), {4.0, sigma});
  ff->set_pair(layout.protein(), layout.tail(), {2.8, sigma});
  for (int a = 0; a < n_species; ++a)
    ff->set_pair(layout.protein(), layout.head(a), {3.0 + 0.2 * (a % 3), sigma});
  return ff;
}

CreateSim::CreateSim(CgBuildConfig config) : config_(config) {}

namespace {
/// Samples a lipid species index from the patch densities of one leaflet at
/// a given position.
int sample_species(const Patch& patch, util::Rng& rng, double x, double y,
                   int species_lo, int species_hi) {
  const double g = (patch.grid - 1) / patch.extent;
  const int i = std::min(patch.grid - 1, static_cast<int>(x * g));
  const int j = std::min(patch.grid - 1, static_cast<int>(y * g));
  double total = 0;
  for (int s = species_lo; s < species_hi; ++s)
    total += std::max(0.0f, patch.density_at(s, i, j));
  if (total <= 0) return species_lo;
  double pick = rng.uniform() * total;
  for (int s = species_lo; s < species_hi; ++s) {
    pick -= std::max(0.0f, patch.density_at(s, i, j));
    if (pick <= 0) return s;
  }
  return species_hi - 1;
}

/// Adds one three-bead lipid (head + two tails) to the system.
void add_lipid(md::System& system, const CgTypeLayout& layout, int species,
               double x, double y, double z_head, double tail_dir, int mol) {
  const md::real bead_mass = 72.0;  // Martini 4:1 mapping
  const md::real bond_r0 = 0.47;
  const md::real bond_k = 1250.0;
  const md::real charge = (species % 3 == 0) ? -0.5 : 0.0;  // charged heads
  const int head = system.add_particle({x, y, z_head}, layout.head(species),
                                       bead_mass, charge, mol);
  const int t1 = system.add_particle({x, y, z_head + tail_dir * bond_r0},
                                     layout.tail(), bead_mass, 0.0, mol);
  const int t2 = system.add_particle({x, y, z_head + 2 * tail_dir * bond_r0},
                                     layout.tail(), bead_mass, 0.0, mol);
  system.bonds.push_back({head, t1, bond_r0, bond_k});
  system.bonds.push_back({t1, t2, bond_r0, bond_k});
  system.angles.push_back({head, t1, t2, static_cast<md::real>(M_PI), 25.0});
}

/// Adds a protein as a bead chain rising from the membrane surface.
void add_protein_chain(md::System& system, const CgTypeLayout& layout,
                       std::vector<int>& beads, double x, double y,
                       double z0, int n_beads, int mol, util::Rng& rng) {
  const md::real bead_mass = 110.0;
  const md::real bond_r0 = 0.38;
  const md::real bond_k = 5000.0;
  int prev = -1;
  for (int b = 0; b < n_beads; ++b) {
    // Gentle helix so the chain has structure to analyze.
    const double angle = 0.6 * b;
    const double px = x + 0.25 * std::cos(angle) + 0.02 * rng.normal();
    const double py = y + 0.25 * std::sin(angle) + 0.02 * rng.normal();
    const double pz = z0 + 0.30 * b;
    const int idx = system.add_particle({px, py, pz}, layout.protein(),
                                        bead_mass, 0.0, mol);
    beads.push_back(idx);
    if (prev >= 0) {
      system.bonds.push_back({prev, idx, bond_r0, bond_k});
      if (b >= 2)
        system.angles.push_back({beads[beads.size() - 3], prev, idx,
                                 static_cast<md::real>(0.5 * M_PI + 0.5), 40.0});
    }
    prev = idx;
  }
}
}  // namespace

CgSystemInfo CreateSim::build(const Patch& patch, util::Rng& rng) const {
  MUMMI_CHECK_MSG(patch.n_species >= 2, "patch needs at least two species");
  CgSystemInfo info;
  info.layout = CgTypeLayout{patch.n_species};
  md::System& system = info.system;
  system.box.length = {patch.extent, patch.extent, config_.box_height};

  // Leaflet split follows the snapshot convention: inner species first.
  // Patches carry all species; we divide them at the midpoint when the
  // original 8/6 split is unknown.
  const int inner_hi = (patch.n_species * 8 + 13) / 14;  // 8 of 14 by default
  const double z_mid = 0.5 * config_.box_height;

  const auto lipids_per_leaflet = static_cast<int>(
      config_.lipids_per_nm2 * patch.extent * patch.extent);
  info.heads_by_species.resize(static_cast<std::size_t>(patch.n_species));

  int mol = 0;
  for (int leaflet = 0; leaflet < 2; ++leaflet) {
    const bool inner = leaflet == 0;
    const double z_head = inner ? z_mid - 1.5 : z_mid + 1.5;
    const double tail_dir = inner ? +1.0 : -1.0;  // tails point to midplane
    const int lo = inner ? 0 : inner_hi;
    const int hi = inner ? inner_hi : patch.n_species;
    for (int n = 0; n < lipids_per_leaflet; ++n) {
      const double x = rng.uniform(0.0, patch.extent);
      const double y = rng.uniform(0.0, patch.extent);
      const int species = sample_species(patch, rng, x, y, lo, hi);
      const int head_index = static_cast<int>(system.size());
      add_lipid(system, info.layout, species, x, y, z_head, tail_dir, mol++);
      info.heads_by_species[static_cast<std::size_t>(species)].push_back(
          head_index);
    }
  }

  // Proteins: bead chains anchored at the outer leaflet surface.
  for (const auto& p : patch.proteins) {
    const bool has_raf = p.state == cont::ProteinState::kRasRafA ||
                         p.state == cont::ProteinState::kRasRafB;
    std::vector<int> beads;
    add_protein_chain(system, info.layout, beads, p.x, p.y, z_mid + 1.8,
                      config_.ras_beads, mol, rng);
    if (&p == &patch.proteins.front()) info.ras_beads = config_.ras_beads;
    if (has_raf) {
      std::vector<int> raf;
      add_protein_chain(system, info.layout, raf, p.x + 0.8, p.y, z_mid + 2.2,
                        config_.raf_beads, mol, rng);
      // RAS-RAF association bond.
      system.bonds.push_back({beads.back(), raf.front(), 0.8, 500.0});
      beads.insert(beads.end(), raf.begin(), raf.end());
    }
    ++mol;
    if (&p == &patch.proteins.front()) info.protein_beads = beads;
  }

  // Relaxation: minimize, then a short Langevin equilibration ("GROMACS is
  // used to relax the membrane and proteins").
  auto ff = make_cg_forcefield(patch.n_species);
  {
    md::SimulationConfig sim_cfg;
    sim_cfg.dt = config_.dt;
    sim_cfg.pool = config_.pool;  // threads relaxation of fresh CG systems
    md::Simulation relax(std::move(system), ff,
                         std::make_unique<md::Langevin>(
                             config_.temperature, 1.0, rng.split()),
                         sim_cfg);
    relax.minimize_energy(config_.minimize_steps);
    relax.run(config_.relax_steps);
    info.system = relax.system();
  }
  return info;
}

}  // namespace mummi::coupling
