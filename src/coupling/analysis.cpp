#include "coupling/analysis.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mummi::coupling {

namespace {
// Bounds for untrusted RdfSet streams, validated before any allocation (the
// Snapshot::deserialize hardening discipline): far above anything the
// campaign emits (4 species, 16-24 bins), far below an allocation that
// could hurt.
constexpr std::uint32_t kMaxSpecies = 4096;
constexpr std::uint64_t kMaxBins = 1u << 20;
}  // namespace

void RdfSet::merge(const RdfSet& other) {
  MUMMI_CHECK_MSG(per_species.size() == other.per_species.size(),
                  "RdfSet species mismatch");
  for (std::size_t s = 0; s < per_species.size(); ++s)
    per_species[s].merge(other.per_species[s]);
}

util::Bytes RdfSet::serialize() const {
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(per_species.size()));
  for (const auto& rdf : per_species) {
    w.f64(rdf.r_max());
    w.u64(rdf.nbins());
    w.u64(rdf.frames());
    w.f64(rdf.pair_density_sum());
    w.vec(rdf.counts());
  }
  return std::move(w).take();
}

RdfSet RdfSet::deserialize(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  RdfSet out;
  const auto ns = r.u32();
  if (ns > kMaxSpecies)
    throw util::FormatError("RdfSet species count out of range");
  out.per_species.reserve(ns);
  for (std::uint32_t s = 0; s < ns; ++s) {
    const double rmax = r.f64();
    if (!std::isfinite(rmax) || rmax <= 0.0)
      throw util::FormatError("RdfSet r_max invalid");
    const auto nbins = r.u64();
    if (nbins == 0 || nbins > kMaxBins)
      throw util::FormatError("RdfSet bin count out of range");
    const auto frames = r.u64();
    const double pair_density = r.f64();
    if (!std::isfinite(pair_density))
      throw util::FormatError("RdfSet pair density invalid");
    // ByteReader::vec bounds the element count against the remaining bytes
    // before allocating; a truncated stream throws here, not in operator new.
    auto counts = r.vec<double>();
    if (counts.size() != nbins)
      throw util::FormatError("RdfSet counts/bins mismatch");
    md::RdfAccumulator acc(rmax, nbins);
    acc.restore_raw(std::move(counts), frames, pair_density);
    out.per_species.push_back(std::move(acc));
  }
  return out;
}

CgAnalysis::CgAnalysis(const CgSystemInfo& info, std::uint64_t sim_id,
                       md::real rdf_rmax, std::size_t rdf_bins)
    : sim_id_(sim_id),
      heads_by_species_(info.heads_by_species),
      protein_beads_(info.protein_beads),
      ras_beads_(info.ras_beads),
      rdf_rmax_(rdf_rmax),
      rdf_bins_(rdf_bins) {
  MUMMI_CHECK_MSG(!protein_beads_.empty(), "CG analysis needs protein beads");
  accum_.per_species.reserve(heads_by_species_.size());
  for (std::size_t s = 0; s < heads_by_species_.size(); ++s)
    accum_.per_species.emplace_back(rdf_rmax_, rdf_bins_);
}

CgFrameInfo CgAnalysis::analyze(const md::System& system, long step) {
  for (std::size_t s = 0; s < heads_by_species_.size(); ++s)
    if (!heads_by_species_[s].empty())
      accum_.per_species[s].add_frame(system, protein_beads_,
                                      heads_by_species_[s]);
  ++frames_;
  return compute_frame_info(system, protein_beads_, ras_beads_, sim_id_, step);
}

RdfSet CgAnalysis::take_rdfs() {
  RdfSet out = std::move(accum_);
  accum_ = RdfSet{};
  accum_.per_species.reserve(heads_by_species_.size());
  for (std::size_t s = 0; s < heads_by_species_.size(); ++s)
    accum_.per_species.emplace_back(rdf_rmax_, rdf_bins_);
  return out;
}

}  // namespace mummi::coupling
