// createsim: continuum patch -> equilibrated CG particle system.
//
// Paper Sec. 4.1 item 2: "The createsim module transforms a patch from
// continuum representation into a particle-based one. The insane tool is
// used to create a CG representation of the membrane and proteins. Once
// constructed, GROMACS is used to relax the membrane and proteins into a
// more natural, equilibrated, state."
//
// Here: lipids are placed leaflet-by-leaflet by sampling the patch density
// fields (insane's role), proteins are built as bead chains at the patch
// center, and the system is relaxed by steepest-descent minimization plus a
// short thermostatted run (GROMACS's role).
#pragma once

#include <memory>

#include "coupling/patch.hpp"
#include "mdengine/force_field.hpp"
#include "mdengine/system.hpp"
#include "util/rng.hpp"

namespace mummi::util {
class ThreadPool;
}  // namespace mummi::util

namespace mummi::coupling {

/// Bead-type layout for a CG membrane with S lipid species:
/// types [0, S) are per-species head beads, S is the shared tail bead,
/// S+1 is the protein backbone bead.
struct CgTypeLayout {
  int n_species = 0;
  [[nodiscard]] int head(int species) const { return species; }
  [[nodiscard]] int tail() const { return n_species; }
  [[nodiscard]] int protein() const { return n_species + 1; }
  [[nodiscard]] int n_types() const { return n_species + 2; }
};

struct CgBuildConfig {
  double lipids_per_nm2 = 0.25;  // per leaflet (Martini bilayers: ~1.5; kept
                                 // lower so repro-scale patches stay small)
  double box_height = 12.0;      // nm
  int ras_beads = 8;
  int raf_beads = 6;
  int minimize_steps = 150;
  int relax_steps = 100;         // short thermostatted equilibration
  double temperature = 310.0;    // K
  double dt = 0.02;              // ps
  util::ThreadPool* pool = nullptr;  // MD engine pool (null: MUMMI_POOL_SIZE)
};

/// A built CG system plus the index bookkeeping the in-situ analysis needs.
struct CgSystemInfo {
  md::System system;
  CgTypeLayout layout;
  std::vector<int> protein_beads;  // backbone chain, RAS first
  int ras_beads = 0;               // how many of protein_beads are RAS
  /// Lipid head-bead indices per species (RDF selections).
  std::vector<std::vector<int>> heads_by_species;
};

/// Martini-like CG force field for the given species count (cutoff 1.2 nm,
/// sigma 0.47 nm, interaction matrix with species-dependent mixing).
[[nodiscard]] std::shared_ptr<md::TypeMatrixForceField> make_cg_forcefield(
    int n_species);

class CreateSim {
 public:
  explicit CreateSim(CgBuildConfig config = {});

  /// Builds and relaxes a CG system from a patch. Deterministic given `rng`.
  [[nodiscard]] CgSystemInfo build(const Patch& patch, util::Rng& rng) const;

  [[nodiscard]] const CgBuildConfig& config() const { return config_; }

 private:
  CgBuildConfig config_;
};

}  // namespace mummi::coupling
