// Encoders: raw application data -> selector point spaces.
//
// Paper Task 2: encoded representations "may be computed using a ML inference
// engine (as done by the Patch Selector), a simpler dimensionality reduction
// (e.g., principal component analysis), or any configurational representation
// (as done by the Frame Selector)."
#pragma once

#include <cstdint>

#include "coupling/patch.hpp"
#include "mdengine/system.hpp"
#include "ml/mlp.hpp"
#include "ml/point_store.hpp"

namespace mummi::coupling {

/// Patch -> 9-D metric embedding through a small dense network (the
/// metric-learning DNN stand-in). Features: per-species pooled density
/// moments over a coarse macro-grid of the patch plus protein-state counts.
class PatchEncoder {
 public:
  PatchEncoder(int n_species, std::uint64_t seed, int out_dim = 9);

  [[nodiscard]] std::vector<float> encode(const Patch& patch) const;

  /// Encodes straight into a flat store (the campaign bulk path): one row
  /// appended under `id`, no intermediate HDPoint allocation.
  void encode_into(const Patch& patch, ml::PointId id,
                   ml::PointStore& out) const;

  [[nodiscard]] int out_dim() const { return mlp_.output_dim(); }

 private:
  [[nodiscard]] std::vector<float> features(const Patch& patch) const;

  int n_species_;
  ml::Mlp mlp_;
};

/// The ~850-byte "identifying information" a CG analysis emits per candidate
/// frame: enough for the Frame Selector and downstream backmapping to locate
/// the snapshot without reading trajectories.
struct CgFrameInfo {
  std::uint64_t sim_id = 0;
  long step = 0;
  /// 3-D conformational descriptor of the RAS-RAF complex: (tilt angle,
  /// rotation angle, RAS-RAF distance) — "three disparate quantities".
  float tilt = 0, rotation = 0, separation = 0;

  [[nodiscard]] std::vector<float> descriptor() const {
    return {tilt, rotation, separation};
  }
  /// Appends the 3-D descriptor into a flat store under `id` — the Frame
  /// Selector ingest path.
  void descriptor_into(ml::PointId id, ml::PointStore& out) const {
    const float d[3] = {tilt, rotation, separation};
    out.add(id, d);
  }
  [[nodiscard]] util::Bytes serialize() const;
  static CgFrameInfo deserialize(const util::Bytes& bytes);
};

/// Computes the 3-D descriptor from a CG system's protein beads.
/// `protein_beads` must list backbone indices; the first `ras_beads` belong
/// to RAS, the rest (if any) to RAF.
[[nodiscard]] CgFrameInfo compute_frame_info(const md::System& system,
                                             const std::vector<int>& protein_beads,
                                             int ras_beads,
                                             std::uint64_t sim_id, long step);

}  // namespace mummi::coupling
