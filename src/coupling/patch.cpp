#include "coupling/patch.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mummi::coupling {

util::NpyArray Patch::density_npy() const {
  return util::NpyArray::from_f32(
      {static_cast<std::size_t>(n_species), static_cast<std::size_t>(grid),
       static_cast<std::size_t>(grid)},
      density);
}

util::Bytes Patch::serialize() const {
  util::ByteWriter w;
  w.u64(id);
  w.f64(time_us);
  w.u32(static_cast<std::uint32_t>(grid));
  w.f64(extent);
  w.u32(static_cast<std::uint32_t>(n_species));
  w.vec(density);
  w.u32(static_cast<std::uint32_t>(proteins.size()));
  for (const auto& p : proteins) {
    w.f64(p.x);
    w.f64(p.y);
    w.u32(static_cast<std::uint32_t>(p.state));
  }
  return std::move(w).take();
}

Patch Patch::deserialize(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  Patch patch;
  patch.id = r.u64();
  patch.time_us = r.f64();
  patch.grid = static_cast<int>(r.u32());
  patch.extent = r.f64();
  patch.n_species = static_cast<int>(r.u32());
  patch.density = r.vec<float>();
  MUMMI_CHECK_MSG(patch.density.size() ==
                      static_cast<std::size_t>(patch.n_species) * patch.grid *
                          patch.grid,
                  "patch density size mismatch");
  const auto np = r.u32();
  for (std::uint32_t i = 0; i < np; ++i) {
    PatchProtein p;
    p.x = r.f64();
    p.y = r.f64();
    p.state = static_cast<cont::ProteinState>(r.u32());
    patch.proteins.push_back(p);
  }
  return patch;
}

PatchCreator::PatchCreator(int patch_grid, double patch_extent)
    : patch_grid_(patch_grid), patch_extent_(patch_extent) {
  MUMMI_CHECK_MSG(patch_grid > 1 && patch_extent > 0, "invalid patch shape");
}

std::vector<Patch> PatchCreator::create(const cont::Snapshot& snapshot,
                                        std::uint64_t& next_id) const {
  std::vector<Patch> out;
  out.reserve(snapshot.proteins.size());
  const double h = snapshot.extent / snapshot.grid;  // continuum spacing
  const double half = 0.5 * patch_extent_;
  const double sample_dx = patch_extent_ / (patch_grid_ - 1);

  for (const auto& center : snapshot.proteins) {
    Patch patch;
    patch.id = next_id++;
    patch.time_us = snapshot.time_us;
    patch.grid = patch_grid_;
    patch.extent = patch_extent_;
    patch.n_species = static_cast<int>(snapshot.fields.size());
    patch.density.resize(static_cast<std::size_t>(patch.n_species) *
                         patch_grid_ * patch_grid_);

    // Resample each species field over the window centered on the protein.
    std::size_t cursor = 0;
    for (const auto& field : snapshot.fields) {
      for (int i = 0; i < patch_grid_; ++i) {
        const double x = center.x - half + i * sample_dx;
        for (int j = 0; j < patch_grid_; ++j) {
          const double y = center.y - half + j * sample_dx;
          patch.density[cursor++] =
              static_cast<float>(field.interpolate(x / h, y / h));
        }
      }
    }

    // Collect proteins inside the window (periodic minimum image), center
    // protein first, with local coordinates.
    patch.proteins.push_back(PatchProtein{half, half, center.state});
    for (const auto& other : snapshot.proteins) {
      if (&other == &center) continue;
      double dx = other.x - center.x;
      double dy = other.y - center.y;
      dx -= snapshot.extent * std::round(dx / snapshot.extent);
      dy -= snapshot.extent * std::round(dy / snapshot.extent);
      if (std::abs(dx) <= half && std::abs(dy) <= half)
        patch.proteins.push_back(PatchProtein{half + dx, half + dy, other.state});
    }
    out.push_back(std::move(patch));
  }
  return out;
}

}  // namespace mummi::coupling
