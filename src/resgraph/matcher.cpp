#include "resgraph/matcher.hpp"

#include <algorithm>

namespace mummi::sched {

namespace {
/// Claims up to `max_slots` slots of the given shape from one node, taking
/// lowest-index free cores/GPUs. Appends to `out` and returns slots carved.
/// `visits` counts each inspected core/GPU vertex.
int carve_node(const ResourceGraph& graph, int node, const Slot& slot,
               int max_slots, std::vector<NodeAlloc>& out,
               std::uint64_t& visits) {
  const auto& spec = graph.spec();
  int carved = 0;
  int next_core = 0;
  int next_gpu = 0;
  while (carved < max_slots) {
    NodeAlloc alloc;
    alloc.node = node;
    // Cores.
    while (static_cast<int>(alloc.cores.size()) < slot.cores &&
           next_core < spec.cores_per_node()) {
      ++visits;
      if (graph.core_free(node, next_core)) alloc.cores.push_back(next_core);
      ++next_core;
    }
    if (static_cast<int>(alloc.cores.size()) < slot.cores) break;
    // GPUs.
    while (static_cast<int>(alloc.gpus.size()) < slot.gpus &&
           next_gpu < spec.gpus_per_node) {
      ++visits;
      if (graph.gpu_free(node, next_gpu)) alloc.gpus.push_back(next_gpu);
      ++next_gpu;
    }
    if (static_cast<int>(alloc.gpus.size()) < slot.gpus) break;
    out.push_back(std::move(alloc));
    ++carved;
  }
  return carved;
}

/// Cheap capacity pre-check so the carver is only invoked on viable nodes.
bool node_viable(const ResourceGraph& graph, int node, const Slot& slot) {
  return !graph.drained(node) && graph.free_cores(node) >= slot.cores &&
         graph.free_gpus(node) >= slot.gpus;
}

/// Pinned requests bypass the policy scan entirely: only pin_node is
/// considered, and its drain flag is ignored — the whole point of a pinned
/// canary is to probe a node that is currently drained.
std::optional<Allocation> match_pinned(const ResourceGraph& graph,
                                       const Request& request,
                                       std::uint64_t& visits) {
  const int node = request.pin_node;
  ++visits;  // node vertex
  if (node < 0 || node >= graph.spec().nodes) return std::nullopt;
  if (graph.free_cores(node) < request.slot.cores ||
      graph.free_gpus(node) < request.slot.gpus)
    return std::nullopt;
  Allocation result;
  int remaining = request.nslots;
  const int cap = request.one_slot_per_node ? 1 : remaining;
  remaining -= carve_node(graph, node, request.slot, cap, result.slots, visits);
  if (remaining > 0) return std::nullopt;
  return result;
}
}  // namespace

std::optional<Allocation> ExhaustiveMatcher::match(const ResourceGraph& graph,
                                                   const Request& request) {
  if (request.pin_node >= 0) return match_pinned(graph, request, visits_);
  const auto& spec = graph.spec();
  // The pre-fix policy walks the whole graph scoring every vertex before it
  // selects ("R essentially traverses the resource graph in its entirety for
  // each job"). The traversal is performed for real — every core and GPU
  // flag is inspected — so wall-clock comparisons against the first-match
  // policy are honest.
  ++visits_;  // cluster vertex
  int total_free_cores = 0;
  int total_free_gpus = 0;
  for (int node = 0; node < spec.nodes; ++node) {
    visits_ += 1 + static_cast<std::uint64_t>(spec.sockets_per_node);
    for (int c = 0; c < spec.cores_per_node(); ++c) {
      ++visits_;
      if (graph.core_free(node, c)) ++total_free_cores;
    }
    for (int g = 0; g < spec.gpus_per_node; ++g) {
      ++visits_;
      if (graph.gpu_free(node, g)) ++total_free_gpus;
    }
  }
  if (total_free_cores < request.slot.cores * request.nslots ||
      total_free_gpus < request.slot.gpus * request.nslots)
    return std::nullopt;

  Allocation result;
  int remaining = request.nslots;
  for (int node = 0; node < spec.nodes && remaining > 0; ++node) {
    if (!node_viable(graph, node, request.slot)) continue;
    const int cap = request.one_slot_per_node ? 1 : remaining;
    std::uint64_t carve_visits = 0;  // already paid for by the full traversal
    remaining -= carve_node(graph, node, request.slot, cap, result.slots,
                            carve_visits);
  }
  if (remaining > 0) return std::nullopt;
  return result;
}

std::optional<Allocation> FirstMatchMatcher::match(const ResourceGraph& graph,
                                                   const Request& request) {
  if (request.pin_node >= 0) return match_pinned(graph, request, visits_);
  const auto& spec = graph.spec();
  Allocation result;
  int remaining = request.nslots;
  int inspected = 0;
  int node = cursor_;
  int last_used = cursor_;
  while (remaining > 0 && inspected < spec.nodes) {
    ++visits_;  // node vertex
    if (node_viable(graph, node, request.slot)) {
      const int cap = request.one_slot_per_node ? 1 : remaining;
      const int carved =
          carve_node(graph, node, request.slot, cap, result.slots, visits_);
      remaining -= carved;
      if (carved > 0) last_used = node;
    }
    node = (node + 1) % spec.nodes;
    ++inspected;
  }
  if (remaining > 0) return std::nullopt;
  // Resume scanning near the last placement; nodes behind the cursor refill
  // as jobs finish and are revisited on wrap-around.
  cursor_ = last_used;
  return result;
}

ClusterSpec subinstance_spec(const Allocation& alloc) {
  MUMMI_CHECK_MSG(!alloc.empty(), "cannot nest inside an empty allocation");
  const auto cores = alloc.slots.front().cores.size();
  const auto gpus = alloc.slots.front().gpus.size();
  for (const auto& slot : alloc.slots)
    MUMMI_CHECK_MSG(slot.cores.size() == cores && slot.gpus.size() == gpus,
                    "nested instance requires uniform slots");
  ClusterSpec spec;
  spec.nodes = static_cast<int>(alloc.slots.size());
  spec.sockets_per_node = 1;
  spec.cores_per_socket = static_cast<int>(cores);
  spec.gpus_per_node = static_cast<int>(gpus);
  return spec;
}

std::unique_ptr<Matcher> make_matcher(MatchPolicy policy) {
  switch (policy) {
    case MatchPolicy::kExhaustiveLowId:
      return std::make_unique<ExhaustiveMatcher>();
    case MatchPolicy::kFirstMatch:
      return std::make_unique<FirstMatchMatcher>();
  }
  throw util::Error("unknown match policy");
}

}  // namespace mummi::sched
