#include "resgraph/resource_graph.hpp"

namespace mummi::sched {

ResourceGraph::ResourceGraph(ClusterSpec spec) : spec_(spec) {
  MUMMI_CHECK_MSG(spec.nodes > 0 && spec.sockets_per_node > 0 &&
                      spec.cores_per_socket > 0 && spec.gpus_per_node >= 0,
                  "invalid cluster spec");
  nodes_.resize(static_cast<std::size_t>(spec.nodes));
  for (auto& node : nodes_) {
    node.core_used.assign(static_cast<std::size_t>(spec.cores_per_node()), false);
    node.gpu_used.assign(static_cast<std::size_t>(spec.gpus_per_node), false);
    node.free_cores = spec.cores_per_node();
    node.free_gpus = spec.gpus_per_node;
  }
}

std::size_t ResourceGraph::n_vertices() const {
  const auto per_node = 1 + spec_.sockets_per_node + spec_.cores_per_node() +
                        spec_.gpus_per_node;
  return 1 + static_cast<std::size_t>(spec_.nodes) *
                 static_cast<std::size_t>(per_node);
}

bool ResourceGraph::core_free(int node, int core) const {
  return !nodes_[node].core_used[core];
}

bool ResourceGraph::gpu_free(int node, int gpu) const {
  return !nodes_[node].gpu_used[gpu];
}

int ResourceGraph::free_cores(int node) const { return nodes_[node].free_cores; }
int ResourceGraph::free_gpus(int node) const { return nodes_[node].free_gpus; }

int ResourceGraph::total_free_cores() const {
  return spec_.nodes * spec_.cores_per_node() - used_cores_;
}

int ResourceGraph::total_free_gpus() const {
  return spec_.nodes * spec_.gpus_per_node - used_gpus_;
}

void ResourceGraph::drain(int node) { nodes_[node].drained = true; }
void ResourceGraph::undrain(int node) { nodes_[node].drained = false; }

void ResourceGraph::expand(int extra_nodes) {
  MUMMI_CHECK_MSG(extra_nodes > 0, "expand needs a positive node count");
  for (int n = 0; n < extra_nodes; ++n) {
    Node node;
    node.core_used.assign(static_cast<std::size_t>(spec_.cores_per_node()),
                          false);
    node.gpu_used.assign(static_cast<std::size_t>(spec_.gpus_per_node), false);
    node.free_cores = spec_.cores_per_node();
    node.free_gpus = spec_.gpus_per_node;
    nodes_.push_back(std::move(node));
  }
  spec_.nodes += extra_nodes;
}

bool ResourceGraph::shrink() {
  if (spec_.nodes <= 1) return false;
  const Node& last = nodes_.back();
  if (last.free_cores != spec_.cores_per_node() ||
      last.free_gpus != spec_.gpus_per_node)
    return false;  // busy nodes cannot be reclaimed
  nodes_.pop_back();
  --spec_.nodes;
  return true;
}

void ResourceGraph::allocate(const Allocation& alloc) {
  for (const auto& slot : alloc.slots) {
    Node& node = nodes_[slot.node];
    for (int c : slot.cores) {
      MUMMI_CHECK_MSG(!node.core_used[c], "double allocation of core");
      node.core_used[c] = true;
    }
    for (int g : slot.gpus) {
      MUMMI_CHECK_MSG(!node.gpu_used[g], "double allocation of gpu");
      node.gpu_used[g] = true;
    }
    node.free_cores -= static_cast<int>(slot.cores.size());
    node.free_gpus -= static_cast<int>(slot.gpus.size());
    used_cores_ += static_cast<int>(slot.cores.size());
    used_gpus_ += static_cast<int>(slot.gpus.size());
  }
}

void ResourceGraph::release(const Allocation& alloc) {
  for (const auto& slot : alloc.slots) {
    Node& node = nodes_[slot.node];
    for (int c : slot.cores) {
      MUMMI_CHECK_MSG(node.core_used[c], "release of unallocated core");
      node.core_used[c] = false;
    }
    for (int g : slot.gpus) {
      MUMMI_CHECK_MSG(node.gpu_used[g], "release of unallocated gpu");
      node.gpu_used[g] = false;
    }
    node.free_cores += static_cast<int>(slot.cores.size());
    node.free_gpus += static_cast<int>(slot.gpus.size());
    used_cores_ -= static_cast<int>(slot.cores.size());
    used_gpus_ -= static_cast<int>(slot.gpus.size());
  }
}

}  // namespace mummi::sched
