// Resource-matching policies (Flux's "R" component).
//
// Paper Sec. 5.2: the stock policy "essentially traverses the resource graph
// ... in its entirety for each job, particularly in the beginning when there
// are many vacant resources, creating 'too many choices'"; the fix was "a
// first-match policy that assigns the first matching resource set to a job
// greedily", measured at 670x on a 4000-node Summit-like graph with 24,000
// 1-GPU jobs plus one 150-node job.
//
// Both policies here return identical-quality allocations for MuMMI's job
// mix; they differ in traversal cost, which each Matcher reports as vertex
// visits so benches can compare them on equal footing.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "resgraph/resource_graph.hpp"

namespace mummi::sched {

/// A resource request: `nslots` identical slots, each colocated within one
/// node. With `one_slot_per_node`, slots land on distinct nodes — how the
/// continuum job asks for "150 nodes, each with 24 cores".
struct Request {
  Slot slot;
  int nslots = 1;
  bool one_slot_per_node = false;
  /// >= 0: only that node may satisfy the request — how a supervision canary
  /// probes one specific drained node. Drained-node skipping still applies;
  /// callers undrain-or-pin accordingly (matchers treat a pinned drained
  /// node as matchable so a canary can probe it in place).
  int pin_node = -1;
};

class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Finds (but does not claim) an allocation. Returns nullopt when the
  /// request cannot currently be satisfied. Drained nodes are skipped.
  [[nodiscard]] virtual std::optional<Allocation> match(
      const ResourceGraph& graph, const Request& request) = 0;

  /// Vertices inspected by all match() calls so far — the traversal cost.
  [[nodiscard]] std::uint64_t visits() const { return visits_; }
  void reset_visits() { visits_ = 0; }

  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  std::uint64_t visits_ = 0;
};

/// Low-resource-ID-first policy that scores *every* vertex in the graph on
/// every call before selecting the lowest-ID free resources — the pre-fix
/// Flux behaviour.
class ExhaustiveMatcher final : public Matcher {
 public:
  [[nodiscard]] std::optional<Allocation> match(const ResourceGraph& graph,
                                                const Request& request) override;
  [[nodiscard]] std::string name() const override { return "exhaustive-lowid"; }
};

/// Greedy first-fit with a rotating node cursor: stops as soon as the
/// request is satisfied and resumes where it left off, so cost is
/// proportional to resources claimed, not graph size.
class FirstMatchMatcher final : public Matcher {
 public:
  [[nodiscard]] std::optional<Allocation> match(const ResourceGraph& graph,
                                                const Request& request) override;
  [[nodiscard]] std::string name() const override { return "first-match"; }

 private:
  int cursor_ = 0;
};

enum class MatchPolicy { kExhaustiveLowId, kFirstMatch };

[[nodiscard]] std::unique_ptr<Matcher> make_matcher(MatchPolicy policy);

/// Flux-style nested instance support (paper Sec. 4.3: single-user mode
/// "allows the user to instantiate an 'isolated HPC system' within a
/// standard batch allocation"): the uniform resource set granted by an
/// allocation becomes a standalone machine spec for a child Scheduler —
/// each slot turns into one node of the child. Throws when slot shapes
/// differ (a nested instance needs a regular machine).
[[nodiscard]] ClusterSpec subinstance_spec(const Allocation& alloc);

}  // namespace mummi::sched
