// Hierarchical resource-graph model of a heterogeneous machine.
//
// Flux models "the resources managed by Flux" as a graph over nodes, GPUs,
// CPU cores, sockets and hardware threads (paper Sec. 5.2); MuMMI's 4000-node
// run stressed the matcher with "hundreds of thousands of resources".
// ResourceGraph reproduces that shape: cluster -> node -> socket -> core,
// with GPUs attached to nodes, and per-vertex allocated/drained state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace mummi::sched {

/// Machine shape. Defaults model a Summit node: 2 sockets x 22 cores, 6 GPUs.
struct ClusterSpec {
  int nodes = 1;
  int sockets_per_node = 2;
  int cores_per_socket = 22;
  int gpus_per_node = 6;

  [[nodiscard]] int cores_per_node() const {
    return sockets_per_node * cores_per_socket;
  }

  /// Summit partition of the given size (paper Sec. 5).
  static ClusterSpec summit(int nodes) { return {nodes, 2, 22, 6}; }
  /// Sierra partition (SC'19 MuMMI): 2 x 22 cores, 4 GPUs.
  static ClusterSpec sierra(int nodes) { return {nodes, 2, 22, 4}; }
  /// A laptop-scale machine for examples/tests.
  static ClusterSpec laptop() { return {1, 1, 8, 2}; }
};

/// What one job slot needs, colocated within a single node — the paper's
/// simulation jobs are "one GPU ... bound to two CPU cores", analyses get
/// "a small number of CPU cores closest to the PCIe bus", setup jobs get
/// "24 cores within a node".
struct Slot {
  int cores = 1;
  int gpus = 0;
};

/// One node's share of an allocation.
struct NodeAlloc {
  int node = -1;
  std::vector<int> cores;  // core indices within the node
  std::vector<int> gpus;   // gpu indices within the node
};

/// A satisfied request: one NodeAlloc per slot (slots never span nodes).
struct Allocation {
  std::vector<NodeAlloc> slots;
  [[nodiscard]] bool empty() const { return slots.empty(); }
};

/// Per-node occupancy bookkeeping plus a flat vertex count for matcher cost
/// accounting (a vertex visit = inspecting one core/GPU/socket/node).
class ResourceGraph {
 public:
  explicit ResourceGraph(ClusterSpec spec);

  [[nodiscard]] const ClusterSpec& spec() const { return spec_; }
  [[nodiscard]] int n_nodes() const { return spec_.nodes; }
  /// Total graph vertices: cluster + nodes + sockets + cores + gpus.
  [[nodiscard]] std::size_t n_vertices() const;

  [[nodiscard]] bool core_free(int node, int core) const;
  [[nodiscard]] bool gpu_free(int node, int gpu) const;
  [[nodiscard]] int free_cores(int node) const;
  [[nodiscard]] int free_gpus(int node) const;
  [[nodiscard]] int total_free_cores() const;
  [[nodiscard]] int total_free_gpus() const;

  [[nodiscard]] bool drained(int node) const { return nodes_[node].drained; }
  /// Drains a node: running work keeps its resources, nothing new lands
  /// there (Flux's failure-resilience behaviour, paper Sec. 4.4).
  void drain(int node);
  void undrain(int node);

  /// Elastic growth (the paper's Sec. 6 outlook: "elastic resource
  /// availability ... should be considered broadly as an emerging need"):
  /// appends `extra` identical free nodes; matchers see them immediately.
  void expand(int extra_nodes);
  /// Elastic shrink: removes the highest-indexed node if it is completely
  /// idle; returns whether a node was removed.
  bool shrink();

  /// Claims the resources in an allocation. Throws if any are busy.
  void allocate(const Allocation& alloc);
  /// Returns an allocation's resources to the free pool.
  void release(const Allocation& alloc);

  [[nodiscard]] int used_cores() const { return used_cores_; }
  [[nodiscard]] int used_gpus() const { return used_gpus_; }

 private:
  friend class ExhaustiveMatcher;
  friend class FirstMatchMatcher;

  struct Node {
    std::vector<bool> core_used;
    std::vector<bool> gpu_used;
    int free_cores = 0;
    int free_gpus = 0;
    bool drained = false;
  };

  ClusterSpec spec_;
  std::vector<Node> nodes_;
  int used_cores_ = 0;
  int used_gpus_ = 0;
};

}  // namespace mummi::sched
