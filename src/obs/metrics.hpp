// Process-wide metrics registry: named counters, gauges and histograms.
//
// The paper's operational story (Sec. 5.2, Figs. 5-8) rests on observing the
// campaign — occupancy every 10 min, ramp-up curves, KV query-mix rates. The
// registry is the one place those numbers accumulate: any layer grabs a
// handle by name (`obs::counter("sched.submitted")`) and updates it with
// relaxed atomics; snapshots serialize the whole registry for the
// TelemetryReport sink and the figure benches.
//
// Cost model:
//   - compiled out (-DMUMMI_TELEMETRY=OFF): every type below collapses to an
//     empty shell whose methods are inline no-ops — the instrumentation
//     sites survive but generate no code (scripts/tier1.sh verifies this via
//     the obs_noop_probe binary);
//   - compiled in but runtime-disabled (obs::set_enabled(false)): one
//     relaxed atomic load per update;
//   - enabled: a relaxed fetch_add (counters/gauges) or a short mutex-guarded
//     histogram insert. Nothing here belongs in a per-element inner loop;
//     the instrumented sites are per-job / per-KV-op, not per-point.
//
// Handles returned by the registry are stable for the life of the process:
// metrics are never destroyed, only reset() to zero, so cached pointers in
// hot objects (Scheduler, KvCluster) stay valid across test cases.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/histogram.hpp"

namespace mummi::obs {

#if defined(MUMMI_TELEMETRY_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// One registry snapshot, timestamped by the caller. Rows are sorted by name
/// so serialized output is deterministic.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    double value = 0;
  };
  struct HistogramRow {
    std::string name;
    std::size_t count = 0;
    double sum = 0, min = 0, max = 0;
    double lo = 0, hi = 0;
    std::vector<double> bins;
    [[nodiscard]] double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
  };

  double time = 0;  // seconds, caller-defined epoch (virtual or wall)
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  /// JSON object (counters/gauges as maps, histograms with bin arrays).
  /// `indent` spaces of leading indentation on every line.
  [[nodiscard]] std::string json(int indent = 0) const;
};

#if !defined(MUMMI_TELEMETRY_DISABLED)

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Runtime master switch (default on). Updates are dropped while disabled;
/// reads (value(), snapshot()) always work.
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written instantaneous value (occupancy fraction, queue depth, ...).
class Gauge {
 public:
  void set(double v) {
    if (enabled()) v_.store(v, std::memory_order_relaxed);
  }
  void add(double dv) {
    if (!enabled()) return;
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + dv,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Distribution metric: fixed uniform bins (util::Histogram) plus exact
/// sum/count/min/max, so mean() carries no binning error — the property the
/// Fig. 5 acceptance check (registry mean == Profiler mean) relies on.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t nbins)
      : hist_(lo, hi, nbins) {}

  void observe(double x, double weight = 1.0) {
    if (!enabled()) return;
    std::lock_guard lock(mutex_);
    hist_.add(x, weight);
    sum_ += x * weight;
    ++n_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const {
    std::lock_guard lock(mutex_);
    return n_;
  }
  [[nodiscard]] double sum() const {
    std::lock_guard lock(mutex_);
    return sum_;
  }
  [[nodiscard]] double mean() const {
    std::lock_guard lock(mutex_);
    return n_ > 0 ? sum_ / static_cast<double>(n_) : 0.0;
  }
  /// Copy of the underlying binned histogram (for ascii / fraction queries).
  [[nodiscard]] util::Histogram histogram() const {
    std::lock_guard lock(mutex_);
    return hist_;
  }

  [[nodiscard]] MetricsSnapshot::HistogramRow row(std::string name) const;
  void reset();

 private:
  mutable std::mutex mutex_;
  util::Histogram hist_;
  double sum_ = 0;
  std::size_t n_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Returns the named metric, creating it on first use. Handles are stable
  /// for the life of the process. For histograms, the first registration
  /// fixes the bin layout; later calls ignore their lo/hi/nbins.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  HistogramMetric& histogram(const std::string& name, double lo, double hi,
                             std::size_t nbins);

  /// Point-in-time copy of every metric, rows sorted by name. `time` is left
  /// 0 — the caller stamps it (virtual campaign seconds or wall time).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every value; handles stay valid (nothing is destroyed).
  void reset();

  [[nodiscard]] std::size_t size() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<HistogramMetric>> hists_;
};

#else  // MUMMI_TELEMETRY_DISABLED ------------------------------------------

// No-op shells: same surface, zero code at call sites. Kept byte-free so a
// disabled build carries no telemetry state at all.

[[nodiscard]] inline constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}

class Counter {
 public:
  void inc(std::uint64_t = 1) {}
  [[nodiscard]] std::uint64_t value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  void set(double) {}
  void add(double) {}
  [[nodiscard]] double value() const { return 0.0; }
  void reset() {}
};

class HistogramMetric {
 public:
  void observe(double, double = 1.0) {}
  [[nodiscard]] std::size_t count() const { return 0; }
  [[nodiscard]] double sum() const { return 0.0; }
  [[nodiscard]] double mean() const { return 0.0; }
  [[nodiscard]] util::Histogram histogram() const {
    return util::Histogram(0.0, 1.0, 1);
  }
  void reset() {}
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();
  Counter& counter(const std::string&) { return counter_; }
  Gauge& gauge(const std::string&) { return gauge_; }
  HistogramMetric& histogram(const std::string&, double, double, std::size_t) {
    return hist_;
  }
  [[nodiscard]] MetricsSnapshot snapshot() const { return {}; }
  void reset() {}
  [[nodiscard]] std::size_t size() const { return 0; }

 private:
  Counter counter_;
  Gauge gauge_;
  HistogramMetric hist_;
};

#endif  // MUMMI_TELEMETRY_DISABLED

/// Shorthands for instrumentation sites.
inline Counter& counter(const std::string& name) {
  return MetricsRegistry::instance().counter(name);
}
inline Gauge& gauge(const std::string& name) {
  return MetricsRegistry::instance().gauge(name);
}
inline HistogramMetric& histogram(const std::string& name, double lo,
                                  double hi, std::size_t nbins) {
  return MetricsRegistry::instance().histogram(name, lo, hi, nbins);
}

}  // namespace mummi::obs
