// TelemetryReport: periodic registry snapshots serialized to JSON.
//
// The paper's Fig. 5 occupancy profile is literally "a snapshot every 10
// minutes"; the report sink generalizes that — any driver (the campaign's
// profile tick, a bench loop) calls sample(now) to append a timestamped
// MetricsSnapshot, and write_json() lands the series plus a final snapshot
// in bench_outputs/telemetry.json for the plotting/regression tooling.
//
// The process-wide sink pointer decouples the Campaign from the benches: the
// campaign's profile tick calls obs::report_sample(t), which no-ops unless a
// bench installed a report via obs::set_report_sink().
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace mummi::obs {

class TelemetryReport {
 public:
  /// `bench` tags the output JSON ("bench" key — the contract
  /// scripts/bench_smoke.sh validates on every bench_outputs file).
  explicit TelemetryReport(std::string bench) : bench_(std::move(bench)) {}

  /// Appends one registry snapshot stamped with `now_s` (caller-defined
  /// timeline: virtual campaign seconds for the figure benches).
  void sample(double now_s);

  [[nodiscard]] std::size_t samples() const;
  [[nodiscard]] std::vector<MetricsSnapshot> snapshots() const;

  /// {"bench": ..., "snapshots": [...], "final": {...}} where "final" is a
  /// fresh registry snapshot taken at write time. Returns false on I/O
  /// failure.
  bool write_json(const std::string& path) const;

 private:
  std::string bench_;
  mutable std::mutex mutex_;
  std::vector<MetricsSnapshot> snaps_;
};

/// Installs `sink` as the process-wide report (nullptr uninstalls). The
/// caller owns the report and must uninstall before destroying it.
void set_report_sink(TelemetryReport* sink);
[[nodiscard]] TelemetryReport* report_sink();

/// Forwards to the installed sink's sample(); no-op without one.
void report_sample(double now_s);

}  // namespace mummi::obs
