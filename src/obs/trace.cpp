#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace mummi::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

bool write_text_file(const std::string& path, const std::string& text) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (!out) return false;
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), out);
  const bool ok = written == text.size() && std::fclose(out) == 0;
  if (!ok && written != text.size()) std::fclose(out);
  return ok;
}

}  // namespace

#if !defined(MUMMI_TELEMETRY_DISABLED)

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();  // leaked: outlives static dtors
  return *tracer;
}

double Tracer::now_us() const {
  const auto dt = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double, std::micro>(dt).count();
}

std::uint32_t Tracer::thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Tracer::push(TraceEvent ev) {
  std::lock_guard lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

void Tracer::complete(std::string name, std::string cat, double ts_us,
                      double dur_us) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = std::move(cat);
  ev.ph = 'X';
  ev.ts_us = ts_us;
  ev.dur_us = std::max(0.0, dur_us);
  ev.tid = thread_id();
  push(std::move(ev));
}

void Tracer::instant(std::string name, std::string cat) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = std::move(cat);
  ev.ph = 'i';
  ev.ts_us = now_us();
  ev.tid = thread_id();
  push(std::move(ev));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::size_t Tracer::event_count() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::size_t Tracer::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
  dropped_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

void Tracer::set_capacity(std::size_t max_events) {
  std::lock_guard lock(mutex_);
  capacity_ = std::max<std::size_t>(1, max_events);
}

std::string Tracer::chrome_json() const {
  // Trace-event JSON array format: each event is one object; "X" events
  // carry dur, "i" events carry scope "t" (thread). ts/dur in microseconds.
  const auto evs = events();
  std::string out = "{\"traceEvents\": [";
  char buf[96];
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const TraceEvent& ev = evs[i];
    out += i ? ",\n  " : "\n  ";
    out += "{\"name\": \"";
    append_escaped(out, ev.name);
    out += "\", \"cat\": \"";
    append_escaped(out, ev.cat);
    out += "\", \"ph\": \"";
    out += ev.ph;
    out += "\", \"pid\": 1, ";
    std::snprintf(buf, sizeof buf, "\"tid\": %u, \"ts\": %.3f", ev.tid,
                  ev.ts_us);
    out += buf;
    if (ev.ph == 'X') {
      std::snprintf(buf, sizeof buf, ", \"dur\": %.3f", ev.dur_us);
      out += buf;
    } else if (ev.ph == 'i') {
      out += ", \"s\": \"t\"";
    }
    out += "}";
  }
  out += evs.empty() ? "], " : "\n], ";
  out += "\"displayTimeUnit\": \"ms\"}\n";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  return write_text_file(path, chrome_json());
}

std::string Tracer::summary() const {
  struct Agg {
    std::size_t count = 0;
    double total_us = 0, max_us = 0;
  };
  std::map<std::string, Agg> by_name;  // ordered: deterministic output
  for (const auto& ev : events()) {
    if (ev.ph != 'X') continue;
    Agg& agg = by_name[ev.name];
    ++agg.count;
    agg.total_us += ev.dur_us;
    agg.max_us = std::max(agg.max_us, ev.dur_us);
  }
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-32s %10s %12s %12s %12s\n", "span",
                "count", "total ms", "mean us", "max us");
  out += line;
  for (const auto& [name, agg] : by_name) {
    std::snprintf(line, sizeof line, "%-32s %10zu %12.3f %12.1f %12.1f\n",
                  name.c_str(), agg.count, agg.total_us / 1000.0,
                  agg.total_us / static_cast<double>(agg.count), agg.max_us);
    out += line;
  }
  return out;
}

#else  // MUMMI_TELEMETRY_DISABLED

bool Tracer::write_chrome_trace(const std::string& path) const {
  return write_text_file(path, chrome_json());
}

#endif  // MUMMI_TELEMETRY_DISABLED

}  // namespace mummi::obs
