#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "util/crashpoint.hpp"

namespace mummi::obs {

namespace {

// util cannot link obs, so persistence code down in util reports durability
// events (ckpt.generations, ckpt.recovered_from, ...) through a hook seam.
// Installing the mirror from a static initializer in this TU means any
// binary that uses obs at all gets the counters for free.
[[maybe_unused]] const bool g_persist_mirror = [] {
  util::set_persist_event_hook([](const char* name) { counter(name).inc(); });
  return true;
}();

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::json(int indent) const {
  const std::string pad(static_cast<std::size_t>(std::max(indent, 0)), ' ');
  const std::string pad1 = pad + "  ";
  const std::string pad2 = pad1 + "  ";
  std::string out = pad + "{\n";
  out += pad1 + "\"time\": " + fmt_double(time) + ",\n";

  out += pad1 + "\"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += i ? ",\n" : "\n";
    out += pad2 + "\"";
    append_escaped(out, counters[i].name);
    out += "\": " + std::to_string(counters[i].value);
  }
  out += counters.empty() ? "},\n" : "\n" + pad1 + "},\n";

  out += pad1 + "\"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += i ? ",\n" : "\n";
    out += pad2 + "\"";
    append_escaped(out, gauges[i].name);
    out += "\": " + fmt_double(gauges[i].value);
  }
  out += gauges.empty() ? "},\n" : "\n" + pad1 + "},\n";

  out += pad1 + "\"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    out += i ? ",\n" : "\n";
    out += pad2 + "\"";
    append_escaped(out, h.name);
    out += "\": {\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + fmt_double(h.sum);
    out += ", \"mean\": " + fmt_double(h.mean());
    if (h.count > 0) {
      out += ", \"min\": " + fmt_double(h.min);
      out += ", \"max\": " + fmt_double(h.max);
    }
    out += ", \"lo\": " + fmt_double(h.lo) + ", \"hi\": " + fmt_double(h.hi);
    out += ", \"bins\": [";
    for (std::size_t b = 0; b < h.bins.size(); ++b) {
      if (b) out += ", ";
      out += fmt_double(h.bins[b]);
    }
    out += "]}";
  }
  out += histograms.empty() ? "}\n" : "\n" + pad1 + "}\n";
  out += pad + "}";
  return out;
}

#if !defined(MUMMI_TELEMETRY_DISABLED)

namespace detail {
std::atomic<bool> g_enabled{true};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

MetricsSnapshot::HistogramRow HistogramMetric::row(std::string name) const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot::HistogramRow r;
  r.name = std::move(name);
  r.count = n_;
  r.sum = sum_;
  r.min = n_ > 0 ? min_ : 0.0;
  r.max = n_ > 0 ? max_ : 0.0;
  r.lo = hist_.lo();
  r.hi = hist_.hi();
  r.bins.reserve(hist_.nbins());
  for (std::size_t b = 0; b < hist_.nbins(); ++b)
    r.bins.push_back(hist_.count(b));
  return r;
}

void HistogramMetric::reset() {
  std::lock_guard lock(mutex_);
  hist_ = util::Histogram(hist_.lo(), hist_.hi(), hist_.nbins());
  sum_ = 0;
  n_ = 0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed:
  return *registry;  // handles must outlive every static destructor
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name, double lo,
                                            double hi, std::size_t nbins) {
  std::lock_guard lock(mutex_);
  auto& slot = hists_[name];
  if (!slot) slot = std::make_unique<HistogramMetric>(lo, hi, nbins);
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard lock(mutex_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_)
      snap.counters.push_back({name, c->value()});
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_)
      snap.gauges.push_back({name, g->value()});
    snap.histograms.reserve(hists_.size());
    for (const auto& [name, h] : hists_) snap.histograms.push_back(h->row(name));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : hists_) h->reset();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mutex_);
  return counters_.size() + gauges_.size() + hists_.size();
}

#else  // MUMMI_TELEMETRY_DISABLED

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

#endif  // MUMMI_TELEMETRY_DISABLED

}  // namespace mummi::obs
