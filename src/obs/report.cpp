#include "obs/report.hpp"

#include <atomic>
#include <cstdio>

namespace mummi::obs {

void TelemetryReport::sample(double now_s) {
  MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  snap.time = now_s;
  std::lock_guard lock(mutex_);
  snaps_.push_back(std::move(snap));
}

std::size_t TelemetryReport::samples() const {
  std::lock_guard lock(mutex_);
  return snaps_.size();
}

std::vector<MetricsSnapshot> TelemetryReport::snapshots() const {
  std::lock_guard lock(mutex_);
  return snaps_;
}

bool TelemetryReport::write_json(const std::string& path) const {
  std::string out = "{\n  \"bench\": \"" + bench_ + "\",\n";
  double last_time = 0;
  bool have_samples = false;
  {
    std::lock_guard lock(mutex_);
    out += "  \"snapshots\": [";
    for (std::size_t i = 0; i < snaps_.size(); ++i) {
      out += i ? ",\n" : "\n";
      out += snaps_[i].json(4);
    }
    out += snaps_.empty() ? "],\n" : "\n  ],\n";
    if (!snaps_.empty()) {
      last_time = snaps_.back().time;
      have_samples = true;
    }
  }
  MetricsSnapshot final_snap = MetricsRegistry::instance().snapshot();
  if (have_samples) final_snap.time = last_time;
  out += "  \"final\":\n" + final_snap.json(2) + "\n}\n";

  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool ok = written == out.size() && std::fclose(f) == 0;
  if (!ok && written != out.size()) std::fclose(f);
  return ok;
}

namespace {
std::atomic<TelemetryReport*> g_sink{nullptr};
}  // namespace

void set_report_sink(TelemetryReport* sink) {
  g_sink.store(sink, std::memory_order_release);
}

TelemetryReport* report_sink() {
  return g_sink.load(std::memory_order_acquire);
}

void report_sample(double now_s) {
  if (TelemetryReport* sink = report_sink()) sink->sample(now_s);
}

}  // namespace mummi::obs
