// Span tracer: RAII spans emitting Chrome trace-event JSON.
//
// Coordination work (maintain passes, selector picks, checkpoint saves, KV
// query phases) is timed on the wall clock and recorded as complete ('X')
// events; fault injections land as instant ('i') markers. The resulting file
// loads directly in chrome://tracing or Perfetto (ui.perfetto.dev): spans
// nest visually per thread because nesting is plain stack discipline —
// a Span opened inside another Span's lifetime is contained in its ts/dur
// window, which is all the trace viewers need.
//
// The tracer shares the telemetry master switches with the metrics registry:
// compiled out, Span construction is an inline no-op; runtime-disabled, it
// costs one relaxed atomic load. The event buffer is bounded (default 1M
// events); overflow increments dropped() instead of growing without limit.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace mummi::obs {

struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';       // 'X' complete, 'i' instant
  double ts_us = 0;    // microseconds since tracer epoch
  double dur_us = 0;   // 'X' only
  std::uint32_t tid = 0;
};

#if !defined(MUMMI_TELEMETRY_DISABLED)

class Tracer {
 public:
  static Tracer& instance();

  /// Microseconds since the tracer epoch (process start / last clear()).
  [[nodiscard]] double now_us() const;

  /// Small dense id for the calling thread (stable per thread).
  [[nodiscard]] static std::uint32_t thread_id();

  void complete(std::string name, std::string cat, double ts_us,
                double dur_us);
  void instant(std::string name, std::string cat);

  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::size_t dropped() const;

  /// Drops all recorded events and re-anchors the epoch at now.
  void clear();

  /// Maximum buffered events; further events are counted in dropped().
  void set_capacity(std::size_t max_events);

  /// The full trace as a Chrome trace-event JSON object
  /// ({"traceEvents": [...], "displayTimeUnit": "ms"}).
  [[nodiscard]] std::string chrome_json() const;

  /// Writes chrome_json() to `path`. Returns false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  /// Compact per-span-name text table: count, total/mean/max duration.
  [[nodiscard]] std::string summary() const;

 private:
  Tracer();
  void push(TraceEvent ev);

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::size_t capacity_ = 1u << 20;
  std::size_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span. Measures wall time from construction to destruction (or an
/// explicit end()) and records one complete event. Cheap when telemetry is
/// disabled: a single relaxed load, no clock read.
class Span {
 public:
  explicit Span(std::string name, std::string cat = "span")
      : name_(std::move(name)), cat_(std::move(cat)), armed_(enabled()) {
    if (armed_) start_us_ = Tracer::instance().now_us();
  }
  ~Span() { end(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the span early (idempotent).
  void end() {
    if (!armed_) return;
    armed_ = false;
    Tracer& tracer = Tracer::instance();
    tracer.complete(std::move(name_), std::move(cat_), start_us_,
                    tracer.now_us() - start_us_);
  }

  /// Wall microseconds since construction (0 once ended or when disabled).
  [[nodiscard]] double elapsed_us() const {
    return armed_ ? Tracer::instance().now_us() - start_us_ : 0.0;
  }

 private:
  std::string name_, cat_;
  double start_us_ = 0;
  bool armed_ = false;
};

#else  // MUMMI_TELEMETRY_DISABLED ------------------------------------------

class Tracer {
 public:
  static Tracer& instance() {
    static Tracer tracer;
    return tracer;
  }
  [[nodiscard]] double now_us() const { return 0; }
  [[nodiscard]] static std::uint32_t thread_id() { return 0; }
  void complete(std::string, std::string, double, double) {}
  void instant(std::string, std::string) {}
  [[nodiscard]] std::vector<TraceEvent> events() const { return {}; }
  [[nodiscard]] std::size_t event_count() const { return 0; }
  [[nodiscard]] std::size_t dropped() const { return 0; }
  void clear() {}
  void set_capacity(std::size_t) {}
  [[nodiscard]] std::string chrome_json() const {
    return "{\"traceEvents\": [], \"displayTimeUnit\": \"ms\"}\n";
  }
  bool write_chrome_trace(const std::string& path) const;
  [[nodiscard]] std::string summary() const { return ""; }
};

class Span {
 public:
  explicit Span(std::string, std::string = "span") {}
  void end() {}
  [[nodiscard]] double elapsed_us() const { return 0.0; }
};

#endif  // MUMMI_TELEMETRY_DISABLED

}  // namespace mummi::obs
