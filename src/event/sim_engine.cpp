#include "event/sim_engine.hpp"

#include "util/error.hpp"

namespace mummi::event {

EventId SimEngine::schedule_at(double t, EventFn fn) {
  MUMMI_CHECK_MSG(t >= clock_.now(), "cannot schedule events in the past");
  const EventId id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id});
  pending_fns_.emplace(id, std::move(fn));
  ++size_;
  return id;
}

EventId SimEngine::schedule_after(double dt, EventFn fn) {
  MUMMI_CHECK_MSG(dt >= 0.0, "negative delay");
  return schedule_at(clock_.now() + dt, std::move(fn));
}

bool SimEngine::cancel(EventId id) {
  // The queue entry stays behind as a tombstone; it is skipped when popped.
  const bool erased = pending_fns_.erase(id) > 0;
  if (erased) --size_;
  return erased;
}

bool SimEngine::step() {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    auto it = pending_fns_.find(top.id);
    if (it == pending_fns_.end()) {
      queue_.pop();  // cancelled tombstone
      continue;
    }
    queue_.pop();
    clock_.set(top.time);
    EventFn fn = std::move(it->second);
    pending_fns_.erase(it);
    --size_;
    fn();
    return true;
  }
  return false;
}

std::size_t SimEngine::run_until(double horizon) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    if (pending_fns_.find(top.id) == pending_fns_.end()) {
      queue_.pop();
      continue;
    }
    if (top.time > horizon) break;
    step();
    ++executed;
  }
  if (clock_.now() < horizon) clock_.set(horizon);
  return executed;
}

std::size_t SimEngine::run() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

}  // namespace mummi::event
