// Discrete-event simulation engine.
//
// The campaign-scale experiments (Table 1, Figs. 3-8) ran for months on
// Summit; we reproduce their coordination-layer behaviour by driving the real
// WorkflowManager/scheduler/datastore/ML classes under a virtual clock.
// SimEngine is the event loop: schedule callbacks at absolute virtual times,
// run until quiescent or a horizon. This mirrors the "Flux emulated
// environment" the authors themselves used for the 670x matcher result.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/clock.hpp"

namespace mummi::event {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class SimEngine {
 public:
  SimEngine() = default;

  /// The virtual clock; hand `&clock()` to components expecting util::Clock.
  [[nodiscard]] util::ManualClock& clock() { return clock_; }
  [[nodiscard]] double now() const { return clock_.now(); }

  /// Schedules `fn` at absolute virtual time `t` (must be >= now()).
  /// Events at equal times fire in scheduling order. Returns an id usable
  /// with cancel().
  EventId schedule_at(double t, EventFn fn);

  /// Schedules `fn` after a delay (>= 0) from now().
  EventId schedule_after(double dt, EventFn fn);

  /// Cancels a pending event. Returns false if it already fired or is gone.
  bool cancel(EventId id);

  /// Runs events until the queue drains or virtual time would pass
  /// `horizon`. Returns the number of events executed. Events scheduled past
  /// the horizon stay queued; the clock is left at min(last event, horizon).
  std::size_t run_until(double horizon);

  /// Runs until the queue drains completely.
  std::size_t run();

  /// Executes only the next pending event (if any); returns whether one ran.
  bool step();

  [[nodiscard]] std::size_t pending() const { return size_; }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;  // tie-break: FIFO within equal timestamps
    EventId id;
    // `fn` lives in the map so cancel() can drop it without heap surgery.
    bool operator>(const Entry& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  util::ManualClock clock_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<EventId, EventFn> pending_fns_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t size_ = 0;
};

}  // namespace mummi::event
