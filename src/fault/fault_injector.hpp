// FaultInjector: applies a FaultPlan to live components in virtual time.
//
// The injector is the seam between the deterministic fault schedule and the
// three layers the paper says fail (Sec. 4.4):
//   - scheduler: node crashes kill the node's running jobs (fail_node) and
//     later recovery returns it to service;
//   - KV cluster: shard outages and transient per-shard I/O errors exercise
//     the ResilientKvClient backoff/circuit-breaker path;
//   - FsStore: injected transient errors exercise the armored-retry path;
//   - latency spikes stretch job durations while active (the paper's GPFS
//     and fabric congestion episodes).
//
// arm() schedules every plan event on a SimEngine; apply() is also public so
// unit tests can fire events directly without an engine.
#pragma once

#include <functional>
#include <vector>

#include "datastore/fs_store.hpp"
#include "datastore/kv_cluster.hpp"
#include "event/sim_engine.hpp"
#include "fault/fault_plan.hpp"
#include "sched/executor.hpp"
#include "sched/scheduler.hpp"

namespace mummi::fault {

class FaultInjector {
 public:
  using FaultCallback = std::function<void(const FaultEvent&)>;

  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  /// Targets are optional: events for unbound targets are counted but no-op.
  void bind_scheduler(sched::Scheduler* scheduler) { scheduler_ = scheduler; }
  void bind_kv(ds::KvCluster* kv) { kv_ = kv; }
  void bind_fs(ds::FsStore* fs) { fs_ = fs; }
  /// Hang/straggler events need the simulated executor (they manipulate
  /// launches, not placed resources).
  void bind_executor(sched::SimExecutor* executor) { executor_ = executor; }

  /// Schedules every event at plan-time offset from engine.now(). The
  /// injector must outlive the engine run. Validates the plan first.
  void arm(event::SimEngine& engine);

  /// Applies one event immediately at virtual time `now`.
  void apply(const FaultEvent& ev, double now);

  /// Current job-duration multiplier (>= 1) from active latency spikes.
  [[nodiscard]] double latency_factor(double now) const;

  /// Observability: every event applied so far, in application order.
  [[nodiscard]] const std::vector<FaultEvent>& fired() const { return fired_; }
  [[nodiscard]] std::size_t jobs_killed() const { return jobs_killed_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  void on_fault(FaultCallback fn) { callbacks_.push_back(std::move(fn)); }

 private:
  struct Spike {
    double until = 0.0;
    double factor = 1.0;
  };

  FaultPlan plan_;
  sched::Scheduler* scheduler_ = nullptr;
  sched::SimExecutor* executor_ = nullptr;
  ds::KvCluster* kv_ = nullptr;
  ds::FsStore* fs_ = nullptr;
  std::vector<FaultEvent> fired_;
  std::vector<Spike> spikes_;
  std::size_t jobs_killed_ = 0;
  std::vector<FaultCallback> callbacks_;
};

}  // namespace mummi::fault
