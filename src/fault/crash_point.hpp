// Deterministic crash-point injection (the persistence analogue of
// FaultPlan).
//
// The paper's campaigns survived months of node failures and scheduled
// outages only because every component could be "restored completely after
// any such crash" (Sec. 4.4). FaultPlan covers *infrastructure* faults in
// virtual time; this registry covers the other failure axis: the
// coordination process itself dying mid-I/O. The persistence layer marks its
// boundaries with util::crash_point("name"); the registry, once installed,
// counts every hit and — when armed — kills the run at the Nth hit of a
// chosen point, either by throwing SimulatedCrash (in-process sweeps) or by
// aborting the process-under-test (external sweeps, death tests).
//
// A sweep then proves the crash-consistency contract (DESIGN.md 4i): run
// once in observe mode to learn which points fire and how often, derive a
// seeded plan of (point, nth-hit) shots, and for each shot crash + recover +
// compare against a reference. Registered point names are enumerated in
// kCrashPoints so sweeps can assert they covered every boundary.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace mummi::fault {

/// A hard, mid-I/O death of the process under test. Recovery is a fresh
/// component (Campaign, FsStore, ...) over the same on-disk state. Also
/// aliased as wm::SimulatedCrash for the campaign-level crash tests.
struct SimulatedCrash : util::Error {
  using util::Error::Error;
};

/// What an armed crash point does when it fires.
enum class CrashAction : std::uint8_t {
  kThrow,  // throw SimulatedCrash through the I/O call stack
  kAbort,  // _Exit(kAbortExitCode): the real-process analogue (death tests)
};

inline constexpr int kAbortExitCode = 86;

/// Every crash point instrumented in the persistence layer, grouped by
/// subsystem. Sweeps union their observed coverage against this list; adding
/// an instrumentation site means adding its name here (the registry test
/// cross-checks nothing is silently dropped).
inline constexpr const char* kCrashPoints[] = {
    // util::write_file (fires for every armored file write: checkpoint tmp,
    // FsStore tmp, tar sidecar index).
    "util.write_file.pre",   // before the trunc-open
    "util.write_file.mid",   // file truncated, payload not yet written (torn)
    "util.write_file.post",  // payload flushed, before returning
    // util::CheckpointFile::save
    "ckpt.save.pre_tmp",      // nothing written yet
    "ckpt.save.post_tmp",     // .tmp holds the newest complete frame
    "ckpt.save.post_bak",     // primary rotated away; .tmp is the only copy
    "ckpt.save.post_rename",  // new primary in place
    // ds::FsStore
    "fs.put.pre_tmp",       // destination untouched
    "fs.put.post_tmp",      // sibling .tmp complete, destination still old
    "fs.put.post_rename",   // destination atomically replaced
    "fs.move.pre",          // single-key rename not yet issued
    "fs.move.post",         // single-key rename done
    "fs.move_many.mid",     // before each per-key rename of a batch
    "fs.del.pre",           // before the unlink
    // ds::TarIdx (tar archive append + index flush)
    "tar.append.pre",        // archive untouched
    "tar.append.mid",        // header written, member data torn
    "tar.append.post",       // member durable, sidecar index still stale
    "tar.flush.post_trailer",  // trailer written, sidecar not yet persisted
    // campaign / supervision checkpoint path
    "wm.checkpoint.pre",           // before serializing campaign state
    "wm.checkpoint.post",          // checkpoint fully durable
    "supervise.ledger.serialize",  // quarantine ledger entering the blob
};

/// One shot of a sweep: crash at the `nth` hit (1-based) of `point`.
struct CrashShot {
  std::string point;
  std::uint64_t nth = 1;
};

class CrashPointRegistry {
 public:
  static CrashPointRegistry& instance();

  /// Installs this registry as the util::crash_point hook (idempotent).
  void install();
  /// Clears the hook; hits become no-ops again.
  void uninstall();

  /// Forgets all hit counts and disarms. Coverage starts fresh.
  void reset();

  /// Arms one shot: the `nth` (1-based) hit of `point` fires `action`, then
  /// the registry disarms itself so recovery code running in the same
  /// process does not crash again at the same boundary.
  void arm(std::string point, std::uint64_t nth = 1,
           CrashAction action = CrashAction::kThrow);
  void disarm();

  /// Called (via the util hook) at every boundary. Throws / aborts when the
  /// armed shot is due.
  void hit(const char* point);

  /// Observability for sweeps.
  [[nodiscard]] std::uint64_t hits(const std::string& point) const;
  [[nodiscard]] std::map<std::string, std::uint64_t> hit_counts() const;
  /// Point names observed since the last reset(), ascending.
  [[nodiscard]] std::vector<std::string> points() const;
  /// True once the armed shot fired (throw mode only, by construction).
  [[nodiscard]] bool fired() const;

  /// Derives a deterministic sweep plan from observed hit counts: one shot
  /// per point, with the hit index drawn from a seeded stream over
  /// [1, hits]. Same counts + seed => same plan.
  [[nodiscard]] static std::vector<CrashShot> plan(
      const std::map<std::string, std::uint64_t>& observed,
      std::uint64_t seed);

 private:
  CrashPointRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> hits_;
  bool armed_ = false;
  bool fired_ = false;
  std::string armed_point_;
  std::uint64_t armed_nth_ = 0;
  CrashAction action_ = CrashAction::kThrow;
};

/// RAII harness for tests: installs the singleton registry on construction,
/// disarms + uninstalls (and optionally resets) on destruction, so a failing
/// test cannot leak an armed crash into its neighbours.
class ScopedCrashHarness {
 public:
  ScopedCrashHarness() { CrashPointRegistry::instance().install(); }
  ~ScopedCrashHarness() {
    auto& reg = CrashPointRegistry::instance();
    reg.disarm();
    reg.uninstall();
    reg.reset();
  }
  ScopedCrashHarness(const ScopedCrashHarness&) = delete;
  ScopedCrashHarness& operator=(const ScopedCrashHarness&) = delete;

  [[nodiscard]] CrashPointRegistry& registry() {
    return CrashPointRegistry::instance();
  }
};

}  // namespace mummi::fault
