#include "fault/crash_point.hpp"

#include <cstdlib>

#include "util/crashpoint.hpp"
#include "util/rng.hpp"

namespace mummi::fault {

CrashPointRegistry& CrashPointRegistry::instance() {
  static CrashPointRegistry registry;
  return registry;
}

void CrashPointRegistry::install() {
  util::set_crash_point_hook(
      [](const char* point) { CrashPointRegistry::instance().hit(point); });
}

void CrashPointRegistry::uninstall() { util::set_crash_point_hook({}); }

void CrashPointRegistry::reset() {
  std::lock_guard lock(mutex_);
  hits_.clear();
  armed_ = false;
  fired_ = false;
  armed_point_.clear();
  armed_nth_ = 0;
}

void CrashPointRegistry::arm(std::string point, std::uint64_t nth,
                             CrashAction action) {
  MUMMI_CHECK_MSG(nth >= 1, "crash shot hit index is 1-based");
  std::lock_guard lock(mutex_);
  armed_ = true;
  fired_ = false;
  armed_point_ = std::move(point);
  armed_nth_ = nth;
  action_ = action;
}

void CrashPointRegistry::disarm() {
  std::lock_guard lock(mutex_);
  armed_ = false;
}

void CrashPointRegistry::hit(const char* point) {
  bool fire = false;
  {
    std::lock_guard lock(mutex_);
    const std::uint64_t count = ++hits_[point];
    if (armed_ && armed_point_ == point && count == armed_nth_) {
      // Fire exactly once: recovery code re-executing this boundary in the
      // same process must sail through.
      armed_ = false;
      fired_ = true;
      fire = true;
    }
  }
  if (!fire) return;
  if (action_ == CrashAction::kAbort) std::_Exit(kAbortExitCode);
  throw SimulatedCrash(std::string("crash point fired: ") + point);
}

std::uint64_t CrashPointRegistry::hits(const std::string& point) const {
  std::lock_guard lock(mutex_);
  const auto it = hits_.find(point);
  return it == hits_.end() ? 0 : it->second;
}

std::map<std::string, std::uint64_t> CrashPointRegistry::hit_counts() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::vector<std::string> CrashPointRegistry::points() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(hits_.size());
  for (const auto& [name, _] : hits_) out.push_back(name);
  return out;  // std::map iteration is already ascending
}

bool CrashPointRegistry::fired() const {
  std::lock_guard lock(mutex_);
  return fired_;
}

std::vector<CrashShot> CrashPointRegistry::plan(
    const std::map<std::string, std::uint64_t>& observed, std::uint64_t seed) {
  std::vector<CrashShot> shots;
  shots.reserve(observed.size());
  // One seeded stream over the sorted point list: inserting a new point
  // shifts later draws but the plan stays a pure function of (counts, seed).
  util::Rng rng(seed ^ 0xc7a5'9b0d'11e8'55fdULL);
  for (const auto& [point, count] : observed) {
    if (count == 0) continue;
    CrashShot shot;
    shot.point = point;
    shot.nth = 1 + rng.uniform_index(static_cast<std::size_t>(count));
    shots.push_back(std::move(shot));
  }
  return shots;
}

}  // namespace mummi::fault
