#include "fault/fault_injector.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace mummi::fault {

void FaultInjector::arm(event::SimEngine& engine) {
  plan_.validate();
  for (const FaultEvent& ev : plan_.events()) {
    engine.schedule_after(ev.time, [this, ev, &engine] {
      apply(ev, engine.now());
    });
  }
}

void FaultInjector::apply(const FaultEvent& ev, double now) {
  obs::counter("fault.injected").inc();
  obs::counter(std::string("fault.") + to_string(ev.kind)).inc();
  obs::Tracer::instance().instant(std::string("fault.") + to_string(ev.kind),
                                  "fault");
  switch (ev.kind) {
    case FaultKind::kNodeCrash:
      if (scheduler_ && ev.target >= 0 &&
          ev.target < scheduler_->graph().n_nodes()) {
        const auto killed = scheduler_->fail_node(ev.target);
        jobs_killed_ += killed.size();
        obs::counter("fault.jobs_killed").inc(killed.size());
        util::log_debug("fault: node ", ev.target, " crashed, killed ",
                        killed.size(), " jobs");
      }
      break;
    case FaultKind::kNodeRecover:
      if (scheduler_ && ev.target >= 0 &&
          ev.target < scheduler_->graph().n_nodes()) {
        scheduler_->recover_node(ev.target);
        obs::counter("fault.recoveries").inc();
      }
      break;
    case FaultKind::kShardDown:
      if (kv_ && ev.target >= 0 &&
          ev.target < static_cast<int>(kv_->n_servers()))
        kv_->fail_server(static_cast<std::size_t>(ev.target),
                         /*wipe=*/ev.count != 0);
      break;
    case FaultKind::kShardUp:
      if (kv_ && ev.target >= 0 &&
          ev.target < static_cast<int>(kv_->n_servers())) {
        kv_->recover_server(static_cast<std::size_t>(ev.target));
        obs::counter("fault.recoveries").inc();
      }
      break;
    case FaultKind::kStoreIoError:
      if (fs_) fs_->inject_failures(ev.count);
      break;
    case FaultKind::kKvIoError:
      if (kv_ && ev.target >= 0 &&
          ev.target < static_cast<int>(kv_->n_servers()))
        kv_->inject_transient_errors(static_cast<std::size_t>(ev.target),
                                     ev.count);
      break;
    case FaultKind::kLatencySpike:
      spikes_.push_back({now + ev.duration, ev.magnitude});
      break;
    case FaultKind::kJobHang:
      if (executor_) {
        executor_->inject_hangs(ev.count);
        util::log_debug("fault: next ", ev.count, " launches will hang");
      }
      break;
    case FaultKind::kStragglerJob:
      if (executor_) {
        executor_->inject_stragglers(ev.count, ev.magnitude);
        util::log_debug("fault: next ", ev.count, " launches straggle x",
                        ev.magnitude);
      }
      break;
  }
  fired_.push_back(ev);
  for (const auto& fn : callbacks_) fn(ev);
}

double FaultInjector::latency_factor(double now) const {
  double factor = 1.0;
  for (const Spike& spike : spikes_)
    if (now < spike.until) factor *= spike.factor;
  return factor < 1.0 ? 1.0 : factor;
}

}  // namespace mummi::fault
