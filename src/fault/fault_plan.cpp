#include "fault/fault_plan.hpp"

#include <algorithm>
#include <functional>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace mummi::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:    return "node_crash";
    case FaultKind::kNodeRecover:  return "node_recover";
    case FaultKind::kShardDown:    return "shard_down";
    case FaultKind::kShardUp:      return "shard_up";
    case FaultKind::kStoreIoError: return "store_io_error";
    case FaultKind::kKvIoError:    return "kv_io_error";
    case FaultKind::kLatencySpike: return "latency_spike";
    case FaultKind::kJobHang:      return "job_hang";
    case FaultKind::kStragglerJob: return "straggler_job";
  }
  return "?";
}

std::string FaultEvent::describe() const {
  return util::format("t=%.1fs %s target=%d dur=%.1fs x%.1f n=%d", time,
                      to_string(kind), target, duration, magnitude, count);
}

FaultPlan& FaultPlan::push(FaultEvent ev) {
  MUMMI_CHECK_MSG(ev.time >= 0.0, "fault time must be non-negative");
  events_.push_back(ev);
  sort_events();
  return *this;
}

void FaultPlan::sort_events() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
}

FaultPlan& FaultPlan::node_crash(double t, int node, double down_for_s) {
  FaultEvent ev;
  ev.time = t;
  ev.kind = FaultKind::kNodeCrash;
  ev.target = node;
  push(ev);
  if (down_for_s > 0.0) {
    FaultEvent up;
    up.time = t + down_for_s;
    up.kind = FaultKind::kNodeRecover;
    up.target = node;
    push(up);
  }
  return *this;
}

FaultPlan& FaultPlan::shard_outage(double t, int shard, double down_for_s,
                                   bool wipe) {
  FaultEvent ev;
  ev.time = t;
  ev.kind = FaultKind::kShardDown;
  ev.target = shard;
  ev.count = wipe ? 1 : 0;
  push(ev);
  if (down_for_s > 0.0) {
    FaultEvent up;
    up.time = t + down_for_s;
    up.kind = FaultKind::kShardUp;
    up.target = shard;
    push(up);
  }
  return *this;
}

FaultPlan& FaultPlan::store_errors(double t, int burst) {
  FaultEvent ev;
  ev.time = t;
  ev.kind = FaultKind::kStoreIoError;
  ev.count = burst;
  return push(ev);
}

FaultPlan& FaultPlan::kv_errors(double t, int shard, int burst) {
  FaultEvent ev;
  ev.time = t;
  ev.kind = FaultKind::kKvIoError;
  ev.target = shard;
  ev.count = burst;
  return push(ev);
}

FaultPlan& FaultPlan::latency_spike(double t, double factor,
                                    double duration_s) {
  FaultEvent ev;
  ev.time = t;
  ev.kind = FaultKind::kLatencySpike;
  ev.magnitude = factor;
  ev.duration = duration_s;
  return push(ev);
}

FaultPlan& FaultPlan::job_hang(double t, int burst) {
  FaultEvent ev;
  ev.time = t;
  ev.kind = FaultKind::kJobHang;
  ev.count = burst;
  return push(ev);
}

FaultPlan& FaultPlan::straggler(double t, int burst, double factor) {
  FaultEvent ev;
  ev.time = t;
  ev.kind = FaultKind::kStragglerJob;
  ev.count = burst;
  ev.magnitude = factor;
  return push(ev);
}

void FaultSpec::validate() const {
  auto check_rate = [](double r, const char* name) {
    MUMMI_CHECK_MSG(r >= 0.0, std::string("negative fault rate: ") + name);
  };
  check_rate(node_crash_rate_per_h, "node_crash_rate_per_h");
  check_rate(shard_outage_rate_per_h, "shard_outage_rate_per_h");
  check_rate(store_error_rate_per_h, "store_error_rate_per_h");
  check_rate(kv_error_rate_per_h, "kv_error_rate_per_h");
  check_rate(latency_spike_rate_per_h, "latency_spike_rate_per_h");
  check_rate(job_hang_rate_per_h, "job_hang_rate_per_h");
  check_rate(straggler_rate_per_h, "straggler_rate_per_h");
  MUMMI_CHECK_MSG(node_down_mean_s >= 0.0, "negative node_down_mean_s");
  MUMMI_CHECK_MSG(shard_down_mean_s >= 0.0, "negative shard_down_mean_s");
  MUMMI_CHECK_MSG(latency_spike_mean_s >= 0.0, "negative latency_spike_mean_s");
  MUMMI_CHECK_MSG(store_error_burst >= 0, "negative store_error_burst");
  MUMMI_CHECK_MSG(kv_error_burst >= 0, "negative kv_error_burst");
  MUMMI_CHECK_MSG(hang_burst >= 0, "negative hang_burst");
  MUMMI_CHECK_MSG(straggler_burst >= 0, "negative straggler_burst");
  MUMMI_CHECK_MSG(latency_factor >= 1.0, "latency_factor must be >= 1");
  MUMMI_CHECK_MSG(straggler_factor >= 1.0, "straggler_factor must be >= 1");
}

void FaultPlan::validate() const {
  double prev = 0.0;
  for (const FaultEvent& ev : events_) {
    MUMMI_CHECK_MSG(ev.time >= 0.0,
                    "fault event with negative time: " + ev.describe());
    MUMMI_CHECK_MSG(ev.time >= prev,
                    "fault events not time-sorted at: " + ev.describe());
    prev = ev.time;
    MUMMI_CHECK_MSG(ev.duration >= 0.0,
                    "fault event with negative duration: " + ev.describe());
    MUMMI_CHECK_MSG(ev.count >= 0,
                    "fault event with negative count: " + ev.describe());
    if (ev.kind == FaultKind::kLatencySpike ||
        ev.kind == FaultKind::kStragglerJob)
      MUMMI_CHECK_MSG(ev.magnitude >= 1.0,
                      "amplifying fault with magnitude < 1: " + ev.describe());
  }
}

FaultPlan FaultPlan::generate(const FaultSpec& spec, double horizon_s,
                              int n_nodes, int n_shards) {
  MUMMI_CHECK_MSG(horizon_s > 0.0, "fault horizon must be positive");
  FaultPlan plan;
  util::Rng rng(spec.seed);

  // Each class draws its own Poisson arrival stream from a split rng so
  // toggling one class never perturbs another's schedule.
  auto arrivals = [&](double rate_per_h, util::Rng stream,
                      const std::function<void(double, util::Rng&)>& emit) {
    if (rate_per_h <= 0.0) return;
    const double rate_per_s = rate_per_h / 3600.0;
    double t = stream.exponential(rate_per_s);
    while (t < horizon_s) {
      emit(t, stream);
      t += stream.exponential(rate_per_s);
    }
  };

  arrivals(spec.node_crash_rate_per_h, rng.split(),
           [&](double t, util::Rng& stream) {
             if (n_nodes <= 0) return;
             const int node =
                 static_cast<int>(stream.uniform_index(
                     static_cast<std::uint64_t>(n_nodes)));
             plan.node_crash(t, node,
                             stream.exponential(1.0 / spec.node_down_mean_s));
           });
  arrivals(spec.shard_outage_rate_per_h, rng.split(),
           [&](double t, util::Rng& stream) {
             if (n_shards <= 0) return;
             const int shard =
                 static_cast<int>(stream.uniform_index(
                     static_cast<std::uint64_t>(n_shards)));
             plan.shard_outage(t, shard,
                               stream.exponential(1.0 / spec.shard_down_mean_s),
                               spec.shard_wipe);
           });
  arrivals(spec.store_error_rate_per_h, rng.split(),
           [&](double t, util::Rng&) {
             plan.store_errors(t, spec.store_error_burst);
           });
  arrivals(spec.kv_error_rate_per_h, rng.split(),
           [&](double t, util::Rng& stream) {
             if (n_shards <= 0) return;
             const int shard =
                 static_cast<int>(stream.uniform_index(
                     static_cast<std::uint64_t>(n_shards)));
             plan.kv_errors(t, shard, spec.kv_error_burst);
           });
  arrivals(spec.latency_spike_rate_per_h, rng.split(),
           [&](double t, util::Rng& stream) {
             plan.latency_spike(
                 t, spec.latency_factor,
                 stream.exponential(1.0 / spec.latency_spike_mean_s));
           });
  // The silent-failure classes split AFTER the originals: enabling hangs or
  // stragglers must not reshuffle the crash/outage/spike schedules a seed
  // already produced (same independence the streams test pins down).
  arrivals(spec.job_hang_rate_per_h, rng.split(),
           [&](double t, util::Rng&) { plan.job_hang(t, spec.hang_burst); });
  arrivals(spec.straggler_rate_per_h, rng.split(),
           [&](double t, util::Rng&) {
             plan.straggler(t, spec.straggler_burst, spec.straggler_factor);
           });
  return plan;
}

}  // namespace mummi::fault
