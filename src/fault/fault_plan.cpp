#include "fault/fault_plan.hpp"

#include <algorithm>
#include <functional>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace mummi::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:    return "node_crash";
    case FaultKind::kNodeRecover:  return "node_recover";
    case FaultKind::kShardDown:    return "shard_down";
    case FaultKind::kShardUp:      return "shard_up";
    case FaultKind::kStoreIoError: return "store_io_error";
    case FaultKind::kKvIoError:    return "kv_io_error";
    case FaultKind::kLatencySpike: return "latency_spike";
  }
  return "?";
}

std::string FaultEvent::describe() const {
  return util::format("t=%.1fs %s target=%d dur=%.1fs x%.1f n=%d", time,
                      to_string(kind), target, duration, magnitude, count);
}

FaultPlan& FaultPlan::push(FaultEvent ev) {
  MUMMI_CHECK_MSG(ev.time >= 0.0, "fault time must be non-negative");
  events_.push_back(ev);
  sort_events();
  return *this;
}

void FaultPlan::sort_events() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
}

FaultPlan& FaultPlan::node_crash(double t, int node, double down_for_s) {
  FaultEvent ev;
  ev.time = t;
  ev.kind = FaultKind::kNodeCrash;
  ev.target = node;
  push(ev);
  if (down_for_s > 0.0) {
    FaultEvent up;
    up.time = t + down_for_s;
    up.kind = FaultKind::kNodeRecover;
    up.target = node;
    push(up);
  }
  return *this;
}

FaultPlan& FaultPlan::shard_outage(double t, int shard, double down_for_s,
                                   bool wipe) {
  FaultEvent ev;
  ev.time = t;
  ev.kind = FaultKind::kShardDown;
  ev.target = shard;
  ev.count = wipe ? 1 : 0;
  push(ev);
  if (down_for_s > 0.0) {
    FaultEvent up;
    up.time = t + down_for_s;
    up.kind = FaultKind::kShardUp;
    up.target = shard;
    push(up);
  }
  return *this;
}

FaultPlan& FaultPlan::store_errors(double t, int burst) {
  FaultEvent ev;
  ev.time = t;
  ev.kind = FaultKind::kStoreIoError;
  ev.count = burst;
  return push(ev);
}

FaultPlan& FaultPlan::kv_errors(double t, int shard, int burst) {
  FaultEvent ev;
  ev.time = t;
  ev.kind = FaultKind::kKvIoError;
  ev.target = shard;
  ev.count = burst;
  return push(ev);
}

FaultPlan& FaultPlan::latency_spike(double t, double factor,
                                    double duration_s) {
  FaultEvent ev;
  ev.time = t;
  ev.kind = FaultKind::kLatencySpike;
  ev.magnitude = factor;
  ev.duration = duration_s;
  return push(ev);
}

FaultPlan FaultPlan::generate(const FaultSpec& spec, double horizon_s,
                              int n_nodes, int n_shards) {
  MUMMI_CHECK_MSG(horizon_s > 0.0, "fault horizon must be positive");
  FaultPlan plan;
  util::Rng rng(spec.seed);

  // Each class draws its own Poisson arrival stream from a split rng so
  // toggling one class never perturbs another's schedule.
  auto arrivals = [&](double rate_per_h, util::Rng stream,
                      const std::function<void(double, util::Rng&)>& emit) {
    if (rate_per_h <= 0.0) return;
    const double rate_per_s = rate_per_h / 3600.0;
    double t = stream.exponential(rate_per_s);
    while (t < horizon_s) {
      emit(t, stream);
      t += stream.exponential(rate_per_s);
    }
  };

  arrivals(spec.node_crash_rate_per_h, rng.split(),
           [&](double t, util::Rng& stream) {
             if (n_nodes <= 0) return;
             const int node =
                 static_cast<int>(stream.uniform_index(
                     static_cast<std::uint64_t>(n_nodes)));
             plan.node_crash(t, node,
                             stream.exponential(1.0 / spec.node_down_mean_s));
           });
  arrivals(spec.shard_outage_rate_per_h, rng.split(),
           [&](double t, util::Rng& stream) {
             if (n_shards <= 0) return;
             const int shard =
                 static_cast<int>(stream.uniform_index(
                     static_cast<std::uint64_t>(n_shards)));
             plan.shard_outage(t, shard,
                               stream.exponential(1.0 / spec.shard_down_mean_s),
                               spec.shard_wipe);
           });
  arrivals(spec.store_error_rate_per_h, rng.split(),
           [&](double t, util::Rng&) {
             plan.store_errors(t, spec.store_error_burst);
           });
  arrivals(spec.kv_error_rate_per_h, rng.split(),
           [&](double t, util::Rng& stream) {
             if (n_shards <= 0) return;
             const int shard =
                 static_cast<int>(stream.uniform_index(
                     static_cast<std::uint64_t>(n_shards)));
             plan.kv_errors(t, shard, spec.kv_error_burst);
           });
  arrivals(spec.latency_spike_rate_per_h, rng.split(),
           [&](double t, util::Rng& stream) {
             plan.latency_spike(
                 t, spec.latency_factor,
                 stream.exponential(1.0 / spec.latency_spike_mean_s));
           });
  return plan;
}

}  // namespace mummi::fault
