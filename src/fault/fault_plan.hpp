// Deterministic fault plans (paper Sec. 4.4: "everything fails at scale").
//
// The paper's campaign survived node losses, Redis server deaths, GPFS
// hiccups and whole-workflow restarts. To *test* those paths reproducibly we
// schedule typed faults in virtual time: a FaultPlan is an explicit, sorted
// list of fault events, either built by hand (unit tests) or generated from
// Poisson rates with a seeded Rng (campaign sweeps). The same seed and spec
// always yield the same plan, so fault campaigns replay bit-for-bit — the
// reproducible failure testing the Workflows Community Roadmap calls for.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace mummi::fault {

enum class FaultKind : std::uint8_t {
  kNodeCrash,     // kill running jobs on `target` node; node stays down
  kNodeRecover,   // node `target` serves again
  kShardDown,     // KV shard `target` unreachable (count!=0 wipes its data)
  kShardUp,       // KV shard `target` back up
  kStoreIoError,  // next `count` FsStore operations fail transiently
  kKvIoError,     // next `count` ops on KV shard `target` fail transiently
  kLatencySpike,  // job durations x `magnitude` for `duration` seconds
  kJobHang,       // next `count` launches never invoke their completion
  kStragglerJob,  // next `count` launches run `magnitude` x their duration
};

[[nodiscard]] const char* to_string(FaultKind kind);

struct FaultEvent {
  double time = 0.0;      // virtual seconds from plan start
  FaultKind kind = FaultKind::kNodeCrash;
  int target = -1;        // node or shard index; unused otherwise
  double duration = 0.0;  // latency-spike length (seconds)
  double magnitude = 1.0; // latency-spike slowdown factor
  int count = 0;          // transient-error burst size / shard wipe flag

  [[nodiscard]] std::string describe() const;
};

/// Mean fault rates for plan generation. All rates are events per hour of
/// virtual time across the whole machine/cluster; 0 disables a fault class.
struct FaultSpec {
  double node_crash_rate_per_h = 0.0;
  double node_down_mean_s = 600.0;     // time until the node recovers

  double shard_outage_rate_per_h = 0.0;
  double shard_down_mean_s = 120.0;
  bool shard_wipe = false;             // outage loses the shard's data

  double store_error_rate_per_h = 0.0;
  int store_error_burst = 2;           // consecutive failing attempts

  double kv_error_rate_per_h = 0.0;
  int kv_error_burst = 2;

  double latency_spike_rate_per_h = 0.0;
  double latency_factor = 3.0;
  double latency_spike_mean_s = 300.0;

  double job_hang_rate_per_h = 0.0;    // silent hangs (Sec. 4.4)
  int hang_burst = 1;                  // launches hung per event

  double straggler_rate_per_h = 0.0;
  int straggler_burst = 1;             // launches slowed per event
  double straggler_factor = 4.0;       // duration multiplier

  std::uint64_t seed = 42;

  [[nodiscard]] bool empty() const {
    return node_crash_rate_per_h <= 0 && shard_outage_rate_per_h <= 0 &&
           store_error_rate_per_h <= 0 && kv_error_rate_per_h <= 0 &&
           latency_spike_rate_per_h <= 0 && job_hang_rate_per_h <= 0 &&
           straggler_rate_per_h <= 0;
  }

  /// Throws util::Error on nonsense configuration: negative rates, durations,
  /// bursts, or amplification factors below 1.
  void validate() const;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  // --- builder API (fluent; times are absolute virtual seconds) -----------
  FaultPlan& node_crash(double t, int node, double down_for_s = 0.0);
  FaultPlan& shard_outage(double t, int shard, double down_for_s,
                          bool wipe = false);
  FaultPlan& store_errors(double t, int burst);
  FaultPlan& kv_errors(double t, int shard, int burst);
  FaultPlan& latency_spike(double t, double factor, double duration_s);
  FaultPlan& job_hang(double t, int burst = 1);
  FaultPlan& straggler(double t, int burst = 1, double factor = 4.0);

  /// Escape hatch for custom events (tests); same sort-on-insert as the
  /// named builders.
  FaultPlan& add(FaultEvent ev) { return push(ev); }

  /// Draws a plan over [0, horizon_s) from Poisson arrivals per fault class.
  /// Deterministic for a given (spec, horizon, n_nodes, n_shards).
  [[nodiscard]] static FaultPlan generate(const FaultSpec& spec,
                                          double horizon_s, int n_nodes,
                                          int n_shards);

  /// Events sorted by time (stable for equal times).
  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Throws util::Error if any event carries a negative time/duration/count,
  /// a magnitude below 1 where it amplifies, or if the list is not
  /// time-sorted (push() maintains sortedness; validate() guards plans built
  /// or mutated by other means).
  void validate() const;

 private:
  FaultPlan& push(FaultEvent ev);
  void sort_events();

  std::vector<FaultEvent> events_;
};

}  // namespace mummi::fault
