// GridSim2D: the continuum (macro) scale.
//
// Paper Sec. 4.1 item 1: "a continuum description of lipids that uses DDFT
// for representing lipid dynamics in terms of their density fields. Proteins
// (positions and configurational states) are represented as particles that
// interact with each other and with the lipids. This model comprises a
// 1 um x 1 um bilayer ... 2400x2400 grid, with 8 lipid types in the inner
// and 6 types in the outer leaflet."
//
// Dynamics implemented:
//   - lipids: dynamic density functional theory,
//       drho_s/dt = M div( grad rho_s + rho_s grad mu_ex,s )
//     with excess chemical potential
//       mu_ex,s = sum_t chi_st rho_t - kappa lap(rho_s) + sum_p w(state_p, s)
//                 G(x - x_p),
//     explicit finite differences on the periodic grid;
//   - proteins: overdamped Brownian particles on the free-energy landscape
//     (lipid coupling + pairwise soft repulsion), with Markov jumps between
//     configurational states.
//
// The engine is a deterministic parallel kernel engine in the mold of the MD
// force engine (DESIGN.md 4h/4j): stencils run over row blocks whose
// boundaries depend on the grid size only, protein dynamics runs over a
// periodic cell list with per-protein counter-based RNG streams, all scratch
// persists across steps (zero-allocation steady state), and serialized
// snapshots are bit-identical at any thread count. A test-only legacy kernel
// path (ContinuumConfig.legacy_kernels) keeps the pre-refactor loop
// structure as an executable reference.
//
// The CG-to-continuum feedback updates the protein-lipid coupling weights
// w(state, species) on the fly, exactly where the paper's RDF feedback lands.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "continuum/grid2d.hpp"
#include "continuum/parallel_kernels.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace mummi::obs {
class Counter;
class HistogramMetric;
}  // namespace mummi::obs

namespace mummi::cont {

/// Protein configurational states tracked by the macro model. RAS-only
/// particles and RAS-RAF complexes, each in two conformational states —
/// giving the Patch Selector its per-state queues (paper Task 2 uses five
/// in-memory queues for "different protein configurations").
enum class ProteinState : int {
  kRasA = 0,
  kRasB = 1,
  kRasRafA = 2,
  kRasRafB = 3,
};
constexpr int kNumProteinStates = 4;

struct Protein {
  double x = 0, y = 0;  // nm
  ProteinState state = ProteinState::kRasA;
};

/// Pool the engine threads its kernels through when ContinuumConfig.pool is
/// null: the shared util::global_pool() when MUMMI_POOL_SIZE requests more
/// than one worker, nullptr (serial) otherwise — the same resolution as
/// md::default_md_pool(). Output is bit-identical either way.
util::ThreadPool* default_continuum_pool();

struct ContinuumConfig {
  int grid = 192;            // cells per side (paper: 2400)
  double extent = 1000.0;    // box edge, nm (1 um)
  int inner_species = 8;     // lipid types, inner leaflet
  int outer_species = 6;     // lipid types, outer leaflet
  double dt = 0.05;          // us per step
  double mobility = 20.0;    // nm^2 / us
  double kappa = 25.0;       // gradient-penalty stiffness (nm^2 energy units)
  double chi_scale = 0.4;    // lipid-lipid interaction magnitude
  double protein_diffusion = 1.0;  // nm^2 / us
  double protein_radius = 10.0;    // Gaussian coupling footprint, nm
  double state_switch_rate = 2e-3;  // 1/us Markov jumps between states
  int n_proteins = 30;
  std::uint64_t seed = 42;
  util::ThreadPool* pool = nullptr;  // null -> default_continuum_pool()
  /// Test-only: run the pre-refactor serial reference kernels (per-species
  /// loops, all-pairs repulsion, per-step allocations). Bit-identical to the
  /// block-parallel engine by construction — benches and tests assert it.
  bool legacy_kernels = false;
};

/// One saved continuum frame — the unit the Patch Creator consumes.
struct Snapshot {
  double time_us = 0;
  int grid = 0;
  double extent = 0;
  std::vector<Grid2d> fields;  // inner species then outer species
  std::vector<Protein> proteins;

  [[nodiscard]] util::Bytes serialize() const;
  /// Throws util::FormatError on malformed bytes (truncation, field size
  /// mismatch, out-of-range protein state, non-positive grid).
  static Snapshot deserialize(const util::Bytes& bytes);
};

class GridSim2D {
 public:
  explicit GridSim2D(ContinuumConfig config);

  /// Advances by `n` DDFT steps.
  void step(int n = 1);

  [[nodiscard]] double time_us() const { return time_us_; }
  [[nodiscard]] std::uint64_t step_count() const { return step_count_; }
  [[nodiscard]] const ContinuumConfig& config() const { return config_; }
  [[nodiscard]] int n_species() const {
    return config_.inner_species + config_.outer_species;
  }
  [[nodiscard]] const Grid2d& field(int species) const { return fields_[species]; }
  [[nodiscard]] const std::vector<Protein>& proteins() const { return proteins_; }
  [[nodiscard]] util::ThreadPool* pool() const { return pool_; }

  /// Captures the current state for the workflow to parse into patches.
  [[nodiscard]] Snapshot snapshot() const;

  /// Feedback entry point: the aggregated CG RDFs arrive as updated
  /// protein-lipid coupling weights, read "on the fly" by the running model.
  void set_protein_lipid_coupling(ProteinState state, int species,
                                  double weight);
  [[nodiscard]] double protein_lipid_coupling(ProteinState state,
                                              int species) const;

  /// Checkpoint/restore of the full model state. Frames are versioned: v2
  /// carries the step counter and RNG stream so a resumed campaign replays
  /// bit-identically; legacy v1 frames (no version header) remain readable.
  [[nodiscard]] util::Bytes serialize() const;
  void restore(const util::Bytes& bytes);

  /// Total lipid mass per species — conserved by the DDFT flux form; tests
  /// assert this invariant.
  [[nodiscard]] std::vector<double> species_mass() const;

 private:
  void step_lipids();
  void step_proteins();
  void step_lipids_legacy();
  void step_proteins_legacy();
  /// Stamps the per-state Gaussian protein footprints into footprint_
  /// (block-parallel scatter, ascending-block fold; shared by both paths).
  void build_footprints(util::ThreadPool* pool);
  [[nodiscard]] double coupling_field_gradient(const Protein& p, int axis) const;
  /// Brownian displacement + Markov state jump for protein `a` given its
  /// repulsion+coupling force, drawing from the protein's per-step stream.
  void advance_protein(std::size_t a, double fx, double fy);

  ContinuumConfig config_;
  double h_;  // grid spacing, nm
  util::ThreadPool* pool_ = nullptr;
  std::vector<Grid2d> fields_;
  std::vector<Grid2d> mu_;      // scratch: excess chemical potential
  std::vector<Grid2d> next_;    // scratch: updated densities (swapped in)
  std::vector<Grid2d> footprint_;  // scratch: per-state protein footprints
  detail::FootprintScratch fp_scratch_;
  detail::ProteinCellBins bins_;
  std::vector<std::vector<std::size_t>> cand_scratch_;  // per-block neighbors
  std::vector<std::uint64_t> pair_counts_;              // per-block partials
  std::vector<Protein> proteins_;
  std::vector<double> coupling_;  // [state][species] weights
  std::vector<double> chi_;       // [s][t] interaction matrix
  util::Rng rng_;                 // init-time stream (fields, placement)
  double time_us_ = 0;
  std::uint64_t step_count_ = 0;

  // cont.step.* telemetry handles (stable for the process lifetime).
  obs::Counter* c_steps_ = nullptr;
  obs::Counter* c_cells_ = nullptr;
  obs::Counter* c_pairs_ = nullptr;
  obs::Counter* c_rebuilds_ = nullptr;
  obs::HistogramMetric* h_pairs_ = nullptr;
};

}  // namespace mummi::cont
