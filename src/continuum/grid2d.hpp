// Periodic 2-D scalar fields for the continuum (DDFT) model.
#pragma once

#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace mummi::cont {

/// Square periodic grid of doubles with wrap-around indexing and the
/// difference operators the DDFT solver needs.
class Grid2d {
 public:
  Grid2d() = default;
  Grid2d(int n, double fill = 0.0)
      : n_(n), data_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                     fill) {
    MUMMI_CHECK_MSG(n > 0, "grid size must be positive");
  }

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] double& at(int i, int j) { return data_[index(i, j)]; }
  [[nodiscard]] double at(int i, int j) const { return data_[index(i, j)]; }

  /// Periodic access (any integer i, j).
  [[nodiscard]] double atp(int i, int j) const {
    return data_[index(wrap(i), wrap(j))];
  }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }
  [[nodiscard]] std::vector<double>& data() { return data_; }

  [[nodiscard]] int wrap(int i) const { return ((i % n_) + n_) % n_; }

  /// Five-point Laplacian at (i, j) with grid spacing h.
  [[nodiscard]] double laplacian(int i, int j, double h) const {
    return (atp(i + 1, j) + atp(i - 1, j) + atp(i, j + 1) + atp(i, j - 1) -
            4.0 * atp(i, j)) /
           (h * h);
  }

  [[nodiscard]] double sum() const {
    double s = 0;
    for (double v : data_) s += v;
    return s;
  }

  /// Bilinear interpolation at fractional grid coordinates (periodic).
  [[nodiscard]] double interpolate(double gi, double gj) const;

 private:
  [[nodiscard]] std::size_t index(int i, int j) const {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(j);
  }

  int n_ = 0;
  std::vector<double> data_;
};

}  // namespace mummi::cont
