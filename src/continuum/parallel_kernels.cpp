#include "continuum/parallel_kernels.hpp"

#include <algorithm>
#include <cmath>

#include "continuum/gridsim2d.hpp"

namespace mummi::cont::detail {

void FootprintScratch::reset(std::size_t nblocks, std::size_t nstates,
                             std::size_t cells) {
  const std::size_t span = nstates * cells;
  if (buf_.size() < nblocks) buf_.resize(nblocks);
  for (std::size_t b = 0; b < nblocks; ++b) {
    // Buffers left behind by reduce_and_clear are already zero; only a shape
    // change (or an exception between reset and reduce) forces a re-clear.
    if (buf_[b].size() != span || dirty_) buf_[b].assign(span, 0.0);
  }
  nblocks_ = nblocks;
  nstates_ = nstates;
  cells_ = cells;
  dirty_ = true;
}

void FootprintScratch::reduce_and_clear(std::vector<Grid2d>& out,
                                        util::ThreadPool* pool) {
  // Cell-block boundaries are f(cells) only; the fold over blocks is in
  // ascending order, so the sum is independent of the worker count.
  const std::size_t cell_block = std::max<std::size_t>(4096, (cells_ + 15) / 16);
  util::for_blocks(
      pool, cells_, cell_block, [this, &out](std::size_t lo, std::size_t hi) {
        for (std::size_t st = 0; st < nstates_; ++st) {
          double* o = out[st].data().data();
          for (std::size_t c = lo; c < hi; ++c) o[c] = 0.0;
          for (std::size_t b = 0; b < nblocks_; ++b) {
            double* f = buf_[b].data() + st * cells_;
            for (std::size_t c = lo; c < hi; ++c) {
              o[c] += f[c];
              f[c] = 0.0;
            }
          }
        }
      });
  dirty_ = false;
}

void ProteinCellBins::build(const std::vector<Protein>& proteins, double extent,
                            double range) {
  const std::size_t p = proteins.size();
  ++rebuilds_;
  px_.resize(p);
  py_.resize(p);
  for (std::size_t i = 0; i < p; ++i) {
    px_[i] = proteins[i].x;
    py_[i] = proteins[i].y;
  }

  ncell_ = 0;
  if (range > 0 && extent > 0) {
    // Cell edge >= range so the 3x3 stencil covers every in-range pair; cap
    // the grid near sqrt(P) cells per side — fewer proteins than cells only
    // wastes memory, and a larger cell never misses a pair.
    const double raw = std::floor(extent / range);
    const int cap =
        std::max(3, static_cast<int>(std::sqrt(static_cast<double>(p))) + 2);
    ncell_ = static_cast<int>(std::min<double>(raw, cap));
  }
  if (ncell_ < 3) {
    ncell_ = 0;  // all-pairs fallback
    return;
  }
  cell_w_ = extent / ncell_;

  const auto ncells = static_cast<std::size_t>(ncell_) * ncell_;
  cx_.resize(p);
  cy_.resize(p);
  cell_start_.assign(ncells + 1, 0);
  auto bin = [this](double v) {
    auto c = static_cast<int>(v / cell_w_);
    if (!(c >= 0)) c = 0;  // also catches NaN (comparison is false)
    if (c >= ncell_) c = ncell_ - 1;
    return c;
  };
  for (std::size_t i = 0; i < p; ++i) {
    cx_[i] = bin(px_[i]);
    cy_[i] = bin(py_[i]);
    ++cell_start_[static_cast<std::size_t>(cx_[i]) * ncell_ + cy_[i] + 1];
  }
  for (std::size_t c = 0; c < ncells; ++c) cell_start_[c + 1] += cell_start_[c];
  items_.resize(p);
  cursor_.assign(ncells, 0);
  // Ascending protein ids per cell: the stable two-pass fill.
  for (std::size_t i = 0; i < p; ++i) {
    const std::size_t c = static_cast<std::size_t>(cx_[i]) * ncell_ + cy_[i];
    items_[cell_start_[c] + cursor_[c]++] = i;
  }
}

void ProteinCellBins::gather_candidates(std::size_t a,
                                        std::vector<std::size_t>& out) const {
  if (ncell_ < 3) {
    for (std::size_t b = 0; b < px_.size(); ++b) out.push_back(b);
    return;  // already ascending
  }
  for (int di = -1; di <= 1; ++di) {
    const int ci = (cx_[a] + di + ncell_) % ncell_;
    for (int dj = -1; dj <= 1; ++dj) {
      const int cj = (cy_[a] + dj + ncell_) % ncell_;
      const std::size_t c = static_cast<std::size_t>(ci) * ncell_ + cj;
      for (std::size_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k)
        out.push_back(items_[k]);
    }
  }
  std::sort(out.begin(), out.end());
}

}  // namespace mummi::cont::detail
