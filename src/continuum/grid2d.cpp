#include "continuum/grid2d.hpp"

#include <cmath>

namespace mummi::cont {

double Grid2d::interpolate(double gi, double gj) const {
  const double fi = std::floor(gi);
  const double fj = std::floor(gj);
  const int i0 = wrap(static_cast<int>(fi));
  const int j0 = wrap(static_cast<int>(fj));
  const int i1 = wrap(i0 + 1);
  const int j1 = wrap(j0 + 1);
  const double ti = gi - fi;
  const double tj = gj - fj;
  return at(i0, j0) * (1 - ti) * (1 - tj) + at(i1, j0) * ti * (1 - tj) +
         at(i0, j1) * (1 - ti) * tj + at(i1, j1) * ti * tj;
}

}  // namespace mummi::cont
