// Deterministic block-parallel helpers for the continuum (DDFT) hot path.
//
// Same discipline as the MD force engine (DESIGN.md 4h): every parallel loop
// runs through util::for_blocks with block boundaries that are a function of
// the problem size ONLY — never the worker count — and every floating-point
// accumulation whose result could depend on scheduling folds per-block
// partials in fixed (ascending-block) order. A serial run, a 2-thread pool
// and an 8-thread pool therefore produce bit-identical density fields,
// protein trajectories and serialized snapshots.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "continuum/grid2d.hpp"
#include "util/thread_pool.hpp"

namespace mummi::cont {
struct Protein;  // gridsim2d.hpp
}  // namespace mummi::cont

namespace mummi::cont::detail {

/// Row-block size for an n-row grid: ~16 blocks for large grids (enough
/// slack for an 8-worker pool to balance), never below 8 rows so small test
/// grids do not pay fan-out overhead. Depends on n only.
inline std::size_t row_block(std::size_t n) {
  return std::max<std::size_t>(8, (n + 15) / 16);
}

/// Number of row blocks row_block(n) yields over [0, n).
inline std::size_t row_blocks(std::size_t n) {
  if (n == 0) return 0;
  const std::size_t block = row_block(n);
  return (n + block - 1) / block;
}

/// Protein-block size: ~8 blocks, never below 16 proteins. Depends on the
/// protein count only.
inline std::size_t protein_block(std::size_t p) {
  return std::max<std::size_t>(16, (p + 7) / 8);
}

inline std::size_t protein_blocks(std::size_t p) {
  if (p == 0) return 0;
  const std::size_t block = protein_block(p);
  return (p + block - 1) / block;
}

/// Counter-based per-protein RNG stream seed: a splitmix64-style avalanche
/// over (campaign seed, protein index, step index). Each protein draws from
/// its own short-lived stream each step, so protein updates thread freely,
/// replay bit-identically at any worker count, and survive checkpoint /
/// restore (the stream is a pure function of persisted state — no hidden
/// generator cursor to lose).
inline std::uint64_t protein_stream_seed(std::uint64_t seed, std::uint64_t idx,
                                         std::uint64_t step) {
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (idx + 1) +
                    0xbf58476d1ce4e5b9ULL * (step + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Per-block protein-footprint accumulators with a fixed-order reduction
/// (the ForceScratch pattern applied to Gaussian stamps).
///
/// Writers: protein block b stamps freely into grid(b, state) — a zeroed
/// cells-sized buffer per configurational state. reduce_and_clear folds the
/// buffers into the output grids per cell in ascending block order —
/// bit-identical for any worker count — and re-zeroes them on the way out,
/// so the next reset() on the same shape skips the O(nblocks * cells) clear.
/// Buffers persist across steps; steady-state cost is the reduction pass,
/// not allocation.
class FootprintScratch {
 public:
  /// Ensures `nblocks` zeroed buffers of `nstates * cells` doubles each.
  void reset(std::size_t nblocks, std::size_t nstates, std::size_t cells);

  /// Block b's accumulator for `state` (cells doubles, zeroed on entry).
  [[nodiscard]] double* grid(std::size_t b, std::size_t state) {
    return buf_[b].data() + state * cells_;
  }

  /// out[state][cell] = sum over blocks (ascending) of grid(b, state)[cell];
  /// zeroes the buffers. `out` must hold `nstates` grids of `cells` cells;
  /// their previous contents are overwritten (zeroed when nblocks == 0).
  void reduce_and_clear(std::vector<Grid2d>& out, util::ThreadPool* pool);

 private:
  std::size_t nblocks_ = 0;
  std::size_t nstates_ = 0;
  std::size_t cells_ = 0;
  bool dirty_ = false;  // writes pending that reduce_and_clear has not folded
  std::vector<std::vector<double>> buf_;  // [block][state * cells + cell]
};

/// Periodic cell bins over protein positions: makes the soft-repulsion
/// neighbor search O(P) instead of O(P^2).
///
/// build() snapshots the positions, so force kernels read a stable pre-step
/// view (Jacobi update — protein a's force never sees protein b's position
/// from the same step, whichever block updates first). gather_candidates
/// returns candidates sorted ascending, so accumulating in-range pairs in
/// that order reproduces the legacy all-pairs loop bit for bit.
class ProteinCellBins {
 public:
  /// Bins positions into an ncell x ncell periodic grid with cell edge
  /// >= range. Falls back to a single all-pairs bin when the box is under
  /// 3 cells per side (the 3x3 stencil would alias through the wrap) or the
  /// range is non-positive. Storage is reused across rebuilds.
  void build(const std::vector<Protein>& proteins, double extent, double range);

  [[nodiscard]] double x(std::size_t i) const { return px_[i]; }
  [[nodiscard]] double y(std::size_t i) const { return py_[i]; }
  [[nodiscard]] std::size_t size() const { return px_.size(); }

  /// Appends every candidate in the 3x3 cell stencil around protein `a`
  /// (including a itself; the caller skips b == a), sorted ascending.
  void gather_candidates(std::size_t a, std::vector<std::size_t>& out) const;

  [[nodiscard]] bool binned() const { return ncell_ >= 3; }
  [[nodiscard]] int ncell() const { return ncell_; }
  [[nodiscard]] std::size_t rebuilds() const { return rebuilds_; }

 private:
  int ncell_ = 0;
  double cell_w_ = 0;
  std::size_t rebuilds_ = 0;
  std::vector<double> px_, py_;
  std::vector<int> cx_, cy_;             // per-protein cell coords (binned)
  std::vector<std::size_t> cell_start_;  // CSR offsets over ncell^2 cells
  std::vector<std::size_t> items_;       // protein ids, ascending within cell
  std::vector<std::size_t> cursor_;      // fill scratch, reused
};

}  // namespace mummi::cont::detail
