#include "continuum/gridsim2d.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace mummi::cont {

GridSim2D::GridSim2D(ContinuumConfig config)
    : config_(config),
      h_(config.extent / config.grid),
      rng_(config.seed) {
  const int ns = n_species();
  MUMMI_CHECK_MSG(ns > 0 && config_.grid > 2, "invalid continuum config");

  // Lipid fields: per-species base density with small random perturbations,
  // so domains can form but mass stays ~1 per unit area in each leaflet.
  fields_.reserve(ns);
  for (int s = 0; s < ns; ++s) {
    const bool inner = s < config_.inner_species;
    const double base = 1.0 / (inner ? config_.inner_species : config_.outer_species);
    Grid2d g(config_.grid, base);
    for (auto& v : g.data()) v *= 1.0 + 0.05 * (rng_.uniform() - 0.5);
    fields_.push_back(std::move(g));
  }
  mu_.assign(static_cast<std::size_t>(ns), Grid2d(config_.grid));

  // Symmetric lipid-lipid interaction matrix: mild self-attraction drives
  // domain formation; cross terms are random but weak.
  chi_.assign(static_cast<std::size_t>(ns) * ns, 0.0);
  for (int s = 0; s < ns; ++s) {
    for (int t = s; t < ns; ++t) {
      double v = config_.chi_scale * (rng_.uniform() - 0.5);
      if (s == t) v = -0.5 * config_.chi_scale;
      chi_[static_cast<std::size_t>(s) * ns + t] = v;
      chi_[static_cast<std::size_t>(t) * ns + s] = v;
    }
  }

  // Protein-lipid couplings start neutral-ish; feedback refines them.
  coupling_.assign(static_cast<std::size_t>(kNumProteinStates) * ns, 0.0);
  for (auto& w : coupling_) w = 0.3 * (rng_.uniform() - 0.5);

  proteins_.resize(static_cast<std::size_t>(config_.n_proteins));
  for (auto& p : proteins_) {
    p.x = rng_.uniform(0.0, config_.extent);
    p.y = rng_.uniform(0.0, config_.extent);
    p.state = static_cast<ProteinState>(rng_.uniform_index(kNumProteinStates));
  }
}

void GridSim2D::set_protein_lipid_coupling(ProteinState state, int species,
                                           double weight) {
  MUMMI_CHECK(species >= 0 && species < n_species());
  coupling_[static_cast<std::size_t>(state) * n_species() + species] = weight;
}

double GridSim2D::protein_lipid_coupling(ProteinState state,
                                         int species) const {
  MUMMI_CHECK(species >= 0 && species < n_species());
  return coupling_[static_cast<std::size_t>(state) * n_species() + species];
}

void GridSim2D::step_lipids() {
  const int n = config_.grid;
  const int ns = n_species();

  // Per-state protein footprint fields (Gaussian stamps), shared by every
  // lipid species through the coupling weights.
  std::vector<Grid2d> footprint(kNumProteinStates, Grid2d(n));
  const double sigma_g = config_.protein_radius / h_;  // in cells
  const int reach = std::max(2, static_cast<int>(3 * sigma_g));
  for (const auto& p : proteins_) {
    const double gi = p.x / h_;
    const double gj = p.y / h_;
    if (!std::isfinite(gi) || !std::isfinite(gj)) continue;
    Grid2d& f = footprint[static_cast<int>(p.state)];
    const int ci = static_cast<int>(std::floor(gi));
    const int cj = static_cast<int>(std::floor(gj));
    for (int di = -reach; di <= reach; ++di)
      for (int dj = -reach; dj <= reach; ++dj) {
        const double dx = gi - (ci + di);
        const double dy = gj - (cj + dj);
        const double g = std::exp(-(dx * dx + dy * dy) / (2 * sigma_g * sigma_g));
        f.at(f.wrap(ci + di), f.wrap(cj + dj)) += g;
      }
  }

  auto& pool = util::global_pool();

  // Excess chemical potential per species.
  pool.parallel_for(static_cast<std::size_t>(ns), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      Grid2d& mu = mu_[s];
      for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j) {
          double v = 0;
          for (int t = 0; t < ns; ++t)
            v += chi_[s * static_cast<std::size_t>(ns) + t] * fields_[t].at(i, j);
          v -= config_.kappa * fields_[s].laplacian(i, j, h_);
          for (int st = 0; st < kNumProteinStates; ++st) {
            const double w =
                coupling_[static_cast<std::size_t>(st) * ns + s];
            if (w != 0) v += w * footprint[st].at(i, j);
          }
          mu.at(i, j) = v;
        }
    }
  });

  // Conservative update: drho/dt = M [lap rho + div(rho grad mu)].
  const double coeff = config_.mobility * config_.dt;
  pool.parallel_for(static_cast<std::size_t>(ns), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      const Grid2d& rho = fields_[s];
      const Grid2d& mu = mu_[s];
      Grid2d next(n);
      for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j) {
          // Face-centered fluxes of rho grad mu.
          auto face = [&](int i2, int j2, int i3, int j3) {
            const double rho_face = 0.5 * (rho.atp(i2, j2) + rho.atp(i3, j3));
            return rho_face * (mu.atp(i3, j3) - mu.atp(i2, j2)) / h_;
          };
          const double div =
              (face(i, j, i + 1, j) - face(i - 1, j, i, j) +
               face(i, j, i, j + 1) - face(i, j - 1, i, j)) /
              h_;
          next.at(i, j) = rho.at(i, j) +
                          coeff * (rho.laplacian(i, j, h_) + div);
          if (next.at(i, j) < 0) next.at(i, j) = 0;  // density floor
        }
      fields_[s] = std::move(next);
    }
  });
}

double GridSim2D::coupling_field_gradient(const Protein& p, int axis) const {
  // d/dx of U_p = sum_s w(state, s) rho_s at the protein position, by
  // central differences of the interpolated fields.
  const int ns = n_species();
  const double eps = 0.5 * h_;
  double grad = 0;
  for (int s = 0; s < ns; ++s) {
    const double w = coupling_[static_cast<std::size_t>(p.state) * ns + s];
    if (w == 0) continue;
    const double xp = p.x + (axis == 0 ? eps : 0);
    const double xm = p.x - (axis == 0 ? eps : 0);
    const double yp = p.y + (axis == 1 ? eps : 0);
    const double ym = p.y - (axis == 1 ? eps : 0);
    const double up = fields_[s].interpolate(xp / h_, yp / h_);
    const double um = fields_[s].interpolate(xm / h_, ym / h_);
    grad += w * (up - um) / (2 * eps);
  }
  return grad;
}

void GridSim2D::step_proteins() {
  const double d = config_.protein_diffusion;
  const double dt = config_.dt;
  const double step_sigma = std::sqrt(2 * d * dt);
  const double l = config_.extent;
  const double rep_range = 2 * config_.protein_radius;

  for (std::size_t a = 0; a < proteins_.size(); ++a) {
    Protein& p = proteins_[a];
    double fx = -coupling_field_gradient(p, 0);
    double fy = -coupling_field_gradient(p, 1);
    // Soft pairwise repulsion keeps complexes from stacking.
    for (std::size_t b = 0; b < proteins_.size(); ++b) {
      if (a == b) continue;
      double dx = p.x - proteins_[b].x;
      double dy = p.y - proteins_[b].y;
      dx -= l * std::round(dx / l);
      dy -= l * std::round(dy / l);
      const double r2 = dx * dx + dy * dy;
      if (r2 > rep_range * rep_range || r2 == 0) continue;
      const double r = std::sqrt(r2);
      const double mag = 2.0 * (1.0 - r / rep_range) / rep_range;
      fx += mag * dx / r;
      fy += mag * dy / r;
    }
    const double nx = p.x + d * fx * dt + step_sigma * rng_.normal();
    const double ny = p.y + d * fy * dt + step_sigma * rng_.normal();
    // A blown-up field (unstable dt on a coarse grid) yields a non-finite
    // force; freeze the protein rather than let NaN poison the indices.
    if (std::isfinite(nx)) p.x = nx - l * std::floor(nx / l);
    if (std::isfinite(ny)) p.y = ny - l * std::floor(ny / l);

    // Markov jumps between configurational states.
    if (rng_.uniform() < config_.state_switch_rate * dt) {
      int next = static_cast<int>(rng_.uniform_index(kNumProteinStates - 1));
      if (next >= static_cast<int>(p.state)) ++next;
      p.state = static_cast<ProteinState>(next);
    }
  }
}

void GridSim2D::step(int n) {
  for (int k = 0; k < n; ++k) {
    step_lipids();
    step_proteins();
    time_us_ += config_.dt;
  }
}

Snapshot GridSim2D::snapshot() const {
  Snapshot snap;
  snap.time_us = time_us_;
  snap.grid = config_.grid;
  snap.extent = config_.extent;
  snap.fields = fields_;
  snap.proteins = proteins_;
  return snap;
}

std::vector<double> GridSim2D::species_mass() const {
  std::vector<double> out;
  out.reserve(fields_.size());
  const double cell_area = h_ * h_;
  for (const auto& f : fields_) out.push_back(f.sum() * cell_area);
  return out;
}

util::Bytes Snapshot::serialize() const {
  util::ByteWriter w;
  w.f64(time_us);
  w.u32(static_cast<std::uint32_t>(grid));
  w.f64(extent);
  w.u32(static_cast<std::uint32_t>(fields.size()));
  for (const auto& f : fields) w.vec(f.data());
  w.u32(static_cast<std::uint32_t>(proteins.size()));
  for (const auto& p : proteins) {
    w.f64(p.x);
    w.f64(p.y);
    w.u32(static_cast<std::uint32_t>(p.state));
  }
  return std::move(w).take();
}

Snapshot Snapshot::deserialize(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  Snapshot snap;
  snap.time_us = r.f64();
  snap.grid = static_cast<int>(r.u32());
  snap.extent = r.f64();
  const auto nf = r.u32();
  snap.fields.reserve(nf);
  for (std::uint32_t i = 0; i < nf; ++i) {
    Grid2d g(snap.grid);
    g.data() = r.vec<double>();
    MUMMI_CHECK_MSG(g.data().size() == g.size(), "snapshot field size mismatch");
    snap.fields.push_back(std::move(g));
  }
  const auto np = r.u32();
  snap.proteins.reserve(np);
  for (std::uint32_t i = 0; i < np; ++i) {
    Protein p;
    p.x = r.f64();
    p.y = r.f64();
    p.state = static_cast<ProteinState>(r.u32());
    snap.proteins.push_back(p);
  }
  return snap;
}

util::Bytes GridSim2D::serialize() const {
  util::ByteWriter w;
  w.bytes(snapshot().serialize());
  w.vec(coupling_);
  w.vec(chi_);
  return std::move(w).take();
}

void GridSim2D::restore(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  const Snapshot snap = Snapshot::deserialize(r.bytes());
  MUMMI_CHECK_MSG(snap.grid == config_.grid &&
                      static_cast<int>(snap.fields.size()) == n_species(),
                  "restore() config mismatch");
  time_us_ = snap.time_us;
  fields_ = snap.fields;
  proteins_ = snap.proteins;
  coupling_ = r.vec<double>();
  chi_ = r.vec<double>();
}

}  // namespace mummi::cont
