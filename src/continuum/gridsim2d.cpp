#include "continuum/gridsim2d.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace mummi::cont {

namespace {

// v2 frame sentinel: a v1 frame begins with the u64 byte length of its
// snapshot section, which is always far below 2^48 — the all-ones high word
// makes the sentinel unmistakable while keeping old frames readable.
constexpr std::uint64_t kFrameSentinelV2 = 0xFFFFFFFF434E5446ULL;  // ..'CNTF'
constexpr std::uint32_t kFrameVersion = 2;

}  // namespace

util::ThreadPool* default_continuum_pool() { return util::env_shared_pool(); }

GridSim2D::GridSim2D(ContinuumConfig config)
    : config_(config),
      h_(config.extent / config.grid),
      pool_(config.pool != nullptr ? config.pool : default_continuum_pool()),
      rng_(config.seed) {
  const int ns = n_species();
  MUMMI_CHECK_MSG(ns > 0 && config_.grid > 2 && config_.dt > 0,
                  "invalid continuum config");

  // Lipid fields: per-species base density with small random perturbations,
  // so domains can form but mass stays ~1 per unit area in each leaflet.
  fields_.reserve(ns);
  for (int s = 0; s < ns; ++s) {
    const bool inner = s < config_.inner_species;
    const double base = 1.0 / (inner ? config_.inner_species : config_.outer_species);
    Grid2d g(config_.grid, base);
    for (auto& v : g.data()) v *= 1.0 + 0.05 * (rng_.uniform() - 0.5);
    fields_.push_back(std::move(g));
  }
  mu_.assign(static_cast<std::size_t>(ns), Grid2d(config_.grid));
  next_.assign(static_cast<std::size_t>(ns), Grid2d(config_.grid));
  footprint_.assign(static_cast<std::size_t>(kNumProteinStates),
                    Grid2d(config_.grid));

  // Symmetric lipid-lipid interaction matrix: mild self-attraction drives
  // domain formation; cross terms are random but weak.
  chi_.assign(static_cast<std::size_t>(ns) * ns, 0.0);
  for (int s = 0; s < ns; ++s) {
    for (int t = s; t < ns; ++t) {
      double v = config_.chi_scale * (rng_.uniform() - 0.5);
      if (s == t) v = -0.5 * config_.chi_scale;
      chi_[static_cast<std::size_t>(s) * ns + t] = v;
      chi_[static_cast<std::size_t>(t) * ns + s] = v;
    }
  }

  // Protein-lipid couplings start neutral-ish; feedback refines them.
  coupling_.assign(static_cast<std::size_t>(kNumProteinStates) * ns, 0.0);
  for (auto& w : coupling_) w = 0.3 * (rng_.uniform() - 0.5);

  proteins_.resize(static_cast<std::size_t>(config_.n_proteins));
  for (auto& p : proteins_) {
    p.x = rng_.uniform(0.0, config_.extent);
    p.y = rng_.uniform(0.0, config_.extent);
    p.state = static_cast<ProteinState>(rng_.uniform_index(kNumProteinStates));
  }

  c_steps_ = &obs::counter("cont.step.steps");
  c_cells_ = &obs::counter("cont.step.cells");
  c_pairs_ = &obs::counter("cont.step.protein_pairs");
  c_rebuilds_ = &obs::counter("cont.step.rebuilds");
  h_pairs_ = &obs::histogram("cont.step.pairs_per_protein", 0.0, 64.0, 32);
}

void GridSim2D::set_protein_lipid_coupling(ProteinState state, int species,
                                           double weight) {
  MUMMI_CHECK(species >= 0 && species < n_species());
  coupling_[static_cast<std::size_t>(state) * n_species() + species] = weight;
}

double GridSim2D::protein_lipid_coupling(ProteinState state,
                                         int species) const {
  MUMMI_CHECK(species >= 0 && species < n_species());
  return coupling_[static_cast<std::size_t>(state) * n_species() + species];
}

void GridSim2D::build_footprints(util::ThreadPool* pool) {
  const int n = config_.grid;
  const auto cells = static_cast<std::size_t>(n) * n;
  const double sigma_g = config_.protein_radius / h_;  // in cells
  const std::size_t np = proteins_.size();
  // sigma == 0 (pointlike protein) would divide by zero in the Gaussian:
  // such proteins simply leave no footprint.
  const bool stamp = sigma_g > 0 && np > 0;
  const std::size_t nblocks = stamp ? detail::protein_blocks(np) : 0;
  fp_scratch_.reset(nblocks, static_cast<std::size_t>(kNumProteinStates),
                    cells);
  if (stamp) {
    const int reach = std::max(2, static_cast<int>(3 * sigma_g));
    const double denom = 2 * sigma_g * sigma_g;
    const std::size_t block = detail::protein_block(np);
    auto wrap = [n](int i) { return ((i % n) + n) % n; };
    util::for_blocks(pool, np, block, [&](std::size_t lo, std::size_t hi) {
      const std::size_t b = lo / block;
      for (std::size_t pi = lo; pi < hi; ++pi) {
        const Protein& p = proteins_[pi];
        const double gi = p.x / h_;
        const double gj = p.y / h_;
        if (!std::isfinite(gi) || !std::isfinite(gj)) continue;
        double* f = fp_scratch_.grid(b, static_cast<std::size_t>(p.state));
        const int ci = static_cast<int>(std::floor(gi));
        const int cj = static_cast<int>(std::floor(gj));
        for (int di = -reach; di <= reach; ++di) {
          const std::size_t row =
              static_cast<std::size_t>(wrap(ci + di)) * n;
          for (int dj = -reach; dj <= reach; ++dj) {
            const double dx = gi - (ci + di);
            const double dy = gj - (cj + dj);
            const double g = std::exp(-(dx * dx + dy * dy) / denom);
            f[row + wrap(cj + dj)] += g;
          }
        }
      }
    });
  }
  // Ascending-block fold (zeroes the grids when nothing was stamped).
  fp_scratch_.reduce_and_clear(footprint_, pool);
}

void GridSim2D::step_lipids() {
  const int n = config_.grid;
  const int ns = n_species();
  const double h2 = h_ * h_;
  const double kappa = config_.kappa;
  const double coeff = config_.mobility * config_.dt;

  build_footprints(pool_);

  // Excess chemical potential, fused over row blocks: the chi contraction,
  // gradient penalty and protein coupling land on each mu cell in the same
  // order as the per-cell reference (chi terms t-ascending with t = 0
  // assigning, then -kappa lap, then coupling st-ascending), so the sweep is
  // bit-identical to the legacy kernel. Interior columns use direct +-1
  // offsets; only j = 0 and j = n-1 pay the periodic wrap.
  util::for_blocks(
      pool_, static_cast<std::size_t>(n), detail::row_block(n),
      [&](std::size_t rlo, std::size_t rhi) {
        for (std::size_t i = rlo; i < rhi; ++i) {
          const std::size_t r = i * n;
          const std::size_t rup = ((i + 1) % n) * n;      // row of atp(i+1, j)
          const std::size_t rdn = ((i + n - 1) % n) * n;  // row of atp(i-1, j)
          for (int s = 0; s < ns; ++s) {
            double* mu = mu_[s].data().data() + r;
            const double* chis = &chi_[static_cast<std::size_t>(s) * ns];
            // chi contraction: t-loop over contiguous species rows (SoA view
            // of the fields) so it vectorizes.
            {
              const double c = chis[0];
              const double* rho = fields_[0].data().data() + r;
              for (int j = 0; j < n; ++j) mu[j] = c * rho[j];
            }
            for (int t = 1; t < ns; ++t) {
              const double c = chis[t];
              const double* rho = fields_[t].data().data() + r;
              for (int j = 0; j < n; ++j) mu[j] += c * rho[j];
            }
            // Gradient penalty: -kappa * five-point Laplacian.
            {
              const double* base = fields_[s].data().data();
              const double* rc = base + r;
              const double* ru = base + rup;
              const double* rd = base + rdn;
              mu[0] -= kappa *
                       ((ru[0] + rd[0] + rc[1] + rc[n - 1] - 4.0 * rc[0]) / h2);
              for (int j = 1; j < n - 1; ++j)
                mu[j] -= kappa * ((ru[j] + rd[j] + rc[j + 1] + rc[j - 1] -
                                   4.0 * rc[j]) /
                                  h2);
              mu[n - 1] -= kappa * ((ru[n - 1] + rd[n - 1] + rc[0] +
                                     rc[n - 2] - 4.0 * rc[n - 1]) /
                                    h2);
            }
            // Protein coupling through the per-state footprints.
            for (int st = 0; st < kNumProteinStates; ++st) {
              const double w = coupling_[static_cast<std::size_t>(st) * ns + s];
              if (w == 0) continue;
              const double* fp = footprint_[st].data().data() + r;
              for (int j = 0; j < n; ++j) mu[j] += w * fp[j];
            }
          }
        }
      });

  // Conservative update: drho/dt = M [lap rho + div(rho grad mu)], written
  // into the persistent next_ grids and swapped in — no per-step allocation.
  // Face fluxes and their combination order match the legacy kernel exactly.
  util::for_blocks(
      pool_, static_cast<std::size_t>(n), detail::row_block(n),
      [&](std::size_t rlo, std::size_t rhi) {
        for (std::size_t i = rlo; i < rhi; ++i) {
          const std::size_t r = i * n;
          const std::size_t rup = ((i + 1) % n) * n;
          const std::size_t rdn = ((i + n - 1) % n) * n;
          for (int s = 0; s < ns; ++s) {
            const double* rho = fields_[s].data().data();
            const double* mu = mu_[s].data().data();
            const double* rc = rho + r;
            const double* ru = rho + rup;
            const double* rd = rho + rdn;
            const double* mc = mu + r;
            const double* mup = mu + rup;
            const double* mdn = mu + rdn;
            double* out = next_[s].data().data() + r;
            auto cell = [&](int j, int jp, int jm) {
              const double f_ip = 0.5 * (rc[j] + ru[j]) * (mup[j] - mc[j]) / h_;
              const double f_im = 0.5 * (rd[j] + rc[j]) * (mc[j] - mdn[j]) / h_;
              const double f_jp =
                  0.5 * (rc[j] + rc[jp]) * (mc[jp] - mc[j]) / h_;
              const double f_jm =
                  0.5 * (rc[jm] + rc[j]) * (mc[j] - mc[jm]) / h_;
              const double div = (f_ip - f_im + f_jp - f_jm) / h_;
              const double lap =
                  (ru[j] + rd[j] + rc[jp] + rc[jm] - 4.0 * rc[j]) / h2;
              double v = rc[j] + coeff * (lap + div);
              if (v < 0) v = 0;  // density floor
              out[j] = v;
            };
            cell(0, 1, n - 1);
            for (int j = 1; j < n - 1; ++j) cell(j, j + 1, j - 1);
            cell(n - 1, 0, n - 2);
          }
        }
      });

  for (int s = 0; s < ns; ++s) std::swap(fields_[s], next_[s]);
}

double GridSim2D::coupling_field_gradient(const Protein& p, int axis) const {
  // d/dx of U_p = sum_s w(state, s) rho_s at the protein position, by
  // central differences of the interpolated fields.
  const int ns = n_species();
  const double eps = 0.5 * h_;
  double grad = 0;
  for (int s = 0; s < ns; ++s) {
    const double w = coupling_[static_cast<std::size_t>(p.state) * ns + s];
    if (w == 0) continue;
    const double xp = p.x + (axis == 0 ? eps : 0);
    const double xm = p.x - (axis == 0 ? eps : 0);
    const double yp = p.y + (axis == 1 ? eps : 0);
    const double ym = p.y - (axis == 1 ? eps : 0);
    const double up = fields_[s].interpolate(xp / h_, yp / h_);
    const double um = fields_[s].interpolate(xm / h_, ym / h_);
    grad += w * (up - um) / (2 * eps);
  }
  return grad;
}

void GridSim2D::advance_protein(std::size_t a, double fx, double fy) {
  Protein& p = proteins_[a];
  const double d = config_.protein_diffusion;
  const double dt = config_.dt;
  const double step_sigma = std::sqrt(2 * d * dt);
  const double l = config_.extent;
  // Counter-based stream: a pure function of (seed, protein, step), so the
  // update threads freely and resumes exactly from any checkpoint.
  util::Rng prng(
      detail::protein_stream_seed(config_.seed, a, step_count_));
  const double nx = p.x + d * fx * dt + step_sigma * prng.normal();
  const double ny = p.y + d * fy * dt + step_sigma * prng.normal();
  // A blown-up field (unstable dt on a coarse grid) yields a non-finite
  // force; freeze the protein rather than let NaN poison the indices.
  if (std::isfinite(nx)) p.x = nx - l * std::floor(nx / l);
  if (std::isfinite(ny)) p.y = ny - l * std::floor(ny / l);

  // Markov jumps between configurational states.
  if (prng.uniform() < config_.state_switch_rate * dt) {
    int next = static_cast<int>(prng.uniform_index(kNumProteinStates - 1));
    if (next >= static_cast<int>(p.state)) ++next;
    p.state = static_cast<ProteinState>(next);
  }
}

void GridSim2D::step_proteins() {
  const std::size_t np = proteins_.size();
  if (np == 0) return;
  const double l = config_.extent;
  const double rep_range = 2 * config_.protein_radius;

  // Cell bins snapshot the pre-step positions: forces read the stable
  // bin copies (Jacobi update), so blocks never observe each other's writes.
  bins_.build(proteins_, l, rep_range);
  c_rebuilds_->inc();

  const std::size_t block = detail::protein_block(np);
  const std::size_t nblocks = detail::protein_blocks(np);
  if (cand_scratch_.size() < nblocks) cand_scratch_.resize(nblocks);
  pair_counts_.assign(nblocks, 0);

  util::for_blocks(pool_, np, block, [&](std::size_t lo, std::size_t hi) {
    const std::size_t bi = lo / block;
    auto& cand = cand_scratch_[bi];
    std::uint64_t pairs = 0;
    for (std::size_t a = lo; a < hi; ++a) {
      double fx = -coupling_field_gradient(proteins_[a], 0);
      double fy = -coupling_field_gradient(proteins_[a], 1);
      if (rep_range > 0) {
        // Soft pairwise repulsion keeps complexes from stacking. Candidates
        // come back sorted ascending, so the in-range accumulation order is
        // the same as the legacy all-pairs loop — bit-identical forces.
        cand.clear();
        bins_.gather_candidates(a, cand);
        for (const std::size_t b : cand) {
          if (b == a) continue;
          double dx = bins_.x(a) - bins_.x(b);
          double dy = bins_.y(a) - bins_.y(b);
          dx -= l * std::round(dx / l);
          dy -= l * std::round(dy / l);
          const double r2 = dx * dx + dy * dy;
          if (r2 > rep_range * rep_range || r2 == 0) continue;
          const double r = std::sqrt(r2);
          const double mag = 2.0 * (1.0 - r / rep_range) / rep_range;
          fx += mag * dx / r;
          fy += mag * dy / r;
          ++pairs;
        }
      }
      advance_protein(a, fx, fy);
    }
    pair_counts_[bi] = pairs;
  });

  std::uint64_t pairs = 0;
  for (const std::uint64_t c : pair_counts_) pairs += c;
  c_pairs_->inc(pairs);
  h_pairs_->observe(static_cast<double>(pairs) / static_cast<double>(np));
}

// --- legacy reference kernels (test-only) ---------------------------------
//
// The pre-refactor loop structure, kept executable so tests and the
// bench_continuum baseline can assert the block-parallel engine reproduces
// it bit for bit: serial per-species stencils through atp()'s periodic
// accessor, a fresh Grid2d per species per step, and O(P^2) all-pairs
// repulsion. Shared pieces (footprint stamps, per-protein streams, the
// Jacobi position snapshot) follow the engine's definitions — those are the
// semantics under test, not incidental structure.

void GridSim2D::step_lipids_legacy() {
  const int n = config_.grid;
  const int ns = n_species();

  build_footprints(nullptr);

  for (int s = 0; s < ns; ++s) {
    Grid2d& mu = mu_[s];
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) {
        double v = chi_[static_cast<std::size_t>(s) * ns] * fields_[0].at(i, j);
        for (int t = 1; t < ns; ++t)
          v += chi_[static_cast<std::size_t>(s) * ns + t] * fields_[t].at(i, j);
        v -= config_.kappa * fields_[s].laplacian(i, j, h_);
        for (int st = 0; st < kNumProteinStates; ++st) {
          const double w = coupling_[static_cast<std::size_t>(st) * ns + s];
          if (w != 0) v += w * footprint_[st].at(i, j);
        }
        mu.at(i, j) = v;
      }
  }

  const double coeff = config_.mobility * config_.dt;
  for (int s = 0; s < ns; ++s) {
    const Grid2d& rho = fields_[s];
    const Grid2d& mu = mu_[s];
    Grid2d next(n);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) {
        // Face-centered fluxes of rho grad mu.
        auto face = [&](int i2, int j2, int i3, int j3) {
          const double rho_face = 0.5 * (rho.atp(i2, j2) + rho.atp(i3, j3));
          return rho_face * (mu.atp(i3, j3) - mu.atp(i2, j2)) / h_;
        };
        const double div =
            (face(i, j, i + 1, j) - face(i - 1, j, i, j) +
             face(i, j, i, j + 1) - face(i, j - 1, i, j)) /
            h_;
        next.at(i, j) = rho.at(i, j) +
                        coeff * (rho.laplacian(i, j, h_) + div);
        if (next.at(i, j) < 0) next.at(i, j) = 0;  // density floor
      }
    fields_[s] = std::move(next);
  }
}

void GridSim2D::step_proteins_legacy() {
  const std::size_t np = proteins_.size();
  if (np == 0) return;
  const double l = config_.extent;
  const double rep_range = 2 * config_.protein_radius;

  // Pre-step position snapshot (Jacobi update, like the engine).
  std::vector<double> px(np), py(np);
  for (std::size_t i = 0; i < np; ++i) {
    px[i] = proteins_[i].x;
    py[i] = proteins_[i].y;
  }

  std::uint64_t pairs = 0;
  for (std::size_t a = 0; a < np; ++a) {
    double fx = -coupling_field_gradient(proteins_[a], 0);
    double fy = -coupling_field_gradient(proteins_[a], 1);
    for (std::size_t b = 0; b < np; ++b) {
      if (a == b) continue;
      double dx = px[a] - px[b];
      double dy = py[a] - py[b];
      dx -= l * std::round(dx / l);
      dy -= l * std::round(dy / l);
      const double r2 = dx * dx + dy * dy;
      if (r2 > rep_range * rep_range || r2 == 0) continue;
      const double r = std::sqrt(r2);
      const double mag = 2.0 * (1.0 - r / rep_range) / rep_range;
      fx += mag * dx / r;
      fy += mag * dy / r;
      ++pairs;
    }
    advance_protein(a, fx, fy);
  }
  c_pairs_->inc(pairs);
  h_pairs_->observe(static_cast<double>(pairs) / static_cast<double>(np));
}

void GridSim2D::step(int n) {
  const auto cells_per_step = static_cast<std::uint64_t>(config_.grid) *
                              config_.grid * n_species();
  for (int k = 0; k < n; ++k) {
    if (config_.legacy_kernels) {
      step_lipids_legacy();
      step_proteins_legacy();
    } else {
      step_lipids();
      step_proteins();
    }
    ++step_count_;
    time_us_ += config_.dt;
    c_steps_->inc();
    c_cells_->inc(cells_per_step);
  }
}

Snapshot GridSim2D::snapshot() const {
  Snapshot snap;
  snap.time_us = time_us_;
  snap.grid = config_.grid;
  snap.extent = config_.extent;
  snap.fields = fields_;
  snap.proteins = proteins_;
  return snap;
}

std::vector<double> GridSim2D::species_mass() const {
  std::vector<double> out;
  out.reserve(fields_.size());
  const double cell_area = h_ * h_;
  for (const auto& f : fields_) out.push_back(f.sum() * cell_area);
  return out;
}

util::Bytes Snapshot::serialize() const {
  util::ByteWriter w;
  w.f64(time_us);
  w.u32(static_cast<std::uint32_t>(grid));
  w.f64(extent);
  w.u32(static_cast<std::uint32_t>(fields.size()));
  for (const auto& f : fields) w.vec(f.data());
  w.u32(static_cast<std::uint32_t>(proteins.size()));
  for (const auto& p : proteins) {
    w.f64(p.x);
    w.f64(p.y);
    w.u32(static_cast<std::uint32_t>(p.state));
  }
  return std::move(w).take();
}

Snapshot Snapshot::deserialize(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  Snapshot snap;
  snap.time_us = r.f64();
  snap.grid = static_cast<int>(r.u32());
  if (snap.grid <= 0) throw util::FormatError("snapshot grid must be positive");
  snap.extent = r.f64();
  const auto nf = r.u32();
  const auto cells =
      static_cast<std::size_t>(snap.grid) * static_cast<std::size_t>(snap.grid);
  snap.fields.reserve(nf);
  for (std::uint32_t i = 0; i < nf; ++i) {
    // Read (and bounds-check) before sizing the grid, so hostile headers
    // cannot drive a huge allocation.
    std::vector<double> data = r.vec<double>();
    if (data.size() != cells)
      throw util::FormatError("snapshot field size mismatch");
    Grid2d g(snap.grid);
    g.data() = std::move(data);
    snap.fields.push_back(std::move(g));
  }
  const auto np = r.u32();
  snap.proteins.reserve(np);
  for (std::uint32_t i = 0; i < np; ++i) {
    Protein p;
    p.x = r.f64();
    p.y = r.f64();
    const std::uint32_t state = r.u32();
    // An arbitrary u32 is NOT a ProteinState: reject rather than launder
    // out-of-range bytes into enum-indexed tables downstream.
    if (state >= static_cast<std::uint32_t>(kNumProteinStates))
      throw util::FormatError("snapshot protein state out of range");
    p.state = static_cast<ProteinState>(state);
    snap.proteins.push_back(p);
  }
  return snap;
}

util::Bytes GridSim2D::serialize() const {
  util::ByteWriter w;
  w.u64(kFrameSentinelV2);
  w.u32(kFrameVersion);
  w.bytes(snapshot().serialize());
  w.vec(coupling_);
  w.vec(chi_);
  w.u64(step_count_);
  const util::Rng::State st = rng_.save_state();
  for (const std::uint64_t word : st.s) w.u64(word);
  w.u8(st.has_spare ? 1 : 0);
  w.f64(st.spare);
  return std::move(w).take();
}

void GridSim2D::restore(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  const std::uint64_t head = r.u64();
  Snapshot snap;
  std::vector<double> coupling, chi;
  std::uint64_t steps = 0;
  if (head == kFrameSentinelV2) {
    const std::uint32_t version = r.u32();
    if (version != kFrameVersion)
      throw util::FormatError("unknown continuum frame version");
    snap = Snapshot::deserialize(r.bytes());
    coupling = r.vec<double>();
    chi = r.vec<double>();
    steps = r.u64();
    util::Rng::State st{};
    for (auto& word : st.s) word = r.u64();
    st.has_spare = r.u8() != 0;
    st.spare = r.f64();
    rng_.load_state(st);
  } else {
    // v1 frame (pre-versioning): `head` is the length prefix of the
    // snapshot section. No step counter or RNG state was persisted; the
    // counter is recovered from the frame time (exact for an unchanged dt)
    // and the init-time generator keeps its current state — stepping draws
    // only from counter-based per-protein streams, so a v1 resume still
    // replays bit-identically.
    if (head > r.remaining())
      throw util::FormatError("continuum frame truncated");
    util::Bytes sb(static_cast<std::size_t>(head));
    r.raw(sb.data(), sb.size());
    snap = Snapshot::deserialize(sb);
    coupling = r.vec<double>();
    chi = r.vec<double>();
    steps = static_cast<std::uint64_t>(std::llround(snap.time_us / config_.dt));
  }
  const auto ns = static_cast<std::size_t>(n_species());
  MUMMI_CHECK_MSG(snap.grid == config_.grid && snap.fields.size() == ns,
                  "restore() config mismatch");
  MUMMI_CHECK_MSG(coupling.size() == static_cast<std::size_t>(
                                         kNumProteinStates) * ns &&
                      chi.size() == ns * ns,
                  "restore() parameter size mismatch");
  time_us_ = snap.time_us;
  step_count_ = steps;
  fields_ = snap.fields;
  proteins_ = snap.proteins;
  coupling_ = std::move(coupling);
  chi_ = std::move(chi);
}

}  // namespace mummi::cont
