// In-situ analysis plane for the campaign maintain tick.
//
// Paper Sec. 4.1: every running CG simulation has an analysis process sitting
// next to it, inspecting each new snapshot within the frame cadence and
// emitting candidate-frame identifying info plus protein-lipid RDF feedback.
// At campaign scale those analyses are thousands of independent tasks per
// tick — the last serial hot path in the coordination loop before this class.
//
// InSituPlane advances one miniature logical CG system per running sim
// (stepping), runs the real coupling::CgAnalysis over it (RDF accumulation +
// encoder feature extraction), and draws the per-sim candidate counts — all
// under the engines' bit-level discipline: per-sim counter-based RNG streams,
// chunk boundaries a function of data only, a two-stage bounded pipeline
// (stepping of chunk c+1 overlaps analysis of chunk c), and a serial fold in
// ascending sim-id order. Threads change wall time, never output.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "coupling/analysis.hpp"
#include "util/thread_pool.hpp"

namespace mummi::wm {

struct InSituConfig {
  // Miniature CG stand-in per sim: 4 lipid species x 4 head beads + a
  // 6-bead RAS-RAF backbone (4 RAS + 2 RAF) in a 4 x 4 x 8 nm box.
  int n_species = 4;
  int heads_per_species = 4;
  int ras_beads = 4;
  int raf_beads = 2;
  double box_xy = 4.0;
  double box_z = 8.0;
  md::real rdf_rmax = 2.0;
  std::size_t rdf_bins = 16;
  /// Pool for the fan-out; null runs serially (same outputs either way).
  util::ThreadPool* pool = nullptr;
};

/// Pipeline chunk: sims whose stepping is submitted as one pool task, and
/// whose analysis is folded before the next chunk's. Data-only constant.
constexpr std::size_t kInSituChunk = 32;
/// Analysis fan-out granularity within a chunk. Data-only constant.
constexpr std::size_t kInSituSubBlock = 8;

/// Per-sim outcome of one tick, handed to the fold callback.
struct InSituResult {
  std::uint64_t sim = 0;
  /// Analyzed frame (real CgAnalysis::analyze output for this tick's state).
  coupling::CgFrameInfo frame;
  /// Candidate count drawn from the sim's stream; when > 0, `frame` is the
  /// first candidate and `extra` holds descriptors for the remaining n-1.
  std::uint32_t candidates = 0;
  std::vector<std::array<float, 3>> extra;
  /// RDFs accumulated by this sim this tick (one frame per species).
  coupling::RdfSet rdfs;
};

class InSituPlane {
 public:
  explicit InSituPlane(std::uint64_t seed, InSituConfig config = {});
  ~InSituPlane();  // out of line: SimState is incomplete here

  /// Advances and analyzes every sim in `payloads` (must be ascending and
  /// unique) for the tick identified by `tick_key`, then folds results
  /// serially in ascending payload order via `fold`. `candidate_mean` is the
  /// Poisson mean of candidate frames per sim this tick. Returns nanoseconds
  /// spent in the serial fold (wm.tick.fold_ns).
  ///
  /// Output is a pure function of (seed, payloads, tick_key, candidate_mean):
  /// per-sim streams are counter-based, positions are regenerated statelessly
  /// each tick, and the fold order is fixed — so any pool size, and a plane
  /// rebuilt after a crash-restart, produce byte-identical folds.
  std::uint64_t tick(const std::vector<std::uint64_t>& payloads,
                     std::uint64_t tick_key, double candidate_mean,
                     const std::function<void(const InSituResult&)>& fold);

  [[nodiscard]] std::size_t active_sims() const { return states_.size(); }

  /// Counter-based per-(sim, tick, lane) stream seed — the continuum engine's
  /// protein_stream_seed idiom: a splitmix64-style avalanche, so nearby sims
  /// and ticks give uncorrelated streams without any shared RNG state.
  static std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t sim,
                                   std::uint64_t tick, std::uint64_t lane);

 private:
  struct SimState;

  SimState& state_for(std::uint64_t payload);
  void step_sim(std::uint64_t payload, SimState& st,
                std::uint64_t tick_key) const;
  void analyze_sim(std::uint64_t payload, SimState& st, std::uint64_t tick_key,
                   double candidate_mean, InSituResult& out) const;

  std::uint64_t seed_;
  InSituConfig config_;
  /// Geometry template shared by every sim (per-sim state differs only in
  /// positions, which are regenerated statelessly each tick).
  coupling::CgSystemInfo proto_;
  std::unordered_map<std::uint64_t, std::unique_ptr<SimState>> states_;
};

}  // namespace mummi::wm
