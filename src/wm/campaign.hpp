// Campaign simulator: the Summit campaign in virtual time.
//
// Reproduces the coordination-layer behaviour of the Dec 2020 - Mar 2021
// RAS-RAF-PM campaign (paper Sec. 5): the Table-1 run schedule, checkpointed
// continuation across allocations, ML-driven selection, setup/sim buffers,
// feedback cadence, the 10-minute occupancy profiler and the data ledger.
//
// The scheduler, queue manager, selectors, workflow manager and trackers are
// the real library classes running under a virtual clock; job durations and
// data rates come from wm::PerfModel / wm::RateModel (calibrated to paper
// Sec. 4.1). Patch/frame *contents* are synthetic encodings — selection
// dynamics depend only on the encoded distributions, not on the underlying
// MD, which runs for real in the examples and tests instead.
#pragma once

#include <optional>
#include <vector>

#include "coupling/analysis.hpp"
#include "event/sim_engine.hpp"
#include "fault/crash_point.hpp"
#include "fault/fault_plan.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "wm/perf_model.hpp"
#include "wm/profiler.hpp"
#include "wm/workflow_manager.hpp"

namespace mummi::wm {

/// Thrown when CampaignConfig::crash_at_campaign_h fires — a hard,
/// mid-allocation death of the coordination process (no teardown, no
/// checkpoint-and-carry) — and by armed fault::CrashPointRegistry points at
/// persistence boundaries. Recovery is a fresh Campaign with the same config
/// whose run() resumes from the last periodic checkpoint.
using SimulatedCrash = fault::SimulatedCrash;

struct RunSpec {
  int nodes = 100;
  double walltime_h = 6;
  int count = 1;
};

struct CampaignConfig {
  /// Table 1 by default.
  std::vector<RunSpec> runs = {
      {100, 6, 5}, {100, 12, 3}, {500, 12, 3}, {1000, 24, 20}, {4000, 24, 1}};

  WmConfig wm;
  PerfModel perf;
  RateModel rates;
  sched::QueueConfig queue;        // async by default; Fig. 6 flips it
  sched::MatchPolicy match_policy = sched::MatchPolicy::kFirstMatch;

  // Continuum job shape (150 nodes x 24 cores on the big runs).
  int continuum_nodes_max = 150;
  int continuum_cores_per_node = 24;

  // Cadences (seconds of virtual wall time).
  double snapshot_interval_s = 90;
  double maintain_interval_s = 60;
  int submit_budget_per_maintain = 100;  // ~100 jobs/min throttle
  double feedback_interval_s = 300;
  double profile_interval_s = 600;

  // Patch/frame synthesis rates.
  int proteins_per_snapshot = 333;
  double frame_candidates_per_us = 102.0;  // 9.8M candidates / 96.7 ms CG
  double frame_candidate_scale = 1.0;      // <1 subsamples (memory relief)

  // Trajectory-length targets (tuned so completed-sim means match Sec. 5.1:
  // ~2.8 us/CG sim, 34.5k CG sims; 50-65 ns/AA sim, ~9.6k AA sims).
  double cg_min_us = 0.5, cg_mean_us = 4.0, cg_max_us = 5.0;
  double aa_min_ns = 50.0, aa_max_ns = 65.0;

  // The incompatible-MPI episode degrading CG throughput for the first
  // third of the campaign (Sec. 5.1).
  double degraded_until_fraction = 0.33;

  double sim_failure_prob = 0.005;  // per-job failure odds
  std::uint64_t seed = 7;

  // --- resilience (Sec. 4.4: "everything fails at scale") ------------------
  /// Infrastructure fault rates; empty() disables injection. Each run draws
  /// its own plan from faults.seed mixed with the flat run index, so the
  /// whole campaign stays deterministic.
  fault::FaultSpec faults;

  /// Campaign supervision plane (watchdogs, speculative twins, poison
  /// quarantine, node probation, degraded mode). Disabled by default so
  /// figure runs are bit-identical with and without this subsystem built in.
  supervise::SuperviseConfig supervise;

  /// Poison-work model: payloads whose id is a nonzero multiple of this
  /// modulus deterministically fail every `poison_job_type` attempt —
  /// the "work item that kills whatever runs it" pattern the quarantine
  /// ledger exists for. 0 disables.
  std::uint64_t poison_payload_modulus = 0;
  std::string poison_job_type = "cg_setup";

  /// Periodic campaign checkpoint cadence (virtual seconds); 0 disables.
  /// Requires checkpoint_path. A fresh Campaign with the same config resumes
  /// from the newest checkpoint automatically (and removes it on success).
  double checkpoint_interval_s = 0;
  std::string checkpoint_path;

  /// Test/bench aid: hard-kill the coordination process (SimulatedCrash)
  /// once this many campaign hours have elapsed. 0 disables.
  double crash_at_campaign_h = 0;

  /// Pool for the in-situ analysis fan-out inside the maintain tick. Null
  /// resolves through util::env_shared_pool() (MUMMI_POOL_SIZE). The pool
  /// size only changes wall time: CampaignResult::science_fingerprint() is
  /// byte-identical at any thread count.
  util::ThreadPool* insitu_pool = nullptr;
};

struct RunRow {
  int nodes = 0;
  double walltime_h = 0;
  int count = 0;
  [[nodiscard]] double node_hours() const { return nodes * walltime_h * count; }
};

struct CampaignResult {
  std::vector<RunRow> table1;
  double node_hours = 0;

  Profiler profiler;  // merged profile events across all runs

  // Fig. 3: trajectory-length distributions (completed + truncated sims).
  std::vector<double> cg_lengths_us;
  std::vector<double> aa_lengths_ns;

  // Fig. 4: performance samples.
  std::vector<std::pair<double, double>> cg_perf;  // (particles, us/day)
  std::vector<std::pair<double, double>> aa_perf;  // (atoms, ns/day)
  std::vector<double> continuum_ms_per_day;        // one sample per snapshot

  // Campaign totals (Sec. 5.1 paragraph).
  std::uint64_t snapshots = 0;
  std::uint64_t patches_created = 0;
  std::uint64_t patches_selected = 0;
  std::uint64_t frame_candidates = 0;
  std::uint64_t frames_selected = 0;
  double continuum_total_us = 0;
  double cg_total_us = 0;
  double aa_total_ns = 0;

  DataLedger ledger;

  // Feedback iteration stats (virtual durations).
  std::vector<fb::IterationStats> cg2cont_stats;
  std::vector<fb::IterationStats> aa2cg_stats;

  // Resilience accounting (when CampaignConfig::faults is active).
  std::uint64_t faults_injected = 0;    // fault events applied
  std::uint64_t fault_jobs_killed = 0;  // running jobs killed by node crashes
  std::uint64_t checkpoints_written = 0;
  bool resumed_from_checkpoint = false;

  // In-situ analysis plane outcomes: frames analyzed by the per-sim
  // CgAnalysis fan-out and the merged protein-lipid RDF feedback (both part
  // of the science fingerprint; folded in ascending sim-id order, so
  // byte-identical at any insitu_pool size).
  std::uint64_t analysis_frames = 0;
  coupling::RdfSet rdf_feedback;
  /// Per-maintain-tick analyzed-sim counts, in tick order — diagnostics for
  /// the campaign-parallel bench's schedule model (like the profiler, not
  /// part of the fingerprint and not checkpointed).
  std::vector<std::uint32_t> tick_sims;

  // Supervision plane outcomes (all zero when supervise.enabled is false).
  supervise::SupervisionStats supervision;
  /// Decision log across all runs, in decision order — byte-identical for
  /// identical (config, seed) and the anchor of the determinism tests.
  std::vector<std::string> supervision_log;
  /// Quarantined "type:payload" keys at campaign end, ascending.
  std::vector<std::string> quarantined;

  /// Canonical byte encoding of every *science* outcome above — totals,
  /// distributions, ledger, supervision decisions — excluding bookkeeping
  /// that legitimately differs across a crash/resume (checkpoints_written,
  /// resumed_from_checkpoint, profiler occupancy samples, feedback timing
  /// diagnostics). Two runs that recovered the same durable state produce
  /// equal fingerprints; the crash-point sweep asserts exactly that.
  [[nodiscard]] util::Bytes science_fingerprint() const;
};

class InSituPlane;

class Campaign {
 public:
  explicit Campaign(CampaignConfig config);
  ~Campaign();  // out of line: InSituPlane is incomplete here

  /// Runs the whole schedule; deterministic for a given config.
  CampaignResult run();

 private:
  struct LogicalSim {
    bool is_aa = false;
    double target = 0;    // us (CG) or ns (AA)
    double progress = 0;
    double rate_per_s = 0;
    double size = 0;      // particles / atoms
  };

  void run_one(int nodes, double walltime_h, CampaignResult& result,
               WorkflowManager::CarryOver& carry, double& campaign_hours_done,
               double campaign_hours_total);
  LogicalSim& logical_sim(std::uint64_t payload, bool is_aa, bool degraded);

  /// Mid-run crash recovery: the state a periodic checkpoint restores into
  /// the first run_one() of a resumed campaign.
  struct ResumeState {
    double time_into_run_s = 0;  // virtual seconds into the interrupted run
    util::Bytes wm_blob;         // WorkflowManager::serialize() payload
    // Payloads in flight at checkpoint time, resumed ahead of fresh work.
    std::vector<std::uint64_t> inflight_cg, inflight_aa;
    std::vector<std::uint64_t> inflight_cg_setup, inflight_aa_setup;
  };

  /// Loads config_.checkpoint_path if present, restoring campaign-level
  /// state and `result` accumulators. Returns the interrupted flat run index
  /// (nullopt = start fresh).
  std::optional<std::uint64_t> try_load_checkpoint(CampaignResult& result);

  CampaignConfig config_;
  util::Rng rng_;
  std::unique_ptr<InSituPlane> insitu_;
  std::unordered_map<std::uint64_t, LogicalSim> sims_;
  std::unique_ptr<PatchSelector> patch_selector_;
  std::unique_ptr<FrameSelector> frame_selector_;
  std::vector<std::uint64_t> carry_resume_cg_;
  std::vector<std::uint64_t> carry_resume_aa_;
  std::uint64_t next_patch_id_ = 1;
  std::uint64_t next_frame_id_ = 1;
  std::uint64_t flat_run_ = 0;        // index into the flattened run schedule
  double resume_base_s_ = 0;          // checkpointed offset into current run
  std::optional<ResumeState> resume_; // consumed by the first resumed run
};

}  // namespace mummi::wm
