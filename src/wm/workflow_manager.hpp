// The Workflow Manager (paper Sec. 4.4).
//
// "MuMMI is coordinated by a configurable Workflow Manager (WM).
// Generically, the role of the WM is to couple the scales by consuming
// relevant data, supporting ML-based selection, spawning the corresponding
// simulations, and facilitating a feedback loop ... The WM is also
// responsible for tracking all running jobs, managing data, profiling, and
// several other tasks."
//
// Tasks mapped to this class:
//   Task 1 (process coarse data)  -> ingest_patches()/ingest_frames(); the
//     caller parses snapshots/trajectories (PatchCreator, CgAnalysis) or a
//     synthetic source at campaign scale.
//   Task 2 (ML selection)         -> the PatchSelector/FrameSelector, consulted
//     inside maintain() when new setups are needed.
//   Task 3 (job management)       -> maintain(): scans buffers and capacity,
//     replaces finished/failed jobs, keeps "sets of CG and AA simulations
//     prepared in anticipation" of free GPUs.
//   Task 4 (feedback)             -> FeedbackManagers registered by the app,
//     run by run_feedback().
#pragma once

#include <deque>
#include <functional>

#include "feedback/feedback_manager.hpp"
#include "supervise/supervisor.hpp"
#include "wm/job_tracker.hpp"
#include "wm/maestro.hpp"
#include "wm/selectors.hpp"

namespace mummi::wm {

struct WmConfig {
  // Job types (tracker keys). Any may be empty to disable that stage.
  std::string cg_setup_type = "cg_setup";
  std::string cg_sim_type = "cg_sim";
  std::string aa_setup_type = "aa_setup";
  std::string aa_sim_type = "aa_sim";

  /// Fraction of total GPUs reserved for CG simulations (paper: 60-80%);
  /// the remainder goes to AA.
  double gpu_frac_cg = 0.78;

  /// Target number of prepared-and-waiting simulations per scale — "sets of
  /// CG and AA simulations are kept prepared (setup completed) in
  /// anticipation ... a trade-off between readiness ... and simulating stale
  /// configurations."
  int cg_ready_target = 60;
  int aa_ready_target = 30;

  /// Poison-work quarantine: strikes (failures/hangs, or node kills on that
  /// many distinct nodes) before a payload is never resubmitted. <= 0
  /// disables quarantining.
  int quarantine_strikes = 3;

  /// Node-probation canary probes (supervision plane). The canary type has
  /// no tracker; its completion is interpreted by the Supervisor.
  std::string canary_type = "canary";
  double canary_duration_s = 60.0;
};

class WorkflowManager : public supervise::WorkloadControl {
 public:
  using SimFinishedFn = std::function<void(const sched::Job&)>;

  WorkflowManager(WmConfig config, Maestro& maestro, TrackerSet& trackers,
                  PatchSelector& patch_selector, FrameSelector& frame_selector);

  /// Task 1 entry points. The PointStore overloads are the bulk path —
  /// encoders emit straight into flat stores, no per-point allocations.
  void ingest_patches(int queue, const std::vector<ml::HDPoint>& points);
  void ingest_patches(int queue, const ml::PointStore& points);
  void ingest_frames(const std::vector<ml::HDPoint>& points);
  void ingest_frames(const ml::PointStore& points);

  /// Task 3: refills the machine. Submits at most `submit_budget` jobs (the
  /// WM's submission throttle); returns how many were submitted.
  int maintain(int submit_budget);

  /// Task 4: registered feedback managers, executed in order.
  void add_feedback(fb::FeedbackManager* manager) {
    feedback_.push_back(manager);
  }
  std::vector<fb::IterationStats> run_feedback();

  /// Wire this to Maestro::on_finish (done automatically in the ctor).
  void handle_finish(const sched::Job& job);

  /// Fired when a *simulation* job (cg_sim/aa_sim) reaches a terminal state;
  /// the application records trajectory lengths, persists results, etc.
  void on_sim_finished(SimFinishedFn fn) { sim_finished_ = std::move(fn); }

  // --- introspection ------------------------------------------------------
  [[nodiscard]] int running(const std::string& type) const;
  /// Ascending unique payloads of currently *running* jobs of `type`, with an
  /// optional exclusion predicate (e.g. the campaign filters hung jobs). A
  /// payload with both an original and a speculative twin appears once. The
  /// in-situ analysis fan-out iterates this list and folds its results in
  /// this order, so the ordering is part of the determinism contract.
  [[nodiscard]] std::vector<std::uint64_t> running_payloads(
      const std::string& type,
      const std::function<bool(const sched::Job&)>& exclude = nullptr) const;
  [[nodiscard]] int pending(const std::string& type) const;
  [[nodiscard]] std::size_t cg_ready() const { return ready_cg_.size(); }
  [[nodiscard]] std::size_t aa_ready() const { return ready_aa_.size(); }
  [[nodiscard]] PatchSelector& patch_selector() { return patch_selector_; }
  [[nodiscard]] FrameSelector& frame_selector() { return frame_selector_; }

  /// GPU capacity split for the current machine.
  [[nodiscard]] int cg_capacity() const;
  [[nodiscard]] int aa_capacity() const;

  /// Re-queues a setup whose job was interrupted (end of allocation); these
  /// drain before new selections are made.
  void requeue_setup(const std::string& type, std::uint64_t payload);

  // --- supervision plane (supervise::WorkloadControl) ---------------------
  /// Resubmits a watchdog-cancelled hung payload. Hang retries do not consume
  /// max_restarts — the quarantine ledger bounds repeat offenders instead.
  void resubmit_hung(const sched::Job& job) override;
  /// Submits a speculative twin of a straggling job (attrs mark the pairing).
  bool launch_speculative(const sched::Job& job) override;
  /// Degraded mode: 0 = full workload, 1 = shed aa, 2 = also stop new cg
  /// setups. Raising the level cancels pending shed-type jobs and requeues
  /// their payloads; maintain() honors the level until it drops.
  void set_shed_level(int level, double now) override;
  /// Canary probe pinned to `node` (config_.canary_type).
  bool submit_canary(int node) override;
  [[nodiscard]] supervise::QuarantineLedger& quarantine() override {
    return quarantine_;
  }
  [[nodiscard]] const supervise::QuarantineLedger& quarantine_ledger() const {
    return quarantine_;
  }
  [[nodiscard]] int shed_level() const { return shed_level_; }
  /// Supervisor hook: when set and true for a failed job, handle_finish skips
  /// resubmission (a live speculative twin is already the retry).
  void set_resubmit_veto(std::function<bool(const sched::Job&)> fn) {
    resubmit_veto_ = std::move(fn);
  }

  /// Carry-over state between allocations: ready buffers and interrupted
  /// setups survive runs ("MuMMI can seamlessly (re)start runs at different
  /// computational scales").
  struct CarryOver {
    std::deque<std::uint64_t> ready_cg;
    std::deque<std::uint64_t> ready_aa;
    std::deque<std::uint64_t> requeued_cg_setup;
    std::deque<std::uint64_t> requeued_aa_setup;
    util::Bytes quarantine;  // poison ledger survives allocations
  };
  [[nodiscard]] CarryOver carry_over() const;
  void restore_carry_over(const CarryOver& state);

  /// Full WM state to/from bytes: buffers, requeues, restart counts and both
  /// selectors — everything needed to "be restored completely after any such
  /// crash" (Sec. 4.4). Pair with util::CheckpointFile for armored disk I/O.
  [[nodiscard]] util::Bytes serialize() const;
  void restore(const util::Bytes& bytes);

 private:
  void bump(std::unordered_map<std::string, int>& map, const std::string& key,
            int delta);
  int submit_via_tracker(const std::string& type, std::uint64_t payload);
  /// Cancels pending jobs of `type` (ascending JobId) and requeues payloads.
  void shed_pending(const std::string& type);

  WmConfig config_;
  Maestro& maestro_;
  TrackerSet& trackers_;
  PatchSelector& patch_selector_;
  FrameSelector& frame_selector_;
  std::vector<fb::FeedbackManager*> feedback_;
  SimFinishedFn sim_finished_;

  std::deque<std::uint64_t> ready_cg_;  // payloads with setup complete
  std::deque<std::uint64_t> ready_aa_;
  std::deque<std::uint64_t> requeued_cg_setup_;
  std::deque<std::uint64_t> requeued_aa_setup_;
  std::unordered_map<std::string, int> running_;
  std::unordered_map<std::string, int> pending_;
  // Logical restart counts per payload (trackers bound resubmissions).
  std::unordered_map<std::uint64_t, int> restarts_;

  supervise::QuarantineLedger quarantine_;
  int shed_level_ = 0;
  std::function<bool(const sched::Job&)> resubmit_veto_;
};

}  // namespace mummi::wm
