#include "wm/perf_model.hpp"

#include <algorithm>
#include <cmath>

namespace mummi::wm {

double PerfModel::continuum_ms_per_day(int cores) const {
  const double ratio =
      static_cast<double>(cores) / static_cast<double>(continuum_ref_cores);
  return continuum_ms_per_day_ref *
         std::pow(ratio, continuum_scaling_exponent);
}

PerfModel::CgSample PerfModel::sample_cg(util::Rng& rng, bool degraded) const {
  CgSample s;
  s.particles = std::max(1.0, rng.normal(cg_ref_particles, cg_size_sigma));
  // Rate scales inversely with system size around the reference benchmark.
  double rate = cg_us_per_day * (cg_ref_particles / s.particles);
  rate *= 1.0 + cg_perf_jitter * rng.normal();
  if (degraded) rate *= cg_degraded_factor;
  if (rng.uniform() < cg_slow_tail_prob)
    rate *= rng.uniform(cg_slow_tail_factor, 0.95);
  s.us_per_day = std::max(0.05, rate);
  return s;
}

PerfModel::AaSample PerfModel::sample_aa(util::Rng& rng) const {
  AaSample s;
  s.atoms = std::max(1.0, rng.normal(aa_ref_atoms, aa_size_sigma));
  double rate = aa_ns_per_day * (aa_ref_atoms / s.atoms);
  rate *= 1.0 + aa_perf_jitter * rng.normal();
  if (rng.uniform() < aa_slow_tail_prob)
    rate *= rng.uniform(aa_slow_tail_factor, 0.97);
  s.ns_per_day = std::max(1.0, rate);
  return s;
}

double PerfModel::sample_createsim_seconds(util::Rng& rng) const {
  return createsim_mean_s *
         rng.lognormal(-0.5 * createsim_sigma * createsim_sigma,
                       createsim_sigma);
}

double PerfModel::sample_backmap_seconds(util::Rng& rng) const {
  return backmap_mean_s *
         rng.lognormal(-0.5 * backmap_sigma * backmap_sigma, backmap_sigma);
}

}  // namespace mummi::wm
