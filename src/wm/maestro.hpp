// Maestro: the scheduler-agnostic submission/monitoring adapter.
//
// Paper Sec. 4.3: "the MuMMI workflow interfaces with Maestro, which provides
// a consistent API to schedule and monitor jobs. At the back-end, Maestro can
// interface with different job schedulers. By absorbing the changes and
// peculiarities of different job schedulers, Maestro allows MuMMI to be
// agnostic to the specific choice of scheduler."
//
// Two backends are provided:
//   - DirectBackend: submissions reach the fluxlite Scheduler immediately and
//     pump() runs inline (examples, tests, thread-executed runs);
//   - QueuedBackend: submissions flow through the event-driven QueueManager
//     with Q/R service times (campaign simulation, Fig. 6).
#pragma once

#include <functional>
#include <memory>

#include "sched/executor.hpp"
#include "sched/queue_manager.hpp"
#include "sched/scheduler.hpp"

namespace mummi::wm {

class Maestro {
 public:
  using JobCallback = sched::Scheduler::JobCallback;

  virtual ~Maestro() = default;

  /// Hands a job to the underlying scheduler.
  virtual void submit(sched::JobSpec spec) = 0;

  /// Cancels a job if still cancellable.
  virtual bool cancel(sched::JobId id) = 0;

  /// Gives the backend a chance to place queued work (no-op for event-driven
  /// backends, which self-schedule).
  virtual void poll() = 0;

  [[nodiscard]] virtual sched::Scheduler& scheduler() = 0;

  /// Monitoring: fires when jobs start/finish (any backend).
  void on_start(JobCallback fn) { scheduler().on_start(std::move(fn)); }
  void on_finish(JobCallback fn) { scheduler().on_finish(std::move(fn)); }
};

/// Immediate placement backend.
class DirectBackend final : public Maestro {
 public:
  explicit DirectBackend(sched::Scheduler& scheduler) : scheduler_(scheduler) {}

  void submit(sched::JobSpec spec) override {
    scheduler_.submit(std::move(spec));
    scheduler_.pump();
  }
  bool cancel(sched::JobId id) override { return scheduler_.cancel(id); }
  void poll() override { scheduler_.pump(); }
  [[nodiscard]] sched::Scheduler& scheduler() override { return scheduler_; }

 private:
  sched::Scheduler& scheduler_;
};

/// Event-driven backend with Q/R service-time modeling.
class QueuedBackend final : public Maestro {
 public:
  QueuedBackend(sched::Scheduler& scheduler, sched::QueueManager& queue)
      : scheduler_(scheduler), queue_(queue) {}

  void submit(sched::JobSpec spec) override { queue_.submit(std::move(spec)); }
  bool cancel(sched::JobId id) override { return scheduler_.cancel(id); }
  void poll() override { queue_.kick(); }
  [[nodiscard]] sched::Scheduler& scheduler() override { return scheduler_; }

 private:
  sched::Scheduler& scheduler_;
  sched::QueueManager& queue_;
};

}  // namespace mummi::wm
