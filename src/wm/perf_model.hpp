// Calibrated performance and data-rate models (paper Sec. 4.1).
//
// The campaign simulator drives the *real* coordination code; only job
// durations, simulation throughputs and data volumes come from these models,
// each calibrated to the numbers the paper reports:
//   - GridSim2D: ~0.96 ms/day at 3600 cores; snapshots every 1 us of sim
//     time = every ~90 s of wall time, ~374 MB each;
//   - ddcMD CG: ~1.04 us/day/GPU at ~140k particles, 4.6 MB frames every
//     41.5 s plus 17 KB analysis output; ~20% degradation episode (the MPI
//     mis-compile) for the first third of the campaign;
//   - AMBER AA: ~13.98 ns/day/GPU at ~1.575M atoms, 18 MB frames every
//     ~10.3 min;
//   - createsim: ~1.5 h on 24 cores; backmapping: ~2 h on 18 cores
//     (2.9 GB local + 0.5 GB GPFS per run).
#pragma once

#include <cstdint>

#include "sched/job.hpp"
#include "util/rng.hpp"

namespace mummi::wm {

struct PerfModel {
  // Continuum.
  double continuum_ms_per_day_ref = 0.96;  // at ref_cores
  int continuum_ref_cores = 3600;
  double continuum_scaling_exponent = 0.9;  // sublinear strong scaling

  // CG (ddcMD + Martini on one V100).
  double cg_us_per_day = 1.04;
  double cg_ref_particles = 140000;
  double cg_size_sigma = 1200;       // particle-count spread
  double cg_perf_jitter = 0.02;      // relative per-sim noise
  double cg_slow_tail_prob = 0.03;   // slow-node outliers (Fig. 4 min whisker)
  double cg_slow_tail_factor = 0.75;
  double cg_degraded_factor = 0.80;  // the incompatible-MPI episode

  // AA (AMBER on one V100).
  double aa_ns_per_day = 13.98;
  double aa_ref_atoms = 1.575e6;
  double aa_size_sigma = 12000;
  double aa_perf_jitter = 0.015;
  double aa_slow_tail_prob = 0.03;
  double aa_slow_tail_factor = 0.85;

  // Setup jobs.
  double createsim_mean_s = 5400;   // ~1.5 h
  double createsim_sigma = 0.25;    // lognormal sigma
  double backmap_mean_s = 7200;     // ~2 h
  double backmap_sigma = 0.25;

  /// Continuum throughput (ms of model time per day) on `cores` CPU cores.
  [[nodiscard]] double continuum_ms_per_day(int cores) const;

  /// Draws a CG system size (particles) and its achieved rate in us/s.
  /// `degraded` applies the MPI-episode factor.
  struct CgSample {
    double particles;
    double us_per_day;
    [[nodiscard]] double us_per_second() const { return us_per_day / 86400.0; }
  };
  [[nodiscard]] CgSample sample_cg(util::Rng& rng, bool degraded) const;

  struct AaSample {
    double atoms;
    double ns_per_day;
    [[nodiscard]] double ns_per_second() const { return ns_per_day / 86400.0; }
  };
  [[nodiscard]] AaSample sample_aa(util::Rng& rng) const;

  [[nodiscard]] double sample_createsim_seconds(util::Rng& rng) const;
  [[nodiscard]] double sample_backmap_seconds(util::Rng& rng) const;
};

/// Data production rates for the campaign ledger (bytes and file counts).
struct RateModel {
  double continuum_snapshot_bytes = 374e6;
  double continuum_snapshot_interval_s = 90;
  double patch_bytes = 70e3;
  double patch_creator_seconds_per_snapshot = 14;

  double cg_frame_bytes = 4.6e6;
  double cg_frame_interval_s = 41.5;
  double cg_analysis_bytes = 17e3;
  double frame_id_bytes = 850;

  double aa_frame_bytes = 18e6;
  double aa_frame_interval_s = 618;  // 10.3 min

  double backmap_local_bytes = 2.9e9;
  double backmap_gpfs_bytes = 0.5e9;
};

/// Running totals of campaign data (Sec. 5.2: "several TBs of new data per
/// day and over a billion files in total"). Trajectory frames live on
/// node-local RAM disk ("a conscious mix of the shared filesystem and local
/// on-node RAM disk"); the persisted categories hit GPFS.
struct DataLedger {
  double bytes_continuum = 0;    // persisted
  double bytes_patches = 0;      // persisted
  double bytes_cg_frames = 0;    // RAM disk
  double bytes_cg_analysis = 0;  // persisted
  double bytes_aa_frames = 0;    // RAM disk
  double bytes_backmap = 0;      // mostly RAM disk; 0.5/3.4 GB persisted

  std::uint64_t files_total = 0;

  [[nodiscard]] double bytes_total() const {
    return bytes_continuum + bytes_patches + bytes_cg_frames +
           bytes_cg_analysis + bytes_aa_frames + bytes_backmap;
  }
  /// Fraction of trajectory frames archived from RAM disk to GPFS tar
  /// archives for retention.
  static constexpr double kFrameArchiveFraction = 0.10;

  [[nodiscard]] double bytes_persisted() const {
    return bytes_continuum + bytes_patches + bytes_cg_analysis +
           bytes_backmap * (0.5 / 3.4) +
           kFrameArchiveFraction * (bytes_cg_frames + bytes_aa_frames);
  }
};

}  // namespace mummi::wm
