// The Patch Selector and Frame Selector (paper Task 2), thread-safe.
//
// "A custom, abstract API was developed using the DynIm framework that was
// extended by both the Patch Selector and the (CG) Frame Selector ... To
// support the application need, we incorporate five in-memory queues in the
// Patch Selector for sampling different protein configurations. For
// computational viability, each queue is capped at 35,000 patches."
//
// Thread safety matters because selectors are shared between the ML-selection
// task and the feedback task ("thread-safe objects are used with a mix of
// blocking and nonblocking locks").
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "continuum/gridsim2d.hpp"
#include "ml/binned_sampler.hpp"
#include "ml/fps_sampler.hpp"

namespace mummi::wm {

/// A selected patch candidate with its originating queue.
struct PatchSelection {
  ml::HDPoint point;
  int queue = 0;
};

class PatchSelector {
 public:
  /// `n_queues` farthest-point queues (paper: 5; one per protein
  /// configuration class), each capped at `capacity` candidates.
  PatchSelector(int dim, int n_queues, std::size_t capacity);

  /// Ingests encoded patches; `queue_of(id)` routing is supplied per point.
  void add(int queue, const std::vector<ml::HDPoint>& points);
  /// Flat-store ingest — the allocation-free path encoders emit into.
  void add(int queue, const ml::PointStore& points);

  /// Selects up to k candidates round-robin across queues, most novel first
  /// within each queue. Batched: the round-robin pick order is computed
  /// up-front from per-queue candidate counts, then each queue serves its
  /// share in ONE select call — same sequence as k select(1) round-robin
  /// steps, minus the per-pick rank-refresh overhead.
  [[nodiscard]] std::vector<PatchSelection> select(std::size_t k);

  /// Forces rank refresh on all queues (the 3-4 minute operation the paper
  /// times); returns candidates ranked.
  std::size_t update_ranks();

  [[nodiscard]] std::size_t candidate_count() const;
  [[nodiscard]] std::size_t selected_count() const;
  [[nodiscard]] int n_queues() const { return static_cast<int>(queues_.size()); }

  [[nodiscard]] util::Bytes serialize() const;
  void restore(const util::Bytes& bytes);

  /// Disables event-history recording (campaign-scale memory relief).
  void set_history_enabled(bool enabled);

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ml::FpsSampler>> queues_;
  int next_queue_ = 0;
  int dim_;
  std::size_t capacity_;
};

class FrameSelector {
 public:
  /// 3-D binned sampler over (tilt [deg], rotation [deg], separation [nm]).
  FrameSelector(double importance, std::uint64_t seed);

  void add(const std::vector<ml::HDPoint>& points);
  void add(const ml::PointStore& points);
  [[nodiscard]] std::vector<ml::HDPoint> select(std::size_t k);

  [[nodiscard]] std::size_t candidate_count() const;
  [[nodiscard]] std::size_t selected_count() const;

  [[nodiscard]] util::Bytes serialize() const;
  void restore(const util::Bytes& bytes);

  /// Disables event-history recording (campaign-scale memory relief).
  void set_history_enabled(bool enabled);

 private:
  static std::vector<std::vector<float>> default_edges();

  mutable std::mutex mutex_;
  std::unique_ptr<ml::BinnedSampler> sampler_;
};

}  // namespace mummi::wm
