// Job trackers (paper Sec. 4.3).
//
// "To support handling arbitrary types of jobs, we provide a generic and
// abstract Job Tracker that can be customized using a combination of
// inherited classes and configuration files." A tracker owns one job type:
// its resource shape, duration expectations, restart policy and counters.
// The WorkflowManager consults trackers for specs and failure handling.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "sched/job.hpp"
#include "util/config.hpp"

namespace mummi::wm {

struct JobTypeConfig {
  std::string type;          // e.g. "cg_setup", "cg_sim", "aa_setup", "aa_sim"
  sched::Request request;    // resource shape per job
  int max_restarts = 2;      // resubmissions after failure
  double mean_duration = 0;  // seconds (executor hint)
  double sigma_duration = 0; // lognormal spread of duration
};

class JobTracker {
 public:
  explicit JobTracker(JobTypeConfig config) : config_(std::move(config)) {}
  virtual ~JobTracker() = default;

  [[nodiscard]] const JobTypeConfig& config() const { return config_; }
  [[nodiscard]] const std::string& type() const { return config_.type; }

  /// Builds a submittable spec for a logical work item.
  [[nodiscard]] virtual sched::JobSpec make_spec(std::uint64_t payload) const;

  /// Policy hook: should a finished job be resubmitted? Default: failed jobs
  /// retry up to max_restarts; node-crash kills (job.killed_by_node) always
  /// retry without consuming that budget.
  [[nodiscard]] virtual bool should_resubmit(const sched::Job& job) const;

  /// Counters the WM maintains through notify(). `failed` counts genuine
  /// payload failures; `killed_by_fault` counts node-caused deaths (the two
  /// are disjoint — attribution decides restart-budget charging).
  struct Counters {
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t failed = 0;
    std::size_t restarted = 0;
    std::size_t killed_by_fault = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  void note_submitted() { ++counters_.submitted; }
  void note_completed() { ++counters_.completed; }
  void note_failed() { ++counters_.failed; }
  void note_restarted() { ++counters_.restarted; }
  void note_killed_by_fault() { ++counters_.killed_by_fault; }

  /// Builds a tracker from configuration, e.g.:
  ///   [job.cg_sim]
  ///   cores = 3
  ///   gpus = 1
  ///   nslots = 1
  ///   max_restarts = 2
  ///   mean_duration = 86400
  static JobTypeConfig config_from(const util::Config& cfg,
                                   const std::string& type);

 protected:
  JobTypeConfig config_;
  Counters counters_;
};

/// Registry keyed by job type.
class TrackerSet {
 public:
  void add(std::unique_ptr<JobTracker> tracker);
  [[nodiscard]] JobTracker& tracker(const std::string& type);
  [[nodiscard]] const JobTracker& tracker(const std::string& type) const;
  [[nodiscard]] bool has(const std::string& type) const;
  [[nodiscard]] std::vector<std::string> types() const;

 private:
  std::map<std::string, std::unique_ptr<JobTracker>> trackers_;
};

}  // namespace mummi::wm
