#include "wm/job_tracker.hpp"

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace mummi::wm {

sched::JobSpec JobTracker::make_spec(std::uint64_t payload) const {
  sched::JobSpec spec;
  spec.type = config_.type;
  spec.name = util::format("%s-%llu", config_.type.c_str(),
                           static_cast<unsigned long long>(payload));
  spec.request = config_.request;
  spec.est_duration = config_.mean_duration;
  spec.payload = payload;
  return spec;
}

bool JobTracker::should_resubmit(const sched::Job& job) const {
  if (job.state != sched::JobState::kFailed) return false;
  // Restart-budget attribution: a job its node killed did nothing wrong —
  // always relocate it, without charging the payload's max_restarts budget.
  // Only genuine payload failures spend retries.
  if (job.killed_by_node) return true;
  return job.restarts < config_.max_restarts;
}

JobTypeConfig JobTracker::config_from(const util::Config& cfg,
                                      const std::string& type) {
  const std::string prefix = "job." + type + ".";
  JobTypeConfig out;
  out.type = type;
  out.request.slot.cores = static_cast<int>(cfg.get_int(prefix + "cores", 1));
  out.request.slot.gpus = static_cast<int>(cfg.get_int(prefix + "gpus", 0));
  out.request.nslots = static_cast<int>(cfg.get_int(prefix + "nslots", 1));
  out.request.one_slot_per_node = cfg.get_bool(prefix + "one_slot_per_node", false);
  out.max_restarts = static_cast<int>(cfg.get_int(prefix + "max_restarts", 2));
  out.mean_duration = cfg.get_double(prefix + "mean_duration", 0.0);
  out.sigma_duration = cfg.get_double(prefix + "sigma_duration", 0.0);
  return out;
}

void TrackerSet::add(std::unique_ptr<JobTracker> tracker) {
  MUMMI_CHECK(tracker != nullptr);
  const std::string type = tracker->type();
  MUMMI_CHECK_MSG(trackers_.emplace(type, std::move(tracker)).second,
                  "duplicate tracker for type: " + type);
}

JobTracker& TrackerSet::tracker(const std::string& type) {
  auto it = trackers_.find(type);
  MUMMI_CHECK_MSG(it != trackers_.end(), "no tracker for type: " + type);
  return *it->second;
}

const JobTracker& TrackerSet::tracker(const std::string& type) const {
  auto it = trackers_.find(type);
  MUMMI_CHECK_MSG(it != trackers_.end(), "no tracker for type: " + type);
  return *it->second;
}

bool TrackerSet::has(const std::string& type) const {
  return trackers_.count(type) > 0;
}

std::vector<std::string> TrackerSet::types() const {
  std::vector<std::string> out;
  out.reserve(trackers_.size());
  for (const auto& [type, _] : trackers_) out.push_back(type);
  return out;
}

}  // namespace mummi::wm
