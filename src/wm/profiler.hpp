// Occupancy profiler (paper Sec. 5.2, Fig. 5).
//
// "MuMMI's profiling mechanism gathers the number of running and pending
// jobs every few minutes (for most of this campaign, profiling frequency was
// 10 min). Given the resource requirement for each job type, it is then
// straightforward to gather the number of occupied and unoccupied resources."
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "sched/scheduler.hpp"
#include "util/histogram.hpp"

namespace mummi::wm {

/// One profile event: occupancy fractions and per-type job counts.
struct ProfileEvent {
  double time = 0;
  double gpu_occupancy = 0;  // fraction in [0, 1]
  double cpu_occupancy = 0;
  std::unordered_map<std::string, int> running_by_type;
  std::unordered_map<std::string, int> pending_by_type;
};

class Profiler {
 public:
  /// Samples the scheduler now.
  void sample(double now, const sched::Scheduler& scheduler);

  [[nodiscard]] const std::vector<ProfileEvent>& events() const {
    return events_;
  }

  /// Fraction of profile events with GPU occupancy at or above `threshold` —
  /// the paper's headline "98% GPU occupancy for more than 83% of the time".
  [[nodiscard]] double fraction_gpu_at_least(double threshold) const;
  [[nodiscard]] double mean_gpu_occupancy() const;
  [[nodiscard]] double median_gpu_occupancy() const;
  [[nodiscard]] double mean_cpu_occupancy() const;
  [[nodiscard]] double median_cpu_occupancy() const;

  /// Occupancy histogram over [0, 100]% with `bins` bins (Fig. 5).
  [[nodiscard]] util::Histogram gpu_histogram(std::size_t bins = 20) const;
  [[nodiscard]] util::Histogram cpu_histogram(std::size_t bins = 20) const;

  void clear() { events_.clear(); }

 private:
  std::vector<ProfileEvent> events_;
};

}  // namespace mummi::wm
