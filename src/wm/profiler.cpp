#include "wm/profiler.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/stats.hpp"

namespace mummi::wm {

void Profiler::sample(double now, const sched::Scheduler& scheduler) {
  ProfileEvent event;
  event.time = now;
  const auto& graph = scheduler.graph();
  const auto& spec = graph.spec();
  const double total_gpus =
      static_cast<double>(spec.nodes) * spec.gpus_per_node;
  const double total_cores =
      static_cast<double>(spec.nodes) * spec.cores_per_node();
  event.gpu_occupancy =
      total_gpus > 0 ? graph.used_gpus() / total_gpus : 0.0;
  event.cpu_occupancy =
      total_cores > 0 ? graph.used_cores() / total_cores : 0.0;
  event.running_by_type = scheduler.running_by_type();
  event.pending_by_type = scheduler.pending_by_type();
  // Mirror every sample into the registry so telemetry snapshots carry the
  // live occupancy signal. Fractions are observed in event order, so the
  // registry histogram's mean is the *same* double summation as
  // mean_gpu_occupancy() — the two agree bit-for-bit, not just approximately.
  obs::gauge("wm.gpu_occupancy").set(event.gpu_occupancy);
  obs::gauge("wm.cpu_occupancy").set(event.cpu_occupancy);
  obs::histogram("wm.occupancy.gpu", 0.0, 1.0000001, 20)
      .observe(event.gpu_occupancy);
  obs::histogram("wm.occupancy.cpu", 0.0, 1.0000001, 20)
      .observe(event.cpu_occupancy);
  obs::counter("wm.profile_events").inc();
  events_.push_back(std::move(event));
}

double Profiler::fraction_gpu_at_least(double threshold) const {
  if (events_.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& e : events_)
    if (e.gpu_occupancy >= threshold) ++n;
  return static_cast<double>(n) / static_cast<double>(events_.size());
}

namespace {
std::vector<double> collect(const std::vector<ProfileEvent>& events,
                            bool gpu) {
  std::vector<double> xs;
  xs.reserve(events.size());
  for (const auto& e : events)
    xs.push_back(gpu ? e.gpu_occupancy : e.cpu_occupancy);
  return xs;
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}
}  // namespace

double Profiler::mean_gpu_occupancy() const {
  return mean_of(collect(events_, true));
}

double Profiler::median_gpu_occupancy() const {
  return util::percentile(collect(events_, true), 50.0);
}

double Profiler::mean_cpu_occupancy() const {
  return mean_of(collect(events_, false));
}

double Profiler::median_cpu_occupancy() const {
  return util::percentile(collect(events_, false), 50.0);
}

util::Histogram Profiler::gpu_histogram(std::size_t bins) const {
  util::Histogram h(0.0, 100.0001, bins);
  for (const auto& e : events_) h.add(e.gpu_occupancy * 100.0);
  return h;
}

util::Histogram Profiler::cpu_histogram(std::size_t bins) const {
  util::Histogram h(0.0, 100.0001, bins);
  for (const auto& e : events_) h.add(e.cpu_occupancy * 100.0);
  return h;
}

}  // namespace mummi::wm
