#include "wm/campaign.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/log.hpp"

namespace mummi::wm {

namespace {
constexpr std::uint64_t kFrameIdBase = 1ULL << 40;  // keep ids disjoint

/// Files written per CG trajectory frame (frame + analysis sidecars);
/// calibrated so the full campaign lands near the paper's 1.03B files.
constexpr double kFilesPerCgFrame = 5.0;
}  // namespace

Campaign::Campaign(CampaignConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  next_frame_id_ = kFrameIdBase;
}

Campaign::LogicalSim& Campaign::logical_sim(std::uint64_t payload, bool is_aa,
                                            bool degraded) {
  auto it = sims_.find(payload);
  if (it != sims_.end()) return it->second;
  LogicalSim ls;
  ls.is_aa = is_aa;
  if (is_aa) {
    const auto sample = config_.perf.sample_aa(rng_);
    ls.rate_per_s = sample.ns_per_second();
    ls.size = sample.atoms;
    ls.target = rng_.uniform(config_.aa_min_ns, config_.aa_max_ns);
  } else {
    const auto sample = config_.perf.sample_cg(rng_, degraded);
    ls.rate_per_s = sample.us_per_second();
    ls.size = sample.particles;
    ls.target = std::min(
        config_.cg_max_us,
        config_.cg_min_us +
            rng_.exponential(1.0 / (config_.cg_mean_us - config_.cg_min_us)));
  }
  return sims_.emplace(payload, ls).first->second;
}

void Campaign::run_one(int nodes, double walltime_h, CampaignResult& result,
                       WorkflowManager::CarryOver& carry,
                       double& campaign_hours_done,
                       double campaign_hours_total) {
  const double walltime_s = walltime_h * 3600.0;
  const double t_offset = campaign_hours_done * 3600.0;

  event::SimEngine engine;
  sched::Scheduler scheduler(sched::ClusterSpec::summit(nodes),
                             config_.match_policy, engine.clock());
  sched::QueueManager queue(engine, scheduler, config_.queue);
  QueuedBackend maestro(scheduler, queue);

  // Job trackers for the four application job types + the continuum.
  TrackerSet trackers;
  auto add_tracker = [&](const std::string& type, int cores, int gpus,
                         double mean_s) {
    JobTypeConfig cfg;
    cfg.type = type;
    cfg.request.slot = sched::Slot{cores, gpus};
    cfg.mean_duration = mean_s;
    trackers.add(std::make_unique<JobTracker>(cfg));
  };
  add_tracker("cg_setup", 24, 0, config_.perf.createsim_mean_s);
  add_tracker("cg_sim", 3, 1, 86400);
  add_tracker("aa_setup", 18, 0, config_.perf.backmap_mean_s);
  add_tracker("aa_sim", 3, 1, 86400);

  const int continuum_nodes =
      std::max(1, std::min(config_.continuum_nodes_max, nodes / 4));
  const int continuum_cores =
      continuum_nodes * config_.continuum_cores_per_node;

  // --- per-run state -------------------------------------------------------
  bool continuum_running = false;
  const bool degraded =
      campaign_hours_done / campaign_hours_total <
      config_.degraded_until_fraction;

  // Selectors persist across the campaign.
  static_assert(cont::kNumProteinStates == 4, "queue routing assumes 4 states");

  // Campaign-level accounting must see completions *before* the WM resubmits
  // failed jobs (so remaining-duration models read fresh progress), hence it
  // registers first.
  auto finish_sim = [&](std::uint64_t payload, const LogicalSim& ls) {
    if (ls.is_aa) {
      result.aa_lengths_ns.push_back(ls.progress);
      result.aa_perf.emplace_back(ls.size, ls.rate_per_s * 86400.0);
      result.aa_total_ns += ls.progress;
    } else {
      result.cg_lengths_us.push_back(ls.progress);
      result.cg_perf.emplace_back(ls.size, ls.rate_per_s * 86400.0);
      result.cg_total_us += ls.progress;
    }
    (void)payload;
  };

  scheduler.on_finish([&](const sched::Job& job) {
    const auto& type = job.spec.type;
    if (type != "cg_sim" && type != "aa_sim") return;
    auto it = sims_.find(job.spec.payload);
    if (it == sims_.end()) return;
    LogicalSim& ls = it->second;
    if (job.state == sched::JobState::kCompleted) {
      ls.progress = ls.target;
      finish_sim(job.spec.payload, ls);
      sims_.erase(it);
    } else if (job.state == sched::JobState::kFailed) {
      // Crash partway: progress up to the failure point survives via the
      // 15-minute checkpoints; the WM resubmits (registered after us).
      const double elapsed = std::max(0.0, engine.now() - job.start_time);
      ls.progress = std::min(ls.target * 0.999,
                             ls.progress + ls.rate_per_s * elapsed *
                                               rng_.uniform());
    }
  });

  WorkflowManager wm(config_.wm, maestro, trackers, *patch_selector_,
                     *frame_selector_);
  wm.restore_carry_over(carry);
  wm.on_sim_finished([&](const sched::Job& job) {
    // Terminal failures (restarts exhausted): record the partial length.
    if (job.state != sched::JobState::kFailed) return;
    auto it = sims_.find(job.spec.payload);
    if (it == sims_.end()) return;
    finish_sim(job.spec.payload, it->second);
    sims_.erase(it);
  });

  // Executor: virtual-time job durations.
  sched::SimExecutor executor(engine, rng_.split(), config_.sim_failure_prob);
  executor.set_duration_model([&](const sched::Job& job) -> double {
    const auto& type = job.spec.type;
    if (type == "continuum") return 2.0 * walltime_s;  // cut at teardown
    if (type == "cg_setup")
      return config_.perf.sample_createsim_seconds(rng_);
    if (type == "aa_setup") return config_.perf.sample_backmap_seconds(rng_);
    if (type == "cg_sim" || type == "aa_sim") {
      LogicalSim& ls =
          logical_sim(job.spec.payload, type == "aa_sim", degraded);
      return std::max(1.0, (ls.target - ls.progress) / ls.rate_per_s);
    }
    return job.spec.est_duration;
  });
  scheduler.on_start([&](const sched::Job& job) {
    if (job.spec.type == "continuum") continuum_running = true;
    const sched::JobId id = job.id;
    executor.launch(job, [&, id](bool ok) {
      scheduler.complete(id, ok);
      maestro.poll();
    });
  });

  // The continuum job loads first.
  {
    sched::JobSpec cont_spec;
    cont_spec.name = "gridsim2d";
    cont_spec.type = "continuum";
    cont_spec.request.slot = sched::Slot{config_.continuum_cores_per_node, 0};
    cont_spec.request.nslots = continuum_nodes;
    cont_spec.request.one_slot_per_node = true;
    cont_spec.est_duration = 2.0 * walltime_s;
    maestro.submit(std::move(cont_spec));
  }

  // --- recurring coordination events --------------------------------------
  std::function<void()> snapshot_tick = [&] {
    if (continuum_running) {
      ++result.snapshots;
      result.continuum_total_us += 1.0;  // 1 us of model time per snapshot
      result.continuum_ms_per_day.push_back(
          config_.perf.continuum_ms_per_day(continuum_cores) *
          (1.0 + 0.03 * rng_.normal()));
      result.ledger.bytes_continuum += config_.rates.continuum_snapshot_bytes;
      result.ledger.files_total += 1;

      // Task 1: the Patch Creator cuts one patch per protein.
      std::vector<std::vector<ml::HDPoint>> by_queue(
          static_cast<std::size_t>(patch_selector_->n_queues()));
      for (int p = 0; p < config_.proteins_per_snapshot; ++p) {
        ml::HDPoint point;
        point.id = next_patch_id_++;
        point.coords.resize(9);
        // Synthetic metric-space embedding: smooth drift + noise, so novelty
        // structure exists for FPS to exploit.
        for (int d = 0; d < 9; ++d)
          point.coords[static_cast<std::size_t>(d)] = static_cast<float>(
              std::sin(0.01 * static_cast<double>(point.id) + d) +
              0.3 * rng_.normal());
        const auto state = rng_.uniform_index(cont::kNumProteinStates);
        const bool multi = rng_.uniform() < 0.2;  // multi-protein patches
        const std::size_t queue = multi ? 4 : state;
        by_queue[queue].push_back(std::move(point));
      }
      std::size_t created = 0;
      for (int q = 0; q < patch_selector_->n_queues(); ++q) {
        created += by_queue[static_cast<std::size_t>(q)].size();
        if (!by_queue[static_cast<std::size_t>(q)].empty())
          wm.ingest_patches(q, by_queue[static_cast<std::size_t>(q)]);
      }
      result.patches_created += created;
      result.ledger.bytes_patches +=
          static_cast<double>(created) * config_.rates.patch_bytes;
      result.ledger.files_total += created;
    }
    engine.schedule_after(config_.snapshot_interval_s, snapshot_tick);
  };
  engine.schedule_after(config_.snapshot_interval_s, snapshot_tick);

  std::function<void()> maintain_tick = [&] {
    // Task 2 ingestion from the distributed CG analyses: candidate frames at
    // the calibrated rate, in proportion to CG progress this interval.
    const int running_cg = wm.running("cg_sim");
    if (running_cg > 0 && config_.frame_candidate_scale > 0) {
      const double progress_us = static_cast<double>(running_cg) *
                                 (config_.perf.cg_us_per_day / 86400.0) *
                                 config_.maintain_interval_s;
      const double mean = progress_us * config_.frame_candidates_per_us *
                          config_.frame_candidate_scale;
      const auto n = static_cast<std::size_t>(
          std::max(0.0, rng_.normal(mean, std::sqrt(std::max(mean, 1.0)))));
      if (n > 0) {
        std::vector<ml::HDPoint> frames;
        frames.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          ml::HDPoint point;
          point.id = next_frame_id_++;
          const float tilt =
              static_cast<float>(90.0 * std::sqrt(rng_.uniform()));
          const float rot = static_cast<float>(rng_.uniform(0.0, 360.0));
          const float sep =
              static_cast<float>(std::min(3.0, rng_.exponential(1.0)));
          point.coords = {tilt, rot, sep};
          frames.push_back(std::move(point));
        }
        result.frame_candidates += n;
        result.ledger.files_total += n;  // the ~850 B id records
        wm.ingest_frames(frames);
      }
    }
    wm.maintain(config_.submit_budget_per_maintain);
    engine.schedule_after(config_.maintain_interval_s, maintain_tick);
  };
  engine.schedule_after(config_.maintain_interval_s, maintain_tick);

  std::function<void()> feedback_tick = [&] {
    const int running_cg = wm.running("cg_sim");
    const int running_aa = wm.running("aa_sim");
    // CG->continuum: RDF pushes arrive every ~3-4 min per simulation.
    if (running_cg > 0) {
      const double rdf_interval = 200.0;  // s per simulation between pushes
      const auto frames = static_cast<std::size_t>(
          running_cg * config_.feedback_interval_s / rdf_interval);
      fb::IterationStats stats;
      const auto costs = fb::FeedbackCosts::redis();
      stats.frames = frames;
      stats.collect_virtual =
          static_cast<double>(frames) *
          (costs.identify_per_key + costs.read_per_record);
      stats.process_virtual =
          static_cast<double>(frames) * costs.process_per_frame;
      stats.tag_virtual = static_cast<double>(frames) * costs.tag_per_record;
      result.cg2cont_stats.push_back(stats);
    }
    // AA->CG: fewer frames, ~2 s each through external calls, pooled.
    if (running_aa > 0) {
      const auto frames = static_cast<std::size_t>(
          running_aa * config_.feedback_interval_s /
          config_.rates.aa_frame_interval_s);
      fb::IterationStats stats;
      const auto costs = fb::FeedbackCosts::redis();
      stats.frames = frames;
      stats.collect_virtual =
          static_cast<double>(frames) *
          (costs.identify_per_key + costs.read_per_record);
      stats.process_virtual =
          60.0 + 2.0 * static_cast<double>(frames) / 6.0;
      stats.tag_virtual = static_cast<double>(frames) * costs.tag_per_record;
      result.aa2cg_stats.push_back(stats);
    }
    // Data ledger: trajectory frames written during this interval.
    if (running_cg > 0) {
      const double cg_frames = running_cg * config_.feedback_interval_s /
                               config_.rates.cg_frame_interval_s;
      result.ledger.bytes_cg_frames +=
          cg_frames * config_.rates.cg_frame_bytes;
      result.ledger.bytes_cg_analysis +=
          cg_frames * config_.rates.cg_analysis_bytes;
      result.ledger.files_total +=
          static_cast<std::uint64_t>(cg_frames * kFilesPerCgFrame);
    }
    if (running_aa > 0) {
      const double aa_frames = running_aa * config_.feedback_interval_s /
                               config_.rates.aa_frame_interval_s;
      result.ledger.bytes_aa_frames +=
          aa_frames * config_.rates.aa_frame_bytes;
      result.ledger.files_total += static_cast<std::uint64_t>(aa_frames);
    }
    engine.schedule_after(config_.feedback_interval_s, feedback_tick);
  };
  engine.schedule_after(config_.feedback_interval_s, feedback_tick);

  std::function<void()> profile_tick = [&] {
    result.profiler.sample(t_offset + engine.now(), scheduler);
    engine.schedule_after(config_.profile_interval_s, profile_tick);
  };
  engine.schedule_after(config_.profile_interval_s, profile_tick);

  // --- run to walltime ------------------------------------------------------
  engine.run_until(walltime_s);

  // --- teardown: checkpoint-and-carry --------------------------------------
  for (const sched::JobId id : scheduler.active_jobs()) {
    const sched::Job& job = scheduler.job(id);
    const auto& type = job.spec.type;
    const bool was_running = job.state == sched::JobState::kRunning;
    if (type == "cg_sim" || type == "aa_sim") {
      auto it = sims_.find(job.spec.payload);
      if (it != sims_.end() && was_running) {
        LogicalSim& ls = it->second;
        ls.progress = std::min(
            ls.target, ls.progress + ls.rate_per_s *
                                         (walltime_s - job.start_time));
        if (ls.progress >= ls.target) {
          finish_sim(job.spec.payload, ls);
          sims_.erase(it);
          scheduler.cancel(id);
          continue;
        }
      }
      // Resumes next allocation from its checkpoint.
      if (type == "cg_sim")
        carry_resume_cg_.push_back(job.spec.payload);
      else
        carry_resume_aa_.push_back(job.spec.payload);
    } else if (type == "cg_setup" || type == "aa_setup") {
      wm.requeue_setup(type, job.spec.payload);
    }
    scheduler.cancel(id);
  }

  carry = wm.carry_over();
  // Interrupted simulations resume ahead of fresh ones.
  for (auto it = carry_resume_cg_.rbegin(); it != carry_resume_cg_.rend(); ++it)
    carry.ready_cg.push_front(*it);
  for (auto it = carry_resume_aa_.rbegin(); it != carry_resume_aa_.rend(); ++it)
    carry.ready_aa.push_front(*it);
  carry_resume_cg_.clear();
  carry_resume_aa_.clear();

  // Backmap data volumes from completed AA setups this run.
  const auto aa_setups_after = trackers.tracker("aa_setup").counters();
  const auto backmaps =
      static_cast<double>(aa_setups_after.completed);
  result.ledger.bytes_backmap +=
      backmaps *
      (config_.rates.backmap_local_bytes + config_.rates.backmap_gpfs_bytes);
  result.ledger.files_total += static_cast<std::uint64_t>(backmaps) * 4;

  campaign_hours_done += walltime_h;
}

CampaignResult Campaign::run() {
  CampaignResult result;
  double hours_total = 0;
  for (const auto& run : config_.runs) hours_total += run.walltime_h * run.count;

  patch_selector_ = std::make_unique<PatchSelector>(9, 5, 35000);
  frame_selector_ = std::make_unique<FrameSelector>(0.8, rng_());
  // Campaign-scale candidate volumes: stream history to /dev/null instead of
  // holding tens of millions of event ids in memory.
  patch_selector_->set_history_enabled(false);
  frame_selector_->set_history_enabled(false);

  WorkflowManager::CarryOver carry;
  double hours_done = 0;
  for (const auto& run : config_.runs) {
    RunRow row;
    row.nodes = run.nodes;
    row.walltime_h = run.walltime_h;
    row.count = run.count;
    result.table1.push_back(row);
    for (int i = 0; i < run.count; ++i) {
      run_one(run.nodes, run.walltime_h, result, carry, hours_done,
              hours_total);
      util::log_info("campaign: finished run ", run.nodes, " nodes x ",
                     run.walltime_h, " h (", hours_done, "/", hours_total,
                     " h)");
    }
    result.node_hours += row.node_hours();
  }

  // Record sims still in flight at the very end of the campaign.
  for (auto& [payload, ls] : sims_) {
    if (ls.progress <= 0) continue;
    if (ls.is_aa) {
      result.aa_lengths_ns.push_back(ls.progress);
      result.aa_perf.emplace_back(ls.size, ls.rate_per_s * 86400.0);
      result.aa_total_ns += ls.progress;
    } else {
      result.cg_lengths_us.push_back(ls.progress);
      result.cg_perf.emplace_back(ls.size, ls.rate_per_s * 86400.0);
      result.cg_total_us += ls.progress;
    }
  }
  sims_.clear();

  result.patches_selected = patch_selector_->selected_count();
  result.frames_selected = frame_selector_->selected_count();
  return result;
}

}  // namespace mummi::wm
