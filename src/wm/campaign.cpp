#include "wm/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <utility>

#include "fault/fault_injector.hpp"
#include "wm/insitu.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/checkpoint.hpp"
#include "util/crashpoint.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace mummi::wm {

namespace {
constexpr std::uint64_t kFrameIdBase = 1ULL << 40;  // keep ids disjoint

/// Files written per CG trajectory frame (frame + analysis sidecars);
/// calibrated so the full campaign lands near the paper's 1.03B files.
constexpr double kFilesPerCgFrame = 5.0;

constexpr std::uint32_t kCheckpointVersion = 3;  // v3: in-situ accumulators

void write_str_list(util::ByteWriter& w, const std::vector<std::string>& v) {
  w.u64(v.size());
  for (const auto& s : v) w.str(s);
}

std::vector<std::string> read_str_list(util::ByteReader& r) {
  std::vector<std::string> v(r.u64());
  for (auto& s : v) s = r.str();
  return v;
}

void write_supervision(util::ByteWriter& w,
                       const supervise::SupervisionStats& s) {
  w.u64(s.hangs_detected);
  w.u64(s.speculations);
  w.u64(s.spec_wins);
  w.u64(s.spec_losses);
  w.u64(s.quarantined);
  w.u64(s.node_probations);
  w.u64(s.canaries_ok);
  w.u64(s.canaries_failed);
  w.u64(s.shed_transitions);
  w.f64(s.degraded_time_s);
  w.f64(s.first_quarantine_s);
}

supervise::SupervisionStats read_supervision(util::ByteReader& r) {
  supervise::SupervisionStats s;
  s.hangs_detected = r.u64();
  s.speculations = r.u64();
  s.spec_wins = r.u64();
  s.spec_losses = r.u64();
  s.quarantined = r.u64();
  s.node_probations = r.u64();
  s.canaries_ok = r.u64();
  s.canaries_failed = r.u64();
  s.shed_transitions = r.u64();
  s.degraded_time_s = r.f64();
  s.first_quarantine_s = r.f64();
  return s;
}

void write_u64_list(util::ByteWriter& w, const std::vector<std::uint64_t>& v) {
  w.u64(v.size());
  for (const auto x : v) w.u64(x);
}

std::vector<std::uint64_t> read_u64_list(util::ByteReader& r) {
  std::vector<std::uint64_t> v(r.u64());
  for (auto& x : v) x = r.u64();
  return v;
}

// std::pair is not trivially copyable, so the perf samples get explicit
// element-wise framing instead of ByteWriter::vec.
void write_pairs(util::ByteWriter& w,
                 const std::vector<std::pair<double, double>>& v) {
  w.u64(v.size());
  for (const auto& [a, b] : v) {
    w.f64(a);
    w.f64(b);
  }
}

std::vector<std::pair<double, double>> read_pairs(util::ByteReader& r) {
  std::vector<std::pair<double, double>> v(r.u64());
  for (auto& [a, b] : v) {
    a = r.f64();
    b = r.f64();
  }
  return v;
}
}  // namespace

util::Bytes CampaignResult::science_fingerprint() const {
  util::ByteWriter w;
  w.u64(table1.size());
  for (const auto& row : table1) {
    w.u64(static_cast<std::uint64_t>(row.nodes));
    w.f64(row.walltime_h);
    w.u64(static_cast<std::uint64_t>(row.count));
  }
  w.f64(node_hours);
  w.u64(snapshots);
  w.u64(patches_created);
  w.u64(patches_selected);
  w.u64(frame_candidates);
  w.u64(frames_selected);
  w.f64(continuum_total_us);
  w.f64(cg_total_us);
  w.f64(aa_total_ns);
  w.vec(cg_lengths_us);
  w.vec(aa_lengths_ns);
  w.vec(continuum_ms_per_day);
  write_pairs(w, cg_perf);
  write_pairs(w, aa_perf);
  w.f64(ledger.bytes_continuum);
  w.f64(ledger.bytes_patches);
  w.f64(ledger.bytes_cg_frames);
  w.f64(ledger.bytes_cg_analysis);
  w.f64(ledger.bytes_aa_frames);
  w.f64(ledger.bytes_backmap);
  w.u64(ledger.files_total);
  w.u64(faults_injected);
  w.u64(fault_jobs_killed);
  write_supervision(w, supervision);
  write_str_list(w, supervision_log);
  write_str_list(w, quarantined);
  w.u64(analysis_frames);
  w.bytes(rdf_feedback.serialize());
  return std::move(w).take();
}

Campaign::Campaign(CampaignConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  next_frame_id_ = kFrameIdBase;
}

Campaign::~Campaign() = default;

Campaign::LogicalSim& Campaign::logical_sim(std::uint64_t payload, bool is_aa,
                                            bool degraded) {
  auto it = sims_.find(payload);
  if (it != sims_.end()) return it->second;
  LogicalSim ls;
  ls.is_aa = is_aa;
  if (is_aa) {
    const auto sample = config_.perf.sample_aa(rng_);
    ls.rate_per_s = sample.ns_per_second();
    ls.size = sample.atoms;
    ls.target = rng_.uniform(config_.aa_min_ns, config_.aa_max_ns);
  } else {
    const auto sample = config_.perf.sample_cg(rng_, degraded);
    ls.rate_per_s = sample.us_per_second();
    ls.size = sample.particles;
    ls.target = std::min(
        config_.cg_max_us,
        config_.cg_min_us +
            rng_.exponential(1.0 / (config_.cg_mean_us - config_.cg_min_us)));
  }
  return sims_.emplace(payload, ls).first->second;
}

void Campaign::run_one(int nodes, double walltime_h, CampaignResult& result,
                       WorkflowManager::CarryOver& carry,
                       double& campaign_hours_done,
                       double campaign_hours_total) {
  const double walltime_s = walltime_h * 3600.0;
  const double t_offset = campaign_hours_done * 3600.0;

  event::SimEngine engine;
  sched::Scheduler scheduler(sched::ClusterSpec::summit(nodes),
                             config_.match_policy, engine.clock());
  sched::QueueManager queue(engine, scheduler, config_.queue);
  QueuedBackend maestro(scheduler, queue);

  // Job trackers for the four application job types + the continuum.
  TrackerSet trackers;
  auto add_tracker = [&](const std::string& type, int cores, int gpus,
                         double mean_s, double sigma_s) {
    JobTypeConfig cfg;
    cfg.type = type;
    cfg.request.slot = sched::Slot{cores, gpus};
    cfg.mean_duration = mean_s;
    cfg.sigma_duration = sigma_s;
    trackers.add(std::make_unique<JobTracker>(cfg));
  };
  // Setup durations are lognormal(sigma=0.25 in log space); ~0.25*mean is the
  // absolute spread the watchdog deadlines are derived from.
  add_tracker("cg_setup", 24, 0, config_.perf.createsim_mean_s,
              0.25 * config_.perf.createsim_mean_s);
  add_tracker("cg_sim", 3, 1, 86400, 0.25 * 86400);
  add_tracker("aa_setup", 18, 0, config_.perf.backmap_mean_s,
              0.25 * config_.perf.backmap_mean_s);
  add_tracker("aa_sim", 3, 1, 86400, 0.25 * 86400);

  const int continuum_nodes =
      std::max(1, std::min(config_.continuum_nodes_max, nodes / 4));
  const int continuum_cores =
      continuum_nodes * config_.continuum_cores_per_node;

  // --- fault injection (Sec. 4.4) ------------------------------------------
  // Each run draws its own plan; the seed mixes the flat run index so the
  // whole campaign (and any crash-restart continuation) stays deterministic.
  fault::FaultPlan fault_plan;
  if (!config_.faults.empty()) {
    fault::FaultSpec spec = config_.faults;
    spec.seed ^= 0x9e3779b97f4a7c15ULL * (flat_run_ + 1);
    fault_plan = fault::FaultPlan::generate(spec, walltime_s, nodes,
                                            /*n_shards=*/0);
  }
  fault::FaultInjector injector(std::move(fault_plan));
  injector.bind_scheduler(&scheduler);
  // Armed below, once the executor exists — hang/straggler faults target it.

  // --- per-run state -------------------------------------------------------
  bool continuum_running = false;
  const bool degraded =
      campaign_hours_done / campaign_hours_total <
      config_.degraded_until_fraction;

  // Selectors persist across the campaign.
  static_assert(cont::kNumProteinStates == 4, "queue routing assumes 4 states");

  // Campaign-level accounting must see completions *before* the WM resubmits
  // failed jobs (so remaining-duration models read fresh progress), hence it
  // registers first.
  auto finish_sim = [&](std::uint64_t payload, const LogicalSim& ls) {
    if (ls.is_aa) {
      result.aa_lengths_ns.push_back(ls.progress);
      result.aa_perf.emplace_back(ls.size, ls.rate_per_s * 86400.0);
      result.aa_total_ns += ls.progress;
    } else {
      result.cg_lengths_us.push_back(ls.progress);
      result.cg_perf.emplace_back(ls.size, ls.rate_per_s * 86400.0);
      result.cg_total_us += ls.progress;
    }
    (void)payload;
  };

  auto continuum_spec = [&] {
    sched::JobSpec spec;
    spec.name = "gridsim2d";
    spec.type = "continuum";
    spec.request.slot = sched::Slot{config_.continuum_cores_per_node, 0};
    spec.request.nslots = continuum_nodes;
    spec.request.one_slot_per_node = true;
    spec.est_duration = 2.0 * walltime_s;
    return spec;
  };

  scheduler.on_finish([&](const sched::Job& job) {
    const auto& type = job.spec.type;
    if (type == "continuum") {
      if (job.state == sched::JobState::kFailed) {
        // A node crash took the continuum down. It is untracked (no WM
        // restart policy), so the campaign itself reloads it from its
        // snapshot; fail_node() drained the dead node first, so the new
        // allocation lands elsewhere.
        continuum_running = false;
        maestro.submit(continuum_spec());
      } else if (job.state == sched::JobState::kCancelled) {
        continuum_running = false;
      }
      return;
    }
    if (type != "cg_sim" && type != "aa_sim") return;
    auto it = sims_.find(job.spec.payload);
    if (it == sims_.end()) return;
    LogicalSim& ls = it->second;
    if (job.state == sched::JobState::kCompleted) {
      ls.progress = ls.target;
      finish_sim(job.spec.payload, ls);
      sims_.erase(it);
    } else if (job.state == sched::JobState::kFailed) {
      // Crash partway: progress up to the failure point survives via the
      // 15-minute checkpoints; the WM resubmits (registered after us).
      const double elapsed = std::max(0.0, engine.now() - job.start_time);
      ls.progress = std::min(ls.target * 0.999,
                             ls.progress + ls.rate_per_s * elapsed *
                                               rng_.uniform());
    }
  });

  WorkflowManager wm(config_.wm, maestro, trackers, *patch_selector_,
                     *frame_selector_);
  if (resume_) {
    // Crash-restart: restore buffers, restart counts and both selectors from
    // the checkpoint, then line up the payloads that were in flight when it
    // was taken ahead of fresh work.
    wm.restore(resume_->wm_blob);
    auto restored = wm.carry_over();
    for (auto it = resume_->inflight_cg.rbegin();
         it != resume_->inflight_cg.rend(); ++it)
      restored.ready_cg.push_front(*it);
    for (auto it = resume_->inflight_aa.rbegin();
         it != resume_->inflight_aa.rend(); ++it)
      restored.ready_aa.push_front(*it);
    for (auto it = resume_->inflight_cg_setup.rbegin();
         it != resume_->inflight_cg_setup.rend(); ++it)
      restored.requeued_cg_setup.push_front(*it);
    for (auto it = resume_->inflight_aa_setup.rbegin();
         it != resume_->inflight_aa_setup.rend(); ++it)
      restored.requeued_aa_setup.push_front(*it);
    wm.restore_carry_over(restored);
    resume_base_s_ = resume_->time_into_run_s;
    resume_.reset();
  } else {
    wm.restore_carry_over(carry);
    resume_base_s_ = 0;
  }
  const double hours_at_run_start =
      campaign_hours_done - resume_base_s_ / 3600.0;
  wm.on_sim_finished([&](const sched::Job& job) {
    // Terminal failures (restarts exhausted): record the partial length.
    if (job.state != sched::JobState::kFailed) return;
    auto it = sims_.find(job.spec.payload);
    if (it == sims_.end()) return;
    finish_sim(job.spec.payload, it->second);
    sims_.erase(it);
  });

  // Executor: virtual-time job durations.
  sched::SimExecutor executor(engine, rng_.split(), config_.sim_failure_prob);
  executor.set_duration_model([&](const sched::Job& job) -> double {
    const auto& type = job.spec.type;
    // Active latency spikes (GPFS/fabric congestion) stretch job durations;
    // 1.0 when no spike is live, so fault-free runs are bit-identical.
    const double stretch = injector.latency_factor(engine.now());
    if (type == "continuum") return 2.0 * walltime_s;  // cut at teardown
    if (type == "cg_setup")
      return stretch * config_.perf.sample_createsim_seconds(rng_);
    if (type == "aa_setup")
      return stretch * config_.perf.sample_backmap_seconds(rng_);
    if (type == "cg_sim" || type == "aa_sim") {
      LogicalSim& ls =
          logical_sim(job.spec.payload, type == "aa_sim", degraded);
      return std::max(1.0, stretch * (ls.target - ls.progress) / ls.rate_per_s);
    }
    return job.spec.est_duration;
  });
  scheduler.on_start([&](const sched::Job& job) {
    if (job.spec.type == "continuum") continuum_running = true;
    const sched::JobId id = job.id;
    executor.launch(job, [&, id](bool ok) {
      // A node-crash fault may have killed the job after this completion
      // event was scheduled; the stale event must not touch it.
      if (scheduler.job(id).state == sched::JobState::kRunning)
        scheduler.complete(id, ok);
      maestro.poll();
    });
  });
  injector.bind_executor(&executor);
  injector.arm(engine);

  // Poison work: a deterministic subset of payloads kills every attempt of
  // its job type — the repeat offender the quarantine ledger is keyed for.
  if (config_.poison_payload_modulus > 0)
    executor.set_poison([this](const sched::Job& job) {
      return job.spec.type == config_.poison_job_type &&
             job.spec.payload != 0 &&
             job.spec.payload % config_.poison_payload_modulus == 0;
    });

  // --- supervision plane (off by default: bit-identical figure runs) -------
  // Constructed after the WM so the winner of a speculative pair reaches the
  // workload before the supervisor cancels the loser. Watchdog deadlines come
  // from the tracker duration models; sims legitimately outlive any deadline
  // shorter than the allocation, so in practice the watchdog covers setup and
  // canary jobs within a run while hung sims are reclaimed at teardown (no
  // progress credited, payload carried to the next allocation).
  std::optional<supervise::Supervisor> supervisor;
  std::function<void()> supervise_tick;
  if (config_.supervise.enabled) {
    supervisor.emplace(scheduler, engine.clock(), wm, config_.supervise);
    for (const auto& type : trackers.types()) {
      const auto& tc = trackers.tracker(type).config();
      supervisor->set_timing(type, {tc.mean_duration, tc.sigma_duration});
    }
    supervisor->set_timing(config_.wm.canary_type,
                           {config_.wm.canary_duration_s, 0.0});
    // Latency-spike faults stretch real durations; deadlines stretch along.
    supervisor->set_duration_stretch(
        [&injector](double now) { return injector.latency_factor(now); });
    wm.set_resubmit_veto([&supervisor](const sched::Job& job) {
      return supervisor->has_live_twin(job.id);
    });
    supervise_tick = [&] {
      // Poll only when the tick actually acted (every action logs a decision
      // line): an idle supervisor must not perturb queue-service timing, so a
      // zero-fault supervised run stays bit-identical to an unsupervised one.
      const std::size_t before = supervisor->decisions().size();
      supervisor->tick(engine.now());
      if (supervisor->decisions().size() != before)
        maestro.poll();  // place any resubmits/twins/canaries right away
      engine.schedule_after(config_.supervise.tick_interval_s, supervise_tick);
    };
    engine.schedule_after(config_.supervise.tick_interval_s, supervise_tick);
  }

  // The continuum job loads first.
  maestro.submit(continuum_spec());

  // --- recurring coordination events --------------------------------------
  std::function<void()> snapshot_tick = [&] {
    if (continuum_running) {
      ++result.snapshots;
      result.continuum_total_us += 1.0;  // 1 us of model time per snapshot
      result.continuum_ms_per_day.push_back(
          config_.perf.continuum_ms_per_day(continuum_cores) *
          (1.0 + 0.03 * rng_.normal()));
      result.ledger.bytes_continuum += config_.rates.continuum_snapshot_bytes;
      result.ledger.files_total += 1;

      // Task 1: the Patch Creator cuts one patch per protein. Embeddings are
      // written straight into per-queue flat stores — the selector ingest
      // path is allocation-free end to end.
      std::vector<ml::PointStore> by_queue(
          static_cast<std::size_t>(patch_selector_->n_queues()),
          ml::PointStore(9));
      float coords[9];
      for (int p = 0; p < config_.proteins_per_snapshot; ++p) {
        const ml::PointId id = next_patch_id_++;
        // Synthetic metric-space embedding: smooth drift + noise, so novelty
        // structure exists for FPS to exploit.
        for (int d = 0; d < 9; ++d)
          coords[d] = static_cast<float>(
              std::sin(0.01 * static_cast<double>(id) + d) +
              0.3 * rng_.normal());
        const auto state = rng_.uniform_index(cont::kNumProteinStates);
        const bool multi = rng_.uniform() < 0.2;  // multi-protein patches
        const std::size_t queue = multi ? 4 : state;
        by_queue[queue].add(id, coords);
      }
      std::size_t created = 0;
      for (int q = 0; q < patch_selector_->n_queues(); ++q) {
        created += by_queue[static_cast<std::size_t>(q)].size();
        if (!by_queue[static_cast<std::size_t>(q)].empty())
          wm.ingest_patches(q, by_queue[static_cast<std::size_t>(q)]);
      }
      result.patches_created += created;
      result.ledger.bytes_patches +=
          static_cast<double>(created) * config_.rates.patch_bytes;
      result.ledger.files_total += created;
    }
    engine.schedule_after(config_.snapshot_interval_s, snapshot_tick);
  };
  engine.schedule_after(config_.snapshot_interval_s, snapshot_tick);

  std::function<void()> maintain_tick = [&] {
    // Task 2 ingestion from the distributed CG analyses: one in-situ analysis
    // per running CG sim per tick (stepping, CgAnalysis, encoder feature
    // extraction, RDF accumulation), fanned out across the insitu pool and
    // folded in ascending sim-id order — candidate volume stays at the
    // calibrated rate, now as per-sim Poisson draws from counter-based
    // streams so the tick is byte-identical at any thread count.
    obs::Span tick_span("wm.tick", "wm");
    if (config_.frame_candidate_scale > 0) {
      const auto payloads = wm.running_payloads(
          "cg_sim",
          [&](const sched::Job& job) { return executor.is_hung(job.id); });
      if (!payloads.empty()) {
        const double mean_per_sim = (config_.perf.cg_us_per_day / 86400.0) *
                                    config_.maintain_interval_s *
                                    config_.frame_candidates_per_us *
                                    config_.frame_candidate_scale;
        // The tick key derives from the *absolute* offset into this run (and
        // the flat run index), so a campaign resumed from a checkpoint
        // replays the remaining ticks with the exact same per-sim streams.
        const double t_abs = resume_base_s_ + engine.now();
        std::uint64_t tbits = 0;
        std::memcpy(&tbits, &t_abs, sizeof tbits);
        const std::uint64_t tick_key =
            tbits ^ (0x9e3779b97f4a7c15ULL * (flat_run_ + 1));

        ml::PointStore frames(3);
        std::uint64_t candidates = 0;
        const std::uint64_t fold_ns = insitu_->tick(
            payloads, tick_key, mean_per_sim, [&](const InSituResult& r) {
              if (r.candidates > 0) {
                // First candidate is the analyzed frame's real descriptor;
                // the rest are subsampled snapshots of the same sim.
                r.frame.descriptor_into(next_frame_id_++, frames);
                for (const auto& d : r.extra)
                  frames.add(next_frame_id_++, std::span<const float>(d));
                candidates += r.candidates;
              }
              if (result.rdf_feedback.per_species.empty())
                result.rdf_feedback = r.rdfs;
              else
                result.rdf_feedback.merge(r.rdfs);
              ++result.analysis_frames;
            });
        if (candidates > 0) {
          result.frame_candidates += candidates;
          result.ledger.files_total += candidates;  // the ~850 B id records
          wm.ingest_frames(frames);
        }
        obs::counter("wm.tick.sims").inc(payloads.size());
        obs::counter("wm.tick.analysis_frames").inc(payloads.size());
        obs::counter("wm.tick.fold_ns").inc(fold_ns);
      }
      result.tick_sims.push_back(static_cast<std::uint32_t>(payloads.size()));
    }
    wm.maintain(config_.submit_budget_per_maintain);
    obs::histogram("wm.tick_s", 0.0, 0.02, 50)
        .observe(tick_span.elapsed_us() * 1e-6);
    engine.schedule_after(config_.maintain_interval_s, maintain_tick);
  };
  engine.schedule_after(config_.maintain_interval_s, maintain_tick);

  std::function<void()> feedback_tick = [&] {
    const int running_cg = wm.running("cg_sim");
    const int running_aa = wm.running("aa_sim");
    // CG->continuum: RDF pushes arrive every ~3-4 min per simulation.
    if (running_cg > 0) {
      const double rdf_interval = 200.0;  // s per simulation between pushes
      const auto frames = static_cast<std::size_t>(
          running_cg * config_.feedback_interval_s / rdf_interval);
      fb::IterationStats stats;
      const auto costs = fb::FeedbackCosts::redis();
      stats.frames = frames;
      stats.collect_virtual =
          static_cast<double>(frames) *
          (costs.identify_per_key + costs.read_per_record);
      stats.process_virtual =
          static_cast<double>(frames) * costs.process_per_frame;
      stats.tag_virtual = static_cast<double>(frames) * costs.tag_per_record;
      result.cg2cont_stats.push_back(stats);
    }
    // AA->CG: fewer frames, ~2 s each through external calls, pooled.
    if (running_aa > 0) {
      const auto frames = static_cast<std::size_t>(
          running_aa * config_.feedback_interval_s /
          config_.rates.aa_frame_interval_s);
      fb::IterationStats stats;
      const auto costs = fb::FeedbackCosts::redis();
      stats.frames = frames;
      stats.collect_virtual =
          static_cast<double>(frames) *
          (costs.identify_per_key + costs.read_per_record);
      stats.process_virtual =
          60.0 + 2.0 * static_cast<double>(frames) / 6.0;
      stats.tag_virtual = static_cast<double>(frames) * costs.tag_per_record;
      result.aa2cg_stats.push_back(stats);
    }
    // Data ledger: trajectory frames written during this interval.
    if (running_cg > 0) {
      const double cg_frames = running_cg * config_.feedback_interval_s /
                               config_.rates.cg_frame_interval_s;
      result.ledger.bytes_cg_frames +=
          cg_frames * config_.rates.cg_frame_bytes;
      result.ledger.bytes_cg_analysis +=
          cg_frames * config_.rates.cg_analysis_bytes;
      result.ledger.files_total +=
          static_cast<std::uint64_t>(cg_frames * kFilesPerCgFrame);
    }
    if (running_aa > 0) {
      const double aa_frames = running_aa * config_.feedback_interval_s /
                               config_.rates.aa_frame_interval_s;
      result.ledger.bytes_aa_frames +=
          aa_frames * config_.rates.aa_frame_bytes;
      result.ledger.files_total += static_cast<std::uint64_t>(aa_frames);
    }
    engine.schedule_after(config_.feedback_interval_s, feedback_tick);
  };
  engine.schedule_after(config_.feedback_interval_s, feedback_tick);

  std::function<void()> profile_tick = [&] {
    result.profiler.sample(t_offset + engine.now(), scheduler);
    // Registry gauges are freshest right after a profile sample — snapshot
    // into the attached telemetry sink (if any), stamped with campaign time.
    obs::report_sample(t_offset + engine.now());
    engine.schedule_after(config_.profile_interval_s, profile_tick);
  };
  engine.schedule_after(config_.profile_interval_s, profile_tick);

  // --- periodic checkpoint + simulated crash -------------------------------
  auto save_checkpoint = [&] {
    util::ByteWriter w;
    w.u32(kCheckpointVersion);
    w.u64(flat_run_);
    w.f64(hours_at_run_start);
    w.f64(resume_base_s_ + engine.now());  // absolute offset into this run

    const util::Rng::State rst = rng_.save_state();
    for (int i = 0; i < 4; ++i) w.u64(rst.s[i]);
    w.u8(rst.has_spare ? 1 : 0);
    w.f64(rst.spare);
    w.u64(next_patch_id_);
    w.u64(next_frame_id_);

    // In-flight work in ascending job-id (submission) order; running sims'
    // checkpointed progress includes time since they started.
    std::vector<std::uint64_t> fly_cg, fly_aa, fly_cg_setup, fly_aa_setup;
    std::unordered_map<std::uint64_t, double> running_for;
    // A payload may be in flight twice (original + speculative twin); it must
    // resume exactly once.
    std::set<std::uint64_t> seen_cg, seen_aa, seen_cg_setup, seen_aa_setup;
    auto push_unique = [](std::vector<std::uint64_t>& v,
                          std::set<std::uint64_t>& seen, std::uint64_t p) {
      if (seen.insert(p).second) v.push_back(p);
    };
    auto active = scheduler.active_jobs();
    std::sort(active.begin(), active.end());
    for (const sched::JobId id : active) {
      const sched::Job& job = scheduler.job(id);
      const auto& type = job.spec.type;
      if (type == "cg_sim")
        push_unique(fly_cg, seen_cg, job.spec.payload);
      else if (type == "aa_sim")
        push_unique(fly_aa, seen_aa, job.spec.payload);
      else if (type == "cg_setup")
        push_unique(fly_cg_setup, seen_cg_setup, job.spec.payload);
      else if (type == "aa_setup")
        push_unique(fly_aa_setup, seen_aa_setup, job.spec.payload);
      else
        continue;
      // Hung jobs accrue no progress; their sims resume from the last
      // checkpointed position instead.
      if (job.state == sched::JobState::kRunning && !executor.is_hung(id) &&
          (type == "cg_sim" || type == "aa_sim"))
        running_for[job.spec.payload] = engine.now() - job.start_time;
    }

    std::vector<std::pair<std::uint64_t, LogicalSim>> snap(sims_.begin(),
                                                           sims_.end());
    std::sort(snap.begin(), snap.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.u64(snap.size());
    for (const auto& [payload, ls] : snap) {
      double progress = ls.progress;
      const auto it = running_for.find(payload);
      if (it != running_for.end())
        progress =
            std::min(ls.target, ls.progress + ls.rate_per_s * it->second);
      w.u64(payload);
      w.u8(ls.is_aa ? 1 : 0);
      w.f64(ls.target);
      w.f64(progress);
      w.f64(ls.rate_per_s);
      w.f64(ls.size);
    }
    write_u64_list(w, fly_cg);
    write_u64_list(w, fly_aa);
    write_u64_list(w, fly_cg_setup);
    write_u64_list(w, fly_aa_setup);
    w.bytes(wm.serialize());

    // Result accumulators. The profiler timeline and feedback iteration
    // stats are diagnostics, not campaign state, and are not checkpointed.
    w.u64(result.snapshots);
    w.u64(result.patches_created);
    w.u64(result.frame_candidates);
    w.f64(result.continuum_total_us);
    w.f64(result.cg_total_us);
    w.f64(result.aa_total_ns);
    w.f64(result.ledger.bytes_continuum);
    w.f64(result.ledger.bytes_patches);
    w.f64(result.ledger.bytes_cg_frames);
    w.f64(result.ledger.bytes_cg_analysis);
    w.f64(result.ledger.bytes_aa_frames);
    w.f64(result.ledger.bytes_backmap);
    w.u64(result.ledger.files_total);
    w.vec(result.cg_lengths_us);
    w.vec(result.aa_lengths_ns);
    w.vec(result.continuum_ms_per_day);
    write_pairs(w, result.cg_perf);
    write_pairs(w, result.aa_perf);
    w.u64(result.faults_injected + injector.fired().size());
    w.u64(result.fault_jobs_killed + injector.jobs_killed());
    w.u64(result.checkpoints_written);

    // v2: supervision outcomes so far (prior runs + this run's partial). The
    // quarantine ledger itself rides inside wm.serialize() above.
    supervise::SupervisionStats sup = result.supervision;
    std::vector<std::string> sup_log = result.supervision_log;
    if (supervisor) {
      sup.merge(supervisor->stats());
      sup_log.insert(sup_log.end(), supervisor->decisions().begin(),
                     supervisor->decisions().end());
    }
    write_supervision(w, sup);
    write_str_list(w, sup_log);

    // v3: in-situ analysis accumulators (fingerprinted science state — a
    // resumed campaign must keep merging RDFs into the same totals).
    w.u64(result.analysis_frames);
    w.bytes(result.rdf_feedback.serialize());

    util::CheckpointFile(config_.checkpoint_path).save(std::move(w).take());
  };

  std::function<void()> checkpoint_tick;
  if (config_.checkpoint_interval_s > 0 && !config_.checkpoint_path.empty()) {
    checkpoint_tick = [&] {
      ++result.checkpoints_written;
      {
        // Checkpoint serialization is real wall-clock work inside the
        // coordination loop; the span + histogram expose its cost.
        obs::Span span("wm.checkpoint", "wm");
        // The outermost persistence boundary pair: a crash at .pre must
        // recover the previous checkpoint generation, a crash at .post the
        // one just written. Each fires once per tick, so the sweep's "nth
        // hit" selects the checkpoint tick to kill.
        util::crash_point("wm.checkpoint.pre");
        save_checkpoint();
        util::crash_point("wm.checkpoint.post");
        obs::histogram("wm.checkpoint_s", 0.0, 1.0, 50)
            .observe(span.elapsed_us() * 1e-6);
      }
      obs::counter("wm.checkpoints").inc();
      engine.schedule_after(config_.checkpoint_interval_s, checkpoint_tick);
    };
    engine.schedule_after(config_.checkpoint_interval_s, checkpoint_tick);
  }

  if (config_.crash_at_campaign_h > 0) {
    const double crash_s = config_.crash_at_campaign_h * 3600.0 - t_offset;
    if (crash_s >= 0 && crash_s < walltime_s)
      engine.schedule_at(crash_s, [] {
        throw SimulatedCrash("simulated coordination-process crash");
      });
  }

  // --- run to walltime ------------------------------------------------------
  engine.run_until(walltime_s);

  // --- teardown: checkpoint-and-carry --------------------------------------
  std::set<std::uint64_t> torn_down_sims, torn_down_setups;
  for (const sched::JobId id : scheduler.active_jobs()) {
    const sched::Job& job = scheduler.job(id);
    const auto& type = job.spec.type;
    // Hung jobs made no progress since launch; their payloads still carry
    // over, so a hang costs at most the rest of this allocation.
    const bool was_running =
        job.state == sched::JobState::kRunning && !executor.is_hung(id);
    if (type == "cg_sim" || type == "aa_sim") {
      auto it = sims_.find(job.spec.payload);
      if (it != sims_.end() && was_running) {
        LogicalSim& ls = it->second;
        ls.progress = std::min(
            ls.target, ls.progress + ls.rate_per_s *
                                         (walltime_s - job.start_time));
        if (ls.progress >= ls.target) {
          finish_sim(job.spec.payload, ls);
          sims_.erase(it);
          torn_down_sims.insert(job.spec.payload);  // twin must not resume it
          scheduler.cancel(id);
          continue;
        }
      }
      // Resumes next allocation from its checkpoint. An original and its
      // speculative twin share a payload; it resumes exactly once.
      if (torn_down_sims.insert(job.spec.payload).second) {
        if (type == "cg_sim")
          carry_resume_cg_.push_back(job.spec.payload);
        else
          carry_resume_aa_.push_back(job.spec.payload);
      }
    } else if (type == "cg_setup" || type == "aa_setup") {
      if (torn_down_setups.insert(job.spec.payload).second)
        wm.requeue_setup(type, job.spec.payload);
    }
    scheduler.cancel(id);
  }

  carry = wm.carry_over();
  // Interrupted simulations resume ahead of fresh ones.
  for (auto it = carry_resume_cg_.rbegin(); it != carry_resume_cg_.rend(); ++it)
    carry.ready_cg.push_front(*it);
  for (auto it = carry_resume_aa_.rbegin(); it != carry_resume_aa_.rend(); ++it)
    carry.ready_aa.push_front(*it);
  carry_resume_cg_.clear();
  carry_resume_aa_.clear();

  // Backmap data volumes from completed AA setups this run.
  const auto aa_setups_after = trackers.tracker("aa_setup").counters();
  const auto backmaps =
      static_cast<double>(aa_setups_after.completed);
  result.ledger.bytes_backmap +=
      backmaps *
      (config_.rates.backmap_local_bytes + config_.rates.backmap_gpfs_bytes);
  result.ledger.files_total += static_cast<std::uint64_t>(backmaps) * 4;

  result.faults_injected += injector.fired().size();
  result.fault_jobs_killed += injector.jobs_killed();

  if (supervisor) {
    supervisor->finalize(engine.now());
    result.supervision.merge(supervisor->stats());
    const auto& log = supervisor->decisions();
    result.supervision_log.insert(result.supervision_log.end(), log.begin(),
                                  log.end());
  }
  // The ledger carries across allocations; the last run's view is cumulative.
  result.quarantined = wm.quarantine_ledger().quarantined_keys();

  campaign_hours_done += walltime_h;
}

std::optional<std::uint64_t> Campaign::try_load_checkpoint(
    CampaignResult& result) {
  if (config_.checkpoint_path.empty()) return std::nullopt;
  const auto blob = util::CheckpointFile(config_.checkpoint_path).load();
  if (!blob) return std::nullopt;

  util::ByteReader r(*blob);
  const auto version = r.u32();
  MUMMI_CHECK_MSG(version == kCheckpointVersion,
                  "unknown campaign checkpoint version");
  const std::uint64_t flat_run = r.u64();
  r.f64();  // hours at run start; recomputed from the schedule on resume

  ResumeState rs;
  rs.time_into_run_s = r.f64();

  util::Rng::State rst{};
  for (int i = 0; i < 4; ++i) rst.s[i] = r.u64();
  rst.has_spare = r.u8() != 0;
  rst.spare = r.f64();
  rng_.load_state(rst);
  next_patch_id_ = r.u64();
  next_frame_id_ = r.u64();

  sims_.clear();
  const auto n_sims = r.u64();
  for (std::uint64_t i = 0; i < n_sims; ++i) {
    const std::uint64_t payload = r.u64();
    LogicalSim ls;
    ls.is_aa = r.u8() != 0;
    ls.target = r.f64();
    ls.progress = r.f64();
    ls.rate_per_s = r.f64();
    ls.size = r.f64();
    sims_.emplace(payload, ls);
  }
  rs.inflight_cg = read_u64_list(r);
  rs.inflight_aa = read_u64_list(r);
  rs.inflight_cg_setup = read_u64_list(r);
  rs.inflight_aa_setup = read_u64_list(r);
  rs.wm_blob = r.bytes();

  result.snapshots = r.u64();
  result.patches_created = r.u64();
  result.frame_candidates = r.u64();
  result.continuum_total_us = r.f64();
  result.cg_total_us = r.f64();
  result.aa_total_ns = r.f64();
  result.ledger.bytes_continuum = r.f64();
  result.ledger.bytes_patches = r.f64();
  result.ledger.bytes_cg_frames = r.f64();
  result.ledger.bytes_cg_analysis = r.f64();
  result.ledger.bytes_aa_frames = r.f64();
  result.ledger.bytes_backmap = r.f64();
  result.ledger.files_total = r.u64();
  result.cg_lengths_us = r.vec<double>();
  result.aa_lengths_ns = r.vec<double>();
  result.continuum_ms_per_day = r.vec<double>();
  result.cg_perf = read_pairs(r);
  result.aa_perf = read_pairs(r);
  result.faults_injected = r.u64();
  result.fault_jobs_killed = r.u64();
  result.checkpoints_written = r.u64();
  result.supervision = read_supervision(r);
  result.supervision_log = read_str_list(r);
  result.analysis_frames = r.u64();
  result.rdf_feedback = coupling::RdfSet::deserialize(r.bytes());
  result.resumed_from_checkpoint = true;

  resume_ = std::move(rs);
  util::log_info("campaign: resuming run ", flat_run, " from checkpoint ",
                 config_.checkpoint_path, " (", resume_->time_into_run_s,
                 " s into the run)");
  return flat_run;
}

CampaignResult Campaign::run() {
  CampaignResult result;
  double hours_total = 0;
  for (const auto& run : config_.runs) hours_total += run.walltime_h * run.count;

  patch_selector_ = std::make_unique<PatchSelector>(9, 5, 35000);
  frame_selector_ = std::make_unique<FrameSelector>(0.8, rng_());
  {
    // In-situ analysis fan-out: per-sim streams are counter-based (never the
    // shared rng_), so the pool only trades wall time for tick latency.
    InSituConfig insitu_cfg;
    insitu_cfg.pool = config_.insitu_pool != nullptr ? config_.insitu_pool
                                                     : util::env_shared_pool();
    insitu_ = std::make_unique<InSituPlane>(
        config_.seed ^ 0xa5a5a5a5a5a5a5a5ULL, insitu_cfg);
  }
  // Campaign-scale candidate volumes: stream history to /dev/null instead of
  // holding tens of millions of event ids in memory.
  patch_selector_->set_history_enabled(false);
  frame_selector_->set_history_enabled(false);

  // Crash recovery: a checkpoint left by an interrupted campaign with this
  // config resumes the interrupted run with its remaining walltime.
  const std::optional<std::uint64_t> resume_run = try_load_checkpoint(result);

  WorkflowManager::CarryOver carry;
  double hours_done = 0;
  std::uint64_t flat = 0;
  for (const auto& run : config_.runs) {
    RunRow row;
    row.nodes = run.nodes;
    row.walltime_h = run.walltime_h;
    row.count = run.count;
    result.table1.push_back(row);
    for (int i = 0; i < run.count; ++i, ++flat) {
      double walltime_h = run.walltime_h;
      if (resume_run) {
        if (flat < *resume_run) {  // completed before the crash
          hours_done += run.walltime_h;
          continue;
        }
        if (flat == *resume_run && resume_) {
          const double into_h = resume_->time_into_run_s / 3600.0;
          hours_done += into_h;
          // At least one virtual second remains, so run_one always executes
          // and restores the checkpointed WM/selector state into play.
          walltime_h = std::max(walltime_h - into_h, 1.0 / 3600.0);
        }
      }
      flat_run_ = flat;
      run_one(run.nodes, walltime_h, result, carry, hours_done, hours_total);
      util::log_info("campaign: finished run ", run.nodes, " nodes x ",
                     run.walltime_h, " h (", hours_done, "/", hours_total,
                     " h)");
    }
    result.node_hours += row.node_hours();
  }

  // Record sims still in flight at the very end of the campaign.
  for (auto& [payload, ls] : sims_) {
    if (ls.progress <= 0) continue;
    if (ls.is_aa) {
      result.aa_lengths_ns.push_back(ls.progress);
      result.aa_perf.emplace_back(ls.size, ls.rate_per_s * 86400.0);
      result.aa_total_ns += ls.progress;
    } else {
      result.cg_lengths_us.push_back(ls.progress);
      result.cg_perf.emplace_back(ls.size, ls.rate_per_s * 86400.0);
      result.cg_total_us += ls.progress;
    }
  }
  sims_.clear();

  result.patches_selected = patch_selector_->selected_count();
  result.frames_selected = frame_selector_->selected_count();

  // The campaign finished; a stale checkpoint must not hijack the next one.
  if (!config_.checkpoint_path.empty())
    util::CheckpointFile(config_.checkpoint_path).remove();
  return result;
}

}  // namespace mummi::wm
