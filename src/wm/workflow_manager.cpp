#include "wm/workflow_manager.hpp"

#include <algorithm>
#include <optional>
#include <set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace mummi::wm {

WorkflowManager::WorkflowManager(WmConfig config, Maestro& maestro,
                                 TrackerSet& trackers,
                                 PatchSelector& patch_selector,
                                 FrameSelector& frame_selector)
    : config_(std::move(config)),
      maestro_(maestro),
      trackers_(trackers),
      patch_selector_(patch_selector),
      frame_selector_(frame_selector),
      quarantine_(config_.quarantine_strikes) {
  maestro_.on_start([this](const sched::Job& job) {
    bump(pending_, job.spec.type, -1);
    bump(running_, job.spec.type, +1);
  });
  maestro_.on_finish([this](const sched::Job& job) { handle_finish(job); });
}

void WorkflowManager::bump(std::unordered_map<std::string, int>& map,
                           const std::string& key, int delta) {
  map[key] += delta;
}

int WorkflowManager::running(const std::string& type) const {
  auto it = running_.find(type);
  return it == running_.end() ? 0 : it->second;
}

std::vector<std::uint64_t> WorkflowManager::running_payloads(
    const std::string& type,
    const std::function<bool(const sched::Job&)>& exclude) const {
  std::set<std::uint64_t> uniq;
  sched::Scheduler& scheduler = maestro_.scheduler();
  for (const sched::JobId id : scheduler.active_jobs()) {
    const sched::Job& job = scheduler.job(id);
    if (job.spec.type != type || job.state != sched::JobState::kRunning)
      continue;
    if (exclude && exclude(job)) continue;
    uniq.insert(job.spec.payload);
  }
  return {uniq.begin(), uniq.end()};
}

int WorkflowManager::pending(const std::string& type) const {
  auto it = pending_.find(type);
  return it == pending_.end() ? 0 : it->second;
}

int WorkflowManager::cg_capacity() const {
  const auto& spec = maestro_.scheduler().graph().spec();
  const int total = spec.nodes * spec.gpus_per_node;
  return static_cast<int>(total * config_.gpu_frac_cg);
}

int WorkflowManager::aa_capacity() const {
  const auto& spec = maestro_.scheduler().graph().spec();
  const int total = spec.nodes * spec.gpus_per_node;
  return total - cg_capacity();
}

void WorkflowManager::ingest_patches(int queue,
                                     const std::vector<ml::HDPoint>& points) {
  patch_selector_.add(queue, points);
}

void WorkflowManager::ingest_patches(int queue, const ml::PointStore& points) {
  patch_selector_.add(queue, points);
}

void WorkflowManager::ingest_frames(const std::vector<ml::HDPoint>& points) {
  frame_selector_.add(points);
}

void WorkflowManager::ingest_frames(const ml::PointStore& points) {
  frame_selector_.add(points);
}

std::vector<fb::IterationStats> WorkflowManager::run_feedback() {
  std::vector<fb::IterationStats> out;
  out.reserve(feedback_.size());
  for (auto* manager : feedback_) out.push_back(manager->iterate());
  return out;
}

int WorkflowManager::submit_via_tracker(const std::string& type,
                                        std::uint64_t payload) {
  auto& tracker = trackers_.tracker(type);
  maestro_.submit(tracker.make_spec(payload));
  tracker.note_submitted();
  bump(pending_, type, +1);
  return 1;
}

int WorkflowManager::maintain(int submit_budget) {
  obs::Span span("wm.maintain", "wm");
  obs::counter("wm.maintain_passes").inc();
  int submitted = 0;
  auto& scheduler = maestro_.scheduler();

  // Simulations first: GPUs must never idle while prepared work exists.
  // Quarantined payloads are dropped on the way out of the ready buffer —
  // poison work never reaches the machine again.
  auto fill_sims = [&](const std::string& sim_type,
                       std::deque<std::uint64_t>& ready, int capacity) {
    while (submitted < submit_budget && !ready.empty() &&
           running(sim_type) + pending(sim_type) < capacity) {
      const std::uint64_t payload = ready.front();
      ready.pop_front();
      if (quarantine_.quarantined(sim_type, payload)) {
        obs::counter("wm.quarantine_skips").inc();
        continue;
      }
      submitted += submit_via_tracker(sim_type, payload);
    }
  };
  // Degraded mode (paper priority ordering: aa sheds before cg): level >= 1
  // stops all aa work, level >= 2 additionally stops new cg setups while cg
  // sims keep the ML-feedback loop alive.
  if (!config_.cg_sim_type.empty())
    fill_sims(config_.cg_sim_type, ready_cg_, cg_capacity());
  if (shed_level_ < 1 && !config_.aa_sim_type.empty())
    fill_sims(config_.aa_sim_type, ready_aa_, aa_capacity());

  // Setups: keep the prepared buffers near target without oversubscribing
  // CPUs ("a full buffer prevents new setup jobs"; CPU jobs run "only when
  // needed to prevent simulations of stale configurations").
  //
  // The deficit is computed ONCE in closed form. Submitting does not change
  // running counts, the ready buffer or free cores (allocation happens at
  // poll()); only pending(setup_type) advances by one per submit. The seed's
  // per-iteration select(1) loop therefore reduces to a min over three
  // bounds, and the selectors are consulted in one batched select — same
  // submission sequence, one rank refresh instead of one per pick.
  auto fill_setups = [&](const std::string& setup_type,
                         const std::string& sim_type,
                         std::deque<std::uint64_t>& ready,
                         std::deque<std::uint64_t>& requeued, int headroom,
                         int sim_capacity, auto select_batch) {
    if (setup_type.empty()) return;
    const auto& tracker = trackers_.tracker(setup_type);
    const int cores_each = tracker.config().request.slot.cores *
                           tracker.config().request.nslots;
    // Prepared work wanted: enough to fill every GPU the sim type is not
    // yet using (ramp-up) plus a steady-state headroom buffer for turnover.
    const int sim_deficit =
        std::max(0, sim_capacity - running(sim_type) - pending(sim_type));
    const int target = sim_deficit + headroom;
    const int p0 = pending(setup_type);
    const int inflight = running(setup_type) + p0;
    long n = std::min<long>(submit_budget - submitted,
                            static_cast<long>(target) -
                                static_cast<long>(ready.size()) - inflight);
    if (cores_each > 0) {
      // CPU headroom: free cores must cover queued-but-unplaced setups too.
      const long by_cores =
          scheduler.graph().total_free_cores() / cores_each - p0;
      n = std::min(n, by_cores);
    }
    if (n <= 0) return;
    // Interrupted setups drain before new selections are made (quarantined
    // payloads fall out here too: a requeue may predate the quarantine).
    while (n > 0 && !requeued.empty()) {
      const std::uint64_t payload = requeued.front();
      requeued.pop_front();
      if (quarantine_.quarantined(setup_type, payload)) {
        obs::counter("wm.quarantine_skips").inc();
        continue;
      }
      submitted += submit_via_tracker(setup_type, payload);
      --n;
    }
    if (n > 0)
      for (const auto payload : select_batch(static_cast<std::size_t>(n))) {
        if (quarantine_.quarantined(setup_type, payload)) {
          obs::counter("wm.quarantine_skips").inc();
          continue;
        }
        submitted += submit_via_tracker(setup_type, payload);
      }
  };
  if (shed_level_ < 2)
    fill_setups(config_.cg_setup_type, config_.cg_sim_type, ready_cg_,
              requeued_cg_setup_, config_.cg_ready_target, cg_capacity(),
              [this](std::size_t m) {
                obs::Span select_span("wm.select.patch", "wm");
                std::vector<std::uint64_t> payloads;
                auto picks = patch_selector_.select(m);
                payloads.reserve(picks.size());
                for (const auto& pick : picks)
                  payloads.push_back(pick.point.id);
                obs::counter("wm.selector.cg_picks").inc(payloads.size());
                return payloads;
              });
  if (shed_level_ < 1)
    fill_setups(config_.aa_setup_type, config_.aa_sim_type, ready_aa_,
              requeued_aa_setup_, config_.aa_ready_target, aa_capacity(),
              [this](std::size_t m) {
                obs::Span select_span("wm.select.frame", "wm");
                std::vector<std::uint64_t> payloads;
                auto picks = frame_selector_.select(m);
                payloads.reserve(picks.size());
                for (const auto& pick : picks) payloads.push_back(pick.id);
                obs::counter("wm.selector.aa_picks").inc(payloads.size());
                return payloads;
              });

  if (submitted > 0) maestro_.poll();
  obs::counter("wm.submitted").inc(submitted);
  return submitted;
}

void WorkflowManager::handle_finish(const sched::Job& job) {
  const std::string& type = job.spec.type;
  // Cancelled-before-start jobs leave the pending set; everything else was
  // running.
  if (job.state == sched::JobState::kCancelled && job.start_time <= 0) {
    bump(pending_, type, -1);
  } else {
    bump(running_, type, -1);
  }

  if (!trackers_.has(type)) return;  // e.g. the continuum job
  auto& tracker = trackers_.tracker(type);

  const bool is_cg_setup = type == config_.cg_setup_type;
  const bool is_aa_setup = type == config_.aa_setup_type;
  const bool is_sim = type == config_.cg_sim_type || type == config_.aa_sim_type;

  if (job.state == sched::JobState::kCompleted) {
    tracker.note_completed();
    if (is_cg_setup) ready_cg_.push_back(job.spec.payload);
    if (is_aa_setup) ready_aa_.push_back(job.spec.payload);
    if (is_sim && sim_finished_) sim_finished_(job);
    return;
  }

  if (job.state == sched::JobState::kFailed) {
    if (job.killed_by_node)
      tracker.note_killed_by_fault();
    else
      tracker.note_failed();

    // Speculative twins never resubmit themselves — the original (or its own
    // retry) owns the payload's lifecycle.
    if (job.spec.attrs.count("speculative") > 0) return;

    if (quarantine_.quarantined(type, job.spec.payload)) {
      obs::counter("wm.quarantine_skips").inc();
      if (is_sim && sim_finished_) sim_finished_(job);  // terminal for the app
      return;
    }
    // A live speculative twin is already this payload's retry.
    if (resubmit_veto_ && resubmit_veto_(job)) return;

    if (job.killed_by_node) {
      // Restart-budget attribution: the node died under the job, the payload
      // did nothing wrong — retry without consuming its max_restarts budget.
      tracker.note_restarted();
      submit_via_tracker(type, job.spec.payload);
      util::log_debug("resubmitted node-killed ", type, " payload ",
                      job.spec.payload, " (budget untouched)");
      return;
    }

    int& tries = restarts_[job.spec.payload];
    if (tries < tracker.config().max_restarts) {
      ++tries;
      tracker.note_restarted();
      submit_via_tracker(type, job.spec.payload);
      util::log_debug("resubmitted failed ", type, " payload ",
                      job.spec.payload, " (attempt ", tries, ")");
    } else if (is_sim && sim_finished_) {
      sim_finished_(job);  // give the application the terminal failure
    }
  }
}

void WorkflowManager::resubmit_hung(const sched::Job& job) {
  const std::string& type = job.spec.type;
  if (!trackers_.has(type)) return;
  if (quarantine_.quarantined(type, job.spec.payload)) {
    obs::counter("wm.quarantine_skips").inc();
    return;
  }
  // Hang retries are budget-free (like node kills: the watchdog, not the
  // payload's exit status, ended the job); the quarantine ledger bounds
  // payloads that hang wherever they run.
  auto& tracker = trackers_.tracker(type);
  tracker.note_restarted();
  submit_via_tracker(type, job.spec.payload);
  util::log_debug("resubmitted hung ", type, " payload ", job.spec.payload);
}

bool WorkflowManager::launch_speculative(const sched::Job& job) {
  const std::string& type = job.spec.type;
  if (!trackers_.has(type)) return false;
  // Don't duplicate work the shed policy is rejecting.
  const bool is_aa =
      type == config_.aa_setup_type || type == config_.aa_sim_type;
  if (shed_level_ >= 1 && is_aa) return false;
  if (shed_level_ >= 2 && type == config_.cg_setup_type) return false;

  sched::JobSpec spec = job.spec;  // duration hint and attrs match the twin
  spec.attrs["speculative"] = "1";
  spec.attrs["twin_of"] = std::to_string(job.id);
  trackers_.tracker(type).note_submitted();
  bump(pending_, type, +1);
  maestro_.submit(std::move(spec));
  maestro_.poll();
  return true;
}

bool WorkflowManager::submit_canary(int node) {
  if (config_.canary_type.empty()) return false;
  sched::JobSpec spec;
  spec.name = "canary-" + std::to_string(node);
  spec.type = config_.canary_type;
  spec.request.slot = sched::Slot{1, 0};
  spec.request.pin_node = node;
  spec.est_duration = config_.canary_duration_s;
  spec.attrs["canary_node"] = std::to_string(node);
  bump(pending_, config_.canary_type, +1);
  maestro_.submit(std::move(spec));
  maestro_.poll();
  return true;
}

void WorkflowManager::shed_pending(const std::string& type) {
  if (type.empty()) return;
  auto& scheduler = maestro_.scheduler();
  auto ids = scheduler.active_jobs();
  std::sort(ids.begin(), ids.end());  // deterministic cancel order
  for (const auto id : ids) {
    const auto& job = scheduler.job(id);
    if (job.state != sched::JobState::kPending || job.spec.type != type)
      continue;
    if (job.spec.attrs.count("speculative") > 0) continue;  // dies with twin
    const std::uint64_t payload = job.spec.payload;
    maestro_.cancel(id);  // handle_finish rebalances pending_
    if (type == config_.cg_sim_type)
      ready_cg_.push_front(payload);
    else if (type == config_.aa_sim_type)
      ready_aa_.push_front(payload);
    else if (type == config_.cg_setup_type)
      requeued_cg_setup_.push_front(payload);
    else if (type == config_.aa_setup_type)
      requeued_aa_setup_.push_front(payload);
  }
}

void WorkflowManager::set_shed_level(int level, double now) {
  (void)now;
  if (level == shed_level_) return;
  const int prev = shed_level_;
  shed_level_ = level;
  obs::counter("wm.shed_changes").inc();
  util::log_debug("shed level ", prev, " -> ", level);
  if (level >= 1 && prev < 1) {
    // aa sheds before cg (the paper's priority ordering): pending aa work is
    // withdrawn; payloads return to the front of their queues for recovery.
    shed_pending(config_.aa_sim_type);
    shed_pending(config_.aa_setup_type);
  }
  if (level >= 2 && prev < 2) shed_pending(config_.cg_setup_type);
  // Dropping the level needs no action here: the next maintain() pass
  // resumes submission from the preserved queues.
}

void WorkflowManager::requeue_setup(const std::string& type,
                                    std::uint64_t payload) {
  if (type == config_.cg_setup_type)
    requeued_cg_setup_.push_back(payload);
  else if (type == config_.aa_setup_type)
    requeued_aa_setup_.push_back(payload);
  else
    throw util::Error("requeue_setup: unknown setup type " + type);
}

namespace {
void write_deque(util::ByteWriter& w, const std::deque<std::uint64_t>& q) {
  w.u64(q.size());
  for (const auto v : q) w.u64(v);
}

std::deque<std::uint64_t> read_deque(util::ByteReader& r) {
  std::deque<std::uint64_t> q;
  const auto n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) q.push_back(r.u64());
  return q;
}
}  // namespace

util::Bytes WorkflowManager::serialize() const {
  util::ByteWriter w;
  write_deque(w, ready_cg_);
  write_deque(w, ready_aa_);
  write_deque(w, requeued_cg_setup_);
  write_deque(w, requeued_aa_setup_);
  w.u64(restarts_.size());
  for (const auto& [payload, tries] : restarts_) {
    w.u64(payload);
    w.u32(static_cast<std::uint32_t>(tries));
  }
  w.bytes(patch_selector_.serialize());
  w.bytes(frame_selector_.serialize());
  w.bytes(quarantine_.serialize());
  return std::move(w).take();
}

void WorkflowManager::restore(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  ready_cg_ = read_deque(r);
  ready_aa_ = read_deque(r);
  requeued_cg_setup_ = read_deque(r);
  requeued_aa_setup_ = read_deque(r);
  restarts_.clear();
  const auto n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto payload = r.u64();
    restarts_[payload] = static_cast<int>(r.u32());
  }
  const util::Bytes patch_state = r.bytes();
  patch_selector_.restore(patch_state);
  const util::Bytes frame_state = r.bytes();
  frame_selector_.restore(frame_state);
  if (!r.at_end()) {  // blobs from before the supervision plane lack this
    const util::Bytes quarantine_state = r.bytes();
    quarantine_.restore(quarantine_state);
  }
}

WorkflowManager::CarryOver WorkflowManager::carry_over() const {
  return CarryOver{ready_cg_, ready_aa_, requeued_cg_setup_,
                   requeued_aa_setup_, quarantine_.serialize()};
}

void WorkflowManager::restore_carry_over(const CarryOver& state) {
  ready_cg_ = state.ready_cg;
  ready_aa_ = state.ready_aa;
  requeued_cg_setup_ = state.requeued_cg_setup;
  requeued_aa_setup_ = state.requeued_aa_setup;
  if (!state.quarantine.empty()) quarantine_.restore(state.quarantine);
}

}  // namespace mummi::wm
