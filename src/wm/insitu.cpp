#include "wm/insitu.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/rng.hpp"

namespace mummi::wm {

namespace {

/// Poisson draw: Knuth's product method for small means, rounded-normal
/// approximation above (never reached at campaign candidate rates, but keeps
/// the helper total). Consumes a data-independent *stream*, not a shared RNG.
std::uint32_t draw_poisson(util::Rng& rng, double mean) {
  if (!(mean > 0.0)) return 0;
  if (mean < 16.0) {
    const double limit = std::exp(-mean);
    double p = rng.uniform();
    std::uint32_t k = 0;
    while (p > limit) {
      p *= rng.uniform();
      ++k;
    }
    return k;
  }
  const double x = rng.normal(mean, std::sqrt(mean));
  return x > 0.0 ? static_cast<std::uint32_t>(std::llround(x)) : 0u;
}

md::Vec3 random_unit(util::Rng& rng) {
  md::Vec3 v{rng.normal(), rng.normal(), rng.normal()};
  const md::real n = std::max(v.norm(), md::real(1e-9));
  return v * (1.0 / n);
}

coupling::CgSystemInfo make_proto(const InSituConfig& config) {
  coupling::CgSystemInfo info;
  info.system.box.length = {config.box_xy, config.box_xy, config.box_z};
  info.heads_by_species.resize(static_cast<std::size_t>(config.n_species));
  for (int s = 0; s < config.n_species; ++s)
    for (int h = 0; h < config.heads_per_species; ++h)
      info.heads_by_species[static_cast<std::size_t>(s)].push_back(
          info.system.add_particle({}, s, 72.0));
  const int protein_type = config.n_species;
  for (int b = 0; b < config.ras_beads + config.raf_beads; ++b)
    info.protein_beads.push_back(
        info.system.add_particle({}, protein_type, 72.0));
  info.ras_beads = config.ras_beads;
  return info;
}

}  // namespace

struct InSituPlane::SimState {
  md::System system;
  coupling::CgAnalysis analysis;
  InSituResult result;

  SimState(const coupling::CgSystemInfo& info, std::uint64_t sim_id,
           md::real rmax, std::size_t bins)
      : system(info.system), analysis(info, sim_id, rmax, bins) {}
};

InSituPlane::InSituPlane(std::uint64_t seed, InSituConfig config)
    : seed_(seed), config_(config), proto_(make_proto(config_)) {}

InSituPlane::~InSituPlane() = default;

std::uint64_t InSituPlane::stream_seed(std::uint64_t seed, std::uint64_t sim,
                                       std::uint64_t tick,
                                       std::uint64_t lane) {
  std::uint64_t z = seed;
  z += 0x9e3779b97f4a7c15ULL * (sim + 1);
  z += 0xbf58476d1ce4e5b9ULL * (tick + 1);
  z += 0x94d049bb133111ebULL * (lane + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

InSituPlane::SimState& InSituPlane::state_for(std::uint64_t payload) {
  auto it = states_.find(payload);
  if (it == states_.end())
    it = states_
             .emplace(payload, std::make_unique<SimState>(
                                   proto_, payload, config_.rdf_rmax,
                                   config_.rdf_bins))
             .first;
  return *it->second;
}

void InSituPlane::step_sim(std::uint64_t payload, SimState& st,
                           std::uint64_t tick_key) const {
  util::Rng rng(stream_seed(seed_, payload, tick_key, 0));
  md::System& sys = st.system;
  const md::Vec3 box = sys.box.length;
  for (const auto& species : proto_.heads_by_species)
    for (const int i : species)
      sys.pos[static_cast<std::size_t>(i)] = {rng.uniform(0.0, box.x),
                                              rng.uniform(0.0, box.y),
                                              rng.uniform(0.0, box.z)};
  // RAS-RAF backbone: a 0.47 nm-bond random walk near the mid-plane, so
  // tilt/rotation/separation descriptors cover the frame-selector bins.
  md::Vec3 p{rng.uniform(0.0, box.x), rng.uniform(0.0, box.y),
             0.5 * box.z + rng.uniform(-0.5, 0.5)};
  for (const int i : proto_.protein_beads) {
    sys.pos[static_cast<std::size_t>(i)] = sys.box.wrap(p);
    p += 0.47 * random_unit(rng);
  }
}

void InSituPlane::analyze_sim(std::uint64_t payload, SimState& st,
                              std::uint64_t tick_key, double candidate_mean,
                              InSituResult& out) const {
  out.sim = payload;
  out.frame = st.analysis.analyze(
      st.system, static_cast<long>(tick_key & 0x7fffffffffffffffULL));
  out.rdfs = st.analysis.take_rdfs();
  util::Rng rng(stream_seed(seed_, payload, tick_key, 1));
  out.candidates = draw_poisson(rng, candidate_mean);
  out.extra.clear();
  for (std::uint32_t k = 1; k < out.candidates; ++k) {
    const auto tilt = static_cast<float>(90.0 * std::sqrt(rng.uniform()));
    const auto rot = static_cast<float>(rng.uniform(0.0, 360.0));
    const auto sep = static_cast<float>(std::min(3.0, rng.exponential(1.0)));
    out.extra.push_back({tilt, rot, sep});
  }
}

std::uint64_t InSituPlane::tick(
    const std::vector<std::uint64_t>& payloads, std::uint64_t tick_key,
    double candidate_mean,
    const std::function<void(const InSituResult&)>& fold) {
  // Prune sims that stopped running, create the newly started ones (serial:
  // allocation and hash-map mutation stay off the workers).
  for (auto it = states_.begin(); it != states_.end();) {
    if (!std::binary_search(payloads.begin(), payloads.end(), it->first))
      it = states_.erase(it);
    else
      ++it;
  }
  const std::size_t n = payloads.size();
  std::vector<SimState*> slots(n);
  for (std::size_t i = 0; i < n; ++i) slots[i] = &state_for(payloads[i]);

  std::uint64_t fold_ns = 0;
  util::pipeline_two_stage(
      config_.pool, n, kInSituChunk,
      // Stage one (pool task, one chunk ahead): stepping.
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
          step_sim(payloads[i], *slots[i], tick_key);
      },
      // Stage two (caller, ascending chunks): fan the analyses out across
      // the pool, then fold this chunk serially — so the fold is globally
      // ascending in sim id while the next chunk's stepping is in flight.
      [&](std::size_t lo, std::size_t hi) {
        util::for_blocks(
            config_.pool, hi - lo, kInSituSubBlock,
            [&](std::size_t b, std::size_t e) {
              for (std::size_t i = lo + b; i < lo + e; ++i)
                analyze_sim(payloads[i], *slots[i], tick_key, candidate_mean,
                            slots[i]->result);
            });
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = lo; i < hi; ++i) fold(slots[i]->result);
        fold_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
      });
  return fold_ns;
}

}  // namespace mummi::wm
