#include "wm/selectors.hpp"

#include "util/error.hpp"

namespace mummi::wm {

PatchSelector::PatchSelector(int dim, int n_queues, std::size_t capacity)
    : dim_(dim), capacity_(capacity) {
  MUMMI_CHECK_MSG(n_queues > 0, "need at least one queue");
  queues_.reserve(static_cast<std::size_t>(n_queues));
  for (int q = 0; q < n_queues; ++q)
    queues_.push_back(std::make_unique<ml::FpsSampler>(dim, capacity));
}

void PatchSelector::add(int queue, const std::vector<ml::HDPoint>& points) {
  std::lock_guard lock(mutex_);
  MUMMI_CHECK_MSG(queue >= 0 && queue < n_queues(), "queue out of range");
  queues_[static_cast<std::size_t>(queue)]->add_candidates(points);
}

void PatchSelector::add(int queue, const ml::PointStore& points) {
  std::lock_guard lock(mutex_);
  MUMMI_CHECK_MSG(queue >= 0 && queue < n_queues(), "queue out of range");
  queues_[static_cast<std::size_t>(queue)]->add_candidates(points);
}

std::vector<PatchSelection> PatchSelector::select(std::size_t k) {
  std::lock_guard lock(mutex_);
  const auto nq = queues_.size();
  // Round-robin across queues so every protein-configuration class keeps
  // getting representation. The walk is simulated against per-queue counts
  // first (a queue serves a pick iff it is non-empty — selection never
  // empties a non-empty pool), then each queue fills its share in one
  // batched select. Per-queue selection order is independent of the other
  // queues, so the interleaved result matches the per-pick loop exactly.
  std::vector<std::size_t> avail(nq), want(nq, 0);
  for (std::size_t q = 0; q < nq; ++q)
    avail[q] = std::min(queues_[q]->candidate_count(), capacity_);
  std::vector<int> pick_order;
  pick_order.reserve(k);
  std::size_t empty_streak = 0;
  while (pick_order.size() < k && empty_streak < nq) {
    const auto q = static_cast<std::size_t>(next_queue_);
    if (avail[q] > 0) {
      --avail[q];
      ++want[q];
      pick_order.push_back(next_queue_);
      empty_streak = 0;
    } else {
      ++empty_streak;
    }
    next_queue_ = (next_queue_ + 1) % n_queues();
  }

  std::vector<std::vector<ml::HDPoint>> picked(nq);
  for (std::size_t q = 0; q < nq; ++q)
    if (want[q] > 0) picked[q] = queues_[q]->select(want[q]);

  std::vector<PatchSelection> out;
  out.reserve(pick_order.size());
  std::vector<std::size_t> cursor(nq, 0);
  for (const int q : pick_order) {
    auto& from = picked[static_cast<std::size_t>(q)];
    MUMMI_CHECK_MSG(cursor[static_cast<std::size_t>(q)] < from.size(),
                    "queue under-served its simulated picks");
    out.push_back(PatchSelection{
        std::move(from[cursor[static_cast<std::size_t>(q)]++]), q});
  }
  return out;
}

std::size_t PatchSelector::update_ranks() {
  std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (auto& q : queues_) {
    q->update_ranks();
    total += q->candidate_count();
  }
  return total;
}

std::size_t PatchSelector::candidate_count() const {
  std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& q : queues_) total += q->candidate_count();
  return total;
}

std::size_t PatchSelector::selected_count() const {
  std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& q : queues_) total += q->selected_count();
  return total;
}

util::Bytes PatchSelector::serialize() const {
  std::lock_guard lock(mutex_);
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(queues_.size()));
  w.u32(static_cast<std::uint32_t>(next_queue_));
  for (const auto& q : queues_) w.bytes(q->serialize());
  return std::move(w).take();
}

void PatchSelector::restore(const util::Bytes& bytes) {
  std::lock_guard lock(mutex_);
  util::ByteReader r(bytes);
  const auto nq = r.u32();
  MUMMI_CHECK_MSG(nq == queues_.size(), "queue count mismatch on restore");
  next_queue_ = static_cast<int>(r.u32());
  for (std::size_t q = 0; q < queues_.size(); ++q)
    queues_[q] = std::make_unique<ml::FpsSampler>(
        ml::FpsSampler::deserialize(r.bytes()));
}

void PatchSelector::set_history_enabled(bool enabled) {
  std::lock_guard lock(mutex_);
  for (auto& q : queues_) q->set_history_enabled(enabled);
}

void FrameSelector::set_history_enabled(bool enabled) {
  std::lock_guard lock(mutex_);
  sampler_->set_history_enabled(enabled);
}

std::vector<std::vector<float>> FrameSelector::default_edges() {
  // tilt: 0-90 deg in 6 bins; rotation: 0-360 in 8 bins; separation: 0-3 nm
  // in 6 bins.
  return {
      {15, 30, 45, 60, 75},
      {45, 90, 135, 180, 225, 270, 315},
      {0.5, 1.0, 1.5, 2.0, 2.5},
  };
}

FrameSelector::FrameSelector(double importance, std::uint64_t seed)
    : sampler_(std::make_unique<ml::BinnedSampler>(default_edges(), importance,
                                                   seed)) {}

void FrameSelector::add(const std::vector<ml::HDPoint>& points) {
  std::lock_guard lock(mutex_);
  sampler_->add_candidates(points);
}

void FrameSelector::add(const ml::PointStore& points) {
  std::lock_guard lock(mutex_);
  sampler_->add_candidates(points);
}

std::vector<ml::HDPoint> FrameSelector::select(std::size_t k) {
  std::lock_guard lock(mutex_);
  return sampler_->select(k);
}

std::size_t FrameSelector::candidate_count() const {
  std::lock_guard lock(mutex_);
  return sampler_->candidate_count();
}

std::size_t FrameSelector::selected_count() const {
  std::lock_guard lock(mutex_);
  return sampler_->selected_count();
}

util::Bytes FrameSelector::serialize() const {
  std::lock_guard lock(mutex_);
  return sampler_->serialize();
}

void FrameSelector::restore(const util::Bytes& bytes) {
  std::lock_guard lock(mutex_);
  sampler_ = std::make_unique<ml::BinnedSampler>(
      ml::BinnedSampler::deserialize(bytes));
}

}  // namespace mummi::wm
