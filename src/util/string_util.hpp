// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mummi::util {

/// Removes leading/trailing whitespace.
[[nodiscard]] std::string trim(std::string_view s);

/// Splits on a delimiter; empty fields are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// True if `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Glob-style match supporting '*' and '?' only (the subset Redis KEYS uses).
[[nodiscard]] bool glob_match(std::string_view pattern, std::string_view text);

/// Renders a byte count as a human-readable string ("374.0 MB").
[[nodiscard]] std::string human_bytes(double bytes);

}  // namespace mummi::util
