// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mummi::util {

/// Removes leading/trailing whitespace.
[[nodiscard]] std::string trim(std::string_view s);

/// Splits on a delimiter; empty fields are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// True if `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Glob-style match supporting '*' and '?' only (the subset Redis KEYS uses).
/// Fast paths: "*" matches everything without scanning, and a pattern whose
/// only wildcard is a trailing '*' ("rdf:*") reduces to a prefix compare —
/// the shapes the KV namespace scans issue millions of times.
[[nodiscard]] bool glob_match(std::string_view pattern, std::string_view text);

/// Longest literal prefix of a glob pattern (the characters before the first
/// '*' or '?'). "rdf:1?" -> "rdf:1", "*" -> "", "plain" -> "plain". Lets
/// callers route a pattern to an index keyed on that prefix.
[[nodiscard]] std::string_view glob_literal_prefix(std::string_view pattern);

/// Renders a byte count as a human-readable string ("374.0 MB").
[[nodiscard]] std::string human_bytes(double bytes);

}  // namespace mummi::util
