// Armored checkpoint I/O.
//
// Paper Sec. 4.2/4.4: "I/O armoring and redundancy is used to guard against
// filesystem failures, e.g., backups of checkpoint files and retrials if
// reading/writing fails", and components "can be restored completely after
// any such crash". CheckpointFile provides:
//   - atomic replace (write temp, fsync, rename),
//   - a rotating .bak of the previous good checkpoint,
//   - bounded retries on transient failures,
//   - content checksum so a torn write is detected on load and the backup is
//     used instead.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "util/bytes.hpp"

namespace mummi::util {

class CheckpointFile {
 public:
  /// `path` is the primary checkpoint location; "<path>.bak" holds the
  /// previous good version.
  explicit CheckpointFile(std::string path, int max_retries = 3);

  /// Atomically replaces the checkpoint with `payload`.
  /// Keeps the previous version as backup. Throws IoError after retries.
  void save(const Bytes& payload) const;

  /// Loads the newest valid checkpoint: primary first, backup on checksum or
  /// read failure. Returns nullopt when neither exists.
  [[nodiscard]] std::optional<Bytes> load() const;

  /// True if a primary or backup checkpoint exists.
  [[nodiscard]] bool exists() const;

  /// Removes primary and backup (for tests and controlled resets).
  void remove() const;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  [[nodiscard]] std::optional<Bytes> load_one(const std::string& p) const;

  std::string path_;
  int max_retries_;
};

/// Reads a whole file into bytes; nullopt if it does not exist.
[[nodiscard]] std::optional<Bytes> read_file(const std::string& path);

/// Writes bytes to a file (truncating); retries transient failures.
void write_file(const std::string& path, const Bytes& data, int max_retries = 3);

/// Creates a directory and parents, like `mkdir -p`.
void make_dirs(const std::string& path);

/// Removes a file if present; returns whether it existed.
bool remove_file(const std::string& path);

}  // namespace mummi::util
