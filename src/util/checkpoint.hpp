// Armored checkpoint I/O.
//
// Paper Sec. 4.2/4.4: "I/O armoring and redundancy is used to guard against
// filesystem failures, e.g., backups of checkpoint files and retrials if
// reading/writing fails", and components "can be restored completely after
// any such crash". CheckpointFile provides:
//   - atomic replace (write sibling .tmp, rename over the primary),
//   - a rotating .bak of the previous good checkpoint,
//   - bounded retries on transient failures,
//   - a checksummed frame carrying a monotone generation counter (frame v3),
//     so load() recovers the newest *complete* state among
//     {primary, .bak, .tmp} — in particular a crash between the .bak
//     rotation and the final rename no longer loses the fully-written .tmp.
//
// The save path is instrumented with util::crash_point boundaries
// (ckpt.save.pre_tmp / post_tmp / post_bak / post_rename); the crash-point
// sweep (tests + bench_resilience --crash-sweep) kills a run at each of them
// and proves recovery, per the crash-consistency contract in DESIGN.md 4i.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "util/backoff.hpp"
#include "util/bytes.hpp"

namespace mummi::util {

/// How armored file writes retry: capped exponential backoff between
/// attempts, waited out by `sleep` (wall clock by default; tests and the
/// virtual-time campaign substitute recorders/accountants).
struct IoRetryPolicy {
  BackoffPolicy backoff{/*max_attempts=*/4, /*base_delay_s=*/1e-3,
                        /*multiplier=*/2.0, /*max_delay_s=*/0.25,
                        /*jitter_frac=*/0.25};
  SleepFn sleep;                // empty = sleep for real (wall_sleeper)
  std::uint64_t jitter_seed = 0x10aded;  // deterministic jitter stream
};

class CheckpointFile {
 public:
  /// `path` is the primary checkpoint location; "<path>.bak" holds the
  /// previous good version.
  explicit CheckpointFile(std::string path, IoRetryPolicy retry = {});

  /// Back-compat shorthand: `max_retries` extra attempts after the first.
  CheckpointFile(std::string path, int max_retries);

  /// Atomically replaces the checkpoint with `payload`, stamped with the
  /// next generation. Keeps the previous version as backup. Throws IoError
  /// after retries.
  void save(const Bytes& payload) const;

  /// Loads the newest complete checkpoint: the highest-generation candidate
  /// among {primary, .bak, .tmp} that passes its checksum (ties — legacy v2
  /// frames — prefer primary, then .bak). Logs and counts
  /// (`ckpt.recovered_from`) when a non-primary wins. Returns nullopt when
  /// no valid candidate exists.
  [[nodiscard]] std::optional<Bytes> load() const;

  /// True if any of primary / .bak / .tmp exists (validity not checked).
  [[nodiscard]] bool exists() const;

  /// Removes primary, backup and temp (for tests and controlled resets).
  void remove() const;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  /// Monotone per-path frame counter; a fresh handle resumes past every
  /// on-disk candidate (including torn ones) so generations never regress.
  [[nodiscard]] std::uint64_t next_generation() const;

  std::string path_;
  IoRetryPolicy retry_;
  // Cached generation high-water mark; lazily seeded from disk. save() and
  // load() are logically const (the checkpoint *content* is the state).
  mutable std::uint64_t gen_ = 0;
  mutable bool gen_known_ = false;
};

/// Reads a whole file into bytes; nullopt if it does not exist.
[[nodiscard]] std::optional<Bytes> read_file(const std::string& path);

/// Writes bytes to a file (truncating); retries transient failures under the
/// policy's capped-exponential backoff instead of hammering the filesystem.
void write_file(const std::string& path, const Bytes& data,
                const IoRetryPolicy& retry = {});

/// Back-compat shorthand: `max_retries` extra attempts after the first.
void write_file(const std::string& path, const Bytes& data, int max_retries);

/// Creates a directory and parents, like `mkdir -p`.
void make_dirs(const std::string& path);

/// Removes a file if present; returns whether it existed.
bool remove_file(const std::string& path);

}  // namespace mummi::util
