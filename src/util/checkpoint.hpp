// Armored checkpoint I/O.
//
// Paper Sec. 4.2/4.4: "I/O armoring and redundancy is used to guard against
// filesystem failures, e.g., backups of checkpoint files and retrials if
// reading/writing fails", and components "can be restored completely after
// any such crash". CheckpointFile provides:
//   - atomic replace (write temp, fsync, rename),
//   - a rotating .bak of the previous good checkpoint,
//   - bounded retries on transient failures,
//   - content checksum so a torn write is detected on load and the backup is
//     used instead.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "util/backoff.hpp"
#include "util/bytes.hpp"

namespace mummi::util {

/// How armored file writes retry: capped exponential backoff between
/// attempts, waited out by `sleep` (wall clock by default; tests and the
/// virtual-time campaign substitute recorders/accountants).
struct IoRetryPolicy {
  BackoffPolicy backoff{/*max_attempts=*/4, /*base_delay_s=*/1e-3,
                        /*multiplier=*/2.0, /*max_delay_s=*/0.25,
                        /*jitter_frac=*/0.25};
  SleepFn sleep;                // empty = sleep for real (wall_sleeper)
  std::uint64_t jitter_seed = 0x10aded;  // deterministic jitter stream
};

class CheckpointFile {
 public:
  /// `path` is the primary checkpoint location; "<path>.bak" holds the
  /// previous good version.
  explicit CheckpointFile(std::string path, IoRetryPolicy retry = {});

  /// Back-compat shorthand: `max_retries` extra attempts after the first.
  CheckpointFile(std::string path, int max_retries);

  /// Atomically replaces the checkpoint with `payload`.
  /// Keeps the previous version as backup. Throws IoError after retries.
  void save(const Bytes& payload) const;

  /// Loads the newest valid checkpoint: primary first, backup on checksum or
  /// read failure. Returns nullopt when neither exists.
  [[nodiscard]] std::optional<Bytes> load() const;

  /// True if a primary or backup checkpoint exists.
  [[nodiscard]] bool exists() const;

  /// Removes primary and backup (for tests and controlled resets).
  void remove() const;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  [[nodiscard]] std::optional<Bytes> load_one(const std::string& p) const;

  std::string path_;
  IoRetryPolicy retry_;
};

/// Reads a whole file into bytes; nullopt if it does not exist.
[[nodiscard]] std::optional<Bytes> read_file(const std::string& path);

/// Writes bytes to a file (truncating); retries transient failures under the
/// policy's capped-exponential backoff instead of hammering the filesystem.
void write_file(const std::string& path, const Bytes& data,
                const IoRetryPolicy& retry = {});

/// Back-compat shorthand: `max_retries` extra attempts after the first.
void write_file(const std::string& path, const Bytes& data, int max_retries);

/// Creates a directory and parents, like `mkdir -p`.
void make_dirs(const std::string& path);

/// Removes a file if present; returns whether it existed.
bool remove_file(const std::string& path);

}  // namespace mummi::util
