#include "util/string_util.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace mummi::util {

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string_view glob_literal_prefix(std::string_view pattern) {
  const std::size_t wild = pattern.find_first_of("*?");
  return wild == std::string_view::npos ? pattern : pattern.substr(0, wild);
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Fast paths for the two shapes namespace scans produce in bulk: a bare
  // "*" and a literal prefix followed by a single trailing '*'.
  if (pattern.size() == 1 && pattern[0] == '*') return true;
  const std::size_t wild = pattern.find_first_of("*?");
  if (wild != std::string_view::npos && pattern[wild] == '*' &&
      wild + 1 == pattern.size())
    return text.size() >= wild && text.substr(0, wild) == pattern.substr(0, wild);
  // Iterative wildcard match with backtracking on the last '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string human_bytes(double bytes) {
  static const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 5) {
    bytes /= 1024.0;
    ++u;
  }
  return format("%.1f %s", bytes, units[u]);
}

}  // namespace mummi::util
