#include "util/config.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace mummi::util {

Config Config::parse(const std::string& text) {
  Config cfg;
  std::string section;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string s = trim(line);
    if (s.empty() || s[0] == '#' || s[0] == ';') continue;
    if (s.front() == '[') {
      if (s.back() != ']')
        throw ConfigError(format("unterminated section header at line %d", lineno));
      section = trim(s.substr(1, s.size() - 2));
      continue;
    }
    const auto eq = s.find('=');
    if (eq == std::string::npos)
      throw ConfigError(format("expected key=value at line %d", lineno));
    const std::string key = trim(s.substr(0, eq));
    const std::string value = trim(s.substr(eq + 1));
    if (key.empty())
      throw ConfigError(format("empty key at line %d", lineno));
    cfg.values_[section.empty() ? key : section + "." + key] = value;
  }
  return cfg;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open config file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

void Config::set(const std::string& path, const std::string& value) {
  values_[path] = value;
}

bool Config::has(const std::string& path) const {
  return values_.count(path) > 0;
}

std::optional<std::string> Config::find(const std::string& path) const {
  auto it = values_.find(path);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& path) const {
  auto v = find(path);
  if (!v) throw ConfigError("missing config key: " + path);
  return *v;
}

std::string Config::get_string(const std::string& path,
                               const std::string& fallback) const {
  return find(path).value_or(fallback);
}

namespace {
long parse_int(const std::string& path, const std::string& raw) {
  char* end = nullptr;
  const long v = std::strtol(raw.c_str(), &end, 10);
  if (end == raw.c_str() || *end != '\0')
    throw ConfigError("config key " + path + " is not an integer: " + raw);
  return v;
}

double parse_double(const std::string& path, const std::string& raw) {
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0')
    throw ConfigError("config key " + path + " is not a number: " + raw);
  return v;
}

bool parse_bool(const std::string& path, const std::string& raw) {
  if (raw == "true" || raw == "yes" || raw == "on" || raw == "1") return true;
  if (raw == "false" || raw == "no" || raw == "off" || raw == "0") return false;
  throw ConfigError("config key " + path + " is not a boolean: " + raw);
}
}  // namespace

long Config::get_int(const std::string& path) const {
  return parse_int(path, get_string(path));
}

long Config::get_int(const std::string& path, long fallback) const {
  auto v = find(path);
  return v ? parse_int(path, *v) : fallback;
}

double Config::get_double(const std::string& path) const {
  return parse_double(path, get_string(path));
}

double Config::get_double(const std::string& path, double fallback) const {
  auto v = find(path);
  return v ? parse_double(path, *v) : fallback;
}

bool Config::get_bool(const std::string& path) const {
  return parse_bool(path, get_string(path));
}

bool Config::get_bool(const std::string& path, bool fallback) const {
  auto v = find(path);
  return v ? parse_bool(path, *v) : fallback;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

std::string Config::to_string() const {
  // Group by section to emit valid INI.
  std::map<std::string, std::vector<std::pair<std::string, std::string>>> by_section;
  for (const auto& [path, value] : values_) {
    const auto dot = path.rfind('.');
    if (dot == std::string::npos)
      by_section[""].emplace_back(path, value);
    else
      by_section[path.substr(0, dot)].emplace_back(path.substr(dot + 1), value);
  }
  std::ostringstream out;
  for (const auto& [section, kvs] : by_section) {
    if (!section.empty()) out << "[" << section << "]\n";
    for (const auto& [k, v] : kvs) out << k << " = " << v << "\n";
  }
  return out.str();
}

void Config::merge_from(const Config& other) {
  for (const auto& [k, v] : other.values_) values_[k] = v;
}

}  // namespace mummi::util
