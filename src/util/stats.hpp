// Streaming statistics (Welford) and small summary helpers.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace mummi::util {

/// Numerically stable running mean/variance/min/max accumulator.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n = static_cast<double>(n_ + other.n_);
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / n;
    mean_ += delta * static_cast<double>(other.n_) / n;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile of a sample (linear interpolation); p in [0, 100].
/// Copies and sorts — intended for post-hoc reporting, not hot paths.
inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace mummi::util
