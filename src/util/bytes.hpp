// Byte-stream serialization.
//
// The paper's data interface moves "generic byte streams" between backends
// (filesystem / tar archive / database) with a single configuration switch.
// ByteWriter/ByteReader are the canonical encoding used by every component
// that serializes state: little-endian fixed-width integers, doubles, length-
// prefixed strings and vectors.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace mummi::util {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f32(float v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }

  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }

  void bytes(const Bytes& b) {
    u64(b.size());
    raw(b.data(), b.size());
  }

  template <typename T>
  void vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(v.size());
    raw(v.data(), v.size() * sizeof(T));
  }

  void raw(const void* p, std::size_t n) {
    if (n == 0) return;  // empty vectors hand out a null data()
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  [[nodiscard]] const Bytes& data() const& { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const Bytes& data) : data_(data.data()), size_(data.size()) {}
  // A reader only borrows the buffer; binding a temporary would dangle.
  explicit ByteReader(Bytes&&) = delete;
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() { std::uint8_t v; raw(&v, 1); return v; }
  std::uint32_t u32() { std::uint32_t v; raw(&v, sizeof v); return v; }
  std::uint64_t u64() { std::uint64_t v; raw(&v, sizeof v); return v; }
  std::int64_t i64() { std::int64_t v; raw(&v, sizeof v); return v; }
  float f32() { float v; raw(&v, sizeof v); return v; }
  double f64() { double v; raw(&v, sizeof v); return v; }

  std::string str() {
    const auto n = len(u64());
    std::string s(n, '\0');
    raw(s.data(), n);
    return s;
  }

  Bytes bytes() {
    const auto n = len(u64());
    Bytes b(n);
    raw(b.data(), n);
    return b;
  }

  template <typename T>
  std::vector<T> vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto count = u64();
    if (count > remaining() / sizeof(T))
      throw FormatError("byte stream truncated (vector)");
    std::vector<T> v(count);
    raw(v.data(), count * sizeof(T));
    return v;
  }

  void raw(void* p, std::size_t n) {
    if (n > remaining()) throw FormatError("byte stream truncated");
    if (n == 0) return;  // empty vectors hand out a null data()
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
  }

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == size_; }

 private:
  std::size_t len(std::uint64_t n) {
    if (n > remaining()) throw FormatError("byte stream truncated (length)");
    return static_cast<std::size_t>(n);
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Converts between Bytes and std::string (for text payloads).
[[nodiscard]] Bytes to_bytes(const std::string& s);
[[nodiscard]] std::string to_string(const Bytes& b);

/// FNV-1a 64-bit hash — key sharding in the KV cluster and content checks.
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t n);
[[nodiscard]] std::uint64_t fnv1a(const std::string& s);

}  // namespace mummi::util
