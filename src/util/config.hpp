// Hierarchical key-value configuration.
//
// MuMMI's job trackers, data interfaces and feedback managers are customized
// "using a combination of inherited classes and configuration files"
// (paper Sec. 4.3). Config is that file format: INI-style sections with typed
// accessors, defaults, and dotted-path lookup ("section.key").
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mummi::util {

class Config {
 public:
  Config() = default;

  /// Parses INI-style text: `[section]` headers, `key = value` pairs,
  /// `#`/`;` comments. Keys before any header land in the "" section.
  static Config parse(const std::string& text);

  /// Loads and parses a file. Throws IoError / ConfigError.
  static Config load(const std::string& path);

  /// Sets a value, overwriting any existing one. Path is "section.key" or
  /// just "key" for the root section.
  void set(const std::string& path, const std::string& value);

  [[nodiscard]] bool has(const std::string& path) const;

  /// Typed getters. The non-defaulted forms throw ConfigError when the key
  /// is missing or malformed; the defaulted forms return the fallback only
  /// when the key is missing (a malformed value still throws).
  [[nodiscard]] std::string get_string(const std::string& path) const;
  [[nodiscard]] std::string get_string(const std::string& path,
                                       const std::string& fallback) const;
  [[nodiscard]] long get_int(const std::string& path) const;
  [[nodiscard]] long get_int(const std::string& path, long fallback) const;
  [[nodiscard]] double get_double(const std::string& path) const;
  [[nodiscard]] double get_double(const std::string& path,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& path) const;
  [[nodiscard]] bool get_bool(const std::string& path, bool fallback) const;

  /// All keys (dotted paths) in deterministic (sorted) order.
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Serializes back to INI text (round-trips through parse()).
  [[nodiscard]] std::string to_string() const;

  /// Overlays another config on top of this one (other wins on conflicts) —
  /// how application configs extend the coordination defaults.
  void merge_from(const Config& other);

 private:
  [[nodiscard]] std::optional<std::string> find(const std::string& path) const;

  std::map<std::string, std::string> values_;  // dotted path -> raw string
};

}  // namespace mummi::util
