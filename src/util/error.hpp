// Error types and invariant-checking macros used across mummi-cpp.
#pragma once

#include <stdexcept>
#include <string>

namespace mummi::util {

/// Base class for all errors raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when configuration is missing or malformed.
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Raised on I/O failures that survived armored retries.
class IoError : public Error {
 public:
  using Error::Error;
};

/// Raised when a datastore key/namespace is absent or conflicts.
class StoreError : public Error {
 public:
  using Error::Error;
};

/// Raised when a store/service is temporarily unreachable (shard down,
/// injected transient I/O error). Distinct from StoreError so retry layers
/// can tell "retry later" apart from "the record does not exist".
class UnavailableError : public StoreError {
 public:
  using StoreError::StoreError;
};

/// Raised when a job specification cannot be satisfied or tracked.
class SchedError : public Error {
 public:
  using Error::Error;
};

/// Raised on malformed serialized data (checkpoints, npy, tar, ...).
class FormatError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw Error(std::string("check failed: ") + expr + " at " + file + ":" +
              std::to_string(line) + (msg.empty() ? "" : ": " + msg));
}
}  // namespace detail

}  // namespace mummi::util

/// Runtime invariant check; throws mummi::util::Error when violated.
/// Always active (not compiled out in release builds): the workflow manager
/// must fail loudly, not corrupt a campaign.
#define MUMMI_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::mummi::util::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define MUMMI_CHECK_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr))                                                            \
      ::mummi::util::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

/// Invariant check on hot paths: active in debug builds, compiled out under
/// NDEBUG. Use where the cost of checking would dominate the checked work
/// (e.g. per-distance dimension checks in the selection layer).
#ifndef NDEBUG
#define MUMMI_DEBUG_ASSERT(expr, msg) MUMMI_CHECK_MSG(expr, msg)
#else
#define MUMMI_DEBUG_ASSERT(expr, msg) \
  do {                                \
  } while (0)
#endif
