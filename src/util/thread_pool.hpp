// Fixed-size worker pool with task futures and a blocked-range parallel_for.
//
// This is the process-pool analogue of the paper's "tailored multiprocessing
// pools" (Task 4) and also drives the thread-parallel force/field loops in
// the MD and DDFT engines.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mummi::util {

class ThreadPool {
 public:
  /// Spawns `nthreads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t nthreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(begin, end) over [0, n) split into roughly equal blocks, one per
  /// worker, and waits for completion. Executes inline when the pool has a
  /// single worker or the range is tiny.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Blocks until every queued and running task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Process-level singleton pool for library internals (MD forces, DDFT
/// stencils). Sized once from hardware concurrency.
ThreadPool& global_pool();

}  // namespace mummi::util
