// Fixed-size worker pool with task futures and a blocked-range parallel_for.
//
// This is the process-pool analogue of the paper's "tailored multiprocessing
// pools" (Task 4) and also drives the thread-parallel force/field loops in
// the MD and DDFT engines.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mummi::util {

class ThreadPool {
 public:
  /// Pool of `nthreads` workers; 0 means std::thread::hardware_concurrency().
  /// Worker threads are spawned lazily on the first `submit` — a pool whose
  /// callers only ever take the inline paths (single worker, tiny ranges,
  /// nested calls) never creates a thread, which keeps single-threaded
  /// processes on the allocator's uncontended fast path.
  explicit ThreadPool(std::size_t nthreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return target_; }

  /// Enqueues a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    std::call_once(spawned_, [this] { spawn_workers(); });
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(begin, end) over [0, n) split into roughly equal blocks, one per
  /// worker, and waits for completion. Executes inline when the pool has a
  /// single worker or the range is tiny.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Like parallel_for, but the block boundaries are a function of `n` and
  /// `block` only — NOT of the worker count. Any reduction whose result could
  /// depend on block boundaries (e.g. per-block argmax merged with a
  /// tie-break) is therefore identical on a 1-thread and a 64-thread pool.
  /// Blocks are executed in unspecified order; fn must only touch state owned
  /// by its [begin, end) range or merge results deterministically afterwards.
  /// Safe to call from inside a worker task (runs inline, same boundaries).
  void parallel_for_blocks(
      std::size_t n, std::size_t block,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// Blocks until every queued and running task has finished.
  void wait_idle();

 private:
  void worker_loop();
  void spawn_workers();

  std::size_t target_ = 1;
  std::once_flag spawned_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Process-level singleton pool for library internals (MD forces, DDFT
/// stencils). Sized once from hardware concurrency.
ThreadPool& global_pool();

/// Runs fn(begin, end) over [0, n) in blocks of `block`: serial in ascending
/// block order when pool is null, pool->parallel_for_blocks otherwise. The
/// block boundaries are identical either way, so a kernel that only touches
/// state owned by its block (or folds per-block partials in ascending block
/// order afterwards) is thread-count independent by construction. Both the
/// MD force engine and the continuum stencil engine run through this.
void for_blocks(ThreadPool* pool, std::size_t n, std::size_t block,
                const std::function<void(std::size_t, std::size_t)>& fn);

/// Two-stage bounded pipeline over [0, n) in chunks of `chunk`: stage one
/// (`produce`) for chunk c+1 runs as a pool task while stage two (`consume`)
/// for chunk c runs on the caller, in ascending chunk order, with a lookahead
/// of exactly one chunk. The chunk boundaries are a function of (n, chunk)
/// only, and each stage sees every chunk exactly once in ascending order on
/// both the serial and the pipelined path — so a caller that keeps per-item
/// state disjoint (produce writes item i, consume reads item i) gets
/// bit-identical results at any pool size. `consume` may itself fan out
/// through the pool (e.g. via for_blocks); `produce` must not. Serial when
/// pool is null or single-threaded.
void pipeline_two_stage(ThreadPool* pool, std::size_t n, std::size_t chunk,
                        const std::function<void(std::size_t, std::size_t)>& produce,
                        const std::function<void(std::size_t, std::size_t)>& consume);

/// Pool resolution for engine configs whose `pool` field is null: the shared
/// global_pool() when MUMMI_POOL_SIZE requests more than one worker, nullptr
/// (serial) otherwise. Read on every call (cheap, per-engine not per-step)
/// so tests and tools can flip the env var. Output is bit-identical either
/// way — the env var only trades wall time.
ThreadPool* env_shared_pool();

}  // namespace mummi::util
