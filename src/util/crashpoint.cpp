#include "util/crashpoint.hpp"

#include <atomic>
#include <mutex>

namespace mummi::util {

namespace {
// Fast-path flags live apart from the std::function targets so the uninstalled
// case costs one relaxed load and no lock (crash points sit on I/O paths that
// TSan-covered threads may hit concurrently).
std::atomic<bool> g_crash_active{false};
std::atomic<bool> g_persist_active{false};

std::mutex& hook_mutex() {
  static std::mutex m;
  return m;
}

CrashPointHook& crash_hook() {
  static CrashPointHook hook;
  return hook;
}

PersistEventHook& persist_hook() {
  static PersistEventHook hook;
  return hook;
}
}  // namespace

void set_crash_point_hook(CrashPointHook hook) {
  std::lock_guard lock(hook_mutex());
  crash_hook() = std::move(hook);
  g_crash_active.store(static_cast<bool>(crash_hook()),
                       std::memory_order_release);
}

void crash_point(const char* point) {
  if (!g_crash_active.load(std::memory_order_acquire)) return;
  CrashPointHook hook;
  {
    std::lock_guard lock(hook_mutex());
    hook = crash_hook();
  }
  if (hook) hook(point);  // may throw SimulatedCrash / abort
}

void set_persist_event_hook(PersistEventHook hook) {
  std::lock_guard lock(hook_mutex());
  persist_hook() = std::move(hook);
  g_persist_active.store(static_cast<bool>(persist_hook()),
                         std::memory_order_release);
}

void persist_event(const char* counter) {
  if (!g_persist_active.load(std::memory_order_acquire)) return;
  PersistEventHook hook;
  {
    std::lock_guard lock(hook_mutex());
    hook = persist_hook();
  }
  if (hook) hook(counter);
}

}  // namespace mummi::util
