// Minimal NumPy .npy (version 1.0) serialization.
//
// The paper stores patches "in a standard Numpy format ... simple and
// portable I/O" (Task 1). NpyArray writes/reads real .npy byte streams for
// little-endian f4/f8/i8 arrays of arbitrary rank, so artifacts produced by
// this library load directly in numpy.load and vice versa.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace mummi::util {

enum class NpyType { kF32, kF64, kI64 };

/// An n-dimensional array with C-order data, convertible to/from .npy bytes.
struct NpyArray {
  NpyType dtype = NpyType::kF32;
  std::vector<std::size_t> shape;
  // Exactly one of these holds the data, matching dtype.
  std::vector<float> f32;
  std::vector<double> f64;
  std::vector<std::int64_t> i64;

  [[nodiscard]] std::size_t element_count() const;

  static NpyArray from_f32(std::vector<std::size_t> shape,
                           std::vector<float> data);
  static NpyArray from_f64(std::vector<std::size_t> shape,
                           std::vector<double> data);
  static NpyArray from_i64(std::vector<std::size_t> shape,
                           std::vector<std::int64_t> data);
};

/// Encodes to .npy (magic, header dict, raw data).
[[nodiscard]] Bytes npy_encode(const NpyArray& array);

/// Decodes .npy bytes. Throws FormatError on malformed input or unsupported
/// dtypes (only little-endian f4/f8/i8 are supported).
[[nodiscard]] NpyArray npy_decode(const Bytes& bytes);

}  // namespace mummi::util
