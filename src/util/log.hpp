// Minimal thread-safe leveled logger.
//
// The workflow manager coordinates tens of thousands of jobs; logging must be
// cheap when disabled and never interleave lines when enabled.
#pragma once

#include <sstream>
#include <string>

namespace mummi::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global logger configuration. All methods are thread-safe.
class Log {
 public:
  /// Sets the minimum level that will be emitted (default: kWarn, so tests
  /// and benches stay quiet unless asked).
  static void set_level(LogLevel level);
  static LogLevel level();

  /// Emits one line atomically to stderr with a level prefix.
  static void write(LogLevel level, const std::string& msg);
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (Log::level() <= LogLevel::kDebug)
    Log::write(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (Log::level() <= LogLevel::kInfo)
    Log::write(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (Log::level() <= LogLevel::kWarn)
    Log::write(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (Log::level() <= LogLevel::kError)
    Log::write(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace mummi::util
