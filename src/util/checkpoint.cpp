#include "util/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/crashpoint.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace fs = std::filesystem;

namespace mummi::util {

namespace {
// Frame v2 ("MuMMICKP"): magic, size, checksum, payload. Read-compatible.
constexpr std::uint64_t kMagicV2 = 0x4d754d4d49434b50ULL;
// Frame v3 ("MuMMICK3"): magic, generation, size, checksum, payload. The
// generation is a per-path monotone counter so load() can pick the newest
// *complete* state among {path, .bak, .tmp} — a crash between the .bak
// rotation and the final rename leaves the newest frame only in .tmp, and
// without generations that frame was silently discarded for the older .bak.
constexpr std::uint64_t kMagicV3 = 0x4d754d4d49434b33ULL;

Bytes frame(const Bytes& payload, std::uint64_t generation) {
  ByteWriter w;
  w.u64(kMagicV3);
  w.u64(generation);
  w.u64(payload.size());
  w.u64(fnv1a(payload.data(), payload.size()));
  w.raw(payload.data(), payload.size());
  return std::move(w).take();
}

struct Unframed {
  Bytes payload;
  std::uint64_t generation = 0;
};

std::optional<Unframed> unframe(const Bytes& raw) {
  try {
    ByteReader r(raw);
    const auto magic = r.u64();
    Unframed out;
    if (magic == kMagicV3) {
      out.generation = r.u64();
    } else if (magic != kMagicV2) {
      return std::nullopt;  // v2 frames carry generation 0
    }
    const auto size = r.u64();
    const auto checksum = r.u64();
    if (size > r.remaining()) return std::nullopt;
    out.payload.resize(size);
    r.raw(out.payload.data(), size);
    if (fnv1a(out.payload.data(), out.payload.size()) != checksum)
      return std::nullopt;
    return out;
  } catch (const FormatError&) {
    return std::nullopt;
  }
}

/// Reads just the generation from a frame header (no checksum validation):
/// cheap input to the next-generation counter. A torn frame can only inflate
/// the counter (harmless — generations stay monotone); it can never win a
/// load(), which demands a valid checksum.
std::uint64_t peek_generation(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  if (!in || magic != kMagicV3) return 0;
  std::uint64_t gen = 0;
  in.read(reinterpret_cast<char*>(&gen), sizeof gen);
  return in ? gen : 0;
}
}  // namespace

std::optional<Bytes> read_file(const std::string& path) {
  // Only regular files have a byte size; a directory opens fine on Linux and
  // seek-to-end then reports a nonsense offset (huge or -1 depending on the
  // filesystem) that the unchecked cast below turned into a giant
  // allocation. Anything else is a read failure, same as a vanished file.
  std::error_code ec;
  if (!fs::is_regular_file(fs::status(path, ec)) || ec) return std::nullopt;
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  if (!in || end < 0) return std::nullopt;
  const auto size = static_cast<std::size_t>(end);
  in.seekg(0);
  Bytes data(size);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(size));
  if (!in) return std::nullopt;
  return data;
}

void write_file(const std::string& path, const Bytes& data,
                const IoRetryPolicy& retry) {
  Rng jitter_rng(retry.jitter_seed ^ fnv1a(path));
  const SleepFn& sleep = retry.sleep ? retry.sleep : wall_sleeper();
  int attempt = 0;
  crash_point("util.write_file.pre");
  const bool ok = retry_with_backoff(retry.backoff, jitter_rng, sleep, [&] {
    if (attempt > 0) log_warn("write retry ", attempt, " for ", path);
    ++attempt;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    // The torn window: the file is truncated, the payload is not yet down.
    // Callers that need atomicity write a sibling temp and rename (see
    // CheckpointFile::save, FsStore::put); this point proves they do.
    crash_point("util.write_file.mid");
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    out.flush();
    return static_cast<bool>(out);
  });
  if (!ok) throw IoError("write failed after retries: " + path);
  crash_point("util.write_file.post");
}

void write_file(const std::string& path, const Bytes& data, int max_retries) {
  IoRetryPolicy retry;
  retry.backoff.max_attempts = max_retries + 1;
  write_file(path, data, retry);
}

void make_dirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) throw IoError("mkdir failed: " + path + ": " + ec.message());
}

bool remove_file(const std::string& path) {
  std::error_code ec;
  return fs::remove(path, ec);
}

CheckpointFile::CheckpointFile(std::string path, IoRetryPolicy retry)
    : path_(std::move(path)), retry_(std::move(retry)) {}

CheckpointFile::CheckpointFile(std::string path, int max_retries)
    : path_(std::move(path)) {
  retry_.backoff.max_attempts = max_retries + 1;
}

std::uint64_t CheckpointFile::next_generation() const {
  if (!gen_known_) {
    // Fresh handle over existing state (restart): resume the counter past
    // every candidate, torn or not, so generations never move backwards.
    gen_ = std::max({peek_generation(path_), peek_generation(path_ + ".bak"),
                     peek_generation(path_ + ".tmp")});
    gen_known_ = true;
  }
  return ++gen_;
}

void CheckpointFile::save(const Bytes& payload) const {
  const Bytes framed = frame(payload, next_generation());
  const std::string tmp = path_ + ".tmp";
  crash_point("ckpt.save.pre_tmp");
  write_file(tmp, framed, retry_);
  crash_point("ckpt.save.post_tmp");
  std::error_code ec;
  // Rotate the old checkpoint to .bak before the atomic replace. A crash
  // anywhere in this window loses no state: the newest complete frame sits
  // in .tmp and outranks .bak by generation on the next load().
  if (fs::exists(path_)) {
    fs::rename(path_, path_ + ".bak", ec);
    if (ec) log_warn("checkpoint backup rotation failed: ", ec.message());
  }
  crash_point("ckpt.save.post_bak");
  fs::rename(tmp, path_, ec);
  if (ec) throw IoError("checkpoint rename failed: " + path_ + ": " + ec.message());
  crash_point("ckpt.save.post_rename");
  persist_event("ckpt.generations");
}

std::optional<Bytes> CheckpointFile::load() const {
  // Highest valid generation wins; ties (legacy v2 frames are all
  // generation 0) keep the historical preference order primary > bak > tmp.
  struct Candidate {
    const char* label;
    std::string path;
  };
  const Candidate candidates[] = {{"primary", path_},
                                  {"bak", path_ + ".bak"},
                                  {"tmp", path_ + ".tmp"}};
  std::optional<Unframed> best;
  const char* winner = nullptr;
  for (const auto& c : candidates) {
    auto raw = read_file(c.path);
    if (!raw) continue;
    auto got = unframe(*raw);
    if (!got) continue;
    if (!best || got->generation > best->generation) {
      best = std::move(got);
      winner = c.label;
    }
  }
  if (!best) return std::nullopt;
  // Keep future saves ahead of whatever we just recovered.
  if (!gen_known_ || gen_ < best->generation) {
    gen_ = best->generation;
    gen_known_ = true;
  }
  if (winner != candidates[0].label) {
    log_warn("checkpoint primary invalid or stale, recovered generation ",
             best->generation, " from ", winner, ": ", path_);
    persist_event("ckpt.recovered_from");
  }
  return std::move(best->payload);
}

bool CheckpointFile::exists() const {
  return fs::exists(path_) || fs::exists(path_ + ".bak") ||
         fs::exists(path_ + ".tmp");
}

void CheckpointFile::remove() const {
  remove_file(path_);
  remove_file(path_ + ".bak");
  remove_file(path_ + ".tmp");
}

}  // namespace mummi::util
