#include "util/checkpoint.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/error.hpp"
#include "util/log.hpp"

namespace fs = std::filesystem;

namespace mummi::util {

namespace {
constexpr std::uint64_t kMagic = 0x4d754d4d49434b50ULL;  // "MuMMICKP"

Bytes frame(const Bytes& payload) {
  ByteWriter w;
  w.u64(kMagic);
  w.u64(payload.size());
  w.u64(fnv1a(payload.data(), payload.size()));
  w.raw(payload.data(), payload.size());
  return std::move(w).take();
}

std::optional<Bytes> unframe(const Bytes& raw) {
  try {
    ByteReader r(raw);
    if (r.u64() != kMagic) return std::nullopt;
    const auto size = r.u64();
    const auto checksum = r.u64();
    if (size > r.remaining()) return std::nullopt;
    Bytes payload(size);
    r.raw(payload.data(), size);
    if (fnv1a(payload.data(), payload.size()) != checksum) return std::nullopt;
    return payload;
  } catch (const FormatError&) {
    return std::nullopt;
  }
}
}  // namespace

std::optional<Bytes> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  Bytes data(size);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(size));
  if (!in) return std::nullopt;
  return data;
}

void write_file(const std::string& path, const Bytes& data,
                const IoRetryPolicy& retry) {
  Rng jitter_rng(retry.jitter_seed ^ fnv1a(path));
  const SleepFn& sleep = retry.sleep ? retry.sleep : wall_sleeper();
  int attempt = 0;
  const bool ok = retry_with_backoff(retry.backoff, jitter_rng, sleep, [&] {
    if (attempt > 0) log_warn("write retry ", attempt, " for ", path);
    ++attempt;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    out.flush();
    return static_cast<bool>(out);
  });
  if (!ok) throw IoError("write failed after retries: " + path);
}

void write_file(const std::string& path, const Bytes& data, int max_retries) {
  IoRetryPolicy retry;
  retry.backoff.max_attempts = max_retries + 1;
  write_file(path, data, retry);
}

void make_dirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) throw IoError("mkdir failed: " + path + ": " + ec.message());
}

bool remove_file(const std::string& path) {
  std::error_code ec;
  return fs::remove(path, ec);
}

CheckpointFile::CheckpointFile(std::string path, IoRetryPolicy retry)
    : path_(std::move(path)), retry_(std::move(retry)) {}

CheckpointFile::CheckpointFile(std::string path, int max_retries)
    : path_(std::move(path)) {
  retry_.backoff.max_attempts = max_retries + 1;
}

void CheckpointFile::save(const Bytes& payload) const {
  const Bytes framed = frame(payload);
  const std::string tmp = path_ + ".tmp";
  write_file(tmp, framed, retry_);
  std::error_code ec;
  // Rotate the old checkpoint to .bak before the atomic replace.
  if (fs::exists(path_)) {
    fs::rename(path_, path_ + ".bak", ec);
    if (ec) log_warn("checkpoint backup rotation failed: ", ec.message());
  }
  fs::rename(tmp, path_, ec);
  if (ec) throw IoError("checkpoint rename failed: " + path_ + ": " + ec.message());
}

std::optional<Bytes> CheckpointFile::load_one(const std::string& p) const {
  auto raw = read_file(p);
  if (!raw) return std::nullopt;
  return unframe(*raw);
}

std::optional<Bytes> CheckpointFile::load() const {
  if (auto primary = load_one(path_)) return primary;
  if (auto backup = load_one(path_ + ".bak")) {
    log_warn("checkpoint primary invalid, restored from backup: ", path_);
    return backup;
  }
  return std::nullopt;
}

bool CheckpointFile::exists() const {
  return fs::exists(path_) || fs::exists(path_ + ".bak");
}

void CheckpointFile::remove() const {
  remove_file(path_);
  remove_file(path_ + ".bak");
  remove_file(path_ + ".tmp");
}

}  // namespace mummi::util
