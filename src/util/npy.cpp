#include "util/npy.hpp"

#include <cstring>

#include "util/string_util.hpp"

namespace mummi::util {

namespace {
const char* dtype_str(NpyType t) {
  switch (t) {
    case NpyType::kF32: return "<f4";
    case NpyType::kF64: return "<f8";
    case NpyType::kI64: return "<i8";
  }
  return "<f4";
}

std::size_t dtype_size(NpyType t) {
  return t == NpyType::kF32 ? 4 : 8;
}
}  // namespace

std::size_t NpyArray::element_count() const {
  std::size_t n = 1;
  for (auto d : shape) n *= d;
  return n;
}

NpyArray NpyArray::from_f32(std::vector<std::size_t> shape,
                            std::vector<float> data) {
  NpyArray a;
  a.dtype = NpyType::kF32;
  a.shape = std::move(shape);
  a.f32 = std::move(data);
  MUMMI_CHECK_MSG(a.f32.size() == a.element_count(), "shape/data mismatch");
  return a;
}

NpyArray NpyArray::from_f64(std::vector<std::size_t> shape,
                            std::vector<double> data) {
  NpyArray a;
  a.dtype = NpyType::kF64;
  a.shape = std::move(shape);
  a.f64 = std::move(data);
  MUMMI_CHECK_MSG(a.f64.size() == a.element_count(), "shape/data mismatch");
  return a;
}

NpyArray NpyArray::from_i64(std::vector<std::size_t> shape,
                            std::vector<std::int64_t> data) {
  NpyArray a;
  a.dtype = NpyType::kI64;
  a.shape = std::move(shape);
  a.i64 = std::move(data);
  MUMMI_CHECK_MSG(a.i64.size() == a.element_count(), "shape/data mismatch");
  return a;
}

Bytes npy_encode(const NpyArray& array) {
  std::string shape_str = "(";
  for (std::size_t i = 0; i < array.shape.size(); ++i) {
    shape_str += std::to_string(array.shape[i]);
    if (i + 1 < array.shape.size() || array.shape.size() == 1) shape_str += ",";
    if (i + 1 < array.shape.size()) shape_str += " ";
  }
  shape_str += ")";
  std::string header = format(
      "{'descr': '%s', 'fortran_order': False, 'shape': %s, }",
      dtype_str(array.dtype), shape_str.c_str());
  // Pad with spaces so magic(6)+version(2)+hlen(2)+header is 64-aligned,
  // terminated by '\n' — as the .npy spec requires.
  const std::size_t base = 6 + 2 + 2;
  std::size_t total = base + header.size() + 1;
  const std::size_t padded = (total + 63) / 64 * 64;
  header.append(padded - total, ' ');
  header.push_back('\n');

  ByteWriter w;
  w.raw("\x93NUMPY", 6);
  w.u8(1);  // major version
  w.u8(0);  // minor version
  const auto hlen = static_cast<std::uint16_t>(header.size());
  w.raw(&hlen, 2);
  w.raw(header.data(), header.size());
  switch (array.dtype) {
    case NpyType::kF32:
      w.raw(array.f32.data(), array.f32.size() * 4);
      break;
    case NpyType::kF64:
      w.raw(array.f64.data(), array.f64.size() * 8);
      break;
    case NpyType::kI64:
      w.raw(array.i64.data(), array.i64.size() * 8);
      break;
  }
  return std::move(w).take();
}

namespace {
// Extracts the quoted/paren value following "'key':" in the header dict.
std::string header_field(const std::string& header, const std::string& key) {
  const auto at = header.find("'" + key + "'");
  if (at == std::string::npos) throw FormatError("npy header missing " + key);
  auto pos = header.find(':', at);
  if (pos == std::string::npos) throw FormatError("npy header malformed");
  ++pos;
  while (pos < header.size() && header[pos] == ' ') ++pos;
  if (header[pos] == '\'') {
    const auto end = header.find('\'', pos + 1);
    return header.substr(pos + 1, end - pos - 1);
  }
  if (header[pos] == '(') {
    const auto end = header.find(')', pos);
    return header.substr(pos, end - pos + 1);
  }
  // bare token (True/False)
  auto end = header.find_first_of(",}", pos);
  return trim(header.substr(pos, end - pos));
}
}  // namespace

NpyArray npy_decode(const Bytes& bytes) {
  if (bytes.size() < 10 || std::memcmp(bytes.data(), "\x93NUMPY", 6) != 0)
    throw FormatError("not an npy stream");
  const std::uint8_t major = bytes[6];
  if (major != 1) throw FormatError("unsupported npy version");
  std::uint16_t hlen;
  std::memcpy(&hlen, bytes.data() + 8, 2);
  if (bytes.size() < 10u + hlen) throw FormatError("npy stream truncated");
  const std::string header(reinterpret_cast<const char*>(bytes.data() + 10), hlen);

  const std::string descr = header_field(header, "descr");
  const std::string order = header_field(header, "fortran_order");
  if (order != "False") throw FormatError("fortran-order npy unsupported");
  NpyType dtype;
  if (descr == "<f4") dtype = NpyType::kF32;
  else if (descr == "<f8") dtype = NpyType::kF64;
  else if (descr == "<i8") dtype = NpyType::kI64;
  else throw FormatError("unsupported npy dtype: " + descr);

  const std::string shape_str = header_field(header, "shape");
  std::vector<std::size_t> shape;
  for (const auto& tok : split(shape_str.substr(1, shape_str.size() - 2), ',')) {
    const std::string t = trim(tok);
    if (!t.empty()) shape.push_back(static_cast<std::size_t>(std::stoull(t)));
  }

  NpyArray a;
  a.dtype = dtype;
  a.shape = shape;
  const std::size_t count = a.element_count();
  const std::size_t need = count * dtype_size(dtype);
  const std::size_t offset = 10u + hlen;
  if (bytes.size() - offset < need) throw FormatError("npy data truncated");
  const auto* src = bytes.data() + offset;
  switch (dtype) {
    case NpyType::kF32:
      a.f32.resize(count);
      std::memcpy(a.f32.data(), src, need);
      break;
    case NpyType::kF64:
      a.f64.resize(count);
      std::memcpy(a.f64.data(), src, need);
      break;
    case NpyType::kI64:
      a.i64.resize(count);
      std::memcpy(a.i64.data(), src, need);
      break;
  }
  return a;
}

}  // namespace mummi::util
