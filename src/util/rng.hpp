// Deterministic pseudo-random number generation.
//
// All stochastic components of mummi-cpp (MD thermostats, performance models,
// samplers, the campaign simulator) take explicit Rng instances so entire
// campaigns replay bit-for-bit from a seed — the paper's "history files that
// may be replayed exactly" requirement (Sec. 4.4).
#pragma once

#include <cmath>
#include <cstdint>

namespace mummi::util {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
/// Satisfies UniformRandomBitGenerator so it plugs into <random> too.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via splitmix64 so nearby seeds give uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method (cached spare).
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = sqrt_m2log(s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  /// Normal with given mean and stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with given rate (mean 1/rate).
  double exponential(double rate);

  /// Log-normal such that the *result* has the given mean and sigma of the
  /// underlying normal — used by performance models for slow-tail outliers.
  double lognormal(double mean_of_log, double sigma_of_log);

  /// Derives an independent child stream (for per-thread/per-job rngs).
  Rng split() { return Rng((*this)() ^ 0xd1342543de82ef95ULL); }

  /// Full generator state, so checkpoints resume the exact stream (crash
  /// recovery must not fork the campaign's randomness).
  struct State {
    std::uint64_t s[4];
    bool has_spare;
    double spare;
  };
  [[nodiscard]] State save_state() const {
    State st{{state_[0], state_[1], state_[2], state_[3]}, has_spare_, spare_};
    return st;
  }
  void load_state(const State& st) {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    has_spare_ = st.has_spare;
    spare_ = st.spare;
  }

 private:
  static std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static double sqrt_m2log(double s);

  std::uint64_t state_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

inline double Rng::sqrt_m2log(double s) {
  return std::sqrt(-2.0 * std::log(s) / s);
}

inline double Rng::exponential(double rate) {
  return -std::log(1.0 - uniform()) / rate;
}

inline double Rng::lognormal(double mean_of_log, double sigma_of_log) {
  return std::exp(normal(mean_of_log, sigma_of_log));
}

}  // namespace mummi::util
