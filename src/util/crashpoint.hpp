// Crash-point seam for the persistence layer.
//
// Every crash-consistency guarantee in this codebase (checkpoint atomic
// replace, FsStore sibling-tmp renames, tar append recovery) is only as good
// as its test coverage of the exact instants a real process can die. The
// persistence code therefore calls `crash_point("name")` at each named I/O
// boundary — immediately before/after a temp write, a backup rotation, a
// rename. In production nothing is installed and the call is one relaxed
// atomic load. Under test, fault::CrashPointRegistry installs a hook that
// throws a SimulatedCrash (or aborts the process) at the Nth hit of an armed
// point, so a sweep can kill the process-under-test at *every* registered
// boundary in turn and prove recovery is byte-exact.
//
// util cannot link against fault or obs (both link util), hence the hook
// indirection: the registry lives in src/fault and installs itself here;
// obs mirrors persistence events (see persist_event) into counters the same
// way.
#pragma once

#include <functional>

namespace mummi::util {

/// Hook invoked on every crash_point() hit. May throw to simulate a crash.
using CrashPointHook = std::function<void(const char* point)>;

/// Installs (or, with an empty function, clears) the process-wide hook.
/// Not meant for concurrent install while persistence I/O is in flight.
void set_crash_point_hook(CrashPointHook hook);

/// Marks a named I/O boundary. No-op (one relaxed atomic load) unless a hook
/// is installed; otherwise forwards to it — the hook may throw.
void crash_point(const char* point);

/// Persistence observability events (e.g. "ckpt.generations",
/// "ckpt.recovered_from"). The obs layer installs a mirror that bumps the
/// counter of the same name; without it the call is a relaxed load.
using PersistEventHook = std::function<void(const char* counter)>;
void set_persist_event_hook(PersistEventHook hook);
void persist_event(const char* counter);

}  // namespace mummi::util
