// Time source abstraction.
//
// The workflow manager, scheduler and feedback managers are written against
// Clock so the same code runs in real time (examples, live runs) or in the
// discrete-event campaign simulator (benches reproducing Summit-scale
// figures). Times are seconds since an arbitrary epoch.
#pragma once

#include <chrono>

namespace mummi::util {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in seconds.
  [[nodiscard]] virtual double now() const = 0;
};

/// Wall-clock time from std::chrono::steady_clock.
class WallClock final : public Clock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double now() const override {
    const auto dt = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(dt).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Manually advanced time — the discrete-event engine owns one of these.
class ManualClock final : public Clock {
 public:
  [[nodiscard]] double now() const override { return t_; }
  void set(double t) { t_ = t; }
  void advance(double dt) { t_ += dt; }

 private:
  double t_ = 0.0;
};

/// Scoped stopwatch for profiling real code paths.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  /// Elapsed seconds since construction or last reset.
  [[nodiscard]] double elapsed() const {
    const auto dt = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(dt).count();
  }
  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mummi::util
