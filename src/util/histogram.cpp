#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace mummi::util {

Histogram::Histogram(double lo, double hi, std::size_t nbins)
    : lo_(lo), hi_(hi), counts_(nbins, 0.0) {
  MUMMI_CHECK_MSG(hi > lo, "histogram range must be non-empty");
  MUMMI_CHECK_MSG(nbins > 0, "histogram needs at least one bin");
}

std::size_t Histogram::bin_of(double x) const {
  const double t = (x - lo_) / (hi_ - lo_);
  const auto raw = static_cast<long>(std::floor(t * static_cast<double>(counts_.size())));
  const long clamped = std::clamp(raw, 0L, static_cast<long>(counts_.size()) - 1);
  return static_cast<std::size_t>(clamped);
}

void Histogram::add(double x, double weight) {
  counts_[bin_of(x)] += weight;
  total_ += weight;
}

double Histogram::center(std::size_t bin) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * w;
}

double Histogram::fraction_at_least(double x) const {
  if (total_ <= 0.0) return 0.0;
  if (x <= lo_) return 1.0;   // everything is clamped into [lo, hi)
  if (x >= hi_) return 0.0;   // no mass lives at or above hi
  const std::size_t start = bin_of(x);
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  const double bin_lo = lo_ + static_cast<double>(start) * width;
  // Mass within the bin is treated as uniform; only the part of the bin at
  // or above x counts (the pre-fix code credited the whole bin).
  const double frac_above =
      std::clamp(1.0 - (x - bin_lo) / width, 0.0, 1.0);
  double mass = counts_[start] * frac_above;
  for (std::size_t b = start + 1; b < counts_.size(); ++b) mass += counts_[b];
  return mass / total_;
}

std::string Histogram::ascii(std::size_t width) const {
  double peak = 0.0;
  for (double c : counts_) peak = std::max(peak, c);
  std::string out;
  // Sized for the widest row: 12-char center, " | ", width-char bar column,
  // space, value, newline, NUL — no silent truncation at large widths (the
  // pre-fix fixed 160-byte buffer clipped rows once width exceeded ~120).
  std::vector<char> line(width + 48);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        peak > 0.0 ? static_cast<std::size_t>(counts_[b] / peak *
                                              static_cast<double>(width))
                   : 0;
    std::snprintf(line.data(), line.size(), "%12.4g | %-*s %.4g\n", center(b),
                  static_cast<int>(width),
                  std::string(bar, '#').c_str(), counts_[b]);
    out += line.data();
  }
  return out;
}

}  // namespace mummi::util
