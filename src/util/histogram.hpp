// Fixed-bin histogram used by profilers and figure-reproduction benches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mummi::util {

/// Uniform-bin histogram over [lo, hi); values outside are clamped into the
/// first/last bin so campaign profiles never silently drop events.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t nbins);

  void add(double x, double weight = 1.0);

  [[nodiscard]] std::size_t nbins() const { return counts_.size(); }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] double count(std::size_t bin) const { return counts_[bin]; }
  [[nodiscard]] double total() const { return total_; }
  /// Center of the given bin.
  [[nodiscard]] double center(std::size_t bin) const;
  /// Fraction of total mass at or above the given value. Mass within the
  /// bin containing `x` is linearly interpolated (uniform-within-bin
  /// assumption); `x <= lo()` returns 1, `x >= hi()` returns 0.
  [[nodiscard]] double fraction_at_least(double x) const;
  /// Bin index a value falls into (after clamping).
  [[nodiscard]] std::size_t bin_of(double x) const;

  /// Renders a fixed-width ASCII bar chart, one bin per line — the benches
  /// print these next to the paper's figures.
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace mummi::util
