// Bounded exponential backoff with deterministic jitter.
//
// Paper Sec. 4.2/4.4: "everything fails at scale" — transient filesystem and
// Redis hiccups are survived by retrying, but naive immediate retries hammer
// a struggling service and synchronized retries from thousands of clients
// stampede it the moment it recovers. BackoffPolicy computes the canonical
// capped-exponential delay with jitter drawn from an explicit Rng, so retry
// schedules are reproducible bit-for-bit in the campaign simulator (the
// paper's "history files that may be replayed exactly").
//
// Sleeping is pluggable: real code sleeps the wall clock, the discrete-event
// campaign accounts virtual seconds instead, and tests record the delays.
#pragma once

#include <functional>

#include "util/rng.hpp"

namespace mummi::util {

struct BackoffPolicy {
  int max_attempts = 4;        // total tries, including the first
  double base_delay_s = 1e-3;  // delay before the second attempt
  double multiplier = 2.0;     // growth per further attempt
  double max_delay_s = 0.5;    // cap on any single delay
  double jitter_frac = 0.25;   // +/- fraction of the delay, drawn from rng

  /// Delay (seconds) to wait after failed attempt number `attempt`
  /// (0-based: attempt 0 is the first try). Deterministic for a given rng
  /// state. Returns 0 when jitter/base are configured off.
  [[nodiscard]] double delay_s(int attempt, Rng& rng) const;
};

/// How retry loops wait: given the delay in seconds. Tests and virtual-time
/// components substitute their own.
using SleepFn = std::function<void(double)>;

/// Sleeps the calling thread for real (the default for live runs).
[[nodiscard]] SleepFn wall_sleeper();

/// Accumulates delays into `*total` without sleeping — virtual-time
/// accounting for the campaign simulator and tests. `total` must outlive the
/// returned function.
[[nodiscard]] SleepFn accounting_sleeper(double* total);

/// Runs `op` until it returns true or attempts are exhausted, backing off
/// between tries. Returns true on success, false when the policy gave up.
/// `sleep` may be empty, meaning "do not wait" (still bounded by attempts).
/// The operation always runs at least once: max_attempts <= 1 (including
/// zero and negative values) means "no retries", never "skip the operation".
bool retry_with_backoff(const BackoffPolicy& policy, Rng& rng,
                        const SleepFn& sleep,
                        const std::function<bool()>& op);

}  // namespace mummi::util
