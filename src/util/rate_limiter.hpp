// Token-bucket rate limiter.
//
// Paper Sec. 3/5.2: the original MuMMI "explicitly throttle[d] the rate of
// certain I/O operations" and "specifically throttled the rate of submission
// to prevent overloading the job scheduler" (~100 jobs/min). RateLimiter is
// that throttle: deterministic, clock-driven, usable in both wall and
// virtual time.
#pragma once

#include <algorithm>

#include "util/error.hpp"

namespace mummi::util {

class RateLimiter {
 public:
  /// Allows `rate` operations per second on average, with bursts of at most
  /// `burst` (defaults to one second's worth). `epoch` anchors the token
  /// clock: the limiter starts with a full burst at time `epoch`, and the
  /// first call never mints extra tokens from the gap between an implicit
  /// zero epoch and a large first timestamp.
  explicit RateLimiter(double rate, double burst = -1.0, double epoch = 0.0)
      : rate_(rate),
        burst_(burst < 0 ? rate : burst),
        tokens_(burst_),
        last_(epoch) {
    MUMMI_CHECK_MSG(rate > 0 && burst_ > 0, "invalid rate limiter config");
  }

  /// Attempts to take `n` tokens at time `now` (seconds, monotonic).
  /// Returns whether the operation is admitted.
  bool try_acquire(double now, double n = 1.0) {
    refill(now);
    if (tokens_ + 1e-12 < n) return false;
    tokens_ -= n;
    return true;
  }

  /// Tokens currently available at time `now`.
  [[nodiscard]] double available(double now) {
    refill(now);
    return tokens_;
  }

  /// Earliest time at which `n` tokens will be available (>= now).
  [[nodiscard]] double next_admission(double now, double n = 1.0) {
    refill(now);
    if (tokens_ >= n) return now;
    return now + (n - tokens_) / rate_;
  }

 private:
  void refill(double now) {
    if (now < last_) {
      // Clock regression (e.g. a restarted virtual clock): re-anchor at the
      // regressed time without minting tokens. The pre-fix code kept last_
      // at the high-water mark, silently freezing accrual until the clock
      // caught back up.
      last_ = now;
      return;
    }
    tokens_ = std::min(burst_, tokens_ + (now - last_) * rate_);
    last_ = now;
  }

  double rate_;
  double burst_;
  double tokens_;
  double last_;
};

}  // namespace mummi::util
