#include "util/thread_pool.hpp"

#include <algorithm>

namespace mummi::util {

ThreadPool::ThreadPool(std::size_t nthreads) {
  if (nthreads == 0) nthreads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(nthreads);
  for (std::size_t i = 0; i < nthreads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t nblocks = std::min(workers_.size(), n);
  if (nblocks <= 1 || n < 64) {
    fn(0, n);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(nblocks);
  const std::size_t chunk = (n + nblocks - 1) / nblocks;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t begin = b * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    if (begin >= end) break;
    futs.push_back(submit([&fn, begin, end] { fn(begin, end); }));
  }
  for (auto& f : futs) f.get();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mummi::util
