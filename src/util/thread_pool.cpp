#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace mummi::util {

namespace {
// Set while a pool worker is executing a task; lets parallel_for_blocks run
// nested calls inline instead of deadlocking on its own (possibly busy) pool.
thread_local bool t_in_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t nthreads) {
  if (nthreads == 0) nthreads = std::max(1u, std::thread::hardware_concurrency());
  target_ = nthreads;
}

void ThreadPool::spawn_workers() {
  workers_.reserve(target_);
  for (std::size_t i = 0; i < target_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    t_in_worker = true;
    task();
    t_in_worker = false;
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t nblocks = std::min(target_, n);
  if (nblocks <= 1 || n < 64) {
    fn(0, n);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(nblocks);
  const std::size_t chunk = (n + nblocks - 1) / nblocks;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t begin = b * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    if (begin >= end) break;
    futs.push_back(submit([&fn, begin, end] { fn(begin, end); }));
  }
  for (auto& f : futs) f.get();
}

void ThreadPool::parallel_for_blocks(
    std::size_t n, std::size_t block,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (block == 0) block = 1;
  const std::size_t nblocks = (n + block - 1) / block;
  // The boundary sequence below depends only on (n, block); the worker count
  // (and whether we execute inline) only changes *where* blocks run.
  if (nblocks <= 1 || target_ <= 1 || t_in_worker) {
    for (std::size_t b = 0; b < nblocks; ++b)
      fn(b * block, std::min((b + 1) * block, n));
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(nblocks);
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t begin = b * block;
    const std::size_t end = std::min(begin + block, n);
    futs.push_back(submit([&fn, begin, end] { fn(begin, end); }));
  }
  for (auto& f : futs) f.get();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void for_blocks(ThreadPool* pool, std::size_t n, std::size_t block,
                const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (block == 0) block = 1;
  if (pool != nullptr) {
    pool->parallel_for_blocks(n, block, fn);
    return;
  }
  for (std::size_t b = 0; b * block < n; ++b)
    fn(b * block, std::min((b + 1) * block, n));
}

void pipeline_two_stage(
    ThreadPool* pool, std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& produce,
    const std::function<void(std::size_t, std::size_t)>& consume) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  const std::size_t nchunks = (n + chunk - 1) / chunk;
  auto lo = [chunk](std::size_t c) { return c * chunk; };
  auto hi = [chunk, n](std::size_t c) { return std::min((c + 1) * chunk, n); };
  if (pool == nullptr || pool->size() <= 1 || nchunks <= 1 || t_in_worker) {
    for (std::size_t c = 0; c < nchunks; ++c) {
      produce(lo(c), hi(c));
      consume(lo(c), hi(c));
    }
    return;
  }
  std::future<void> ahead =
      pool->submit([&produce, lo, hi] { produce(lo(0), hi(0)); });
  for (std::size_t c = 0; c < nchunks; ++c) {
    try {
      ahead.get();  // rethrows a produce failure for chunk c
      if (c + 1 < nchunks) {
        const std::size_t next = c + 1;
        ahead = pool->submit(
            [&produce, lo, hi, next] { produce(lo(next), hi(next)); });
      }
      consume(lo(c), hi(c));
    } catch (...) {
      // An in-flight produce task captures locals by reference; it must not
      // outlive this frame even when a stage throws.
      if (ahead.valid()) ahead.wait();
      throw;
    }
  }
}

ThreadPool* env_shared_pool() {
  if (const char* env = std::getenv("MUMMI_POOL_SIZE")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 1) return &global_pool();
  }
  return nullptr;
}

ThreadPool& global_pool() {
  // MUMMI_POOL_SIZE overrides the hardware-concurrency default; campaign
  // output is identical for every setting (parallel_for_blocks pins block
  // boundaries to the data, not the workers), and CI exercises that claim by
  // rerunning benches under different sizes.
  static ThreadPool pool([] {
    if (const char* env = std::getenv("MUMMI_POOL_SIZE")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n > 0) return static_cast<std::size_t>(n);
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace mummi::util
