#include "util/bytes.hpp"

namespace mummi::util {

Bytes to_bytes(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

std::uint64_t fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a(const std::string& s) { return fnv1a(s.data(), s.size()); }

}  // namespace mummi::util
