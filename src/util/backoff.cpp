#include "util/backoff.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace mummi::util {

double BackoffPolicy::delay_s(int attempt, Rng& rng) const {
  if (base_delay_s <= 0.0) return 0.0;
  const double raw =
      base_delay_s * std::pow(multiplier, static_cast<double>(attempt));
  const double capped = std::min(raw, max_delay_s);
  if (jitter_frac <= 0.0) return capped;
  // Symmetric jitter in [-frac, +frac) of the capped delay; never negative.
  const double jitter = capped * jitter_frac * (2.0 * rng.uniform() - 1.0);
  return std::max(0.0, capped + jitter);
}

SleepFn wall_sleeper() {
  return [](double seconds) {
    if (seconds <= 0.0) return;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  };
}

SleepFn accounting_sleeper(double* total) {
  return [total](double seconds) { *total += std::max(0.0, seconds); };
}

bool retry_with_backoff(const BackoffPolicy& policy, Rng& rng,
                        const SleepFn& sleep,
                        const std::function<bool()>& op) {
  // Contract: the operation always executes at least once. max_attempts <= 1
  // (including zero and negative values) means "no retries", never "never
  // try" — the pre-fix code returned false without invoking op at all.
  const int attempts = std::max(1, policy.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (op()) return true;
    if (attempt + 1 >= attempts) break;
    const double delay = policy.delay_s(attempt, rng);
    if (sleep) sleep(delay);
  }
  return false;
}

}  // namespace mummi::util
