#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace mummi::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kInfo:  return "[info ] ";
    case LogLevel::kWarn:  return "[warn ] ";
    case LogLevel::kError: return "[error] ";
    default:               return "";
  }
}
}  // namespace

void Log::set_level(LogLevel level) { g_level.store(level); }

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::write(LogLevel level, const std::string& msg) {
  std::lock_guard lock(g_mutex);
  std::fputs(prefix(level), stderr);
  std::fputs(msg.c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace mummi::util
