#include "ml/point_store.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mummi::ml {

PointStore::PointStore(int dim) : dim_(dim) {
  MUMMI_CHECK_MSG(dim > 0, "point store dimension must be positive");
}

void PointStore::reserve(std::size_t n) {
  ids_.reserve(n);
  coords_.reserve(n * static_cast<std::size_t>(dim_));
}

void PointStore::clear() {
  ids_.clear();
  coords_.clear();
}

void PointStore::append(const PointStore& other) {
  MUMMI_CHECK_MSG(other.dim_ == dim_, "candidate dimension mismatch");
  ids_.insert(ids_.end(), other.ids_.begin(), other.ids_.end());
  coords_.insert(coords_.end(), other.coords_.begin(), other.coords_.end());
}

HDPoint PointStore::materialize(std::size_t slot) const {
  const auto c = coords(slot);
  return HDPoint{ids_[slot], {c.begin(), c.end()}};
}

HDPoint PointStore::swap_remove(std::size_t slot) {
  MUMMI_CHECK_MSG(slot < ids_.size(), "swap_remove slot out of range");
  HDPoint out = materialize(slot);
  const std::size_t last = ids_.size() - 1;
  const auto d = static_cast<std::size_t>(dim_);
  if (slot != last) {
    ids_[slot] = ids_[last];
    std::copy(coords_.begin() + static_cast<long>(last * d),
              coords_.begin() + static_cast<long>((last + 1) * d),
              coords_.begin() + static_cast<long>(slot * d));
  }
  ids_.pop_back();
  coords_.resize(last * d);
  return out;
}

void PointStore::serialize(util::ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(dim_));
  w.vec(ids_);
  w.vec(coords_);
}

PointStore PointStore::deserialize(util::ByteReader& r) {
  PointStore s(static_cast<int>(r.u32()));
  s.ids_ = r.vec<PointId>();
  s.coords_ = r.vec<float>();
  if (s.coords_.size() != s.ids_.size() * static_cast<std::size_t>(s.dim_))
    throw util::FormatError("corrupt point store: id/coord count mismatch");
  return s;
}

}  // namespace mummi::ml
