// Nearest-neighbor indices over L2 (the FAISS substitute).
//
// Paper Task 2: patch ranks "are updated using approximate nearest neighbor
// queries (with L2 distances) powered by the FAISS framework". The selectors
// here only ever query against the *selected* set (small), so an exact
// KD-tree with periodic rebuilds covers the need at reproduction scale.
//
// Points live in a flat PointStore and both build and search are iterative
// (explicit bounded stacks, no recursion), so a query touches contiguous
// memory and performs zero allocations.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <vector>

#include "ml/point_store.hpp"

namespace mummi::util {
class ThreadPool;
}  // namespace mummi::util

namespace mummi::ml {

struct Neighbor {
  PointId id = 0;
  float dist2 = 0;
};

class NnIndex {
 public:
  virtual ~NnIndex() = default;

  virtual void add(PointId id, std::span<const float> coords) = 0;
  void add(const HDPoint& point) { add(point.id, point.coords); }

  /// Nearest neighbor of `query`; nullopt when the index is empty.
  [[nodiscard]] virtual std::optional<Neighbor> nearest(
      std::span<const float> query) const = 0;
  [[nodiscard]] std::optional<Neighbor> nearest(
      std::initializer_list<float> query) const {
    return nearest(std::span<const float>(query.begin(), query.size()));
  }

  /// k nearest neighbors, closest first.
  [[nodiscard]] virtual std::vector<Neighbor> knn(std::span<const float> query,
                                                  std::size_t k) const = 0;
  [[nodiscard]] std::vector<Neighbor> knn(std::initializer_list<float> query,
                                          std::size_t k) const {
    return knn(std::span<const float>(query.begin(), query.size()), k);
  }

  [[nodiscard]] virtual std::size_t size() const = 0;
};

/// Exact linear scan — the correctness reference.
class BruteForceIndex final : public NnIndex {
 public:
  using NnIndex::add;
  using NnIndex::knn;
  using NnIndex::nearest;

  void add(PointId id, std::span<const float> coords) override;
  [[nodiscard]] std::optional<Neighbor> nearest(
      std::span<const float> query) const override;
  [[nodiscard]] std::vector<Neighbor> knn(std::span<const float> query,
                                          std::size_t k) const override;
  [[nodiscard]] std::size_t size() const override { return points_.size(); }

 private:
  PointStore points_;  // dim fixed by the first add
};

/// Exact KD-tree with buffered inserts: new points accumulate in a flat
/// buffer and the tree is rebuilt when the buffer outgrows a fraction of the
/// tree, amortizing construction.
class KdTreeIndex final : public NnIndex {
 public:
  explicit KdTreeIndex(int dim);

  using NnIndex::add;
  using NnIndex::knn;
  using NnIndex::nearest;

  void add(PointId id, std::span<const float> coords) override;
  [[nodiscard]] std::optional<Neighbor> nearest(
      std::span<const float> query) const override;
  [[nodiscard]] std::vector<Neighbor> knn(std::span<const float> query,
                                          std::size_t k) const override;
  [[nodiscard]] std::size_t size() const override {
    return tree_pts_.size() + buffer_.size();
  }

  /// Folds the insert buffer into the tree now. Call before a query batch so
  /// every query runs on the O(log n) path instead of also scanning the
  /// buffer.
  void flush();

  /// Batched k-NN: `queries` is nq contiguous dim-sized rows; `out` receives
  /// nq*k neighbors (row q at out[q*k..]), each row closest-first and padded
  /// with {0, +inf} when the index holds fewer than k points. With a pool the
  /// rows are split into fixed-size blocks (boundaries independent of worker
  /// count); results are per-row, so the output never depends on scheduling.
  void knn_batch(std::span<const float> queries, std::size_t nq, std::size_t k,
                 std::span<Neighbor> out,
                 util::ThreadPool* pool = nullptr) const;

 private:
  struct Node {
    std::uint32_t slot = 0;  // into tree_pts_
    std::int32_t left = -1, right = -1;
    std::int32_t axis = 0;
  };

  // Depth of a median-balanced tree over 2^31 points stays under 33; rebuild
  // enforces the margin so search stacks can live in fixed arrays.
  static constexpr int kMaxStack = 64;

  void rebuild();
  [[nodiscard]] Neighbor nearest_in_tree(std::span<const float> query) const;
  void search_knn(std::span<const float> query, std::vector<Neighbor>& best,
                  std::size_t k) const;
  static void push_candidate(std::vector<Neighbor>& best, std::size_t k,
                             Neighbor candidate);

  int dim_;
  PointStore tree_pts_;
  PointStore buffer_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace mummi::ml
