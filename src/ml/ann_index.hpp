// Nearest-neighbor indices over L2 (the FAISS substitute).
//
// Paper Task 2: patch ranks "are updated using approximate nearest neighbor
// queries (with L2 distances) powered by the FAISS framework". The selectors
// here only ever query against the *selected* set (small), so an exact
// KD-tree with periodic rebuilds covers the need at reproduction scale.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "ml/point.hpp"

namespace mummi::ml {

struct Neighbor {
  PointId id = 0;
  float dist2 = 0;
};

class NnIndex {
 public:
  virtual ~NnIndex() = default;
  virtual void add(const HDPoint& point) = 0;
  /// Nearest neighbor of `query`; nullopt when the index is empty.
  [[nodiscard]] virtual std::optional<Neighbor> nearest(
      const std::vector<float>& query) const = 0;
  /// k nearest neighbors, closest first.
  [[nodiscard]] virtual std::vector<Neighbor> knn(
      const std::vector<float>& query, std::size_t k) const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
};

/// Exact linear scan — the correctness reference.
class BruteForceIndex final : public NnIndex {
 public:
  void add(const HDPoint& point) override { points_.push_back(point); }
  [[nodiscard]] std::optional<Neighbor> nearest(
      const std::vector<float>& query) const override;
  [[nodiscard]] std::vector<Neighbor> knn(const std::vector<float>& query,
                                          std::size_t k) const override;
  [[nodiscard]] std::size_t size() const override { return points_.size(); }

 private:
  std::vector<HDPoint> points_;
};

/// Exact KD-tree with buffered inserts: new points accumulate in a brute
/// buffer and the tree is rebuilt when the buffer outgrows a fraction of the
/// tree, amortizing construction.
class KdTreeIndex final : public NnIndex {
 public:
  explicit KdTreeIndex(int dim);

  void add(const HDPoint& point) override;
  [[nodiscard]] std::optional<Neighbor> nearest(
      const std::vector<float>& query) const override;
  [[nodiscard]] std::vector<Neighbor> knn(const std::vector<float>& query,
                                          std::size_t k) const override;
  [[nodiscard]] std::size_t size() const override {
    return tree_points_.size() + buffer_.size();
  }

 private:
  struct Node {
    int point = -1;   // index into tree_points_
    int axis = 0;
    int left = -1, right = -1;
  };

  void rebuild();
  int build_recursive(std::vector<int>& ids, int lo, int hi, int depth);
  void search(int node, const std::vector<float>& query,
              std::vector<Neighbor>& best, std::size_t k) const;
  static void push_candidate(std::vector<Neighbor>& best, std::size_t k,
                             Neighbor candidate);

  int dim_;
  std::vector<HDPoint> tree_points_;
  std::vector<Node> nodes_;
  int root_ = -1;
  std::vector<HDPoint> buffer_;
};

}  // namespace mummi::ml
