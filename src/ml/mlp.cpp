#include "ml/mlp.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mummi::ml {

Mlp::Mlp(std::vector<int> widths, std::uint64_t seed)
    : widths_(std::move(widths)) {
  MUMMI_CHECK_MSG(widths_.size() >= 2, "MLP needs at least input and output");
  util::Rng rng(seed);
  for (std::size_t l = 0; l + 1 < widths_.size(); ++l) {
    const int in = widths_[l];
    const int out = widths_[l + 1];
    MUMMI_CHECK_MSG(in > 0 && out > 0, "layer widths must be positive");
    const double scale = std::sqrt(2.0 / (in + out));
    std::vector<float> w(static_cast<std::size_t>(in) * out);
    for (auto& v : w) v = static_cast<float>(rng.normal(0.0, scale));
    weights_.push_back(std::move(w));
    biases_.emplace_back(static_cast<std::size_t>(out), 0.0f);
  }
}

std::vector<float> Mlp::forward(const std::vector<float>& input) const {
  MUMMI_CHECK_MSG(static_cast<int>(input.size()) == widths_.front(),
                  "MLP input dimension mismatch");
  std::vector<float> x = input;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    const int in = widths_[l];
    const int out = widths_[l + 1];
    std::vector<float> y(static_cast<std::size_t>(out));
    for (int o = 0; o < out; ++o) {
      float acc = biases_[l][o];
      const float* row = &weights_[l][static_cast<std::size_t>(o) * in];
      for (int i = 0; i < in; ++i) acc += row[i] * x[i];
      y[o] = acc;
    }
    const bool last = l + 1 == weights_.size();
    if (!last)
      for (auto& v : y) v = std::tanh(v);
    x = std::move(y);
  }
  return x;
}

util::Bytes Mlp::serialize() const {
  util::ByteWriter w;
  w.vec(widths_);
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    w.vec(weights_[l]);
    w.vec(biases_[l]);
  }
  return std::move(w).take();
}

Mlp Mlp::deserialize(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  Mlp mlp;
  mlp.widths_ = r.vec<int>();
  MUMMI_CHECK_MSG(mlp.widths_.size() >= 2, "corrupt MLP stream");
  for (std::size_t l = 0; l + 1 < mlp.widths_.size(); ++l) {
    mlp.weights_.push_back(r.vec<float>());
    mlp.biases_.push_back(r.vec<float>());
  }
  return mlp;
}

}  // namespace mummi::ml
