#include "ml/fps_sampler.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mummi::ml {

FpsSampler::FpsSampler(int dim, std::size_t capacity)
    : dim_(dim), capacity_(capacity), selected_index_(dim) {
  MUMMI_CHECK_MSG(dim > 0 && capacity > 0, "invalid FPS configuration");
}

void FpsSampler::add_candidates(const std::vector<HDPoint>& points) {
  std::vector<PointId> ids;
  ids.reserve(points.size());
  for (const auto& p : points) {
    MUMMI_CHECK_MSG(static_cast<int>(p.coords.size()) == dim_,
                    "candidate dimension mismatch");
    pending_.push_back(p);
    ids.push_back(p.id);
  }
  record('A', std::move(ids));
}

void FpsSampler::update_ranks() {
  for (auto& p : pending_) {
    Candidate c;
    c.point = std::move(p);
    if (auto nn = selected_index_.nearest(c.point.coords)) c.rank2 = nn->dist2;
    ranked_.push_back(std::move(c));
  }
  pending_.clear();
  evict_to_capacity();
}

void FpsSampler::evict_to_capacity() {
  if (ranked_.size() <= capacity_) return;
  // Keep the `capacity_` most novel candidates.
  std::nth_element(ranked_.begin(),
                   ranked_.begin() + static_cast<long>(capacity_),
                   ranked_.end(), [](const Candidate& a, const Candidate& b) {
                     return a.rank2 > b.rank2;
                   });
  ranked_.resize(capacity_);
}

std::vector<HDPoint> FpsSampler::select(std::size_t k) {
  update_ranks();
  std::vector<HDPoint> out;
  std::vector<PointId> ids;
  while (out.size() < k && !ranked_.empty()) {
    // Highest rank wins; ties break on lowest id for determinism.
    auto best = ranked_.begin();
    for (auto it = ranked_.begin() + 1; it != ranked_.end(); ++it)
      if (it->rank2 > best->rank2 ||
          (it->rank2 == best->rank2 && it->point.id < best->point.id))
        best = it;
    HDPoint chosen = std::move(best->point);
    *best = std::move(ranked_.back());
    ranked_.pop_back();
    // The new selection tightens every remaining candidate's rank.
    for (auto& c : ranked_) {
      const float d2 = dist2(c.point.coords, chosen.coords);
      if (d2 < c.rank2) c.rank2 = d2;
    }
    selected_index_.add(chosen);
    selected_points_.push_back(chosen);
    ++n_selected_;
    ids.push_back(chosen.id);
    out.push_back(std::move(chosen));
  }
  record('S', std::move(ids));
  return out;
}

float FpsSampler::rank_of(PointId id) const {
  for (const auto& c : ranked_)
    if (c.point.id == id) return std::sqrt(c.rank2);
  return std::numeric_limits<float>::quiet_NaN();
}

util::Bytes FpsSampler::serialize() const {
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(dim_));
  w.u64(capacity_);
  auto write_point = [&w](const HDPoint& p, float rank2) {
    w.u64(p.id);
    w.vec(p.coords);
    w.f32(rank2);
  };
  w.u64(ranked_.size() + pending_.size());
  for (const auto& c : ranked_) write_point(c.point, c.rank2);
  for (const auto& p : pending_)
    write_point(p, std::numeric_limits<float>::infinity());
  w.u64(selected_points_.size());
  for (const auto& p : selected_points_) write_point(p, 0.0f);
  return std::move(w).take();
}

FpsSampler FpsSampler::deserialize(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  const int dim = static_cast<int>(r.u32());
  const auto capacity = r.u64();
  FpsSampler s(dim, capacity);
  auto read_point = [&r](HDPoint& p) -> float {
    p.id = r.u64();
    p.coords = r.vec<float>();
    return r.f32();
  };
  const auto n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    Candidate c;
    c.rank2 = read_point(c.point);
    s.ranked_.push_back(std::move(c));
  }
  const auto nsel = r.u64();
  for (std::uint64_t i = 0; i < nsel; ++i) {
    HDPoint p;
    (void)read_point(p);
    s.selected_index_.add(p);
    s.selected_points_.push_back(std::move(p));
  }
  s.n_selected_ = s.selected_points_.size();
  return s;
}

}  // namespace mummi::ml
