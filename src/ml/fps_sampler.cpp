#include "ml/fps_sampler.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace mummi::ml {

namespace {
constexpr float kInf = std::numeric_limits<float>::infinity();

// Slots per parallel_for_blocks block in update_ranks. Fixed (never derived
// from the worker count) so per-block work — and therefore every float
// produced — is identical on any pool size.
constexpr std::size_t kRefreshBlock = 1024;

// Fold backlog beyond which a kd-tree nearest query beats the linear fold
// over newly selected points. Both paths yield bit-identical ranks; this is
// purely a cost crossover (the interleaved fold below sustains ~4 pairs in
// flight, so it stays competitive with the tree far past small backlogs).
constexpr std::size_t kKdBacklog = 512;

/// min(r, min dist2 from `c` to selected rows [from, to)).
///
/// Four rows are folded in flight to break the single-accumulator latency
/// chain dist2 imposes. Each row's partial sums accumulate in the same index
/// order as dist2 (one accumulator per pair), and min is exact, so the
/// result is bit-identical to the sequential fold — this is an ILP
/// transform, not a numeric one.
float fold_min(std::span<const float> c, const PointStore& sel,
               std::size_t from, std::size_t to, float r) {
  const auto dim = static_cast<std::size_t>(sel.dim());
  const float* base = sel.flat().data();
  std::size_t j = from;
  for (; j + 4 <= to; j += 4) {
    const float* p0 = base + (j + 0) * dim;
    const float* p1 = base + (j + 1) * dim;
    const float* p2 = base + (j + 2) * dim;
    const float* p3 = base + (j + 3) * dim;
    float s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::size_t d = 0; d < dim; ++d) {
      const float x = c[d];
      const float e0 = x - p0[d];
      const float e1 = x - p1[d];
      const float e2 = x - p2[d];
      const float e3 = x - p3[d];
      s0 += e0 * e0;
      s1 += e1 * e1;
      s2 += e2 * e2;
      s3 += e3 * e3;
    }
    r = std::min(r, std::min(std::min(s0, s1), std::min(s2, s3)));
  }
  for (; j < to; ++j) r = std::min(r, dist2(c, sel.coords(j)));
  return r;
}
}  // namespace

FpsSampler::FpsSampler(int dim, std::size_t capacity)
    : dim_(dim),
      capacity_(capacity),
      pool_(dim),
      selected_index_(dim),
      selected_(dim) {
  MUMMI_CHECK_MSG(dim > 0 && capacity > 0, "invalid FPS configuration");
}

void FpsSampler::add_candidates(const std::vector<HDPoint>& points) {
  std::vector<PointId> ids;
  ids.reserve(points.size());
  for (const auto& p : points) {
    MUMMI_CHECK_MSG(static_cast<int>(p.coords.size()) == dim_,
                    "candidate dimension mismatch");
    pool_.add(p.id, p.coords);
    rank2_.push_back(kInf);
    seen_.push_back(0);
    ids.push_back(p.id);
  }
  record('A', std::move(ids));
}

void FpsSampler::add_candidates(const PointStore& points) {
  MUMMI_CHECK_MSG(points.dim() == dim_, "candidate dimension mismatch");
  pool_.append(points);
  rank2_.insert(rank2_.end(), points.size(), kInf);
  seen_.insert(seen_.end(), points.size(), 0);
  record('A', points.ids());
}

void FpsSampler::refresh_slot(std::size_t slot, std::size_t n_sel) {
  const std::size_t from = seen_[slot];
  if (from >= n_sel) return;
  float r = rank2_[slot];
  const auto c = pool_.coords(slot);
  if (n_sel - from > kKdBacklog && selected_index_.size() == n_sel) {
    // One tree query spans the whole selected set; min-merging with the
    // stored partial rank reproduces the full fold exactly (min is exact).
    if (auto nn = selected_index_.nearest(c)) r = std::min(r, nn->dist2);
  } else {
    r = fold_min(c, selected_, from, n_sel, r);
  }
  rank2_[slot] = r;
  seen_[slot] = static_cast<std::uint32_t>(n_sel);
}

void FpsSampler::update_ranks() {
  selected_index_.flush();
  const std::size_t n_sel = selected_.size();
  util::global_pool().parallel_for_blocks(
      pool_.size(), kRefreshBlock, [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) refresh_slot(s, n_sel);
      });
  evict_to_capacity();
  ranked_count_ = pool_.size();
  rebuild_heap();
}

void FpsSampler::evict_to_capacity() {
  if (pool_.size() <= capacity_) return;
  // Keep the `capacity_` most novel candidates; the (rank2 desc, id asc)
  // order is total, so the survivor set is unique — independent of slot
  // order and of how the ranks were computed.
  std::vector<std::uint32_t> order(pool_.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<std::uint32_t>(i);
  std::nth_element(order.begin(), order.begin() + static_cast<long>(capacity_),
                   order.end(), [&](std::uint32_t a, std::uint32_t b) {
                     if (rank2_[a] != rank2_[b]) return rank2_[a] > rank2_[b];
                     return pool_.id(a) < pool_.id(b);
                   });
  std::vector<std::uint32_t> doomed(order.begin() + static_cast<long>(capacity_),
                                    order.end());
  // Highest slot first: every swap-in source is a survivor or a later slot.
  std::sort(doomed.begin(), doomed.end(), std::greater<>());
  for (const auto s : doomed) {
    pool_.swap_remove(s);
    const std::size_t last = pool_.size();
    if (s != last) {
      rank2_[s] = rank2_[last];
      seen_[s] = seen_[last];
    }
    rank2_.pop_back();
    seen_.pop_back();
  }
}

void FpsSampler::rebuild_heap() {
  heap_.clear();
  heap_.reserve(pool_.size());
  for (std::size_t s = 0; s < pool_.size(); ++s)
    heap_.push_back(
        {rank2_[s], pool_.id(s), static_cast<std::uint32_t>(s)});
  std::make_heap(heap_.begin(), heap_.end(), heap_below);
}

HDPoint FpsSampler::take_slot(std::size_t slot) {
  HDPoint out = pool_.swap_remove(slot);
  const std::size_t last = pool_.size();
  if (slot != last) {
    rank2_[slot] = rank2_[last];
    seen_[slot] = seen_[last];
  }
  rank2_.pop_back();
  seen_.pop_back();
  if (slot < pool_.size()) {
    // The moved point's old heap entries now fail the slot/id check; hand it
    // a live entry so every candidate stays reachable.
    heap_.push_back({rank2_[slot], pool_.id(slot),
                     static_cast<std::uint32_t>(slot)});
    std::push_heap(heap_.begin(), heap_.end(), heap_below);
  }
  return out;
}

std::vector<HDPoint> FpsSampler::select(std::size_t k) {
  update_ranks();
  std::vector<HDPoint> out;
  std::vector<PointId> ids;
  while (out.size() < k && !pool_.empty()) {
    if (heap_.empty()) rebuild_heap();  // self-heal; not expected
    const HeapEntry e = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), heap_below);
    heap_.pop_back();
    // Stale entry: the slot was vacated/reused, or a fresher entry with the
    // tightened rank was pushed when the value changed. Either way a live
    // entry for the affected candidate exists elsewhere in the heap.
    if (e.slot >= pool_.size() || pool_.id(e.slot) != e.id ||
        rank2_[e.slot] != e.rank2)
      continue;
    const std::size_t n_sel = selected_.size();
    if (seen_[e.slot] != n_sel) {
      const float before = rank2_[e.slot];
      refresh_slot(e.slot, n_sel);
      if (rank2_[e.slot] != before) {
        heap_.push_back({rank2_[e.slot], e.id, e.slot});
        std::push_heap(heap_.begin(), heap_.end(), heap_below);
        continue;
      }
      // Unchanged: e was the heap max of upper bounds and now holds an exact
      // rank, so it is the true (rank2 desc, id asc) argmax — CELF-style
      // lazy confirmation.
    }
    HDPoint chosen = take_slot(e.slot);
    selected_index_.add(chosen.id, chosen.coords);
    selected_.add(chosen.id, chosen.coords);
    ids.push_back(chosen.id);
    out.push_back(std::move(chosen));
  }
  ranked_count_ = pool_.size();
  record('S', std::move(ids));
  return out;
}

float FpsSampler::rank_of(PointId id) const {
  const std::size_t limit = std::min(ranked_count_, pool_.size());
  for (std::size_t s = 0; s < pool_.size(); ++s) {
    if (pool_.id(s) != id) continue;
    if (s >= limit) break;  // pending: not ranked yet
    float r = rank2_[s];
    for (std::size_t j = seen_[s]; j < selected_.size(); ++j)
      r = std::min(r, dist2(pool_.coords(s), selected_.coords(j)));
    return std::sqrt(r);
  }
  return std::numeric_limits<float>::quiet_NaN();
}

util::Bytes FpsSampler::serialize() const {
  util::ByteWriter w;
  w.u8(kSerialVersion);
  w.u32(static_cast<std::uint32_t>(dim_));
  w.u64(capacity_);
  w.u64(ranked_count_);
  pool_.serialize(w);
  w.vec(rank2_);
  w.vec(seen_);
  selected_.serialize(w);
  return std::move(w).take();
}

FpsSampler FpsSampler::deserialize(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  const auto version = r.u8();
  if (version != kSerialVersion)
    throw util::FormatError(
        "fps sampler checkpoint version mismatch: expected v" +
        std::to_string(kSerialVersion) + ", got byte " +
        std::to_string(version) +
        " (blob predates the flat selection-layer layout)");
  const int dim = static_cast<int>(r.u32());
  const auto capacity = r.u64();
  FpsSampler s(dim, capacity);
  s.ranked_count_ = r.u64();
  s.pool_ = PointStore::deserialize(r);
  s.rank2_ = r.vec<float>();
  s.seen_ = r.vec<std::uint32_t>();
  s.selected_ = PointStore::deserialize(r);
  if (s.pool_.dim() != dim || s.selected_.dim() != dim ||
      s.rank2_.size() != s.pool_.size() || s.seen_.size() != s.pool_.size() ||
      s.ranked_count_ > s.pool_.size())
    throw util::FormatError("corrupt fps sampler checkpoint");
  for (std::size_t i = 0; i < s.selected_.size(); ++i)
    s.selected_index_.add(s.selected_.id(i), s.selected_.coords(i));
  // heap_ stays empty; the next update_ranks (every select starts with one)
  // rebuilds it from the restored ranks.
  return s;
}

}  // namespace mummi::ml
