// Dynamic-importance sampling (the DynIm substitute).
//
// Paper Task 2: "New candidates ... are ingested by the WM as soon as new
// data is generated, whereas new selections are made upon request ... Since
// selection events are orders of magnitude fewer than addition events, we use
// a caching scheme to postpone expensive computations until the time of a
// selection, which makes the cost of adding new candidates negligible."
//
// A Sampler ingests encoded points, ranks them for novelty, and hands back
// the top candidates on request. Implementations: FpsSampler (farthest-point,
// 9-D patches) and BinnedSampler (3-D histogram, CG frames).
#pragma once

#include <cstddef>
#include <vector>

#include "ml/point.hpp"
#include "ml/point_store.hpp"
#include "util/bytes.hpp"

namespace mummi::ml {

class Sampler {
 public:
  /// Replayable history event: 'A' = candidates added, 'S' = selected.
  struct Event {
    char op;
    std::vector<PointId> ids;
  };

  virtual ~Sampler() = default;

  /// Ingests candidates (cheap; ranking may be deferred).
  virtual void add_candidates(const std::vector<HDPoint>& points) = 0;

  /// Ingests candidates already laid out flat — the bulk path encoders use;
  /// no per-point allocation happens anywhere along it.
  virtual void add_candidates(const PointStore& points) = 0;

  /// Returns up to k most novel candidates and removes them from the pool.
  /// Triggers any deferred rank updates.
  virtual std::vector<HDPoint> select(std::size_t k) = 0;

  /// Forces the deferred ranking work now (what the paper times at 3-4 min
  /// for full queues).
  virtual void update_ranks() = 0;

  [[nodiscard]] virtual std::size_t candidate_count() const = 0;
  [[nodiscard]] virtual std::size_t selected_count() const = 0;

  /// Checkpoint serialization.
  [[nodiscard]] virtual util::Bytes serialize() const = 0;

  /// Exact-replay history ("elaborate history files that may be replayed
  /// exactly", paper Sec. 4.4).
  [[nodiscard]] const std::vector<Event>& history() const { return history_; }
  void clear_history() { history_.clear(); }
  /// History recording is on by default; campaign-scale runs disable it to
  /// bound memory (the paper streams history to files instead).
  void set_history_enabled(bool enabled) { history_enabled_ = enabled; }

 protected:
  void record(char op, std::vector<PointId> ids) {
    if (history_enabled_) history_.push_back(Event{op, std::move(ids)});
  }

 private:
  std::vector<Event> history_;
  bool history_enabled_ = true;
};

}  // namespace mummi::ml
