// Farthest-point sampler over L2 — the Patch Selector's core.
//
// Rank(candidate) = distance to the nearest already-selected point; selecting
// always takes the highest rank ("most novel"). Additions are O(1) (lazy);
// ranks refresh at selection time against a KD-tree of selected points. The
// pool is capped (paper: 35,000 per queue); the least novel candidates are
// evicted first.
#pragma once

#include <limits>

#include "ml/ann_index.hpp"
#include "ml/sampler.hpp"

namespace mummi::ml {

class FpsSampler final : public Sampler {
 public:
  FpsSampler(int dim, std::size_t capacity);

  void add_candidates(const std::vector<HDPoint>& points) override;
  std::vector<HDPoint> select(std::size_t k) override;
  void update_ranks() override;

  [[nodiscard]] std::size_t candidate_count() const override {
    return ranked_.size() + pending_.size();
  }
  [[nodiscard]] std::size_t selected_count() const override {
    return n_selected_;
  }

  /// Current novelty rank of a candidate (sqrt of nearest-selected dist2);
  /// infinity when nothing was selected yet. For tests/diagnostics.
  [[nodiscard]] float rank_of(PointId id) const;

  [[nodiscard]] util::Bytes serialize() const override;
  static FpsSampler deserialize(const util::Bytes& bytes);

 private:
  struct Candidate {
    HDPoint point;
    float rank2 = std::numeric_limits<float>::infinity();
  };

  void evict_to_capacity();

  int dim_;
  std::size_t capacity_;
  std::vector<Candidate> ranked_;
  std::vector<HDPoint> pending_;
  KdTreeIndex selected_index_;
  std::vector<HDPoint> selected_points_;  // persisted for checkpoint/restore
  std::size_t n_selected_ = 0;
};

}  // namespace mummi::ml
