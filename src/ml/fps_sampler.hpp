// Farthest-point sampler over L2 — the Patch Selector's core.
//
// Rank(candidate) = distance to the nearest already-selected point; selecting
// always takes the highest rank ("most novel"). Additions are O(1) (lazy);
// ranks refresh at selection time against a KD-tree of selected points. The
// pool is capped (paper: 35,000 per queue); the least novel candidates are
// evicted first.
//
// Layout and algorithm (see DESIGN.md "Selection-layer data layout &
// deterministic parallelism"):
//  - Candidates live in a flat PointStore; rank2_/seen_ are parallel arrays.
//    seen_[s] counts how many selected points slot s's rank already folded
//    in, so rank tightening is lazy and batched.
//  - update_ranks() refreshes every stale slot in one pass, fanned out over
//    util::ThreadPool::parallel_for_blocks with fixed block boundaries —
//    results are identical for any worker count.
//  - select() pops from a lazy max-heap of (rank2 upper bound, id) entries;
//    stale entries are detected by value/id mismatch, so each pick costs
//    O(log n) amortized instead of a full scan.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "ml/ann_index.hpp"
#include "ml/sampler.hpp"

namespace mummi::ml {

class FpsSampler final : public Sampler {
 public:
  /// Serialization format version; bumped when the on-disk layout changes
  /// (v2 = flat SoA layout; v1 blobs are rejected, not misread).
  static constexpr std::uint8_t kSerialVersion = 2;

  FpsSampler(int dim, std::size_t capacity);

  void add_candidates(const std::vector<HDPoint>& points) override;
  void add_candidates(const PointStore& points) override;
  std::vector<HDPoint> select(std::size_t k) override;
  void update_ranks() override;

  [[nodiscard]] std::size_t candidate_count() const override {
    return pool_.size();
  }
  [[nodiscard]] std::size_t selected_count() const override {
    return selected_.size();
  }

  /// Current novelty rank of a candidate (sqrt of nearest-selected dist2);
  /// infinity when nothing was selected yet, NaN for unknown or not-yet-
  /// ranked candidates. For tests/diagnostics.
  [[nodiscard]] float rank_of(PointId id) const;

  [[nodiscard]] util::Bytes serialize() const override;
  static FpsSampler deserialize(const util::Bytes& bytes);

 private:
  /// Lazy max-heap entry: rank2 is an upper bound on the slot's true rank
  /// (ranks only tighten). Ordering is (rank2 desc, id asc) so argmax ties
  /// break on lowest id — the determinism contract.
  struct HeapEntry {
    float rank2 = std::numeric_limits<float>::infinity();
    PointId id = 0;
    std::uint32_t slot = 0;
  };

  /// Heap "less" — true when `a` should sit *below* `b`: lower rank, or
  /// equal rank with higher id (ties surface the lowest id first).
  static bool heap_below(const HeapEntry& a, const HeapEntry& b) {
    if (a.rank2 != b.rank2) return a.rank2 < b.rank2;
    return a.id > b.id;
  }

  /// Folds selected points [seen_[slot], n_sel) into rank2_[slot]; uses the
  /// kd-tree instead of the linear fold once the backlog is large. Both
  /// paths produce bit-identical values (exact min over identical dist2
  /// evaluations).
  void refresh_slot(std::size_t slot, std::size_t n_sel);
  void evict_to_capacity();
  void rebuild_heap();
  /// Removes `slot` from the pool (swap-remove across all parallel arrays)
  /// and keeps the heap consistent for the point moved into `slot`.
  HDPoint take_slot(std::size_t slot);

  int dim_;
  std::size_t capacity_;
  PointStore pool_;                  // all candidates, SoA
  std::vector<float> rank2_;         // min dist2 to selected[0..seen_[s])
  std::vector<std::uint32_t> seen_;  // per-slot fold watermark
  std::size_t ranked_count_ = 0;     // slots < ranked_count_ have real ranks
  std::vector<HeapEntry> heap_;
  KdTreeIndex selected_index_;
  PointStore selected_;  // selection order; fold source + checkpoint state
};

}  // namespace mummi::ml
