// Discrete histogram-based sampler — the (CG) Frame Selector's core.
//
// Paper Task 2: "the Frame Selector relies on a 3-D encoding of CG frames
// that represents three disparate quantities; therefore, the L2 distance is
// not meaningful. To support a functionally useful sampling, a binned sampler
// was developed ... The binned sampling approach also facilitates control
// over the balance between importance and randomness ... capable of providing
// significantly faster updates to ranking: 3-4 minutes for 9M candidates."
//
// Candidates land in bins defined by per-dimension edges. A selection draws,
// with probability `importance`, from the non-empty bin least represented in
// the selected-so-far histogram (novelty), otherwise uniformly across all
// candidates (randomness). Rank updates are O(bins), independent of history.
#pragma once

#include <cstdint>

#include "ml/sampler.hpp"
#include "util/rng.hpp"

namespace mummi::ml {

class BinnedSampler final : public Sampler {
 public:
  /// Serialization format version; v2 added the RNG state (restored samplers
  /// continue the exact selection stream) and rejects pre-version blobs.
  static constexpr std::uint8_t kSerialVersion = 2;

  /// `edges[d]` are the interior bin edges for dimension d (so a dimension
  /// with E edges has E+1 bins). `importance` in [0, 1].
  BinnedSampler(std::vector<std::vector<float>> edges, double importance,
                std::uint64_t seed);

  void add_candidates(const std::vector<HDPoint>& points) override;
  void add_candidates(const PointStore& points) override;
  std::vector<HDPoint> select(std::size_t k) override;
  void update_ranks() override;

  [[nodiscard]] std::size_t candidate_count() const override { return total_; }
  [[nodiscard]] std::size_t selected_count() const override {
    return n_selected_;
  }

  [[nodiscard]] std::size_t n_bins() const { return bins_.size(); }
  /// Bin a point falls into (flat index) — exposed for tests.
  [[nodiscard]] std::size_t bin_of(std::span<const float> coords) const;
  [[nodiscard]] std::size_t bin_of(std::initializer_list<float> coords) const {
    return bin_of(std::span<const float>(coords.begin(), coords.size()));
  }
  /// How many selections came from each bin.
  [[nodiscard]] const std::vector<std::uint64_t>& selected_histogram() const {
    return selected_per_bin_;
  }

  [[nodiscard]] util::Bytes serialize() const override;
  static BinnedSampler deserialize(const util::Bytes& bytes);

 private:
  // Each bin is a flat PointStore (shared SoA layout of the selection
  // layer): per-candidate overhead is ~dim*4+8 bytes so full-campaign loads
  // (9M+ candidates) stay in memory and selection streams linearly.
  HDPoint take_from_bin(std::size_t bin, std::size_t which);

  std::vector<std::vector<float>> edges_;
  std::size_t dim_ = 0;
  double importance_;
  util::Rng rng_;
  std::vector<PointStore> bins_;
  std::vector<std::uint64_t> selected_per_bin_;
  std::size_t total_ = 0;
  std::size_t n_selected_ = 0;
};

}  // namespace mummi::ml
