// Discrete histogram-based sampler — the (CG) Frame Selector's core.
//
// Paper Task 2: "the Frame Selector relies on a 3-D encoding of CG frames
// that represents three disparate quantities; therefore, the L2 distance is
// not meaningful. To support a functionally useful sampling, a binned sampler
// was developed ... The binned sampling approach also facilitates control
// over the balance between importance and randomness ... capable of providing
// significantly faster updates to ranking: 3-4 minutes for 9M candidates."
//
// Candidates land in bins defined by per-dimension edges. A selection draws,
// with probability `importance`, from the non-empty bin least represented in
// the selected-so-far histogram (novelty), otherwise uniformly across all
// candidates (randomness). Rank updates are O(bins), independent of history.
#pragma once

#include <cstdint>

#include "ml/sampler.hpp"
#include "util/rng.hpp"

namespace mummi::ml {

class BinnedSampler final : public Sampler {
 public:
  /// `edges[d]` are the interior bin edges for dimension d (so a dimension
  /// with E edges has E+1 bins). `importance` in [0, 1].
  BinnedSampler(std::vector<std::vector<float>> edges, double importance,
                std::uint64_t seed);

  void add_candidates(const std::vector<HDPoint>& points) override;
  std::vector<HDPoint> select(std::size_t k) override;
  void update_ranks() override;

  [[nodiscard]] std::size_t candidate_count() const override { return total_; }
  [[nodiscard]] std::size_t selected_count() const override {
    return n_selected_;
  }

  [[nodiscard]] std::size_t n_bins() const { return bins_.size(); }
  /// Bin a point falls into (flat index) — exposed for tests.
  [[nodiscard]] std::size_t bin_of(const std::vector<float>& coords) const;
  /// How many selections came from each bin.
  [[nodiscard]] const std::vector<std::uint64_t>& selected_histogram() const {
    return selected_per_bin_;
  }

  [[nodiscard]] util::Bytes serialize() const override;
  static BinnedSampler deserialize(const util::Bytes& bytes);

 private:
  /// Flat SoA storage: candidate i of a bin has ids[i] and coords
  /// [i*dim, (i+1)*dim). Keeps per-candidate overhead at ~dim*4+8 bytes so
  /// full-campaign loads (9M+ candidates) stay in memory.
  struct Bin {
    std::vector<PointId> ids;
    std::vector<float> coords;
    [[nodiscard]] std::size_t size() const { return ids.size(); }
  };

  HDPoint take_from_bin(std::size_t bin, std::size_t which);

  std::vector<std::vector<float>> edges_;
  std::size_t dim_ = 0;
  double importance_;
  util::Rng rng_;
  std::vector<Bin> bins_;
  std::vector<std::uint64_t> selected_per_bin_;
  std::size_t total_ = 0;
  std::size_t n_selected_ = 0;
};

}  // namespace mummi::ml
