#include "ml/binned_sampler.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mummi::ml {

BinnedSampler::BinnedSampler(std::vector<std::vector<float>> edges,
                             double importance, std::uint64_t seed)
    : edges_(std::move(edges)), importance_(importance), rng_(seed) {
  MUMMI_CHECK_MSG(!edges_.empty(), "binned sampler needs dimensions");
  MUMMI_CHECK_MSG(importance >= 0.0 && importance <= 1.0,
                  "importance must be in [0, 1]");
  dim_ = edges_.size();
  std::size_t nbins = 1;
  for (auto& e : edges_) {
    MUMMI_CHECK_MSG(std::is_sorted(e.begin(), e.end()),
                    "bin edges must be sorted");
    nbins *= e.size() + 1;
  }
  bins_.resize(nbins);
  selected_per_bin_.assign(nbins, 0);
}

std::size_t BinnedSampler::bin_of(const std::vector<float>& coords) const {
  MUMMI_CHECK_MSG(coords.size() == dim_, "candidate dimension mismatch");
  std::size_t flat = 0;
  for (std::size_t d = 0; d < dim_; ++d) {
    const auto& e = edges_[d];
    const auto idx = static_cast<std::size_t>(
        std::upper_bound(e.begin(), e.end(), coords[d]) - e.begin());
    flat = flat * (e.size() + 1) + idx;
  }
  return flat;
}

void BinnedSampler::add_candidates(const std::vector<HDPoint>& points) {
  std::vector<PointId> ids;
  ids.reserve(points.size());
  for (const auto& p : points) {
    Bin& bin = bins_[bin_of(p.coords)];
    bin.ids.push_back(p.id);
    bin.coords.insert(bin.coords.end(), p.coords.begin(), p.coords.end());
    ids.push_back(p.id);
    ++total_;
  }
  record('A', std::move(ids));
}

void BinnedSampler::update_ranks() {
  // Ranking is the selected-per-bin histogram, maintained incrementally —
  // nothing to recompute. (This is why the binned sampler sustains ~165x
  // more candidates than farthest-point ranking in the same time budget.)
}

HDPoint BinnedSampler::take_from_bin(std::size_t bin, std::size_t which) {
  Bin& b = bins_[bin];
  HDPoint out;
  out.id = b.ids[which];
  out.coords.assign(b.coords.begin() + static_cast<long>(which * dim_),
                    b.coords.begin() + static_cast<long>((which + 1) * dim_));
  // Swap-pop both arrays.
  const std::size_t last = b.size() - 1;
  b.ids[which] = b.ids[last];
  b.ids.pop_back();
  if (which != last)
    std::copy(b.coords.begin() + static_cast<long>(last * dim_),
              b.coords.begin() + static_cast<long>((last + 1) * dim_),
              b.coords.begin() + static_cast<long>(which * dim_));
  b.coords.resize(last * dim_);
  --total_;
  ++selected_per_bin_[bin];
  ++n_selected_;
  return out;
}

std::vector<HDPoint> BinnedSampler::select(std::size_t k) {
  std::vector<HDPoint> out;
  std::vector<PointId> ids;
  while (out.size() < k && total_ > 0) {
    if (rng_.uniform() < importance_) {
      // Novelty: the non-empty bin least represented among selections.
      std::size_t best = bins_.size();
      for (std::size_t b = 0; b < bins_.size(); ++b) {
        if (bins_[b].size() == 0) continue;
        if (best == bins_.size() ||
            selected_per_bin_[b] < selected_per_bin_[best])
          best = b;
      }
      const auto which = rng_.uniform_index(bins_[best].size());
      out.push_back(take_from_bin(best, which));
    } else {
      // Randomness: uniform over every candidate.
      auto target = rng_.uniform_index(total_);
      for (std::size_t b = 0; b < bins_.size(); ++b) {
        if (target < bins_[b].size()) {
          out.push_back(take_from_bin(b, target));
          break;
        }
        target -= bins_[b].size();
      }
    }
    ids.push_back(out.back().id);
  }
  record('S', std::move(ids));
  return out;
}

util::Bytes BinnedSampler::serialize() const {
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(edges_.size()));
  for (const auto& e : edges_) w.vec(e);
  w.f64(importance_);
  w.u64(n_selected_);
  w.vec(selected_per_bin_);
  w.u64(bins_.size());
  for (const auto& b : bins_) {
    w.vec(b.ids);
    w.vec(b.coords);
  }
  return std::move(w).take();
}

BinnedSampler BinnedSampler::deserialize(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  const auto ndims = r.u32();
  std::vector<std::vector<float>> edges(ndims);
  for (auto& e : edges) e = r.vec<float>();
  const double importance = r.f64();
  BinnedSampler s(std::move(edges), importance, /*seed=*/1);
  s.n_selected_ = r.u64();
  s.selected_per_bin_ = r.vec<std::uint64_t>();
  MUMMI_CHECK_MSG(s.selected_per_bin_.size() == s.bins_.size(),
                  "corrupt binned-sampler stream");
  const auto nbins = r.u64();
  MUMMI_CHECK_MSG(nbins == s.bins_.size(), "corrupt binned-sampler stream");
  for (auto& b : s.bins_) {
    b.ids = r.vec<PointId>();
    b.coords = r.vec<float>();
    MUMMI_CHECK_MSG(b.coords.size() == b.ids.size() * s.dim_,
                    "corrupt binned-sampler stream");
    s.total_ += b.ids.size();
  }
  return s;
}

}  // namespace mummi::ml
