#include "ml/binned_sampler.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mummi::ml {

BinnedSampler::BinnedSampler(std::vector<std::vector<float>> edges,
                             double importance, std::uint64_t seed)
    : edges_(std::move(edges)), importance_(importance), rng_(seed) {
  MUMMI_CHECK_MSG(!edges_.empty(), "binned sampler needs dimensions");
  MUMMI_CHECK_MSG(importance >= 0.0 && importance <= 1.0,
                  "importance must be in [0, 1]");
  dim_ = edges_.size();
  std::size_t nbins = 1;
  for (auto& e : edges_) {
    MUMMI_CHECK_MSG(std::is_sorted(e.begin(), e.end()),
                    "bin edges must be sorted");
    nbins *= e.size() + 1;
  }
  bins_.assign(nbins, PointStore(static_cast<int>(dim_)));
  selected_per_bin_.assign(nbins, 0);
}

std::size_t BinnedSampler::bin_of(std::span<const float> coords) const {
  MUMMI_CHECK_MSG(coords.size() == dim_, "candidate dimension mismatch");
  std::size_t flat = 0;
  for (std::size_t d = 0; d < dim_; ++d) {
    const auto& e = edges_[d];
    const auto idx = static_cast<std::size_t>(
        std::upper_bound(e.begin(), e.end(), coords[d]) - e.begin());
    flat = flat * (e.size() + 1) + idx;
  }
  return flat;
}

void BinnedSampler::add_candidates(const std::vector<HDPoint>& points) {
  std::vector<PointId> ids;
  ids.reserve(points.size());
  for (const auto& p : points) {
    bins_[bin_of(p.coords)].add(p.id, p.coords);
    ids.push_back(p.id);
    ++total_;
  }
  record('A', std::move(ids));
}

void BinnedSampler::add_candidates(const PointStore& points) {
  MUMMI_CHECK_MSG(points.dim() == static_cast<int>(dim_),
                  "candidate dimension mismatch");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto c = points.coords(i);
    bins_[bin_of(c)].add(points.id(i), c);
    ++total_;
  }
  record('A', points.ids());
}

void BinnedSampler::update_ranks() {
  // Ranking is the selected-per-bin histogram, maintained incrementally —
  // nothing to recompute. (This is why the binned sampler sustains ~165x
  // more candidates than farthest-point ranking in the same time budget.)
}

HDPoint BinnedSampler::take_from_bin(std::size_t bin, std::size_t which) {
  HDPoint out = bins_[bin].swap_remove(which);
  --total_;
  ++selected_per_bin_[bin];
  ++n_selected_;
  return out;
}

std::vector<HDPoint> BinnedSampler::select(std::size_t k) {
  std::vector<HDPoint> out;
  std::vector<PointId> ids;
  while (out.size() < k && total_ > 0) {
    if (rng_.uniform() < importance_) {
      // Novelty: the non-empty bin least represented among selections.
      std::size_t best = bins_.size();
      for (std::size_t b = 0; b < bins_.size(); ++b) {
        if (bins_[b].empty()) continue;
        if (best == bins_.size() ||
            selected_per_bin_[b] < selected_per_bin_[best])
          best = b;
      }
      const auto which = rng_.uniform_index(bins_[best].size());
      out.push_back(take_from_bin(best, which));
    } else {
      // Randomness: uniform over every candidate.
      auto target = rng_.uniform_index(total_);
      for (std::size_t b = 0; b < bins_.size(); ++b) {
        if (target < bins_[b].size()) {
          out.push_back(take_from_bin(b, target));
          break;
        }
        target -= bins_[b].size();
      }
    }
    ids.push_back(out.back().id);
  }
  record('S', std::move(ids));
  return out;
}

util::Bytes BinnedSampler::serialize() const {
  util::ByteWriter w;
  w.u8(kSerialVersion);
  w.u32(static_cast<std::uint32_t>(edges_.size()));
  for (const auto& e : edges_) w.vec(e);
  w.f64(importance_);
  const auto rng_state = rng_.save_state();
  for (const auto word : rng_state.s) w.u64(word);
  w.u8(rng_state.has_spare ? 1 : 0);
  w.f64(rng_state.spare);
  w.u64(n_selected_);
  w.vec(selected_per_bin_);
  w.u64(bins_.size());
  for (const auto& b : bins_) b.serialize(w);
  return std::move(w).take();
}

BinnedSampler BinnedSampler::deserialize(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  const auto version = r.u8();
  if (version != kSerialVersion)
    throw util::FormatError(
        "binned sampler checkpoint version mismatch: expected v" +
        std::to_string(kSerialVersion) + ", got byte " +
        std::to_string(version) +
        " (blob predates the flat selection-layer layout)");
  const auto ndims = r.u32();
  std::vector<std::vector<float>> edges(ndims);
  for (auto& e : edges) e = r.vec<float>();
  const double importance = r.f64();
  BinnedSampler s(std::move(edges), importance, /*seed=*/1);
  util::Rng::State rng_state{};
  for (auto& word : rng_state.s) word = r.u64();
  rng_state.has_spare = r.u8() != 0;
  rng_state.spare = r.f64();
  s.rng_.load_state(rng_state);
  s.n_selected_ = r.u64();
  s.selected_per_bin_ = r.vec<std::uint64_t>();
  MUMMI_CHECK_MSG(s.selected_per_bin_.size() == s.bins_.size(),
                  "corrupt binned-sampler stream");
  const auto nbins = r.u64();
  MUMMI_CHECK_MSG(nbins == s.bins_.size(), "corrupt binned-sampler stream");
  for (auto& b : s.bins_) {
    b = PointStore::deserialize(r);
    MUMMI_CHECK_MSG(b.dim() == static_cast<int>(s.dim_),
                    "corrupt binned-sampler stream");
    s.total_ += b.size();
  }
  return s;
}

}  // namespace mummi::ml
