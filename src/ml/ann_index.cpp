#include "ml/ann_index.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace mummi::ml {

namespace {
constexpr float kInf = std::numeric_limits<float>::infinity();

// Rows per block when knn_batch fans out to a pool; fixed so that block
// boundaries never depend on the worker count.
constexpr std::size_t kBatchBlock = 64;
}  // namespace

void BruteForceIndex::add(PointId id, std::span<const float> coords) {
  if (points_.dim() == 0) points_ = PointStore(static_cast<int>(coords.size()));
  points_.add(id, coords);
}

std::optional<Neighbor> BruteForceIndex::nearest(
    std::span<const float> query) const {
  std::optional<Neighbor> best;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const float d2 = dist2(query, points_.coords(i));
    if (!best || d2 < best->dist2) best = Neighbor{points_.id(i), d2};
  }
  return best;
}

std::vector<Neighbor> BruteForceIndex::knn(std::span<const float> query,
                                           std::size_t k) const {
  std::vector<Neighbor> all;
  all.reserve(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i)
    all.push_back({points_.id(i), dist2(query, points_.coords(i))});
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(take),
                    all.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.dist2 < b.dist2;
                    });
  all.resize(take);
  return all;
}

KdTreeIndex::KdTreeIndex(int dim)
    : dim_(dim), tree_pts_(dim), buffer_(dim) {
  MUMMI_CHECK_MSG(dim > 0, "index dimension must be positive");
}

void KdTreeIndex::add(PointId id, std::span<const float> coords) {
  MUMMI_CHECK_MSG(static_cast<int>(coords.size()) == dim_,
                  "point dimension mismatch");
  buffer_.add(id, coords);
  if (buffer_.size() > 32 && buffer_.size() * 4 > tree_pts_.size()) rebuild();
}

void KdTreeIndex::flush() {
  if (!buffer_.empty()) rebuild();
}

void KdTreeIndex::rebuild() {
  tree_pts_.append(buffer_);
  buffer_.clear();
  nodes_.clear();
  nodes_.reserve(tree_pts_.size());
  const auto n = static_cast<std::int64_t>(tree_pts_.size());
  if (n == 0) {
    root_ = -1;
    return;
  }

  std::vector<std::uint32_t> slots(tree_pts_.size());
  for (std::size_t i = 0; i < slots.size(); ++i)
    slots[i] = static_cast<std::uint32_t>(i);

  // Iterative median-split build. Frames reference the parent's child field
  // to patch once the subtree root is allocated; pushing the right half
  // first (LIFO) lays nodes out in pre-order, left spine contiguous.
  struct Frame {
    std::int64_t lo, hi;
    std::int32_t depth, parent;
    bool is_right;
  };
  std::vector<Frame> stack;
  stack.push_back({0, n, 0, -1, false});
  std::int32_t max_depth = 0;
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.lo >= f.hi) continue;
    max_depth = std::max(max_depth, f.depth);
    const std::int32_t axis = f.depth % dim_;
    const std::int64_t mid = (f.lo + f.hi) / 2;
    std::nth_element(slots.begin() + f.lo, slots.begin() + mid,
                     slots.begin() + f.hi,
                     [&](std::uint32_t a, std::uint32_t b) {
                       return tree_pts_.coords(a)[axis] <
                              tree_pts_.coords(b)[axis];
                     });
    const auto node_id = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(Node{slots[static_cast<std::size_t>(mid)], -1, -1, axis});
    if (f.parent < 0)
      root_ = node_id;
    else if (f.is_right)
      nodes_[static_cast<std::size_t>(f.parent)].right = node_id;
    else
      nodes_[static_cast<std::size_t>(f.parent)].left = node_id;
    stack.push_back({mid + 1, f.hi, f.depth + 1, node_id, true});
    stack.push_back({f.lo, mid, f.depth + 1, node_id, false});
  }
  MUMMI_CHECK_MSG(max_depth + 1 < kMaxStack, "kd-tree deeper than stack bound");
}

Neighbor KdTreeIndex::nearest_in_tree(std::span<const float> query) const {
  // Deferred-prune iterative descent: walk the near side in a tight loop and
  // stack the far side with its splitting-plane distance; a stacked subtree
  // is skipped at pop time if the best has since tightened past it. The
  // stack holds at most one frame per level (pops are deepest-first), so
  // kMaxStack bounds it (checked at rebuild).
  struct Frame {
    std::int32_t node;
    float delta2;
  };
  Frame stack[kMaxStack];
  int top = 0;
  stack[top++] = {root_, 0.0f};
  Neighbor best{0, kInf};
  while (top > 0) {
    const Frame f = stack[--top];
    if (!(f.delta2 < best.dist2)) continue;
    std::int32_t node = f.node;
    while (node >= 0) {
      const Node& nd = nodes_[static_cast<std::size_t>(node)];
      const auto p = tree_pts_.coords(nd.slot);
      const float d2 = dist2(query, p);
      if (d2 < best.dist2) best = {tree_pts_.id(nd.slot), d2};
      const float delta = query[static_cast<std::size_t>(nd.axis)] -
                          p[static_cast<std::size_t>(nd.axis)];
      const std::int32_t near = delta < 0 ? nd.left : nd.right;
      const std::int32_t far = delta < 0 ? nd.right : nd.left;
      if (far >= 0 && delta * delta < best.dist2)
        stack[top++] = {far, delta * delta};
      node = near;
    }
  }
  return best;
}

std::optional<Neighbor> KdTreeIndex::nearest(
    std::span<const float> query) const {
  MUMMI_CHECK_MSG(static_cast<int>(query.size()) == dim_,
                  "query dimension mismatch");
  if (size() == 0) return std::nullopt;
  Neighbor best{0, kInf};
  if (root_ >= 0) best = nearest_in_tree(query);
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    const float d2 = dist2(query, buffer_.coords(i));
    if (d2 < best.dist2) best = {buffer_.id(i), d2};
  }
  return best;
}

void KdTreeIndex::push_candidate(std::vector<Neighbor>& best, std::size_t k,
                                 Neighbor candidate) {
  const auto farther = [](const Neighbor& a, const Neighbor& b) {
    return a.dist2 < b.dist2;
  };
  if (best.size() < k) {
    best.push_back(candidate);
    std::push_heap(best.begin(), best.end(), farther);
  } else if (candidate.dist2 < best.front().dist2) {
    std::pop_heap(best.begin(), best.end(), farther);
    best.back() = candidate;
    std::push_heap(best.begin(), best.end(), farther);
  }
}

void KdTreeIndex::search_knn(std::span<const float> query,
                             std::vector<Neighbor>& best,
                             std::size_t k) const {
  if (root_ < 0) return;
  struct Frame {
    std::int32_t node;
    float delta2;
  };
  Frame stack[kMaxStack];
  int top = 0;
  stack[top++] = {root_, 0.0f};
  while (top > 0) {
    const Frame f = stack[--top];
    if (best.size() == k && !(f.delta2 < best.front().dist2)) continue;
    std::int32_t node = f.node;
    while (node >= 0) {
      const Node& nd = nodes_[static_cast<std::size_t>(node)];
      const auto p = tree_pts_.coords(nd.slot);
      push_candidate(best, k, Neighbor{tree_pts_.id(nd.slot), dist2(query, p)});
      const float delta = query[static_cast<std::size_t>(nd.axis)] -
                          p[static_cast<std::size_t>(nd.axis)];
      const std::int32_t near = delta < 0 ? nd.left : nd.right;
      const std::int32_t far = delta < 0 ? nd.right : nd.left;
      if (far >= 0 && (best.size() < k || delta * delta < best.front().dist2))
        stack[top++] = {far, delta * delta};
      node = near;
    }
  }
}

std::vector<Neighbor> KdTreeIndex::knn(std::span<const float> query,
                                       std::size_t k) const {
  MUMMI_CHECK_MSG(static_cast<int>(query.size()) == dim_,
                  "query dimension mismatch");
  std::vector<Neighbor> best;  // max-heap on dist2
  best.reserve(k + 1);
  search_knn(query, best, k);
  for (std::size_t i = 0; i < buffer_.size(); ++i)
    push_candidate(best, k, Neighbor{buffer_.id(i), dist2(query, buffer_.coords(i))});
  std::sort_heap(best.begin(), best.end(),
                 [](const Neighbor& a, const Neighbor& b) {
                   return a.dist2 < b.dist2;
                 });
  return best;
}

void KdTreeIndex::knn_batch(std::span<const float> queries, std::size_t nq,
                            std::size_t k, std::span<Neighbor> out,
                            util::ThreadPool* pool) const {
  MUMMI_CHECK_MSG(queries.size() == nq * static_cast<std::size_t>(dim_),
                  "query batch size mismatch");
  MUMMI_CHECK_MSG(out.size() >= nq * k, "knn_batch output too small");
  const auto run = [&](std::size_t begin, std::size_t end) {
    std::vector<Neighbor> best;
    best.reserve(k + 1);
    for (std::size_t q = begin; q < end; ++q) {
      best.clear();
      const auto row =
          queries.subspan(q * static_cast<std::size_t>(dim_),
                          static_cast<std::size_t>(dim_));
      search_knn(row, best, k);
      for (std::size_t i = 0; i < buffer_.size(); ++i)
        push_candidate(best, k, Neighbor{buffer_.id(i), dist2(row, buffer_.coords(i))});
      std::sort_heap(best.begin(), best.end(),
                     [](const Neighbor& a, const Neighbor& b) {
                       return a.dist2 < b.dist2;
                     });
      for (std::size_t j = 0; j < k; ++j)
        out[q * k + j] = j < best.size() ? best[j] : Neighbor{0, kInf};
    }
  };
  if (pool != nullptr)
    pool->parallel_for_blocks(nq, kBatchBlock, run);
  else
    run(0, nq);
}

}  // namespace mummi::ml
