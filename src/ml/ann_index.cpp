#include "ml/ann_index.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mummi::ml {

std::optional<Neighbor> BruteForceIndex::nearest(
    const std::vector<float>& query) const {
  std::optional<Neighbor> best;
  for (const auto& p : points_) {
    const float d2 = dist2(query, p.coords);
    if (!best || d2 < best->dist2) best = Neighbor{p.id, d2};
  }
  return best;
}

std::vector<Neighbor> BruteForceIndex::knn(const std::vector<float>& query,
                                           std::size_t k) const {
  std::vector<Neighbor> all;
  all.reserve(points_.size());
  for (const auto& p : points_) all.push_back({p.id, dist2(query, p.coords)});
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(take),
                    all.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.dist2 < b.dist2;
                    });
  all.resize(take);
  return all;
}

KdTreeIndex::KdTreeIndex(int dim) : dim_(dim) {
  MUMMI_CHECK_MSG(dim > 0, "index dimension must be positive");
}

void KdTreeIndex::add(const HDPoint& point) {
  MUMMI_CHECK_MSG(static_cast<int>(point.coords.size()) == dim_,
                  "point dimension mismatch");
  buffer_.push_back(point);
  if (buffer_.size() > 32 && buffer_.size() * 4 > tree_points_.size())
    rebuild();
}

void KdTreeIndex::rebuild() {
  tree_points_.insert(tree_points_.end(), buffer_.begin(), buffer_.end());
  buffer_.clear();
  nodes_.clear();
  nodes_.reserve(tree_points_.size());
  std::vector<int> ids(tree_points_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int>(i);
  root_ = build_recursive(ids, 0, static_cast<int>(ids.size()), 0);
}

int KdTreeIndex::build_recursive(std::vector<int>& ids, int lo, int hi,
                                 int depth) {
  if (lo >= hi) return -1;
  const int axis = depth % dim_;
  const int mid = (lo + hi) / 2;
  std::nth_element(ids.begin() + lo, ids.begin() + mid, ids.begin() + hi,
                   [&](int a, int b) {
                     return tree_points_[a].coords[axis] <
                            tree_points_[b].coords[axis];
                   });
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{ids[mid], axis, -1, -1});
  const int left = build_recursive(ids, lo, mid, depth + 1);
  const int right = build_recursive(ids, mid + 1, hi, depth + 1);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

void KdTreeIndex::push_candidate(std::vector<Neighbor>& best, std::size_t k,
                                 Neighbor candidate) {
  if (best.size() < k) {
    best.push_back(candidate);
    std::push_heap(best.begin(), best.end(),
                   [](const Neighbor& a, const Neighbor& b) {
                     return a.dist2 < b.dist2;
                   });
  } else if (candidate.dist2 < best.front().dist2) {
    std::pop_heap(best.begin(), best.end(),
                  [](const Neighbor& a, const Neighbor& b) {
                    return a.dist2 < b.dist2;
                  });
    best.back() = candidate;
    std::push_heap(best.begin(), best.end(),
                   [](const Neighbor& a, const Neighbor& b) {
                     return a.dist2 < b.dist2;
                   });
  }
}

void KdTreeIndex::search(int node, const std::vector<float>& query,
                         std::vector<Neighbor>& best, std::size_t k) const {
  if (node < 0) return;
  const Node& nd = nodes_[node];
  const HDPoint& p = tree_points_[nd.point];
  push_candidate(best, k, Neighbor{p.id, dist2(query, p.coords)});
  const float delta = query[nd.axis] - p.coords[nd.axis];
  const int near = delta < 0 ? nd.left : nd.right;
  const int far = delta < 0 ? nd.right : nd.left;
  search(near, query, best, k);
  if (best.size() < k || delta * delta < best.front().dist2)
    search(far, query, best, k);
}

std::optional<Neighbor> KdTreeIndex::nearest(
    const std::vector<float>& query) const {
  auto result = knn(query, 1);
  if (result.empty()) return std::nullopt;
  return result.front();
}

std::vector<Neighbor> KdTreeIndex::knn(const std::vector<float>& query,
                                       std::size_t k) const {
  MUMMI_CHECK_MSG(static_cast<int>(query.size()) == dim_,
                  "query dimension mismatch");
  std::vector<Neighbor> best;  // max-heap on dist2
  best.reserve(k + 1);
  search(root_, query, best, k);
  for (const auto& p : buffer_)
    push_candidate(best, k, Neighbor{p.id, dist2(query, p.coords)});
  std::sort_heap(best.begin(), best.end(),
                 [](const Neighbor& a, const Neighbor& b) {
                   return a.dist2 < b.dist2;
                 });
  return best;
}

}  // namespace mummi::ml
