// Exact history replay for samplers.
//
// Paper Sec. 4.4: "key components (ML and job scheduling) also maintain
// elaborate history files that may be replayed exactly, if necessary."
// Samplers record add/select events (Sampler::history()); replay_history
// re-drives a *fresh* sampler through the same event stream, fetching the
// candidate payloads from an archive (pytaridx in production) through the
// caller's lookup, and verifies that every selection reproduces the record.
#pragma once

#include <functional>

#include "ml/sampler.hpp"
#include "util/error.hpp"

namespace mummi::ml {

/// Resolves a candidate id back to its encoded point (e.g. reading the
/// patch archive and re-encoding).
using CandidateLookup = std::function<HDPoint(PointId)>;

/// Replays `history` onto `sampler` (which must be freshly constructed with
/// the same configuration and seed as the original). With `verify`, a
/// selection that deviates from the record throws util::Error — detecting
/// configuration drift between the run and the replay.
inline void replay_history(Sampler& sampler,
                           const std::vector<Sampler::Event>& history,
                           const CandidateLookup& lookup, bool verify = true) {
  MUMMI_CHECK_MSG(sampler.candidate_count() == 0 &&
                      sampler.selected_count() == 0,
                  "replay target must be a fresh sampler");
  for (const auto& event : history) {
    if (event.op == 'A') {
      std::vector<HDPoint> batch;
      batch.reserve(event.ids.size());
      for (const PointId id : event.ids) batch.push_back(lookup(id));
      sampler.add_candidates(batch);
    } else if (event.op == 'S') {
      const auto picked = sampler.select(event.ids.size());
      if (verify) {
        MUMMI_CHECK_MSG(picked.size() == event.ids.size(),
                        "replay selection count diverged");
        for (std::size_t i = 0; i < picked.size(); ++i)
          MUMMI_CHECK_MSG(picked[i].id == event.ids[i],
                          "replay selection diverged from history");
      }
    } else {
      throw util::Error("unknown history op");
    }
  }
}

/// Serializes a history to bytes (for the on-disk history files).
[[nodiscard]] inline util::Bytes serialize_history(
    const std::vector<Sampler::Event>& history) {
  util::ByteWriter w;
  w.u64(history.size());
  for (const auto& event : history) {
    w.u8(static_cast<std::uint8_t>(event.op));
    w.vec(event.ids);
  }
  return std::move(w).take();
}

[[nodiscard]] inline std::vector<Sampler::Event> deserialize_history(
    const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  std::vector<Sampler::Event> history;
  const auto n = r.u64();
  history.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Sampler::Event event;
    event.op = static_cast<char>(r.u8());
    event.ids = r.vec<PointId>();
    history.push_back(std::move(event));
  }
  return history;
}

}  // namespace mummi::ml
