// Naive farthest-point sampler — the executable specification.
//
// Straight-line O(n) argmax scans and eager O(n·dim) rank tightening after
// every pick, per-point heap-allocated coords, no heap laziness, no kd-tree,
// no parallelism. Deliberately retained (not deleted with the seed
// implementation) so property tests can assert that the optimized
// FpsSampler reproduces this selection sequence byte-for-byte across
// randomized seeds, dims and batch sizes. Never use it on a hot path.
#pragma once

#include <algorithm>
#include <limits>
#include <vector>

#include "ml/point.hpp"
#include "util/error.hpp"

namespace mummi::ml {

class FpsReference {
 public:
  FpsReference(int dim, std::size_t capacity)
      : dim_(dim), capacity_(capacity) {
    MUMMI_CHECK_MSG(dim > 0 && capacity > 0, "invalid FPS configuration");
  }

  void add_candidates(const std::vector<HDPoint>& points) {
    for (const auto& p : points) {
      MUMMI_CHECK_MSG(static_cast<int>(p.coords.size()) == dim_,
                      "candidate dimension mismatch");
      pending_.push_back(p);
    }
  }

  void update_ranks() {
    for (auto& p : pending_) {
      Candidate c;
      c.point = std::move(p);
      for (const auto& s : selected_)
        c.rank2 = std::min(c.rank2, dist2(c.point.coords, s.coords));
      ranked_.push_back(std::move(c));
    }
    pending_.clear();
    evict_to_capacity();
  }

  std::vector<HDPoint> select(std::size_t k) {
    update_ranks();
    std::vector<HDPoint> out;
    while (out.size() < k && !ranked_.empty()) {
      // Highest rank wins; ties break on lowest id — the determinism
      // contract the optimized sampler must match.
      auto best = ranked_.begin();
      for (auto it = ranked_.begin() + 1; it != ranked_.end(); ++it)
        if (it->rank2 > best->rank2 ||
            (it->rank2 == best->rank2 && it->point.id < best->point.id))
          best = it;
      HDPoint chosen = std::move(best->point);
      *best = std::move(ranked_.back());
      ranked_.pop_back();
      for (auto& c : ranked_)
        c.rank2 = std::min(c.rank2, dist2(c.point.coords, chosen.coords));
      selected_.push_back(chosen);
      out.push_back(std::move(chosen));
    }
    return out;
  }

  [[nodiscard]] std::size_t candidate_count() const {
    return ranked_.size() + pending_.size();
  }
  [[nodiscard]] std::size_t selected_count() const { return selected_.size(); }

 private:
  struct Candidate {
    HDPoint point;
    float rank2 = std::numeric_limits<float>::infinity();
  };

  void evict_to_capacity() {
    if (ranked_.size() <= capacity_) return;
    // (rank2 desc, id asc) is a total order, so the survivor set is unique.
    std::nth_element(ranked_.begin(),
                     ranked_.begin() + static_cast<long>(capacity_),
                     ranked_.end(),
                     [](const Candidate& a, const Candidate& b) {
                       if (a.rank2 != b.rank2) return a.rank2 > b.rank2;
                       return a.point.id < b.point.id;
                     });
    ranked_.resize(capacity_);
  }

  int dim_;
  std::size_t capacity_;
  std::vector<Candidate> ranked_;
  std::vector<HDPoint> pending_;
  std::vector<HDPoint> selected_;
};

}  // namespace mummi::ml
