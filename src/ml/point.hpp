// High-dimensional points — the currency of the selection layer.
//
// Paper Task 2: "Both selectors operate on DynIm's high-dimensional point
// objects and, hence, are agnostic to the specific encoding of patches and
// frames."
#pragma once

#include <cstdint>
#include <vector>

namespace mummi::ml {

using PointId = std::uint64_t;

struct HDPoint {
  PointId id = 0;
  std::vector<float> coords;
};

/// Squared L2 distance.
[[nodiscard]] inline float dist2(const std::vector<float>& a,
                                 const std::vector<float>& b) {
  float s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace mummi::ml
