// High-dimensional points — the currency of the selection layer.
//
// Paper Task 2: "Both selectors operate on DynIm's high-dimensional point
// objects and, hence, are agnostic to the specific encoding of patches and
// frames."
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace mummi::ml {

using PointId = std::uint64_t;

struct HDPoint {
  PointId id = 0;
  std::vector<float> coords;
};

/// Squared L2 distance over contiguous coordinate spans.
///
/// The 4-wide unroll feeds the compiler independent subtractions while
/// keeping a *single* accumulator updated in index order, so every float
/// rounding step matches the plain sequential loop bit-for-bit — rank values
/// must not depend on which code path computed them.
[[nodiscard]] inline float dist2(std::span<const float> a,
                                 std::span<const float> b) {
  MUMMI_DEBUG_ASSERT(a.size() == b.size(), "dist2 dimension mismatch");
  const std::size_t n = a.size();
  float s = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    s += d0 * d0;
    s += d1 * d1;
    s += d2 * d2;
    s += d3 * d3;
  }
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace mummi::ml
