// Flat structure-of-arrays point storage shared across the selection layer.
//
// The seed implementation carried every candidate as an HDPoint whose coords
// lived in its own heap allocation; at campaign scale (millions of
// candidates, paper Sec. 5.1) the selectors spent most of their time
// pointer-chasing and in the allocator. A PointStore keeps one contiguous
// float array (dim coords per point) plus a parallel id array, so rank
// updates stream linearly through memory and adding a candidate is two
// vector appends.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/point.hpp"
#include "util/bytes.hpp"

namespace mummi::ml {

class PointStore {
 public:
  PointStore() = default;
  explicit PointStore(int dim);

  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] bool empty() const { return ids_.empty(); }

  void reserve(std::size_t n);
  void clear();

  /// Appends a point; returns its slot index. Inline: this is the
  /// per-candidate ingest path (millions of calls per campaign).
  std::size_t add(PointId id, std::span<const float> coords) {
    MUMMI_DEBUG_ASSERT(static_cast<int>(coords.size()) == dim_,
                       "candidate dimension mismatch");
    ids_.push_back(id);
    coords_.insert(coords_.end(), coords.begin(), coords.end());
    return ids_.size() - 1;
  }
  std::size_t add(const HDPoint& p) { return add(p.id, p.coords); }
  /// Appends every point of `other` (dims must match).
  void append(const PointStore& other);

  [[nodiscard]] PointId id(std::size_t slot) const { return ids_[slot]; }
  [[nodiscard]] std::span<const float> coords(std::size_t slot) const {
    return {coords_.data() + slot * static_cast<std::size_t>(dim_),
            static_cast<std::size_t>(dim_)};
  }
  [[nodiscard]] const std::vector<PointId>& ids() const { return ids_; }
  /// The whole coordinate block, size() * dim() floats.
  [[nodiscard]] std::span<const float> flat() const { return coords_; }

  /// Copies one slot out into an owning HDPoint (boundary use only — the hot
  /// paths stay inside the store).
  [[nodiscard]] HDPoint materialize(std::size_t slot) const;

  /// Removes `slot` by moving the last point into it (order not preserved);
  /// returns the removed point. Callers tracking slots must re-map the moved
  /// point from slot size()-1 to `slot`.
  HDPoint swap_remove(std::size_t slot);

  void serialize(util::ByteWriter& w) const;
  static PointStore deserialize(util::ByteReader& r);

 private:
  int dim_ = 0;
  std::vector<PointId> ids_;
  std::vector<float> coords_;
};

}  // namespace mummi::ml
