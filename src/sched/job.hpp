// Job descriptions and lifecycle states.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "resgraph/matcher.hpp"

namespace mummi::sched {

using JobId = std::uint64_t;
constexpr JobId kInvalidJob = 0;

enum class JobState {
  kPending,    // submitted, waiting for resources
  kRunning,    // resources allocated, payload executing
  kCompleted,  // finished successfully
  kFailed,     // finished unsuccessfully (tracker may resubmit)
  kCancelled,  // withdrawn before or during execution
};

[[nodiscard]] const char* to_string(JobState state);

/// What to run and what it needs. `type` binds the job to a JobTracker and
/// an executor payload ("cg_setup", "cg_sim", "aa_setup", "aa_sim", ...).
struct JobSpec {
  std::string name;
  std::string type;
  Request request;
  /// Duration hint for simulated executors (seconds); real executors ignore.
  double est_duration = 0.0;
  /// Opaque application handle (patch id, frame id, ...).
  std::uint64_t payload = 0;
  /// Free-form attributes for trackers.
  std::map<std::string, std::string> attrs;

  /// Convenience: an unbundled simulation job (1 GPU + `cores` CPU cores),
  /// the paper's Sec. 4.3 placement for CG/AA simulation+analysis.
  static JobSpec gpu_sim(std::string name, std::string type, int cores = 3) {
    JobSpec spec;
    spec.name = std::move(name);
    spec.type = std::move(type);
    spec.request.slot = Slot{cores, 1};
    return spec;
  }

  /// Convenience: a CPU-only setup job (createsim/backmapping use 24/18
  /// cores within one node).
  static JobSpec cpu_setup(std::string name, std::string type, int cores) {
    JobSpec spec;
    spec.name = std::move(name);
    spec.type = std::move(type);
    spec.request.slot = Slot{cores, 0};
    return spec;
  }
};

/// Scheduler-side record of a job.
struct Job {
  JobId id = kInvalidJob;
  JobSpec spec;
  JobState state = JobState::kPending;
  double submit_time = 0.0;
  double start_time = 0.0;
  double end_time = 0.0;
  Allocation alloc;
  int restarts = 0;  // times a tracker resubmitted this logical job
  /// True when the job failed because its node died (Scheduler::fail_node),
  /// not because the payload itself misbehaved. Retry policies use this to
  /// attribute the death: node-caused kills do not consume restart budget.
  bool killed_by_node = false;
};

}  // namespace mummi::sched
