// Event-driven queue manager: the Q <-> R service dynamics of Fig. 6.
//
// Paper Sec. 5.2: "In the version of Flux used for this campaign, Flux's
// queue manager (Q) and resource graph matcher (R) communicate synchronously.
// Our scaling run exposed this bottleneck where Q spends the bulk of its time
// handling new job submissions as opposed to forwarding jobs to R. We have
// since addressed this limitation by making this communication asynchronous."
//
// QueueManager layers service times over the logical Scheduler, driven by a
// SimEngine:
//   - each submission costs `t_submit` of Q's time;
//   - each match attempt costs `match_overhead + per_visit * <vertices
//     visited by the matcher>` of R's time;
//   - in *sync* mode Q and R share one server and submissions take priority
//     over match work — the pre-fix behaviour that produced chunky
//     scheduling at 4000 nodes;
//   - in *async* mode Q and R are independent servers.
#pragma once

#include <deque>

#include "event/sim_engine.hpp"
#include "sched/scheduler.hpp"

namespace mummi::sched {

struct QueueConfig {
  bool async_match = true;
  double t_submit = 0.12;        // seconds of Q time per submission
  double match_overhead = 5e-3;  // fixed seconds per match attempt
  double per_visit = 4e-6;       // seconds per matcher vertex visit
};

class QueueManager {
 public:
  QueueManager(event::SimEngine& engine, Scheduler& scheduler,
               QueueConfig config);

  /// Hands a job to Q at the current virtual time. The job reaches the
  /// scheduler queue when Q finishes its service.
  void submit(JobSpec spec);

  /// Nudges R (e.g. after a completion freed resources).
  void kick();

  [[nodiscard]] std::size_t submissions_waiting() const {
    return submit_queue_.size();
  }

  /// Seconds R spent matching and Q spent ingesting (for diagnostics).
  [[nodiscard]] double q_busy_seconds() const { return q_busy_; }
  [[nodiscard]] double r_busy_seconds() const { return r_busy_; }

 private:
  void service();          // advances the (shared or Q) server
  void service_matcher();  // advances R in async mode
  double match_cost(const Scheduler::PumpResult& r) const;

  event::SimEngine& engine_;
  Scheduler& scheduler_;
  QueueConfig config_;
  std::deque<JobSpec> submit_queue_;
  bool server_busy_ = false;   // Q (and R too, in sync mode)
  bool matcher_busy_ = false;  // R in async mode
  bool match_blocked_ = false;  // head job did not fit; wait for a kick()
  double q_busy_ = 0.0;
  double r_busy_ = 0.0;
};

}  // namespace mummi::sched
