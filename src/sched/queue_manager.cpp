#include "sched/queue_manager.hpp"

namespace mummi::sched {

QueueManager::QueueManager(event::SimEngine& engine, Scheduler& scheduler,
                           QueueConfig config)
    : engine_(engine), scheduler_(scheduler), config_(config) {}

double QueueManager::match_cost(const Scheduler::PumpResult& r) const {
  return config_.match_overhead +
         config_.per_visit * static_cast<double>(r.visits);
}

void QueueManager::submit(JobSpec spec) {
  submit_queue_.push_back(std::move(spec));
  service();
}

void QueueManager::kick() {
  match_blocked_ = false;
  if (config_.async_match)
    service_matcher();
  else
    service();
}

void QueueManager::service() {
  if (server_busy_) return;

  // Submissions first — in sync mode they starve match work, which is the
  // pathology the paper observed at 4000 nodes.
  if (!submit_queue_.empty()) {
    server_busy_ = true;
    JobSpec spec = std::move(submit_queue_.front());
    submit_queue_.pop_front();
    q_busy_ += config_.t_submit;
    engine_.schedule_after(config_.t_submit, [this, spec = std::move(spec)]() mutable {
      server_busy_ = false;
      scheduler_.submit(std::move(spec));
      if (config_.async_match) service_matcher();
      service();
    });
    return;
  }

  if (config_.async_match) return;  // matching handled by R's own server

  if (match_blocked_ || scheduler_.pending_count() == 0) return;
  const auto result = scheduler_.pump_one();
  if (!result.attempted) return;
  if (result.started == kInvalidJob) match_blocked_ = true;  // head does not fit
  server_busy_ = true;
  const double cost = match_cost(result);
  r_busy_ += cost;
  engine_.schedule_after(cost, [this] {
    server_busy_ = false;
    service();
  });
}

void QueueManager::service_matcher() {
  if (!config_.async_match || matcher_busy_) return;
  if (match_blocked_ || scheduler_.pending_count() == 0) return;
  const auto result = scheduler_.pump_one();
  if (!result.attempted) return;
  if (result.started == kInvalidJob) match_blocked_ = true;
  matcher_busy_ = true;
  const double cost = match_cost(result);
  r_busy_ += cost;
  engine_.schedule_after(cost, [this] {
    matcher_busy_ = false;
    service_matcher();
  });
}

}  // namespace mummi::sched
