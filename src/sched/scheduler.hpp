// fluxlite: a single-user workload manager in the spirit of Flux.
//
// Paper Sec. 4.3: Flux's single-user mode lets MuMMI instantiate an
// "isolated HPC system" within a batch allocation; MuMMI selects
// "throughput-oriented options for queuing (first come, first served with no
// backfilling) as well as resource matching (low resource ID first)".
// Scheduler implements exactly that: an FCFS no-backfill queue over a
// ResourceGraph with a pluggable match policy, job lifecycle tracking, and
// node drain for failure resilience.
//
// Scheduler is the *logical* core: every operation completes immediately.
// Service-time behaviour (the sync/async Q<->R dynamics of Fig. 6) is layered
// on top by QueueManager.
#pragma once

#include <functional>
#include <deque>
#include <unordered_map>
#include <vector>

#include "resgraph/matcher.hpp"
#include "sched/job.hpp"
#include "util/clock.hpp"

namespace mummi::obs {
class Counter;
class Gauge;
class HistogramMetric;
}  // namespace mummi::obs

namespace mummi::sched {

class Scheduler {
 public:
  using JobCallback = std::function<void(const Job&)>;

  Scheduler(ClusterSpec cluster, MatchPolicy policy, const util::Clock& clock);

  /// Enqueues a job (FCFS position). Does not try to place it — call pump().
  JobId submit(JobSpec spec);

  /// Attempts to start queued jobs in FCFS order, stopping at the first job
  /// that does not fit (no backfilling) or after `max_matches` placements.
  /// Returns ids of jobs started.
  std::vector<JobId> pump(std::size_t max_matches = SIZE_MAX);

  /// Like pump() but for exactly one match *attempt*; reports traversal cost.
  struct PumpResult {
    JobId started = kInvalidJob;   // kInvalidJob if nothing started
    bool attempted = false;        // false when the queue was empty
    std::uint64_t visits = 0;      // matcher vertices inspected
  };
  PumpResult pump_one();

  /// Marks a running job finished. Releases resources. `success` selects
  /// kCompleted vs kFailed.
  void complete(JobId id, bool success);

  /// Cancels a pending or running job; releases resources if running.
  /// Returns false if the job is already finished.
  bool cancel(JobId id);

  [[nodiscard]] const Job& job(JobId id) const;
  [[nodiscard]] JobState state(JobId id) const { return job(id).state; }

  [[nodiscard]] std::size_t pending_count() const { return queue_.size(); }
  [[nodiscard]] std::size_t running_count() const { return running_; }

  /// Ids of all jobs currently pending or running (for end-of-allocation
  /// teardown).
  [[nodiscard]] std::vector<JobId> active_jobs() const;

  /// Counts of running jobs by spec.type — the per-type curves of Fig. 6.
  [[nodiscard]] std::unordered_map<std::string, int> running_by_type() const;
  [[nodiscard]] std::unordered_map<std::string, int> pending_by_type() const;

  /// Resilience: drained nodes accept no new jobs; running jobs continue
  /// (paper Sec. 4.4).
  void drain_node(int node) { graph_.drain(node); }
  void undrain_node(int node) { graph_.undrain(node); }

  /// Hard node loss (distinct from the benign drain): every job with an
  /// allocation touching `node` fails immediately — finish callbacks fire so
  /// the WM can resubmit under its max_restarts policy — and the node is
  /// drained so resubmissions land elsewhere. Returns the killed job ids in
  /// ascending order (deterministic under any map iteration order).
  std::vector<JobId> fail_node(int node);

  /// Returns a failed/drained node to service.
  void recover_node(int node) { graph_.undrain(node); }

  [[nodiscard]] ResourceGraph& graph() { return graph_; }
  [[nodiscard]] const ResourceGraph& graph() const { return graph_; }
  [[nodiscard]] Matcher& matcher() { return *matcher_; }

  /// Fires when a job transitions to running / to a terminal state.
  void on_start(JobCallback fn) { start_callbacks_.push_back(std::move(fn)); }
  void on_finish(JobCallback fn) { finish_callbacks_.push_back(std::move(fn)); }

 private:
  Job& job_mut(JobId id);
  void start_job(Job& job, Allocation alloc);
  void update_depth_gauges();

  /// Registry handles (obs::MetricsRegistry; process-wide, shared by every
  /// scheduler instance, stable for the life of the process).
  struct Telemetry {
    obs::Counter* submitted = nullptr;
    obs::Counter* started = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Counter* match_attempts = nullptr;  // per-policy
    obs::Counter* match_visits = nullptr;    // per-policy
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* running = nullptr;
    obs::HistogramMetric* queue_wait_s = nullptr;  // submit -> dispatch
  };

  ResourceGraph graph_;
  std::unique_ptr<Matcher> matcher_;
  const util::Clock& clock_;
  std::unordered_map<JobId, Job> jobs_;
  std::deque<JobId> queue_;
  std::size_t running_ = 0;
  JobId next_id_ = 1;
  std::vector<JobCallback> start_callbacks_;
  std::vector<JobCallback> finish_callbacks_;
  Telemetry tm_;
};

}  // namespace mummi::sched
