#include "sched/executor.hpp"

#include "util/error.hpp"

namespace mummi::sched {

void PayloadRegistry::register_type(const std::string& type, PayloadFn fn) {
  payloads_[type] = std::move(fn);
}

const PayloadRegistry::PayloadFn& PayloadRegistry::payload_for(
    const std::string& type) const {
  auto it = payloads_.find(type);
  MUMMI_CHECK_MSG(it != payloads_.end(), "no payload for job type: " + type);
  return it->second;
}

bool PayloadRegistry::has(const std::string& type) const {
  return payloads_.count(type) > 0;
}

void InlineExecutor::launch(const Job& job, CompletionFn done) {
  bool ok = false;
  try {
    ok = registry_.payload_for(job.spec.type)(job);
  } catch (const std::exception&) {
    ok = false;
  }
  done(ok);
}

void ThreadExecutor::launch(const Job& job, CompletionFn done) {
  const auto& payload = registry_.payload_for(job.spec.type);
  // Copy what the worker needs; `job` may not outlive the scheduler call.
  pool_.submit([payload, job, done = std::move(done)] {
    bool ok = false;
    try {
      ok = payload(job);
    } catch (const std::exception&) {
      ok = false;
    }
    done(ok);
  });
}

SimExecutor::SimExecutor(event::SimEngine& engine, util::Rng rng,
                         double failure_prob)
    : engine_(engine), rng_(rng), failure_prob_(failure_prob) {}

void SimExecutor::launch(const Job& job, CompletionFn done) {
  if (pending_hangs_ > 0) {
    // A hung payload never invokes `done` — the slot stays occupied until a
    // watchdog cancels the job. No duration/failure draws: arming hangs must
    // not shift the RNG stream of the jobs that run normally.
    --pending_hangs_;
    ++hangs_injected_;
    hung_.insert(job.id);
    return;
  }
  double duration = model_ ? model_(job) : job.spec.est_duration;
  MUMMI_CHECK_MSG(duration >= 0.0, "negative job duration");
  if (pending_stragglers_ > 0) {
    --pending_stragglers_;
    ++stragglers_injected_;
    duration *= straggler_factor_;
  }
  bool ok = rng_.uniform() >= failure_prob_;
  if (poison_ && poison_(job)) ok = false;
  engine_.schedule_after(duration,
                         [done = std::move(done), ok] { done(ok); });
}

}  // namespace mummi::sched
