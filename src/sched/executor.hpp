// Job payload execution backends.
//
// The scheduler decides *where and when* a job runs; an Executor decides
// *how*. Three backends cover the library's modes:
//   - ThreadExecutor: really runs registered payload functions on a thread
//     pool (examples and integration tests run mini MD this way);
//   - SimExecutor: discrete-event completion after a modeled duration (the
//     campaign simulator);
//   - InlineExecutor: synchronous execution (unit tests).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>

#include "event/sim_engine.hpp"
#include "sched/job.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mummi::sched {

/// Called exactly once when a launched payload finishes; the argument is
/// success/failure.
using CompletionFn = std::function<void(bool)>;

class Executor {
 public:
  virtual ~Executor() = default;
  /// Begins executing `job`'s payload. `done` must eventually be invoked.
  virtual void launch(const Job& job, CompletionFn done) = 0;
};

/// Payload registry: maps job types to functions returning success.
class PayloadRegistry {
 public:
  using PayloadFn = std::function<bool(const Job&)>;

  void register_type(const std::string& type, PayloadFn fn);
  [[nodiscard]] const PayloadFn& payload_for(const std::string& type) const;
  [[nodiscard]] bool has(const std::string& type) const;

 private:
  std::unordered_map<std::string, PayloadFn> payloads_;
};

/// Runs payloads synchronously in launch() — deterministic unit testing.
class InlineExecutor final : public Executor {
 public:
  explicit InlineExecutor(PayloadRegistry registry)
      : registry_(std::move(registry)) {}
  void launch(const Job& job, CompletionFn done) override;

 private:
  PayloadRegistry registry_;
};

/// Runs payloads on a thread pool; completion fires from the worker thread.
/// Callers must make their completion handling thread-safe.
class ThreadExecutor final : public Executor {
 public:
  ThreadExecutor(util::ThreadPool& pool, PayloadRegistry registry)
      : pool_(pool), registry_(std::move(registry)) {}
  void launch(const Job& job, CompletionFn done) override;

 private:
  util::ThreadPool& pool_;
  PayloadRegistry registry_;
};

/// Completes jobs in virtual time. Duration comes from the job's
/// est_duration unless a DurationModel overrides it; a failure probability
/// models flaky hardware/software for resilience experiments.
///
/// Silent failure modes for supervision experiments (paper Sec. 4.4 — jobs
/// that "hang without exiting" or straggle far past their expectation):
///   - inject_hangs(n): the next n launches swallow their completion — `done`
///     is never invoked and the job occupies its slot until something above
///     (the watchdog) cancels it;
///   - inject_stragglers(n, f): the next n launches take f times their
///     modeled duration;
///   - set_poison(pred): jobs matching the predicate always fail, regardless
///     of failure_prob — deterministic poison work for quarantine tests.
/// Injections consume no RNG draws beyond the normal failure draw (hangs
/// skip even that), so arming them does not perturb the failure stream of
/// unaffected jobs.
class SimExecutor final : public Executor {
 public:
  /// Returns the duration (seconds) a job should take.
  using DurationModel = std::function<double(const Job&)>;

  SimExecutor(event::SimEngine& engine, util::Rng rng,
              double failure_prob = 0.0);

  void set_duration_model(DurationModel model) { model_ = std::move(model); }
  void set_failure_prob(double p) { failure_prob_ = p; }

  void inject_hangs(int n) { pending_hangs_ += n; }
  void inject_stragglers(int n, double factor) {
    pending_stragglers_ += n;
    straggler_factor_ = factor;
  }
  void set_poison(std::function<bool(const Job&)> pred) {
    poison_ = std::move(pred);
  }

  /// True while `id` was launched-and-hung and never cancelled/completed.
  /// Progress accounting uses this: a hung sim produced nothing.
  [[nodiscard]] bool is_hung(JobId id) const { return hung_.count(id) > 0; }
  [[nodiscard]] const std::set<JobId>& hung_jobs() const { return hung_; }
  /// Forgets a hung job (after the watchdog cancels it).
  void clear_hung(JobId id) { hung_.erase(id); }

  [[nodiscard]] std::uint64_t hangs_injected() const { return hangs_injected_; }
  [[nodiscard]] std::uint64_t stragglers_injected() const {
    return stragglers_injected_;
  }

  void launch(const Job& job, CompletionFn done) override;

 private:
  event::SimEngine& engine_;
  util::Rng rng_;
  double failure_prob_;
  DurationModel model_;
  int pending_hangs_ = 0;
  int pending_stragglers_ = 0;
  double straggler_factor_ = 4.0;
  std::function<bool(const Job&)> poison_;
  std::set<JobId> hung_;
  std::uint64_t hangs_injected_ = 0;
  std::uint64_t stragglers_injected_ = 0;
};

}  // namespace mummi::sched
