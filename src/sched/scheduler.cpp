#include "sched/scheduler.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace mummi::sched {

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kPending:   return "pending";
    case JobState::kRunning:   return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kFailed:    return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

Scheduler::Scheduler(ClusterSpec cluster, MatchPolicy policy,
                     const util::Clock& clock)
    : graph_(cluster), matcher_(make_matcher(policy)), clock_(clock) {
  // Match counters are per-policy so the Sec. 5.2 traversal-cost story is
  // visible straight from the registry.
  const std::string match_prefix = "sched.match." + matcher_->name();
  tm_.submitted = &obs::counter("sched.submitted");
  tm_.started = &obs::counter("sched.started");
  tm_.completed = &obs::counter("sched.completed");
  tm_.failed = &obs::counter("sched.failed");
  tm_.cancelled = &obs::counter("sched.cancelled");
  tm_.match_attempts = &obs::counter(match_prefix + ".attempts");
  tm_.match_visits = &obs::counter(match_prefix + ".visits");
  tm_.queue_depth = &obs::gauge("sched.queue_depth");
  tm_.running = &obs::gauge("sched.running");
  tm_.queue_wait_s = &obs::histogram("sched.queue_wait_s", 0.0, 7200.0, 72);
}

void Scheduler::update_depth_gauges() {
  tm_.queue_depth->set(static_cast<double>(queue_.size()));
  tm_.running->set(static_cast<double>(running_));
}

JobId Scheduler::submit(JobSpec spec) {
  const JobId id = next_id_++;
  Job job;
  job.id = id;
  job.spec = std::move(spec);
  job.state = JobState::kPending;
  job.submit_time = clock_.now();
  jobs_.emplace(id, std::move(job));
  queue_.push_back(id);
  tm_.submitted->inc();
  update_depth_gauges();
  return id;
}

Job& Scheduler::job_mut(JobId id) {
  auto it = jobs_.find(id);
  MUMMI_CHECK_MSG(it != jobs_.end(), "unknown job id");
  return it->second;
}

const Job& Scheduler::job(JobId id) const {
  auto it = jobs_.find(id);
  MUMMI_CHECK_MSG(it != jobs_.end(), "unknown job id");
  return it->second;
}

void Scheduler::start_job(Job& job, Allocation alloc) {
  graph_.allocate(alloc);
  job.alloc = std::move(alloc);
  job.state = JobState::kRunning;
  job.start_time = clock_.now();
  ++running_;
  tm_.started->inc();
  tm_.queue_wait_s->observe(job.start_time - job.submit_time);
  update_depth_gauges();
  for (const auto& fn : start_callbacks_) fn(job);
}

Scheduler::PumpResult Scheduler::pump_one() {
  PumpResult result;
  // Skip cancelled tombstones at the head.
  while (!queue_.empty() &&
         jobs_.at(queue_.front()).state != JobState::kPending)
    queue_.pop_front();
  if (queue_.empty()) return result;

  result.attempted = true;
  Job& head = job_mut(queue_.front());
  const std::uint64_t before = matcher_->visits();
  auto alloc = matcher_->match(graph_, head.spec.request);
  result.visits = matcher_->visits() - before;
  tm_.match_attempts->inc();
  tm_.match_visits->inc(result.visits);
  if (!alloc) return result;  // FCFS: head blocks; no backfilling
  queue_.pop_front();
  start_job(head, std::move(*alloc));
  result.started = head.id;
  return result;
}

std::vector<JobId> Scheduler::pump(std::size_t max_matches) {
  std::vector<JobId> started;
  for (std::size_t i = 0; i < max_matches; ++i) {
    const PumpResult r = pump_one();
    if (r.started == kInvalidJob) break;
    started.push_back(r.started);
  }
  return started;
}

void Scheduler::complete(JobId id, bool success) {
  Job& job = job_mut(id);
  MUMMI_CHECK_MSG(job.state == JobState::kRunning,
                  "complete() on non-running job");
  graph_.release(job.alloc);
  job.alloc = Allocation{};
  job.state = success ? JobState::kCompleted : JobState::kFailed;
  job.end_time = clock_.now();
  --running_;
  (success ? tm_.completed : tm_.failed)->inc();
  update_depth_gauges();
  for (const auto& fn : finish_callbacks_) fn(job);
}

bool Scheduler::cancel(JobId id) {
  Job& job = job_mut(id);
  if (job.state == JobState::kPending) {
    job.state = JobState::kCancelled;  // queue tombstone skipped in pump
    job.end_time = clock_.now();
    tm_.cancelled->inc();
    for (const auto& fn : finish_callbacks_) fn(job);
    return true;
  }
  if (job.state == JobState::kRunning) {
    graph_.release(job.alloc);
    job.alloc = Allocation{};
    job.state = JobState::kCancelled;
    job.end_time = clock_.now();
    --running_;
    tm_.cancelled->inc();
    update_depth_gauges();
    for (const auto& fn : finish_callbacks_) fn(job);
    return true;
  }
  return false;
}

std::vector<JobId> Scheduler::fail_node(int node) {
  // Drain first: resubmissions triggered by the finish callbacks below must
  // not be placed back onto the dead node.
  graph_.drain(node);
  std::vector<JobId> killed;
  for (const auto& [id, job] : jobs_) {
    if (job.state != JobState::kRunning) continue;
    for (const auto& slot : job.alloc.slots) {
      if (slot.node == node) {
        killed.push_back(id);
        break;
      }
    }
  }
  std::sort(killed.begin(), killed.end());
  for (const JobId id : killed) {
    job_mut(id).killed_by_node = true;  // before callbacks: attribution
    complete(id, /*success=*/false);
  }
  return killed;
}

std::vector<JobId> Scheduler::active_jobs() const {
  std::vector<JobId> out;
  for (const auto& [id, job] : jobs_)
    if (job.state == JobState::kPending || job.state == JobState::kRunning)
      out.push_back(id);
  return out;
}

std::unordered_map<std::string, int> Scheduler::running_by_type() const {
  std::unordered_map<std::string, int> out;
  for (const auto& [_, job] : jobs_)
    if (job.state == JobState::kRunning) ++out[job.spec.type];
  return out;
}

std::unordered_map<std::string, int> Scheduler::pending_by_type() const {
  std::unordered_map<std::string, int> out;
  for (const auto& [_, job] : jobs_)
    if (job.state == JobState::kPending) ++out[job.spec.type];
  return out;
}

}  // namespace mummi::sched
