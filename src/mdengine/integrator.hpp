// Time integrators.
#pragma once

#include <functional>

#include "mdengine/system.hpp"
#include "util/rng.hpp"

namespace mummi::md {

/// Computes forces into system.force (after the integrator zeroes them) and
/// returns potential energy.
using ForceFn = std::function<real(System&)>;

class Integrator {
 public:
  virtual ~Integrator() = default;
  /// Advances one step of length dt; returns the potential energy at the
  /// end-of-step configuration.
  virtual real step(System& system, const ForceFn& forces, real dt) = 0;
};

/// Plain velocity Verlet (NVE).
class VelocityVerlet final : public Integrator {
 public:
  real step(System& system, const ForceFn& forces, real dt) override;

 private:
  bool have_forces_ = false;
};

/// Langevin dynamics via the BAOAB splitting — the thermostatted workhorse
/// for CG/AA production runs (plays the role of ddcMD's Martini integrator).
class Langevin final : public Integrator {
 public:
  /// `temperature` in K, `gamma` friction in 1/ps.
  Langevin(real temperature, real gamma, util::Rng rng)
      : temperature_(temperature), gamma_(gamma), rng_(rng) {}

  real step(System& system, const ForceFn& forces, real dt) override;

  void set_temperature(real t) { temperature_ = t; }
  [[nodiscard]] real temperature() const { return temperature_; }

 private:
  real temperature_;
  real gamma_;
  util::Rng rng_;
  bool have_forces_ = false;
};

/// Steepest-descent energy minimization with adaptive step size (the
/// GROMACS-relaxation stand-in used by createsim and backmapping).
/// Returns the final potential energy; stops early when the maximum force
/// falls below `f_tol` (kJ/mol/nm).
real minimize(System& system, const ForceFn& forces, int max_steps,
              real initial_step = 0.01, real f_tol = 10.0);

}  // namespace mummi::md
