// Secondary-structure classification of protein backbones.
//
// The AA-to-CG feedback computes "the secondary structures of the proteins
// ... from AA frames" and refines the CG protein force-field parameters with
// the most common pattern (paper Sec. 4.1 item 7). The paper shells out to
// an external tool (~2 s per frame); we implement the classification
// directly: per-residue virtual C-alpha geometry (bend angle + torsion over
// i-1..i+2 windows) is matched against helix/sheet signatures, the standard
// backbone-geometry approach of DSSP-like methods.
#pragma once

#include <string>
#include <vector>

#include "mdengine/system.hpp"

namespace mummi::md {

enum class SecStruct : char {
  kHelix = 'H',
  kSheet = 'E',
  kCoil = 'C',
};

/// Classifies each residue of a backbone trace (positions of consecutive
/// C-alpha-like beads). Terminal residues (first and last two) are coil.
[[nodiscard]] std::vector<SecStruct> classify_backbone(
    const System& system, const std::vector<int>& backbone);

/// Renders as "HHHEEC..." strings (the per-frame pattern feedback votes on).
[[nodiscard]] std::string to_pattern(const std::vector<SecStruct>& ss);
[[nodiscard]] std::vector<SecStruct> from_pattern(const std::string& pattern);

/// Per-position majority vote over many patterns of equal length — the
/// "most common pattern of protein secondary structure observed in the AA
/// simulations".
[[nodiscard]] std::string consensus_pattern(
    const std::vector<std::string>& patterns);

}  // namespace mummi::md
