// Deterministic block-parallel helpers for the MD hot path.
//
// Every parallel loop in the force engine runs through these helpers with
// block boundaries that are a function of the problem size ONLY — never the
// worker count — and every floating-point reduction folds per-block partials
// in fixed (ascending-block) order. A serial run, a 2-thread pool and an
// 8-thread pool therefore produce bit-identical forces, energies and
// trajectories: the same discipline the selection layer adopted for rank
// folds (DESIGN.md 4d), applied to force scatter.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "mdengine/types.hpp"
#include "util/thread_pool.hpp"

namespace mummi::md::detail {

/// Block size for a kernel over `n` items: ~16 blocks for large inputs
/// (enough slack for an 8-worker pool to balance), never below 512 items so
/// small systems do not pay fan-out overhead. Depends on n only.
inline std::size_t kernel_block(std::size_t n) {
  return std::max<std::size_t>(512, (n + 15) / 16);
}

/// Number of blocks kernel_block(n) yields over [0, n).
inline std::size_t kernel_blocks(std::size_t n) {
  if (n == 0) return 0;
  const std::size_t block = kernel_block(n);
  return (n + block - 1) / block;
}

/// Runs fn(begin, end) over [0, n) in blocks of `block`: serial in ascending
/// block order when pool is null, pool->parallel_for_blocks otherwise. The
/// block boundaries are identical either way, so any fn that only touches
/// state owned by its block is thread-count independent by construction.
void for_blocks(util::ThreadPool* pool, std::size_t n, std::size_t block,
                const std::function<void(std::size_t, std::size_t)>& fn);

/// Per-block force accumulators with a fixed-order reduction.
///
/// Writers: block b scatters freely into force(b) (size n, zeroed on entry)
/// and stores its energy partial into a unique slot. reduce_and_clear folds
/// the buffers into the output array per particle in ascending block order —
/// bit-identical for any worker count — and re-zeroes them on the way out,
/// so the next reset() on the same shape skips the O(nblocks * n) clear.
/// Buffers persist across calls (the engine keeps one instance per thread);
/// steady-state cost is the reduction pass, not allocation.
class ForceScratch {
 public:
  /// Ensures `nblocks` zeroed force buffers of size n and `nslots` zeroed
  /// energy slots.
  void reset(std::size_t nblocks, std::size_t n, std::size_t nslots);

  [[nodiscard]] Vec3* force(std::size_t b) { return force_[b].data(); }
  [[nodiscard]] real& energy(std::size_t slot) { return energy_[slot]; }

  /// out[i] += sum over blocks (ascending) of force(b)[i]; zeroes buffers.
  void reduce_and_clear(std::vector<Vec3>& out, util::ThreadPool* pool);

  /// Energy partials summed in ascending slot order.
  [[nodiscard]] real energy_sum() const;

 private:
  std::size_t nblocks_ = 0;
  std::size_t n_ = 0;
  bool dirty_ = false;  // writes pending that reduce_and_clear has not folded
  std::vector<std::vector<Vec3>> force_;
  std::vector<real> energy_;
};

}  // namespace mummi::md::detail
