#include "mdengine/simulation.hpp"

#include <cstdlib>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace mummi::md {

util::ThreadPool* default_md_pool() { return util::env_shared_pool(); }

Simulation::Simulation(System system, std::shared_ptr<const ForceField> ff,
                       std::unique_ptr<Integrator> integrator,
                       SimulationConfig config)
    : system_(std::move(system)),
      ff_(std::move(ff)),
      integrator_(std::move(integrator)),
      config_(config),
      pool_(config.pool != nullptr ? config.pool : default_md_pool()),
      neighbors_(ff_->cutoff(), config.skin) {
  MUMMI_CHECK(ff_ != nullptr && integrator_ != nullptr);
  if (config_.checkpoint_interval > 0)
    MUMMI_CHECK_MSG(!config_.checkpoint_path.empty(),
                    "checkpointing enabled without a path");
}

void Simulation::set_restraints(Restraints restraints) {
  restraints_ = std::move(restraints);
  have_restraints_ = true;
}

void Simulation::clear_restraints() {
  restraints_ = Restraints{};
  have_restraints_ = false;
}

ForceFn Simulation::force_fn() {
  return [this](System& s) {
    ensure_neighbors();
    real pe = ff_->compute(s, neighbors_, pool_);
    pe += compute_bonded(s, pool_);
    if (have_restraints_) pe += restraints_.compute(s);
    return pe;
  };
}

void Simulation::ensure_neighbors() {
  if (neighbors_.needs_rebuild(system_, pool_)) {
    neighbors_.build(system_, pool_);
    ++rebuilds_;
  }
}

void Simulation::run(long nsteps) {
  const ForceFn forces = force_fn();
  for (long n = 0; n < nsteps; ++n) {
    last_pe_ = integrator_->step(system_, forces, config_.dt);
    ++step_;
    if (config_.frame_interval > 0 && step_ % config_.frame_interval == 0 &&
        frame_fn_)
      frame_fn_(system_, step_, last_pe_);
    if (config_.checkpoint_interval > 0 &&
        step_ % config_.checkpoint_interval == 0)
      checkpoint();
  }
}

real Simulation::minimize_energy(int max_steps, real f_tol) {
  last_pe_ = minimize(system_, force_fn(), max_steps, 0.01, f_tol);
  return last_pe_;
}

void Simulation::checkpoint() const {
  MUMMI_CHECK_MSG(!config_.checkpoint_path.empty(), "no checkpoint path");
  util::ByteWriter w;
  w.i64(step_);
  w.f64(last_pe_);
  w.bytes(system_.serialize());
  util::CheckpointFile(config_.checkpoint_path).save(w.data());
}

bool Simulation::restore() {
  MUMMI_CHECK_MSG(!config_.checkpoint_path.empty(), "no checkpoint path");
  auto payload = util::CheckpointFile(config_.checkpoint_path).load();
  if (!payload) return false;
  util::ByteReader r(*payload);
  step_ = r.i64();
  last_pe_ = r.f64();
  system_ = System::deserialize(r.bytes());
  return true;
}

}  // namespace mummi::md
