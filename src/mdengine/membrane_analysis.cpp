#include "mdengine/membrane_analysis.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mummi::md {

std::vector<double> z_density_profile(const System& system,
                                      const std::vector<int>& selection,
                                      std::size_t bins) {
  MUMMI_CHECK_MSG(bins > 0, "need at least one bin");
  std::vector<double> profile(bins, 0.0);
  const real lz = system.box.length.z;
  for (int i : selection) {
    const real z = system.box.wrap(system.pos[static_cast<std::size_t>(i)]).z;
    auto b = static_cast<std::size_t>(z / lz * static_cast<real>(bins));
    if (b >= bins) b = bins - 1;
    profile[b] += 1.0;
  }
  const double slab_volume =
      system.box.length.x * system.box.length.y * (lz / static_cast<real>(bins));
  for (auto& v : profile) v /= slab_volume;
  return profile;
}

double order_parameter(const System& system,
                       const std::vector<std::pair<int, int>>& vectors) {
  MUMMI_CHECK_MSG(!vectors.empty(), "no vectors for order parameter");
  double acc = 0;
  for (const auto& [a, b] : vectors) {
    const Vec3 d = system.box.min_image(system.pos[static_cast<std::size_t>(b)],
                                        system.pos[static_cast<std::size_t>(a)]);
    const real n = d.norm();
    if (n == 0) continue;
    const double cos_t = d.z / n;
    acc += 0.5 * (3.0 * cos_t * cos_t - 1.0);
  }
  return acc / static_cast<double>(vectors.size());
}

Vec3 center_of_mass(const System& system, const std::vector<int>& selection) {
  MUMMI_CHECK_MSG(!selection.empty(), "empty selection");
  Vec3 sum{};
  real mass = 0;
  for (int i : selection) {
    const auto idx = static_cast<std::size_t>(i);
    sum += system.mass[idx] * system.pos[idx];
    mass += system.mass[idx];
  }
  return (1.0 / mass) * sum;
}

real bilayer_thickness(const System& system,
                       const std::vector<int>& inner_heads,
                       const std::vector<int>& outer_heads) {
  const Vec3 inner = center_of_mass(system, inner_heads);
  const Vec3 outer = center_of_mass(system, outer_heads);
  return std::abs(outer.z - inner.z);
}

}  // namespace mummi::md
