#include "mdengine/secondary_structure.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/error.hpp"

namespace mummi::md {

namespace {
/// Virtual torsion over four consecutive positions (degrees, [-180, 180]).
real torsion(const Box& box, const Vec3& p0, const Vec3& p1, const Vec3& p2,
             const Vec3& p3) {
  const Vec3 b1 = box.min_image(p1, p0);
  const Vec3 b2 = box.min_image(p2, p1);
  const Vec3 b3 = box.min_image(p3, p2);
  const Vec3 n1 = b1.cross(b2);
  const Vec3 n2 = b2.cross(b3);
  const Vec3 m = n1.cross((1 / std::max(b2.norm(), static_cast<real>(1e-12))) * b2);
  const real x = n1.dot(n2);
  const real y = m.dot(n2);
  return std::atan2(y, x) * 180.0 / M_PI;
}

/// Bend angle at p1 over three consecutive positions (degrees).
real bend(const Box& box, const Vec3& p0, const Vec3& p1, const Vec3& p2) {
  const Vec3 a = box.min_image(p0, p1);
  const Vec3 b = box.min_image(p2, p1);
  const real c = std::clamp(a.dot(b) / (a.norm() * b.norm() + 1e-12),
                            static_cast<real>(-1), static_cast<real>(1));
  return std::acos(c) * 180.0 / M_PI;
}
}  // namespace

std::vector<SecStruct> classify_backbone(const System& system,
                                         const std::vector<int>& backbone) {
  const std::size_t n = backbone.size();
  std::vector<SecStruct> out(n, SecStruct::kCoil);
  if (n < 4) return out;
  for (std::size_t i = 1; i + 2 < n; ++i) {
    const Vec3& p0 = system.pos[backbone[i - 1]];
    const Vec3& p1 = system.pos[backbone[i]];
    const Vec3& p2 = system.pos[backbone[i + 1]];
    const Vec3& p3 = system.pos[backbone[i + 2]];
    const real tors = torsion(system.box, p0, p1, p2, p3);
    const real angle = bend(system.box, p0, p1, p2);
    // C-alpha-geometry signatures: an alpha helix has a tight bend
    // (~85-105 deg) and ~50 deg pseudo-torsion magnitude (sign depends on
    // handedness, which coarse traces do not reliably preserve); a beta
    // strand is extended (bend well above 115 deg) with near-trans torsion.
    const real abs_tors = std::abs(tors);
    if (angle > 75 && angle < 110 && abs_tors > 25 && abs_tors < 80)
      out[i] = SecStruct::kHelix;
    else if (angle > 115 && abs_tors > 140)
      out[i] = SecStruct::kSheet;
  }
  // Smooth out singleton assignments: H/E segments must be >= 2 residues.
  for (std::size_t i = 1; i + 1 < n; ++i)
    if (out[i] != SecStruct::kCoil && out[i - 1] != out[i] &&
        out[i + 1] != out[i])
      out[i] = SecStruct::kCoil;
  return out;
}

std::string to_pattern(const std::vector<SecStruct>& ss) {
  std::string out(ss.size(), 'C');
  for (std::size_t i = 0; i < ss.size(); ++i)
    out[i] = static_cast<char>(ss[i]);
  return out;
}

std::vector<SecStruct> from_pattern(const std::string& pattern) {
  std::vector<SecStruct> out;
  out.reserve(pattern.size());
  for (char c : pattern) {
    MUMMI_CHECK_MSG(c == 'H' || c == 'E' || c == 'C',
                    "invalid secondary-structure code");
    out.push_back(static_cast<SecStruct>(c));
  }
  return out;
}

std::string consensus_pattern(const std::vector<std::string>& patterns) {
  MUMMI_CHECK_MSG(!patterns.empty(), "no patterns to vote on");
  const std::size_t len = patterns.front().size();
  for (const auto& p : patterns)
    MUMMI_CHECK_MSG(p.size() == len, "pattern length mismatch");
  std::string out(len, 'C');
  for (std::size_t i = 0; i < len; ++i) {
    std::array<int, 3> votes{};  // H, E, C
    for (const auto& p : patterns) {
      if (p[i] == 'H') ++votes[0];
      else if (p[i] == 'E') ++votes[1];
      else ++votes[2];
    }
    const auto best = static_cast<std::size_t>(
        std::max_element(votes.begin(), votes.end()) - votes.begin());
    out[i] = best == 0 ? 'H' : best == 1 ? 'E' : 'C';
  }
  return out;
}

}  // namespace mummi::md
