// Radial distribution functions.
//
// The CG in-situ analysis computes protein-lipid RDFs each frame; the
// CG-to-continuum feedback aggregates them and updates the continuum model's
// interaction parameters (paper Sec. 4.1 items 3 and 7).
#pragma once

#include <vector>

#include "mdengine/system.hpp"

namespace mummi::md {

/// Accumulating g(r) estimator between two particle selections.
class RdfAccumulator {
 public:
  /// Histogram of `nbins` bins over [0, r_max) nm.
  RdfAccumulator(real r_max, std::size_t nbins);

  /// Adds one frame's contribution for pairs (a in sel_a, b in sel_b, a!=b).
  void add_frame(const System& system, const std::vector<int>& sel_a,
                 const std::vector<int>& sel_b);

  /// Normalized g(r) (ideal-gas reference), averaged over added frames.
  [[nodiscard]] std::vector<real> g() const;

  /// Raw bin counts (what feedback ships around as small arrays).
  [[nodiscard]] const std::vector<double>& counts() const { return counts_; }
  [[nodiscard]] std::size_t frames() const { return frames_; }
  [[nodiscard]] real r_max() const { return r_max_; }
  [[nodiscard]] std::size_t nbins() const { return counts_.size(); }

  /// Bin centers (nm).
  [[nodiscard]] std::vector<real> centers() const;

  /// Merges another accumulator with identical binning — the feedback
  /// aggregation step ("vectorized additions of small Numpy arrays").
  void merge(const RdfAccumulator& other);

  /// Restores raw state (deserialization support).
  void restore_raw(std::vector<double> counts, std::size_t frames,
                   double pair_density_sum);
  [[nodiscard]] double pair_density_sum() const { return pair_density_sum_; }

 private:
  real r_max_;
  std::vector<double> counts_;
  std::size_t frames_ = 0;
  double pair_density_sum_ = 0;  // (Na*Nb - overlap) / V summed over frames
};

}  // namespace mummi::md
