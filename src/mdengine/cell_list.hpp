// Linked-cell binning and Verlet neighbor lists, flat-memory edition.
//
// Standard O(N) pair-search machinery with a layout built for the parallel
// force kernel: particles are binned into a CSR cell table (per-cell ranges
// over one flat item array, ascending particle id within each cell), and the
// Verlet list is a CSR half list — per-particle neighbor ranges over one
// flat j array, each row sorted ascending. Row contents are a pure function
// of the system, so builds parallelize over particle blocks without changing
// a single bit of the result. A skin buffer lets the list survive several
// steps between rebuilds; all storage is reused across rebuilds.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "mdengine/system.hpp"

namespace mummi::util {
class ThreadPool;
}  // namespace mummi::util

namespace mummi::md {

class CellList {
 public:
  /// Bins all particles; `range` is the minimum cell edge (cutoff + skin).
  /// Cell assignment is computed per particle in parallel blocks (pure
  /// per-i work); the CSR fill is a short serial pass so items stay in
  /// ascending id order regardless of worker count.
  void build(const System& system, real range,
             util::ThreadPool* pool = nullptr);

  [[nodiscard]] int n_cells() const { return nx_ * ny_ * nz_; }

  /// True when every dimension has >= 3 cells, i.e. the 27-cell stencil
  /// visits each neighboring cell exactly once. Callers must fall back to
  /// all-pairs otherwise (periodic wrap-around would double-count cells).
  [[nodiscard]] bool stencil_ok() const {
    return nx_ >= 3 && ny_ >= 3 && nz_ >= 3;
  }

  [[nodiscard]] int cell_of(std::size_t i) const { return cell_of_[i]; }

  /// CSR ranges: cell c holds items()[cell_start()[c] .. cell_start()[c+1]).
  [[nodiscard]] const std::vector<int>& cell_start() const {
    return cell_start_;
  }
  [[nodiscard]] const std::vector<int>& items() const { return items_; }

  /// Writes the 27 wrapped stencil cells of `c` (self included) in a fixed
  /// order; returns the count. Only valid when stencil_ok().
  int neighbor_cells(int c, int out[27]) const;

 private:
  static int wrap(int c, int n) { return (c % n + n) % n; }
  [[nodiscard]] int cell_index(int cx, int cy, int cz) const {
    return (cz * ny_ + cy) * nx_ + cx;
  }

  int nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<int> cell_of_;     // particle -> cell
  std::vector<int> cell_start_;  // n_cells + 1
  std::vector<int> items_;       // particle ids, ascending within each cell
  std::vector<int> cursor_;      // fill cursors, reused across builds
};

/// Half (i<j) Verlet list in CSR form: row i spans
/// [row_start()[i], row_start()[i+1]) of neighbors(), each row sorted
/// ascending — a canonical order independent of cell geometry and worker
/// count. Tracks displacement since the last build to decide when a rebuild
/// is due. Row scratch, the flat j array and reference positions are all
/// reused across rebuilds (no steady-state allocation).
class NeighborList {
 public:
  NeighborList(real cutoff, real skin) : cutoff_(cutoff), skin_(skin) {}

  /// Rebuilds from scratch; parallel over particle blocks when a pool is
  /// given, bit-identical to the serial build either way.
  void build(const System& system, util::ThreadPool* pool = nullptr);

  /// True when any particle moved more than skin/2 since the last build
  /// (or the list was never built). The displacement scan runs in parallel
  /// blocks when a pool is given.
  [[nodiscard]] bool needs_rebuild(const System& system,
                                   util::ThreadPool* pool = nullptr) const;

  /// CSR accessors: row i of neighbors() holds every j > i within
  /// cutoff + skin of particle i, sorted ascending.
  [[nodiscard]] const std::vector<std::size_t>& row_start() const {
    return row_start_;
  }
  [[nodiscard]] const std::vector<int>& neighbors() const { return nbr_; }
  [[nodiscard]] std::size_t n_pairs() const { return nbr_.size(); }
  [[nodiscard]] std::size_t rebuilds() const { return rebuilds_; }

  /// Fill statistics of the current list, for telemetry and tuning.
  struct FillStats {
    std::size_t rebuilds = 0;   // lifetime builds of this list
    std::size_t pairs = 0;      // half pairs in the current list
    std::size_t cells = 0;      // cells at the last build
    std::size_t max_row = 0;    // longest neighbor row
    double avg_row = 0;         // pairs / rows
  };
  [[nodiscard]] FillStats fill_stats() const;

  /// Compatibility view: the rows flattened to (i, j) pairs in canonical
  /// order (i ascending, j ascending within i). Materialized lazily and
  /// cached until the next build; intended for tests, reference kernels and
  /// tools, not the hot path. Not safe to call concurrently with itself.
  [[nodiscard]] const std::vector<std::pair<int, int>>& pairs() const;

  [[nodiscard]] real cutoff() const { return cutoff_; }

 private:
  real cutoff_;
  real skin_;
  CellList cells_;
  std::vector<std::size_t> row_start_;
  std::vector<int> nbr_;
  std::vector<std::vector<int>> scratch_;  // per-block rows, capacity reused
  std::vector<Vec3> ref_pos_;
  std::size_t rebuilds_ = 0;
  mutable std::vector<std::pair<int, int>> pairs_compat_;
  mutable bool pairs_valid_ = false;
};

}  // namespace mummi::md
