// Linked-cell binning and Verlet neighbor lists.
//
// Standard O(N) pair-search machinery: particles are binned into cells of at
// least the interaction range, candidate pairs come from a forward half
// stencil so each cell pair is visited once, and a skin buffer lets the
// Verlet list survive several steps between rebuilds.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "mdengine/system.hpp"

namespace mummi::md {

class CellList {
 public:
  /// Bins all particles; `range` is the minimum cell edge (cutoff + skin).
  void build(const System& system, real range);

  [[nodiscard]] int n_cells() const { return nx_ * ny_ * nz_; }

  /// Visits a superset of all unordered particle pairs within `range`;
  /// `fn(i, j)` is called with i < j, each pair exactly once. Falls back to
  /// all-pairs when the box is too small for a 3x3x3 stencil (periodic
  /// wrap-around would double-count cells there).
  template <typename Fn>
  void for_each_pair(Fn&& fn) const {
    const int n = static_cast<int>(next_.size());
    if (nx_ < 3 || ny_ < 3 || nz_ < 3) {
      for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j) fn(i, j);
      return;
    }
    for (int cz = 0; cz < nz_; ++cz)
      for (int cy = 0; cy < ny_; ++cy)
        for (int cx = 0; cx < nx_; ++cx) {
          const int c = cell_index(cx, cy, cz);
          for (int i = head_[c]; i >= 0; i = next_[i])
            for (int j = next_[i]; j >= 0; j = next_[j])
              fn(i < j ? i : j, i < j ? j : i);
          for (const auto& offset : kForwardStencil) {
            const int nc =
                cell_index(wrap(cx + offset[0], nx_), wrap(cy + offset[1], ny_),
                           wrap(cz + offset[2], nz_));
            for (int i = head_[c]; i >= 0; i = next_[i])
              for (int j = head_[nc]; j >= 0; j = next_[j])
                fn(i < j ? i : j, i < j ? j : i);
          }
        }
  }

 private:
  static int wrap(int c, int n) { return (c % n + n) % n; }
  [[nodiscard]] int cell_index(int cx, int cy, int cz) const {
    return (cz * ny_ + cy) * nx_ + cx;
  }

  static constexpr int kForwardStencil[13][3] = {
      {1, 0, 0},  {0, 1, 0},  {1, 1, 0},  {-1, 1, 0}, {0, 0, 1},
      {1, 0, 1},  {-1, 0, 1}, {0, 1, 1},  {1, 1, 1},  {-1, 1, 1},
      {0, -1, 1}, {1, -1, 1}, {-1, -1, 1}};

  int nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<int> head_;
  std::vector<int> next_;
};

/// Half (i<j) Verlet pair list with a skin; tracks displacement since the
/// last build to decide when a rebuild is due.
class NeighborList {
 public:
  NeighborList(real cutoff, real skin) : cutoff_(cutoff), skin_(skin) {}

  /// Rebuilds from scratch.
  void build(const System& system);

  /// True when any particle moved more than skin/2 since the last build
  /// (or the list was never built).
  [[nodiscard]] bool needs_rebuild(const System& system) const;

  [[nodiscard]] const std::vector<std::pair<int, int>>& pairs() const {
    return pairs_;
  }
  [[nodiscard]] real cutoff() const { return cutoff_; }

 private:
  real cutoff_;
  real skin_;
  CellList cells_;
  std::vector<std::pair<int, int>> pairs_;
  std::vector<Vec3> ref_pos_;
};

}  // namespace mummi::md
