#include "mdengine/force_field.hpp"

#include <algorithm>
#include <cmath>

#include "mdengine/parallel_kernels.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace mummi::md {

namespace {
/// Coulomb prefactor in kJ mol^-1 nm e^-2 (1/(4 pi eps0)).
constexpr real kCoulomb = 138.935458;
}  // namespace

TypeMatrixForceField::TypeMatrixForceField(int n_types, real cutoff)
    : n_types_(n_types), cutoff_(cutoff), coul_pre_(kCoulomb / eps_r_) {
  MUMMI_CHECK_MSG(n_types > 0, "need at least one particle type");
  MUMMI_CHECK_MSG(cutoff > 0, "cutoff must be positive");
  const auto cells = static_cast<std::size_t>(n_types) *
                     static_cast<std::size_t>(n_types);
  table_.resize(cells);
  c12_.assign(cells, 0);
  c6_.assign(cells, 0);
  shift_.assign(cells, 0);
  f12_.assign(cells, 0);
  f6_.assign(cells, 0);
}

std::size_t TypeMatrixForceField::index(int a, int b) const {
  MUMMI_CHECK_MSG(a >= 0 && a < n_types_ && b >= 0 && b < n_types_,
                  "type index out of range");
  return static_cast<std::size_t>(a) * static_cast<std::size_t>(n_types_) +
         static_cast<std::size_t>(b);
}

void TypeMatrixForceField::set_pair(int a, int b, PairParams params) {
  const real s2 = params.sigma * params.sigma;
  const real s6 = s2 * s2 * s2;
  const real c6 = 4 * params.epsilon * s6;
  const real c12 = c6 * s6;
  const real irc2 = 1 / (cutoff_ * cutoff_);
  const real irc6 = irc2 * irc2 * irc2;
  // Same factorization the kernel uses, so V(cutoff) cancels to ~epsilon.
  const real shift = (c12 * irc6 - c6) * irc6;
  for (const std::size_t t : {index(a, b), index(b, a)}) {
    table_[t] = params;
    c12_[t] = c12;
    c6_[t] = c6;
    shift_[t] = shift;
    f12_[t] = 12 * c12;
    f6_[t] = 6 * c6;
  }
}

PairParams TypeMatrixForceField::pair(int a, int b) const {
  return table_[index(a, b)];
}

void TypeMatrixForceField::set_dielectric(real eps_r) {
  MUMMI_CHECK_MSG(eps_r > 0, "relative dielectric must be positive");
  eps_r_ = eps_r;
  coul_pre_ = kCoulomb / eps_r;
}

real TypeMatrixForceField::compute(System& system,
                                   const NeighborList& neighbors,
                                   util::ThreadPool* pool) const {
  const std::size_t n = system.size();
  if (n == 0) return 0;
  MUMMI_CHECK_MSG(neighbors.row_start().size() == n + 1,
                  "neighbor list was built for a different system");

  // Validate the whole type array once per call (the old kernel
  // bounds-checked every pair); the inner loop indexes unchecked, with a
  // debug-only assert to catch types mutated mid-step.
  const int* type = system.type.data();
  {
    const auto nt = static_cast<unsigned>(n_types_);
    bool ok = true;
    for (std::size_t i = 0; i < n; ++i)
      ok &= static_cast<unsigned>(type[i]) < nt;
    MUMMI_CHECK_MSG(ok, "system.type contains an out-of-range species index");
  }

  const auto& row_start = neighbors.row_start();
  const int* nbr = neighbors.neighbors().data();
  const real rc2 = cutoff_ * cutoff_;
  const real inv_rc = 1 / cutoff_;
  const real pre = coul_pre_;
  const Box box = system.box;
  const Vec3* pos = system.pos.data();
  const real* charge = system.charge.data();
  const real* c12t = c12_.data();
  const real* c6t = c6_.data();
  const real* shiftt = shift_.data();
  const real* f12t = f12_.data();
  const real* f6t = f6_.data();
  const auto ntypes = static_cast<std::size_t>(n_types_);

  const std::size_t block = detail::kernel_block(n);
  const std::size_t nblocks = detail::kernel_blocks(n);
  // One scratch per *calling* thread, bound through a local reference so the
  // block lambda captures this thread's instance — pool workers referencing
  // the thread_local directly would each see their own (empty) scratch.
  static thread_local detail::ForceScratch scratch_tls;
  detail::ForceScratch& scratch = scratch_tls;
  scratch.reset(nblocks, n, nblocks);

  detail::for_blocks(pool, n, block, [&](std::size_t begin, std::size_t end) {
    const std::size_t b = begin / block;
    Vec3* f = scratch.force(b);
    real energy = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const Vec3 pi = pos[i];
      const real qi = charge[i];
      const std::size_t base = static_cast<std::size_t>(type[i]) * ntypes;
      Vec3 fi{};
      for (std::size_t k = row_start[i]; k < row_start[i + 1]; ++k) {
        const auto j = static_cast<std::size_t>(nbr[k]);
        MUMMI_DEBUG_ASSERT(static_cast<unsigned>(type[j]) <
                               static_cast<unsigned>(n_types_),
                           "type index out of range");
        const Vec3 d = box.min_image(pi, pos[j]);
        const real r2 = d.norm2();
        if (r2 >= rc2 || r2 == 0) continue;
        const std::size_t t = base + static_cast<std::size_t>(type[j]);
        real f_over_r = 0;

        const real c12 = c12t[t];
        if (c12 != 0) {
          const real ir2 = 1 / r2;
          const real ir6 = ir2 * ir2 * ir2;
          energy += (c12 * ir6 - c6t[t]) * ir6 - shiftt[t];
          f_over_r += (f12t[t] * ir6 - f6t[t]) * ir6 * ir2;
        }

        const real qq = qi * charge[j];
        if (qq != 0) {
          const real r = std::sqrt(r2);
          energy += pre * qq * (1 / r - inv_rc);
          f_over_r += pre * qq / (r2 * r);
        }

        const Vec3 fv = f_over_r * d;
        fi += fv;
        f[j] -= fv;
      }
      f[i] += fi;
    }
    scratch.energy(b) = energy;
  });

  scratch.reduce_and_clear(system.force, pool);
  static obs::Counter& pair_counter = obs::counter("md.force.pairs");
  pair_counter.inc(neighbors.n_pairs());
  return scratch.energy_sum();
}

real compute_bonded(System& system, util::ThreadPool* pool) {
  const std::size_t nbonds = system.bonds.size();
  const std::size_t nangles = system.angles.size();
  if (nbonds + nangles == 0) return 0;
  const std::size_t n = system.size();
  const std::size_t bond_block = detail::kernel_block(nbonds);
  const std::size_t nb_bonds = detail::kernel_blocks(nbonds);
  const std::size_t angle_block = detail::kernel_block(nangles);
  const std::size_t nb_angles = detail::kernel_blocks(nangles);

  static thread_local detail::ForceScratch scratch_tls;
  detail::ForceScratch& scratch = scratch_tls;  // see compute(): capture the
                                                // caller's instance, not the
                                                // workers' thread_locals
  scratch.reset(std::max(nb_bonds, nb_angles), n, nb_bonds + nb_angles);
  const Box box = system.box;
  const Vec3* pos = system.pos.data();

  // Bond blocks, then angle blocks on top of the same buffers (the passes
  // are separated by a join, and block b always lands in buffer b) — one
  // fixed-order reduction covers both terms.
  detail::for_blocks(
      pool, nbonds, bond_block, [&](std::size_t begin, std::size_t end) {
        const std::size_t b = begin / bond_block;
        Vec3* f = scratch.force(b);
        real energy = 0;
        for (std::size_t k = begin; k < end; ++k) {
          const Bond& bond = system.bonds[k];
          const Vec3 d = box.min_image(pos[bond.i], pos[bond.j]);
          const real r = d.norm();
          if (r == 0) continue;
          const real dr = r - bond.r0;
          energy += 0.5 * bond.k * dr * dr;
          const Vec3 fv = (-bond.k * dr / r) * d;
          f[bond.i] += fv;
          f[bond.j] -= fv;
        }
        scratch.energy(b) = energy;
      });

  detail::for_blocks(
      pool, nangles, angle_block, [&](std::size_t begin, std::size_t end) {
        const std::size_t b = begin / angle_block;
        Vec3* f = scratch.force(b);
        real energy = 0;
        for (std::size_t k = begin; k < end; ++k) {
          const Angle& angle = system.angles[k];
          const Vec3 rij = box.min_image(pos[angle.i], pos[angle.j]);
          const Vec3 rkj = box.min_image(pos[angle.k], pos[angle.j]);
          const real nij = rij.norm();
          const real nkj = rkj.norm();
          if (nij == 0 || nkj == 0) continue;
          real cos_t = rij.dot(rkj) / (nij * nkj);
          cos_t = std::clamp(cos_t, static_cast<real>(-1),
                             static_cast<real>(1));
          const real theta = std::acos(cos_t);
          const real dtheta = theta - angle.theta0;
          energy += 0.5 * angle.ktheta * dtheta * dtheta;
          // force_i = -dV/dtheta * dtheta/dr_i; dtheta/dcos = -1/sin(theta),
          // so the two minus signs cancel. Guard sin ~ 0 at collinear
          // geometries.
          const real sin_t = std::sqrt(
              std::max(static_cast<real>(1e-12), 1 - cos_t * cos_t));
          const real coeff = angle.ktheta * dtheta / sin_t;
          const Vec3 di =
              (1 / nij) * ((1 / nkj) * rkj - (cos_t / nij) * rij);
          const Vec3 dk =
              (1 / nkj) * ((1 / nij) * rij - (cos_t / nkj) * rkj);
          f[angle.i] += coeff * di;
          f[angle.k] += coeff * dk;
          f[angle.j] -= coeff * (di + dk);
        }
        scratch.energy(nb_bonds + b) = energy;
      });

  scratch.reduce_and_clear(system.force, pool);
  return scratch.energy_sum();
}

real Restraints::compute(System& system) const {
  MUMMI_CHECK(indices.size() == references.size());
  real energy = 0;
  for (std::size_t n = 0; n < indices.size(); ++n) {
    const int i = indices[n];
    const Vec3 d = system.box.min_image(system.pos[i], references[n]);
    energy += 0.5 * k * d.norm2();
    system.force[i] -= k * d;
  }
  return energy;
}

}  // namespace mummi::md
