#include "mdengine/force_field.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mummi::md {

namespace {
/// Coulomb prefactor in kJ mol^-1 nm e^-2 (1/(4 pi eps0)).
constexpr real kCoulomb = 138.935458;
}  // namespace

TypeMatrixForceField::TypeMatrixForceField(int n_types, real cutoff)
    : n_types_(n_types), cutoff_(cutoff) {
  MUMMI_CHECK_MSG(n_types > 0, "need at least one particle type");
  MUMMI_CHECK_MSG(cutoff > 0, "cutoff must be positive");
  table_.resize(static_cast<std::size_t>(n_types) *
                static_cast<std::size_t>(n_types));
}

std::size_t TypeMatrixForceField::index(int a, int b) const {
  MUMMI_CHECK_MSG(a >= 0 && a < n_types_ && b >= 0 && b < n_types_,
                  "type index out of range");
  return static_cast<std::size_t>(a) * static_cast<std::size_t>(n_types_) +
         static_cast<std::size_t>(b);
}

void TypeMatrixForceField::set_pair(int a, int b, PairParams params) {
  table_[index(a, b)] = params;
  table_[index(b, a)] = params;
}

PairParams TypeMatrixForceField::pair(int a, int b) const {
  return table_[index(a, b)];
}

real TypeMatrixForceField::compute(System& system,
                                   const NeighborList& neighbors) const {
  const real rc2 = cutoff_ * cutoff_;
  real energy = 0;
  for (const auto& [i, j] : neighbors.pairs()) {
    const Vec3 d = system.box.min_image(system.pos[i], system.pos[j]);
    const real r2 = d.norm2();
    if (r2 >= rc2 || r2 == 0) continue;
    const PairParams& p = table_[index(system.type[i], system.type[j])];
    real f_over_r = 0;

    if (p.epsilon > 0) {
      const real s2 = p.sigma * p.sigma / r2;
      const real s6 = s2 * s2 * s2;
      const real s12 = s6 * s6;
      // Energy-shifted LJ: V(r) - V(rc).
      const real sc2 = p.sigma * p.sigma / rc2;
      const real sc6 = sc2 * sc2 * sc2;
      const real shift = 4 * p.epsilon * (sc6 * sc6 - sc6);
      energy += 4 * p.epsilon * (s12 - s6) - shift;
      f_over_r += 24 * p.epsilon * (2 * s12 - s6) / r2;
    }

    const real qq = system.charge[i] * system.charge[j];
    if (qq != 0) {
      const real r = std::sqrt(r2);
      const real pre = kCoulomb / eps_r_;
      // Straight-cutoff Coulomb shifted to zero at rc.
      energy += pre * qq * (1 / r - 1 / cutoff_);
      f_over_r += pre * qq / (r2 * r);
    }

    const Vec3 f = f_over_r * d;
    system.force[i] += f;
    system.force[j] -= f;
  }
  return energy;
}

real compute_bonded(System& system) {
  real energy = 0;
  for (const auto& bond : system.bonds) {
    const Vec3 d = system.box.min_image(system.pos[bond.i], system.pos[bond.j]);
    const real r = d.norm();
    if (r == 0) continue;
    const real dr = r - bond.r0;
    energy += 0.5 * bond.k * dr * dr;
    const Vec3 f = (-bond.k * dr / r) * d;
    system.force[bond.i] += f;
    system.force[bond.j] -= f;
  }
  for (const auto& angle : system.angles) {
    const Vec3 rij = system.box.min_image(system.pos[angle.i], system.pos[angle.j]);
    const Vec3 rkj = system.box.min_image(system.pos[angle.k], system.pos[angle.j]);
    const real nij = rij.norm();
    const real nkj = rkj.norm();
    if (nij == 0 || nkj == 0) continue;
    real cos_t = rij.dot(rkj) / (nij * nkj);
    cos_t = std::clamp(cos_t, static_cast<real>(-1), static_cast<real>(1));
    const real theta = std::acos(cos_t);
    const real dtheta = theta - angle.theta0;
    energy += 0.5 * angle.ktheta * dtheta * dtheta;
    // force_i = -dV/dtheta * dtheta/dr_i; dtheta/dcos = -1/sin(theta), so the
    // two minus signs cancel. Guard sin ~ 0 at collinear geometries.
    const real sin_t = std::sqrt(std::max(static_cast<real>(1e-12),
                                          1 - cos_t * cos_t));
    const real coeff = angle.ktheta * dtheta / sin_t;
    const Vec3 di = (1 / nij) * ((1 / nkj) * rkj - (cos_t / nij) * rij);
    const Vec3 dk = (1 / nkj) * ((1 / nij) * rij - (cos_t / nkj) * rkj);
    system.force[angle.i] += coeff * di;
    system.force[angle.k] += coeff * dk;
    system.force[angle.j] -= coeff * (di + dk);
  }
  return energy;
}

real Restraints::compute(System& system) const {
  MUMMI_CHECK(indices.size() == references.size());
  real energy = 0;
  for (std::size_t n = 0; n < indices.size(); ++n) {
    const int i = indices[n];
    const Vec3 d = system.box.min_image(system.pos[i], references[n]);
    energy += 0.5 * k * d.norm2();
    system.force[i] -= k * d;
  }
  return energy;
}

}  // namespace mummi::md
