// GROMACS .gro structure format I/O.
//
// The paper's pipeline hands structures between insane, GROMACS, backward
// and ParmEd in standard file formats; our systems export/import real .gro
// text so artifacts can be inspected with standard tools (VMD, gmx).
// Fixed-column format: "%5d%-5s%5s%5d%8.3f%8.3f%8.3f%8.4f%8.4f%8.4f".
#pragma once

#include <string>
#include <vector>

#include "mdengine/system.hpp"

namespace mummi::md {

/// Names used for residue/atom columns; index = particle type id.
/// Types beyond the table get "X<type>".
struct GroNaming {
  std::vector<std::string> type_names;
  [[nodiscard]] std::string name_for(int type) const {
    if (type >= 0 && static_cast<std::size_t>(type) < type_names.size())
      return type_names[static_cast<std::size_t>(type)];
    return "X" + std::to_string(type);
  }
};

/// Serializes a system (positions + velocities + box) as .gro text.
[[nodiscard]] std::string write_gro(const System& system,
                                    const std::string& title,
                                    const GroNaming& naming = {});

/// Parsed .gro content: enough to rebuild a System skeleton (positions,
/// velocities, box; types resolved back through the naming table, -1 when
/// unknown).
struct GroFile {
  std::string title;
  std::vector<std::string> atom_names;
  std::vector<int> residue_ids;
  std::vector<Vec3> positions;
  std::vector<Vec3> velocities;
  Box box;
};

/// Parses .gro text. Throws util::FormatError on malformed input.
[[nodiscard]] GroFile parse_gro(const std::string& text);

}  // namespace mummi::md
