// Trajectory storage: the MD data stream of the paper's Sec. 4.1 rates
// (ddcMD: 4.6 MB per frame every 41.5 s; AMBER: 18 MB frames every 10.3 min).
//
// Frames are quantized to fixed precision (default 1 pm, tighter than XTC's
// default) and written as records through the generic DataStore interface,
// so trajectories land on the local RAM disk, a tar archive, or the database
// with the same configuration switch as everything else. A TrajectoryReader
// provides random access by step.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "datastore/data_store.hpp"
#include "mdengine/system.hpp"

namespace mummi::md {

/// One decoded trajectory frame.
struct TrajectoryFrame {
  long step = 0;
  double time_ps = 0;
  Box box;
  std::vector<Vec3> positions;
};

class TrajectoryWriter {
 public:
  /// Frames are stored in `store` under namespace "traj-<tag>", one record
  /// per frame keyed "frame-<step>". `precision` is the quantization step in
  /// nm (default 1e-3 = the XTC convention).
  TrajectoryWriter(ds::DataStorePtr store, std::string tag,
                   double precision = 1e-3);

  /// Appends a frame.
  void write(const System& system, long step, double time_ps);

  [[nodiscard]] std::size_t frames_written() const { return frames_; }
  [[nodiscard]] const std::string& ns() const { return ns_; }

  /// Encodes one frame standalone (also used by the writer).
  static util::Bytes encode(const System& system, long step, double time_ps,
                            double precision);
  static TrajectoryFrame decode(const util::Bytes& bytes);

 private:
  ds::DataStorePtr store_;
  std::string ns_;
  double precision_;
  std::size_t frames_ = 0;
};

class TrajectoryReader {
 public:
  TrajectoryReader(ds::DataStorePtr store, std::string tag);

  /// Steps available, ascending.
  [[nodiscard]] std::vector<long> steps() const;

  /// Random access by step; nullopt when absent.
  [[nodiscard]] std::optional<TrajectoryFrame> frame(long step) const;

 private:
  ds::DataStorePtr store_;
  std::string ns_;
};

}  // namespace mummi::md
