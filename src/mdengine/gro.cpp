#include "mdengine/gro.hpp"

#include <cstdio>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace mummi::md {

std::string write_gro(const System& system, const std::string& title,
                      const GroNaming& naming) {
  std::string out;
  out.reserve(system.size() * 70 + 128);
  out += title;
  out += '\n';
  out += util::format("%5zu\n", system.size());
  for (std::size_t i = 0; i < system.size(); ++i) {
    const std::string name = naming.name_for(system.type[i]);
    // Residue id: molecule id + 1 (gro is 1-based), wrapped to 5 digits.
    const int resid = (system.molecule[i] >= 0 ? system.molecule[i] + 1 : 1) %
                      100000;
    const int atomid = static_cast<int>(i + 1) % 100000;
    out += util::format("%5d%-5s%5s%5d%8.3f%8.3f%8.3f%8.4f%8.4f%8.4f\n",
                        resid, name.c_str(), name.c_str(), atomid,
                        system.pos[i].x, system.pos[i].y, system.pos[i].z,
                        system.vel[i].x, system.vel[i].y, system.vel[i].z);
  }
  out += util::format("%10.5f%10.5f%10.5f\n", system.box.length.x,
                      system.box.length.y, system.box.length.z);
  return out;
}

namespace {
double field(const std::string& line, std::size_t pos, std::size_t width) {
  if (line.size() < pos + width)
    throw util::FormatError("gro line too short");
  return std::stod(line.substr(pos, width));
}
}  // namespace

GroFile parse_gro(const std::string& text) {
  const auto lines = util::split(text, '\n');
  if (lines.size() < 3) throw util::FormatError("gro file too short");
  GroFile gro;
  gro.title = lines[0];
  const auto natoms = static_cast<std::size_t>(std::stoul(util::trim(lines[1])));
  if (lines.size() < natoms + 3) throw util::FormatError("gro file truncated");
  gro.atom_names.reserve(natoms);
  gro.positions.reserve(natoms);
  gro.velocities.reserve(natoms);
  for (std::size_t i = 0; i < natoms; ++i) {
    const std::string& line = lines[2 + i];
    if (line.size() < 44) throw util::FormatError("gro atom line too short");
    gro.residue_ids.push_back(std::stoi(line.substr(0, 5)));
    gro.atom_names.push_back(util::trim(line.substr(10, 5)));
    gro.positions.push_back({field(line, 20, 8), field(line, 28, 8),
                             field(line, 36, 8)});
    if (line.size() >= 68)
      gro.velocities.push_back({field(line, 44, 8), field(line, 52, 8),
                                field(line, 60, 8)});
    else
      gro.velocities.push_back({});
  }
  const auto box_fields = util::split(util::trim(lines[2 + natoms]), ' ');
  std::vector<double> box;
  for (const auto& f : box_fields)
    if (!util::trim(f).empty()) box.push_back(std::stod(f));
  if (box.size() < 3) throw util::FormatError("gro box line malformed");
  gro.box.length = {box[0], box[1], box[2]};
  return gro;
}

}  // namespace mummi::md
