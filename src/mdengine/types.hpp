// Core math types for the particle engines.
//
// Units follow the GROMACS convention the paper's codes use: lengths in nm,
// time in ps, energy in kJ/mol, mass in amu, temperature in K.
#pragma once

#include <cmath>

namespace mummi::md {

using real = double;

/// Boltzmann constant in kJ/(mol K).
constexpr real kBoltzmann = 0.00831446;

struct Vec3 {
  real x = 0, y = 0, z = 0;

  Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  Vec3& operator*=(real s) { x *= s; y *= s; z *= s; return *this; }

  friend Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend Vec3 operator*(Vec3 a, real s) { return a *= s; }
  friend Vec3 operator*(real s, Vec3 a) { return a *= s; }

  [[nodiscard]] real dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  [[nodiscard]] Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] real norm2() const { return dot(*this); }
  [[nodiscard]] real norm() const { return std::sqrt(norm2()); }
};

/// Orthorhombic periodic box.
struct Box {
  Vec3 length{1, 1, 1};

  /// Minimum-image displacement a - b.
  [[nodiscard]] Vec3 min_image(const Vec3& a, const Vec3& b) const {
    Vec3 d = a - b;
    d.x -= length.x * std::round(d.x / length.x);
    d.y -= length.y * std::round(d.y / length.y);
    d.z -= length.z * std::round(d.z / length.z);
    return d;
  }

  /// Wraps a position into [0, L) per dimension.
  [[nodiscard]] Vec3 wrap(Vec3 p) const {
    p.x -= length.x * std::floor(p.x / length.x);
    p.y -= length.y * std::floor(p.y / length.y);
    p.z -= length.z * std::floor(p.z / length.z);
    return p;
  }

  [[nodiscard]] real volume() const { return length.x * length.y * length.z; }
};

}  // namespace mummi::md
