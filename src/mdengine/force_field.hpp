// Nonbonded and bonded interactions.
//
// The CG scale substitutes the Martini force field (used by ddcMD in the
// paper) with a type-matrix of cut-and-shifted Lennard-Jones interactions
// plus screened electrostatics — the same functional forms Martini uses.
// The AA scale reuses the machinery at smaller sigma/timestep after
// backmapping (standing in for CHARMM36/AMBER).
#pragma once

#include <memory>
#include <vector>

#include "mdengine/cell_list.hpp"
#include "mdengine/system.hpp"

namespace mummi::md {

/// LJ well depth/size for one type pair.
struct PairParams {
  real epsilon = 0.0;  // kJ/mol
  real sigma = 0.47;   // nm (the Martini bead size)
};

class ForceField {
 public:
  virtual ~ForceField() = default;

  /// Accumulates pair forces into system.force (which the caller zeroed)
  /// and returns the potential energy.
  virtual real compute(System& system, const NeighborList& neighbors) const = 0;

  /// Interaction range (nm) the neighbor list must cover.
  [[nodiscard]] virtual real cutoff() const = 0;
};

/// Symmetric type-matrix LJ with energy shifted to zero at the cutoff, plus
/// optional screened Coulomb (Martini's straight-cutoff, epsilon_r-screened
/// electrostatics).
class TypeMatrixForceField final : public ForceField {
 public:
  TypeMatrixForceField(int n_types, real cutoff);

  /// Sets interaction parameters for an unordered type pair.
  void set_pair(int a, int b, PairParams params);
  [[nodiscard]] PairParams pair(int a, int b) const;

  /// Relative dielectric for charge-charge terms (Martini: 15).
  void set_dielectric(real eps_r) { eps_r_ = eps_r; }

  [[nodiscard]] int n_types() const { return n_types_; }

  real compute(System& system, const NeighborList& neighbors) const override;
  [[nodiscard]] real cutoff() const override { return cutoff_; }

 private:
  [[nodiscard]] std::size_t index(int a, int b) const;

  int n_types_;
  real cutoff_;
  real eps_r_ = 15.0;
  std::vector<PairParams> table_;
};

/// Bond + angle energy and forces (always computed, independent of lists).
/// Returns potential energy; accumulates into system.force.
real compute_bonded(System& system);

/// Harmonic position restraints used by backmapping's restrained relaxation:
/// V = k/2 |r_i - ref_i|^2 for each (index, reference) entry.
struct Restraints {
  std::vector<int> indices;
  std::vector<Vec3> references;
  real k = 1000.0;

  /// Returns energy; accumulates forces.
  real compute(System& system) const;
};

}  // namespace mummi::md
