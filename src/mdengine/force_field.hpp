// Nonbonded and bonded interactions.
//
// The CG scale substitutes the Martini force field (used by ddcMD in the
// paper) with a type-matrix of cut-and-shifted Lennard-Jones interactions
// plus screened electrostatics — the same functional forms Martini uses.
// The AA scale reuses the machinery at smaller sigma/timestep after
// backmapping (standing in for CHARMM36/AMBER).
//
// The nonbonded hot path is a flat, thread-parallel engine: interaction
// constants (c12, c6, the cutoff shift, force prefactors) are precomputed
// per type pair when parameters are set, the kernel walks the neighbor
// list's CSR rows in fixed particle blocks, and per-block force/energy
// partials are reduced in ascending block order — so results are
// bit-identical at any thread count (see DESIGN.md 4h).
#pragma once

#include <memory>
#include <vector>

#include "mdengine/cell_list.hpp"
#include "mdengine/system.hpp"

namespace mummi::util {
class ThreadPool;
}  // namespace mummi::util

namespace mummi::md {

/// LJ well depth/size for one type pair.
struct PairParams {
  real epsilon = 0.0;  // kJ/mol
  real sigma = 0.47;   // nm (the Martini bead size)
};

class ForceField {
 public:
  virtual ~ForceField() = default;

  /// Accumulates pair forces into system.force (which the caller zeroed)
  /// and returns the potential energy. A null pool runs serially; any pool
  /// produces bit-identical output.
  virtual real compute(System& system, const NeighborList& neighbors,
                       util::ThreadPool* pool = nullptr) const = 0;

  /// Interaction range (nm) the neighbor list must cover.
  [[nodiscard]] virtual real cutoff() const = 0;
};

/// Symmetric type-matrix LJ with energy shifted to zero at the cutoff, plus
/// optional screened Coulomb (Martini's straight-cutoff, epsilon_r-screened
/// electrostatics).
///
/// compute() reuses per-thread scratch buffers internally; concurrent calls
/// from different threads are safe (each caller thread owns its scratch),
/// and a pool passed in only ever executes disjoint blocks.
class TypeMatrixForceField final : public ForceField {
 public:
  TypeMatrixForceField(int n_types, real cutoff);

  /// Sets interaction parameters for an unordered type pair and refreshes
  /// the precomputed interaction table entries (c12 = 4 eps sigma^12,
  /// c6 = 4 eps sigma^6, the cutoff energy shift, force prefactors).
  void set_pair(int a, int b, PairParams params);
  [[nodiscard]] PairParams pair(int a, int b) const;

  /// Relative dielectric for charge-charge terms (Martini: 15). Refreshes
  /// the precomputed Coulomb prefactor.
  void set_dielectric(real eps_r);

  [[nodiscard]] int n_types() const { return n_types_; }

  real compute(System& system, const NeighborList& neighbors,
               util::ThreadPool* pool = nullptr) const override;
  [[nodiscard]] real cutoff() const override { return cutoff_; }

 private:
  [[nodiscard]] std::size_t index(int a, int b) const;

  int n_types_;
  real cutoff_;
  real eps_r_ = 15.0;
  real coul_pre_ = 0;  // kCoulomb / eps_r_, hoisted out of the pair loop
  std::vector<PairParams> table_;
  // Precomputed per-type-pair interaction constants, indexed like table_.
  // Validated once at set_pair; the kernel indexes them unchecked (the type
  // array itself is validated once per compute call, not per pair).
  std::vector<real> c12_;    // 4 eps sigma^12
  std::vector<real> c6_;     // 4 eps sigma^6
  std::vector<real> shift_;  // V(cutoff), subtracted so V(rc) = 0
  std::vector<real> f12_;    // 12 * c12
  std::vector<real> f6_;     // 6 * c6
};

/// Bond + angle energy and forces (always computed, independent of lists).
/// Returns potential energy; accumulates into system.force. Parallelizes
/// over bond/angle blocks with the same fixed-order reduction as the
/// nonbonded kernel; a null pool runs serially with identical results.
real compute_bonded(System& system, util::ThreadPool* pool = nullptr);

/// Harmonic position restraints used by backmapping's restrained relaxation:
/// V = k/2 |r_i - ref_i|^2 for each (index, reference) entry.
struct Restraints {
  std::vector<int> indices;
  std::vector<Vec3> references;
  real k = 1000.0;

  /// Returns energy; accumulates forces.
  real compute(System& system) const;
};

}  // namespace mummi::md
