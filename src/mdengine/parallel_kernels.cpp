#include "mdengine/parallel_kernels.hpp"

namespace mummi::md::detail {

void for_blocks(util::ThreadPool* pool, std::size_t n, std::size_t block,
                const std::function<void(std::size_t, std::size_t)>& fn) {
  util::for_blocks(pool, n, block, fn);
}

void ForceScratch::reset(std::size_t nblocks, std::size_t n,
                         std::size_t nslots) {
  if (force_.size() < nblocks) force_.resize(nblocks);
  for (std::size_t b = 0; b < nblocks; ++b) {
    // Buffers left behind by reduce_and_clear are already zero; only a shape
    // change (or an exception between reset and reduce) forces a re-clear.
    if (force_[b].size() != n || dirty_) force_[b].assign(n, Vec3{});
  }
  nblocks_ = nblocks;
  n_ = n;
  dirty_ = true;
  energy_.assign(nslots, 0);
}

void ForceScratch::reduce_and_clear(std::vector<Vec3>& out,
                                    util::ThreadPool* pool) {
  detail::for_blocks(pool, n_, kernel_block(n_),
             [this, &out](std::size_t begin, std::size_t end) {
               for (std::size_t b = 0; b < nblocks_; ++b) {
                 Vec3* f = force_[b].data();
                 for (std::size_t i = begin; i < end; ++i) {
                   out[i] += f[i];
                   f[i] = Vec3{};
                 }
               }
             });
  dirty_ = false;
}

real ForceScratch::energy_sum() const {
  real total = 0;
  for (const real e : energy_) total += e;
  return total;
}

}  // namespace mummi::md::detail
