// Membrane observables beyond RDFs: transverse density profiles and lipid
// order parameters — the standard bilayer health checks run on the CG
// trajectories (and the quantities the paper's lipid-fingerprint analyses
// build on).
#pragma once

#include <utility>
#include <vector>

#include "mdengine/system.hpp"

namespace mummi::md {

/// Number density profile along z for a selection: counts per bin divided by
/// slab volume, over [0, box.z) in `bins` bins.
[[nodiscard]] std::vector<double> z_density_profile(
    const System& system, const std::vector<int>& selection, std::size_t bins);

/// Second-rank order parameter P2 = <(3 cos^2 theta - 1) / 2> of the given
/// intra-molecular vectors (e.g. head-bead -> last tail bead) against the
/// membrane normal (z). +1: perfectly aligned; 0: isotropic; -0.5: in-plane.
[[nodiscard]] double order_parameter(
    const System& system,
    const std::vector<std::pair<int, int>>& vectors);

/// Center of mass of a selection (minimum-image-safe only for compact
/// selections; used for leaflet midplane estimates).
[[nodiscard]] Vec3 center_of_mass(const System& system,
                                  const std::vector<int>& selection);

/// Bilayer thickness estimate: distance between the mean z of two head-bead
/// selections (inner and outer leaflets).
[[nodiscard]] real bilayer_thickness(const System& system,
                                     const std::vector<int>& inner_heads,
                                     const std::vector<int>& outer_heads);

}  // namespace mummi::md
