#include "mdengine/integrator.hpp"

#include <algorithm>
#include <cmath>

namespace mummi::md {

namespace {
void zero_forces(System& system) {
  std::fill(system.force.begin(), system.force.end(), Vec3{});
}

real refresh_forces(System& system, const ForceFn& forces) {
  zero_forces(system);
  return forces(system);
}
}  // namespace

real VelocityVerlet::step(System& system, const ForceFn& forces, real dt) {
  if (!have_forces_) {
    refresh_forces(system, forces);
    have_forces_ = true;
  }
  const std::size_t n = system.size();
  for (std::size_t i = 0; i < n; ++i) {
    system.vel[i] += (0.5 * dt / system.mass[i]) * system.force[i];
    system.pos[i] = system.box.wrap(system.pos[i] + dt * system.vel[i]);
  }
  const real pe = refresh_forces(system, forces);
  for (std::size_t i = 0; i < n; ++i)
    system.vel[i] += (0.5 * dt / system.mass[i]) * system.force[i];
  return pe;
}

real Langevin::step(System& system, const ForceFn& forces, real dt) {
  // BAOAB: B (half kick), A (half drift), O (Ornstein-Uhlenbeck),
  // A (half drift), B (half kick).
  if (!have_forces_) {
    refresh_forces(system, forces);
    have_forces_ = true;
  }
  const std::size_t n = system.size();
  const real c1 = std::exp(-gamma_ * dt);
  for (std::size_t i = 0; i < n; ++i) {
    system.vel[i] += (0.5 * dt / system.mass[i]) * system.force[i];
    system.pos[i] += (0.5 * dt) * system.vel[i];
    const real sigma =
        std::sqrt(kBoltzmann * temperature_ * (1 - c1 * c1) / system.mass[i]);
    system.vel[i] = c1 * system.vel[i] +
                    Vec3{sigma * static_cast<real>(rng_.normal()),
                         sigma * static_cast<real>(rng_.normal()),
                         sigma * static_cast<real>(rng_.normal())};
    system.pos[i] = system.box.wrap(system.pos[i] + (0.5 * dt) * system.vel[i]);
  }
  const real pe = refresh_forces(system, forces);
  for (std::size_t i = 0; i < n; ++i)
    system.vel[i] += (0.5 * dt / system.mass[i]) * system.force[i];
  return pe;
}

real minimize(System& system, const ForceFn& forces, int max_steps,
              real initial_step, real f_tol) {
  real step_size = initial_step;
  real energy = refresh_forces(system, forces);
  std::vector<Vec3> saved_pos;
  for (int iter = 0; iter < max_steps; ++iter) {
    real f_max2 = 0;
    for (const auto& f : system.force) f_max2 = std::max(f_max2, f.norm2());
    const real f_max = std::sqrt(f_max2);
    if (f_max < f_tol) break;

    saved_pos = system.pos;
    // Displace along forces, capping the largest move at step_size.
    const real scale = step_size / f_max;
    for (std::size_t i = 0; i < system.size(); ++i)
      system.pos[i] = system.box.wrap(system.pos[i] + scale * system.force[i]);

    const real new_energy = refresh_forces(system, forces);
    if (new_energy < energy) {
      energy = new_energy;
      step_size = std::min(step_size * 1.2, initial_step * 10);
    } else {
      system.pos = saved_pos;
      refresh_forces(system, forces);
      step_size *= 0.5;
      if (step_size < 1e-8) break;
    }
  }
  return energy;
}

}  // namespace mummi::md
