#include "mdengine/system.hpp"

namespace mummi::md {

void System::zero_momentum() {
  if (size() == 0) return;
  Vec3 p{};
  real m_total = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    p += mass[i] * vel[i];
    m_total += mass[i];
  }
  const Vec3 v_cm = (1.0 / m_total) * p;
  for (auto& v : vel) v -= v_cm;
}

util::Bytes System::serialize() const {
  util::ByteWriter w;
  w.f64(box.length.x);
  w.f64(box.length.y);
  w.f64(box.length.z);
  w.vec(pos);
  w.vec(vel);
  w.vec(mass);
  w.vec(charge);
  w.vec(type);
  w.vec(molecule);
  w.vec(bonds);
  w.vec(angles);
  return std::move(w).take();
}

System System::deserialize(const util::Bytes& data) {
  util::ByteReader r(data);
  System s;
  s.box.length.x = r.f64();
  s.box.length.y = r.f64();
  s.box.length.z = r.f64();
  s.pos = r.vec<Vec3>();
  s.vel = r.vec<Vec3>();
  s.mass = r.vec<real>();
  s.charge = r.vec<real>();
  s.type = r.vec<int>();
  s.molecule = r.vec<int>();
  s.bonds = r.vec<Bond>();
  s.angles = r.vec<Angle>();
  s.force.assign(s.pos.size(), Vec3{});
  return s;
}

}  // namespace mummi::md
