#include "mdengine/trajectory.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mummi::md {

namespace {
constexpr std::uint32_t kFrameMagic = 0x4d544a46;  // "MTJF"
}

TrajectoryWriter::TrajectoryWriter(ds::DataStorePtr store, std::string tag,
                                   double precision)
    : store_(std::move(store)),
      ns_("traj-" + tag),
      precision_(precision) {
  MUMMI_CHECK(store_ != nullptr);
  MUMMI_CHECK_MSG(precision > 0, "precision must be positive");
}

util::Bytes TrajectoryWriter::encode(const System& system, long step,
                                     double time_ps, double precision) {
  util::ByteWriter w;
  w.u32(kFrameMagic);
  w.i64(step);
  w.f64(time_ps);
  w.f64(precision);
  w.f64(system.box.length.x);
  w.f64(system.box.length.y);
  w.f64(system.box.length.z);
  w.u64(system.size());
  // Quantized coordinates: int32 lattice indices at `precision` nm.
  std::vector<std::int32_t> q;
  q.reserve(system.size() * 3);
  for (const auto& p : system.pos) {
    const Vec3 wrapped = system.box.wrap(p);
    q.push_back(static_cast<std::int32_t>(std::lround(wrapped.x / precision)));
    q.push_back(static_cast<std::int32_t>(std::lround(wrapped.y / precision)));
    q.push_back(static_cast<std::int32_t>(std::lround(wrapped.z / precision)));
  }
  w.vec(q);
  return std::move(w).take();
}

TrajectoryFrame TrajectoryWriter::decode(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  if (r.u32() != kFrameMagic)
    throw util::FormatError("not a trajectory frame");
  TrajectoryFrame frame;
  frame.step = r.i64();
  frame.time_ps = r.f64();
  const double precision = r.f64();
  frame.box.length.x = r.f64();
  frame.box.length.y = r.f64();
  frame.box.length.z = r.f64();
  const auto n = r.u64();
  const auto q = r.vec<std::int32_t>();
  MUMMI_CHECK_MSG(q.size() == n * 3, "trajectory frame corrupt");
  frame.positions.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    frame.positions.push_back({q[3 * i] * precision, q[3 * i + 1] * precision,
                               q[3 * i + 2] * precision});
  return frame;
}

void TrajectoryWriter::write(const System& system, long step, double time_ps) {
  store_->put(ns_, "frame-" + std::to_string(step),
              encode(system, step, time_ps, precision_));
  ++frames_;
}

TrajectoryReader::TrajectoryReader(ds::DataStorePtr store, std::string tag)
    : store_(std::move(store)), ns_("traj-" + tag) {
  MUMMI_CHECK(store_ != nullptr);
}

std::vector<long> TrajectoryReader::steps() const {
  std::vector<long> out;
  for (const auto& key : store_->keys(ns_, "frame-*"))
    out.push_back(std::stol(key.substr(6)));
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<TrajectoryFrame> TrajectoryReader::frame(long step) const {
  const std::string key = "frame-" + std::to_string(step);
  if (!store_->exists(ns_, key)) return std::nullopt;
  return TrajectoryWriter::decode(store_->get(ns_, key));
}

}  // namespace mummi::md
