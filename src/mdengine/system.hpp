// Particle system: SoA state + bonded topology.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mdengine/types.hpp"
#include "util/bytes.hpp"

namespace mummi::md {

/// Harmonic bond between two particles: V = k/2 (r - r0)^2.
struct Bond {
  int i, j;
  real r0;
  real k;
};

/// Harmonic angle i-j-k: V = k/2 (theta - theta0)^2.
struct Angle {
  int i, j, k;
  real theta0;
  real ktheta;
};

/// The simulated state. Positions/velocities/forces are structure-of-arrays;
/// types index into the force field's species table.
struct System {
  Box box;
  std::vector<Vec3> pos;
  std::vector<Vec3> vel;
  std::vector<Vec3> force;
  std::vector<real> mass;
  std::vector<real> charge;
  std::vector<int> type;
  std::vector<int> molecule;  // molecule id, -1 for free particles
  std::vector<Bond> bonds;
  std::vector<Angle> angles;

  [[nodiscard]] std::size_t size() const { return pos.size(); }

  /// Appends a particle; returns its index.
  int add_particle(Vec3 position, int type_id, real m, real q = 0.0,
                   int mol = -1) {
    pos.push_back(position);
    vel.push_back({});
    force.push_back({});
    mass.push_back(m);
    charge.push_back(q);
    type.push_back(type_id);
    molecule.push_back(mol);
    return static_cast<int>(pos.size()) - 1;
  }

  /// Instantaneous kinetic energy (kJ/mol).
  [[nodiscard]] real kinetic_energy() const {
    real ke = 0;
    for (std::size_t i = 0; i < size(); ++i) ke += 0.5 * mass[i] * vel[i].norm2();
    return ke;
  }

  /// Instantaneous temperature from equipartition (3N degrees of freedom).
  [[nodiscard]] real temperature() const {
    if (size() == 0) return 0;
    return 2.0 * kinetic_energy() /
           (3.0 * static_cast<real>(size()) * kBoltzmann);
  }

  /// Removes net center-of-mass momentum.
  void zero_momentum();

  /// Serialization for checkpoints and trajectory frames.
  [[nodiscard]] util::Bytes serialize() const;
  static System deserialize(const util::Bytes& data);
};

}  // namespace mummi::md
