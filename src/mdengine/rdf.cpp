#include "mdengine/rdf.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mummi::md {

RdfAccumulator::RdfAccumulator(real r_max, std::size_t nbins)
    : r_max_(r_max), counts_(nbins, 0.0) {
  MUMMI_CHECK_MSG(r_max > 0 && nbins > 0, "invalid RDF binning");
}

void RdfAccumulator::add_frame(const System& system,
                               const std::vector<int>& sel_a,
                               const std::vector<int>& sel_b) {
  const real dr = r_max_ / static_cast<real>(counts_.size());
  std::size_t overlap = 0;
  for (int a : sel_a) {
    for (int b : sel_b) {
      if (a == b) {
        ++overlap;
        continue;
      }
      const Vec3 d = system.box.min_image(system.pos[a], system.pos[b]);
      const real r = d.norm();
      if (r >= r_max_) continue;
      counts_[static_cast<std::size_t>(r / dr)] += 1.0;
    }
  }
  const double npairs = static_cast<double>(sel_a.size()) *
                            static_cast<double>(sel_b.size()) -
                        static_cast<double>(overlap);
  pair_density_sum_ += npairs / system.box.volume();
  ++frames_;
}

std::vector<real> RdfAccumulator::g() const {
  std::vector<real> out(counts_.size(), 0.0);
  if (frames_ == 0 || pair_density_sum_ <= 0) return out;
  const real dr = r_max_ / static_cast<real>(counts_.size());
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const real r_lo = static_cast<real>(b) * dr;
    const real r_hi = r_lo + dr;
    const real shell =
        4.0 / 3.0 * M_PI * (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    out[b] = static_cast<real>(counts_[b] / (shell * pair_density_sum_));
  }
  return out;
}

std::vector<real> RdfAccumulator::centers() const {
  const real dr = r_max_ / static_cast<real>(counts_.size());
  std::vector<real> out(counts_.size());
  for (std::size_t b = 0; b < counts_.size(); ++b)
    out[b] = (static_cast<real>(b) + 0.5) * dr;
  return out;
}

void RdfAccumulator::restore_raw(std::vector<double> counts,
                                 std::size_t frames,
                                 double pair_density_sum) {
  MUMMI_CHECK_MSG(counts.size() == counts_.size(), "restore binning mismatch");
  counts_ = std::move(counts);
  frames_ = frames;
  pair_density_sum_ = pair_density_sum;
}

void RdfAccumulator::merge(const RdfAccumulator& other) {
  MUMMI_CHECK_MSG(other.counts_.size() == counts_.size() &&
                      std::abs(other.r_max_ - r_max_) < 1e-12,
                  "RDF binning mismatch");
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  frames_ += other.frames_;
  pair_density_sum_ += other.pair_density_sum_;
}

}  // namespace mummi::md
