// Simulation driver: force field + neighbor list + integrator + hooks.
//
// Plays the role ddcMD/AMBER play in the paper: advance the system, emit
// trajectory frames at a fixed cadence for the in-situ analysis, checkpoint
// every N steps, and restore exactly after a crash.
#pragma once

#include <functional>
#include <memory>

#include "mdengine/force_field.hpp"
#include "mdengine/integrator.hpp"
#include "mdengine/system.hpp"
#include "util/checkpoint.hpp"

namespace mummi::util {
class ThreadPool;
}  // namespace mummi::util

namespace mummi::md {

/// Pool the engine threads its kernels through when SimulationConfig.pool is
/// null: the shared util::global_pool() when MUMMI_POOL_SIZE requests more
/// than one worker, nullptr (serial) otherwise. Output is bit-identical
/// either way — the env var only trades wall time.
util::ThreadPool* default_md_pool();

struct SimulationConfig {
  real dt = 0.02;            // ps (Martini-scale); AA uses ~0.002
  real skin = 0.3;           // neighbor-list skin, nm
  int frame_interval = 100;  // steps between frame callbacks (0 = off)
  int checkpoint_interval = 0;  // steps between checkpoints (0 = off)
  std::string checkpoint_path;  // required if checkpoint_interval > 0
  util::ThreadPool* pool = nullptr;  // null -> default_md_pool()
};

class Simulation {
 public:
  /// Called with the system, the step index and the potential energy each
  /// time a frame is due — the attachment point for in-situ analysis.
  using FrameFn = std::function<void(const System&, long step, real pe)>;

  Simulation(System system, std::shared_ptr<const ForceField> ff,
             std::unique_ptr<Integrator> integrator, SimulationConfig config);

  /// Adds position restraints (backmapping's restrained relaxation).
  void set_restraints(Restraints restraints);
  void clear_restraints();

  void on_frame(FrameFn fn) { frame_fn_ = std::move(fn); }

  /// Advances `nsteps`, maintaining the neighbor list, firing frame
  /// callbacks and checkpoints on schedule.
  void run(long nsteps);

  /// Steepest-descent relaxation (does not advance step count).
  real minimize_energy(int max_steps, real f_tol = 10.0);

  [[nodiscard]] const System& system() const { return system_; }
  [[nodiscard]] System& system() { return system_; }
  [[nodiscard]] long step_count() const { return step_; }
  [[nodiscard]] real potential_energy() const { return last_pe_; }
  [[nodiscard]] std::size_t neighbor_rebuilds() const { return rebuilds_; }
  [[nodiscard]] const NeighborList& neighbors() const { return neighbors_; }
  [[nodiscard]] util::ThreadPool* pool() const { return pool_; }

  /// Writes a checkpoint now (also called on schedule during run()).
  void checkpoint() const;

  /// Restores step count and system state from the checkpoint, if present.
  /// Returns whether a checkpoint was found.
  bool restore();

 private:
  [[nodiscard]] ForceFn force_fn();
  void ensure_neighbors();

  System system_;
  std::shared_ptr<const ForceField> ff_;
  std::unique_ptr<Integrator> integrator_;
  SimulationConfig config_;
  util::ThreadPool* pool_ = nullptr;
  NeighborList neighbors_;
  Restraints restraints_;
  bool have_restraints_ = false;
  FrameFn frame_fn_;
  long step_ = 0;
  real last_pe_ = 0;
  std::size_t rebuilds_ = 0;
};

}  // namespace mummi::md
