#include "mdengine/cell_list.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mummi::md {

void CellList::build(const System& system, real range) {
  MUMMI_CHECK_MSG(range > 0, "cell range must be positive");
  nx_ = std::max(1, static_cast<int>(std::floor(system.box.length.x / range)));
  ny_ = std::max(1, static_cast<int>(std::floor(system.box.length.y / range)));
  nz_ = std::max(1, static_cast<int>(std::floor(system.box.length.z / range)));
  head_.assign(static_cast<std::size_t>(n_cells()), -1);
  next_.assign(system.size(), -1);
  for (std::size_t i = 0; i < system.size(); ++i) {
    const Vec3 p = system.box.wrap(system.pos[i]);
    int cx = std::min(nx_ - 1, static_cast<int>(p.x / system.box.length.x *
                                                static_cast<real>(nx_)));
    int cy = std::min(ny_ - 1, static_cast<int>(p.y / system.box.length.y *
                                                static_cast<real>(ny_)));
    int cz = std::min(nz_ - 1, static_cast<int>(p.z / system.box.length.z *
                                                static_cast<real>(nz_)));
    const int c = cell_index(cx, cy, cz);
    next_[i] = head_[c];
    head_[c] = static_cast<int>(i);
  }
}

void NeighborList::build(const System& system) {
  const real range = cutoff_ + skin_;
  cells_.build(system, range);
  pairs_.clear();
  const real range2 = range * range;
  cells_.for_each_pair([&](int i, int j) {
    const Vec3 d = system.box.min_image(system.pos[i], system.pos[j]);
    if (d.norm2() < range2) pairs_.emplace_back(i, j);
  });
  ref_pos_ = system.pos;
}

bool NeighborList::needs_rebuild(const System& system) const {
  if (ref_pos_.size() != system.size()) return true;
  const real limit2 = 0.25 * skin_ * skin_;
  for (std::size_t i = 0; i < system.size(); ++i) {
    const Vec3 d = system.box.min_image(system.pos[i], ref_pos_[i]);
    if (d.norm2() > limit2) return true;
  }
  return false;
}

}  // namespace mummi::md
