#include "mdengine/cell_list.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "mdengine/parallel_kernels.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace mummi::md {

void CellList::build(const System& system, real range,
                     util::ThreadPool* pool) {
  MUMMI_CHECK_MSG(range > 0, "cell range must be positive");
  nx_ = std::max(1, static_cast<int>(std::floor(system.box.length.x / range)));
  ny_ = std::max(1, static_cast<int>(std::floor(system.box.length.y / range)));
  nz_ = std::max(1, static_cast<int>(std::floor(system.box.length.z / range)));
  const std::size_t n = system.size();
  cell_of_.resize(n);

  // Cell assignment is pure per-particle work: parallel, trivially
  // deterministic.
  detail::for_blocks(
      pool, n, detail::kernel_block(n),
      [this, &system](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const Vec3 p = system.box.wrap(system.pos[i]);
          const int cx = std::min(
              nx_ - 1, static_cast<int>(p.x / system.box.length.x *
                                        static_cast<real>(nx_)));
          const int cy = std::min(
              ny_ - 1, static_cast<int>(p.y / system.box.length.y *
                                        static_cast<real>(ny_)));
          const int cz = std::min(
              nz_ - 1, static_cast<int>(p.z / system.box.length.z *
                                        static_cast<real>(nz_)));
          cell_of_[i] = cell_index(cx, cy, cz);
        }
      });

  // Count / prefix / fill: short serial passes that keep items in ascending
  // particle order within every cell, independent of the worker count.
  const auto ncells = static_cast<std::size_t>(n_cells());
  cell_start_.assign(ncells + 1, 0);
  for (std::size_t i = 0; i < n; ++i)
    ++cell_start_[static_cast<std::size_t>(cell_of_[i]) + 1];
  for (std::size_t c = 0; c < ncells; ++c) cell_start_[c + 1] += cell_start_[c];
  items_.resize(n);
  cursor_.assign(ncells, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(cell_of_[i]);
    items_[static_cast<std::size_t>(cell_start_[c]) +
           static_cast<std::size_t>(cursor_[c]++)] = static_cast<int>(i);
  }
}

int CellList::neighbor_cells(int c, int out[27]) const {
  const int cx = c % nx_;
  const int cy = (c / nx_) % ny_;
  const int cz = c / (nx_ * ny_);
  int count = 0;
  for (int dz = -1; dz <= 1; ++dz)
    for (int dy = -1; dy <= 1; ++dy)
      for (int dx = -1; dx <= 1; ++dx)
        out[count++] = cell_index(wrap(cx + dx, nx_), wrap(cy + dy, ny_),
                                  wrap(cz + dz, nz_));
  return count;
}

void NeighborList::build(const System& system, util::ThreadPool* pool) {
  const std::size_t n = system.size();
  const real range = cutoff_ + skin_;
  cells_.build(system, range, pool);

  const std::size_t block = detail::kernel_block(n);
  const std::size_t nblocks = detail::kernel_blocks(n);
  if (scratch_.size() < nblocks) scratch_.resize(nblocks);
  row_start_.assign(n + 1, 0);

  const real range2 = range * range;
  const bool all_pairs = !cells_.stencil_ok();
  const Vec3* pos = system.pos.data();
  const Box box = system.box;

  // Pass 1: every block gathers its rows into its own scratch buffer
  // (capacity persists across rebuilds) and records per-row lengths. Row
  // content depends only on the system, never on which worker ran the block.
  detail::for_blocks(
      pool, n, block,
      [&, this](std::size_t begin, std::size_t end) {
        std::vector<int>& js = scratch_[begin / block];
        js.clear();
        const std::vector<int>& cell_start = cells_.cell_start();
        const std::vector<int>& items = cells_.items();
        int stencil[27];
        for (std::size_t i = begin; i < end; ++i) {
          const std::size_t row_begin = js.size();
          const Vec3 pi = pos[i];
          const int self = static_cast<int>(i);
          if (all_pairs) {
            for (std::size_t j = i + 1; j < n; ++j)
              if (box.min_image(pi, pos[j]).norm2() < range2)
                js.push_back(static_cast<int>(j));
          } else {
            const int ncand = cells_.neighbor_cells(cells_.cell_of(i), stencil);
            for (int s = 0; s < ncand; ++s) {
              const auto cell = static_cast<std::size_t>(stencil[s]);
              const int lo = cell_start[cell];
              const int hi = cell_start[cell + 1];
              for (int idx = lo; idx < hi; ++idx) {
                const int j = items[static_cast<std::size_t>(idx)];
                if (j <= self) continue;
                if (box.min_image(pi, pos[static_cast<std::size_t>(j)])
                        .norm2() < range2)
                  js.push_back(j);
              }
            }
            // Canonical row order: ascending j, independent of the stencil
            // walk (the all-pairs branch is already sorted).
            std::sort(js.begin() + static_cast<std::ptrdiff_t>(row_begin),
                      js.end());
          }
          row_start_[i + 1] = js.size() - row_begin;
        }
      });

  // Prefix-sum the row lengths, then pass 2 copies each block's rows into
  // place — disjoint contiguous spans, so the copy parallelizes freely.
  for (std::size_t i = 0; i < n; ++i) row_start_[i + 1] += row_start_[i];
  nbr_.resize(row_start_[n]);
  detail::for_blocks(pool, n, block,
                     [this, block](std::size_t begin, std::size_t end) {
                       (void)end;
                       const std::vector<int>& js = scratch_[begin / block];
                       std::copy(js.begin(), js.end(),
                                 nbr_.begin() + static_cast<std::ptrdiff_t>(
                                                    row_start_[begin]));
                     });

  ref_pos_ = system.pos;
  ++rebuilds_;
  pairs_valid_ = false;
  static obs::Counter& rebuild_counter = obs::counter("md.nlist.rebuilds");
  rebuild_counter.inc();
}

bool NeighborList::needs_rebuild(const System& system,
                                 util::ThreadPool* pool) const {
  if (ref_pos_.size() != system.size()) return true;
  const real limit2 = 0.25 * skin_ * skin_;
  const std::size_t n = system.size();
  if (pool == nullptr || pool->size() <= 1) {
    for (std::size_t i = 0; i < n; ++i)
      if (system.box.min_image(system.pos[i], ref_pos_[i]).norm2() > limit2)
        return true;
    return false;
  }
  // Parallel scan with a relaxed early-out; the OR of per-block verdicts is
  // order-independent, so the answer matches the serial scan exactly.
  std::atomic<bool> moved{false};
  detail::for_blocks(
      pool, n, detail::kernel_block(n),
      [&, this](std::size_t begin, std::size_t end) {
        if (moved.load(std::memory_order_relaxed)) return;
        for (std::size_t i = begin; i < end; ++i) {
          if (system.box.min_image(system.pos[i], ref_pos_[i]).norm2() >
              limit2) {
            moved.store(true, std::memory_order_relaxed);
            return;
          }
        }
      });
  return moved.load();
}

NeighborList::FillStats NeighborList::fill_stats() const {
  FillStats stats;
  stats.rebuilds = rebuilds_;
  stats.pairs = nbr_.size();
  stats.cells = static_cast<std::size_t>(cells_.n_cells());
  const std::size_t rows = row_start_.empty() ? 0 : row_start_.size() - 1;
  for (std::size_t i = 0; i < rows; ++i)
    stats.max_row = std::max(stats.max_row, row_start_[i + 1] - row_start_[i]);
  stats.avg_row =
      rows > 0 ? static_cast<double>(stats.pairs) / static_cast<double>(rows)
               : 0.0;
  return stats;
}

const std::vector<std::pair<int, int>>& NeighborList::pairs() const {
  if (!pairs_valid_) {
    pairs_compat_.clear();
    pairs_compat_.reserve(nbr_.size());
    const std::size_t rows = row_start_.empty() ? 0 : row_start_.size() - 1;
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t k = row_start_[i]; k < row_start_[i + 1]; ++k)
        pairs_compat_.emplace_back(static_cast<int>(i), nbr_[k]);
    pairs_valid_ = true;
  }
  return pairs_compat_;
}

}  // namespace mummi::md
