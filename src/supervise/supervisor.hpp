// Campaign supervision plane (paper Sec. 4.4; Workflows Community Roadmap
// "anomaly detection"; Mini-MuMMI experience report "graceful degradation").
//
// The fault layer retries crisp failures; this layer covers the silent ones:
//   - watchdog: jobs past a hard deadline derived from their tracker's
//     mean/sigma are declared hung, cancelled and resubmitted — the one
//     defence against payloads that never invoke their completion;
//   - straggler mitigation: jobs past the soft deadline get a speculative
//     twin; first finisher wins, the loser is cancelled;
//   - poison quarantine: every failure/hang/node-kill strikes the logical
//     payload in the QuarantineLedger (owned by the workload so it rides the
//     WorkflowManager checkpoint); K strikes and the payload is never
//     resubmitted;
//   - node probation: nodes whose failure rate trips the NodeHealthTracker
//     are drained, probed with a pinned canary job, and undrained on success;
//   - degraded mode: when healthy capacity drops below a floor, the workload
//     sheds low-priority job types (aa before cg) and restores on recovery.
//
// Determinism: the supervisor holds no RNG. Every decision is a pure function
// of virtual time (tick schedule + scheduler callbacks, both fired in
// deterministic event order) and counters; ties iterate std::map<JobId,...>
// ascending. Identical seed + FaultSpec therefore reproduce a byte-identical
// decision log — the property the supervision tests pin down.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"
#include "supervise/node_health.hpp"
#include "supervise/quarantine.hpp"
#include "util/clock.hpp"

namespace mummi::obs {
class Counter;
class Gauge;
}  // namespace mummi::obs

namespace mummi::supervise {

/// Expected duration statistics for one job type (from JobTypeConfig).
/// Types without a registered timing are not watched.
struct JobTiming {
  double mean_s = 0.0;
  double sigma_s = 0.0;
};

/// Actions the supervisor needs from the workload layer. WorkflowManager
/// implements this; the indirection keeps supervise/ below wm/ in the
/// dependency order.
class WorkloadControl {
 public:
  virtual ~WorkloadControl() = default;

  /// Resubmits the logical payload of a hung job the supervisor cancelled.
  /// Must consult quarantine() first; hang resubmissions do not consume the
  /// payload's max_restarts budget.
  virtual void resubmit_hung(const sched::Job& job) = 0;

  /// Submits a speculative duplicate of a straggling job. The twin's spec
  /// must carry attrs["speculative"]="1" and attrs["twin_of"]=<original id>.
  /// Returns false when the workload declines (unknown type, shed, ...).
  virtual bool launch_speculative(const sched::Job& job) = 0;

  /// Degraded mode: 0 = full workload, 1 = shed aa work, 2 = also stop new
  /// cg setups. Implementations cancel pending shed work and must requeue
  /// the payloads for when the level drops.
  virtual void set_shed_level(int level, double now) = 0;

  /// Submits a canary probe pinned to `node`; returns false if unavailable.
  virtual bool submit_canary(int node) = 0;

  /// The poison ledger — owned by the workload so it serializes into the
  /// same checkpoint blob as the rest of the WM state.
  virtual QuarantineLedger& quarantine() = 0;
};

struct SuperviseConfig {
  bool enabled = false;

  double tick_interval_s = 30.0;

  /// Deadlines for a job with timing {mean, sigma} and duration hint est:
  ///   base = max(mean, est)
  ///   soft = (soft_factor * base + soft_sigmas * sigma) * stretch
  ///   hard = (hard_factor * base + hard_sigmas * sigma) * stretch
  /// where `stretch` comes from set_duration_stretch (latency-spike faults
  /// slow real jobs down; deadlines must stretch with them).
  double soft_factor = 2.0;
  double soft_sigmas = 4.0;
  double hard_factor = 4.0;
  double hard_sigmas = 6.0;

  bool speculate = true;
  int max_speculations = 64;  // per supervisor lifetime (one allocation)

  NodeHealthConfig node_health;

  /// Healthy-capacity floors for degraded mode (fraction of nodes undrained).
  double degraded_floor_frac = 0.70;  // below: shed level 1 (aa)
  double critical_floor_frac = 0.40;  // below: shed level 2 (aa + new cg)
  double recover_hysteresis_frac = 0.05;
};

/// Aggregate outcome counters; merged across allocations by the campaign.
struct SupervisionStats {
  std::uint64_t hangs_detected = 0;
  std::uint64_t speculations = 0;
  std::uint64_t spec_wins = 0;    // twin finished first
  std::uint64_t spec_losses = 0;  // original finished first, twin wasted
  std::uint64_t quarantined = 0;
  std::uint64_t node_probations = 0;
  std::uint64_t canaries_ok = 0;
  std::uint64_t canaries_failed = 0;
  std::uint64_t shed_transitions = 0;
  double degraded_time_s = 0.0;
  double first_quarantine_s = -1.0;

  void merge(const SupervisionStats& o);
};

class Supervisor {
 public:
  /// Registers on_start/on_finish on `scheduler`. Register the workload's
  /// own callbacks FIRST: the winner of a speculative pair must reach the
  /// workload before the supervisor cancels the loser.
  Supervisor(sched::Scheduler& scheduler, const util::Clock& clock,
             WorkloadControl& control, SuperviseConfig cfg);

  /// Registers duration expectations for a watched job type.
  void set_timing(const std::string& type, JobTiming timing);

  /// Deadline stretch factor as a function of virtual time (e.g. the fault
  /// injector's latency factor). Default: constant 1.
  void set_duration_stretch(std::function<double(double)> fn);

  /// One supervision pass at virtual time `now`: watchdog deadlines, node
  /// probation, degraded-mode floor. The campaign schedules this every
  /// cfg.tick_interval_s.
  void tick(double now);

  /// Closes open degraded-mode intervals at end of allocation.
  void finalize(double now);

  [[nodiscard]] const SupervisionStats& stats() const { return stats_; }
  [[nodiscard]] int shed_level() const { return shed_level_; }
  [[nodiscard]] const NodeHealthTracker& node_health() const { return health_; }
  [[nodiscard]] const SuperviseConfig& config() const { return cfg_; }

  /// Decision log: one line per supervision action, in decision order.
  /// Byte-identical across runs with the same seed + spec.
  [[nodiscard]] const std::vector<std::string>& decisions() const {
    return decisions_;
  }
  [[nodiscard]] std::string log_text() const;

  /// True while `job` (an original) has a live or requested speculative twin
  /// — the workload's resubmit veto, so a failed original is not resubmitted
  /// on top of its still-running twin.
  [[nodiscard]] bool has_live_twin(sched::JobId id) const;

 private:
  struct Watch {
    std::string type;
    std::uint64_t payload = 0;
    double start_time = 0.0;
    double est_duration = 0.0;
    int node = -1;          // first allocated node (attribution)
    int canary_node = -1;   // >= 0: this job is a canary probing that node
    bool speculative = false;
    sched::JobId twin_of = sched::kInvalidJob;  // set on twins
    bool spec_requested = false;  // original already has a twin
    bool watched = false;         // type has a registered timing
  };

  void on_start(const sched::Job& job);
  void on_finish(const sched::Job& job);
  void handle_canary_finish(const Watch& watch, const sched::Job& job);
  void resolve_twin_finish(sched::JobId id, Watch& watch,
                           const sched::Job& job);
  void resolve_original_finish(sched::JobId id, Watch& watch,
                               const sched::Job& job);
  void strike(const Watch& watch, StrikeKind kind, int node);
  void apply_shed_policy(double now);
  void log(double now, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));

  [[nodiscard]] double stretch(double now) const;
  [[nodiscard]] double soft_deadline(const Watch& w, double now) const;
  [[nodiscard]] double hard_deadline(const Watch& w, double now) const;

  sched::Scheduler& scheduler_;
  const util::Clock& clock_;
  WorkloadControl& control_;
  SuperviseConfig cfg_;

  std::map<std::string, JobTiming> timings_;
  std::function<double(double)> stretch_fn_;

  std::map<sched::JobId, Watch> watches_;  // ordered ⇒ deterministic sweeps
  std::map<sched::JobId, sched::JobId> twin_by_original_;
  std::map<sched::JobId, sched::JobId> original_by_twin_;
  /// Originals whose twin was requested but has not started yet.
  std::set<sched::JobId> twin_requested_;
  /// Originals that finished with their twin still unstarted: the twin is
  /// cancelled the moment it starts (or never, if it is tombstoned pending).
  std::set<sched::JobId> orphaned_originals_;

  NodeHealthTracker health_;
  int shed_level_ = 0;
  double degraded_since_ = -1.0;
  int speculations_launched_ = 0;

  SupervisionStats stats_;
  std::vector<std::string> decisions_;

  struct Telemetry {
    obs::Counter* hangs = nullptr;
    obs::Counter* speculations = nullptr;
    obs::Counter* spec_wins = nullptr;
    obs::Counter* spec_losses = nullptr;
    obs::Counter* quarantined = nullptr;
    obs::Counter* probations = nullptr;
    obs::Counter* canaries_ok = nullptr;
    obs::Counter* canaries_failed = nullptr;
    obs::Counter* shed_transitions = nullptr;
    obs::Gauge* shed_level = nullptr;
    obs::Gauge* degraded_time_s = nullptr;
  };
  Telemetry tm_;
};

}  // namespace mummi::supervise
