#include "supervise/quarantine.hpp"

#include <algorithm>

#include "util/crashpoint.hpp"

namespace mummi::supervise {

const char* to_string(StrikeKind kind) {
  switch (kind) {
    case StrikeKind::kFailure: return "failure";
    case StrikeKind::kHang: return "hang";
    case StrikeKind::kNodeKill: return "node_kill";
  }
  return "?";
}

bool QuarantineLedger::strike(const std::string& type, std::uint64_t payload,
                              StrikeKind kind, double now, int node) {
  auto [it, inserted] = entries_.try_emplace(Key{type, payload});
  Entry& e = it->second;
  if (inserted) e.first_strike_s = now;
  switch (kind) {
    case StrikeKind::kFailure:
      ++e.failures;
      break;
    case StrikeKind::kHang:
      ++e.hangs;
      break;
    case StrikeKind::kNodeKill: {
      ++e.node_kills;
      auto pos = std::lower_bound(e.nodes_killed.begin(), e.nodes_killed.end(),
                                  node);
      if (pos == e.nodes_killed.end() || *pos != node)
        e.nodes_killed.insert(pos, node);
      break;
    }
  }
  if (e.quarantined || strike_limit_ <= 0) return false;
  const bool over =
      e.direct_strikes() >= static_cast<std::uint32_t>(strike_limit_) ||
      e.nodes_killed.size() >= static_cast<std::size_t>(strike_limit_);
  if (!over) return false;
  e.quarantined = true;
  e.quarantined_at_s = now;
  ++n_quarantined_;
  return true;
}

bool QuarantineLedger::quarantined(const std::string& type,
                                   std::uint64_t payload) const {
  const Entry* e = find(type, payload);
  return e != nullptr && e->quarantined;
}

const QuarantineLedger::Entry* QuarantineLedger::find(
    const std::string& type, std::uint64_t payload) const {
  auto it = entries_.find(Key{type, payload});
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> QuarantineLedger::quarantined_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, e] : entries_)
    if (e.quarantined)
      out.push_back(key.first + ":" + std::to_string(key.second));
  return out;  // map order ⇒ already sorted by (type, payload)
}

util::Bytes QuarantineLedger::serialize() const {
  // The ledger rides inside the campaign checkpoint; a crash here must leave
  // the previous on-disk checkpoint (and its ledger) fully recoverable.
  util::crash_point("supervise.ledger.serialize");
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& [key, e] : entries_) {
    w.str(key.first);
    w.u64(key.second);
    w.u32(e.failures);
    w.u32(e.hangs);
    w.u32(e.node_kills);
    w.u32(static_cast<std::uint32_t>(e.nodes_killed.size()));
    for (int n : e.nodes_killed) w.u32(static_cast<std::uint32_t>(n));
    w.u8(e.quarantined ? 1 : 0);
    w.f64(e.first_strike_s);
    w.f64(e.quarantined_at_s);
  }
  return std::move(w).take();
}

void QuarantineLedger::restore(const util::Bytes& bytes) {
  clear();
  util::ByteReader r(bytes);
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string type = r.str();
    const std::uint64_t payload = r.u64();
    Entry e;
    e.failures = r.u32();
    e.hangs = r.u32();
    e.node_kills = r.u32();
    const std::uint32_t nn = r.u32();
    e.nodes_killed.reserve(nn);
    for (std::uint32_t j = 0; j < nn; ++j)
      e.nodes_killed.push_back(static_cast<int>(r.u32()));
    e.quarantined = r.u8() != 0;
    e.first_strike_s = r.f64();
    e.quarantined_at_s = r.f64();
    if (e.quarantined) ++n_quarantined_;
    entries_.emplace(Key{std::move(type), payload}, std::move(e));
  }
}

void QuarantineLedger::clear() {
  entries_.clear();
  n_quarantined_ = 0;
}

}  // namespace mummi::supervise
