// Node health scoring and probation (paper Sec. 4.4).
//
// The paper reports nodes that fail repeatedly — bad GPUs, sick burst
// buffers — and the operational fix: pull the node out of rotation, probe it,
// and only return it once a probe succeeds. NodeHealthTracker mirrors that as
// a per-node state machine over virtual time:
//
//   kHealthy --(>= threshold failures within window)--> kDrained
//   kDrained --(probation_s elapsed)-->                 ready for a canary
//   kProbing --(canary succeeds)-->                     kHealthy (undrained)
//   kProbing --(canary fails)-->                        kDrained, backoff x2
//
// The tracker only *decides*; draining, undraining and canary submission are
// carried out by the Supervisor so that every action lands in the decision
// log. All state is plain counters + times: deterministic and replayable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mummi::supervise {

enum class NodeState : std::uint8_t { kHealthy, kDrained, kProbing };

[[nodiscard]] const char* to_string(NodeState s);

struct NodeHealthConfig {
  int failure_threshold = 3;    // failures within `window_s` to drain
  double window_s = 3600.0;     // sliding failure window
  double probation_s = 600.0;   // drain time before the first canary
  double backoff_factor = 2.0;  // probation multiplier per failed canary
  double max_probation_s = 4 * 3600.0;
};

class NodeHealthTracker {
 public:
  NodeHealthTracker() = default;
  NodeHealthTracker(int nodes, NodeHealthConfig cfg);

  void reset(int nodes, NodeHealthConfig cfg);

  /// Records a job failure attributed to `node` at virtual time `now`.
  /// Returns true when this failure trips the threshold and the node should
  /// be drained (the caller transitions it via mark_drained()).
  bool record_failure(int node, double now);

  /// Caller drained the node; starts the probation timer.
  void mark_drained(int node, double now);

  /// Nodes whose probation expired by `now` (ascending) — each should get a
  /// canary; caller then calls mark_probing().
  [[nodiscard]] std::vector<int> due_for_probe(double now) const;
  void mark_probing(int node);

  /// Canary verdict. Success returns the node to kHealthy (caller undrains);
  /// failure re-drains with doubled probation.
  void canary_result(int node, bool ok, double now);

  /// External node death (e.g. injected crash) — forget state so a recovered
  /// node starts with a clean score.
  void node_crashed(int node);

  [[nodiscard]] NodeState state(int node) const;
  [[nodiscard]] int nodes() const { return static_cast<int>(slots_.size()); }
  [[nodiscard]] const NodeHealthConfig& config() const { return cfg_; }

 private:
  struct Slot {
    NodeState state = NodeState::kHealthy;
    std::vector<double> recent_failures;  // times within window, ascending
    double drained_at = 0.0;
    double probation_s = 0.0;  // current (possibly backed-off) probation
  };

  void prune(Slot& s, double now) const;

  NodeHealthConfig cfg_;
  std::vector<Slot> slots_;
};

}  // namespace mummi::supervise
