#include "supervise/supervisor.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.hpp"

namespace mummi::supervise {

void SupervisionStats::merge(const SupervisionStats& o) {
  hangs_detected += o.hangs_detected;
  speculations += o.speculations;
  spec_wins += o.spec_wins;
  spec_losses += o.spec_losses;
  quarantined += o.quarantined;
  node_probations += o.node_probations;
  canaries_ok += o.canaries_ok;
  canaries_failed += o.canaries_failed;
  shed_transitions += o.shed_transitions;
  degraded_time_s += o.degraded_time_s;
  if (o.first_quarantine_s >= 0.0 &&
      (first_quarantine_s < 0.0 || o.first_quarantine_s < first_quarantine_s))
    first_quarantine_s = o.first_quarantine_s;
}

Supervisor::Supervisor(sched::Scheduler& scheduler, const util::Clock& clock,
                       WorkloadControl& control, SuperviseConfig cfg)
    : scheduler_(scheduler),
      clock_(clock),
      control_(control),
      cfg_(cfg),
      health_(scheduler.graph().n_nodes(), cfg.node_health) {
  tm_.hangs = &obs::counter("supervise.hangs_detected");
  tm_.speculations = &obs::counter("supervise.speculations");
  tm_.spec_wins = &obs::counter("supervise.spec_wins");
  tm_.spec_losses = &obs::counter("supervise.spec_losses");
  tm_.quarantined = &obs::counter("supervise.quarantined");
  tm_.probations = &obs::counter("supervise.node_probations");
  tm_.canaries_ok = &obs::counter("supervise.canaries_ok");
  tm_.canaries_failed = &obs::counter("supervise.canaries_failed");
  tm_.shed_transitions = &obs::counter("supervise.shed_transitions");
  tm_.shed_level = &obs::gauge("supervise.shed_level");
  tm_.degraded_time_s = &obs::gauge("supervise.degraded_time_s");

  scheduler_.on_start([this](const sched::Job& job) { on_start(job); });
  scheduler_.on_finish([this](const sched::Job& job) { on_finish(job); });
}

void Supervisor::set_timing(const std::string& type, JobTiming timing) {
  timings_[type] = timing;
}

void Supervisor::set_duration_stretch(std::function<double(double)> fn) {
  stretch_fn_ = std::move(fn);
}

double Supervisor::stretch(double now) const {
  return stretch_fn_ ? stretch_fn_(now) : 1.0;
}

double Supervisor::soft_deadline(const Watch& w, double now) const {
  const auto& t = timings_.at(w.type);
  const double base = std::max(t.mean_s, w.est_duration);
  return (cfg_.soft_factor * base + cfg_.soft_sigmas * t.sigma_s) *
         stretch(now);
}

double Supervisor::hard_deadline(const Watch& w, double now) const {
  const auto& t = timings_.at(w.type);
  const double base = std::max(t.mean_s, w.est_duration);
  return (cfg_.hard_factor * base + cfg_.hard_sigmas * t.sigma_s) *
         stretch(now);
}

void Supervisor::log(double now, const char* fmt, ...) {
  char detail[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(detail, sizeof detail, fmt, args);
  va_end(args);
  char line[320];
  std::snprintf(line, sizeof line, "t=%.3f %s", now, detail);
  decisions_.emplace_back(line);
}

std::string Supervisor::log_text() const {
  std::string out;
  for (const auto& line : decisions_) {
    out += line;
    out += '\n';
  }
  return out;
}

void Supervisor::on_start(const sched::Job& job) {
  Watch w;
  w.type = job.spec.type;
  w.payload = job.spec.payload;
  w.start_time = job.start_time;
  w.est_duration = job.spec.est_duration;
  if (!job.alloc.slots.empty()) w.node = job.alloc.slots.front().node;
  w.watched = timings_.count(w.type) != 0;

  if (auto it = job.spec.attrs.find("canary_node");
      it != job.spec.attrs.end()) {
    w.canary_node = std::atoi(it->second.c_str());
  }
  if (auto it = job.spec.attrs.find("twin_of"); it != job.spec.attrs.end()) {
    w.speculative = true;
    w.twin_of = static_cast<sched::JobId>(std::strtoull(
        it->second.c_str(), nullptr, 10));
  }

  const sched::JobId id = job.id;
  if (w.speculative) {
    twin_requested_.erase(w.twin_of);
    if (orphaned_originals_.erase(w.twin_of) > 0) {
      // The original finished while this twin sat in the queue: cancel it
      // before it burns a slot. The watch is dropped, not inserted.
      log(clock_.now(), "spec_orphan_cancel twin=%llu of=%llu",
          static_cast<unsigned long long>(id),
          static_cast<unsigned long long>(w.twin_of));
      scheduler_.cancel(id);
      return;
    }
    twin_by_original_[w.twin_of] = id;
    original_by_twin_[id] = w.twin_of;
  }
  watches_[id] = std::move(w);
}

void Supervisor::strike(const Watch& watch, StrikeKind kind, int node) {
  const double now = clock_.now();
  if (control_.quarantine().strike(watch.type, watch.payload, kind, now,
                                   node)) {
    ++stats_.quarantined;
    if (stats_.first_quarantine_s < 0.0) stats_.first_quarantine_s = now;
    tm_.quarantined->inc();
    log(now, "quarantine %s:%llu after %s", watch.type.c_str(),
        static_cast<unsigned long long>(watch.payload), to_string(kind));
  }
}

void Supervisor::handle_canary_finish(const Watch& watch,
                                      const sched::Job& job) {
  const double now = clock_.now();
  const bool ok = job.state == sched::JobState::kCompleted;
  health_.canary_result(watch.canary_node, ok, now);
  if (ok) {
    ++stats_.canaries_ok;
    tm_.canaries_ok->inc();
    scheduler_.undrain_node(watch.canary_node);
    log(now, "canary_ok node=%d undrained", watch.canary_node);
  } else if (job.state == sched::JobState::kFailed) {
    ++stats_.canaries_failed;
    tm_.canaries_failed->inc();
    log(now, "canary_failed node=%d backoff", watch.canary_node);
  }
  // kCancelled (teardown) leaves the node drained without a verdict.
}

void Supervisor::resolve_twin_finish(sched::JobId id, Watch& watch,
                                     const sched::Job& job) {
  const sched::JobId orig = watch.twin_of;
  original_by_twin_.erase(id);
  twin_by_original_.erase(orig);
  if (job.state == sched::JobState::kCompleted) {
    // Twin won; cancel the original if it is still in flight. The workload
    // already processed this completion (its callbacks run first).
    ++stats_.spec_wins;
    tm_.spec_wins->inc();
    log(clock_.now(), "spec_win twin=%llu of=%llu",
        static_cast<unsigned long long>(id),
        static_cast<unsigned long long>(orig));
    scheduler_.cancel(orig);
  }
  // kFailed: the original keeps running, nothing to do (the strike against
  // the shared payload was already recorded by the caller). kCancelled: we
  // cancelled it as the loser or at teardown.
}

void Supervisor::resolve_original_finish(sched::JobId id, Watch& watch,
                                         const sched::Job& job) {
  const bool requested_unstarted = twin_requested_.erase(id) > 0;
  auto it = twin_by_original_.find(id);
  const sched::JobId twin =
      it != twin_by_original_.end() ? it->second : sched::kInvalidJob;

  if (job.state == sched::JobState::kFailed) {
    // Keep a live twin as the payload's retry; the workload's resubmit veto
    // (has_live_twin) suppresses a duplicate resubmission.
    return;
  }
  // kCompleted or kCancelled: any twin is now redundant.
  if (requested_unstarted) {
    orphaned_originals_.insert(id);
    if (job.state == sched::JobState::kCompleted) {
      ++stats_.spec_losses;
      tm_.spec_losses->inc();
    }
  }
  if (twin != sched::kInvalidJob) {
    twin_by_original_.erase(id);
    original_by_twin_.erase(twin);
    if (job.state == sched::JobState::kCompleted) {
      ++stats_.spec_losses;
      tm_.spec_losses->inc();
      log(clock_.now(), "spec_loss twin=%llu of=%llu",
          static_cast<unsigned long long>(twin),
          static_cast<unsigned long long>(id));
    }
    scheduler_.cancel(twin);
  }
  (void)watch;
}

void Supervisor::on_finish(const sched::Job& job) {
  auto it = watches_.find(job.id);
  if (it == watches_.end()) return;
  Watch watch = std::move(it->second);
  watches_.erase(it);

  if (watch.canary_node >= 0) {
    handle_canary_finish(watch, job);
    return;
  }

  const double now = clock_.now();
  if (job.state == sched::JobState::kFailed) {
    if (job.killed_by_node) {
      // The node died under the job: strike the payload's node-kill column
      // (poison work takes nodes down with it) and reset the health score —
      // the crash is already handled by drain/recover.
      strike(watch, StrikeKind::kNodeKill, watch.node);
      health_.node_crashed(watch.node);
    } else {
      strike(watch, StrikeKind::kFailure, watch.node);
      if (health_.record_failure(watch.node, now)) {
        health_.mark_drained(watch.node, now);
        scheduler_.drain_node(watch.node);
        log(now, "node_drain node=%d failures_in_window=%d", watch.node,
            health_.config().failure_threshold);
      }
    }
  }

  if (watch.speculative)
    resolve_twin_finish(job.id, watch, job);
  else
    resolve_original_finish(job.id, watch, job);
}

bool Supervisor::has_live_twin(sched::JobId id) const {
  if (twin_requested_.count(id) > 0) return true;
  auto it = twin_by_original_.find(id);
  if (it == twin_by_original_.end()) return false;
  const auto state = scheduler_.job(it->second).state;
  return state == sched::JobState::kPending ||
         state == sched::JobState::kRunning;
}

void Supervisor::tick(double now) {
  // Pass 1: collect watchdog decisions over the ordered watch map; apply
  // after the sweep (cancel() re-enters on_finish and mutates watches_).
  std::vector<sched::JobId> hung;
  std::vector<sched::JobId> stragglers;
  for (auto& [id, w] : watches_) {
    if (!w.watched || w.canary_node >= 0) continue;
    const double elapsed = now - w.start_time;
    if (elapsed > hard_deadline(w, now)) {
      hung.push_back(id);
    } else if (elapsed > soft_deadline(w, now) && cfg_.speculate &&
               !w.speculative && !w.spec_requested &&
               speculations_launched_ < cfg_.max_speculations &&
               twin_by_original_.count(id) == 0 &&
               twin_requested_.count(id) == 0) {
      stragglers.push_back(id);
    }
  }

  for (sched::JobId id : hung) {
    const sched::Job job = scheduler_.job(id);  // copy: cancel invalidates
    const Watch watch = watches_.at(id);
    ++stats_.hangs_detected;
    tm_.hangs->inc();
    log(now, "hang_cancel job=%llu type=%s payload=%llu node=%d",
        static_cast<unsigned long long>(id), watch.type.c_str(),
        static_cast<unsigned long long>(watch.payload), watch.node);
    strike(watch, StrikeKind::kHang, watch.node);
    scheduler_.cancel(id);  // on_finish drops the watch, resolves any twin
    if (!watch.speculative) control_.resubmit_hung(job);
  }

  for (sched::JobId id : stragglers) {
    auto it = watches_.find(id);
    if (it == watches_.end()) continue;  // finished during hang handling
    const sched::Job& job = scheduler_.job(id);
    if (job.state != sched::JobState::kRunning) continue;
    if (control_.quarantine().quarantined(it->second.type,
                                          it->second.payload))
      continue;  // no point duplicating poison
    // Mark the request BEFORE launching: a synchronous backend starts the
    // twin inside launch_speculative(), and its on_start must find (and
    // clear) the twin_requested_ entry, not race ahead of it.
    it->second.spec_requested = true;
    twin_requested_.insert(id);
    if (!control_.launch_speculative(job)) {
      it->second.spec_requested = false;
      twin_requested_.erase(id);
      continue;
    }
    ++speculations_launched_;
    ++stats_.speculations;
    tm_.speculations->inc();
    log(now, "speculate job=%llu type=%s payload=%llu elapsed=%.3f",
        static_cast<unsigned long long>(id), it->second.type.c_str(),
        static_cast<unsigned long long>(it->second.payload),
        now - it->second.start_time);
  }

  // Node probation: expired drains get a canary.
  for (int node : health_.due_for_probe(now)) {
    if (!control_.submit_canary(node)) continue;
    health_.mark_probing(node);
    ++stats_.node_probations;
    tm_.probations->inc();
    log(now, "probe node=%d canary submitted", node);
  }

  apply_shed_policy(now);
}

void Supervisor::apply_shed_policy(double now) {
  const auto& graph = scheduler_.graph();
  const int n = graph.n_nodes();
  int drained = 0;
  for (int i = 0; i < n; ++i)
    if (graph.drained(i)) ++drained;
  const double healthy = n > 0 ? static_cast<double>(n - drained) / n : 1.0;

  int level = shed_level_;
  if (healthy < cfg_.critical_floor_frac) {
    level = 2;
  } else if (healthy < cfg_.degraded_floor_frac) {
    // Entering level 1, or recovering from level 2.
    if (shed_level_ < 1 ||
        healthy >= cfg_.critical_floor_frac + cfg_.recover_hysteresis_frac)
      level = 1;
  } else if (healthy >= cfg_.degraded_floor_frac + cfg_.recover_hysteresis_frac ||
             shed_level_ == 0) {
    level = 0;
  }

  if (level == shed_level_) return;
  log(now, "shed_level %d -> %d healthy=%.3f", shed_level_, level, healthy);
  if (shed_level_ == 0 && level > 0) degraded_since_ = now;
  if (shed_level_ > 0 && level == 0 && degraded_since_ >= 0.0) {
    stats_.degraded_time_s += now - degraded_since_;
    degraded_since_ = -1.0;
  }
  shed_level_ = level;
  ++stats_.shed_transitions;
  tm_.shed_transitions->inc();
  tm_.shed_level->set(level);
  tm_.degraded_time_s->set(stats_.degraded_time_s);
  control_.set_shed_level(level, now);
}

void Supervisor::finalize(double now) {
  if (shed_level_ > 0 && degraded_since_ >= 0.0) {
    stats_.degraded_time_s += now - degraded_since_;
    degraded_since_ = now;
    tm_.degraded_time_s->set(stats_.degraded_time_s);
  }
}

}  // namespace mummi::supervise
