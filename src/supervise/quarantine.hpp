// Poison-work quarantine (paper Sec. 4.4: "everything fails at scale").
//
// Retry policies key failure history by JobId, but a JobId is minted per
// submission: a work item that deterministically kills, hangs or crashes
// whatever runs it looks like a fresh job on every resubmission and burns
// restart budget (and nodes) forever. The ledger keys failure history by the
// *logical payload* — (job type, payload id) — so repeat offenders are
// recognized across resubmissions, allocations and even coordination-process
// crashes (the ledger serializes into the WorkflowManager checkpoint blob).
//
// Two quarantine criteria, both deterministic:
//   - `strike_limit` genuine failures + hangs, in any mix;
//   - node kills on `strike_limit` *distinct* nodes — one payload surviving
//     several node crashes is bad luck; one whose host dies everywhere it
//     lands is poison (the paper's "jobs that kill the node they run on").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace mummi::supervise {

enum class StrikeKind : std::uint8_t {
  kFailure,   // payload exited unsuccessfully on a healthy node
  kHang,      // watchdog cancelled the payload past its hard deadline
  kNodeKill,  // the node running the payload died
};

[[nodiscard]] const char* to_string(StrikeKind kind);

class QuarantineLedger {
 public:
  explicit QuarantineLedger(int strike_limit = 3)
      : strike_limit_(strike_limit) {}

  /// Strikes needed to quarantine; <= 0 disables quarantining (strikes are
  /// still recorded for diagnostics).
  void set_strike_limit(int n) { strike_limit_ = n; }
  [[nodiscard]] int strike_limit() const { return strike_limit_; }

  struct Entry {
    std::uint32_t failures = 0;
    std::uint32_t hangs = 0;
    std::uint32_t node_kills = 0;
    std::vector<int> nodes_killed;  // distinct, ascending
    bool quarantined = false;
    double first_strike_s = 0.0;
    double quarantined_at_s = -1.0;

    [[nodiscard]] std::uint32_t direct_strikes() const {
      return failures + hangs;
    }
  };

  /// Records one strike at virtual time `now`; `node` attributes kNodeKill
  /// strikes (ignored otherwise). Returns true when *this* strike pushed the
  /// payload over the limit (exactly one true per quarantined payload).
  bool strike(const std::string& type, std::uint64_t payload, StrikeKind kind,
              double now, int node = -1);

  [[nodiscard]] bool quarantined(const std::string& type,
                                 std::uint64_t payload) const;
  /// nullptr when the payload has no recorded history.
  [[nodiscard]] const Entry* find(const std::string& type,
                                  std::uint64_t payload) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t quarantined_count() const { return n_quarantined_; }
  /// "type:payload" keys of quarantined entries, ascending — a deterministic
  /// summary for logs, benches and determinism tests.
  [[nodiscard]] std::vector<std::string> quarantined_keys() const;

  /// Checkpointable state; restore() replaces the whole ledger (the strike
  /// limit is configuration and is not serialized).
  [[nodiscard]] util::Bytes serialize() const;
  void restore(const util::Bytes& bytes);
  void clear();

 private:
  using Key = std::pair<std::string, std::uint64_t>;
  std::map<Key, Entry> entries_;  // ordered: deterministic iteration
  int strike_limit_;
  std::size_t n_quarantined_ = 0;
};

}  // namespace mummi::supervise
