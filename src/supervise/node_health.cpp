#include "supervise/node_health.hpp"

#include <algorithm>

namespace mummi::supervise {

const char* to_string(NodeState s) {
  switch (s) {
    case NodeState::kHealthy: return "healthy";
    case NodeState::kDrained: return "drained";
    case NodeState::kProbing: return "probing";
  }
  return "?";
}

NodeHealthTracker::NodeHealthTracker(int nodes, NodeHealthConfig cfg) {
  reset(nodes, cfg);
}

void NodeHealthTracker::reset(int nodes, NodeHealthConfig cfg) {
  cfg_ = cfg;
  slots_.assign(static_cast<std::size_t>(nodes < 0 ? 0 : nodes), Slot{});
}

void NodeHealthTracker::prune(Slot& s, double now) const {
  auto keep = std::lower_bound(s.recent_failures.begin(),
                               s.recent_failures.end(), now - cfg_.window_s);
  s.recent_failures.erase(s.recent_failures.begin(), keep);
}

bool NodeHealthTracker::record_failure(int node, double now) {
  if (node < 0 || node >= nodes()) return false;
  Slot& s = slots_[static_cast<std::size_t>(node)];
  if (s.state != NodeState::kHealthy) return false;
  prune(s, now);
  s.recent_failures.push_back(now);
  return static_cast<int>(s.recent_failures.size()) >= cfg_.failure_threshold;
}

void NodeHealthTracker::mark_drained(int node, double now) {
  if (node < 0 || node >= nodes()) return;
  Slot& s = slots_[static_cast<std::size_t>(node)];
  s.state = NodeState::kDrained;
  s.drained_at = now;
  if (s.probation_s <= 0.0) s.probation_s = cfg_.probation_s;
  s.recent_failures.clear();
}

std::vector<int> NodeHealthTracker::due_for_probe(double now) const {
  std::vector<int> out;
  for (int i = 0; i < nodes(); ++i) {
    const Slot& s = slots_[static_cast<std::size_t>(i)];
    if (s.state == NodeState::kDrained && now >= s.drained_at + s.probation_s)
      out.push_back(i);
  }
  return out;
}

void NodeHealthTracker::mark_probing(int node) {
  if (node < 0 || node >= nodes()) return;
  slots_[static_cast<std::size_t>(node)].state = NodeState::kProbing;
}

void NodeHealthTracker::canary_result(int node, bool ok, double now) {
  if (node < 0 || node >= nodes()) return;
  Slot& s = slots_[static_cast<std::size_t>(node)];
  if (ok) {
    s = Slot{};  // fresh score: healthy, no history, base probation
    return;
  }
  s.state = NodeState::kDrained;
  s.drained_at = now;
  s.probation_s =
      std::min(s.probation_s * cfg_.backoff_factor, cfg_.max_probation_s);
}

void NodeHealthTracker::node_crashed(int node) {
  if (node < 0 || node >= nodes()) return;
  slots_[static_cast<std::size_t>(node)] = Slot{};
}

NodeState NodeHealthTracker::state(int node) const {
  if (node < 0 || node >= nodes()) return NodeState::kHealthy;
  return slots_[static_cast<std::size_t>(node)].state;
}

}  // namespace mummi::supervise
