// Reproduces the Sec. 4.1 data-rate accounting: per-component data
// production at a typical 1000-node allocation (3600 CG + 2400 AA
// simulations, one continuum run) — the basis of "several TBs of new data
// each day and over a billion files in total".

#include <cstdio>

#include "util/string_util.hpp"
#include "wm/perf_model.hpp"

using namespace mummi;

int main() {
  const wm::RateModel rates;
  constexpr double kDay = 86400.0;
  constexpr int kCgSims = 3600;
  constexpr int kAaSims = 2400;

  std::printf("=== Sec. 4.1 data rates at 1000-node scale "
              "(3600 CG + 2400 AA sims) ===\n\n");
  std::printf("%-34s %14s %16s %14s\n", "component", "per item", "cadence",
              "per day");

  auto row = [&](const char* name, double item_bytes, double interval_s,
                 double multiplicity) {
    const double daily = item_bytes * (kDay / interval_s) * multiplicity;
    std::printf("%-34s %14s %13.1f s %14s\n", name,
                util::human_bytes(item_bytes).c_str(), interval_s,
                util::human_bytes(daily).c_str());
    return daily;
  };

  double total = 0;
  total += row("continuum snapshot", rates.continuum_snapshot_bytes,
               rates.continuum_snapshot_interval_s, 1);
  total += row("patches (333/snapshot)", rates.patch_bytes * 333,
               rates.continuum_snapshot_interval_s, 1);
  total += row("CG trajectory frame (RAM disk)", rates.cg_frame_bytes,
               rates.cg_frame_interval_s, kCgSims);
  total += row("CG analysis output", rates.cg_analysis_bytes,
               rates.cg_frame_interval_s, kCgSims);
  total += row("AA trajectory frame (RAM disk)", rates.aa_frame_bytes,
               rates.aa_frame_interval_s, kAaSims);
  // Backmapping: each AA sim setup once per ~3.6 days of sim turnover.
  const double backmaps_per_day = kAaSims / 3.6;
  const double backmap_daily =
      (rates.backmap_local_bytes + rates.backmap_gpfs_bytes) * backmaps_per_day;
  std::printf("%-34s %14s %13s   %14s\n", "backmapping (2.9 GB local + 0.5 GPFS)",
              util::human_bytes(rates.backmap_local_bytes +
                                rates.backmap_gpfs_bytes).c_str(),
              "per setup",
              util::human_bytes(backmap_daily).c_str());
  total += backmap_daily;

  std::printf("\n%-34s %45s\n", "total produced per day",
              util::human_bytes(total).c_str());
  const double metadata_persisted =
      rates.continuum_snapshot_bytes * (kDay / rates.continuum_snapshot_interval_s) +
      rates.patch_bytes * 333 * (kDay / rates.continuum_snapshot_interval_s) +
      rates.cg_analysis_bytes * (kDay / rates.cg_frame_interval_s) * kCgSims +
      rates.backmap_gpfs_bytes * backmaps_per_day;
  // Trajectories live on RAM disk; ~10% of frames are archived to tar on
  // GPFS for retention (the pytaridx archives of "patches, snapshots,
  // analysis, and RDFs" plus selected frames).
  const double archived_frames =
      0.10 * (rates.cg_frame_bytes * (kDay / rates.cg_frame_interval_s) * kCgSims +
              rates.aa_frame_bytes * (kDay / rates.aa_frame_interval_s) * kAaSims);
  std::printf("%-34s %45s\n", "snapshots+analysis persisted/day",
              util::human_bytes(metadata_persisted).c_str());
  std::printf("%-34s %45s\n", "archived trajectory subsample/day",
              util::human_bytes(archived_frames).c_str());
  std::printf("%-34s %45s  (paper: \"several TBs ... each day\")\n",
              "new GPFS data per day",
              util::human_bytes(metadata_persisted + archived_frames).c_str());

  // File-count ledger toward the 1B total.
  const double cg_frames_per_day = (kDay / rates.cg_frame_interval_s) * kCgSims;
  const double files_per_day =
      (kDay / rates.continuum_snapshot_interval_s) * (1 + 333) +
      cg_frames_per_day * 5 /* frame + analysis sidecars */ +
      (kDay / rates.aa_frame_interval_s) * kAaSims + backmaps_per_day * 4;
  std::printf("%-34s %45.0f\n", "files created per day", files_per_day);
  std::printf("%-34s %45.0f  (paper total: 1,034,232,900)\n",
              "files over a 25-day x 4-allocation campaign",
              files_per_day * 25);
  std::printf("\narchived via pytaridx into ~114.5k tar files -> ~9000x fewer "
              "inodes.\n");
  return 0;
}
