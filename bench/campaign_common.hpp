// Shared helpers for the campaign-figure benches.
//
// Figs. 3-5 are statistics of the same campaign; each bench binary runs the
// campaign itself so `for b in build/bench/*; do $b; done` regenerates every
// figure independently. By default a 1/6-scale schedule keeps each binary
// under a minute; pass --full for the complete Table-1 schedule.
#pragma once

#include <cstdio>
#include <cstring>

#include "wm/campaign.hpp"

namespace mummi::bench {

inline wm::CampaignConfig campaign_config(int argc, char** argv) {
  wm::CampaignConfig config;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  const bool small = argc > 1 && std::strcmp(argv[1], "--small") == 0;
  if (small) {
    config.runs = {{100, 2, 2}, {500, 3, 1}, {1000, 4, 1}};
    config.proteins_per_snapshot = 60;
  } else if (!full) {
    // ~1/6 of the Table-1 node hours, same mix of scales.
    config.runs = {{100, 6, 1}, {100, 12, 1}, {500, 12, 1},
                   {1000, 24, 3}, {4000, 4, 1}};
    config.proteins_per_snapshot = 150;
  }
  return config;
}

inline const char* scale_label(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--full") == 0) return "full Table-1";
  if (argc > 1 && std::strcmp(argv[1], "--small") == 0) return "small";
  return "1/6-scale";
}

}  // namespace mummi::bench
