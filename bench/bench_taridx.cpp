// Reproduces the pytaridx results (Sec. 5.2): "we had compiled over 1
// billion files (1,034,232,900) across 114,552 tar archives — a 9000x
// reduction in the number of files (and inodes) while retaining efficient
// random access ... Reading from a tar file provides a throughput of ~575
// files/s or ~87.56 MB/s (at ~156 KB/file)."

#include <cstdio>
#include <unistd.h>
#include <filesystem>

#include "datastore/taridx.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

using namespace mummi;

int main() {
  std::printf("=== pytaridx: indexed tar archives ===\n\n");

  const auto dir = std::filesystem::temp_directory_path() /
                   ("mummi_taridx_bench_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "bench.tar").string();

  constexpr int kMembers = 1500;
  constexpr std::size_t kMemberSize = 156 * 1024;  // the paper's ~156 KB/file
  util::Rng rng(31);
  util::Bytes payload(kMemberSize);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng());

  double write_seconds = 0;
  {
    ds::TarIdx tar(path);
    util::Stopwatch watch;
    for (int i = 0; i < kMembers; ++i) {
      // Vary a prefix so members differ.
      payload[0] = static_cast<std::uint8_t>(i);
      tar.append("member-" + std::to_string(i), payload);
    }
    tar.flush();
    write_seconds = watch.elapsed();
  }

  // Random-access reads through the index (fresh handle: cold index load).
  ds::TarIdx tar(path);
  constexpr int kReads = 1000;
  util::Stopwatch watch;
  std::size_t bytes_read = 0;
  for (int r = 0; r < kReads; ++r) {
    const int i = static_cast<int>(rng.uniform_index(kMembers));
    const auto data = tar.read("member-" + std::to_string(i));
    bytes_read += data->size();
  }
  const double read_seconds = watch.elapsed();

  const double files_per_s = kReads / read_seconds;
  const double mb_per_s = bytes_read / read_seconds / 1e6;
  std::printf("archive: %d members x %zu KB -> %.1f MB in 2 inodes "
              "(tar + idx)\n",
              kMembers, kMemberSize / 1024,
              static_cast<double>(tar.data_bytes()) / 1e6);
  std::printf("write: %.0f files/s (%.1f MB/s)\n", kMembers / write_seconds,
              kMembers * static_cast<double>(kMemberSize) / write_seconds / 1e6);
  std::printf("random-access read: %.0f files/s, %.1f MB/s "
              "(paper: ~575 files/s, ~87.56 MB/s on GPFS)\n",
              files_per_s, mb_per_s);

  std::printf("\ncampaign-scale inode arithmetic (paper numbers):\n");
  const double files = 1034232900.0;
  const double archives = 114552.0;
  std::printf("  %.0f files / %.0f archives = %.0f files per archive\n",
              files, archives, files / archives);
  std::printf("  inode reduction: %.0fx (paper: ~9000x)\n",
              files / (archives * 2) * 2);
  std::printf("  largest archive in the paper: 6,723,600 members, ~455 GB\n");
  std::filesystem::remove_all(dir);
  return 0;
}
