// Reproduces the Sec. 5.2 matcher experiment: "Under Flux's emulated
// environment with a resource graph configuration similar to 4000 Summit
// nodes and the same job mix (24,000 jobs with 1 GPU and 3 CPU cores each,
// and 1 job with 150 nodes, each with 24 cores), we measured a 670x
// improvement" from the first-match policy over the exhaustive
// low-resource-ID traversal. Results land as JSON in
// bench_outputs/sched_matcher.json.
//
// Usage: bench_sched_matcher [--small]
//   --small runs a reduced cluster / job mix (for quick checks / CI).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "resgraph/matcher.hpp"
#include "util/clock.hpp"

using namespace mummi;

namespace {

struct MatchRun {
  std::uint64_t visits = 0;
  double wall_seconds = 0;
  int placed = 0;
};

MatchRun run_mix(sched::Matcher& matcher, int nodes, int gpu_jobs,
                 int continuum_nodes, int measure_first,
                 double& extrapolated_seconds) {
  sched::ResourceGraph graph(sched::ClusterSpec::summit(nodes));
  MatchRun result;

  // The one continuum-style job: `continuum_nodes` nodes x 24 cores.
  sched::Request continuum;
  continuum.slot = sched::Slot{24, 0};
  continuum.nslots = continuum_nodes;
  continuum.one_slot_per_node = true;

  sched::Request sim;
  sim.slot = sched::Slot{3, 1};

  util::Stopwatch watch;
  if (auto alloc = matcher.match(graph, continuum)) {
    graph.allocate(*alloc);
    ++result.placed;
  }
  int measured = 0;
  double measured_time = 0;
  for (int j = 0; j < gpu_jobs; ++j) {
    if (j == measure_first) measured_time = watch.elapsed(), measured = j;
    const auto alloc = matcher.match(graph, sim);
    if (!alloc) break;
    graph.allocate(*alloc);
    ++result.placed;
  }
  result.wall_seconds = watch.elapsed();
  result.visits = matcher.visits();
  if (measured > 0 && result.placed - 1 > measured) {
    // Per-match cost is ~constant for the exhaustive policy; extrapolate in
    // case the caller truncated the measured range.
    extrapolated_seconds =
        measured_time / measured * static_cast<double>(gpu_jobs);
  } else {
    extrapolated_seconds = result.wall_seconds;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool small = argc > 1 && std::strcmp(argv[1], "--small") == 0;
  const int nodes = small ? 250 : 4000;
  const int jobs = small ? 1500 : 24000;
  const int continuum_nodes = small ? 16 : 150;

  std::printf("=== Sec. 5.2: matcher policy at %d-node scale ===\n", nodes);
  std::printf("job mix: 1 x (%d nodes x 24 cores) + %d x (1 GPU + 3 "
              "cores)\n\n", continuum_nodes, jobs);

  sched::FirstMatchMatcher fast;
  double fast_extrap = 0;
  const auto fm = run_mix(fast, nodes, jobs, continuum_nodes, 0, fast_extrap);

  sched::ExhaustiveMatcher slow;
  double slow_extrap = 0;
  const auto ex =
      run_mix(slow, nodes, jobs, continuum_nodes, small ? 200 : 2000,
              slow_extrap);

  std::printf("%-26s %18s %14s %10s\n", "policy", "vertex visits",
              "wall seconds", "placed");
  std::printf("%-26s %18llu %14.3f %10d\n", "first-match (the fix)",
              static_cast<unsigned long long>(fm.visits), fm.wall_seconds,
              fm.placed);
  std::printf("%-26s %18llu %14.3f %10d\n", "exhaustive low-id (stock)",
              static_cast<unsigned long long>(ex.visits), ex.wall_seconds,
              ex.placed);

  const double visit_ratio =
      static_cast<double>(ex.visits) / static_cast<double>(fm.visits);
  const double wall_ratio = ex.wall_seconds / std::max(fm.wall_seconds, 1e-9);
  std::printf("\ntraversal-cost improvement: %.0fx\n", visit_ratio);
  std::printf("wall-clock improvement:     %.0fx\n", wall_ratio);
  std::printf("(paper: 670x end-to-end in Flux's emulated environment; the "
              "shape to hold is\n two or more orders of magnitude from "
              "greedy first-match placement)\n");

  std::filesystem::create_directories("bench_outputs");
  const std::string path = "bench_outputs/sched_matcher.json";
  FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"sched_matcher\",\n");
  std::fprintf(out, "  \"scale\": \"%s\",\n  \"nodes\": %d,\n  \"jobs\": %d,\n",
               small ? "small" : "full", nodes, jobs);
  std::fprintf(out,
               "  \"first_match\": {\"visits\": %llu, \"wall_seconds\": %.6f, "
               "\"placed\": %d},\n",
               static_cast<unsigned long long>(fm.visits), fm.wall_seconds,
               fm.placed);
  std::fprintf(out,
               "  \"exhaustive\": {\"visits\": %llu, \"wall_seconds\": %.6f, "
               "\"placed\": %d, \"extrapolated_seconds\": %.6f},\n",
               static_cast<unsigned long long>(ex.visits), ex.wall_seconds,
               ex.placed, slow_extrap);
  std::fprintf(out, "  \"visit_ratio\": %.3f,\n  \"wall_ratio\": %.3f\n}\n",
               visit_ratio, wall_ratio);
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
