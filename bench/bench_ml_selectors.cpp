// Ablation for the ~165x ML-data claim (Sec. 1, Task 2): the farthest-point
// Patch Selector is viable up to ~35,000 candidates per queue (rank update
// 3-4 min when full), whereas the histogram-based Frame Selector sustains
// ~9M candidates in the same budget — "capable of providing significantly
// faster updates to ranking: 3-4 minutes for 9M candidates".
//
// We measure, for each sampler, the wall time of the full
// ingest -> rank-update -> select cycle as candidate volume grows, and
// report candidates-per-second of ranking work.

#include <cstdio>

#include "ml/binned_sampler.hpp"
#include "ml/fps_sampler.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

using namespace mummi;

namespace {

std::vector<ml::HDPoint> random_patches(int n, int dim, util::Rng& rng,
                                        ml::PointId base) {
  std::vector<ml::HDPoint> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ml::HDPoint p;
    p.id = base + static_cast<ml::PointId>(i);
    p.coords.resize(static_cast<std::size_t>(dim));
    for (auto& c : p.coords) c = static_cast<float>(rng.normal());
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace

int main() {
  util::Rng rng(23);

  std::printf("=== ML selector scaling: FPS (9-D) vs binned (3-D) ===\n\n");

  std::printf("farthest-point sampler (Patch Selector), capacity 35k, after "
              "500 prior selections:\n");
  std::printf("%12s %16s %18s\n", "#candidates", "cycle time (s)",
              "candidates/s");
  double fps_rate_at_35k = 0;
  for (int n : {5000, 15000, 35000}) {
    ml::FpsSampler fps(9, 35000);
    fps.set_history_enabled(false);
    // Prior selections so rank updates have a real selected set to query.
    fps.add_candidates(random_patches(500, 9, rng, 1));
    (void)fps.select(500);
    fps.add_candidates(random_patches(n, 9, rng, 1000000));
    util::Stopwatch watch;
    fps.update_ranks();
    (void)fps.select(10);
    const double dt = watch.elapsed();
    const double rate = n / dt;
    if (n == 35000) fps_rate_at_35k = rate;
    std::printf("%12d %16.3f %18.0f\n", n, dt, rate);
  }

  std::printf("\nbinned sampler (Frame Selector), 6x8x6 bins:\n");
  std::printf("%12s %16s %18s\n", "#candidates", "cycle time (s)",
              "candidates/s");
  double binned_rate = 0;
  for (int n : {100000, 1000000, 4000000}) {
    ml::BinnedSampler binned({{15, 30, 45, 60, 75},
                              {45, 90, 135, 180, 225, 270, 315},
                              {0.5, 1.0, 1.5, 2.0, 2.5}},
                             0.8, 3);
    binned.set_history_enabled(false);
    util::Stopwatch watch;
    constexpr int kBatch = 100000;
    for (int done = 0; done < n; done += kBatch) {
      std::vector<ml::HDPoint> batch;
      batch.reserve(kBatch);
      for (int i = 0; i < kBatch; ++i) {
        batch.push_back({static_cast<ml::PointId>(done + i),
                         {static_cast<float>(rng.uniform(0, 90)),
                          static_cast<float>(rng.uniform(0, 360)),
                          static_cast<float>(rng.uniform(0, 3))}});
      }
      binned.add_candidates(batch);
    }
    binned.update_ranks();
    (void)binned.select(10);
    const double dt = watch.elapsed();
    binned_rate = n / dt;
    std::printf("%12d %16.3f %18.0f\n", n, dt, binned_rate);
  }

  std::printf("\ncandidate volume sustainable per ranking budget: binned/FPS "
              "= %.0fx\n", binned_rate / fps_rate_at_35k);
  std::printf("(paper: 9,837,316 binned candidates vs 5 x 35,000 FPS "
              "candidates ~ 56x pool size,\n delivered by ~165x more "
              "candidate data processed in the same 3-4 min budget)\n");
  return 0;
}
