// Ablation for the ~165x ML-data claim (Sec. 1, Task 2): the farthest-point
// Patch Selector is viable up to ~35,000 candidates per queue (rank update
// 3-4 min when full), whereas the histogram-based Frame Selector sustains
// ~9M candidates in the same budget — "capable of providing significantly
// faster updates to ranking: 3-4 minutes for 9M candidates".
//
// We measure, for each sampler, the wall time of the full
// ingest -> rank-update -> select cycle as candidate volume grows, and
// report candidates-per-second of ranking work. Results land as JSON in
// bench_outputs/ml_selectors.json so the scaling curve can be replotted
// without rerun.
//
// Usage: bench_ml_selectors [--small]
//   --small runs reduced candidate volumes (for quick checks / CI).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "ml/binned_sampler.hpp"
#include "ml/fps_sampler.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

using namespace mummi;

namespace {

std::vector<ml::HDPoint> random_patches(int n, int dim, util::Rng& rng,
                                        ml::PointId base) {
  std::vector<ml::HDPoint> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ml::HDPoint p;
    p.id = base + static_cast<ml::PointId>(i);
    p.coords.resize(static_cast<std::size_t>(dim));
    for (auto& c : p.coords) c = static_cast<float>(rng.normal());
    out.push_back(std::move(p));
  }
  return out;
}

struct Row {
  std::string sampler;
  int candidates = 0;
  double cycle_seconds = 0;
  double rate = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const bool small = argc > 1 && std::strcmp(argv[1], "--small") == 0;
  util::Rng rng(23);

  const std::vector<int> fps_sizes =
      small ? std::vector<int>{1000, 3000} : std::vector<int>{5000, 15000, 35000};
  const std::vector<int> binned_sizes =
      small ? std::vector<int>{20000, 50000}
            : std::vector<int>{100000, 1000000, 4000000};
  const int fps_capacity = small ? 7000 : 35000;
  const int fps_prior = small ? 100 : 500;

  std::printf("=== ML selector scaling: FPS (9-D) vs binned (3-D) ===\n\n");

  std::printf("farthest-point sampler (Patch Selector), capacity %dk, after "
              "%d prior selections:\n", fps_capacity / 1000, fps_prior);
  std::printf("%12s %16s %18s\n", "#candidates", "cycle time (s)",
              "candidates/s");
  std::vector<Row> rows;
  double fps_rate_at_max = 0;
  for (int n : fps_sizes) {
    ml::FpsSampler fps(9, static_cast<std::size_t>(fps_capacity));
    fps.set_history_enabled(false);
    // Prior selections so rank updates have a real selected set to query.
    fps.add_candidates(random_patches(fps_prior, 9, rng, 1));
    (void)fps.select(static_cast<std::size_t>(fps_prior));
    fps.add_candidates(random_patches(n, 9, rng, 1000000));
    util::Stopwatch watch;
    fps.update_ranks();
    (void)fps.select(10);
    const double dt = watch.elapsed();
    const double rate = n / dt;
    fps_rate_at_max = rate;
    rows.push_back({"fps", n, dt, rate});
    std::printf("%12d %16.3f %18.0f\n", n, dt, rate);
  }

  std::printf("\nbinned sampler (Frame Selector), 6x8x6 bins:\n");
  std::printf("%12s %16s %18s\n", "#candidates", "cycle time (s)",
              "candidates/s");
  double binned_rate = 0;
  for (int n : binned_sizes) {
    ml::BinnedSampler binned({{15, 30, 45, 60, 75},
                              {45, 90, 135, 180, 225, 270, 315},
                              {0.5, 1.0, 1.5, 2.0, 2.5}},
                             0.8, 3);
    binned.set_history_enabled(false);
    util::Stopwatch watch;
    const int kBatch = std::min(n, 100000);
    for (int done = 0; done < n; done += kBatch) {
      std::vector<ml::HDPoint> batch;
      batch.reserve(static_cast<std::size_t>(kBatch));
      for (int i = 0; i < kBatch; ++i) {
        batch.push_back({static_cast<ml::PointId>(done + i),
                         {static_cast<float>(rng.uniform(0, 90)),
                          static_cast<float>(rng.uniform(0, 360)),
                          static_cast<float>(rng.uniform(0, 3))}});
      }
      binned.add_candidates(batch);
    }
    binned.update_ranks();
    (void)binned.select(10);
    const double dt = watch.elapsed();
    binned_rate = n / dt;
    rows.push_back({"binned", n, dt, binned_rate});
    std::printf("%12d %16.3f %18.0f\n", n, dt, binned_rate);
  }

  const double ratio = binned_rate / fps_rate_at_max;
  std::printf("\ncandidate volume sustainable per ranking budget: binned/FPS "
              "= %.0fx\n", ratio);
  std::printf("(paper: 9,837,316 binned candidates vs 5 x 35,000 FPS "
              "candidates ~ 56x pool size,\n delivered by ~165x more "
              "candidate data processed in the same 3-4 min budget)\n");

  std::filesystem::create_directories("bench_outputs");
  const std::string path = "bench_outputs/ml_selectors.json";
  FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"ml_selectors\",\n");
  std::fprintf(out, "  \"scale\": \"%s\",\n", small ? "small" : "full");
  std::fprintf(out, "  \"binned_over_fps_ratio\": %.3f,\n  \"rows\": [\n",
               ratio);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(out,
                 "    {\"sampler\": \"%s\", \"candidates\": %d, "
                 "\"cycle_seconds\": %.6f, \"candidates_per_second\": %.1f}%s\n",
                 r.sampler.c_str(), r.candidates, r.cycle_seconds, r.rate,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
