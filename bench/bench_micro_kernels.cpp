// google-benchmark micro-kernels: the hot loops behind the substrates.
// Useful for regression-tracking the library itself (not a paper figure).
//
// `--md-kernels [--small]` switches to the MD force-engine thread sweep
// instead: it runs the flat CSR kernel at 1/2/4/8 pool workers, checks the
// bit-identity contract, and writes bench_outputs/md_kernels.json with wall
// throughput plus a deterministic virtual-speedup model (bench_smoke.sh
// validates the JSON; wall scaling is host-dependent and informational).

#include <benchmark/benchmark.h>

#include <cstring>
#include <filesystem>
#include <unistd.h>

#include "continuum/gridsim2d.hpp"
#include "datastore/kv_cluster.hpp"
#include "datastore/taridx.hpp"
#include "mdengine/integrator.hpp"
#include "mdengine/parallel_kernels.hpp"
#include "mdengine/simulation.hpp"
#include "ml/ann_index.hpp"
#include "ml/fps_sampler.hpp"
#include "util/clock.hpp"
#include "util/npy.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace mummi;

namespace {

md::System make_fluid(int n, double box_len, std::uint64_t seed) {
  md::System s;
  s.box.length = {box_len, box_len, box_len};
  util::Rng rng(seed);
  const int per_side = static_cast<int>(std::ceil(std::cbrt(n)));
  const double spacing = box_len / per_side;
  int added = 0;
  for (int i = 0; i < per_side && added < n; ++i)
    for (int j = 0; j < per_side && added < n; ++j)
      for (int k = 0; k < per_side && added < n; ++k) {
        s.add_particle({(i + 0.5) * spacing, (j + 0.5) * spacing,
                        (k + 0.5) * spacing},
                       0, 72.0);
        ++added;
      }
  return s;
}

void BM_MdForceKernel(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  md::System s = make_fluid(n, std::cbrt(n / 8.0), 1);
  md::TypeMatrixForceField ff(1, 1.2);
  ff.set_pair(0, 0, {2.0, 0.47});
  md::NeighborList list(1.2, 0.3);
  list.build(s);
  for (auto _ : state) {
    std::fill(s.force.begin(), s.force.end(), md::Vec3{});
    benchmark::DoNotOptimize(ff.compute(s, list));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(list.pairs().size()));
}
BENCHMARK(BM_MdForceKernel)->Arg(1000)->Arg(8000);

void BM_NeighborRebuild(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  md::System s = make_fluid(n, std::cbrt(n / 8.0), 2);
  md::NeighborList list(1.2, 0.3);
  for (auto _ : state) list.build(s);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NeighborRebuild)->Arg(1000)->Arg(8000);

void BM_LangevinStep(benchmark::State& state) {
  md::System s = make_fluid(4096, 8.0, 3);
  auto ff = std::make_shared<md::TypeMatrixForceField>(1, 1.2);
  ff->set_pair(0, 0, {2.0, 0.47});
  md::Simulation sim(std::move(s), ff,
                     std::make_unique<md::Langevin>(310.0, 2.0, util::Rng(4)),
                     {});
  for (auto _ : state) sim.run(1);
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_LangevinStep);

void BM_DdftStep(benchmark::State& state) {
  cont::ContinuumConfig cfg;
  cfg.grid = static_cast<int>(state.range(0));
  cfg.inner_species = 8;
  cfg.outer_species = 6;
  cfg.n_proteins = 30;
  cont::GridSim2D sim(cfg);
  for (auto _ : state) sim.step(1);
  state.SetItemsProcessed(state.iterations() * cfg.grid * cfg.grid * 14);
}
BENCHMARK(BM_DdftStep)->Arg(64)->Arg(128);

void BM_NpyEncodeDecode(benchmark::State& state) {
  std::vector<float> data(37 * 37 * 14);
  util::Rng rng(5);
  for (auto& v : data) v = static_cast<float>(rng.uniform());
  const auto array = util::NpyArray::from_f32({14, 37, 37}, data);
  for (auto _ : state) {
    const auto bytes = util::npy_encode(array);
    benchmark::DoNotOptimize(util::npy_decode(bytes));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<long>(data.size() * 4));
}
BENCHMARK(BM_NpyEncodeDecode);

void BM_KvSetGet(benchmark::State& state) {
  ds::KvCluster kv(20);
  util::Bytes payload(850);
  int i = 0;
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(i++ % 10000);
    kv.set(key, payload);
    benchmark::DoNotOptimize(kv.get(key));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_KvSetGet);

void BM_TarAppend(benchmark::State& state) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("mummi_bm_tar_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  {
    ds::TarIdx tar((dir / "bm.tar").string());
    util::Bytes payload(17 * 1024);  // a CG analysis record
    int i = 0;
    for (auto _ : state) tar.append("m" + std::to_string(i++), payload);
    state.SetBytesProcessed(state.iterations() * 17 * 1024);
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_TarAppend);

void BM_KdTreeKnn(benchmark::State& state) {
  ml::KdTreeIndex index(9);
  util::Rng rng(6);
  for (int i = 0; i < 35000; ++i) {
    ml::HDPoint p;
    p.id = static_cast<ml::PointId>(i);
    p.coords.resize(9);
    for (auto& c : p.coords) c = static_cast<float>(rng.normal());
    index.add(p);
  }
  std::vector<float> q(9, 0.1f);
  for (auto _ : state) benchmark::DoNotOptimize(index.knn(q, 10));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KdTreeKnn);

void BM_FpsSelect(benchmark::State& state) {
  util::Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    ml::FpsSampler fps(9, 35000);
    fps.set_history_enabled(false);
    std::vector<ml::HDPoint> pts;
    for (int i = 0; i < 5000; ++i) {
      ml::HDPoint p;
      p.id = static_cast<ml::PointId>(i);
      p.coords.resize(9);
      for (auto& c : p.coords) c = static_cast<float>(rng.normal());
      pts.push_back(std::move(p));
    }
    fps.add_candidates(pts);
    state.ResumeTiming();
    benchmark::DoNotOptimize(fps.select(10));
  }
}
BENCHMARK(BM_FpsSelect);

// --- MD force-engine thread sweep (--md-kernels) -------------------------

/// The pre-refactor nonbonded kernel, kept here as the baseline: walks the
/// flattened (i, j) pair view in order, looks parameters up through the
/// bounds-checked accessor and recomputes the LJ cutoff shift per pair.
double legacy_force_kernel(const md::TypeMatrixForceField& ff, md::System& s,
                           const md::NeighborList& list) {
  const md::real rc = ff.cutoff();
  const md::real rc2 = rc * rc;
  md::real energy = 0;
  for (const auto& [i, j] : list.pairs()) {
    const md::Vec3 d = s.box.min_image(s.pos[i], s.pos[j]);
    const md::real r2 = d.norm2();
    if (r2 >= rc2 || r2 == 0) continue;
    const md::PairParams p = ff.pair(s.type[i], s.type[j]);
    md::real f_over_r = 0;
    if (p.epsilon > 0) {
      const md::real s2 = p.sigma * p.sigma / r2;
      const md::real s6 = s2 * s2 * s2;
      const md::real s12 = s6 * s6;
      const md::real sc2 = p.sigma * p.sigma / rc2;
      const md::real sc6 = sc2 * sc2 * sc2;
      energy += 4 * p.epsilon * (s12 - s6) - 4 * p.epsilon * (sc6 * sc6 - sc6);
      f_over_r += 24 * p.epsilon * (2 * s12 - s6) / r2;
    }
    const md::Vec3 f = f_over_r * d;
    s.force[static_cast<std::size_t>(i)] += f;
    s.force[static_cast<std::size_t>(j)] -= f;
  }
  return energy;
}

/// Deterministic speedup model for the block schedule: per-block costs are
/// the actual pair counts of the CSR rows in that block (plus the block's
/// share of the reduction pass), greedily list-scheduled onto T workers in
/// fixed block order. virtual_speedup = serial cost / makespan. Depends only
/// on the list and T — same answer on any host.
double virtual_speedup(const md::NeighborList& list, std::size_t n,
                       int threads) {
  const std::size_t block = md::detail::kernel_block(n);
  const std::size_t nblocks = md::detail::kernel_blocks(n);
  const auto& row_start = list.row_start();
  std::vector<double> cost(nblocks, 0.0);
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t lo = b * block;
    const std::size_t hi = std::min(lo + block, n);
    // Kernel: one pair walk per row; reduction: nblocks buffer adds per
    // particle of the block, far cheaper per item than a pair interaction.
    cost[b] = static_cast<double>(row_start[hi] - row_start[lo]) +
              0.05 * static_cast<double>(nblocks) *
                  static_cast<double>(hi - lo);
  }
  double serial = 0.0;
  for (const double c : cost) serial += c;
  std::vector<double> worker(static_cast<std::size_t>(threads), 0.0);
  for (std::size_t b = 0; b < nblocks; ++b) {
    auto least = std::min_element(worker.begin(), worker.end());
    *least += cost[b];
  }
  const double makespan = *std::max_element(worker.begin(), worker.end());
  return makespan > 0 ? serial / makespan : 1.0;
}

int run_md_kernels(bool small) {
  const int n = small ? 4000 : 20000;
  const int reps = small ? 5 : 20;
  md::System ref = make_fluid(n, std::cbrt(n / 8.0) * 1.2, 11);
  md::TypeMatrixForceField ff(1, 1.2);
  ff.set_pair(0, 0, {2.0, 0.47});

  md::NeighborList list(1.2, 0.3);
  list.build(ref);
  const std::size_t pairs = list.n_pairs();
  const std::size_t nblocks = md::detail::kernel_blocks(ref.size());
  std::printf("=== MD force kernel: thread sweep ===\n");
  std::printf("(n=%d, %zu pairs, %zu blocks, %d reps%s)\n\n", n, pairs,
              nblocks, reps, small ? ", --small" : "");

  // Serial reference forces: the bit-identity yardstick for every row.
  std::fill(ref.force.begin(), ref.force.end(), md::Vec3{});
  const double e_ref = ff.compute(ref, list, nullptr);
  const std::vector<md::Vec3> f_ref = ref.force;

  // Legacy-kernel baseline (serial by construction).
  double legacy_s = 0.0;
  {
    md::System s = make_fluid(n, std::cbrt(n / 8.0) * 1.2, 11);
    util::Stopwatch wall;
    double e = 0;
    for (int r = 0; r < reps; ++r) {
      std::fill(s.force.begin(), s.force.end(), md::Vec3{});
      e = legacy_force_kernel(ff, s, list);
    }
    legacy_s = wall.elapsed() / reps;
    benchmark::DoNotOptimize(e);
  }

  struct Row {
    int threads;
    double wall_s, wall_pairs_per_s, virt;
    bool identical;
  };
  std::vector<Row> rows;
  double flat_serial_s = 0.0;
  std::printf("%8s %12s %16s %14s %10s\n", "threads", "wall s/eval",
              "wall pairs/s", "virt speedup", "identical");
  for (const int threads : {1, 2, 4, 8}) {
    util::ThreadPool pool(static_cast<std::size_t>(threads));
    // A 1-worker pool takes the inline path; pass null to make that explicit.
    util::ThreadPool* p = threads > 1 ? &pool : nullptr;
    md::System s = make_fluid(n, std::cbrt(n / 8.0) * 1.2, 11);
    double e = 0;
    // Warm-up evaluation: first call sizes the scratch buffers.
    std::fill(s.force.begin(), s.force.end(), md::Vec3{});
    e = ff.compute(s, list, p);
    util::Stopwatch wall;
    for (int r = 0; r < reps; ++r) {
      std::fill(s.force.begin(), s.force.end(), md::Vec3{});
      e = ff.compute(s, list, p);
    }
    const double per_eval = wall.elapsed() / reps;
    if (threads == 1) flat_serial_s = per_eval;
    const bool identical =
        e == e_ref && s.force.size() == f_ref.size() &&
        std::memcmp(s.force.data(), f_ref.data(),
                    f_ref.size() * sizeof(md::Vec3)) == 0;
    const double virt = virtual_speedup(list, ref.size(), threads);
    const double pps =
        per_eval > 0 ? static_cast<double>(pairs) / per_eval : 0.0;
    std::printf("%8d %12.6f %16.0f %14.2f %10s\n", threads, per_eval, pps,
                virt, identical ? "yes" : "NO");
    rows.push_back({threads, per_eval, pps, virt, identical});
  }
  std::printf("\nlegacy pair-order kernel: %.6f s/eval (flat serial %.6f, "
              "%.2fx)\n",
              legacy_s, flat_serial_s,
              flat_serial_s > 0 ? legacy_s / flat_serial_s : 0.0);

  std::filesystem::create_directories("bench_outputs");
  std::FILE* f = std::fopen("bench_outputs/md_kernels.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write bench_outputs/md_kernels.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"md_kernels\",\n  \"n\": %d,\n"
               "  \"pairs\": %zu,\n  \"blocks\": %zu,\n"
               "  \"legacy_wall_s_per_eval\": %.9f,\n"
               "  \"flat_serial_wall_s_per_eval\": %.9f,\n"
               "  \"flat_vs_legacy_wall_speedup\": %.3f,\n  \"rows\": [\n",
               n, pairs, nblocks, legacy_s, flat_serial_s,
               flat_serial_s > 0 ? legacy_s / flat_serial_s : 0.0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"wall_s_per_eval\": %.9f, "
                 "\"wall_pairs_per_s\": %.1f, \"virtual_speedup\": %.3f, "
                 "\"identical\": %s}%s\n",
                 r.threads, r.wall_s, r.wall_pairs_per_s, r.virt,
                 r.identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote bench_outputs/md_kernels.json\n");
  for (const Row& r : rows)
    if (!r.identical) {
      std::fprintf(stderr, "md_kernels: forces diverged at %d threads\n",
                   r.threads);
      return 1;
    }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool md_kernels = false, small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--md-kernels") == 0) md_kernels = true;
    if (std::strcmp(argv[i], "--small") == 0) small = true;
  }
  if (md_kernels) return run_md_kernels(small);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
