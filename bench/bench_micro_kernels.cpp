// google-benchmark micro-kernels: the hot loops behind the substrates.
// Useful for regression-tracking the library itself (not a paper figure).

#include <benchmark/benchmark.h>

#include <filesystem>
#include <unistd.h>

#include "continuum/gridsim2d.hpp"
#include "datastore/kv_cluster.hpp"
#include "datastore/taridx.hpp"
#include "mdengine/integrator.hpp"
#include "mdengine/simulation.hpp"
#include "ml/ann_index.hpp"
#include "ml/fps_sampler.hpp"
#include "util/npy.hpp"
#include "util/rng.hpp"

using namespace mummi;

namespace {

md::System make_fluid(int n, double box_len, std::uint64_t seed) {
  md::System s;
  s.box.length = {box_len, box_len, box_len};
  util::Rng rng(seed);
  const int per_side = static_cast<int>(std::ceil(std::cbrt(n)));
  const double spacing = box_len / per_side;
  int added = 0;
  for (int i = 0; i < per_side && added < n; ++i)
    for (int j = 0; j < per_side && added < n; ++j)
      for (int k = 0; k < per_side && added < n; ++k) {
        s.add_particle({(i + 0.5) * spacing, (j + 0.5) * spacing,
                        (k + 0.5) * spacing},
                       0, 72.0);
        ++added;
      }
  return s;
}

void BM_MdForceKernel(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  md::System s = make_fluid(n, std::cbrt(n / 8.0), 1);
  md::TypeMatrixForceField ff(1, 1.2);
  ff.set_pair(0, 0, {2.0, 0.47});
  md::NeighborList list(1.2, 0.3);
  list.build(s);
  for (auto _ : state) {
    std::fill(s.force.begin(), s.force.end(), md::Vec3{});
    benchmark::DoNotOptimize(ff.compute(s, list));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(list.pairs().size()));
}
BENCHMARK(BM_MdForceKernel)->Arg(1000)->Arg(8000);

void BM_NeighborRebuild(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  md::System s = make_fluid(n, std::cbrt(n / 8.0), 2);
  md::NeighborList list(1.2, 0.3);
  for (auto _ : state) list.build(s);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NeighborRebuild)->Arg(1000)->Arg(8000);

void BM_LangevinStep(benchmark::State& state) {
  md::System s = make_fluid(4096, 8.0, 3);
  auto ff = std::make_shared<md::TypeMatrixForceField>(1, 1.2);
  ff->set_pair(0, 0, {2.0, 0.47});
  md::Simulation sim(std::move(s), ff,
                     std::make_unique<md::Langevin>(310.0, 2.0, util::Rng(4)),
                     {});
  for (auto _ : state) sim.run(1);
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_LangevinStep);

void BM_DdftStep(benchmark::State& state) {
  cont::ContinuumConfig cfg;
  cfg.grid = static_cast<int>(state.range(0));
  cfg.inner_species = 8;
  cfg.outer_species = 6;
  cfg.n_proteins = 30;
  cont::GridSim2D sim(cfg);
  for (auto _ : state) sim.step(1);
  state.SetItemsProcessed(state.iterations() * cfg.grid * cfg.grid * 14);
}
BENCHMARK(BM_DdftStep)->Arg(64)->Arg(128);

void BM_NpyEncodeDecode(benchmark::State& state) {
  std::vector<float> data(37 * 37 * 14);
  util::Rng rng(5);
  for (auto& v : data) v = static_cast<float>(rng.uniform());
  const auto array = util::NpyArray::from_f32({14, 37, 37}, data);
  for (auto _ : state) {
    const auto bytes = util::npy_encode(array);
    benchmark::DoNotOptimize(util::npy_decode(bytes));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<long>(data.size() * 4));
}
BENCHMARK(BM_NpyEncodeDecode);

void BM_KvSetGet(benchmark::State& state) {
  ds::KvCluster kv(20);
  util::Bytes payload(850);
  int i = 0;
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(i++ % 10000);
    kv.set(key, payload);
    benchmark::DoNotOptimize(kv.get(key));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_KvSetGet);

void BM_TarAppend(benchmark::State& state) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("mummi_bm_tar_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  {
    ds::TarIdx tar((dir / "bm.tar").string());
    util::Bytes payload(17 * 1024);  // a CG analysis record
    int i = 0;
    for (auto _ : state) tar.append("m" + std::to_string(i++), payload);
    state.SetBytesProcessed(state.iterations() * 17 * 1024);
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_TarAppend);

void BM_KdTreeKnn(benchmark::State& state) {
  ml::KdTreeIndex index(9);
  util::Rng rng(6);
  for (int i = 0; i < 35000; ++i) {
    ml::HDPoint p;
    p.id = static_cast<ml::PointId>(i);
    p.coords.resize(9);
    for (auto& c : p.coords) c = static_cast<float>(rng.normal());
    index.add(p);
  }
  std::vector<float> q(9, 0.1f);
  for (auto _ : state) benchmark::DoNotOptimize(index.knn(q, 10));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KdTreeKnn);

void BM_FpsSelect(benchmark::State& state) {
  util::Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    ml::FpsSampler fps(9, 35000);
    fps.set_history_enabled(false);
    std::vector<ml::HDPoint> pts;
    for (int i = 0; i < 5000; ++i) {
      ml::HDPoint p;
      p.id = static_cast<ml::PointId>(i);
      p.coords.resize(9);
      for (auto& c : p.coords) c = static_cast<float>(rng.normal());
      pts.push_back(std::move(p));
    }
    fps.add_candidates(pts);
    state.ResumeTiming();
    benchmark::DoNotOptimize(fps.select(10));
  }
}
BENCHMARK(BM_FpsSelect);

}  // namespace

BENCHMARK_MAIN();
