// Reproduces Figure 5: resource-occupancy distribution over 10-minute
// profile events. Paper headline: ">=98% GPU occupancy for more than 83% of
// the time", mean 93.73% / median 99.93% GPU; CPU mean 54.12% / median
// 50.48% (low by design: setup jobs run only when needed).
//
// This bench is also the telemetry showcase: it installs a TelemetryReport
// sink so the campaign's profile tick snapshots the metrics registry every
// 10 virtual minutes, then lands the series in bench_outputs/telemetry.json
// and the span trace in bench_outputs/trace_fig5.json (loadable in
// chrome://tracing or Perfetto). The registry occupancy histogram must agree
// with wm::Profiler exactly — both observe the same samples in the same
// order — and the bench asserts that.

#include <cmath>
#include <cstdlib>
#include <filesystem>

#include "bench/campaign_common.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

using namespace mummi;

int main(int argc, char** argv) {
  obs::MetricsRegistry::instance().reset();
  obs::Tracer::instance().clear();
  obs::TelemetryReport report("fig5_occupancy");
  obs::set_report_sink(&report);

  auto config = bench::campaign_config(argc, argv);
  wm::CampaignResult result = wm::Campaign(std::move(config)).run();
  obs::set_report_sink(nullptr);
  const auto& prof = result.profiler;

  std::printf("=== Figure 5: resource occupancy (%s) ===\n\n",
              bench::scale_label(argc, argv));
  std::printf("profile events: %zu (every 10 min of virtual time)\n\n",
              prof.events().size());

  std::printf("GPU occupancy histogram (%% of events per %% bin):\n%s\n",
              prof.gpu_histogram(20).ascii(46).c_str());
  std::printf("CPU occupancy histogram:\n%s\n",
              prof.cpu_histogram(20).ascii(46).c_str());

  std::printf("%-44s %8.2f%%  (paper: >83%%)\n",
              "fraction of time with >=98% GPU occupancy",
              100.0 * prof.fraction_gpu_at_least(0.98));
  std::printf("%-44s %8.2f%%  (paper: 93.73%%)\n", "mean GPU occupancy",
              100.0 * prof.mean_gpu_occupancy());
  std::printf("%-44s %8.2f%%  (paper: 99.93%%)\n", "median GPU occupancy",
              100.0 * prof.median_gpu_occupancy());
  std::printf("%-44s %8.2f%%  (paper: 54.12%%)\n", "mean CPU occupancy",
              100.0 * prof.mean_cpu_occupancy());
  std::printf("%-44s %8.2f%%  (paper: 50.48%%)\n", "median CPU occupancy",
              100.0 * prof.median_cpu_occupancy());
  std::printf("\nCPU occupancy is low by design: \"CPU jobs are to be "
              "scheduled only when needed\nto prevent simulations of stale "
              "configurations\" (Sec. 5.2).\n");

  if (obs::kCompiledIn) {
    // Cross-check: registry-side occupancy must match the Profiler exactly.
    const double reg_mean =
        obs::histogram("wm.occupancy.gpu", 0.0, 1.0000001, 20).mean();
    const double prof_mean = prof.mean_gpu_occupancy();
    std::printf("\ntelemetry registry mean GPU occupancy: %.9f "
                "(profiler: %.9f)\n",
                reg_mean, prof_mean);
    if (std::fabs(reg_mean - prof_mean) > 1e-9) {
      std::fprintf(stderr,
                   "fig5: registry/profiler occupancy mismatch (%.12f vs "
                   "%.12f)\n",
                   reg_mean, prof_mean);
      return 1;
    }
    std::printf("telemetry snapshots: %zu, trace events: %zu (%zu dropped)\n",
                report.samples(), obs::Tracer::instance().event_count(),
                obs::Tracer::instance().dropped());
    std::printf("\nspan summary (wall time of coordination work):\n%s",
                obs::Tracer::instance().summary().c_str());
  }

  std::filesystem::create_directories("bench_outputs");
  if (!report.write_json("bench_outputs/telemetry.json")) {
    std::fprintf(stderr, "cannot write bench_outputs/telemetry.json\n");
    return 1;
  }
  if (!obs::Tracer::instance().write_chrome_trace(
          "bench_outputs/trace_fig5.json")) {
    std::fprintf(stderr, "cannot write bench_outputs/trace_fig5.json\n");
    return 1;
  }
  std::printf("\nwrote bench_outputs/telemetry.json and "
              "bench_outputs/trace_fig5.json\n");
  return 0;
}
