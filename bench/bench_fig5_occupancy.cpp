// Reproduces Figure 5: resource-occupancy distribution over 10-minute
// profile events. Paper headline: ">=98% GPU occupancy for more than 83% of
// the time", mean 93.73% / median 99.93% GPU; CPU mean 54.12% / median
// 50.48% (low by design: setup jobs run only when needed).

#include "bench/campaign_common.hpp"

using namespace mummi;

int main(int argc, char** argv) {
  auto config = bench::campaign_config(argc, argv);
  wm::CampaignResult result = wm::Campaign(std::move(config)).run();
  const auto& prof = result.profiler;

  std::printf("=== Figure 5: resource occupancy (%s) ===\n\n",
              bench::scale_label(argc, argv));
  std::printf("profile events: %zu (every 10 min of virtual time)\n\n",
              prof.events().size());

  std::printf("GPU occupancy histogram (%% of events per %% bin):\n%s\n",
              prof.gpu_histogram(20).ascii(46).c_str());
  std::printf("CPU occupancy histogram:\n%s\n",
              prof.cpu_histogram(20).ascii(46).c_str());

  std::printf("%-44s %8.2f%%  (paper: >83%%)\n",
              "fraction of time with >=98% GPU occupancy",
              100.0 * prof.fraction_gpu_at_least(0.98));
  std::printf("%-44s %8.2f%%  (paper: 93.73%%)\n", "mean GPU occupancy",
              100.0 * prof.mean_gpu_occupancy());
  std::printf("%-44s %8.2f%%  (paper: 99.93%%)\n", "median GPU occupancy",
              100.0 * prof.median_gpu_occupancy());
  std::printf("%-44s %8.2f%%  (paper: 54.12%%)\n", "mean CPU occupancy",
              100.0 * prof.mean_cpu_occupancy());
  std::printf("%-44s %8.2f%%  (paper: 50.48%%)\n", "median CPU occupancy",
              100.0 * prof.median_cpu_occupancy());
  std::printf("\nCPU occupancy is low by design: \"CPU jobs are to be "
              "scheduled only when needed\nto prevent simulations of stale "
              "configurations\" (Sec. 5.2).\n");
  return 0;
}
