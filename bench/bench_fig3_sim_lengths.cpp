// Reproduces Figure 3: the distributions of CG and AA simulation lengths
// accumulated by the campaign ("thousands of CG and AA simulations with
// varying lengths"; paper totals: 34,523 CG sims up to 5 us; 9632 AA sims at
// 50-65 ns).

#include "bench/campaign_common.hpp"
#include "util/histogram.hpp"

using namespace mummi;

int main(int argc, char** argv) {
  auto config = bench::campaign_config(argc, argv);
  wm::CampaignResult result = wm::Campaign(std::move(config)).run();

  std::printf("=== Figure 3: simulation length distributions (%s) ===\n\n",
              bench::scale_label(argc, argv));

  util::Histogram cg(0.0, 5.2, 13);
  for (double len : result.cg_lengths_us) cg.add(len);
  std::printf("CG simulation lengths (us), total = %zu (paper: 34,523)\n",
              result.cg_lengths_us.size());
  std::printf("%s\n", cg.ascii(46).c_str());

  util::Histogram aa(0.0, 70.0, 14);
  for (double len : result.aa_lengths_ns) aa.add(len);
  std::printf("AA simulation lengths (ns), total = %zu (paper: 9632)\n",
              result.aa_lengths_ns.size());
  std::printf("%s\n", aa.ascii(46).c_str());

  std::printf("continuum trajectory: %.1f us in one simulation "
              "(paper: 20,507 us over the full campaign)\n",
              result.continuum_total_us);
  std::printf("CG trajectory total:  %.1f us (paper: 96,670 us)\n",
              result.cg_total_us);
  std::printf("AA trajectory total:  %.1f ns (paper: 326,000 ns)\n",
              result.aa_total_ns);

  // Shape checks the figure is meant to convey.
  const double cg_short = cg.total() > 0
      ? 1.0 - cg.fraction_at_least(2.5) : 0.0;
  std::printf("\nshape: %.0f%% of CG sims below 2.5 us (long-tail toward the "
              "5 us cap: %.0f%% at cap bin)\n",
              100.0 * cg_short,
              100.0 * cg.fraction_at_least(4.8));
  std::printf("shape: %.0f%% of AA sims between 45 and 70 ns\n",
              100.0 * aa.fraction_at_least(45.0));
  return 0;
}
