// Reproduces Figure 6: job ramp-up history.
//
// "We configured our runs to submit ~100 jobs/min. Whereas a typical
// 1000-node run took only an hour to load, our scaling run (using 4000
// nodes) revealed some scheduling bottlenecks where the submitted jobs took
// much longer to run ... the scheduling in Flux happened in large chunks
// followed by large periods of inactivity."
//
// Three scenarios:
//   A. 1000 nodes, sync Q<->R, exhaustive matcher  (production; smooth)
//   B. 4000 nodes, sync Q<->R, exhaustive matcher  (the pathology)
//   C. 4000 nodes, async Q<->R, first-match        (the fix, Sec. 5.2)

#include <cstdio>
#include <vector>

#include "event/sim_engine.hpp"
#include "sched/queue_manager.hpp"
#include "util/stats.hpp"

using namespace mummi;

namespace {

struct Sample {
  double hours;
  std::size_t running;
  std::size_t pending;  // submitted but not yet placed ("took much longer
                        // to run")
};

struct RampResult {
  std::vector<Sample> series;
  double hours_to_full = 0;
  double sustained_jobs_per_min = 0;
  double longest_stall_s = 0;  // longest gap between job starts after t0
  std::size_t peak_pending = 0;
};

RampResult run_ramp(int nodes, bool sync_qr, sched::MatchPolicy policy,
                    int gpu_jobs) {
  event::SimEngine engine;
  sched::Scheduler scheduler(sched::ClusterSpec::summit(nodes), policy,
                             engine.clock());
  sched::QueueConfig qcfg;
  qcfg.async_match = !sync_qr;
  qcfg.t_submit = 0.12;
  qcfg.per_visit = 8e-6;
  qcfg.match_overhead = 5e-3;
  sched::QueueManager queue(engine, scheduler, qcfg);

  RampResult result;
  double last_start = 0;
  scheduler.on_start([&](const sched::Job&) {
    const double now = engine.now();
    result.longest_stall_s =
        std::max(result.longest_stall_s, now - last_start);
    last_start = now;
    if (scheduler.running_count() == static_cast<std::size_t>(gpu_jobs))
      result.hours_to_full = now / 3600.0;
  });

  // The WM's submission throttle: a batch of 100 jobs per maintain tick
  // (~100 jobs/min).
  int submitted = 0;
  std::function<void()> submit_tick = [&] {
    for (int i = 0; i < 100 && submitted < gpu_jobs; ++i, ++submitted)
      queue.submit(sched::JobSpec::gpu_sim("sim", "cg_sim", 3));
    if (submitted < gpu_jobs) engine.schedule_after(60.0, submit_tick);
  };
  engine.schedule_after(60.0, submit_tick);

  // Sample running and pending counts every 2 minutes.
  std::function<void()> sample_tick = [&] {
    const std::size_t pending =
        scheduler.pending_count() + queue.submissions_waiting();
    result.series.push_back(
        Sample{engine.now() / 3600.0, scheduler.running_count(), pending});
    result.peak_pending = std::max(result.peak_pending, pending);
    if (scheduler.running_count() < static_cast<std::size_t>(gpu_jobs) &&
        engine.now() < 30 * 3600.0)
      engine.schedule_after(120.0, sample_tick);
  };
  engine.schedule_after(120.0, sample_tick);

  engine.run_until(30 * 3600.0);
  if (result.hours_to_full == 0) result.hours_to_full = 30.0;  // never filled
  result.sustained_jobs_per_min =
      static_cast<double>(scheduler.running_count()) /
      (result.hours_to_full * 60.0);
  return result;
}

void print_series(const char* label, const RampResult& r, int target) {
  std::printf("%s\n", label);
  std::printf("%8s %10s %10s\n", "hours", "running", "pending");
  // Downsample to ~24 rows.
  const std::size_t stride = std::max<std::size_t>(1, r.series.size() / 24);
  for (std::size_t i = 0; i < r.series.size(); i += stride)
    std::printf("%8.2f %10zu %10zu\n", r.series[i].hours, r.series[i].running,
                r.series[i].pending);
  if (!r.series.empty())
    std::printf("%8.2f %10zu %10zu\n", r.series.back().hours,
                r.series.back().running, r.series.back().pending);
  std::printf("  -> full at %.2f h; sustained %.0f jobs/min; longest "
              "scheduling gap %.0f s; peak backlog %zu (target %d jobs)\n\n",
              r.hours_to_full, r.sustained_jobs_per_min, r.longest_stall_s,
              r.peak_pending, target);
}

}  // namespace

int main() {
  std::printf("=== Figure 6: job ramp-up at ~100 submissions/min ===\n\n");

  const auto a = run_ramp(1000, true, sched::MatchPolicy::kExhaustiveLowId,
                          6000);
  print_series("A. 1000 nodes (6000 GPU jobs), sync Q<->R, exhaustive match:",
               a, 6000);

  const auto b = run_ramp(4000, true, sched::MatchPolicy::kExhaustiveLowId,
                          24000);
  print_series("B. 4000 nodes (24,000 GPU jobs), sync Q<->R, exhaustive "
               "match (the paper's pathology):",
               b, 24000);

  const auto c = run_ramp(4000, false, sched::MatchPolicy::kFirstMatch, 24000);
  print_series("C. 4000 nodes, async Q<->R + first-match (the fix):", c,
               24000);

  std::printf("shape checks:\n");
  std::printf("  A loads in ~1 h (paper: \"a typical 1000-node run took only "
              "an hour to load\"): %.2f h\n", a.hours_to_full);
  std::printf("  B takes several times longer with stalls (paper: ~15 h): "
              "%.2f h, longest scheduling gap %.0f s, backlog up to %zu "
              "jobs\n",
              b.hours_to_full, b.longest_stall_s, b.peak_pending);
  std::printf("  C restores the submission-limited ramp at 4000 nodes: %.2f "
              "h\n", c.hours_to_full);
  std::printf("  sustained rate vs SC'19 bundled scheduling (2040 jobs/h = "
              "34/min): %.1fx\n",
              a.sustained_jobs_per_min / 34.0);
  return 0;
}
