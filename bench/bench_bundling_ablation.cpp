// Ablation for the unbundled-scheduling design decision (paper Sec. 4.3):
//
// "Previously, MuMMI scaled the job scheduling by bundling simulations on
// compute nodes ... this bundling strategy prevents controlling each
// simulation explicitly, reducing the effective use of resources (with the
// worst case utilization of 1/4, when a single simulation keeps the job
// alive and continues to occupy the node). This limitation would only
// exacerbate when moving to Summit (6 GPUs/node leads to worst case
// utilization of 1/6)."
//
// We run the same ensemble of simulations with per-sim durations drawn from
// the campaign length model, either as independent 1-GPU jobs (unbundled) or
// as whole-node 6-sim bundles that hold all six GPUs until the slowest
// member finishes, and compare delivered GPU-time utilization.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace mummi;

namespace {

/// Draws per-simulation runtimes (days) from the campaign CG length model.
std::vector<double> sim_durations(int n, util::Rng& rng) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double target_us = std::min(5.0, 0.5 + rng.exponential(1.0 / 3.5));
    out.push_back(target_us / 1.04);  // days at 1.04 us/day
  }
  return out;
}

}  // namespace

int main() {
  util::Rng rng(29);
  constexpr int kGpusPerNode = 6;  // Summit; Sierra had 4
  constexpr int kSims = 24000;

  const auto durations = sim_durations(kSims, rng);
  double busy_gpu_days = 0;
  for (double d : durations) busy_gpu_days += d;

  // Unbundled: each GPU is released the moment its simulation ends; with
  // immediate turnover the delivered utilization of an occupied slot is 1.
  const double unbundled_util = 1.0;

  // Bundled: six sims share one node job; all six GPUs stay allocated until
  // max(duration of the bundle).
  double bundled_gpu_days = 0;
  util::RunningStats bundle_waste;
  int worst_case_bundles = 0;
  for (int b = 0; b < kSims / kGpusPerNode; ++b) {
    double longest = 0, sum = 0;
    for (int g = 0; g < kGpusPerNode; ++g) {
      const double d = durations[static_cast<std::size_t>(b * kGpusPerNode + g)];
      longest = std::max(longest, d);
      sum += d;
    }
    bundled_gpu_days += longest * kGpusPerNode;
    bundle_waste.add(sum / (longest * kGpusPerNode));
    // "Worst case": one long simulation keeps the bundle alive while the
    // other five finished long ago.
    if (sum / (longest * kGpusPerNode) < 2.0 / kGpusPerNode)
      ++worst_case_bundles;
  }
  const double bundled_util = busy_gpu_days / bundled_gpu_days;

  std::printf("=== Bundled vs unbundled scheduling (Sec. 4.3) ===\n\n");
  std::printf("ensemble: %d CG simulations, campaign length model, %d "
              "GPUs/node\n\n", kSims, kGpusPerNode);
  std::printf("%-34s %10s\n", "strategy", "GPU-time utilization");
  std::printf("%-34s %9.1f%%   (slot released at sim end)\n",
              "unbundled (1 job per simulation)", 100.0 * unbundled_util);
  std::printf("%-34s %9.1f%%   (node held until slowest of 6)\n",
              "bundled (6 sims per node job)", 100.0 * bundled_util);
  std::printf("\nper-bundle utilization: mean %.1f%%, min %.1f%% "
              "(theoretical worst case 1/%d = %.1f%%)\n",
              100.0 * bundle_waste.mean(), 100.0 * bundle_waste.min(),
              kGpusPerNode, 100.0 / kGpusPerNode);
  std::printf("bundles below 2/6 utilization: %d of %d\n", worst_case_bundles,
              kSims / kGpusPerNode);
  std::printf("\nunbundling costs %dx more jobs (the paper accepts a \"6x "
              "increase in the\nnumber of jobs\") and buys %.1f%% more "
              "delivered GPU time plus explicit\nper-simulation control.\n",
              kGpusPerNode, 100.0 * (unbundled_util - bundled_util));
  return 0;
}
