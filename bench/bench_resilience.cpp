// Resilience sweep: campaign goodput vs injected node-crash rate.
//
// Paper Sec. 4.4: "everything fails at scale" — the campaign survived node
// losses, Redis deaths and whole-workflow restarts. This bench quantifies the
// cost of that resilience machinery: the same seeded campaign runs under a
// sweep of node-crash rates, and the throughput/goodput curve shows how much
// science survives each failure regime. Results land as JSON in
// bench_outputs/resilience.json so the curve can be replotted without rerun.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "wm/campaign.hpp"

using namespace mummi;

namespace {

wm::CampaignConfig base_config(bool full) {
  wm::CampaignConfig config;
  if (full) {
    config.runs = {{100, 6, 1}, {500, 12, 1}, {1000, 24, 2}};
    config.proteins_per_snapshot = 150;
  } else {
    config.runs = {{50, 2, 2}, {100, 3, 1}};
    config.proteins_per_snapshot = 60;
  }
  config.seed = 7;
  return config;
}

struct Sample {
  double crash_rate_per_h = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t jobs_killed = 0;
  std::uint64_t patches_selected = 0;
  std::uint64_t cg_sims = 0;
  double cg_total_us = 0;
  double aa_total_ns = 0;
  double goodput_us_per_node_h = 0;
};

// Supervision sweep: the same hang/straggler/poison-laden campaign with the
// watchdog plane off vs on. Setup-heavy regime (fast setups, short sims, a
// small cluster) so every hung setup visibly starves the GPU pipeline — the
// configuration the campaign-level supervision tests validate.
wm::CampaignConfig supervised_config(bool full) {
  wm::CampaignConfig config;
  if (full) {
    config.runs = {{8, 6, 1}};
    config.proteins_per_snapshot = 40;
  } else {
    config.runs = {{4, 3, 1}};
    config.proteins_per_snapshot = 20;
  }
  config.perf.createsim_mean_s = 300;
  config.perf.backmap_mean_s = 300;
  config.cg_min_us = 0.05;
  config.cg_mean_us = 0.08;
  config.cg_max_us = 0.10;
  config.seed = 11;
  config.faults.seed = 9;
  return config;
}

struct SupSample {
  double hang_rate_per_h = 0;
  double unsup_cg_total_us = 0;
  double sup_cg_total_us = 0;
  double unsup_goodput = 0;
  double sup_goodput = 0;
  std::uint64_t hangs_detected = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t unsup_cg_sims = 0;
  std::uint64_t sup_cg_sims = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  const std::vector<double> rates = {0.0, 0.5, 1.0, 2.0, 4.0, 8.0};

  std::printf("=== Resilience sweep: goodput vs node-crash rate (%s) ===\n\n",
              full ? "full" : "small");
  std::printf("%10s %8s %8s %10s %8s %12s %14s\n", "crashes/h", "faults",
              "killed", "patches", "cg_sims", "cg_us", "us/node-hour");

  std::vector<Sample> samples;
  for (const double rate : rates) {
    auto config = base_config(full);
    config.faults.seed = 13;
    config.faults.node_crash_rate_per_h = rate;
    config.faults.node_down_mean_s = 600.0;
    const auto result = wm::Campaign(std::move(config)).run();

    Sample s;
    s.crash_rate_per_h = rate;
    s.faults_injected = result.faults_injected;
    s.jobs_killed = result.fault_jobs_killed;
    s.patches_selected = result.patches_selected;
    s.cg_sims = result.cg_lengths_us.size();
    s.cg_total_us = result.cg_total_us;
    s.aa_total_ns = result.aa_total_ns;
    s.goodput_us_per_node_h =
        result.node_hours > 0 ? result.cg_total_us / result.node_hours : 0.0;
    samples.push_back(s);

    std::printf("%10.1f %8llu %8llu %10llu %8llu %12.1f %14.4f\n", rate,
                static_cast<unsigned long long>(s.faults_injected),
                static_cast<unsigned long long>(s.jobs_killed),
                static_cast<unsigned long long>(s.patches_selected),
                static_cast<unsigned long long>(s.cg_sims), s.cg_total_us,
                s.goodput_us_per_node_h);
  }

  const double base = samples.front().goodput_us_per_node_h;
  if (base > 0) {
    std::printf("\ngoodput retained at max rate: %.1f%%\n",
                100.0 * samples.back().goodput_us_per_node_h / base);
  }

  std::filesystem::create_directories("bench_outputs");
  const std::string path = "bench_outputs/resilience.json";
  FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"resilience_sweep\",\n");
  std::fprintf(out, "  \"scale\": \"%s\",\n  \"samples\": [\n",
               full ? "full" : "small");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    std::fprintf(out,
                 "    {\"crash_rate_per_h\": %.3f, \"faults_injected\": %llu, "
                 "\"jobs_killed\": %llu, \"patches_selected\": %llu, "
                 "\"cg_sims\": %llu, \"cg_total_us\": %.3f, "
                 "\"aa_total_ns\": %.3f, \"goodput_us_per_node_h\": %.6f}%s\n",
                 s.crash_rate_per_h,
                 static_cast<unsigned long long>(s.faults_injected),
                 static_cast<unsigned long long>(s.jobs_killed),
                 static_cast<unsigned long long>(s.patches_selected),
                 static_cast<unsigned long long>(s.cg_sims), s.cg_total_us,
                 s.aa_total_ns, s.goodput_us_per_node_h,
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());

  // --- supervised-vs-unsupervised sweep ------------------------------------
  const std::vector<double> hang_rates = {0.0, 2.0, 4.0, 6.0, 8.0};
  std::printf("\n=== Supervision sweep: goodput vs job-hang rate ===\n\n");
  std::printf("%8s %12s %12s %10s %8s %8s\n", "hangs/h", "unsup_cg_us",
              "sup_cg_us", "recovered", "caught", "quar");

  std::vector<SupSample> sup_samples;
  for (const double rate : hang_rates) {
    auto config = supervised_config(full);
    config.faults.job_hang_rate_per_h = rate;
    const auto unsup = wm::Campaign(config).run();
    config.supervise.enabled = true;
    config.supervise.speculate = false;  // twins just queue on a tiny cluster
    const auto sup = wm::Campaign(config).run();

    SupSample s;
    s.hang_rate_per_h = rate;
    s.unsup_cg_total_us = unsup.cg_total_us;
    s.sup_cg_total_us = sup.cg_total_us;
    s.unsup_goodput =
        unsup.node_hours > 0 ? unsup.cg_total_us / unsup.node_hours : 0.0;
    s.sup_goodput = sup.node_hours > 0 ? sup.cg_total_us / sup.node_hours : 0.0;
    s.hangs_detected = sup.supervision.hangs_detected;
    s.quarantined = sup.supervision.quarantined;
    s.unsup_cg_sims = unsup.cg_lengths_us.size();
    s.sup_cg_sims = sup.cg_lengths_us.size();
    sup_samples.push_back(s);

    const double recovered = s.unsup_cg_total_us > 0
                                 ? s.sup_cg_total_us / s.unsup_cg_total_us
                                 : 1.0;
    std::printf("%8.1f %12.3f %12.3f %9.2fx %8llu %8llu\n", rate,
                s.unsup_cg_total_us, s.sup_cg_total_us, recovered,
                static_cast<unsigned long long>(s.hangs_detected),
                static_cast<unsigned long long>(s.quarantined));
  }

  // One combined sample on top of the pure-hang curve: stragglers and poison
  // payloads exercise the speculation and quarantine arms of the plane.
  auto combined_cfg = supervised_config(full);
  combined_cfg.faults.job_hang_rate_per_h = 4.0;
  combined_cfg.faults.straggler_rate_per_h = 2.0;
  combined_cfg.faults.straggler_factor = 4.0;
  combined_cfg.poison_payload_modulus = 7;
  const auto combined_unsup = wm::Campaign(combined_cfg).run();
  combined_cfg.supervise.enabled = true;
  combined_cfg.supervise.speculate = false;
  const auto combined_sup = wm::Campaign(combined_cfg).run();
  std::printf(
      "\ncombined (hang 4/h + straggler 2/h + poison 1-in-7): "
      "cg %.3f -> %.3f us, caught=%llu quarantined=%llu "
      "first_quarantine=%.0f s\n",
      combined_unsup.cg_total_us, combined_sup.cg_total_us,
      static_cast<unsigned long long>(combined_sup.supervision.hangs_detected),
      static_cast<unsigned long long>(combined_sup.supervision.quarantined),
      combined_sup.supervision.first_quarantine_s);

  const std::string sup_path = "bench_outputs/resilience_supervised.json";
  out = std::fopen(sup_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", sup_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"supervision_sweep\",\n");
  std::fprintf(out, "  \"scale\": \"%s\",\n  \"samples\": [\n",
               full ? "full" : "small");
  for (std::size_t i = 0; i < sup_samples.size(); ++i) {
    const auto& s = sup_samples[i];
    std::fprintf(
        out,
        "    {\"hang_rate_per_h\": %.3f, \"unsupervised_cg_total_us\": %.3f, "
        "\"supervised_cg_total_us\": %.3f, "
        "\"unsupervised_goodput_us_per_node_h\": %.6f, "
        "\"supervised_goodput_us_per_node_h\": %.6f, "
        "\"hangs_detected\": %llu, \"quarantined\": %llu, "
        "\"unsupervised_cg_sims\": %llu, \"supervised_cg_sims\": %llu}%s\n",
        s.hang_rate_per_h, s.unsup_cg_total_us, s.sup_cg_total_us,
        s.unsup_goodput, s.sup_goodput,
        static_cast<unsigned long long>(s.hangs_detected),
        static_cast<unsigned long long>(s.quarantined),
        static_cast<unsigned long long>(s.unsup_cg_sims),
        static_cast<unsigned long long>(s.sup_cg_sims),
        i + 1 < sup_samples.size() ? "," : ",");
  }
  std::fprintf(
      out,
      "    {\"combined\": true, \"hang_rate_per_h\": 4.0, "
      "\"straggler_rate_per_h\": 2.0, \"poison_payload_modulus\": 7, "
      "\"unsupervised_cg_total_us\": %.3f, \"supervised_cg_total_us\": %.3f, "
      "\"hangs_detected\": %llu, \"quarantined\": %llu, "
      "\"first_quarantine_s\": %.1f}\n",
      combined_unsup.cg_total_us, combined_sup.cg_total_us,
      static_cast<unsigned long long>(combined_sup.supervision.hangs_detected),
      static_cast<unsigned long long>(combined_sup.supervision.quarantined),
      combined_sup.supervision.first_quarantine_s);
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", sup_path.c_str());
  return 0;
}
