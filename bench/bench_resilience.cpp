// Resilience sweep: campaign goodput vs injected node-crash rate.
//
// Paper Sec. 4.4: "everything fails at scale" — the campaign survived node
// losses, Redis deaths and whole-workflow restarts. This bench quantifies the
// cost of that resilience machinery: the same seeded campaign runs under a
// sweep of node-crash rates, and the throughput/goodput curve shows how much
// science survives each failure regime. Results land as JSON in
// bench_outputs/resilience.json so the curve can be replotted without rerun.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "wm/campaign.hpp"

using namespace mummi;

namespace {

wm::CampaignConfig base_config(bool full) {
  wm::CampaignConfig config;
  if (full) {
    config.runs = {{100, 6, 1}, {500, 12, 1}, {1000, 24, 2}};
    config.proteins_per_snapshot = 150;
  } else {
    config.runs = {{50, 2, 2}, {100, 3, 1}};
    config.proteins_per_snapshot = 60;
  }
  config.seed = 7;
  return config;
}

struct Sample {
  double crash_rate_per_h = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t jobs_killed = 0;
  std::uint64_t patches_selected = 0;
  std::uint64_t cg_sims = 0;
  double cg_total_us = 0;
  double aa_total_ns = 0;
  double goodput_us_per_node_h = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  const std::vector<double> rates = {0.0, 0.5, 1.0, 2.0, 4.0, 8.0};

  std::printf("=== Resilience sweep: goodput vs node-crash rate (%s) ===\n\n",
              full ? "full" : "small");
  std::printf("%10s %8s %8s %10s %8s %12s %14s\n", "crashes/h", "faults",
              "killed", "patches", "cg_sims", "cg_us", "us/node-hour");

  std::vector<Sample> samples;
  for (const double rate : rates) {
    auto config = base_config(full);
    config.faults.seed = 13;
    config.faults.node_crash_rate_per_h = rate;
    config.faults.node_down_mean_s = 600.0;
    const auto result = wm::Campaign(std::move(config)).run();

    Sample s;
    s.crash_rate_per_h = rate;
    s.faults_injected = result.faults_injected;
    s.jobs_killed = result.fault_jobs_killed;
    s.patches_selected = result.patches_selected;
    s.cg_sims = result.cg_lengths_us.size();
    s.cg_total_us = result.cg_total_us;
    s.aa_total_ns = result.aa_total_ns;
    s.goodput_us_per_node_h =
        result.node_hours > 0 ? result.cg_total_us / result.node_hours : 0.0;
    samples.push_back(s);

    std::printf("%10.1f %8llu %8llu %10llu %8llu %12.1f %14.4f\n", rate,
                static_cast<unsigned long long>(s.faults_injected),
                static_cast<unsigned long long>(s.jobs_killed),
                static_cast<unsigned long long>(s.patches_selected),
                static_cast<unsigned long long>(s.cg_sims), s.cg_total_us,
                s.goodput_us_per_node_h);
  }

  const double base = samples.front().goodput_us_per_node_h;
  if (base > 0) {
    std::printf("\ngoodput retained at max rate: %.1f%%\n",
                100.0 * samples.back().goodput_us_per_node_h / base);
  }

  std::filesystem::create_directories("bench_outputs");
  const std::string path = "bench_outputs/resilience.json";
  FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"resilience_sweep\",\n");
  std::fprintf(out, "  \"scale\": \"%s\",\n  \"samples\": [\n",
               full ? "full" : "small");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    std::fprintf(out,
                 "    {\"crash_rate_per_h\": %.3f, \"faults_injected\": %llu, "
                 "\"jobs_killed\": %llu, \"patches_selected\": %llu, "
                 "\"cg_sims\": %llu, \"cg_total_us\": %.3f, "
                 "\"aa_total_ns\": %.3f, \"goodput_us_per_node_h\": %.6f}%s\n",
                 s.crash_rate_per_h,
                 static_cast<unsigned long long>(s.faults_injected),
                 static_cast<unsigned long long>(s.jobs_killed),
                 static_cast<unsigned long long>(s.patches_selected),
                 static_cast<unsigned long long>(s.cg_sims), s.cg_total_us,
                 s.aa_total_ns, s.goodput_us_per_node_h,
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
