// Resilience sweep: campaign goodput vs injected node-crash rate.
//
// Paper Sec. 4.4: "everything fails at scale" — the campaign survived node
// losses, Redis deaths and whole-workflow restarts. This bench quantifies the
// cost of that resilience machinery: the same seeded campaign runs under a
// sweep of node-crash rates, and the throughput/goodput curve shows how much
// science survives each failure regime. Results land as JSON in
// bench_outputs/resilience.json so the curve can be replotted without rerun.
//
// --crash-sweep instead runs the crash-consistency sweep (DESIGN.md 4i):
// every registered persistence boundary is killed once — campaign checkpoint
// ticks at a fixed tick, store operations mid-flight — recovery is attempted
// over the crashed on-disk state, and within-durability-group science
// fingerprints are compared. bench_outputs/crash_recovery.json reports
// points swept, recoveries and divergences (the contract demands zero).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

#include "datastore/fs_store.hpp"
#include "datastore/taridx.hpp"
#include "fault/crash_point.hpp"
#include "util/checkpoint.hpp"
#include "wm/campaign.hpp"

using namespace mummi;

namespace {

wm::CampaignConfig base_config(bool full) {
  wm::CampaignConfig config;
  if (full) {
    config.runs = {{100, 6, 1}, {500, 12, 1}, {1000, 24, 2}};
    config.proteins_per_snapshot = 150;
  } else {
    config.runs = {{50, 2, 2}, {100, 3, 1}};
    config.proteins_per_snapshot = 60;
  }
  config.seed = 7;
  return config;
}

struct Sample {
  double crash_rate_per_h = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t jobs_killed = 0;
  std::uint64_t patches_selected = 0;
  std::uint64_t cg_sims = 0;
  double cg_total_us = 0;
  double aa_total_ns = 0;
  double goodput_us_per_node_h = 0;
};

// Supervision sweep: the same hang/straggler/poison-laden campaign with the
// watchdog plane off vs on. Setup-heavy regime (fast setups, short sims, a
// small cluster) so every hung setup visibly starves the GPU pipeline — the
// configuration the campaign-level supervision tests validate.
wm::CampaignConfig supervised_config(bool full) {
  wm::CampaignConfig config;
  if (full) {
    config.runs = {{8, 6, 1}};
    config.proteins_per_snapshot = 40;
  } else {
    config.runs = {{4, 3, 1}};
    config.proteins_per_snapshot = 20;
  }
  config.perf.createsim_mean_s = 300;
  config.perf.backmap_mean_s = 300;
  config.cg_min_us = 0.05;
  config.cg_mean_us = 0.08;
  config.cg_max_us = 0.10;
  config.seed = 11;
  config.faults.seed = 9;
  return config;
}

struct SupSample {
  double hang_rate_per_h = 0;
  double unsup_cg_total_us = 0;
  double sup_cg_total_us = 0;
  double unsup_goodput = 0;
  double sup_goodput = 0;
  std::uint64_t hangs_detected = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t unsup_cg_sims = 0;
  std::uint64_t sup_cg_sims = 0;
};

// --- crash-consistency sweep -----------------------------------------------

struct SweepRow {
  std::string point;
  std::string mode;      // "campaign" or "store"
  bool crashed = false;  // the armed point actually fired
  bool recovered = false;
  bool divergent = false;
};

/// True if `got` matches one of the two legitimate post-crash states.
bool old_xor_new(const util::Bytes& got, const util::Bytes& old_v,
                 const util::Bytes& new_v) {
  return got == old_v || got == new_v;
}

wm::CampaignConfig crash_sweep_config(const std::string& ckpt_path) {
  wm::CampaignConfig cfg;
  cfg.runs = {{20, 1, 1}};
  cfg.proteins_per_snapshot = 20;
  cfg.perf.createsim_mean_s = 900;
  cfg.seed = 11;
  cfg.faults.node_crash_rate_per_h = 8.0;
  cfg.faults.node_down_mean_s = 300.0;
  cfg.faults.seed = 5;
  cfg.checkpoint_interval_s = 600;
  cfg.checkpoint_path = ckpt_path;
  return cfg;
}

/// Campaign half: kill checkpoint tick k at each boundary, resume, and
/// require byte-identical science fingerprints within each durability group.
void sweep_campaign(const std::filesystem::path& dir,
                    std::vector<SweepRow>& rows) {
  const std::vector<std::string> pre_group = {
      "wm.checkpoint.pre", "supervise.ledger.serialize", "ckpt.save.pre_tmp",
      "util.write_file.pre", "util.write_file.mid"};
  const std::vector<std::string> post_group = {
      "util.write_file.post", "ckpt.save.post_tmp", "ckpt.save.post_bak",
      "ckpt.save.post_rename", "wm.checkpoint.post"};

  fault::ScopedCrashHarness harness;
  auto& reg = harness.registry();
  const std::uint64_t k = 2;  // steady-state tick: generation k-1 exists

  int idx = 0;
  for (const auto* group : {&pre_group, &post_group}) {
    util::Bytes reference;
    for (const auto& point : *group) {
      SweepRow row;
      row.point = point;
      row.mode = "campaign";
      auto cfg = crash_sweep_config(
          (dir / ("campaign_" + std::to_string(idx++) + ".ckpt")).string());
      reg.reset();
      reg.arm(point, k);
      try {
        (void)wm::Campaign(cfg).run();
      } catch (const fault::SimulatedCrash&) {
        row.crashed = true;
      }
      reg.disarm();
      if (row.crashed) {
        const auto result = wm::Campaign(cfg).run();
        row.recovered =
            result.resumed_from_checkpoint && result.patches_selected > 0;
        const auto fp = result.science_fingerprint();
        if (reference.empty()) reference = fp;
        row.divergent = fp != reference;
      }
      std::printf("  %-28s crashed=%d recovered=%d divergent=%d\n",
                  point.c_str(), row.crashed, row.recovered, row.divergent);
      rows.push_back(std::move(row));
    }
  }
}

/// Store half: FsStore, CheckpointFile and TarIdx killed mid-operation; the
/// recovered state must be old-xor-new, never torn.
void sweep_stores(const std::filesystem::path& dir,
                  std::vector<SweepRow>& rows) {
  fault::ScopedCrashHarness harness;
  auto& reg = harness.registry();
  const util::Bytes old_v = util::to_bytes("old"), new_v = util::to_bytes("new");
  int idx = 0;

  auto run_case = [&](const std::string& point, std::uint64_t nth,
                      const std::function<void()>& operation,
                      const std::function<bool()>& verify) {
    SweepRow row;
    row.point = point;
    row.mode = "store";
    reg.reset();
    reg.arm(point, nth);
    try {
      operation();
    } catch (const fault::SimulatedCrash&) {
      row.crashed = true;
    }
    reg.disarm();
    if (row.crashed) row.recovered = verify();
    std::printf("  %-28s crashed=%d recovered=%d\n", point.c_str(),
                row.crashed, row.recovered);
    rows.push_back(std::move(row));
  };

  // FsStore::put at each boundary.
  for (const char* point :
       {"fs.put.pre_tmp", "fs.put.post_tmp", "fs.put.post_rename"}) {
    const std::string root = (dir / ("fs_" + std::to_string(idx++))).string();
    ds::FsStore store(root);
    store.put("ns", "k", old_v);
    run_case(
        point, 1, [&] { store.put("ns", "k", new_v); },
        [&] {
          ds::FsStore r(root);
          return old_xor_new(r.get("ns", "k"), old_v, new_v);
        });
  }

  // FsStore::move / move_many / erase.
  {
    const std::string root = (dir / "fs_move").string();
    ds::FsStore store(root);
    for (const char* point : {"fs.move.pre", "fs.move.post"}) {
      store.put("src", "k", old_v);
      store.erase("dst", "k");
      run_case(
          point, 1, [&] { store.move("src", "k", "dst"); },
          [&] {
            ds::FsStore r(root);
            return r.exists("src", "k") != r.exists("dst", "k");
          });
    }
    for (const char* k : {"a", "b", "c"}) store.put("msrc", k, old_v);
    run_case(
        "fs.move_many.mid", 2,
        [&] { store.move_many("msrc", {"a", "b", "c"}, "mdst"); },
        [&] {
          ds::FsStore r(root);
          for (const char* k : {"a", "b", "c"})
            if (r.exists("msrc", k) == r.exists("mdst", k)) return false;
          return true;
        });
    store.put("del", "k", old_v);
    run_case(
        "fs.del.pre", 1, [&] { store.erase("del", "k"); },
        [&] {
          ds::FsStore r(root);
          return !r.exists("del", "k") ||
                 old_xor_new(r.get("del", "k"), old_v, new_v);
        });
  }

  // CheckpointFile::save at each boundary.
  for (const char* point : {"ckpt.save.pre_tmp", "ckpt.save.post_tmp",
                            "ckpt.save.post_bak", "ckpt.save.post_rename"}) {
    const std::string p = (dir / ("ckpt_" + std::to_string(idx++))).string();
    util::CheckpointFile ckpt(p);
    ckpt.save(old_v);
    run_case(
        point, 1, [&] { ckpt.save(new_v); },
        [&] {
          const auto got = util::CheckpointFile(p).load();
          return got && old_xor_new(*got, old_v, new_v);
        });
  }

  // TarIdx append/flush at each boundary. Member data spans multiple blocks
  // so a torn append is detectably truncated on rescan.
  const util::Bytes big(2048, 0x5a);
  for (const char* point : {"tar.append.pre", "tar.append.mid",
                            "tar.append.post", "tar.flush.post_trailer"}) {
    const std::string tar =
        (dir / ("tar_" + std::to_string(idx++) + ".tar")).string();
    ds::TarIdx writer(tar);
    writer.append("k1", old_v);
    writer.flush();
    run_case(
        point, 1,
        [&] {
          writer.append("k2", big);
          writer.flush();
        },
        [&] {
          // Restart view without the old process tidying up: drop the
          // sidecar so recovery rescans the archive itself.
          std::filesystem::remove(tar + ".idx");
          ds::TarIdx r(tar);
          if (!r.contains("k1") || *r.read("k1") != old_v) return false;
          return !r.contains("k2") || *r.read("k2") == big;
        });
  }
}

int run_crash_sweep() {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("mummi_bench_crash_sweep_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  std::printf("=== Crash-consistency sweep (campaign checkpoint path) ===\n");
  std::vector<SweepRow> rows;
  sweep_campaign(dir, rows);
  std::printf("\n=== Crash-consistency sweep (stores) ===\n");
  sweep_stores(dir, rows);
  std::filesystem::remove_all(dir);

  std::map<std::string, bool> seen;
  std::size_t recoveries = 0, divergences = 0, crashes = 0;
  for (const auto& row : rows) {
    seen[row.point] = true;
    crashes += row.crashed ? 1u : 0u;
    recoveries += row.recovered ? 1u : 0u;
    divergences += row.divergent ? 1u : 0u;
  }
  std::printf("\npoints swept: %zu  crashes: %zu  recoveries: %zu"
              "  divergences: %zu\n",
              seen.size(), crashes, recoveries, divergences);

  std::filesystem::create_directories("bench_outputs");
  const std::string path = "bench_outputs/crash_recovery.json";
  FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"crash_recovery\",\n");
  std::fprintf(out, "  \"points_swept\": %zu,\n", seen.size());
  std::fprintf(out, "  \"crashes\": %zu,\n", crashes);
  std::fprintf(out, "  \"recoveries\": %zu,\n", recoveries);
  std::fprintf(out, "  \"divergences\": %zu,\n", divergences);
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(out,
                 "    {\"point\": \"%s\", \"mode\": \"%s\", \"crashed\": %s, "
                 "\"recovered\": %s, \"divergent\": %s}%s\n",
                 r.point.c_str(), r.mode.c_str(),
                 r.crashed ? "true" : "false", r.recovered ? "true" : "false",
                 r.divergent ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--crash-sweep") == 0)
    return run_crash_sweep();
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  const std::vector<double> rates = {0.0, 0.5, 1.0, 2.0, 4.0, 8.0};

  std::printf("=== Resilience sweep: goodput vs node-crash rate (%s) ===\n\n",
              full ? "full" : "small");
  std::printf("%10s %8s %8s %10s %8s %12s %14s\n", "crashes/h", "faults",
              "killed", "patches", "cg_sims", "cg_us", "us/node-hour");

  std::vector<Sample> samples;
  for (const double rate : rates) {
    auto config = base_config(full);
    config.faults.seed = 13;
    config.faults.node_crash_rate_per_h = rate;
    config.faults.node_down_mean_s = 600.0;
    const auto result = wm::Campaign(std::move(config)).run();

    Sample s;
    s.crash_rate_per_h = rate;
    s.faults_injected = result.faults_injected;
    s.jobs_killed = result.fault_jobs_killed;
    s.patches_selected = result.patches_selected;
    s.cg_sims = result.cg_lengths_us.size();
    s.cg_total_us = result.cg_total_us;
    s.aa_total_ns = result.aa_total_ns;
    s.goodput_us_per_node_h =
        result.node_hours > 0 ? result.cg_total_us / result.node_hours : 0.0;
    samples.push_back(s);

    std::printf("%10.1f %8llu %8llu %10llu %8llu %12.1f %14.4f\n", rate,
                static_cast<unsigned long long>(s.faults_injected),
                static_cast<unsigned long long>(s.jobs_killed),
                static_cast<unsigned long long>(s.patches_selected),
                static_cast<unsigned long long>(s.cg_sims), s.cg_total_us,
                s.goodput_us_per_node_h);
  }

  const double base = samples.front().goodput_us_per_node_h;
  if (base > 0) {
    std::printf("\ngoodput retained at max rate: %.1f%%\n",
                100.0 * samples.back().goodput_us_per_node_h / base);
  }

  std::filesystem::create_directories("bench_outputs");
  const std::string path = "bench_outputs/resilience.json";
  FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"resilience_sweep\",\n");
  std::fprintf(out, "  \"scale\": \"%s\",\n  \"samples\": [\n",
               full ? "full" : "small");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    std::fprintf(out,
                 "    {\"crash_rate_per_h\": %.3f, \"faults_injected\": %llu, "
                 "\"jobs_killed\": %llu, \"patches_selected\": %llu, "
                 "\"cg_sims\": %llu, \"cg_total_us\": %.3f, "
                 "\"aa_total_ns\": %.3f, \"goodput_us_per_node_h\": %.6f}%s\n",
                 s.crash_rate_per_h,
                 static_cast<unsigned long long>(s.faults_injected),
                 static_cast<unsigned long long>(s.jobs_killed),
                 static_cast<unsigned long long>(s.patches_selected),
                 static_cast<unsigned long long>(s.cg_sims), s.cg_total_us,
                 s.aa_total_ns, s.goodput_us_per_node_h,
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());

  // --- supervised-vs-unsupervised sweep ------------------------------------
  const std::vector<double> hang_rates = {0.0, 2.0, 4.0, 6.0, 8.0};
  std::printf("\n=== Supervision sweep: goodput vs job-hang rate ===\n\n");
  std::printf("%8s %12s %12s %10s %8s %8s\n", "hangs/h", "unsup_cg_us",
              "sup_cg_us", "recovered", "caught", "quar");

  std::vector<SupSample> sup_samples;
  for (const double rate : hang_rates) {
    auto config = supervised_config(full);
    config.faults.job_hang_rate_per_h = rate;
    const auto unsup = wm::Campaign(config).run();
    config.supervise.enabled = true;
    config.supervise.speculate = false;  // twins just queue on a tiny cluster
    const auto sup = wm::Campaign(config).run();

    SupSample s;
    s.hang_rate_per_h = rate;
    s.unsup_cg_total_us = unsup.cg_total_us;
    s.sup_cg_total_us = sup.cg_total_us;
    s.unsup_goodput =
        unsup.node_hours > 0 ? unsup.cg_total_us / unsup.node_hours : 0.0;
    s.sup_goodput = sup.node_hours > 0 ? sup.cg_total_us / sup.node_hours : 0.0;
    s.hangs_detected = sup.supervision.hangs_detected;
    s.quarantined = sup.supervision.quarantined;
    s.unsup_cg_sims = unsup.cg_lengths_us.size();
    s.sup_cg_sims = sup.cg_lengths_us.size();
    sup_samples.push_back(s);

    const double recovered = s.unsup_cg_total_us > 0
                                 ? s.sup_cg_total_us / s.unsup_cg_total_us
                                 : 1.0;
    std::printf("%8.1f %12.3f %12.3f %9.2fx %8llu %8llu\n", rate,
                s.unsup_cg_total_us, s.sup_cg_total_us, recovered,
                static_cast<unsigned long long>(s.hangs_detected),
                static_cast<unsigned long long>(s.quarantined));
  }

  // One combined sample on top of the pure-hang curve: stragglers and poison
  // payloads exercise the speculation and quarantine arms of the plane.
  auto combined_cfg = supervised_config(full);
  combined_cfg.faults.job_hang_rate_per_h = 4.0;
  combined_cfg.faults.straggler_rate_per_h = 2.0;
  combined_cfg.faults.straggler_factor = 4.0;
  combined_cfg.poison_payload_modulus = 7;
  const auto combined_unsup = wm::Campaign(combined_cfg).run();
  combined_cfg.supervise.enabled = true;
  combined_cfg.supervise.speculate = false;
  const auto combined_sup = wm::Campaign(combined_cfg).run();
  std::printf(
      "\ncombined (hang 4/h + straggler 2/h + poison 1-in-7): "
      "cg %.3f -> %.3f us, caught=%llu quarantined=%llu "
      "first_quarantine=%.0f s\n",
      combined_unsup.cg_total_us, combined_sup.cg_total_us,
      static_cast<unsigned long long>(combined_sup.supervision.hangs_detected),
      static_cast<unsigned long long>(combined_sup.supervision.quarantined),
      combined_sup.supervision.first_quarantine_s);

  const std::string sup_path = "bench_outputs/resilience_supervised.json";
  out = std::fopen(sup_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", sup_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"supervision_sweep\",\n");
  std::fprintf(out, "  \"scale\": \"%s\",\n  \"samples\": [\n",
               full ? "full" : "small");
  for (std::size_t i = 0; i < sup_samples.size(); ++i) {
    const auto& s = sup_samples[i];
    std::fprintf(
        out,
        "    {\"hang_rate_per_h\": %.3f, \"unsupervised_cg_total_us\": %.3f, "
        "\"supervised_cg_total_us\": %.3f, "
        "\"unsupervised_goodput_us_per_node_h\": %.6f, "
        "\"supervised_goodput_us_per_node_h\": %.6f, "
        "\"hangs_detected\": %llu, \"quarantined\": %llu, "
        "\"unsupervised_cg_sims\": %llu, \"supervised_cg_sims\": %llu}%s\n",
        s.hang_rate_per_h, s.unsup_cg_total_us, s.sup_cg_total_us,
        s.unsup_goodput, s.sup_goodput,
        static_cast<unsigned long long>(s.hangs_detected),
        static_cast<unsigned long long>(s.quarantined),
        static_cast<unsigned long long>(s.unsup_cg_sims),
        static_cast<unsigned long long>(s.sup_cg_sims),
        i + 1 < sup_samples.size() ? "," : ",");
  }
  std::fprintf(
      out,
      "    {\"combined\": true, \"hang_rate_per_h\": 4.0, "
      "\"straggler_rate_per_h\": 2.0, \"poison_payload_modulus\": 7, "
      "\"unsupervised_cg_total_us\": %.3f, \"supervised_cg_total_us\": %.3f, "
      "\"hangs_detected\": %llu, \"quarantined\": %llu, "
      "\"first_quarantine_s\": %.1f}\n",
      combined_unsup.cg_total_us, combined_sup.cg_total_us,
      static_cast<unsigned long long>(combined_sup.supervision.hangs_detected),
      static_cast<unsigned long long>(combined_sup.supervision.quarantined),
      combined_sup.supervision.first_quarantine_s);
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", sup_path.c_str());
  return 0;
}
