// Ablation for the >=12x faster feedback claim (Sec. 1, 5.2): one
// CG-to-continuum feedback iteration over the same pending workload, on the
// throttled-GPFS path (the SC'19 design: per-file I/O against a contested
// shared filesystem) vs the Redis path (in-memory cluster).
//
// Both the calibrated virtual times and real measured wall times are
// reported; the real comparison uses actual FsStore files vs the in-memory
// KV store.

#include <cstdio>
#include <unistd.h>
#include <filesystem>

#include "datastore/fs_store.hpp"
#include "datastore/red_store.hpp"
#include "feedback/cg2cont.hpp"
#include "mdengine/rdf.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

using namespace mummi;

namespace {

fb::FeedbackRecord make_record(util::Rng& rng) {
  fb::FeedbackRecord rec;
  rec.state = static_cast<cont::ProteinState>(rng.uniform_index(4));
  for (int s = 0; s < 5; ++s) {
    md::RdfAccumulator acc(2.5, 25);
    std::vector<double> counts(25);
    for (auto& c : counts) c = rng.uniform(0.0, 50.0);
    acc.restore_raw(std::move(counts), 1, 1.0);
    rec.rdfs.per_species.push_back(std::move(acc));
  }
  return rec;
}

struct Outcome {
  double virtual_seconds = 0;
  double wall_seconds = 0;
};

Outcome run(ds::DataStorePtr store, const fb::FeedbackCosts& costs,
            int frames, util::Rng& rng) {
  for (int i = 0; i < frames; ++i)
    store->put("rdf-pending", "f" + std::to_string(i),
               make_record(rng).serialize());
  fb::Cg2ContConfig cfg;
  cfg.costs = costs;
  fb::CgToContinuumFeedback feedback(store, nullptr, cfg);
  util::Stopwatch watch;
  const auto stats = feedback.iterate();
  Outcome out;
  out.wall_seconds = watch.elapsed();
  out.virtual_seconds = stats.total_virtual();
  return out;
}

}  // namespace

int main() {
  constexpr int kFrames = 5000;  // one iteration at ~1000 frames/min x 5 min
  util::Rng rng(17);

  std::printf("=== Feedback backend ablation (%d pending frames) ===\n\n",
              kFrames);

  const auto tmp = std::filesystem::temp_directory_path() /
                   ("mummi_fb_bench_" + std::to_string(::getpid()));
  std::filesystem::create_directories(tmp);

  auto fs_store = std::make_shared<ds::FsStore>(tmp.string());
  const auto gpfs = run(fs_store, fb::FeedbackCosts::gpfs_throttled(),
                        kFrames, rng);

  auto red_store = std::make_shared<ds::RedStore>(20);
  const auto redis = run(red_store, fb::FeedbackCosts::redis(), kFrames, rng);

  std::printf("%-28s %18s %18s\n", "backend", "modeled iter (s)",
              "measured wall (s)");
  std::printf("%-28s %18.1f %18.3f\n", "filesystem (throttled GPFS)",
              gpfs.virtual_seconds, gpfs.wall_seconds);
  std::printf("%-28s %18.1f %18.3f\n", "redis (20-server cluster)",
              redis.virtual_seconds, redis.wall_seconds);
  std::printf("\nmodeled speedup:  %.1fx (paper: >=12x, 2 h -> <10 min)\n",
              gpfs.virtual_seconds / redis.virtual_seconds);
  std::printf("measured speedup: %.1fx (in-memory vs real files on this "
              "machine's disk)\n",
              gpfs.wall_seconds / std::max(redis.wall_seconds, 1e-9));

  std::filesystem::remove_all(tmp);
  return 0;
}
