// Reproduces Figure 4: per-scale simulation performance.
//   - continuum: ms/day distribution with modes per allocation size;
//   - CG: us/day vs system size, mean/std/min/max bands, including the
//     degraded-MPI episode;
//   - AA: ns/day vs system size.

#include <algorithm>

#include "bench/campaign_common.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

using namespace mummi;

namespace {

void size_banded_table(const char* title, const char* size_unit,
                       const char* rate_unit,
                       const std::vector<std::pair<double, double>>& samples,
                       double size_scale, int nbands) {
  if (samples.empty()) {
    std::printf("%s: no samples\n", title);
    return;
  }
  double lo = samples[0].first, hi = samples[0].first;
  for (const auto& [size, _] : samples) {
    lo = std::min(lo, size);
    hi = std::max(hi, size);
  }
  hi += 1e-9;
  std::vector<util::RunningStats> bands(static_cast<std::size_t>(nbands));
  for (const auto& [size, rate] : samples) {
    auto b = static_cast<std::size_t>((size - lo) / (hi - lo) * nbands);
    b = std::min(b, static_cast<std::size_t>(nbands - 1));
    bands[b].add(rate);
  }
  std::printf("%s (%zu samples)\n", title, samples.size());
  std::printf("%14s %8s %10s %10s %10s %10s\n", size_unit, "n", "mean",
              "std", "min", "max");
  for (int b = 0; b < nbands; ++b) {
    const auto& s = bands[static_cast<std::size_t>(b)];
    if (s.count() == 0) continue;
    const double center = (lo + (b + 0.5) * (hi - lo) / nbands) / size_scale;
    std::printf("%14.3f %8zu %10.3f %10.3f %10.3f %10.3f  %s\n", center,
                s.count(), s.mean(), s.stddev(), s.min(), s.max(), rate_unit);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  auto config = bench::campaign_config(argc, argv);
  wm::CampaignResult result = wm::Campaign(std::move(config)).run();

  std::printf("=== Figure 4: simulation performance by scale (%s) ===\n\n",
              bench::scale_label(argc, argv));

  // Continuum: multimodal distribution, one mode per allocation size.
  util::Histogram cont(0.0, 1.1, 22);
  for (double rate : result.continuum_ms_per_day) cont.add(rate);
  std::printf("Continuum performance (ms/day), %zu snapshots; modes follow\n"
              "the per-run core counts (paper: ~0.96 ms/day at 3600 cores)\n",
              result.continuum_ms_per_day.size());
  std::printf("%s\n", cont.ascii(46).c_str());

  size_banded_table("CG performance vs system size",
                    "size (k particles)", "us/day", result.cg_perf, 1000.0, 6);
  size_banded_table("AA performance vs system size",
                    "size (M atoms)", "ns/day", result.aa_perf, 1e6, 6);

  // Headline calibration checks.
  util::RunningStats cg_rates, aa_rates;
  for (const auto& [_, r] : result.cg_perf) cg_rates.add(r);
  for (const auto& [_, r] : result.aa_perf) aa_rates.add(r);
  std::printf("CG mean: %.3f us/day (paper benchmark: 1.04; campaign mean "
              "below it due to the incompatible-MPI episode)\n",
              cg_rates.mean());
  std::printf("AA mean: %.2f ns/day (paper: 13.98, matching the AMBER "
              "benchmark)\n",
              aa_rates.mean());
  return 0;
}
