// Reproduces Figure 8: AA-to-CG feedback iteration time vs number of AA
// frames processed. Each frame costs ~2 s of external-process time; pooled
// workers and phase splitting keep ">97% of the feedback iterations within
// 10 minutes"; beyond ~1600 frames the target is missed but cost stays
// linear.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "datastore/red_store.hpp"
#include "feedback/aa2cg.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace mummi;

namespace {

/// One real iteration of the AaToCgFeedback over `frames` published records;
/// returns the modeled iteration time in minutes.
double run_iteration(int frames, util::Rng& rng) {
  auto store = std::make_shared<ds::RedStore>(20);
  for (int i = 0; i < frames; ++i) {
    std::string pattern(14, 'C');
    for (auto& c : pattern) {
      const double u = rng.uniform();
      c = u < 0.55 ? 'H' : u < 0.7 ? 'E' : 'C';
    }
    store->put_text("ss-pending", "f" + std::to_string(i), pattern);
  }
  fb::AaToCgFeedback feedback(store, fb::Aa2CgConfig{});
  return feedback.iterate().total_virtual() / 60.0;
}

}  // namespace

int main() {
  util::Rng rng(11);
  std::printf("=== Figure 8: AA->CG feedback iteration time vs frames ===\n\n");
  std::printf("%10s %14s %12s\n", "#frames", "time (min)", "within 10min");
  for (int frames : {100, 400, 800, 1200, 1600, 2400, 4000, 7000}) {
    const double minutes = run_iteration(frames, rng);
    std::printf("%10d %14.2f %12s\n", frames, minutes,
                minutes <= 10.0 ? "yes" : "no (linear overrun)");
  }

  // Campaign-style iteration mix: frame counts per iteration follow the AA
  // fleet size (~2400 sims at 1000-node scale, one frame per 10.3 min,
  // 5-minute feedback cadence) with occasional backlogs.
  std::printf("\ncumulative view over a campaign-like mix of iterations:\n");
  std::vector<double> times;
  int within = 0;
  const int iterations = 400;
  for (int i = 0; i < iterations; ++i) {
    // Mostly ~600-1300 frames; rare restarts dump larger backlogs.
    int frames = static_cast<int>(rng.uniform(400, 1400));
    if (rng.uniform() < 0.02) frames = static_cast<int>(rng.uniform(2000, 7000));
    const double minutes = run_iteration(frames, rng);
    times.push_back(minutes);
    if (minutes <= 10.0) ++within;
  }
  util::RunningStats stats;
  for (double t : times) stats.add(t);
  std::printf("  iterations: %d, mean %.2f min, max %.2f min\n", iterations,
              stats.mean(), stats.max());
  std::printf("  within 10-minute target: %.1f%%  (paper: >97%%)\n",
              100.0 * within / iterations);
  return 0;
}
