// Reproduces Table 1 and the campaign-summary paragraph of Sec. 5.1:
// the run schedule at multiple scales, total node hours, and the counts of
// snapshots / patches / selections / CG and AA simulations with their
// accumulated trajectory totals.
//
// Usage: bench_table1_campaign [--small]
//   --small runs a scaled-down schedule (for quick checks / CI).
//
// Summary counts land as JSON in bench_outputs/table1.json — these are the
// campaign-determinism fingerprint: identical counts are expected for the
// same seed regardless of thread-pool size or selection-engine internals.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "util/clock.hpp"
#include "util/string_util.hpp"
#include "wm/campaign.hpp"

using namespace mummi;

int main(int argc, char** argv) {
  const bool small = argc > 1 && std::strcmp(argv[1], "--small") == 0;

  wm::CampaignConfig config;
  if (small) {
    config.runs = {{100, 2, 2}, {500, 3, 1}, {1000, 4, 1}};
    config.proteins_per_snapshot = 60;
  }

  std::printf("=== Table 1: campaign runs at different scales ===\n");
  std::printf("%8s %10s %6s %12s\n", "#nodes", "wall-time", "#runs",
              "node hours");

  util::Stopwatch watch;
  wm::Campaign campaign(config);
  wm::CampaignResult result = campaign.run();

  for (const auto& row : result.table1)
    std::printf("%8d %8.0f h %6d %12.0f\n", row.nodes, row.walltime_h,
                row.count, row.node_hours());
  std::printf("%8s %10s %6s %12.0f  (paper: 600,600)\n", "", "", "total",
              result.node_hours);

  std::printf("\n=== Sec. 5.1 campaign summary ===\n");
  std::printf("%-38s %12llu  (paper: 20,507)\n", "continuum snapshots",
              static_cast<unsigned long long>(result.snapshots));
  std::printf("%-38s %12.1f  (paper: 20,507 us = 20.5 ms)\n",
              "continuum trajectory (us)", result.continuum_total_us);
  std::printf("%-38s %12llu  (paper: 6,828,831)\n", "patches created",
              static_cast<unsigned long long>(result.patches_created));
  std::printf("%-38s %12llu  (paper: 34,523 = 0.5%%)\n", "patches selected (CG sims)",
              static_cast<unsigned long long>(result.patches_selected));
  std::printf("%-38s %12.2f%%\n", "  selection fraction",
              result.patches_created
                  ? 100.0 * static_cast<double>(result.patches_selected) /
                        static_cast<double>(result.patches_created)
                  : 0.0);
  std::printf("%-38s %12llu  (paper: 9,837,316)\n", "CG frame candidates",
              static_cast<unsigned long long>(result.frame_candidates));
  std::printf("%-38s %12llu  (paper: 9632 = 0.098%%)\n", "frames selected (AA sims)",
              static_cast<unsigned long long>(result.frames_selected));
  std::printf("%-38s %12.3f%%\n", "  selection fraction",
              result.frame_candidates
                  ? 100.0 * static_cast<double>(result.frames_selected) /
                        static_cast<double>(result.frame_candidates)
                  : 0.0);
  std::printf("%-38s %12zu  (paper: 34,523 sims)\n", "CG simulations recorded",
              result.cg_lengths_us.size());
  std::printf("%-38s %12.1f  (paper: 96,670 us = 96.67 ms)\n",
              "CG trajectory total (us)", result.cg_total_us);
  std::printf("%-38s %12zu  (paper: 9632 sims)\n", "AA simulations recorded",
              result.aa_lengths_ns.size());
  std::printf("%-38s %12.1f  (paper: 326,000 ns = 326 us)\n",
              "AA trajectory total (ns)", result.aa_total_ns);

  std::printf("\n=== Data ledger (Sec. 5.2: several TB/day, >1B files) ===\n");
  std::printf("%-28s %14s\n", "category", "bytes");
  std::printf("%-28s %14s\n", "continuum snapshots",
              util::human_bytes(result.ledger.bytes_continuum).c_str());
  std::printf("%-28s %14s\n", "patches",
              util::human_bytes(result.ledger.bytes_patches).c_str());
  std::printf("%-28s %14s\n", "CG trajectory frames",
              util::human_bytes(result.ledger.bytes_cg_frames).c_str());
  std::printf("%-28s %14s\n", "CG analysis",
              util::human_bytes(result.ledger.bytes_cg_analysis).c_str());
  std::printf("%-28s %14s\n", "AA trajectory frames",
              util::human_bytes(result.ledger.bytes_aa_frames).c_str());
  std::printf("%-28s %14s\n", "backmapping",
              util::human_bytes(result.ledger.bytes_backmap).c_str());
  std::printf("%-28s %14s\n", "total produced",
              util::human_bytes(result.ledger.bytes_total()).c_str());
  std::printf("%-28s %14s  (trajectories stay on node-local RAM disk)\n",
              "persisted to GPFS",
              util::human_bytes(result.ledger.bytes_persisted()).c_str());
  const double days = result.node_hours > 0 ? result.node_hours / (1000 * 24) : 1;
  std::printf("%-28s %14s  (over ~%.0f 1000-node days; paper: several TB/day)\n",
              "persisted per day",
              util::human_bytes(result.ledger.bytes_persisted() / days).c_str(),
              days);
  std::printf("%-28s %14llu  (paper: 1,034,232,900)\n", "files total",
              static_cast<unsigned long long>(result.ledger.files_total));

  std::filesystem::create_directories("bench_outputs");
  const std::string path = "bench_outputs/table1.json";
  FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"table1_campaign\",\n");
  std::fprintf(out, "  \"scale\": \"%s\",\n", small ? "small" : "full");
  std::fprintf(out, "  \"node_hours\": %.3f,\n", result.node_hours);
  std::fprintf(out, "  \"snapshots\": %llu,\n",
               static_cast<unsigned long long>(result.snapshots));
  std::fprintf(out, "  \"patches_created\": %llu,\n",
               static_cast<unsigned long long>(result.patches_created));
  std::fprintf(out, "  \"patches_selected\": %llu,\n",
               static_cast<unsigned long long>(result.patches_selected));
  std::fprintf(out, "  \"frame_candidates\": %llu,\n",
               static_cast<unsigned long long>(result.frame_candidates));
  std::fprintf(out, "  \"frames_selected\": %llu,\n",
               static_cast<unsigned long long>(result.frames_selected));
  std::fprintf(out, "  \"cg_sims\": %zu,\n", result.cg_lengths_us.size());
  std::fprintf(out, "  \"aa_sims\": %zu,\n", result.aa_lengths_ns.size());
  std::fprintf(out, "  \"cg_total_us\": %.3f,\n", result.cg_total_us);
  std::fprintf(out, "  \"aa_total_ns\": %.3f,\n", result.aa_total_ns);
  std::fprintf(out, "  \"bytes_total\": %llu,\n",
               static_cast<unsigned long long>(result.ledger.bytes_total()));
  std::fprintf(out, "  \"files_total\": %llu\n}\n",
               static_cast<unsigned long long>(result.ledger.files_total));
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());

  std::printf("\n[campaign simulated in %.1f s wall time]\n", watch.elapsed());
  return 0;
}
