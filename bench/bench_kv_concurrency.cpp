// KV cluster concurrency sweep: read throughput vs. reader-thread count
// across shard counts, on the shared-lock shards.
//
// The shards guard reads with std::shared_mutex, so concurrent GETs against
// one shard proceed in parallel; mutations still serialize. Two numbers per
// (shards, threads) cell:
//
//   wall ops/s      — measured: T real threads hammering GET over a shared
//                     key set. Informational: it depends on the host's core
//                     count (a 1-core container cannot show wall scaling).
//   virtual ops/s   — deterministic cost-model throughput. Shared locking
//                     admits all T readers concurrently: T / cost_per_read.
//                     The pre-refactor exclusive locking admitted one reader
//                     per shard: min(T, shards) / cost_per_read. The gap
//                     between the two columns is what the shared_mutex
//                     refactor buys.
//
// Rows land in bench_outputs/kv_concurrency.json for bench_smoke validation
// (virtual shared ops/s must be monotone in T through 4 threads).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "datastore/kv_cluster.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

using namespace mummi;

int main(int argc, char** argv) {
  bool small = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--small") == 0) small = true;

  const int n_keys = small ? 512 : 4096;
  const int ops_per_thread = small ? 2000 : 20000;
  const std::size_t value_bytes = 1024;

  std::printf("=== KV concurrency: shared-lock read throughput ===\n");
  std::printf("(%d keys x %zu B, %d GETs per thread%s)\n\n", n_keys,
              value_bytes, ops_per_thread, small ? ", --small" : "");
  std::printf("%7s %8s %14s %18s %20s\n", "shards", "threads", "wall ops/s",
              "virt shared ops/s", "virt exclusive ops/s");

  struct Row {
    std::size_t shards;
    int threads;
    double wall_ops_s, virt_shared_ops_s, virt_exclusive_ops_s;
  };
  std::vector<Row> rows;

  util::Rng rng(7);
  for (std::size_t shards : {std::size_t{1}, std::size_t{4}, std::size_t{20}}) {
    ds::KvCluster kv(shards);
    util::Bytes payload(value_bytes);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
    std::vector<std::string> keys;
    keys.reserve(static_cast<std::size_t>(n_keys));
    for (int i = 0; i < n_keys; ++i) {
      keys.push_back("frame:" + std::to_string(i));
      kv.set(keys.back(), payload);
    }

    // Per-read virtual cost under the default model: one value retrieval
    // plus payload transfer.
    const ds::KvCostModel cost;
    const double per_read =
        cost.per_read + cost.per_byte * static_cast<double>(value_bytes);

    for (int threads : {1, 2, 4, 8}) {
      util::Stopwatch wall;
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(threads));
      for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
          // Strided walk: every thread touches every shard.
          for (int i = 0; i < ops_per_thread; ++i)
            (void)kv.get(keys[static_cast<std::size_t>(
                (t + i) % n_keys)]);
        });
      }
      for (auto& th : pool) th.join();
      const double elapsed = wall.elapsed();
      const double total_ops =
          static_cast<double>(threads) * static_cast<double>(ops_per_thread);
      const double wall_ops_s = elapsed > 0 ? total_ops / elapsed : 0.0;

      // Deterministic throughput models (ops/s of the whole reader pool).
      const double virt_shared = static_cast<double>(threads) / per_read;
      const double virt_exclusive =
          static_cast<double>(std::min<std::size_t>(
              static_cast<std::size_t>(threads), shards)) /
          per_read;

      std::printf("%7zu %8d %14.0f %18.0f %20.0f\n", shards, threads,
                  wall_ops_s, virt_shared, virt_exclusive);
      rows.push_back({shards, threads, wall_ops_s, virt_shared,
                      virt_exclusive});
    }
  }

  std::filesystem::create_directories("bench_outputs");
  std::FILE* f = std::fopen("bench_outputs/kv_concurrency.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write bench_outputs/kv_concurrency.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"kv_concurrency\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "    {\"shards\": %zu, \"threads\": %d, "
                 "\"wall_ops_per_s\": %.1f, "
                 "\"virtual_shared_ops_per_s\": %.1f, "
                 "\"virtual_exclusive_ops_per_s\": %.1f}%s\n",
                 r.shards, r.threads, r.wall_ops_s, r.virt_shared_ops_s,
                 r.virt_exclusive_ops_s, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote bench_outputs/kv_concurrency.json\n");

  std::printf("\nshape checks:\n");
  std::printf("  - virtual shared ops/s grows linearly with reader threads "
              "(shared_mutex\n    admits all readers);\n");
  std::printf("  - virtual exclusive ops/s saturates at the shard count "
              "(the pre-refactor\n    lock admitted one reader per "
              "shard);\n");
  std::printf("  - wall ops/s is informational: it reflects the host's "
              "cores, not the model.\n");
  return 0;
}
