// Continuum (DDFT) engine thread sweep: runs the block-parallel kernel
// engine at 1/2/4/8 pool workers against the pre-refactor legacy reference
// kernels, checks the bit-identity contract (serialized frames byte-equal
// across every thread count AND equal to the legacy kernels), and writes
// bench_outputs/continuum_kernels.json with wall throughput plus a
// deterministic virtual-speedup model. bench_smoke.sh validates the JSON;
// wall scaling is host-dependent and informational.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "continuum/gridsim2d.hpp"
#include "continuum/parallel_kernels.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/thread_pool.hpp"

using namespace mummi;

namespace {

cont::ContinuumConfig make_config(int grid, util::ThreadPool* pool,
                                  bool legacy) {
  cont::ContinuumConfig cfg;
  cfg.grid = grid;
  cfg.inner_species = 8;
  cfg.outer_species = 6;
  cfg.n_proteins = 30;
  cfg.seed = 42;
  cfg.pool = pool;
  cfg.legacy_kernels = legacy;
  return cfg;
}

std::string fingerprint_hex(const util::Bytes& frame) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(
                    util::fnv1a(frame.data(), frame.size())));
  return buf;
}

/// Deterministic speedup model for the block schedule: each barrier phase of
/// one step (mu sweep, flux sweep, footprint stamps + fold, protein forces)
/// contributes its per-block costs, greedily list-scheduled onto T workers
/// in fixed block order. virtual_speedup = sum(serial) / sum(makespan).
/// Depends only on (grid, species, proteins, T) — same answer on any host.
double virtual_speedup(int grid, int ns, int np, int threads) {
  const auto n = static_cast<std::size_t>(grid);
  const auto p = static_cast<std::size_t>(np);
  auto phase = [threads](std::size_t count, std::size_t block,
                         double cost_per_item, double* serial) {
    std::vector<double> worker(static_cast<std::size_t>(threads), 0.0);
    for (std::size_t lo = 0; lo < count; lo += block) {
      const double cost =
          cost_per_item * static_cast<double>(std::min(block, count - lo));
      *serial += cost;
      *std::min_element(worker.begin(), worker.end()) += cost;
    }
    return *std::max_element(worker.begin(), worker.end());
  };
  const double row_cost = static_cast<double>(n) * ns;  // cells per row
  double serial = 0.0, makespan = 0.0;
  makespan += phase(n, cont::detail::row_block(n), row_cost, &serial);  // mu
  makespan += phase(n, cont::detail::row_block(n), row_cost, &serial);  // flux
  if (np > 0) {
    // Footprint stamps (~37x37 Gaussian per protein) + protein force pass.
    makespan += phase(p, cont::detail::protein_block(p), 37.0 * 37.0, &serial);
    makespan += phase(p, cont::detail::protein_block(p), 200.0, &serial);
  }
  return makespan > 0 ? serial / makespan : 1.0;
}

struct Row {
  int threads;
  double wall_s, cells_per_s, virt;
  bool identical;
  std::string fingerprint;
};

int run(bool small) {
  const int grid = small ? 96 : 192;
  const int steps = small ? 8 : 20;
  const int ns = 14, np = 30;
  const auto cells = static_cast<double>(grid) * grid * ns;
  const std::size_t nblocks =
      cont::detail::row_blocks(static_cast<std::size_t>(grid));
  std::printf("=== continuum DDFT engine: thread sweep ===\n");
  std::printf("(grid=%d^2, %d species, %d proteins, %zu row blocks, "
              "%d steps%s)\n\n",
              grid, ns, np, nblocks, steps, small ? ", --small" : "");

  // Legacy reference kernels: serial by construction, the bit-identity
  // yardstick for every row.
  double legacy_s = 0.0;
  std::string legacy_fp;
  {
    cont::GridSim2D sim(make_config(grid, nullptr, true));
    util::Stopwatch wall;
    sim.step(steps);
    legacy_s = wall.elapsed() / steps;
    legacy_fp = fingerprint_hex(sim.serialize());
  }

  std::vector<Row> rows;
  double serial_s = 0.0;
  std::printf("%8s %12s %16s %14s %10s\n", "threads", "wall s/step",
              "wall cells/s", "virt speedup", "identical");
  for (const int threads : {1, 2, 4, 8}) {
    util::ThreadPool pool(static_cast<std::size_t>(threads));
    // A 1-worker pool takes the inline path; pass null to make that explicit.
    util::ThreadPool* p = threads > 1 ? &pool : nullptr;
    cont::GridSim2D sim(make_config(grid, p, false));
    util::Stopwatch wall;
    sim.step(steps);
    const double per_step = wall.elapsed() / steps;
    if (threads == 1) serial_s = per_step;
    const std::string fp = fingerprint_hex(sim.serialize());
    const bool identical = fp == legacy_fp;
    const double virt = virtual_speedup(grid, ns, np, threads);
    const double cps = per_step > 0 ? cells / per_step : 0.0;
    std::printf("%8d %12.6f %16.0f %14.2f %10s\n", threads, per_step, cps,
                virt, identical ? "yes" : "NO");
    rows.push_back({threads, per_step, cps, virt, identical, fp});
  }
  std::printf("\nlegacy kernels: %.6f s/step (engine serial %.6f, %.2fx); "
              "fingerprint %s\n",
              legacy_s, serial_s, serial_s > 0 ? legacy_s / serial_s : 0.0,
              legacy_fp.c_str());

  std::filesystem::create_directories("bench_outputs");
  std::FILE* f = std::fopen("bench_outputs/continuum_kernels.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write bench_outputs/continuum_kernels.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"continuum_kernels\",\n  \"grid\": %d,\n"
               "  \"species\": %d,\n  \"proteins\": %d,\n"
               "  \"row_blocks\": %zu,\n  \"steps\": %d,\n"
               "  \"legacy_wall_s_per_step\": %.9f,\n"
               "  \"engine_serial_wall_s_per_step\": %.9f,\n"
               "  \"engine_vs_legacy_wall_speedup\": %.3f,\n"
               "  \"legacy_fingerprint\": \"%s\",\n  \"rows\": [\n",
               grid, ns, np, nblocks, steps, legacy_s, serial_s,
               serial_s > 0 ? legacy_s / serial_s : 0.0, legacy_fp.c_str());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"wall_s_per_step\": %.9f, "
                 "\"wall_cells_per_s\": %.1f, \"virtual_speedup\": %.3f, "
                 "\"identical\": %s, \"fingerprint\": \"%s\"}%s\n",
                 r.threads, r.wall_s, r.cells_per_s, r.virt,
                 r.identical ? "true" : "false", r.fingerprint.c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote bench_outputs/continuum_kernels.json\n");
  for (const Row& r : rows)
    if (!r.identical) {
      std::fprintf(stderr, "continuum_kernels: frames diverged at %d threads\n",
                   r.threads);
      return 1;
    }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--small") == 0) small = true;
  return run(small);
}
