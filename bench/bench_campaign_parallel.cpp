// Campaign maintain-tick thread sweep: runs the same campaign with the
// in-situ analysis plane on 1/2/4/8 pool workers, checks the bit-identity
// contract (science_fingerprint byte-equal across every thread count), and
// writes bench_outputs/campaign_parallel.json with wall time plus a
// deterministic virtual-speedup model of the per-tick pipeline schedule.
// bench_smoke.sh validates the JSON; wall scaling is host-dependent and
// informational (the tick is a small slice of total campaign wall time).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/campaign_common.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/thread_pool.hpp"
#include "wm/insitu.hpp"

using namespace mummi;

namespace {

std::string fingerprint_hex(const util::Bytes& bytes) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(
                    util::fnv1a(bytes.data(), bytes.size())));
  return buf;
}

// Relative task costs in the tick pipeline, from the work each stage does
// per sim: stepping regenerates 22 bead positions; analysis runs the RDF
// pair loops (4 species x 4 heads x 6 protein beads) plus the candidate and
// descriptor draws. Only the ratio matters to the schedule.
constexpr double kStepCostPerSim = 22.0;
constexpr double kAnalysisCostPerSim = 96.0;

/// Deterministic speedup model for the tick schedule: per tick, stepping
/// tasks (granularity kInSituChunk) and analysis tasks (granularity
/// kInSituSubBlock) are greedily list-scheduled onto T workers in pipeline
/// order — the two stages overlap, which is exactly what pipeline_two_stage
/// buys. virtual_speedup = sum(serial) / sum(makespan) over all ticks;
/// depends only on (tick_sims, T), so it is identical on every host.
double virtual_speedup(const std::vector<std::uint32_t>& tick_sims,
                       int threads) {
  double serial = 0.0, makespan = 0.0;
  std::vector<double> worker(static_cast<std::size_t>(threads), 0.0);
  for (const std::uint32_t n : tick_sims) {
    if (n == 0) continue;
    std::fill(worker.begin(), worker.end(), 0.0);
    auto submit = [&](double cost) {
      serial += cost;
      *std::min_element(worker.begin(), worker.end()) += cost;
    };
    for (std::size_t lo = 0; lo < n; lo += wm::kInSituChunk) {
      const std::size_t chunk = std::min<std::size_t>(wm::kInSituChunk, n - lo);
      submit(kStepCostPerSim * static_cast<double>(chunk));
      for (std::size_t slo = 0; slo < chunk; slo += wm::kInSituSubBlock)
        submit(kAnalysisCostPerSim *
               static_cast<double>(
                   std::min<std::size_t>(wm::kInSituSubBlock, chunk - slo)));
    }
    makespan += *std::max_element(worker.begin(), worker.end());
  }
  return makespan > 0 ? serial / makespan : 1.0;
}

struct Row {
  int threads;
  double wall_s, virt;
  bool identical;
  std::string fingerprint;
};

}  // namespace

int main(int argc, char** argv) {
  wm::CampaignConfig base = bench::campaign_config(argc, argv);
  base.seed = 7;
  std::printf("=== campaign maintain tick: in-situ thread sweep ===\n");
  std::printf("(%s schedule, chunk %zu, sub-block %zu)\n\n",
              bench::scale_label(argc, argv), wm::kInSituChunk,
              wm::kInSituSubBlock);

  std::vector<Row> rows;
  std::string serial_fp;
  std::vector<std::uint32_t> serial_ticks;
  std::uint64_t analysis_frames = 0;
  std::printf("%8s %12s %14s %10s\n", "threads", "wall s", "virt speedup",
              "identical");
  for (const int threads : {1, 2, 4, 8}) {
    util::ThreadPool pool(static_cast<std::size_t>(threads));
    // A 1-worker pool takes the inline path; pass null to make that explicit.
    auto cfg = base;
    cfg.insitu_pool = threads > 1 ? &pool : nullptr;
    util::Stopwatch wall;
    const auto result = wm::Campaign(cfg).run();
    const double wall_s = wall.elapsed();
    const std::string fp = fingerprint_hex(result.science_fingerprint());
    if (threads == 1) {
      serial_fp = fp;
      serial_ticks = result.tick_sims;
      analysis_frames = result.analysis_frames;
    }
    const bool identical = fp == serial_fp;
    const double virt = virtual_speedup(serial_ticks, threads);
    std::printf("%8d %12.3f %14.2f %10s\n", threads, wall_s, virt,
                identical ? "yes" : "NO");
    rows.push_back({threads, wall_s, virt, identical, fp});
  }
  std::printf("\n%llu frames analyzed across %zu ticks; fingerprint %s\n",
              static_cast<unsigned long long>(analysis_frames),
              serial_ticks.size(), serial_fp.c_str());

  std::filesystem::create_directories("bench_outputs");
  std::FILE* f = std::fopen("bench_outputs/campaign_parallel.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write bench_outputs/campaign_parallel.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"campaign_parallel\",\n"
               "  \"ticks\": %zu,\n  \"analysis_frames\": %llu,\n"
               "  \"rows\": [\n",
               serial_ticks.size(),
               static_cast<unsigned long long>(analysis_frames));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"wall_s\": %.3f, "
                 "\"virtual_speedup\": %.3f, \"identical\": %s, "
                 "\"fingerprint\": \"%s\"}%s\n",
                 r.threads, r.wall_s, r.virt, r.identical ? "true" : "false",
                 r.fingerprint.c_str(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote bench_outputs/campaign_parallel.json\n");
  for (const Row& r : rows)
    if (!r.identical) {
      std::fprintf(stderr,
                   "campaign_parallel: fingerprint diverged at %d threads\n",
                   r.threads);
      return 1;
    }
  return 0;
}
