// Reproduces Figure 7: Redis-backed feedback query performance on a
// 20-server cluster — time for the three query types of the CG-to-continuum
// feedback (retrieve keys / retrieve values / delete pairs) as a function of
// the number of pending CG frames.
//
// Paper rates at 4000-node scale: ~10,000 key-retrievals+deletions/s and
// ~2000 value-reads/s; one outlier iteration with ~70k accumulated frames.

#include <cstdio>

#include "datastore/kv_cluster.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

using namespace mummi;

int main() {
  std::printf("=== Figure 7: in-memory KV cluster feedback queries "
              "(20 servers) ===\n\n");
  std::printf("%10s %14s %16s %14s | %12s %12s\n", "#frames",
              "retrieve keys", "retrieve values", "delete pairs",
              "wall keys", "wall values");
  std::printf("%10s %14s %16s %14s | %12s %12s\n", "", "(model s)",
              "(model s)", "(model s)", "(measured s)", "(measured s)");

  util::Rng rng(4);
  for (int frames : {5000, 10000, 20000, 30000, 40000, 50000, 60000, 70000}) {
    ds::KvCluster kv(20);
    // Each pending frame: an RDF record of a few KB under "rdf:<id>".
    util::Bytes payload(3500);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
    for (int i = 0; i < frames; ++i)
      kv.set("rdf:" + std::to_string(i), payload);
    kv.reset_sim_time();

    util::Stopwatch wall;
    const auto keys = kv.keys("rdf:*");
    const double wall_keys = wall.elapsed();

    wall.reset();
    for (const auto& key : keys) (void)kv.get(key);
    const double wall_values = wall.elapsed();

    for (const auto& key : keys) kv.del(key);

    std::printf("%10d %14.2f %16.2f %14.2f | %12.4f %12.4f\n", frames,
                kv.sim_seconds_keys(), kv.sim_seconds_reads(),
                kv.sim_seconds_deletes(), wall_keys, wall_values);
  }

  std::printf("\nshape checks (model columns, calibrated to the paper's "
              "measured rates):\n");
  std::printf("  - all three query types scale linearly in the number of "
              "frames;\n");
  std::printf("  - value retrieval is ~5x the cost of key retrieval or "
              "deletion\n    (~2k reads/s vs ~10k keys+deletes/s);\n");
  std::printf("  - even the 70k-frame outlier iteration (controlled-shutdown "
              "backlog)\n    completes in well under a 10-minute feedback "
              "budget.\n");
  return 0;
}
