// Reproduces Figure 7: Redis-backed feedback query performance on a
// 20-server cluster — time for the three query types of the CG-to-continuum
// feedback (retrieve keys / retrieve values / delete pairs) as a function of
// the number of pending CG frames.
//
// Paper rates at 4000-node scale: ~10,000 key-retrievals+deletions/s and
// ~2000 value-reads/s; one outlier iteration with ~70k accumulated frames.
//
// Each query phase runs inside an obs::Span, and every iteration appends a
// registry snapshot to a TelemetryReport, so the per-op KV counters and cost
// histograms land in bench_outputs/telemetry_kv.json alongside the table.
//
// A second section compares the per-key collect+tag loop against the
// pipelined batch path (MGET + MRENAME): same records, byte-identical
// results, one round trip per shard instead of one per record. The rows land
// in bench_outputs/fig7_batched.json.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "datastore/kv_cluster.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

using namespace mummi;

int main() {
  obs::MetricsRegistry::instance().reset();
  obs::Tracer::instance().clear();
  obs::TelemetryReport report("fig7_kv_feedback");

  std::printf("=== Figure 7: in-memory KV cluster feedback queries "
              "(20 servers) ===\n\n");
  std::printf("%10s %14s %16s %14s | %12s %12s\n", "#frames",
              "retrieve keys", "retrieve values", "delete pairs",
              "wall keys", "wall values");
  std::printf("%10s %14s %16s %14s | %12s %12s\n", "", "(model s)",
              "(model s)", "(model s)", "(measured s)", "(measured s)");

  util::Rng rng(4);
  double virtual_now = 0.0;
  for (int frames : {5000, 10000, 20000, 30000, 40000, 50000, 60000, 70000}) {
    ds::KvCluster kv(20);
    // Each pending frame: an RDF record of a few KB under "rdf:<id>".
    util::Bytes payload(3500);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
    {
      obs::Span span("fig7.populate", "kv");
      for (int i = 0; i < frames; ++i)
        kv.set("rdf:" + std::to_string(i), payload);
    }
    kv.reset_sim_time();

    util::Stopwatch wall;
    std::vector<std::string> keys;
    {
      obs::Span span("fig7.retrieve_keys", "kv");
      keys = kv.keys("rdf:*");
    }
    const double wall_keys = wall.elapsed();

    wall.reset();
    {
      obs::Span span("fig7.retrieve_values", "kv");
      for (const auto& key : keys) (void)kv.get(key);
    }
    const double wall_values = wall.elapsed();

    {
      obs::Span span("fig7.delete_pairs", "kv");
      for (const auto& key : keys) kv.del(key);
    }

    std::printf("%10d %14.2f %16.2f %14.2f | %12.4f %12.4f\n", frames,
                kv.sim_seconds_keys(), kv.sim_seconds_reads(),
                kv.sim_seconds_deletes(), wall_keys, wall_values);

    // Snapshot after each iteration, stamped with accumulated model time —
    // the same timeline the table's model columns report.
    virtual_now += kv.sim_seconds_keys() + kv.sim_seconds_reads() +
                   kv.sim_seconds_deletes() + kv.sim_seconds_writes();
    report.sample(virtual_now);
  }

  if (obs::kCompiledIn) {
    std::printf("\nregistry KV op counts: set=%llu get=%llu del=%llu "
                "keys=%llu\n",
                static_cast<unsigned long long>(
                    obs::counter("kv.ops.set").value()),
                static_cast<unsigned long long>(
                    obs::counter("kv.ops.get").value()),
                static_cast<unsigned long long>(
                    obs::counter("kv.ops.del").value()),
                static_cast<unsigned long long>(
                    obs::counter("kv.ops.keys").value()));
    std::printf("\nspan summary:\n%s",
                obs::Tracer::instance().summary().c_str());
  }

  std::filesystem::create_directories("bench_outputs");
  if (!report.write_json("bench_outputs/telemetry_kv.json")) {
    std::fprintf(stderr, "cannot write bench_outputs/telemetry_kv.json\n");
    return 1;
  }
  std::printf("\nwrote bench_outputs/telemetry_kv.json\n");

  // --- batched vs per-key collect+tag ------------------------------------
  // The CG-to-continuum iteration shape: list pending, fetch every record,
  // tag by renaming into the done namespace. Per-key pays one round trip per
  // record; the batch path pays one per shard touched.
  std::printf("\n=== collect+tag: per-key loop vs pipelined batch ===\n\n");
  std::printf("%10s %14s %14s %10s %10s\n", "#frames", "per-key (s)",
              "batched (s)", "speedup", "identical");

  struct BatchedRow {
    int frames;
    double per_key_s, batched_s, speedup;
    bool identical;
  };
  std::vector<BatchedRow> rows;
  bool all_ok = true;
  for (int frames : {2000, 5000, 10000, 20000}) {
    ds::KvCluster loop_kv(20), batch_kv(20);
    std::vector<std::pair<std::string, util::Bytes>> records;
    records.reserve(static_cast<std::size_t>(frames));
    for (int i = 0; i < frames; ++i) {
      util::Bytes payload(3500);
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
      records.emplace_back("rdf-pending:" + std::to_string(i),
                           std::move(payload));
    }
    for (const auto& [key, value] : records) {
      loop_kv.set(key, value);
      batch_kv.set(key, value);
    }
    loop_kv.reset_sim_time();
    batch_kv.reset_sim_time();

    // Per-key loop: keys + get each + rename each into done.
    std::vector<util::Bytes> loop_values;
    {
      obs::Span span("fig7.collect_tag_loop", "kv");
      const auto keys = loop_kv.keys("rdf-pending", "*");
      loop_values.reserve(keys.size());
      for (const auto& key : keys) loop_values.push_back(*loop_kv.get(key));
      for (const auto& key : keys)
        loop_kv.rename(key, "rdf-done" + key.substr(key.find(':')));
    }
    const double per_key_s = loop_kv.total_sim_seconds();

    // Batched: keys + one MGET + one MRENAME.
    std::vector<util::Bytes> batch_values;
    {
      obs::Span span("fig7.collect_tag_batched", "kv");
      const auto keys = batch_kv.keys("rdf-pending", "*");
      const auto fetched = batch_kv.mget(keys);
      batch_values.reserve(fetched.size());
      for (const auto& v : fetched) batch_values.push_back(*v);
      std::vector<std::pair<std::string, std::string>> renames;
      renames.reserve(keys.size());
      for (const auto& key : keys)
        renames.emplace_back(key, "rdf-done" + key.substr(key.find(':')));
      batch_kv.mrename(renames);
    }
    const double batched_s = batch_kv.total_sim_seconds();

    const bool identical =
        loop_values == batch_values &&
        loop_kv.keys("rdf-done", "*") == batch_kv.keys("rdf-done", "*") &&
        loop_kv.count("rdf-pending") == 0 && batch_kv.count("rdf-pending") == 0;
    const double speedup = batched_s > 0 ? per_key_s / batched_s : 0.0;
    all_ok = all_ok && identical;
    rows.push_back({frames, per_key_s, batched_s, speedup, identical});
    std::printf("%10d %14.3f %14.3f %9.1fx %10s\n", frames, per_key_s,
                batched_s, speedup, identical ? "yes" : "NO");
  }

  {
    std::FILE* f = std::fopen("bench_outputs/fig7_batched.json", "w");
    if (!f) {
      std::fprintf(stderr, "cannot write bench_outputs/fig7_batched.json\n");
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig7_batched\",\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      std::fprintf(f,
                   "    {\"frames\": %d, \"per_key_s\": %.6f, "
                   "\"batched_s\": %.6f, \"speedup\": %.3f, "
                   "\"identical\": %s}%s\n",
                   r.frames, r.per_key_s, r.batched_s, r.speedup,
                   r.identical ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }
  std::printf("\nwrote bench_outputs/fig7_batched.json\n");
  if (!all_ok) {
    std::fprintf(stderr, "batched results diverged from the per-key loop\n");
    return 1;
  }

  std::printf("\nshape checks (model columns, calibrated to the paper's "
              "measured rates):\n");
  std::printf("  - all three query types scale linearly in the number of "
              "frames;\n");
  std::printf("  - value retrieval is ~5x the cost of key retrieval or "
              "deletion\n    (~2k reads/s vs ~10k keys+deletes/s);\n");
  std::printf("  - even the 70k-frame outlier iteration (controlled-shutdown "
              "backlog)\n    completes in well under a 10-minute feedback "
              "budget.\n");
  return 0;
}
