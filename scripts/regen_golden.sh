#!/usr/bin/env bash
# Regenerate the golden science-fingerprint corpus under tests/data/golden/.
#
# The GoldenFingerprintContract tests pin the byte-level outcome of three
# seed campaign configurations (plain, faulted+supervised, checkpoint-resume).
# Run this ONLY when a change intentionally moves campaign bytes — new RNG
# draws, fold-order changes, fingerprint field additions — then commit the
# regenerated files together with the change and a note in the PR explaining
# why the corpus moved. See TESTING.md ("Golden corpus").
#
# Usage: scripts/regen_golden.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
jobs=$(nproc 2>/dev/null || echo 4)

cmake -B "$build_dir" -S . >/dev/null
cmake --build "$build_dir" -j "$jobs" --target mummi_tests

echo "=== regenerating tests/data/golden/ ==="
MUMMI_REGEN_GOLDEN=1 "$build_dir/tests/mummi_tests" \
  --gtest_filter='GoldenFingerprintContract.*'

echo "=== verifying the fresh corpus round-trips ==="
"$build_dir/tests/mummi_tests" --gtest_filter='GoldenFingerprintContract.*'

echo "=== golden corpus regenerated ==="
git -C . status --short tests/data/golden/ || true
