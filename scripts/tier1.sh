#!/usr/bin/env bash
# Tier-1 gate: the full build + test cycle, then the fault/resilience tests
# again under ASan+UBSan (the paths that juggle raw state across crash,
# restart and retry deserve the extra scrutiny).
#
# Usage: scripts/tier1.sh [--no-sanitize]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "=== tier 1: regular build + full ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "${1:-}" == "--no-sanitize" ]]; then
  echo "=== tier 1: PASS (sanitizer stage skipped) ==="
  exit 0
fi

echo "=== tier 1: ASan+UBSan build, fault/resilience tests ==="
cmake -B build-asan -S . -DMUMMI_SANITIZE="address;undefined" >/dev/null
cmake --build build-asan -j "$jobs" --target mummi_tests
./build-asan/tests/mummi_tests \
  --gtest_filter='*Backoff*:*FaultPlan*:*ResilientKv*:*FailNode*:*Resilience*:*FsStoreFault*:*JobTrackerBoundary*'

echo "=== tier 1: PASS ==="
