#!/usr/bin/env bash
# Tier-1 gate: the full build + test cycle, then the fault/resilience tests
# again under ASan+UBSan (the paths that juggle raw state across crash,
# restart and retry deserve the extra scrutiny), and the concurrent KV /
# feedback paths under TSan (shared_mutex shards + pool fan-out).
#
# Usage: scripts/tier1.sh [--no-sanitize] [--bench] [-L <label>]
#   --bench additionally runs scripts/bench_smoke.sh (reduced-scale JSON
#   benches with output validation) after the test stage.
#   -L <label> restricts the ctest stage to one taxonomy stage (unit,
#   property, integration, contract — see TESTING.md); repeatable.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
no_sanitize=0
bench=0
label_args=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --no-sanitize) no_sanitize=1; shift ;;
    --bench) bench=1; shift ;;
    -L)
      [[ $# -ge 2 ]] || { echo "-L requires a label" >&2; exit 2; }
      label_args+=(-L "$2"); shift 2 ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
done

echo "=== tier 1: regular build + ctest ${label_args[*]:-(all stages)} ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest_log=$(mktemp)
ctest --test-dir build --output-on-failure -j "$jobs" \
  ${label_args[@]+"${label_args[@]}"} | tee "$ctest_log"

echo "=== tier 1: slowest 10 tests ==="
awk '/ Test +#[0-9]+:/ && / sec$/ {
       for (i = 1; i <= NF; i++) if ($i == "sec") t = $(i - 1);
       print t, $4
     }' "$ctest_log" | sort -rn | head -10
rm -f "$ctest_log"

if [[ "$bench" == 1 ]]; then
  echo "=== tier 1: bench smoke (reduced scale, JSON validated) ==="
  scripts/bench_smoke.sh build
fi

echo "=== tier 1: telemetry-off build compiles obs:: to no-ops ==="
# The instrumented call sites stay in the source; -DMUMMI_TELEMETRY=OFF must
# still build them (against the no-op shells) and the probe must observe a
# registry/tracer that records nothing.
cmake -B build-notelem -S . -DMUMMI_TELEMETRY=OFF >/dev/null
cmake --build build-notelem -j "$jobs" --target obs_noop_probe
./build-notelem/tests/obs_noop_probe

if [[ "$no_sanitize" == 1 ]]; then
  echo "=== tier 1: PASS (sanitizer stage skipped) ==="
  exit 0
fi

echo "=== tier 1: ASan+UBSan build, fault/resilience tests ==="
cmake -B build-asan -S . -DMUMMI_SANITIZE="address;undefined" >/dev/null
cmake --build build-asan -j "$jobs" --target mummi_tests
./build-asan/tests/mummi_tests \
  --gtest_filter='*Backoff*:*FaultPlan*:*ResilientKv*:*FailNode*:*Resilience*:*FsStoreFault*:*JobTrackerBoundary*'

echo "=== tier 1: ASan+UBSan build, crash-point sweep ==="
# The crash-consistency sweep throws SimulatedCrash through half-finished
# I/O stacks and then reuses the survivors — exactly where use-after-scope
# or leaked-state bugs would hide; run the whole sweep under ASan.
./build-asan/tests/mummi_tests \
  --gtest_filter='*CrashPoint*:*CrashConsistency*:*CrashSweep*:*Checkpoint*'

echo "=== tier 1: TSan build, concurrent KV + feedback tests ==="
# The shared-lock shards, pooled scans/mgets and batch retry paths are the
# code that races if anything does; run them under ThreadSanitizer.
cmake -B build-tsan -S . -DMUMMI_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$jobs" --target mummi_tests
./build-tsan/tests/mummi_tests \
  --gtest_filter='*KvCluster*:*KvBatch*:*SharedLock*:*ResilientKv*:*Aa2Cg*:*Cg2Cont*'

echo "=== tier 1: TSan build, supervision plane tests ==="
# The supervision plane (watchdog ticks, quarantine ledger, node health,
# campaign-level supervision) mutates scheduler state from timer callbacks;
# reuse the TSan build to prove those paths are race-free too.
./build-tsan/tests/mummi_tests \
  --gtest_filter='*Watchdog*:*Specul*:*Quarantine*:*NodeHealth*:*Supervis*'

echo "=== tier 1: TSan build, threaded MD engine tests ==="
# The MD force engine scatters into per-block buffers from pool workers and
# folds them on the caller; the neighbor build fills CSR rows the same way.
# The determinism suite drives those paths at 2 and 8 workers — any cross-
# block write or unsynchronized scratch access shows up here.
./build-tsan/tests/mummi_tests \
  --gtest_filter='*ParallelMd*:*NveDrift*'

echo "=== tier 1: TSan build, threaded continuum engine tests ==="
# The continuum engine runs the same scatter-into-block-buffers / fold-on-
# caller discipline over DDFT stencil rows and protein blocks; its
# determinism suite drives 2- and 8-worker pools against the serial
# reference, so any cross-block write or racy scratch reuse trips here.
./build-tsan/tests/mummi_tests \
  --gtest_filter='*ParallelContinuum*'

echo "=== tier 1: TSan build, threaded campaign tick tests ==="
# The campaign maintain tick pipelines in-situ stepping (pool) against
# analysis fan-out + serial fold (caller) over shared SimStates; the
# determinism suites drive 2/4/8-worker pools against the serial reference,
# so a racy chunk handoff or cross-stage access trips here.
./build-tsan/tests/mummi_tests \
  --gtest_filter='*PipelineTwoStage*:*InSitu*:*ParallelCampaign*'

echo "=== tier 1: PASS ==="
