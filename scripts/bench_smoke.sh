#!/usr/bin/env bash
# Bench smoke: run the JSON-emitting benchmarks at reduced scale and fail if
# any of them exits nonzero or writes malformed/incomplete JSON. This guards
# the bench binaries and their bench_outputs/*.json contract (the files the
# plotting/regression tooling consumes) without paying full-scale runtimes.
#
# Usage: scripts/bench_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
if [[ ! -d "$build_dir/bench" ]]; then
  echo "bench_smoke: $build_dir/bench not found (build first)" >&2
  exit 1
fi

run_bench() {
  local name="$1" json="$2"
  shift 2
  echo "--- $name $* ---"
  rm -f "bench_outputs/$json"
  "$build_dir/bench/$name" "$@"
  local path="bench_outputs/$json"
  if [[ ! -s "$path" ]]; then
    echo "bench_smoke: $name did not write $path" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$path" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
if "bench" not in doc:
    sys.exit(f"{sys.argv[1]}: missing 'bench' key")
EOF
  else
    # Crude structural check when python3 is absent: non-empty, balanced
    # outermost braces, and the bench tag present.
    grep -q '"bench"' "$path"
    [[ "$(head -c 1 "$path")" == "{" ]]
    [[ "$(tail -c 2 "$path" | head -c 1)" == "}" ]]
  fi
  echo "    $path OK"
}

run_bench bench_ml_selectors ml_selectors.json --small
run_bench bench_sched_matcher sched_matcher.json --small
run_bench bench_table1_campaign table1.json --small
run_bench bench_resilience resilience.json

echo "=== bench smoke: PASS ==="
