#!/usr/bin/env bash
# Bench smoke: run the JSON-emitting benchmarks at reduced scale and fail if
# any of them exits nonzero or writes malformed/incomplete JSON. This guards
# the bench binaries and their bench_outputs/*.json contract (the files the
# plotting/regression tooling consumes) without paying full-scale runtimes.
#
# Usage: scripts/bench_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
if [[ ! -d "$build_dir/bench" ]]; then
  echo "bench_smoke: $build_dir/bench not found (build first)" >&2
  exit 1
fi

run_bench() {
  local name="$1" json="$2"
  shift 2
  echo "--- $name $* ---"
  rm -f "bench_outputs/$json"
  "$build_dir/bench/$name" "$@"
  local path="bench_outputs/$json"
  if [[ ! -s "$path" ]]; then
    echo "bench_smoke: $name did not write $path" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$path" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
if "bench" not in doc:
    sys.exit(f"{sys.argv[1]}: missing 'bench' key")
EOF
  else
    # Crude structural check when python3 is absent: non-empty, balanced
    # outermost braces, and the bench tag present.
    grep -q '"bench"' "$path"
    [[ "$(head -c 1 "$path")" == "{" ]]
    [[ "$(tail -c 2 "$path" | head -c 1)" == "}" ]]
  fi
  echo "    $path OK"
}

run_bench bench_ml_selectors ml_selectors.json --small
run_bench bench_sched_matcher sched_matcher.json --small
run_bench bench_table1_campaign table1.json --small
run_bench bench_resilience resilience.json

# Crash-recovery contract: the crash-point sweep kills the persistence layer
# at every registered boundary (21 points: checkpoint save chain, FsStore
# put/move/del, tar append/flush, campaign checkpoint ticks), recovers, and
# compares within-durability-group science fingerprints. Every armed point
# must crash, every crash must recover, and nothing may diverge.
run_bench bench_resilience crash_recovery.json --crash-sweep
check_crash_recovery() {
  local path="bench_outputs/crash_recovery.json"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$path" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
if doc.get("points_swept", 0) < 21:
    sys.exit(f"{sys.argv[1]}: expected >= 21 crash points swept: {doc.get('points_swept')}")
if doc.get("divergences", -1) != 0:
    sys.exit(f"{sys.argv[1]}: crash/resume divergence detected: {doc.get('divergences')}")
if doc.get("crashes", 0) != doc.get("recoveries", -1):
    sys.exit(f"{sys.argv[1]}: not every crash recovered: "
             f"{doc.get('crashes')} crashes vs {doc.get('recoveries')} recoveries")
rows = doc.get("rows")
if not isinstance(rows, list) or not rows:
    sys.exit(f"{sys.argv[1]}: 'rows' must be a non-empty list")
for r in rows:
    if not r.get("crashed") or not r.get("recovered") or r.get("divergent"):
        sys.exit(f"{sys.argv[1]}: bad sweep row: {r}")
EOF
  else
    grep -q '"divergences": 0' "$path" && ! grep -q '"recovered": false' "$path"
  fi
  echo "    $path crash-recovery contract OK"
}
check_crash_recovery

# Supervision contract: the same bench also sweeps the watchdog plane. The
# supervised run must never lose goodput to an idle supervisor (rate 0 is
# bit-identical), must recover goodput at at least one hang rate, and the
# combined hang+straggler+poison sample must show hangs caught and poison
# quarantined.
check_supervision() {
  local path="bench_outputs/resilience_supervised.json"
  if [[ ! -s "$path" ]]; then
    echo "bench_smoke: bench_resilience did not write $path" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$path" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
rows = doc.get("samples")
if not isinstance(rows, list) or not rows:
    sys.exit(f"{sys.argv[1]}: 'samples' must be a non-empty list")
sweep = [r for r in rows if not r.get("combined")]
combined = [r for r in rows if r.get("combined")]
idle = [r for r in sweep if r["hang_rate_per_h"] == 0.0]
if not idle or idle[0]["supervised_cg_total_us"] != idle[0]["unsupervised_cg_total_us"]:
    sys.exit(f"{sys.argv[1]}: idle supervisor must not change goodput")
if not any(r["supervised_cg_total_us"] > r["unsupervised_cg_total_us"]
           for r in sweep if r["hang_rate_per_h"] > 0.0):
    sys.exit(f"{sys.argv[1]}: watchdog never recovered goodput")
if any(r["supervised_cg_total_us"] < 0.8 * r["unsupervised_cg_total_us"]
       for r in sweep):
    sys.exit(f"{sys.argv[1]}: supervision cost exceeds 20% somewhere")
if not combined:
    sys.exit(f"{sys.argv[1]}: missing combined hang+straggler+poison sample")
c = combined[0]
if c.get("hangs_detected", 0) <= 0 or c.get("quarantined", 0) <= 0:
    sys.exit(f"{sys.argv[1]}: combined sample caught no hangs or poison: {c}")
EOF
  else
    grep -q '"hangs_detected"' "$path" && grep -q '"combined"' "$path"
  fi
  echo "    $path supervision contract OK"
}
check_supervision

# Telemetry contract: fig5 writes the campaign telemetry series plus a Chrome
# trace; fig7 writes the KV telemetry series. Validate both shapes beyond the
# plain "bench" key — snapshots/final structure and trace-event required keys.
check_telemetry() {
  local path="$1"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$path" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("bench", "snapshots", "final"):
    if key not in doc:
        sys.exit(f"{sys.argv[1]}: missing '{key}' key")
if not isinstance(doc["snapshots"], list) or not doc["snapshots"]:
    sys.exit(f"{sys.argv[1]}: 'snapshots' must be a non-empty list")
for snap in doc["snapshots"] + [doc["final"]]:
    for key in ("time", "counters", "gauges", "histograms"):
        if key not in snap:
            sys.exit(f"{sys.argv[1]}: snapshot missing '{key}'")
EOF
  else
    grep -q '"snapshots"' "$path" && grep -q '"final"' "$path"
  fi
  echo "    $path telemetry OK"
}

check_chrome_trace() {
  local path="$1"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$path" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc.get("traceEvents")
if not isinstance(events, list) or not events:
    sys.exit(f"{sys.argv[1]}: 'traceEvents' must be a non-empty list")
for ev in events:
    for key in ("name", "ph", "pid", "tid", "ts"):
        if key not in ev:
            sys.exit(f"{sys.argv[1]}: event missing '{key}': {ev}")
    if ev["ph"] == "X" and "dur" not in ev:
        sys.exit(f"{sys.argv[1]}: complete event missing 'dur': {ev}")
EOF
  else
    grep -q '"traceEvents"' "$path" && grep -q '"ph"' "$path"
  fi
  echo "    $path chrome trace OK"
}

rm -f bench_outputs/trace_fig5.json
run_bench bench_fig5_occupancy telemetry.json --small
check_telemetry bench_outputs/telemetry.json
check_chrome_trace bench_outputs/trace_fig5.json
run_bench bench_fig7_kv_feedback telemetry_kv.json
check_telemetry bench_outputs/telemetry_kv.json

# Batched collect+tag contract: the pipelined path must be byte-identical to
# the per-key loop and at least 3x faster in model time on every row.
check_fig7_batched() {
  local path="bench_outputs/fig7_batched.json"
  if [[ ! -s "$path" ]]; then
    echo "bench_smoke: bench_fig7_kv_feedback did not write $path" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$path" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
rows = doc.get("rows")
if not isinstance(rows, list) or not rows:
    sys.exit(f"{sys.argv[1]}: 'rows' must be a non-empty list")
for r in rows:
    if not r.get("identical"):
        sys.exit(f"{sys.argv[1]}: batched results diverged: {r}")
    if r.get("speedup", 0.0) < 3.0:
        sys.exit(f"{sys.argv[1]}: batched speedup below 3x: {r}")
EOF
  else
    grep -q '"identical": true' "$path" && ! grep -q '"identical": false' "$path"
  fi
  echo "    $path batched contract OK"
}
check_fig7_batched

# Concurrency sweep: the deterministic shared-lock model must show read
# throughput monotone in the thread count through 4 threads on every shard
# configuration (wall numbers are host-dependent and only checked positive).
run_bench bench_kv_concurrency kv_concurrency.json --small
check_kv_concurrency() {
  local path="bench_outputs/kv_concurrency.json"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$path" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
rows = doc.get("rows")
if not isinstance(rows, list) or not rows:
    sys.exit(f"{sys.argv[1]}: 'rows' must be a non-empty list")
by_shards = {}
for r in rows:
    if r.get("wall_ops_per_s", 0.0) <= 0.0:
        sys.exit(f"{sys.argv[1]}: non-positive wall throughput: {r}")
    by_shards.setdefault(r["shards"], []).append(r)
for shards, group in by_shards.items():
    group.sort(key=lambda r: r["threads"])
    upto4 = [r for r in group if r["threads"] <= 4]
    shared = [r["virtual_shared_ops_per_s"] for r in upto4]
    if shared != sorted(shared) or len(set(shared)) != len(shared):
        sys.exit(f"{sys.argv[1]}: shared-lock ops/s not strictly "
                 f"increasing through 4 threads at {shards} shards: {shared}")
EOF
  else
    grep -q '"virtual_shared_ops_per_s"' "$path"
  fi
  echo "    $path concurrency contract OK"
}
check_kv_concurrency

# MD force-engine contract: the thread sweep must produce bit-identical
# forces/energy at every pool size (rows carry an "identical" flag computed
# against the serial reference), the deterministic block-schedule model must
# reach >= 3x at 8 threads, and wall throughput must be positive (its scaling
# is host-dependent and not checked).
run_bench bench_micro_kernels md_kernels.json --md-kernels --small
check_md_kernels() {
  local path="bench_outputs/md_kernels.json"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$path" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
rows = doc.get("rows")
if not isinstance(rows, list) or not rows:
    sys.exit(f"{sys.argv[1]}: 'rows' must be a non-empty list")
threads = sorted(r["threads"] for r in rows)
if threads != [1, 2, 4, 8]:
    sys.exit(f"{sys.argv[1]}: expected a 1/2/4/8 thread sweep, got {threads}")
for r in rows:
    if not r.get("identical"):
        sys.exit(f"{sys.argv[1]}: forces diverged from serial: {r}")
    if r.get("wall_pairs_per_s", 0.0) <= 0.0:
        sys.exit(f"{sys.argv[1]}: non-positive wall throughput: {r}")
eight = [r for r in rows if r["threads"] == 8][0]
if eight.get("virtual_speedup", 0.0) < 3.0:
    sys.exit(f"{sys.argv[1]}: virtual speedup at 8 threads below 3x: {eight}")
EOF
  else
    grep -q '"identical": true' "$path" && ! grep -q '"identical": false' "$path"
  fi
  echo "    $path md kernel contract OK"
}
check_md_kernels

# Continuum engine contract: the DDFT thread sweep must produce serialized
# frames byte-identical at every pool size AND identical to the legacy
# reference kernels (rows carry the frame fingerprint), the deterministic
# block-schedule model must reach >= 3x at 8 threads, and wall throughput
# must be positive (its scaling is host-dependent and not checked).
run_bench bench_continuum continuum_kernels.json --small
check_continuum_kernels() {
  local path="bench_outputs/continuum_kernels.json"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$path" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
rows = doc.get("rows")
if not isinstance(rows, list) or not rows:
    sys.exit(f"{sys.argv[1]}: 'rows' must be a non-empty list")
threads = sorted(r["threads"] for r in rows)
if threads != [1, 2, 4, 8]:
    sys.exit(f"{sys.argv[1]}: expected a 1/2/4/8 thread sweep, got {threads}")
legacy_fp = doc.get("legacy_fingerprint")
if not legacy_fp:
    sys.exit(f"{sys.argv[1]}: missing 'legacy_fingerprint'")
for r in rows:
    if not r.get("identical"):
        sys.exit(f"{sys.argv[1]}: frame diverged from legacy kernels: {r}")
    if r.get("fingerprint") != legacy_fp:
        sys.exit(f"{sys.argv[1]}: fingerprint mismatch: {r}")
    if r.get("wall_cells_per_s", 0.0) <= 0.0:
        sys.exit(f"{sys.argv[1]}: non-positive wall throughput: {r}")
eight = [r for r in rows if r["threads"] == 8][0]
if eight.get("virtual_speedup", 0.0) < 3.0:
    sys.exit(f"{sys.argv[1]}: virtual speedup at 8 threads below 3x: {eight}")
EOF
  else
    grep -q '"identical": true' "$path" && ! grep -q '"identical": false' "$path"
  fi
  echo "    $path continuum kernel contract OK"
}
check_continuum_kernels

# Campaign maintain-tick contract: the in-situ thread sweep must produce a
# byte-identical science fingerprint at every pool size (rows carry the
# fingerprint and an "identical" flag against the serial run), and the
# deterministic tick-schedule model must reach >= 3x at 8 threads. Wall time
# is host-dependent and not checked (the tick is a small slice of campaign
# wall time; the virtual model isolates the schedule itself).
run_bench bench_campaign_parallel campaign_parallel.json --small
check_campaign_parallel() {
  local path="bench_outputs/campaign_parallel.json"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$path" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
rows = doc.get("rows")
if not isinstance(rows, list) or not rows:
    sys.exit(f"{sys.argv[1]}: 'rows' must be a non-empty list")
threads = sorted(r["threads"] for r in rows)
if threads != [1, 2, 4, 8]:
    sys.exit(f"{sys.argv[1]}: expected a 1/2/4/8 thread sweep, got {threads}")
fingerprints = {r.get("fingerprint") for r in rows}
if len(fingerprints) != 1 or not fingerprints.pop():
    sys.exit(f"{sys.argv[1]}: fingerprints not identical across pool sizes")
for r in rows:
    if not r.get("identical"):
        sys.exit(f"{sys.argv[1]}: fingerprint diverged from serial: {r}")
if doc.get("analysis_frames", 0) <= 0:
    sys.exit(f"{sys.argv[1]}: no frames analyzed")
eight = [r for r in rows if r["threads"] == 8][0]
if eight.get("virtual_speedup", 0.0) < 3.0:
    sys.exit(f"{sys.argv[1]}: virtual speedup at 8 threads below 3x: {eight}")
EOF
  else
    grep -q '"identical": true' "$path" && ! grep -q '"identical": false' "$path"
  fi
  echo "    $path campaign tick contract OK"
}
check_campaign_parallel

echo "=== bench smoke: PASS ==="
