// Backend-parameterized DataStore conformance suite: every backend must obey
// the same contract, since the application switches between them "with a
// single configuration switch".
#include <gtest/gtest.h>

#include <filesystem>

#include "datastore/fs_store.hpp"
#include "datastore/red_store.hpp"
#include "datastore/store_factory.hpp"
#include "datastore/tar_store.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mummi::ds {
namespace {

class StoreConformance : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mummi_store_" + std::to_string(::getpid()) + "_" + GetParam() +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    util::Config cfg;
    cfg.set("datastore.backend", GetParam());
    cfg.set("datastore.root", dir_.string());
    cfg.set("datastore.servers", "4");
    store_ = make_store(cfg);
  }
  void TearDown() override {
    store_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
  DataStorePtr store_;
};

TEST_P(StoreConformance, BackendName) {
  EXPECT_EQ(store_->backend(), GetParam());
}

TEST_P(StoreConformance, PutGetRoundTrip) {
  store_->put("ns", "key", util::to_bytes("value"));
  EXPECT_EQ(util::to_string(store_->get("ns", "key")), "value");
}

TEST_P(StoreConformance, ExistsSemantics) {
  EXPECT_FALSE(store_->exists("ns", "nope"));
  store_->put("ns", "yes", util::to_bytes("x"));
  EXPECT_TRUE(store_->exists("ns", "yes"));
  EXPECT_FALSE(store_->exists("other", "yes"));  // namespaced
}

TEST_P(StoreConformance, GetMissingThrows) {
  EXPECT_THROW(store_->get("ns", "missing"), util::StoreError);
}

TEST_P(StoreConformance, OverwriteReplacesValue) {
  store_->put("ns", "k", util::to_bytes("old"));
  store_->put("ns", "k", util::to_bytes("new"));
  EXPECT_EQ(util::to_string(store_->get("ns", "k")), "new");
  EXPECT_EQ(store_->keys("ns", "*").size(), 1u);
}

TEST_P(StoreConformance, BinaryPayloadFidelity) {
  util::Rng rng(13);
  util::Bytes payload(4096);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
  store_->put("bin", "blob", payload);
  EXPECT_EQ(store_->get("bin", "blob"), payload);
}

TEST_P(StoreConformance, EmptyPayload) {
  store_->put("ns", "empty", {});
  EXPECT_TRUE(store_->get("ns", "empty").empty());
  EXPECT_TRUE(store_->exists("ns", "empty"));
}

TEST_P(StoreConformance, KeysGlobFiltering) {
  for (int i = 0; i < 20; ++i)
    store_->put("frames", "frame-" + std::to_string(i), util::to_bytes("x"));
  store_->put("frames", "other", util::to_bytes("y"));
  EXPECT_EQ(store_->keys("frames", "*").size(), 21u);
  EXPECT_EQ(store_->keys("frames", "frame-*").size(), 20u);
  EXPECT_EQ(store_->keys("frames", "frame-1?").size(), 10u);
  EXPECT_TRUE(store_->keys("empty-ns", "*").empty());
}

TEST_P(StoreConformance, EraseRemovesFromListing) {
  store_->put("ns", "k", util::to_bytes("x"));
  EXPECT_TRUE(store_->erase("ns", "k"));
  EXPECT_FALSE(store_->erase("ns", "k"));
  EXPECT_FALSE(store_->exists("ns", "k"));
  EXPECT_TRUE(store_->keys("ns", "*").empty());
}

TEST_P(StoreConformance, MoveIsTheTaggingPrimitive) {
  store_->put("pending", "f1", util::to_bytes("data"));
  store_->move("pending", "f1", "done");
  EXPECT_FALSE(store_->exists("pending", "f1"));
  EXPECT_EQ(util::to_string(store_->get("done", "f1")), "data");
}

TEST_P(StoreConformance, MoveMissingThrows) {
  EXPECT_THROW(store_->move("pending", "ghost", "done"), util::StoreError);
}

TEST_P(StoreConformance, MoveManyScalesWithPendingOnly) {
  // The feedback pattern: pending namespace drains fully each iteration.
  for (int i = 0; i < 50; ++i)
    store_->put("pending", "f" + std::to_string(i), util::to_bytes("d"));
  for (const auto& key : store_->keys("pending", "*"))
    store_->move("pending", key, "done");
  EXPECT_TRUE(store_->keys("pending", "*").empty());
  EXPECT_EQ(store_->keys("done", "*").size(), 50u);
}

TEST_P(StoreConformance, TextConvenience) {
  store_->put_text("ns", "t", "hello text");
  EXPECT_EQ(store_->get_text("ns", "t"), "hello text");
}

TEST_P(StoreConformance, NpyConvenience) {
  const auto array = util::NpyArray::from_f32({2, 2}, {1, 2, 3, 4});
  store_->put_npy("ns", "arr", array);
  const auto back = store_->get_npy("ns", "arr");
  EXPECT_EQ(back.shape, array.shape);
  EXPECT_EQ(back.f32, array.f32);
}

TEST_P(StoreConformance, ManyNamespacesIndependent) {
  for (int n = 0; n < 10; ++n)
    store_->put("ns" + std::to_string(n), "k",
                util::to_bytes(std::to_string(n)));
  for (int n = 0; n < 10; ++n)
    EXPECT_EQ(store_->get_text("ns" + std::to_string(n), "k"),
              std::to_string(n));
}

TEST_P(StoreConformance, FlushIsSafeAnytime) {
  store_->flush();
  store_->put("ns", "k", util::to_bytes("x"));
  store_->flush();
  EXPECT_TRUE(store_->exists("ns", "k"));
}

INSTANTIATE_TEST_SUITE_P(Backends, StoreConformance,
                         ::testing::Values("filesystem", "taridx", "redis"),
                         [](const auto& info) { return info.param; });

TEST(StoreFactory, UnknownBackendThrows) {
  util::Config cfg;
  cfg.set("datastore.backend", "carrier-pigeon");
  EXPECT_THROW(make_store(cfg), util::ConfigError);
}

TEST(StoreFactory, MissingBackendThrows) {
  util::Config cfg;
  EXPECT_THROW(make_store(cfg), util::ConfigError);
}

TEST(FsStore, InodeCountAndArchivingContrast) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("mummi_inode_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  {
    FsStore files((dir / "fs").string());
    TarStore tars((dir / "tar").string());
    for (int i = 0; i < 100; ++i) {
      files.put("ns", "k" + std::to_string(i), util::to_bytes("x"));
      tars.put("ns", "k" + std::to_string(i), util::to_bytes("x"));
    }
    tars.flush();
    // The inode-reduction argument of Sec. 4.2: N files vs 2 per namespace.
    EXPECT_EQ(files.inode_count(), 100u);
    EXPECT_EQ(tars.inode_count(), 2u);
  }
  std::filesystem::remove_all(dir);
}

TEST(FsStore, LatencyAccounting) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("mummi_lat_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  {
    FsStore store(dir.string(), 0.01);
    store.put("ns", "a", util::to_bytes("x"));
    (void)store.get("ns", "a");
    (void)store.keys("ns", "*");
    EXPECT_NEAR(store.latency_accounted(), 0.03, 1e-12);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mummi::ds
