#include "datastore/taridx.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "util/bytes.hpp"
#include "util/checkpoint.hpp"
#include "util/rng.hpp"

namespace mummi::ds {
namespace {

class TarIdxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mummi_tar_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string tar_path() const {
    return (dir_ / "archive.tar").string();
  }

  std::filesystem::path dir_;
};

TEST_F(TarIdxTest, AppendReadRoundTrip) {
  TarIdx tar(tar_path());
  tar.append("key-a", util::to_bytes("alpha"));
  tar.append("key-b", util::to_bytes("beta"));
  EXPECT_EQ(util::to_string(*tar.read("key-a")), "alpha");
  EXPECT_EQ(util::to_string(*tar.read("key-b")), "beta");
  EXPECT_FALSE(tar.read("key-c").has_value());
  EXPECT_EQ(tar.count(), 2u);
}

TEST_F(TarIdxTest, EmptyValue) {
  TarIdx tar(tar_path());
  tar.append("empty", {});
  ASSERT_TRUE(tar.read("empty").has_value());
  EXPECT_TRUE(tar.read("empty")->empty());
}

TEST_F(TarIdxTest, LargeUnalignedValues) {
  TarIdx tar(tar_path());
  util::Rng rng(4);
  for (std::size_t size : {1u, 511u, 512u, 513u, 100000u}) {
    util::Bytes data(size);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    const std::string key = "blob-" + std::to_string(size);
    tar.append(key, data);
    EXPECT_EQ(*tar.read(key), data) << size;
  }
}

TEST_F(TarIdxTest, DuplicateKeyLastWins) {
  // "In the event of a failure during a write, the same key gets reinserted
  // and is taken to be the correct value."
  TarIdx tar(tar_path());
  tar.append("key", util::to_bytes("first"));
  tar.append("key", util::to_bytes("second"));
  EXPECT_EQ(util::to_string(*tar.read("key")), "second");
  EXPECT_EQ(tar.count(), 1u);
}

TEST_F(TarIdxTest, EraseKeyIsIndexOnly) {
  TarIdx tar(tar_path());
  tar.append("gone", util::to_bytes("data"));
  const auto bytes_before = tar.data_bytes();
  EXPECT_TRUE(tar.erase_key("gone"));
  EXPECT_FALSE(tar.erase_key("gone"));
  EXPECT_FALSE(tar.contains("gone"));
  EXPECT_EQ(tar.data_bytes(), bytes_before);  // append-only media
}

TEST_F(TarIdxTest, KeysSorted) {
  TarIdx tar(tar_path());
  tar.append("c", {});
  tar.append("a", {});
  tar.append("b", {});
  EXPECT_EQ(tar.keys(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(TarIdxTest, PersistsAcrossReopen) {
  {
    TarIdx tar(tar_path());
    tar.append("persist", util::to_bytes("value"));
    tar.flush();
  }
  TarIdx again(tar_path());
  EXPECT_EQ(util::to_string(*again.read("persist")), "value");
}

TEST_F(TarIdxTest, RebuildsIndexWhenSidecarMissing) {
  {
    TarIdx tar(tar_path());
    tar.append("x", util::to_bytes("1"));
    tar.append("y", util::to_bytes("22"));
    tar.flush();
  }
  util::remove_file(tar_path() + ".idx");
  TarIdx rebuilt(tar_path());
  EXPECT_EQ(rebuilt.count(), 2u);
  EXPECT_EQ(util::to_string(*rebuilt.read("y")), "22");
}

TEST_F(TarIdxTest, RebuildsIndexWhenSidecarCorrupt) {
  {
    TarIdx tar(tar_path());
    tar.append("x", util::to_bytes("data"));
    tar.flush();
  }
  util::write_file(tar_path() + ".idx", util::to_bytes("garbage"));
  TarIdx rebuilt(tar_path());
  EXPECT_EQ(util::to_string(*rebuilt.read("x")), "data");
}

TEST_F(TarIdxTest, AppendAfterReopenDoesNotCorrupt) {
  {
    TarIdx tar(tar_path());
    tar.append("first", util::to_bytes("1"));
    tar.flush();
  }
  {
    TarIdx tar(tar_path());
    tar.append("second", util::to_bytes("2"));
    tar.flush();
  }
  TarIdx tar(tar_path());
  EXPECT_EQ(tar.count(), 2u);
  EXPECT_EQ(util::to_string(*tar.read("first")), "1");
  EXPECT_EQ(util::to_string(*tar.read("second")), "2");
}

TEST_F(TarIdxTest, ScanListsMembers) {
  {
    TarIdx tar(tar_path());
    tar.append("m1", util::to_bytes("aaa"));
    tar.append("m2", util::to_bytes("bbbbb"));
    tar.flush();
  }
  const auto members = TarIdx::scan(tar_path());
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(std::get<0>(members[0]), "m1");
  EXPECT_EQ(std::get<2>(members[0]), 3u);
  EXPECT_EQ(std::get<0>(members[1]), "m2");
  EXPECT_EQ(std::get<2>(members[1]), 5u);
}

TEST_F(TarIdxTest, ProducesStandardTarReadableByExternalTool) {
  // "The archives created using the pytaridx are standard tar files, which
  // are portable and can be used with the commonly-available decoder."
  {
    TarIdx tar(tar_path());
    tar.append("hello.txt", util::to_bytes("hello world\n"));
    tar.append("dir-entry", util::to_bytes("more data"));
    tar.flush();
  }
  const std::string cmd =
      "tar -tf " + tar_path() + " > " + (dir_ / "listing.txt").string() +
      " 2>/dev/null";
  if (std::system(cmd.c_str()) == 0) {
    const auto listing = util::read_file((dir_ / "listing.txt").string());
    ASSERT_TRUE(listing.has_value());
    const std::string text = util::to_string(*listing);
    EXPECT_NE(text.find("hello.txt"), std::string::npos);
    EXPECT_NE(text.find("dir-entry"), std::string::npos);
  } else {
    GTEST_SKIP() << "system tar unavailable";
  }
}

TEST_F(TarIdxTest, ManyMembersRandomAccess) {
  TarIdx tar(tar_path());
  util::Rng rng(9);
  constexpr int kMembers = 500;
  for (int i = 0; i < kMembers; ++i) {
    util::ByteWriter w;
    w.u64(static_cast<std::uint64_t>(i) * 31337);
    tar.append("member-" + std::to_string(i), w.data());
  }
  // Random-access spot checks.
  for (int trial = 0; trial < 50; ++trial) {
    const int i = static_cast<int>(rng.uniform_index(kMembers));
    auto data = tar.read("member-" + std::to_string(i));
    ASSERT_TRUE(data.has_value());
    util::ByteReader r(*data);
    EXPECT_EQ(r.u64(), static_cast<std::uint64_t>(i) * 31337);
  }
  EXPECT_EQ(tar.count(), static_cast<std::size_t>(kMembers));
}

}  // namespace
}  // namespace mummi::ds
