// Namespace index + pipelined batch operations of the KV cluster.
//
// Three properties under test: (1) the per-shard namespace index stays
// exactly in sync with the data through every mutation path, including
// server wipes; (2) namespace-confined listing costs are independent of
// other namespaces' population (the O(pending) guarantee the feedback
// tagging strategy relies on); (3) every batch op is observably equivalent
// to its per-key loop — byte-identical results, never more virtual time.

#include "datastore/kv_cluster.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace mummi::ds {
namespace {

std::vector<std::pair<std::string, util::Bytes>> make_records(
    const std::string& ns, int n) {
  std::vector<std::pair<std::string, util::Bytes>> records;
  records.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    records.emplace_back(ns + ":" + std::to_string(i),
                         util::to_bytes(ns + "-payload-" + std::to_string(i)));
  return records;
}

TEST(KvBatch, NamespaceIndexTracksSetDelRename) {
  KvCluster kv(4);
  for (const auto& [key, value] : make_records("pending", 30)) kv.set(key, value);
  EXPECT_EQ(kv.count("pending"), 30u);
  EXPECT_EQ(kv.count("done"), 0u);
  EXPECT_EQ(kv.keys("pending", "*").size(), 30u);

  // Overwrites do not duplicate index entries.
  kv.set("pending:0", util::to_bytes("updated"));
  EXPECT_EQ(kv.count("pending"), 30u);

  // Deletions remove entries; empty namespaces vanish.
  for (int i = 0; i < 10; ++i) kv.del("pending:" + std::to_string(i));
  EXPECT_EQ(kv.count("pending"), 20u);

  // Renames move entries between namespaces.
  for (int i = 10; i < 30; ++i)
    ASSERT_TRUE(kv.rename("pending:" + std::to_string(i),
                          "done:" + std::to_string(i)));
  EXPECT_EQ(kv.count("pending"), 0u);
  EXPECT_EQ(kv.count("done"), 20u);
  EXPECT_EQ(kv.keys("pending", "*").size(), 0u);
  EXPECT_EQ(kv.keys("done", "*").size(), 20u);
}

TEST(KvBatch, NamespaceIndexSurvivesWipeAndRecover) {
  KvCluster kv(3);
  for (const auto& [key, value] : make_records("rdf", 60)) kv.set(key, value);
  ASSERT_EQ(kv.count("rdf"), 60u);

  // Count how many keys live on shard 1, then wipe it.
  std::size_t on_shard1 = 0;
  for (int i = 0; i < 60; ++i)
    if (kv.server_of("rdf:" + std::to_string(i)) == 1) ++on_shard1;
  ASSERT_GT(on_shard1, 0u);
  kv.fail_server(1, /*wipe=*/true);

  // Namespace queries refuse partial answers while a shard is down.
  EXPECT_THROW((void)kv.count("rdf"), util::UnavailableError);
  EXPECT_THROW((void)kv.keys("rdf", "*"), util::UnavailableError);

  // After recovery the index reflects exactly the surviving records.
  kv.recover_server(1);
  EXPECT_EQ(kv.count("rdf"), 60u - on_shard1);
  EXPECT_EQ(kv.keys("rdf", "*").size(), 60u - on_shard1);
  EXPECT_EQ(kv.total_keys(), 60u - on_shard1);

  // The wiped shard re-indexes fresh writes.
  for (const auto& [key, value] : make_records("rdf", 60)) kv.set(key, value);
  EXPECT_EQ(kv.count("rdf"), 60u);
}

TEST(KvBatch, NamespaceKeysAreSortedFullKeys) {
  KvCluster kv(4);
  for (const auto& [key, value] : make_records("ns", 20)) kv.set(key, value);
  const auto keys = kv.keys("ns", "*");
  ASSERT_EQ(keys.size(), 20u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  for (const auto& key : keys) EXPECT_EQ(key.rfind("ns:", 0), 0u);
  // Tail patterns match against the part after "<ns>:".
  EXPECT_EQ(kv.keys("ns", "1?").size(), 10u);  // ns:10..ns:19
}

TEST(KvBatch, KeysNamespaceCostIndependentOfOtherNamespaces) {
  // The regression the index exists to prevent: listing the pending
  // namespace must cost the same whether history ("done") holds nothing or
  // 100x the pending population.
  KvCluster lean(4), loaded(4);
  for (const auto& [key, value] : make_records("pending", 50)) {
    lean.set(key, value);
    loaded.set(key, value);
  }
  for (const auto& [key, value] : make_records("done", 5000))
    loaded.set(key, value);

  lean.reset_sim_time();
  loaded.reset_sim_time();
  const auto lean_keys = lean.keys("pending", "*");
  const auto loaded_keys = loaded.keys("pending", "*");
  EXPECT_EQ(lean_keys, loaded_keys);
  EXPECT_DOUBLE_EQ(lean.sim_seconds_keys(), loaded.sim_seconds_keys());

  // Same independence for count(), which never scans at all.
  lean.reset_sim_time();
  loaded.reset_sim_time();
  EXPECT_EQ(lean.count("pending"), loaded.count("pending"));
  EXPECT_DOUBLE_EQ(lean.sim_seconds_keys(), loaded.sim_seconds_keys());
}

TEST(KvBatch, PatternRoutedKeysUsesIndexCost) {
  // keys("<ns>:*") routes through the index: cost must not grow with other
  // namespaces' keys.
  KvCluster lean(4), loaded(4);
  for (const auto& [key, value] : make_records("pending", 50)) {
    lean.set(key, value);
    loaded.set(key, value);
  }
  for (const auto& [key, value] : make_records("done", 5000))
    loaded.set(key, value);
  lean.reset_sim_time();
  loaded.reset_sim_time();
  EXPECT_EQ(lean.keys("pending:*"), loaded.keys("pending:*"));
  EXPECT_DOUBLE_EQ(lean.sim_seconds_keys(), loaded.sim_seconds_keys());
}

TEST(KvBatch, MgetMatchesGetLoopByteIdentical) {
  KvCluster loop_kv(4), batch_kv(4);
  const auto records = make_records("frame", 200);
  for (const auto& [key, value] : records) {
    loop_kv.set(key, value);
    batch_kv.set(key, value);
  }
  std::vector<std::string> keys;
  for (const auto& [key, value] : records) keys.push_back(key);
  keys.push_back("frame:absent");  // misses must line up too

  loop_kv.reset_sim_time();
  batch_kv.reset_sim_time();
  std::vector<std::optional<util::Bytes>> loop_out;
  for (const auto& key : keys) loop_out.push_back(loop_kv.get(key));
  const auto batch_out = batch_kv.mget(keys);

  ASSERT_EQ(batch_out.size(), loop_out.size());
  for (std::size_t i = 0; i < loop_out.size(); ++i)
    EXPECT_EQ(batch_out[i], loop_out[i]) << keys[i];
  // Pipelining can only save virtual time, never add it.
  EXPECT_LE(batch_kv.total_sim_seconds(), loop_kv.total_sim_seconds());
  EXPECT_GT(batch_kv.total_sim_seconds(), 0.0);
}

TEST(KvBatch, MsetMatchesSetLoop) {
  KvCluster loop_kv(4), batch_kv(4);
  const auto records = make_records("w", 150);
  loop_kv.reset_sim_time();
  batch_kv.reset_sim_time();
  for (const auto& [key, value] : records) loop_kv.set(key, value);
  batch_kv.mset(records);

  EXPECT_EQ(loop_kv.total_keys(), batch_kv.total_keys());
  EXPECT_EQ(loop_kv.keys("*"), batch_kv.keys("*"));
  for (const auto& [key, value] : records)
    EXPECT_EQ(*batch_kv.get(key), value);
  EXPECT_LE(batch_kv.sim_seconds_writes(), loop_kv.sim_seconds_writes());
}

TEST(KvBatch, MdelMatchesDelLoop) {
  KvCluster loop_kv(4), batch_kv(4);
  const auto records = make_records("d", 100);
  for (const auto& [key, value] : records) {
    loop_kv.set(key, value);
    batch_kv.set(key, value);
  }
  std::vector<std::string> keys;
  for (int i = 0; i < 120; ++i) keys.push_back("d:" + std::to_string(i));

  loop_kv.reset_sim_time();
  batch_kv.reset_sim_time();
  std::size_t loop_deleted = 0;
  for (const auto& key : keys) loop_deleted += loop_kv.del(key) ? 1 : 0;
  const std::size_t batch_deleted = batch_kv.mdel(keys);

  EXPECT_EQ(batch_deleted, loop_deleted);
  EXPECT_EQ(batch_deleted, 100u);
  EXPECT_EQ(batch_kv.total_keys(), 0u);
  EXPECT_LE(batch_kv.sim_seconds_deletes(), loop_kv.sim_seconds_deletes());
}

TEST(KvBatch, MrenameMatchesRenameLoop) {
  KvCluster loop_kv(4), batch_kv(4);
  const auto records = make_records("pending", 120);
  for (const auto& [key, value] : records) {
    loop_kv.set(key, value);
    batch_kv.set(key, value);
  }
  std::vector<std::pair<std::string, std::string>> pairs;
  for (int i = 0; i < 130; ++i)  // 10 pairs have absent sources
    pairs.emplace_back("pending:" + std::to_string(i),
                       "done:" + std::to_string(i));

  loop_kv.reset_sim_time();
  batch_kv.reset_sim_time();
  std::size_t loop_renamed = 0;
  for (const auto& [from, to] : pairs)
    loop_renamed += loop_kv.rename(from, to) ? 1 : 0;
  const double loop_s = loop_kv.total_sim_seconds();
  const std::size_t batch_renamed = batch_kv.mrename(pairs);
  const double batch_s = batch_kv.total_sim_seconds();
  EXPECT_LE(batch_s, loop_s);

  EXPECT_EQ(batch_renamed, loop_renamed);
  EXPECT_EQ(batch_renamed, 120u);
  EXPECT_EQ(loop_kv.keys("done", "*"), batch_kv.keys("done", "*"));
  EXPECT_EQ(batch_kv.count("pending"), 0u);
  for (const auto& [key, value] : records)
    EXPECT_EQ(*batch_kv.get("done" + key.substr(key.find(':'))), value);
}

TEST(KvBatch, MrenameDownDestinationLosesNothing) {
  KvCluster kv(4);
  const auto records = make_records("pending", 80);
  for (const auto& [key, value] : records) kv.set(key, value);
  std::vector<std::pair<std::string, std::string>> pairs;
  for (int i = 0; i < 80; ++i)
    pairs.emplace_back("pending:" + std::to_string(i),
                       "done:" + std::to_string(i));

  kv.fail_server(2);
  std::vector<char> renamed(pairs.size(), 0);
  std::vector<char> done(pairs.size(), 0);
  EXPECT_THROW(kv.mrename(pairs, renamed, done), util::UnavailableError);

  // Every record still exists exactly once, on either side of the move.
  kv.recover_server(2);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const bool at_src = kv.exists(pairs[i].first);
    const bool at_dst = kv.exists(pairs[i].second);
    EXPECT_NE(at_src, at_dst) << pairs[i].first;
    EXPECT_EQ(done[i] != 0, at_dst) << pairs[i].first;
  }

  // Resuming with the same masks completes the batch without double-apply:
  // the final rename count is exactly the pair count.
  kv.mrename(pairs, renamed, done);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(renamed.begin(), renamed.end(), 1)),
            pairs.size());
  EXPECT_EQ(kv.count("pending"), 0u);
  EXPECT_EQ(kv.count("done"), 80u);
  for (const auto& [key, value] : records)
    EXPECT_EQ(*kv.get("done" + key.substr(key.find(':'))), value);
}

TEST(KvBatch, MgetDoneMaskSkipsCompletedEntries) {
  KvCluster kv(4);
  kv.set("a:1", util::to_bytes("real"));
  kv.set("a:2", util::to_bytes("real2"));
  const std::vector<std::string> keys{"a:1", "a:2"};
  std::vector<std::optional<util::Bytes>> out(2);
  std::vector<char> done(2, 0);
  out[0] = util::to_bytes("stale");  // pre-marked done: must not be refetched
  done[0] = 1;
  kv.mget(keys, out, done);
  EXPECT_EQ(util::to_string(*out[0]), "stale");
  EXPECT_EQ(util::to_string(*out[1]), "real2");
  EXPECT_EQ(done[1], 1);
}

TEST(KvBatch, EmptyBatchesAreFreeNoops) {
  KvCluster kv(4);
  kv.reset_sim_time();
  EXPECT_TRUE(kv.mget({}).empty());
  kv.mset({});
  EXPECT_EQ(kv.mdel({}), 0u);
  EXPECT_EQ(kv.mrename({}), 0u);
  EXPECT_DOUBLE_EQ(kv.total_sim_seconds(), 0.0);
}

TEST(KvBatch, BatchConsumesOneTransientErrorPerShardVisit) {
  KvCluster kv(1);
  const auto records = make_records("t", 20);
  for (const auto& [key, value] : records) kv.set(key, value);
  std::vector<std::string> keys;
  for (const auto& [key, value] : records) keys.push_back(key);

  // One injected error, one shard: the first mget round trip fails whole,
  // the second succeeds — not 20 per-key failures.
  kv.inject_transient_errors(0, 1);
  EXPECT_THROW((void)kv.mget(keys), util::UnavailableError);
  const auto out = kv.mget(keys);
  for (const auto& v : out) EXPECT_TRUE(v.has_value());
}

TEST(SharedLockStress, ConcurrentReadersAndWritersStayConsistent) {
  // Readers (shared lock) race writers (exclusive lock) across namespaces.
  // TSan-clean execution and exact final counts are the assertions.
  KvCluster kv(4);
  for (const auto& [key, value] : make_records("stable", 50))
    kv.set(key, value);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads_seen{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r)
    readers.emplace_back([&] {
      while (!stop.load()) {
        EXPECT_EQ(kv.count("stable"), 50u);
        const auto keys = kv.keys("stable", "*");
        EXPECT_EQ(keys.size(), 50u);
        const auto values = kv.mget(keys);
        for (const auto& v : values)
          if (v.has_value()) reads_seen.fetch_add(1);
      }
    });

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w)
    writers.emplace_back([&, w] {
      const std::string ns = "scratch" + std::to_string(w);
      for (int round = 0; round < 30; ++round) {
        std::vector<std::pair<std::string, util::Bytes>> batch;
        for (int i = 0; i < 20; ++i)
          batch.emplace_back(ns + ":" + std::to_string(i),
                             util::to_bytes(std::to_string(round)));
        kv.mset(batch);
        std::vector<std::string> keys;
        for (const auto& [key, value] : batch) keys.push_back(key);
        EXPECT_EQ(kv.mdel(keys), 20u);
      }
    });

  for (auto& th : writers) th.join();
  stop.store(true);
  for (auto& th : readers) th.join();

  EXPECT_GT(reads_seen.load(), 0u);
  EXPECT_EQ(kv.count("stable"), 50u);
  EXPECT_EQ(kv.total_keys(), 50u);
}

TEST(SharedLockStress, ParallelMgetAcrossShardsMatchesSerial) {
  // Cross-shard mget fans out over the worker pool; results must be
  // deterministic and identical to a serial reference regardless of worker
  // interleaving.
  KvCluster kv(8);
  const auto records = make_records("fan", 400);
  for (const auto& [key, value] : records) kv.set(key, value);
  std::vector<std::string> keys;
  for (const auto& [key, value] : records) keys.push_back(key);

  std::vector<std::optional<util::Bytes>> reference;
  for (const auto& key : keys) reference.push_back(kv.get(key));
  for (int round = 0; round < 10; ++round) {
    const auto out = kv.mget(keys);
    ASSERT_EQ(out.size(), reference.size());
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_EQ(out[i], reference[i]);
  }
}

}  // namespace
}  // namespace mummi::ds
