#include "datastore/kv_cluster.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/error.hpp"

namespace mummi::ds {
namespace {

TEST(KvCluster, SetGetDelete) {
  KvCluster kv(4);
  kv.set("a", util::to_bytes("1"));
  EXPECT_TRUE(kv.exists("a"));
  EXPECT_EQ(util::to_string(*kv.get("a")), "1");
  EXPECT_TRUE(kv.del("a"));
  EXPECT_FALSE(kv.del("a"));
  EXPECT_FALSE(kv.get("a").has_value());
}

TEST(KvCluster, OverwriteReplaces) {
  KvCluster kv(2);
  kv.set("k", util::to_bytes("old"));
  kv.set("k", util::to_bytes("new"));
  EXPECT_EQ(util::to_string(*kv.get("k")), "new");
  EXPECT_EQ(kv.total_keys(), 1u);
}

TEST(KvCluster, KeysPatternAcrossShards) {
  KvCluster kv(8);
  for (int i = 0; i < 100; ++i)
    kv.set("rdf:" + std::to_string(i), util::to_bytes("x"));
  for (int i = 0; i < 50; ++i)
    kv.set("ss:" + std::to_string(i), util::to_bytes("y"));
  EXPECT_EQ(kv.keys("rdf:*").size(), 100u);
  EXPECT_EQ(kv.keys("ss:*").size(), 50u);
  EXPECT_EQ(kv.keys("*").size(), 150u);
  EXPECT_EQ(kv.keys("rdf:1?").size(), 10u);  // rdf:10..rdf:19
}

TEST(KvCluster, RenameSameValue) {
  KvCluster kv(4);
  kv.set("pending:frame1", util::to_bytes("payload"));
  EXPECT_TRUE(kv.rename("pending:frame1", "done:frame1"));
  EXPECT_FALSE(kv.exists("pending:frame1"));
  EXPECT_EQ(util::to_string(*kv.get("done:frame1")), "payload");
}

TEST(KvCluster, RenameMissingReturnsFalse) {
  KvCluster kv(4);
  EXPECT_FALSE(kv.rename("absent", "elsewhere"));
}

TEST(KvCluster, RenameCrossAndSameShardBothWork) {
  // Exercise many renames so both same-shard and cross-shard paths run.
  KvCluster kv(4);
  for (int i = 0; i < 64; ++i) {
    const std::string from = "src-" + std::to_string(i);
    const std::string to = "dst-" + std::to_string(i);
    kv.set(from, util::to_bytes(std::to_string(i)));
    ASSERT_TRUE(kv.rename(from, to));
    EXPECT_EQ(util::to_string(*kv.get(to)), std::to_string(i));
  }
  EXPECT_EQ(kv.keys("src-*").size(), 0u);
  EXPECT_EQ(kv.keys("dst-*").size(), 64u);
}

TEST(KvCluster, CrossShardRenameWithDownDestinationLosesNothing) {
  KvCluster kv(4);
  // Find a cross-shard (from, to) pair.
  std::string from = "src0", to;
  for (int i = 0; i < 64 && to.empty(); ++i) {
    const std::string cand = "dst" + std::to_string(i);
    if (kv.server_of(cand) != kv.server_of(from)) to = cand;
  }
  ASSERT_FALSE(to.empty());
  kv.set(from, util::to_bytes("payload"));

  // Destination shard down: the rename is refused up-front — the source
  // record must not be deleted when the destination cannot accept it.
  kv.fail_server(kv.server_of(to));
  EXPECT_THROW((void)kv.rename(from, to), util::UnavailableError);
  EXPECT_TRUE(kv.exists(from));
  EXPECT_EQ(util::to_string(*kv.get(from)), "payload");

  // After recovery the same rename succeeds with the payload intact.
  kv.recover_server(kv.server_of(to));
  EXPECT_TRUE(kv.rename(from, to));
  EXPECT_FALSE(kv.exists(from));
  EXPECT_EQ(util::to_string(*kv.get(to)), "payload");
}

TEST(KvCluster, ShardingIsDeterministicAndSpread) {
  KvCluster kv(20);
  std::set<std::size_t> shards;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_EQ(kv.server_of(key), kv.server_of(key));
    shards.insert(kv.server_of(key));
  }
  EXPECT_EQ(shards.size(), 20u);  // all servers receive keys
}

TEST(KvCluster, TotalBytesTracksPayloads) {
  KvCluster kv(2);
  kv.set("a", util::Bytes(100));
  kv.set("b", util::Bytes(250));
  EXPECT_EQ(kv.total_bytes(), 350u);
  kv.del("a");
  EXPECT_EQ(kv.total_bytes(), 250u);
}

TEST(KvCluster, SimTimeAccountsPerOperationClass) {
  KvCostModel cost;
  KvCluster kv(4, cost);
  for (int i = 0; i < 100; ++i)
    kv.set("k" + std::to_string(i), util::Bytes(1000));
  kv.reset_sim_time();
  (void)kv.keys("*");
  for (int i = 0; i < 100; ++i) (void)kv.get("k" + std::to_string(i));
  for (int i = 0; i < 100; ++i) kv.del("k" + std::to_string(i));
  // keys(): 100 returned keys at 1e-4 each dominates.
  EXPECT_NEAR(kv.sim_seconds_keys(), 100 * cost.per_returned_key, 5e-3);
  // reads: 100 * (5e-4 + 1000 * 2e-9)
  EXPECT_NEAR(kv.sim_seconds_reads(),
              100 * (cost.per_read + 1000 * cost.per_byte), 1e-6);
  EXPECT_NEAR(kv.sim_seconds_deletes(), 100 * cost.per_query, 1e-9);
  // Calibration: value reads ~5x slower than key retrieval/deletion
  // (paper: ~10k keys+deletes/s vs ~2k value reads/s).
  EXPECT_GT(kv.sim_seconds_reads(), 4.0 * kv.sim_seconds_deletes());
}

TEST(KvCluster, ConcurrentMixedOperationsSafe) {
  KvCluster kv(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&kv, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string key =
            "t" + std::to_string(t) + ":" + std::to_string(i);
        kv.set(key, util::to_bytes("v"));
        EXPECT_TRUE(kv.exists(key));
        if (i % 3 == 0) kv.del(key);
      }
    });
  for (auto& th : threads) th.join();
  // Each thread kept 2/3 of its 500 keys.
  EXPECT_EQ(kv.total_keys(), 4 * (500 - 167));
}

TEST(KvCluster, SingleServerDegenerate) {
  KvCluster kv(1);
  kv.set("only", util::to_bytes("x"));
  EXPECT_EQ(kv.server_of("anything"), 0u);
  EXPECT_EQ(kv.keys("*").size(), 1u);
}

}  // namespace
}  // namespace mummi::ds
