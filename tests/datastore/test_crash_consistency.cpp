// Store-level crash consistency: kill FsStore and TarIdx at every
// instrumented persistence boundary and prove recovery sees either the old
// record or the new one — never a torn one (DESIGN.md 4i).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "datastore/fs_store.hpp"
#include "datastore/taridx.hpp"
#include "fault/crash_point.hpp"
#include "obs/metrics.hpp"
#include "util/checkpoint.hpp"
#include "util/error.hpp"

namespace fs = std::filesystem;

namespace mummi::ds {
namespace {

class CrashConsistencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mummi_crashcons_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

TEST_F(CrashConsistencyTest, FsPutSweepRecoversOldXorNew) {
  struct Case {
    const char* point;
    const char* expect;  // what get() returns after crash + reopen
  };
  const Case cases[] = {
      {"fs.put.pre_tmp", "old"},      {"util.write_file.pre", "old"},
      {"util.write_file.mid", "old"}, {"fs.put.post_tmp", "old"},
      {"fs.put.post_rename", "new"},
  };
  for (const auto& c : cases) {
    const std::string root = path(std::string("store_") + c.point);
    FsStore store(root);
    store.put("ns", "k", util::to_bytes("old"));
    {
      fault::ScopedCrashHarness harness;
      harness.registry().arm(c.point);
      EXPECT_THROW(store.put("ns", "k", util::to_bytes("new")),
                   fault::SimulatedCrash)
          << c.point;
    }
    // Simulated restart: a fresh store over the crashed directory tree.
    FsStore recovered(root);
    EXPECT_EQ(util::to_string(recovered.get("ns", "k")), c.expect) << c.point;
    // The record stays fully writable afterwards.
    recovered.put("ns", "k", util::to_bytes("after"));
    EXPECT_EQ(util::to_string(recovered.get("ns", "k")), "after") << c.point;
  }
}

TEST_F(CrashConsistencyTest, StaleTmpIsDetectedCountedAndInvisible) {
  FsStore store(path("store"));
  store.put("ns", "k", util::to_bytes("old"));
  {
    fault::ScopedCrashHarness harness;
    harness.registry().arm("fs.put.post_tmp");
    EXPECT_THROW(store.put("ns", "k", util::to_bytes("new")),
                 fault::SimulatedCrash);
  }
  // The crash left a complete staging file behind...
  ASSERT_TRUE(fs::exists(path("store") + "/ns/k.tmp"));
  FsStore recovered(path("store"));
  // ...which is bookkeeping, not data: listings and inode accounting skip it.
  EXPECT_EQ(recovered.keys("ns", "*"), std::vector<std::string>{"k"});
  EXPECT_EQ(recovered.inode_count(), 1u);
  // The next put over the same key notices the footprint of the prevented
  // torn write before replacing it.
  const auto before = obs::counter("fs.torn_writes_prevented").value();
  recovered.put("ns", "k", util::to_bytes("new2"));
  EXPECT_EQ(obs::counter("fs.torn_writes_prevented").value(), before + 1);
  EXPECT_EQ(util::to_string(recovered.get("ns", "k")), "new2");
  EXPECT_FALSE(fs::exists(path("store") + "/ns/k.tmp"));
}

TEST_F(CrashConsistencyTest, TmpSuffixedKeysAreReserved) {
  FsStore store(path("store"));
  EXPECT_THROW(store.put("ns", "k.tmp", util::to_bytes("x")), util::Error);
  EXPECT_THROW((void)store.get("ns", "k.tmp"), util::Error);
}

TEST_F(CrashConsistencyTest, MoveManyMidBatchCrashLeavesEachKeyExactlyOnce) {
  FsStore store(path("store"));
  const std::vector<std::string> keys = {"a", "b", "c"};
  for (const auto& k : keys) store.put("src", k, util::to_bytes("v-" + k));
  {
    fault::ScopedCrashHarness harness;
    harness.registry().arm("fs.move_many.mid", 2);  // die before moving "b"
    EXPECT_THROW(store.move_many("src", keys, "dst"), fault::SimulatedCrash);
  }
  FsStore recovered(path("store"));
  std::size_t total = 0;
  for (const auto& k : keys) {
    const bool in_src = recovered.exists("src", k);
    const bool in_dst = recovered.exists("dst", k);
    EXPECT_NE(in_src, in_dst) << k;  // exactly one home, never zero or two
    total += in_src || in_dst ? 1u : 0u;
  }
  EXPECT_EQ(total, keys.size());
  EXPECT_TRUE(recovered.exists("dst", "a"));
  EXPECT_TRUE(recovered.exists("src", "b"));
  EXPECT_TRUE(recovered.exists("src", "c"));
}

TEST_F(CrashConsistencyTest, MoveManyFailureReportsPartiallyMovedKeys) {
  FsStore store(path("store"));
  store.put("src", "a", util::to_bytes("va"));
  store.put("src", "b", util::to_bytes("vb"));
  // Make the second rename fail for real: its source vanishes out from
  // under the batch.
  fs::remove(path("store") + "/src/b");
  try {
    store.move_many("src", {"a", "b"}, "dst");
    FAIL() << "move_many must throw";
  } catch (const util::StoreError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("1/2 already moved: a"), std::string::npos) << what;
    EXPECT_NE(what.find("'b'"), std::string::npos) << what;
  }
  EXPECT_TRUE(store.exists("dst", "a"));
}

TEST_F(CrashConsistencyTest, TarAppendCrashDropsTornMemberOnRescan) {
  const std::string tar = path("a.tar");
  // Member data > one block so a torn append is detectably truncated.
  const util::Bytes big(2048, 0x5a);
  {
    auto writer = std::make_unique<TarIdx>(tar);
    writer->append("k1", util::to_bytes("first"));
    writer->flush();
    fault::ScopedCrashHarness harness;
    harness.registry().arm("tar.append.mid");
    EXPECT_THROW(writer->append("k2", big), fault::SimulatedCrash);
    // Simulated restart before the old process can tidy up: force the
    // sidecar-miss path so recovery rescans the (torn) archive itself.
    fs::remove(tar + ".idx");
    TarIdx recovered(tar);
    EXPECT_TRUE(recovered.contains("k1"));
    EXPECT_FALSE(recovered.contains("k2"));  // torn member dropped
    EXPECT_EQ(util::to_string(*recovered.read("k1")), "first");
    // The torn tail is dead space: the next append overwrites it.
    recovered.append("k2", big);
    recovered.flush();
    EXPECT_EQ(*recovered.read("k2"), big);
  }
}

TEST_F(CrashConsistencyTest, TarFlushCrashKeepsPreAppendIndex) {
  const std::string tar = path("b.tar");
  auto writer = std::make_unique<TarIdx>(tar);
  writer->append("k1", util::to_bytes("first"));
  writer->flush();
  writer->append("k2", util::to_bytes("second"));
  {
    fault::ScopedCrashHarness harness;
    harness.registry().arm("tar.flush.post_trailer");
    EXPECT_THROW(writer->flush(), fault::SimulatedCrash);
  }
  // Restart view: the sidecar is stale but valid (its end never exceeds the
  // file), so the archive reopens with pre-append state — k2 was simply
  // never acknowledged. Old-state semantics, not corruption.
  TarIdx recovered(tar);
  EXPECT_TRUE(recovered.contains("k1"));
  EXPECT_FALSE(recovered.contains("k2"));
}

TEST_F(CrashConsistencyTest, ScanRejectsGarbageOnlyAtOffsetZero) {
  // Garbage at the start: genuinely not a tar.
  const std::string bogus = path("bogus.tar");
  {
    std::ofstream out(bogus, std::ios::binary);
    const std::string junk(1024, 'X');
    out << junk;
  }
  EXPECT_THROW(TarIdx::scan(bogus), util::FormatError);

  // Garbage after a valid member: torn tail, recover the prefix.
  const std::string torn = path("torn.tar");
  {
    TarIdx writer(torn);
    writer.append("k1", util::to_bytes("first"));
    writer.flush();
  }
  {
    // Overwrite the trailer with non-tar junk where the next header would be.
    std::fstream out(torn, std::ios::binary | std::ios::in | std::ios::out);
    out.seekp(512 + 512);  // header block + one padded data block
    const std::string junk(512, 'X');
    out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  const auto members = TarIdx::scan(torn);
  ASSERT_EQ(members.size(), 1u);
  EXPECT_EQ(std::get<0>(members[0]), "k1");
}

}  // namespace
}  // namespace mummi::ds
