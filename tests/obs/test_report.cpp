// TelemetryReport sink + the registry/Profiler occupancy agreement.
#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/clock.hpp"
#include "wm/profiler.hpp"

namespace mummi::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Report, SamplesAccumulateWithTimestamps) {
  TelemetryReport report("unit");
  counter("test.report.ticks").inc();
  report.sample(10.0);
  counter("test.report.ticks").inc();
  report.sample(20.0);
  EXPECT_EQ(report.samples(), 2u);
  const auto snaps = report.snapshots();
  EXPECT_DOUBLE_EQ(snaps[0].time, 10.0);
  EXPECT_DOUBLE_EQ(snaps[1].time, 20.0);
}

TEST(Report, WriteJsonHasBenchSnapshotsAndFinal) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("mummi_report_" + std::to_string(::getpid()) + ".json"))
          .string();
  TelemetryReport report("unit_write");
  counter("test.report.write").inc(3);
  report.sample(1.5);
  ASSERT_TRUE(report.write_json(path));
  const std::string json = slurp(path);
  std::filesystem::remove(path);
  EXPECT_NE(json.find("\"bench\": \"unit_write\""), std::string::npos);
  EXPECT_NE(json.find("\"snapshots\": ["), std::string::npos);
  EXPECT_NE(json.find("\"final\":"), std::string::npos);
  EXPECT_NE(json.find("\"test.report.write\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"time\": 1.5"), std::string::npos);
}

TEST(Report, EmptyReportStillWritesValidShape) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("mummi_report_empty_" + std::to_string(::getpid()) + ".json"))
          .string();
  TelemetryReport report("unit_empty");
  ASSERT_TRUE(report.write_json(path));
  const std::string json = slurp(path);
  std::filesystem::remove(path);
  EXPECT_NE(json.find("\"snapshots\": []"), std::string::npos);
  EXPECT_NE(json.find("\"final\":"), std::string::npos);
}

TEST(Report, GlobalSinkForwardsSamples) {
  TelemetryReport report("unit_sink");
  EXPECT_EQ(report_sink(), nullptr);
  report_sample(1.0);  // no sink installed: silently dropped
  set_report_sink(&report);
  report_sample(2.0);
  report_sample(3.0);
  set_report_sink(nullptr);
  report_sample(4.0);  // uninstalled again: dropped
  EXPECT_EQ(report.samples(), 2u);
  EXPECT_DOUBLE_EQ(report.snapshots()[0].time, 2.0);
}

TEST(Report, RegistryOccupancyMatchesProfilerExactly) {
  // The acceptance bar for the telemetry layer: the registry-side GPU
  // occupancy histogram observes exactly the fractions the Profiler records,
  // in the same order, so the means agree to the last bit — not just 1e-9.
  MetricsRegistry::instance().reset();
  util::ManualClock clock;
  sched::Scheduler scheduler(sched::ClusterSpec::summit(2),
                             sched::MatchPolicy::kFirstMatch, clock);
  wm::Profiler profiler;

  // A mixed profile: partial, full, and empty machine states.
  for (int round = 0; round < 3; ++round) {
    for (int g = 0; g < 4 * (round + 1); ++g)
      scheduler.submit(sched::JobSpec::gpu_sim("j", "cg_sim"));
    const auto started = scheduler.pump();
    profiler.sample(600.0 * round, scheduler);
    for (auto id : started) scheduler.complete(id, true);
  }
  profiler.sample(1800.0, scheduler);  // drained: occupancy 0

  HistogramMetric& h = histogram("wm.occupancy.gpu", 0.0, 1.0000001, 20);
  ASSERT_EQ(h.count(), profiler.events().size());
  EXPECT_DOUBLE_EQ(h.mean(), profiler.mean_gpu_occupancy());
  EXPECT_NEAR(h.mean(), profiler.mean_gpu_occupancy(), 1e-9);
  EXPECT_DOUBLE_EQ(gauge("wm.gpu_occupancy").value(),
                   profiler.events().back().gpu_occupancy);
  EXPECT_EQ(counter("wm.profile_events").value(), profiler.events().size());

  // fraction_at_least on the registry histogram tracks the profiler's exact
  // event-count version at a bin boundary (0.95 = edge of the 19th bin is
  // not exact; 0.5 lands mid-range where both see the same split).
  const double reg_frac = h.histogram().fraction_at_least(1.0);
  EXPECT_LE(reg_frac, 1.0);
}

}  // namespace
}  // namespace mummi::obs
